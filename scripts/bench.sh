#!/usr/bin/env bash
# bench.sh runs the scan/analysis benchmark suite — the parallel dataset
# scanners and the fused figure pipeline, including the incremental
# snapshot append path — and records the results as BENCH_scan.json
# (one object per benchmark: name, ns/op, samples/s where reported),
# stamped with the git SHA, Go version, GOMAXPROCS, and UTC timestamp
# that produced them.
#
#   scripts/bench.sh          # full measurement run
#   scripts/bench.sh smoke    # one iteration per benchmark (CI gate)
#
# Smoke mode exists so scripts/check.sh can exercise every benchmark's
# code path and still emit a (non-statistical) BENCH_scan.json.
set -euo pipefail
cd "$(dirname "$0")/.."

mode="${1:-full}"
out="${BENCH_OUT:-BENCH_scan.json}"
case "$mode" in
smoke) benchtime="1x" ;;
full) benchtime="2s" ;;
*)
    echo "usage: scripts/bench.sh [smoke|full]" >&2
    exit 2
    ;;
esac

# Fail before spending minutes benchmarking if the destination cannot
# be written (e.g. BENCH_OUT points into a read-only mount or a missing
# directory).
if ! (: >>"$out") 2>/dev/null; then
    echo "bench.sh: output path '$out' is not writable" >&2
    exit 1
fi

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

# Provenance stamp: the numbers are only comparable when the code,
# toolchain, and parallelism that produced them are known.
git_sha="$(git rev-parse HEAD 2>/dev/null || echo unknown)"
go_version="$(go version | { read -r _ _ v _; echo "$v"; })"
gomaxprocs="${GOMAXPROCS:-$(nproc 2>/dev/null || echo unknown)}"
timestamp="$(date -u +%Y-%m-%dT%H:%M:%SZ)"

go test -run='^$' -bench='Scan|Incremental|AllFigures' -benchtime="$benchtime" \
    ./internal/scan ./internal/core | tee "$raw"

awk -v mode="$mode" -v sha="$git_sha" -v gover="$go_version" \
    -v procs="$gomaxprocs" -v ts="$timestamp" '
BEGIN { n = 0 }
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns = ""; sps = ""
    for (i = 2; i < NF; i++) {
        if ($(i + 1) == "ns/op") ns = $i
        if ($(i + 1) == "samples/s") sps = $i
    }
    if (ns == "") next
    line = sprintf("  {\"name\": \"%s\", \"ns_op\": %s", name, ns)
    if (sps != "") line = line sprintf(", \"samples_per_s\": %s", sps)
    line = line "}"
    rows[n++] = line
}
END {
    printf "{\n\"mode\": \"%s\",\n", mode
    printf "\"git_sha\": \"%s\",\n\"go_version\": \"%s\",\n", sha, gover
    printf "\"gomaxprocs\": \"%s\",\n\"timestamp\": \"%s\",\n", procs, ts
    printf "\"benchmarks\": [\n"
    for (i = 0; i < n; i++) printf "%s%s\n", rows[i], (i < n - 1 ? "," : "")
    print "]\n}"
}
' "$raw" >"$out"

if ! [ -s "$out" ]; then
    echo "bench.sh: no benchmark output landed in '$out'" >&2
    exit 1
fi
echo "bench results written to $out"
