#!/usr/bin/env bash
# bench.sh runs the scan/analysis benchmark suite — the parallel dataset
# scanners and the fused figure pipeline, including the incremental
# snapshot append path — and records the results as BENCH_scan.json.
#
# A full run measures the suite twice: once pinned to GOMAXPROCS=1 (the
# per-core number the batch-kernel acceptance bar is stated against —
# parallel speedup cannot mask a slow kernel) and once at the host's
# default GOMAXPROCS (the figure users see). Each run is one entry set
# under "runs", stamped with its gomaxprocs; the file carries the git
# SHA, Go version, and UTC timestamp that produced it. Per benchmark it
# records ns/op plus the reported rates: samples_per_s counts predicate
# matches, rows_per_s counts rows decoded (they differ on filtered
# scans — see internal/scan/bench_test.go).
#
#   scripts/bench.sh          # full measurement run
#   scripts/bench.sh smoke    # one iteration per benchmark (CI gate)
#
# Smoke mode exists so scripts/check.sh can exercise every benchmark's
# code path and still emit a (non-statistical) BENCH_scan.json; it runs
# the suite once, at the default GOMAXPROCS.
#
# The serving layer has its own closed-loop load benchmark (sustained
# QPS and p50/p99/p999 against the hot query API, cache on/off, steady
# state and during live ingestion — see internal/serve/loadbench_test.go):
#
#   scripts/bench.sh serve        # full measurement run -> BENCH_serve.json
#   scripts/bench.sh serve-smoke  # short CI-gate pass (non-statistical)
#
# SERVE_BENCH_OUT overrides the serve output path.
set -euo pipefail
cd "$(dirname "$0")/.."

mode="${1:-full}"
out="${BENCH_OUT:-BENCH_scan.json}"
case "$mode" in
smoke) benchtime="1x" ;;
full) benchtime="2s" ;;
serve | serve-smoke)
    out="${SERVE_BENCH_OUT:-BENCH_serve.json}"
    # The test binary runs inside the package directory; anchor a
    # relative output path to the repo root.
    case "$out" in /*) ;; *) out="$PWD/$out" ;; esac
    if ! (: >>"$out") 2>/dev/null; then
        echo "bench.sh: output path '$out' is not writable" >&2
        exit 1
    fi
    full=""
    if [ "$mode" = serve ]; then full=1; fi
    # Snapshot the committed baseline before the run: a full serve run's
    # default output path IS the committed BENCH_serve.json, so the
    # on-disk file is already overwritten by the time the gate compares.
    baseline_p99="$(git show HEAD:BENCH_serve.json 2>/dev/null |
        jq -r '[.scenarios[] | select(.scenario == "cdf_window_index")][0].p99_us // empty' 2>/dev/null || true)"
    SERVE_BENCH_OUT="$out" \
        SERVE_BENCH_GIT_SHA="$(git rev-parse HEAD 2>/dev/null || echo unknown)" \
        SERVE_BENCH_FULL="$full" \
        go test -run '^TestServeLoadBench$' -count=1 -v ./internal/serve
    echo "serve bench results written to $out"
    # Regression gate: the windowed-index scenario's p99 must stay within
    # 20% of the committed baseline. Smoke runs are single-shot and
    # non-statistical, so only full serve runs are gated; the gate skips
    # (loudly) when the committed baseline predates the scenario.
    if [ "$mode" = serve ]; then
        new_p99="$(jq -r '[.scenarios[] | select(.scenario == "cdf_window_index")][0].p99_us // empty' "$out")"
        if [ -n "$baseline_p99" ] && [ -n "$new_p99" ]; then
            if awk -v n="$new_p99" -v b="$baseline_p99" 'BEGIN { exit !(n > 1.2 * b) }'; then
                echo "bench.sh: cdf_window_index p99 regressed >20%: ${new_p99}us vs committed baseline ${baseline_p99}us" >&2
                exit 1
            fi
            echo "cdf_window_index p99 gate passed: ${new_p99}us vs baseline ${baseline_p99}us (limit +20%)"
        else
            echo "cdf_window_index p99 gate skipped (committed baseline lacks the scenario)"
        fi
    fi
    exit 0
    ;;
*)
    echo "usage: scripts/bench.sh [smoke|full|serve|serve-smoke]" >&2
    exit 2
    ;;
esac

# Fail before spending minutes benchmarking if the destination cannot
# be written (e.g. BENCH_OUT points into a read-only mount or a missing
# directory).
if ! (: >>"$out") 2>/dev/null; then
    echo "bench.sh: output path '$out' is not writable" >&2
    exit 1
fi

raw="$(mktemp)"
runsfile="$(mktemp)"
trap 'rm -f "$raw" "$runsfile"' EXIT

# Provenance stamp: the numbers are only comparable when the code,
# toolchain, and parallelism that produced them are known.
git_sha="$(git rev-parse HEAD 2>/dev/null || echo unknown)"
go_version="$(go version | { read -r _ _ v _; echo "$v"; })"
default_procs="${GOMAXPROCS:-$(nproc 2>/dev/null || echo unknown)}"
timestamp="$(date -u +%Y-%m-%dT%H:%M:%SZ)"

# bench_run PROCS LAST: run the suite (pinned to PROCS unless empty)
# and append one run object to $runsfile.
bench_run() {
    local procs="$1" last="$2" label
    label="${procs:-$default_procs}"
    echo "== bench run: GOMAXPROCS=${label} =="
    if [ -n "$procs" ]; then
        GOMAXPROCS="$procs" go test -run='^$' -bench='Scan|Incremental|AllFigures' \
            -benchtime="$benchtime" ./internal/scan ./internal/core | tee "$raw"
    else
        go test -run='^$' -bench='Scan|Incremental|AllFigures' \
            -benchtime="$benchtime" ./internal/scan ./internal/core | tee "$raw"
    fi
    awk -v procs="$label" -v last="$last" '
    BEGIN { n = 0 }
    /^Benchmark/ {
        name = $1
        sub(/-[0-9]+$/, "", name)
        ns = ""; sps = ""; rps = ""
        for (i = 2; i < NF; i++) {
            if ($(i + 1) == "ns/op") ns = $i
            if ($(i + 1) == "samples/s") sps = $i
            if ($(i + 1) == "rows/s") rps = $i
        }
        if (ns == "") next
        line = sprintf("    {\"name\": \"%s\", \"ns_op\": %s", name, ns)
        if (sps != "") line = line sprintf(", \"samples_per_s\": %s", sps)
        if (rps != "") line = line sprintf(", \"rows_per_s\": %s", rps)
        line = line "}"
        rows[n++] = line
    }
    END {
        printf "  {\"gomaxprocs\": \"%s\", \"benchmarks\": [\n", procs
        for (i = 0; i < n; i++) printf "%s%s\n", rows[i], (i < n - 1 ? "," : "")
        printf "  ]}%s\n", (last == "yes" ? "" : ",")
    }
    ' "$raw" >>"$runsfile"
}

if [ "$mode" = smoke ]; then
    bench_run "" yes
else
    bench_run 1 no
    bench_run "" yes
fi

{
    printf '{\n"mode": "%s",\n' "$mode"
    printf '"git_sha": "%s",\n"go_version": "%s",\n' "$git_sha" "$go_version"
    printf '"timestamp": "%s",\n' "$timestamp"
    printf '"runs": [\n'
    cat "$runsfile"
    printf ']\n}\n'
} >"$out"

if ! [ -s "$out" ]; then
    echo "bench.sh: no benchmark output landed in '$out'" >&2
    exit 1
fi
echo "bench results written to $out"
