package main

import (
	"os"
	"path/filepath"
	"testing"
)

func lintSource(t *testing.T, src string) int {
	t.Helper()
	path := filepath.Join(t.TempDir(), "src.go")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	bad, err := lintFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return bad
}

func TestLintFlagsBadNames(t *testing.T) {
	src := `package p

func f(reg *Registry, log *Logger) {
	reg.Counter("good_total", "help")
	reg.Counter("bad-name", "help")
	reg.GaugeVec("ok_gauge", "help", "shard", "bad label")
	log.Info("message with spaces is fine", "good_key", 1, "bad key", 2)
	log.Error("msg", "also_good", "v")
}
`
	if bad := lintSource(t, src); bad != 3 {
		t.Errorf("bad = %d, want 3 (metric name, label, log key)", bad)
	}
}

func TestLintIgnoresNonLogError(t *testing.T) {
	src := `package p

func f(w W) {
	http.Error(w, "bad as_ylo", 400)
	t.Error("this is a test assertion, not a log call")
}
`
	if bad := lintSource(t, src); bad != 0 {
		t.Errorf("bad = %d, want 0", bad)
	}
}
