// Command namelint checks every metric name, metric label, and
// structured log key literal in the tree against obs.ValidName — the
// shared naming rule for the Prometheus exposition and the logfmt/JSON
// log encodings. A name that fails the rule would either be rejected at
// registration (metrics, a runtime panic) or force quoting and escaping
// in the exposition (log keys), so the gate catches both at review time.
//
// Usage:
//
//	go run ./scripts/namelint ./cmd ./internal
//
// Each argument is walked recursively; only non-test .go files are
// linted. Exit status 1 means at least one bad name was found.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/obs"
)

// metricCtors maps registry constructor names to how many leading
// string arguments are names to check: the metric name itself, and for
// the Vec variants every label name after the help string.
var metricCtors = map[string]bool{
	"Counter": true, "Gauge": true, "Histogram": true,
	"CounterVec": true, "GaugeVec": true, "HistogramVec": true,
}

// logMethods are the leveled logger methods whose variadic tail is
// key/value pairs: string literals at key positions must be valid names.
var logMethods = map[string]bool{
	"Debug": true, "Info": true, "Warn": true, "Error": true,
}

func main() {
	roots := os.Args[1:]
	if len(roots) == 0 {
		roots = []string{"."}
	}
	bad := 0
	for _, root := range roots {
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				if name := d.Name(); name == "testdata" || strings.HasPrefix(name, ".") {
					return filepath.SkipDir
				}
				return nil
			}
			if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
				return nil
			}
			n, err := lintFile(path)
			bad += n
			return err
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "namelint: %v\n", err)
			os.Exit(2)
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "namelint: %d bad name(s)\n", bad)
		os.Exit(1)
	}
}

// lintFile parses one source file and reports every invalid metric
// name, label, or log-key literal it contains.
func lintFile(path string) (bad int, err error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, 0)
	if err != nil {
		return 0, err
	}
	report := func(pos token.Pos, kind, name string) {
		fmt.Fprintf(os.Stderr, "%s: invalid %s %q\n", fset.Position(pos), kind, name)
		bad++
	}
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch {
		case metricCtors[sel.Sel.Name]:
			// reg.Counter(name, help) / reg.CounterVec(name, help, labels...)
			if len(call.Args) > 0 {
				if name, ok := stringLit(call.Args[0]); ok && !obs.ValidName(name) {
					report(call.Args[0].Pos(), "metric name", name)
				}
			}
			if strings.HasSuffix(sel.Sel.Name, "Vec") {
				for _, arg := range call.Args[2:] {
					if label, ok := stringLit(arg); ok && !obs.ValidName(label) {
						report(arg.Pos(), "metric label", label)
					}
				}
			}
		case logMethods[sel.Sel.Name]:
			// logger.Info(msg, k1, v1, k2, v2, ...): literal keys sit at
			// the odd argument positions after the message. Requiring a
			// literal message distinguishes leveled log calls from
			// unrelated methods named Error (e.g. http.Error(w, msg, code)).
			if len(call.Args) == 0 {
				return true
			}
			if _, ok := stringLit(call.Args[0]); !ok {
				return true
			}
			for i := 1; i < len(call.Args); i += 2 {
				if key, ok := stringLit(call.Args[i]); ok && !obs.ValidName(key) {
					report(call.Args[i].Pos(), "log key", key)
				}
			}
		}
		return true
	})
	return bad, nil
}

// stringLit unwraps a string literal expression.
func stringLit(e ast.Expr) (string, bool) {
	lit, ok := e.(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return "", false
	}
	s, err := strconv.Unquote(lit.Value)
	if err != nil {
		return "", false
	}
	return s, true
}
