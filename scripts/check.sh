#!/usr/bin/env bash
# check.sh is the tier-1+ verification gate: formatting, vet, build, and
# the full test suite under the race detector. CI and pre-merge runs
# should use this instead of bare `go test ./...`.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race (concurrency suites, uncached) =="
# The scanner, the fused analysis passes, and the campaign engine are the
# shard-and-merge packages; run them uncached so every gate exercises the
# race detector on fresh schedules.
go test -race -count=1 ./internal/scan ./internal/core ./internal/engine

echo "== go test -race =="
go test -race ./...

echo "== bench smoke =="
# One iteration of every benchmark: catches bit-rot in bench code
# without paying for real measurement runs.
go test -run='^$' -bench=. -benchtime=1x ./...

echo "OK"
