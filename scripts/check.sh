#!/usr/bin/env bash
# check.sh is the tier-1+ verification gate: formatting, vet, build, and
# the full test suite under the race detector. CI and pre-merge runs
# should use this instead of bare `go test ./...`.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== namelint =="
# Every metric name, metric label, and structured log key literal must
# satisfy obs.ValidName, so the Prometheus exposition and log encodings
# never see a name they would reject or have to escape.
go run ./scripts/namelint ./cmd ./internal

echo "== go test -race (concurrency suites, uncached) =="
# The scanner, the fused analysis passes, the campaign engine, the
# storage layer (columnar codec + sinks), and the telemetry plane
# (registry scrapes racing registration, flight recorder) are the
# shard-and-merge packages — internal/cluster (coordinator + agents
# over loopback HTTP) most of all, plus internal/serve (concurrent
# readers against snapshot swaps and cache invalidation under churn);
# run them uncached so every gate exercises the race detector on fresh
# schedules.
go test -race -count=1 ./internal/scan ./internal/core ./internal/engine ./internal/cluster ./internal/colf ./internal/results ./internal/snap ./internal/stats ./internal/obs ./internal/serve ./internal/tix

echo "== go test -race =="
go test -race ./...

echo "== fuzz smoke =="
# Short fuzz bursts over the decode boundaries: the columnar block
# codec (round-trip + corruption), the JSONL fast-path decoder
# (differential against encoding/json), the snapshot envelope
# (header/payload round-trip + corruption), and the temporal index's
# segment-node codec (decode must never panic; accepted payloads must
# re-encode to the same aggregate). Ten seconds each catches format
# regressions without turning the gate into a fuzz farm.
go test -run='^$' -fuzz='^FuzzBlockRoundTrip$' -fuzztime=10s ./internal/colf
go test -run='^$' -fuzz='^FuzzSampleDecode$' -fuzztime=10s ./internal/scan
go test -run='^$' -fuzz='^FuzzSnapshotRoundTrip$' -fuzztime=10s ./internal/snap
go test -run='^$' -fuzz='^FuzzNodeRoundTrip$' -fuzztime=10s ./internal/tix

echo "== bench smoke =="
# One iteration of every benchmark: catches bit-rot in bench code
# without paying for real measurement runs. bench.sh smoke also runs
# the scan/analysis suite; its (non-statistical) output goes to a temp
# path so it cannot clobber the committed full-run BENCH_scan.json
# baseline.
go test -run='^$' -bench=. -benchtime=1x ./...
BENCH_OUT="${TMPDIR:-/tmp}/BENCH_scan.smoke.json" scripts/bench.sh smoke
SERVE_BENCH_OUT="${TMPDIR:-/tmp}/BENCH_serve.smoke.json" scripts/bench.sh serve-smoke

echo "== cluster smoke (3 agents, byte-identity) =="
# Drive a short campaign through the distributed control plane with
# three in-process agents and pin the merged dataset byte-identical to
# the single-process run.
smokedir="$(mktemp -d)"
trap 'rm -rf "$smokedir"' EXIT
go run ./cmd/shears -cluster 3 -days 2 -probes 200 -quiet -out "$smokedir/cluster"
go run ./cmd/shears -days 2 -probes 200 -quiet -out "$smokedir/serial"
cmp "$smokedir/cluster/samples.bin" "$smokedir/serial/samples.bin"

echo "== batch-vs-row smoke (figure byte-identity) =="
# Render figures from the binary store twice — once through the
# columnar batch kernels, once with -rowscan forcing the legacy per-row
# path — and pin the stdout bytes identical. -snapshot off keeps both
# runs cold so the whole store decodes through the path under test.
for fig in 6 7; do
    go run ./cmd/figures -fig "$fig" -data "$smokedir/serial" -workers 4 \
        -snapshot off >"$smokedir/fig$fig.batch.txt" 2>/dev/null
    go run ./cmd/figures -fig "$fig" -data "$smokedir/serial" -workers 4 \
        -snapshot off -rowscan >"$smokedir/fig$fig.row.txt" 2>/dev/null
    cmp "$smokedir/fig$fig.batch.txt" "$smokedir/fig$fig.row.txt"
done

echo "== temporal index smoke (windowed equivalence) =="
# The serial shears run above built samples.tix alongside the dataset;
# -op window answers from it, composing pre-merged segment nodes plus
# edge-block decodes. Pin its per-continent delivered sample counts
# against -op continents, which cold-scans the same [since, until)
# row by row — the index must agree with the scan exactly.
test -s "$smokedir/serial/samples.tix"
win_since="2019-09-01T12:00:00Z"
win_until="2019-09-02T06:00:00Z"
go run ./cmd/dataset -data "$smokedir/serial" \
    -window "$win_since,$win_until" window >"$smokedir/window.idx.txt"
go run ./cmd/dataset -data "$smokedir/serial" \
    -since "$win_since" -until "$win_until" continents >"$smokedir/window.scan.txt"
# Both tables pad the continent name to 14 columns (names can contain
# spaces); the count is the first field after it.
tally='/^continent /{t=1;next} t{rest=substr($0,15); split(rest,a," "); print substr($0,1,14), a[1]}'
diff <(awk "$tally" "$smokedir/window.idx.txt") \
    <(awk "$tally" "$smokedir/window.scan.txt")

echo "OK"
