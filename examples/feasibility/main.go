// Feasibility: reproduce the paper's application analysis — place the
// Figure 2 catalog into quadrants, measure the last-mile penalty from a
// synthesized campaign, derive the Figure 8 feasibility zone from it, and
// report which applications a general-purpose edge actually helps.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/apps"
	"repro/internal/atlas"
	"repro/internal/bandwidth"
	"repro/internal/figures"
	"repro/internal/results"
	"repro/internal/world"
)

func main() {
	log.SetFlags(0)
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	catalog := apps.Paper()

	// Figure 2: the requirement map.
	fmt.Println("== Application requirements (Figure 2) ==")
	lines, err := figures.Figure2(catalog)
	if err != nil {
		return err
	}
	for _, l := range lines {
		fmt.Println(l)
	}

	// Synthesize a small campaign to measure the wireless penalty.
	w, err := world.Build(world.Config{Seed: 1, Probes: 400})
	if err != nil {
		return err
	}
	cfg := atlas.TestCampaign()
	var mem results.Memory
	if _, err := w.Platform.RunCampaign(context.Background(), cfg, mem.Add); err != nil {
		return err
	}
	lastMile, _, err := figures.Figure7(&mem, w.Index, cfg.Start)
	if err != nil {
		return err
	}
	added, err := lastMile.AddedLatencyMs()
	if err != nil {
		return err
	}
	fmt.Printf("\nmeasured wireless last-mile penalty: %.1f ms\n", added)

	// Figure 8: the feasibility zone derived from the measurement.
	fmt.Println("\n== Feasibility zone (Figure 8) ==")
	rep, lines8, err := figures.Figure8(lastMile, catalog)
	if err != nil {
		return err
	}
	for _, l := range lines8 {
		fmt.Println(l)
	}

	// The bandwidth side of the zone: which deployments actually congest a
	// metro backhaul without edge aggregation?
	fmt.Println("\n== Backhaul demand per application (1 GB/entity justification) ==")
	bw, err := bandwidth.Justify(catalog, bandwidth.Metro(), 0.95)
	if err != nil {
		return err
	}
	for _, l := range bw.Format() {
		fmt.Println(l)
	}
	breakEven, err := bandwidth.BreakEvenGBPerEntity(bandwidth.Metro(), 1.0)
	if err != nil {
		return err
	}
	fmt.Printf("metro break-even: %.2f GB/entity/day saturates the backhaul (paper threshold: ~1 GB)\n", breakEven)

	fmt.Println("\nconclusion:")
	fmt.Printf("  apps helped by a general-purpose edge: %v\n", rep.InZone())
	fmt.Printf("  their market ($%.0fB) pales against the out-of-zone market ($%.0fB)\n",
		rep.MarketInZone, rep.MarketOutZone)
	return nil
}
