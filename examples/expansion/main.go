// Expansion: the §6 "plausible deployments" analysis — where should the
// cloud expand next? A greedy facility-location pass over the probe
// population ranks the countries whose first in-country datacenter would
// most reduce global mean access latency, then shows a traceroute into the
// current worst region to explain why.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/expansion"
	"repro/internal/route"
	"repro/internal/world"
)

func main() {
	log.SetFlags(0)
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	w, err := world.Build(world.Config{Seed: 1, Probes: 500})
	if err != nil {
		return err
	}
	at := time.Date(2019, 9, 1, 12, 0, 0, 0, time.UTC)

	candidates := expansion.CountryCandidates(w.Platform, w.Countries)
	fmt.Printf("%d candidate countries without a local datacenter\n\n", len(candidates))

	plan, err := expansion.Greedy(w.Platform, candidates, 8, at)
	if err != nil {
		return err
	}
	fmt.Println("== Greedy expansion plan (minimize global mean best-RTT) ==")
	for _, l := range plan.Format() {
		fmt.Println(l)
	}
	fmt.Printf("total mean improvement: %.1f ms\n", plan.ImprovementMs())

	// Explain the first pick with a traceroute from one of its probes to
	// the currently nearest region: the delay sits in transit, not physics.
	first := plan.Selections[0].Candidate
	var probeID int
	for _, p := range w.Probes.Public() {
		if p.Country == first.Country {
			probeID = p.ID
			break
		}
	}
	if probeID == 0 {
		return fmt.Errorf("no probe in %s", first.Country)
	}
	pr, _ := w.Probes.Lookup(probeID)
	nearest := w.Catalog.Nearest(pr.Location)
	path, err := w.Platform.Path(pr, nearest)
	if err != nil {
		return err
	}
	tr, err := route.Expand(path, pr.Site(), nearest.Addr(), at)
	if err != nil {
		return err
	}
	fmt.Printf("\n== Why %s? Current path from probe %d to %s ==\n", first.Name, pr.ID, nearest.Addr())
	for _, l := range tr.Format() {
		fmt.Println(l)
	}
	fmt.Printf("segments: access=%.1fms transit=%.1fms backbone=%.1fms\n",
		tr.SegmentMs(route.HopAccess), tr.SegmentMs(route.HopTransit), tr.SegmentMs(route.HopBackbone))
	return nil
}
