// Campaign: drive the measurement platform the way the paper's methodology
// does, but through the HTTP API — discover probes by country and tag,
// create ping measurements toward a cloud region, wait for results, and
// check the credit spend. Everything runs in-process: the example starts
// its own atlasd-equivalent server.
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"time"

	"repro/internal/atlas"
	"repro/internal/world"
)

func main() {
	log.SetFlags(0)
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	w, err := world.Build(world.Config{Seed: 1, Probes: 400})
	if err != nil {
		return err
	}
	ledger := atlas.NewLedger()
	if err := ledger.Grant("research", 5000); err != nil {
		return err
	}
	live, err := atlas.NewLiveService(w.Platform, ledger, 1)
	if err != nil {
		return err
	}
	defer live.Close()
	srv, err := atlas.NewServer(w.Platform, ledger, live)
	if err != nil {
		return err
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	fmt.Printf("platform API at %s\n", ts.URL)

	client, err := atlas.NewClient(ts.URL, "research", ts.Client())
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	// Discover wired probes in France, like the paper's tag filtering.
	probes, err := client.Probes(ctx, atlas.ProbeFilter{Country: "FR", Tag: "ethernet", Limit: 3})
	if err != nil {
		return err
	}
	if len(probes) == 0 {
		// Fall back to any French probes.
		if probes, err = client.Probes(ctx, atlas.ProbeFilter{Country: "FR", Limit: 3}); err != nil {
			return err
		}
	}
	ids := make([]int, 0, len(probes))
	for _, p := range probes {
		ids = append(ids, p.ID)
		fmt.Printf("probe %d in %s tags=%v\n", p.ID, p.Country, p.Tags)
	}

	// List regions and pick the Paris datacenters as targets.
	regions, err := client.Regions(ctx)
	if err != nil {
		return err
	}
	var targets []string
	for _, r := range regions {
		if r.Country == "FR" {
			targets = append(targets, r.Addr)
		}
	}
	fmt.Printf("measuring to %d French regions\n", len(targets))

	for _, target := range targets {
		id, err := client.CreateMeasurement(ctx, target, ids, 4, 5*time.Millisecond, 10*time.Second)
		if err != nil {
			return err
		}
		samples, err := client.WaitDone(ctx, id)
		if err != nil {
			return err
		}
		min, lost := 0.0, 0
		for _, s := range samples {
			if s.Lost {
				lost++
				continue
			}
			if min == 0 || s.RTTms < min {
				min = s.RTTms
			}
		}
		fmt.Printf("  %-22s %d samples, min %.1f ms, %d lost\n", target, len(samples), min, lost)
	}

	balance, spent, err := client.Credits(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("credits: balance=%d spent=%d\n", balance, spent)
	return nil
}
