// Lastmile: reproduce the Figure 7 methodology end to end — generate a
// campaign, split probes into wired and wireless sets by user tag, and
// compare their latency to the nearest cloud region over time.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/atlas"
	"repro/internal/core"
	"repro/internal/probe"
	"repro/internal/results"
	"repro/internal/world"
)

func main() {
	log.SetFlags(0)
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	w, err := world.Build(world.Config{Seed: 1, Probes: 600})
	if err != nil {
		return err
	}
	wired := w.Probes.WithAnyTag(probe.WiredTags)
	wireless := w.Probes.WithAnyTag(probe.WirelessTags)
	fmt.Printf("probe sets by tag: %d wired, %d wireless\n", len(wired), len(wireless))

	cfg := atlas.TestCampaign()
	var mem results.Memory
	n, err := w.Platform.RunCampaign(context.Background(), cfg, mem.Add)
	if err != nil {
		return err
	}
	fmt.Printf("campaign: %d samples over %d rounds\n", n, cfg.Rounds())

	rep, err := core.LastMile(&mem, w.Index, cfg.Start, cfg.Interval*8) // daily bins
	if err != nil {
		return err
	}
	days := len(rep.Wired)
	if len(rep.Wireless) < days {
		days = len(rep.Wireless)
	}
	fmt.Println("\nday  wired-median  wireless-median (to nearest region, tier-1/2 countries)")
	for i := 0; i < days; i++ {
		fmt.Printf("%3d  %9.1f ms  %12.1f ms\n", i+1, rep.Wired[i].Median, rep.Wireless[i].Median)
	}

	ratio, err := rep.MedianRatio()
	if err != nil {
		return err
	}
	added, err := rep.AddedLatencyMs()
	if err != nil {
		return err
	}
	fmt.Printf("\nwireless takes %.1fx longer (adds %.1f ms) to reach the nearest cloud region\n", ratio, added)
	fmt.Println("paper reports ~2.5x and 10-40 ms added (§4.3)")
	return nil
}
