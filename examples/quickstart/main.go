// Quickstart: build the measurement world, ping a few cloud regions from a
// probe through the full echo/ping stack, and print where the nearest
// datacenter is — the reproduction's "hello world".
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/atlas"
	"repro/internal/world"
)

func main() {
	log.SetFlags(0)
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A small world: 400 synthetic probes, the 101 real cloud regions.
	w, err := world.Build(world.Config{Seed: 1, Probes: 400})
	if err != nil {
		return err
	}
	fmt.Printf("world: %d probes in %d countries, %d cloud regions\n",
		w.Probes.Len(), len(w.Probes.Countries()), w.Catalog.Len())

	// Pick the first public probe in Germany.
	probes := w.Probes.Public()
	var probeID int
	for _, p := range probes {
		if p.Country == "DE" {
			probeID = p.ID
			break
		}
	}
	if probeID == 0 {
		probeID = probes[0].ID
	}
	pr, _ := w.Probes.Lookup(probeID)
	fmt.Printf("probe %d: %s, %s last mile, tags %v\n", pr.ID, pr.Country, pr.Access, pr.Tags)

	// Live-ping its three geographically nearest regions over the virtual
	// network (full time scale: a ping takes its real RTT).
	ledger := atlas.NewLedger()
	if err := ledger.Grant("quickstart", 1000); err != nil {
		return err
	}
	svc, err := atlas.NewLiveService(w.Platform, ledger, 1)
	if err != nil {
		return err
	}
	defer svc.Close()

	targets := w.Platform.Targets(pr)
	if len(targets) > 3 {
		targets = targets[:3]
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	for _, r := range targets {
		id, err := svc.Create("quickstart", atlas.MeasurementSpec{
			Target:   r.Addr(),
			ProbeIDs: []int{pr.ID},
			Count:    3,
			Interval: 5 * time.Millisecond,
			Timeout:  10 * time.Second,
		})
		if err != nil {
			return err
		}
		m, err := svc.Wait(ctx, id)
		if err != nil {
			return err
		}
		best := 0.0
		for _, s := range m.Results {
			if !s.Lost && (best == 0 || s.RTTms < best) {
				best = s.RTTms
			}
		}
		fmt.Printf("  %-28s (%s, %s)  min RTT %.1f ms\n", r.Addr(), r.City, r.Country, best)
	}

	nearest := w.Catalog.Nearest(pr.Location)
	fmt.Printf("geographically nearest region: %s (%s)\n", nearest.Addr(), nearest.City)
	fmt.Printf("credits spent: %d\n", ledger.Spent("quickstart"))
	return nil
}
