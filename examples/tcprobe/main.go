// Tcprobe: the paper's planned TCP-probing extension (§5) — compare ICMP
// ping RTT against TCP connect time and time-to-first-byte toward the same
// cloud regions, showing how much application-level latency the in-cloud
// processing adds on top of the network.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/netsim"
	"repro/internal/ping"
	"repro/internal/tcping"
	"repro/internal/world"
)

func main() {
	log.SetFlags(0)
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	w, err := world.Build(world.Config{Seed: 1, Probes: 400})
	if err != nil {
		return err
	}
	// The platform itself is the Linker: netem delays between probe and
	// region addresses.
	net, err := netsim.NewNetwork(w.Platform)
	if err != nil {
		return err
	}
	defer net.Close()

	// Pick a Finnish probe; target the three nearest regions.
	var pr = w.Probes.Public()[0]
	for _, p := range w.Probes.Public() {
		if p.Country == "FI" {
			pr = p
			break
		}
	}
	fmt.Printf("probe %d (%s, %s last mile)\n", pr.ID, pr.Country, pr.Access)

	targets := w.Platform.Targets(pr)
	if len(targets) > 3 {
		targets = targets[:3]
	}

	// One endpoint per role: the ping responder and tcping server answer
	// under distinct addresses ("<region>" and "<region>/tcp").
	// Region "TCP" services add a modelled request-processing delay.
	for _, r := range targets {
		ep, err := net.Attach(r.Addr())
		if err != nil {
			return err
		}
		if _, err := ping.NewResponder(ep); err != nil {
			return err
		}
		tcpEp, err := net.Attach(r.Addr() + "/tcp")
		if err != nil {
			return err
		}
		_, err = tcping.NewServer(tcpEp, tcping.WithProcessingDelay(func(connID uint32) time.Duration {
			return time.Duration(3+connID%8) * time.Millisecond // 3-10 ms compute
		}))
		if err != nil {
			return err
		}
	}

	probeEp, err := net.Attach(pr.Addr())
	if err != nil {
		return err
	}
	pinger, err := ping.NewPinger(probeEp, uint16(pr.ID))
	if err != nil {
		return err
	}
	tcpProbeEp, err := net.Attach(pr.Addr() + "/tcp-client")
	if err != nil {
		return err
	}
	prober, err := tcping.NewProber(tcpProbeEp)
	if err != nil {
		return err
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	fmt.Println("\nregion                         ping-rtt  tcp-connect  ttfb     server-compute")
	for _, r := range targets {
		rtt, err := pinger.Ping(ctx, r.Addr(), 10*time.Second)
		if err != nil {
			return err
		}
		res, err := prober.Probe(ctx, r.Addr()+"/tcp", 10*time.Second)
		if err != nil {
			return err
		}
		fmt.Printf("%-30s %7.1fms %11.1fms %7.1fms %11.1fms\n",
			r.Addr(), ms(rtt), ms(res.ConnectRTT), ms(res.TTFB), ms(res.ProcessingDelay()))
	}
	fmt.Println("\nTCP connect time tracks ping (same network path); TTFB adds the")
	fmt.Println("in-cloud processing — the application-vs-network split of §5.")
	return nil
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
