// Offload: the §5 "Computing power" consideration — with RTTs taken from a
// measured campaign, decide per task whether to run it on-device, at a
// hypothetical edge, or in the cloud, and locate the crossover where the
// cloud's faster processors beat the edge's latency advantage.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/atlas"
	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/offload"
	"repro/internal/results"
	"repro/internal/world"
)

func main() {
	log.SetFlags(0)
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Measure the RTT landscape: a small campaign gives the wireless edge
	// RTT (last-mile floor) and the cloud RTT (EU nearest-DC median).
	w, err := world.Build(world.Config{Seed: 1, Probes: 400})
	if err != nil {
		return err
	}
	cfg := atlas.TestCampaign()
	var mem results.Memory
	if _, err := w.Platform.RunCampaign(context.Background(), cfg, mem.Add); err != nil {
		return err
	}
	lastMile, err := core.LastMile(&mem, w.Index, cfg.Start, cfg.Interval*8)
	if err != nil {
		return err
	}
	edgeRTT, err := lastMile.AddedLatencyMs()
	if err != nil {
		return err
	}
	full, err := core.FullDistribution(&mem, w.Index)
	if err != nil {
		return err
	}
	cloudRTT, err := full.Quantile(geo.Europe, 0.5)
	if err != nil {
		return err
	}
	fmt.Printf("measured RTTs: edge (wireless last mile) %.1f ms, cloud (EU median) %.1f ms\n\n",
		edgeRTT, cloudRTT)

	venues := offload.ReferenceVenues(edgeRTT, cloudRTT, 50)
	tasks := []offload.Task{
		{Name: "voice command", InputMB: 0.05, GFLOP: 0.5, DeadlineMs: 300},
		{Name: "AR frame analysis", InputMB: 0.5, GFLOP: 5, DeadlineMs: 50},
		{Name: "photo enhancement", InputMB: 4, GFLOP: 40, DeadlineMs: 2000},
		{Name: "video inference", InputMB: 8, GFLOP: 400, DeadlineMs: 5000},
	}
	fmt.Println("task                  best-venue  completion  meets-deadline")
	for _, task := range tasks {
		choices, err := offload.Decide(task, venues)
		if err != nil {
			return err
		}
		best := choices[0]
		fmt.Printf("%-20s  %-10s %9.1fms  %v\n",
			task.Name, best.Venue.Name, best.CompletionMs, best.MeetsDeadline)
	}

	// Where does the cloud overtake the edge?
	cross, err := offload.CrossoverGFLOP(1, venues[1], venues[2])
	if err != nil {
		return err
	}
	fmt.Printf("\nfor 1 MB inputs, the cloud overtakes the edge beyond %.1f GFLOP of compute\n", cross)
	fmt.Println("(§5: cloud processing power \"may far exceed the network latency gains\")")
	return nil
}
