package tix_test

import (
	"bytes"
	"context"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/atlas"
	"repro/internal/colf"
	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/results"
	"repro/internal/stats"
	"repro/internal/tix"
	"repro/internal/world"
)

// The tix tests drive a real campaign store sealed into many small
// blocks, and hold the index to the tentpole bar: whatever window is
// asked, composing pre-merged segment nodes must produce the same
// sample multiset — hence bit-identical quantiles and curves — as a
// cold fold over the raw samples.

// fixture is one built world + sealed binary store shared by the tests
// (read-only after construction).
type fixture struct {
	world   *world.World
	samples []results.Sample
	store   *results.Store
	blocks  []colf.BlockInfo
	binding tix.Binding
}

var (
	fixOnce sync.Once
	fix     *fixture
	fixErr  error
)

const fixBlockRows = 512 // small sealed blocks => a deep segment tree

func getFixture(t testing.TB) *fixture {
	t.Helper()
	fixOnce.Do(func() { fix, fixErr = buildFixture() })
	if fixErr != nil {
		t.Fatal(fixErr)
	}
	return fix
}

func buildFixture() (*fixture, error) {
	w, err := world.Build(world.Config{Seed: 3, Probes: 200})
	if err != nil {
		return nil, err
	}
	cfg := atlas.TestCampaign()
	cfg.End = cfg.Start.Add(6 * 24 * time.Hour) // 48 rounds ≈ 19K samples
	var mem results.Memory
	if _, err := w.Platform.RunCampaign(context.Background(), cfg, mem.Add); err != nil {
		return nil, err
	}
	var samples []results.Sample
	mem.ForEach(func(s results.Sample) error {
		samples = append(samples, s)
		return nil
	})

	dir, err := os.MkdirTemp("", "tixfix")
	if err != nil {
		return nil, err
	}
	meta := cfg.Meta(3, w.Probes.Len(), w.Catalog.Len())
	store, sink, err := results.Create(dir, meta, results.FormatBinary)
	if err != nil {
		return nil, err
	}
	for i, s := range samples {
		if err := sink.Write(s); err != nil {
			return nil, err
		}
		// Seal small blocks so the store holds a few dozen of them.
		if (i+1)%fixBlockRows == 0 {
			if err := sink.Flush(); err != nil {
				return nil, err
			}
		}
	}
	if err := sink.Close(); err != nil {
		return nil, err
	}
	r, closer, err := colf.Open(store.SamplesPath())
	if err != nil {
		return nil, err
	}
	blocks := append([]colf.BlockInfo(nil), r.Blocks()...)
	closer.Close()
	return &fixture{
		world:   w,
		samples: samples,
		store:   store,
		blocks:  blocks,
		binding: tix.Binding{
			PassSet: tix.PassSetCDF,
			Index:   w.Index.Fingerprint(),
			Meta:    core.MetaFingerprint(meta),
		},
	}, nil
}

// openSamples returns a ReaderAt over the samples file.
func (f *fixture) openSamples(t testing.TB) *os.File {
	t.Helper()
	sf, err := os.Open(f.store.SamplesPath())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sf.Close() })
	return sf
}

// build opens a fresh index at path and extends it over blocks.
func (f *fixture) build(t testing.TB, path string, blocks []colf.BlockInfo) *tix.Index {
	t.Helper()
	ix, err := tix.Open(path, f.binding, blocks, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ix.Close() })
	if err := ix.Extend(f.openSamples(t), blocks, f.world.Index); err != nil {
		t.Fatal(err)
	}
	return ix
}

// refFold is the ground truth: a cold in-memory fold of every sample
// in [since, until), with exactly the pass semantics of
// core.WindowCDFPass — lost rows skipped, unknown probes skipped,
// delivered RTTs grouped by the probe's continent.
func (f *fixture) refFold(t testing.TB, since, until time.Time) (map[geo.Continent]*stats.Dist, uint64, uint64) {
	return f.refFoldSamples(t, f.samples, since, until)
}

func (f *fixture) refFoldSamples(t testing.TB, samples []results.Sample, since, until time.Time) (map[geo.Continent]*stats.Dist, uint64, uint64) {
	t.Helper()
	dists := make(map[geo.Continent]*stats.Dist)
	var rows, delivered uint64
	for _, s := range samples {
		if !since.IsZero() && s.Time.Before(since) {
			continue
		}
		if !until.IsZero() && !s.Time.Before(until) {
			continue
		}
		rows++
		if s.Lost {
			continue
		}
		delivered++
		if !f.world.Index.Known(s.ProbeID) {
			continue
		}
		ct, ok := f.world.Index.Continent(s.ProbeID)
		if !ok {
			continue
		}
		d := dists[ct]
		if d == nil {
			d = &stats.Dist{}
			dists[ct] = d
		}
		if err := d.Add(s.RTTms); err != nil {
			t.Fatal(err)
		}
	}
	return dists, rows, delivered
}

// assertDistsIdentical compares two per-continent distribution sets by
// the quantities the serving layer publishes: sample counts, a dense
// quantile sweep, and the figure curve. Identical multisets make every
// one of these bit-identical; any drift is a real divergence.
func assertDistsIdentical(t testing.TB, got, want map[geo.Continent]*stats.Dist) {
	t.Helper()
	grid := core.DefaultGrid()
	for _, ct := range geo.Continents() {
		gd, wd := got[ct], want[ct]
		gn, wn := 0, 0
		if gd != nil {
			gn = gd.N()
		}
		if wd != nil {
			wn = wd.N()
		}
		if gn != wn {
			t.Fatalf("%v: index has %d samples, reference %d", ct, gn, wn)
		}
		if gn == 0 {
			continue
		}
		for q := 0; q <= 100; q++ {
			gq, err1 := gd.Quantile(float64(q) / 100)
			wq, err2 := wd.Quantile(float64(q) / 100)
			if err1 != nil || err2 != nil {
				t.Fatalf("%v: quantile errors %v / %v", ct, err1, err2)
			}
			if gq != wq {
				t.Fatalf("%v: q%d = %v via index, %v via reference", ct, q, gq, wq)
			}
		}
		gc, err1 := gd.Curve(grid)
		wc, err2 := wd.Curve(grid)
		if err1 != nil || err2 != nil {
			t.Fatalf("%v: curve errors %v / %v", ct, err1, err2)
		}
		if !reflect.DeepEqual(gc, wc) {
			t.Fatalf("%v: CDF curve diverges between index and reference", ct)
		}
	}
}

// sampleTime picks the timestamp of the i-th sample (clamped).
func (f *fixture) sampleTime(i int) time.Time {
	if i < 0 {
		i = 0
	}
	if i >= len(f.samples) {
		i = len(f.samples) - 1
	}
	return f.samples[i].Time
}

// TestQueryMatchesColdFold is the byte-identity gate: across full,
// unbounded, block-splitting, empty and past-frontier windows — plus a
// batch of randomly chosen boundaries — the index-composed window must
// match a cold fold exactly.
func TestQueryMatchesColdFold(t *testing.T) {
	f := getFixture(t)
	if len(f.blocks) < 16 {
		t.Fatalf("fixture sealed only %d blocks; tests need a real tree", len(f.blocks))
	}
	ix := f.build(t, filepath.Join(t.TempDir(), "samples.tix"), f.blocks)
	sf := f.openSamples(t)
	v := ix.View()
	ctx := context.Background()

	start := f.samples[0].Time
	end := f.samples[len(f.samples)-1].Time

	type window struct {
		name         string
		since, until time.Time
	}
	wins := []window{
		{"full", time.Time{}, time.Time{}},
		{"exact-span", start, end.Add(time.Nanosecond)},
		{"open-since", time.Time{}, f.sampleTime(len(f.samples) / 2)},
		{"open-until", f.sampleTime(len(f.samples) / 2), time.Time{}},
		{"mid-block-splitting", f.sampleTime(fixBlockRows / 2).Add(time.Nanosecond), f.sampleTime(len(f.samples) - fixBlockRows/3)},
		{"single-block-interior", f.sampleTime(fixBlockRows / 4), f.sampleTime(fixBlockRows / 2)},
		{"empty-zero-width", start.Add(time.Hour), start.Add(time.Hour)},
		{"empty-before-campaign", start.Add(-48 * time.Hour), start.Add(-24 * time.Hour)},
		{"empty-after-campaign", end.Add(24 * time.Hour), end.Add(48 * time.Hour)},
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 12; i++ {
		a, b := rng.Intn(len(f.samples)), rng.Intn(len(f.samples))
		if a > b {
			a, b = b, a
		}
		wins = append(wins, window{
			name:  "random-" + string(rune('a'+i)),
			since: f.sampleTime(a),
			until: f.sampleTime(b),
		})
	}

	for _, w := range wins {
		t.Run(w.name, func(t *testing.T) {
			res, err := v.Query(ctx, sf, f.blocks, w.since, w.until, f.world.Index)
			if err != nil {
				t.Fatal(err)
			}
			want, rows, delivered := f.refFold(t, w.since, w.until)
			if res.Rows != rows || res.Delivered != delivered {
				t.Fatalf("window covers %d/%d rows/delivered, reference %d/%d",
					res.Rows, res.Delivered, rows, delivered)
			}
			assertDistsIdentical(t, res.ByContinent, want)
		})
	}

	// The full window must actually be served by the tree, not by
	// decoding everything: composed nodes cover most blocks, and the
	// decode count stays logarithmic-ish, not linear.
	res, err := v.Query(ctx, sf, f.blocks, time.Time{}, time.Time{}, f.world.Index)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Nodes == 0 {
		t.Fatal("full-window query composed no segment nodes")
	}
	if dec := res.Stats.DecodedBlocks(); dec >= len(f.blocks)/2 {
		t.Fatalf("full-window query decoded %d of %d blocks", dec, len(f.blocks))
	}
	if got := res.Stats.NodeBlocks + res.Stats.DecodedBlocks() + res.Stats.SkippedBlocks; got != len(f.blocks) {
		t.Fatalf("query accounted for %d of %d blocks", got, len(f.blocks))
	}
}

// TestQueryPastFrontier extends the index over a prefix only: windows
// reaching past the built frontier must fall back to decoding the tail
// blocks and still match the cold fold.
func TestQueryPastFrontier(t *testing.T) {
	f := getFixture(t)
	prefix := len(f.blocks) / 2
	ix := f.build(t, filepath.Join(t.TempDir(), "samples.tix"), f.blocks[:prefix])
	sf := f.openSamples(t)
	v := ix.View()

	res, err := v.Query(context.Background(), sf, f.blocks, time.Time{}, time.Time{}, f.world.Index)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.FrontierBlocks == 0 {
		t.Fatal("no frontier fallback decodes despite a half-built index")
	}
	want, rows, delivered := f.refFold(t, time.Time{}, time.Time{})
	if res.Rows != rows || res.Delivered != delivered {
		t.Fatalf("rows/delivered %d/%d, reference %d/%d", res.Rows, res.Delivered, rows, delivered)
	}
	assertDistsIdentical(t, res.ByContinent, want)
}

// TestIncrementalMatchesBatch pins build determinism: growing the
// index one flush at a time writes the exact same file bytes as one
// shot over the full store, and re-extending an up-to-date index
// appends nothing.
func TestIncrementalMatchesBatch(t *testing.T) {
	f := getFixture(t)
	sf := f.openSamples(t)

	incPath := filepath.Join(t.TempDir(), "inc.tix")
	ix, err := tix.Open(incPath, f.binding, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 3; i <= len(f.blocks); i += 3 {
		if err := ix.Extend(sf, f.blocks[:i], f.world.Index); err != nil {
			t.Fatal(err)
		}
	}
	if err := ix.Extend(sf, f.blocks, f.world.Index); err != nil {
		t.Fatal(err)
	}
	nodes, frontier := ix.Nodes(), ix.Frontier()
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}
	if frontier != len(f.blocks) {
		t.Fatalf("frontier %d after full extend of %d blocks", frontier, len(f.blocks))
	}

	batchPath := filepath.Join(t.TempDir(), "batch.tix")
	f.build(t, batchPath, f.blocks)

	inc, err := os.ReadFile(incPath)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := os.ReadFile(batchPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(inc, batch) {
		t.Fatalf("incremental build (%d bytes) diverges from batch build (%d bytes)", len(inc), len(batch))
	}

	// Reopen: everything validates, nothing rebuilds.
	re, err := tix.Open(incPath, f.binding, f.blocks, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	// The frontier reconstructs from node ends, so an odd tail block
	// reads back as not-yet-processed; the nodes themselves must all
	// survive the reopen.
	if re.Nodes() != nodes || re.Frontier() > frontier {
		t.Fatalf("reopen lost state: %d/%d nodes, %d/%d frontier", re.Nodes(), nodes, re.Frontier(), frontier)
	}
	if err := re.Extend(sf, f.blocks, f.world.Index); err != nil {
		t.Fatal(err)
	}
	after, err := os.ReadFile(incPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(after, inc) {
		t.Fatal("idempotent re-extend changed the file")
	}
}

// TestBindingInvalidation: an index written under one binding must be
// discarded wholesale when reopened under another — the cold-fallback
// discipline shared with the snapshot sidecar.
func TestBindingInvalidation(t *testing.T) {
	f := getFixture(t)
	path := filepath.Join(t.TempDir(), "samples.tix")
	ix := f.build(t, path, f.blocks)
	if ix.Nodes() == 0 {
		t.Fatal("fixture index is empty")
	}
	ix.Close()

	other := f.binding
	other.Meta = "0000000000000000"
	re, err := tix.Open(path, other, f.blocks, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Nodes() != 0 || re.Frontier() != 0 {
		t.Fatalf("binding mismatch kept %d nodes, frontier %d", re.Nodes(), re.Frontier())
	}
	// And the file on disk was actually reset, not just ignored.
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() > 256 {
		t.Fatalf("reset index still holds %d bytes", st.Size())
	}
}

// TestCorruptionTruncatesSuffix: a flipped byte inside one record must
// drop that record and everything after it, keep the valid prefix, and
// let the next Extend grow the index back to a correct, queryable
// state.
func TestCorruptionTruncatesSuffix(t *testing.T) {
	f := getFixture(t)
	path := filepath.Join(t.TempDir(), "samples.tix")
	ix := f.build(t, path, f.blocks)
	nodes := ix.Nodes()
	ix.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)*2/3] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	re, err := tix.Open(path, f.binding, f.blocks, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Nodes() >= nodes {
		t.Fatalf("corruption kept all %d nodes", re.Nodes())
	}
	sf := f.openSamples(t)
	if err := re.Extend(sf, f.blocks, f.world.Index); err != nil {
		t.Fatal(err)
	}
	if re.Nodes() != nodes {
		t.Fatalf("rebuilt index has %d nodes, want %d", re.Nodes(), nodes)
	}
	res, err := re.View().Query(context.Background(), sf, f.blocks, time.Time{}, time.Time{}, f.world.Index)
	if err != nil {
		t.Fatal(err)
	}
	want, _, _ := f.refFold(t, time.Time{}, time.Time{})
	assertDistsIdentical(t, res.ByContinent, want)
}

// TestTornTailTruncated: a partial trailing record (a crash mid-append)
// is silently dropped at open.
func TestTornTailTruncated(t *testing.T) {
	f := getFixture(t)
	path := filepath.Join(t.TempDir(), "samples.tix")
	ix := f.build(t, path, f.blocks)
	nodes := ix.Nodes()
	ix.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	re, err := tix.Open(path, f.binding, f.blocks, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Nodes() != nodes-1 {
		t.Fatalf("torn tail left %d nodes, want %d", re.Nodes(), nodes-1)
	}
}

// TestStoreTruncationInvalidatesNodes: shrinking the sealed block list
// (a checkpoint rollback) must drop every node that no longer fits,
// because node byte ranges are pinned to the store's block layout.
func TestStoreTruncationInvalidatesNodes(t *testing.T) {
	f := getFixture(t)
	path := filepath.Join(t.TempDir(), "samples.tix")
	ix := f.build(t, path, f.blocks)
	ix.Close()

	short := f.blocks[:2]
	re, err := tix.Open(path, f.binding, short, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Frontier() > len(short) {
		t.Fatalf("frontier %d past the %d-block store", re.Frontier(), len(short))
	}
	sf := f.openSamples(t)
	if err := re.Extend(sf, short, f.world.Index); err != nil {
		t.Fatal(err)
	}
	res, err := re.View().Query(context.Background(), sf, short, time.Time{}, time.Time{}, f.world.Index)
	if err != nil {
		t.Fatal(err)
	}
	// Rounds share timestamps, so the reference must cut by position —
	// the first two blocks hold exactly the first 2*fixBlockRows
	// samples — not by a time window.
	want, _, _ := f.refFoldSamples(t, f.samples[:2*fixBlockRows], time.Time{}, time.Time{})
	assertDistsIdentical(t, res.ByContinent, want)
}
