package tix

import (
	"context"
	"fmt"
	"io"
	"math"
	"math/bits"
	"os"
	"time"

	"repro/internal/colf"
	"repro/internal/geo"
	"repro/internal/stats"
)

// View is an immutable query handle over the nodes an Index had stored
// when it was taken. Views are safe for concurrent use and for use
// concurrent with a later Extend on the parent Index.
type View struct {
	f        *os.File
	nodes    map[nodeKey]nodeRef
	frontier int
}

// QueryStats reports how a window was materialized — the observable
// difference between the index path and a cold scan.
type QueryStats struct {
	// Nodes is how many pre-merged segment nodes composed the window.
	Nodes int
	// NodeBlocks is how many sealed blocks those nodes covered — rows
	// the query never decoded.
	NodeBlocks int
	// EdgeBlocks is how many partially covered blocks were decoded and
	// row-filtered at the window boundaries.
	EdgeBlocks int
	// StrayBlocks is how many fully covered blocks below the frontier
	// were decoded singly because no stored node aligned with them (the
	// odd leaves of the decomposition).
	StrayBlocks int
	// FrontierBlocks is how many fully covered blocks past the built
	// frontier fell back to a direct decode.
	FrontierBlocks int
	// SkippedBlocks is how many blocks the window excluded outright.
	SkippedBlocks int
}

// DecodedBlocks is the total number of blocks the query had to decode.
func (q QueryStats) DecodedBlocks() int {
	return q.EdgeBlocks + q.StrayBlocks + q.FrontierBlocks
}

// Result is a materialized window: the per-continent delivered-RTT
// distributions of every sample in [since, until), plus the row totals
// the window covered and how it was assembled.
type Result struct {
	ByContinent map[geo.Continent]*stats.Dist
	Rows        uint64 // rows inside the window
	Delivered   uint64 // delivered rows inside the window
	Stats       QueryStats

	// counts accumulates the composed curve pre-aggregates: per
	// continent, per-bin sample counts on the fixed figure grid.
	counts map[geo.Continent][]uint64
}

// Curves returns the window's per-continent CDF curves over Grid(),
// composed purely from the node pre-aggregates and edge folds — no
// pass over the sample buffers. Every P value equals
// float64(samples <= x) / float64(N), the exact division Dist.CDF
// performs, so a figure rendered from these points is bit-identical to
// one swept from the composed distributions.
func (r *Result) Curves() map[geo.Continent][]stats.CDFPoint {
	out := make(map[geo.Continent][]stats.CDFPoint, len(r.ByContinent))
	for ct, d := range r.ByContinent {
		n := d.N()
		cnt := r.counts[ct]
		if n == 0 || cnt == nil {
			continue
		}
		pts := make([]stats.CDFPoint, curveBins)
		var cum uint64
		for k, x := range cnt {
			cum += x
			pts[k] = stats.CDFPoint{X: float64(k + 1), P: float64(cum) / float64(n)}
		}
		out[ct] = pts
	}
	return out
}

// Samples returns the total sample count across continents — the
// delivered rows whose probes the index resolves.
func (r *Result) Samples() int {
	n := 0
	for _, d := range r.ByContinent {
		n += d.N()
	}
	return n
}

// windowNanos converts the half-open [since, until) window to the nano
// bounds the row filters use; zero times mean unbounded.
func windowNanos(since, until time.Time) (int64, int64) {
	lo, hi := int64(math.MinInt64), int64(math.MaxInt64)
	if !since.IsZero() {
		lo = since.UnixNano()
	}
	if !until.IsZero() {
		hi = until.UnixNano()
	}
	return lo, hi
}

// Query materializes the window [since, until) over the store's sealed
// blocks: fully covered block runs compose from O(log n) pre-merged
// nodes, boundary blocks batch-decode and row-filter only their edge
// rows, and anything the index has not reached yet falls back to a
// direct decode. The result's distributions hold exactly the sample
// multiset a cold row scan of the same window would accumulate, so
// every rank query downstream answers identically.
//
// blocks must be the same sealed block list the parent Index was
// validated and extended against (or a prefix-consistent extension of
// it — extra blocks past the frontier are served by fallback decodes).
// store is the samples file; cls resolves probes exactly as at build
// time. The context is checked once per composed piece.
func (v *View) Query(ctx context.Context, store io.ReaderAt, blocks []colf.BlockInfo, since, until time.Time, cls Continents) (*Result, error) {
	if cls == nil {
		return nil, fmt.Errorf("tix: nil continent resolver")
	}
	pred := &colf.Predicate{Since: since, Until: until}
	sinceN, untilN := windowNanos(since, until)

	res := &Result{
		ByContinent: make(map[geo.Continent]*stats.Dist),
		counts:      make(map[geo.Continent][]uint64),
	}
	dec := colf.NewBlockDecoder()

	// absorb collects one more piece's distributions, in block order.
	// Node states arrive as serialized sorted slabs; combining happens
	// once at the end by a tournament of linear merges
	// (stats.CombineSorted), never an O(n log n) re-sort of the window —
	// that is the whole latency case for the index. The final multiset
	// is independent of how the window was pieced together. Curve counts
	// compose by plain integer addition.
	runs := make(map[geo.Continent][]*stats.Dist)
	absorb := func(ns *nodeState) error {
		for _, ct := range geo.Continents() {
			if nd := ns.dists[ct]; nd != nil {
				runs[ct] = append(runs[ct], nd)
			}
			if nc := ns.counts[ct]; nc != nil {
				c := res.counts[ct]
				if c == nil {
					c = make([]uint64, curveBins)
					res.counts[ct] = c
				}
				for i, x := range nc {
					c[i] += x
				}
			}
		}
		res.Rows += ns.rows
		res.Delivered += ns.delivered
		return nil
	}

	// decodeCovered handles one fully covered block with no usable
	// node: decode probe/rtt/lost and fold every row.
	decodeCovered := func(i int) error {
		blk, err := dec.DecodeCols(store, blocks[i], 0)
		if err != nil {
			return err
		}
		ns := newNodeState()
		ns.rows = uint64(blk.Zone.Rows)
		ns.delivered = uint64(blk.Zone.Delivered)
		if err := foldRows(ns, cls, blk, 0, blk.Rows()); err != nil {
			return err
		}
		return absorb(ns)
	}

	// flushRun decomposes a run of fully covered blocks [lo, hi) into
	// the largest aligned stored nodes, decoding the stray leaves the
	// dyadic decomposition leaves at the ends.
	flushRun := func(lo, hi int) error {
		for lo < hi {
			if err := ctx.Err(); err != nil {
				return err
			}
			used := false
			for level := bits.Len(uint(hi-lo)) - 1; level >= 1; level-- {
				span := 1 << level
				if lo%span != 0 {
					continue
				}
				ref, ok := v.nodes[nodeKey{level, lo}]
				if !ok {
					continue
				}
				ns, err := readNodeState(v.f, ref)
				if err != nil {
					return err
				}
				if err := absorb(ns); err != nil {
					return err
				}
				res.Stats.Nodes++
				res.Stats.NodeBlocks += span
				lo += span
				used = true
				break
			}
			if used {
				continue
			}
			if lo < v.frontier {
				res.Stats.StrayBlocks++
			} else {
				res.Stats.FrontierBlocks++
			}
			if err := decodeCovered(lo); err != nil {
				return err
			}
			lo++
		}
		return nil
	}

	runStart := -1 // start of the current fully covered run, -1 if none
	for i, bi := range blocks {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		covered := false
		switch {
		case !pred.MatchZone(bi.Zone):
			res.Stats.SkippedBlocks++
		case pred.CoversZone(bi.Zone):
			covered = true
		}
		if covered {
			if runStart < 0 {
				runStart = i
			}
			continue
		}
		if runStart >= 0 {
			if err := flushRun(runStart, i); err != nil {
				return nil, err
			}
			runStart = -1
		}
		if !pred.MatchZone(bi.Zone) {
			continue
		}
		// Edge block: the window cuts through it. Decode with the time
		// column and fold only the in-window rows.
		res.Stats.EdgeBlocks++
		blk, err := dec.DecodeCols(store, bi, colf.ColTime)
		if err != nil {
			return nil, err
		}
		ns := newNodeState()
		lo, hi, exact := blk.EdgeRows(sinceN, untilN)
		if exact {
			ns.rows = uint64(hi - lo)
			for j := lo; j < hi; j++ {
				if !blk.Lost[j] {
					ns.delivered++
				}
			}
			if err := foldRows(ns, cls, blk, lo, hi); err != nil {
				return nil, err
			}
		} else if err := foldEdgeRows(ns, cls, blk, sinceN, untilN); err != nil {
			return nil, err
		}
		if err := absorb(ns); err != nil {
			return nil, err
		}
	}
	if runStart >= 0 {
		if err := flushRun(runStart, len(blocks)); err != nil {
			return nil, err
		}
	}
	for ct, ds := range runs {
		d, err := stats.CombineSorted(ds)
		if err != nil {
			return nil, err
		}
		res.ByContinent[ct] = d
	}
	return res, nil
}

// foldEdgeRows is the slow edge path for a block whose time column is
// not monotone: every row tests against the window individually. The
// probe-run continent cache still applies.
func foldEdgeRows(ns *nodeState, cls Continents, blk *colf.Block, sinceN, untilN int64) error {
	lastProbe := 0
	var d *stats.Dist
	var cnt []uint64
	for i, tn := range blk.TimeNano {
		if tn < sinceN || tn >= untilN {
			continue
		}
		ns.rows++
		if blk.Lost[i] {
			continue
		}
		ns.delivered++
		probe := blk.Probe[i]
		if probe != lastProbe {
			lastProbe = probe
			d, cnt = nil, nil
			if cls.Known(probe) {
				if ct, ok := cls.Continent(probe); ok {
					if d = ns.dists[ct]; d == nil {
						d = &stats.Dist{}
						ns.dists[ct] = d
					}
					cnt = ns.bins(ct)
				}
			}
		}
		if d == nil {
			continue
		}
		v := blk.RTT[i]
		if err := d.Add(v); err != nil {
			return err
		}
		if k := curveBin(v); k >= 0 {
			cnt[k]++
		}
	}
	return nil
}
