package tix

import (
	"slices"
	"testing"

	"repro/internal/geo"
	"repro/internal/stats"
)

// fuzzSeedPayloads builds a few well-formed node payloads so the fuzzer
// starts from the interesting part of the input space.
func fuzzSeedPayloads(t testing.TB) [][]byte {
	t.Helper()
	mk := func(fill func(*nodeState)) []byte {
		ns := newNodeState()
		fill(ns)
		return encodeNode(1, 0, 8, 4096, ns)
	}
	add := func(ns *nodeState, ct geo.Continent, vals ...float64) {
		d := &stats.Dist{}
		cnt := ns.bins(ct)
		for _, v := range vals {
			if err := d.Add(v); err != nil {
				t.Fatal(err)
			}
			if k := curveBin(v); k >= 0 {
				cnt[k]++
			}
		}
		ns.dists[ct] = d
	}
	return [][]byte{
		mk(func(ns *nodeState) { ns.rows, ns.delivered = 4, 0 }),
		mk(func(ns *nodeState) {
			ns.rows, ns.delivered = 16, 9
			add(ns, geo.Europe, 12.5, 3.25, 88, 12.5)
			add(ns, geo.Oceania, 250.75)
		}),
		mk(func(ns *nodeState) {
			ns.rows, ns.delivered = 6, 6
			for i, ct := range geo.Continents() {
				add(ns, ct, float64(i+1)*7.5)
			}
		}),
	}
}

// FuzzNodeRoundTrip hammers the segment-node codec: arbitrary bytes
// must never panic the decoder, and any payload it accepts must
// re-encode into a payload that decodes to the same aggregate — the
// stability the on-disk tree depends on when parents merge children
// read back from the file.
func FuzzNodeRoundTrip(f *testing.F) {
	for _, seed := range fuzzSeedPayloads(f) {
		f.Add(seed)
	}
	f.Add([]byte{})
	f.Add([]byte{recNode})
	f.Add([]byte{recHeader, 1, 2, 3})

	f.Fuzz(func(t *testing.T, payload []byte) {
		if len(payload) == 0 || payload[0] != recNode {
			return
		}
		ref, ns, err := decodeNodeState(payload)
		if err != nil {
			return
		}
		re := encodeNode(ref.level, ref.start, ref.startOff, ref.endOff, ns)
		ref2, ns2, err := decodeNodeState(re)
		if err != nil {
			t.Fatalf("re-encoded payload rejected: %v", err)
		}
		if ref2.level != ref.level || ref2.start != ref.start ||
			ref2.startOff != ref.startOff || ref2.endOff != ref.endOff ||
			ref2.rows != ref.rows || ref2.delivered != ref.delivered {
			t.Fatalf("fixed fields drift: %+v vs %+v", ref2, ref)
		}
		for _, ct := range geo.Continents() {
			d1, d2 := ns.dists[ct], ns2.dists[ct]
			n1, n2 := 0, 0
			if d1 != nil {
				n1 = d1.N()
			}
			if d2 != nil {
				n2 = d2.N()
			}
			if n1 != n2 {
				t.Fatalf("%v: %d samples decode to %d after re-encode", ct, n1, n2)
			}
			if n1 == 0 {
				continue
			}
			if !slices.Equal(ns.counts[ct], ns2.counts[ct]) {
				t.Fatalf("%v: curve counts drift across re-encode", ct)
			}
			for _, q := range []float64{0, 0.25, 0.5, 0.99, 1} {
				v1, err1 := d1.Quantile(q)
				v2, err2 := d2.Quantile(q)
				if err1 != nil || err2 != nil {
					t.Fatalf("%v: quantile errors %v / %v", ct, err1, err2)
				}
				if v1 != v2 && !(v1 != v1 && v2 != v2) { // NaN-tolerant equality
					t.Fatalf("%v: q%.2f = %v before, %v after re-encode", ct, q, v1, v2)
				}
			}
		}
	})
}
