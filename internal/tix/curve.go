package tix

import "math"

// Curve pre-aggregates. Every node stores, per continent, how many of
// its samples fall into each integer-millisecond bin of the fixed
// figure grid (1..curveBins ms — the axis core.DefaultGrid serves), so
// a window's whole CDF curve composes by integer vector addition over
// the O(log n) nodes plus the edge folds, and one prefix sum at the
// end. The per-query cost is O(log n · bins) regardless of how many
// samples the window holds — the sample buffers are only touched for
// quantiles.
//
// Bin k holds the samples v with ceil(v) = k+1 (v <= 0 clamps into bin
// 0; v past the grid lands in no bin but still counts toward N). The
// prefix sum through bin k is then exactly |{v : v <= k+1}| — the same
// integer Dist.CDF computes at grid point x = k+1 — so the final
// division float64(cum)/float64(N) reproduces the swept curve bit for
// bit.
const curveBins = 400

// Grid returns the x-axis the pre-aggregated curves cover: integer
// milliseconds 1..curveBins, identical to core.DefaultGrid.
func Grid() []float64 {
	g := make([]float64, curveBins)
	for i := range g {
		g[i] = float64(i + 1)
	}
	return g
}

// curveBin maps one sample to its increment bin, or -1 when the sample
// lies past the grid. Samples pass Dist.Add validation before they are
// bucketed, so NaN and infinities never reach here.
func curveBin(v float64) int {
	if v > curveBins {
		return -1
	}
	k := int(math.Ceil(v)) - 1
	if k < 0 {
		k = 0
	}
	return k
}
