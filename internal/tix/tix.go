// Package tix is the temporal aggregate index: a power-of-two segment
// tree over the sealed blocks of a binary (colf) store, where each
// interior node stores the serialized, mergeable per-continent
// distribution state of every delivered sample in its block range. An
// arbitrary [since, until) window then composes O(log n) pre-merged
// nodes plus a batch decode of only the partially covered edge blocks,
// instead of re-scanning every row in the window.
//
// The index lives in a CRC-guarded sidecar (samples.tix) next to the
// samples file and grows incrementally as blocks seal, following the
// same binding-fingerprint/cold-fallback discipline as internal/snap: a
// header binds the file to (pass set, probe index, campaign meta,
// store format), every record carries its own Castagnoli CRC, and any
// mismatch — binding, torn tail, a node whose byte range no longer
// matches the store's block list — drops the invalid suffix or the
// whole file. Corruption is never worse than a cache miss: queries fall
// back to decoding blocks.
//
// # File layout
//
//	magic[8] = "TIX" 1 0 0 0 '\n'
//	record   = u32 len(payload) | payload | u32 crc32c(payload)
//	payload  = header (exactly one, first) | node
//	header   = 0x00 | passSet | indexFP | metaFP | format byte
//	node     = 0x01 | uvarint level | uvarint start
//	         | varint startOff | varint endOff
//	         | uvarint rows | uvarint delivered
//	         | uvarint #continents
//	         | ( continent byte | Dist state
//	           | uvarint #bins | uvarint bin increment * )*
//
// A node at level L covers blocks [start, start+2^L); level-0 leaves
// are never stored — a single block decodes in microseconds through
// the batch kernels, so persisting leaves would double the sidecar for
// no query win. Nodes append in completion order (the binary-counter
// order blocks seal in), which makes the file bytes a deterministic
// function of the store prefix: growing the index incrementally or
// rebuilding it in one pass produces identical files.
//
// Distribution state reuses the stats.Dist snapshot codec with the
// samples pre-sorted, so composing a window is a sorted-slab merge and
// every rank query over the composed state answers bit-identically to
// a cold row scan of the same window (rank queries depend only on the
// sample multiset). Each continent's state is followed by its curve
// pre-aggregate — per-bin sample counts on the fixed figure grid (see
// curve.go) — so the dense CDF curve a window renders composes by
// integer addition instead of a pass over the samples.
package tix

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"slices"

	"repro/internal/colf"
	"repro/internal/geo"
	"repro/internal/obs"
	"repro/internal/snap"
	"repro/internal/stats"
)

// magic identifies a temporal index sidecar; the fourth byte is the
// format version.
var magic = [8]byte{'T', 'I', 'X', 2, 0, 0, 0, '\n'}

// PassSetCDF names the pass state this format version stores per node:
// the per-continent delivered-RTT distribution behind /cdf and the
// windowed /quantile. A different pass set never applies.
const PassSetCDF = "continent-cdf-v1"

// maxLevel bounds node levels to a sane tree height (2^48 blocks is
// far past any real store); decoded levels above it mark corruption.
const maxLevel = 48

// maxRecordBytes bounds one record's payload. A node's payload is
// dominated by 8 bytes per delivered sample; half a billion samples in
// one node is past any store this format serves, so larger lengths are
// treated as corruption rather than allocated.
const maxRecordBytes = 1 << 32

// Record type tags.
const (
	recHeader = 0x00
	recNode   = 0x01
)

// Binding is the identity the sidecar binds to, mirroring the snapshot
// envelope: the pass set (PassSetCDF), the probe index fingerprint
// (core.Index.Fingerprint) and the campaign meta fingerprint
// (core.MetaFingerprint). An index opened under a different binding is
// discarded and rebuilt.
type Binding struct {
	PassSet string
	Index   string
	Meta    string
}

// Continents resolves probe IDs to continents — the slice of core.Index
// the leaf builder and edge-block folds need. The resolver used at
// build time must match the one used at query time; the Binding's
// index fingerprint is what pins that.
type Continents interface {
	Known(probe int) bool
	Continent(probe int) (geo.Continent, bool)
}

// nodeKey addresses one segment node: its level and first block index.
type nodeKey struct {
	level int
	start int
}

// nodeRef is the in-memory directory entry for one validated node:
// where its record payload sits in the sidecar and what it covers.
// Payloads are read back lazily per query; only refs stay resident.
type nodeRef struct {
	level            int
	start            int
	startOff, endOff int64 // covered byte range in the samples file
	rows, delivered  uint64
	payloadOff       int64 // file offset of the record payload
	payloadLen       int
}

// blocks returns the node's covered block count.
func (r nodeRef) blocks() int { return 1 << r.level }

// Index is a temporal aggregate index opened for maintenance: Extend
// appends nodes as blocks seal, View publishes immutable query
// handles. The Index itself is single-writer (callers serialize Extend
// and View); Views are safe for concurrent Query against a concurrent
// Extend, because records are append-only and a View only references
// records that existed when it was taken.
type Index struct {
	path    string
	f       *os.File
	binding Binding
	log     *obs.Logger

	nodes    map[nodeKey]nodeRef
	size     int64 // current file size (append offset)
	frontier int   // sealed blocks processed so far
	dec      *colf.BlockDecoder
}

// Open opens (or creates) the sidecar at path and validates it against
// the given binding and the store's current sealed block list. A
// missing file, a bad magic, or a binding mismatch yields a freshly
// initialized empty index; a torn or invalid record suffix is
// truncated away and the valid prefix kept. Open never decodes store
// blocks — call Extend to grow the index to the block list.
func Open(path string, b Binding, blocks []colf.BlockInfo, log *obs.Logger) (*Index, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	ix := &Index{
		path: path, f: f, binding: b, log: log,
		nodes: make(map[nodeKey]nodeRef),
		dec:   colf.NewBlockDecoder(),
	}
	if err := ix.load(blocks); err != nil {
		f.Close()
		return nil, err
	}
	return ix, nil
}

// load walks the existing file, validates every record, and truncates
// or recreates as the discipline demands.
func (ix *Index) load(blocks []colf.BlockInfo) error {
	buf, err := io.ReadAll(ix.f)
	if err != nil {
		return err
	}
	reset := func(reason string) error {
		ix.log.Info("tix reset", "path", ix.path, "reason", reason)
		ix.nodes = make(map[nodeKey]nodeRef)
		ix.frontier = 0
		return ix.recreate()
	}
	if len(buf) < len(magic) {
		if len(buf) != 0 {
			return reset("short file")
		}
		return ix.recreate()
	}
	if string(buf[:len(magic)]) != string(magic[:]) {
		return reset("bad magic")
	}

	off := int64(len(magic))
	sawHeader := false
	truncate := func(reason string, at int64) error {
		ix.log.Info("tix truncated", "path", ix.path, "reason", reason, "offset", at)
		if err := ix.f.Truncate(at); err != nil {
			return err
		}
		ix.size = at
		return nil
	}
	for int(off) < len(buf) {
		rest := buf[off:]
		if len(rest) < 4 {
			return truncate("torn record length", off)
		}
		n := int64(binary.LittleEndian.Uint32(rest))
		if n == 0 || n > maxRecordBytes || int64(len(rest)) < 4+n+4 {
			return truncate("torn record", off)
		}
		payload := rest[4 : 4+n]
		want := binary.LittleEndian.Uint32(rest[4+n:])
		if snap.Checksum(payload) != want {
			return truncate("record crc mismatch", off)
		}
		switch payload[0] {
		case recHeader:
			if sawHeader {
				return truncate("duplicate header", off)
			}
			hb, err := decodeHeader(payload)
			if err != nil {
				return reset("corrupt header: " + err.Error())
			}
			if hb != ix.binding {
				return reset("binding mismatch")
			}
			sawHeader = true
		case recNode:
			if !sawHeader {
				return reset("node before header")
			}
			ref, err := decodeNodeRef(payload)
			if err != nil {
				return truncate("corrupt node: "+err.Error(), off)
			}
			if err := validateNode(ref, blocks, ix.nodes); err != nil {
				return truncate("stale node: "+err.Error(), off)
			}
			ref.payloadOff = off + 4
			ref.payloadLen = int(n)
			ix.nodes[nodeKey{ref.level, ref.start}] = ref
			if end := ref.start + ref.blocks(); end > ix.frontier {
				ix.frontier = end
			}
		default:
			return truncate("unknown record type", off)
		}
		off += 4 + n + 4
	}
	if !sawHeader {
		return reset("missing header")
	}
	ix.size = off
	return nil
}

// recreate truncates the file to a fresh magic + header.
func (ix *Index) recreate() error {
	if err := ix.f.Truncate(0); err != nil {
		return err
	}
	if _, err := ix.f.WriteAt(magic[:], 0); err != nil {
		return err
	}
	ix.size = int64(len(magic))
	payload := encodeHeader(ix.binding)
	if err := ix.appendRecord(payload); err != nil {
		return err
	}
	return ix.f.Sync()
}

// appendRecord writes one length-prefixed, CRC-trailed record at the
// append offset.
func (ix *Index) appendRecord(payload []byte) error {
	rec := make([]byte, 0, len(payload)+8)
	rec = binary.LittleEndian.AppendUint32(rec, uint32(len(payload)))
	rec = append(rec, payload...)
	rec = binary.LittleEndian.AppendUint32(rec, snap.Checksum(payload))
	if _, err := ix.f.WriteAt(rec, ix.size); err != nil {
		return err
	}
	ix.size += int64(len(rec))
	return nil
}

// encodeHeader serializes the binding record.
func encodeHeader(b Binding) []byte {
	p := []byte{recHeader}
	p = snap.AppendString(p, b.PassSet)
	p = snap.AppendString(p, b.Index)
	p = snap.AppendString(p, b.Meta)
	return snap.AppendBool(p, true) // format: binary (the only store format indexed)
}

// decodeHeader parses a header record payload.
func decodeHeader(payload []byte) (Binding, error) {
	c := snap.NewCursor(payload[1:])
	var b Binding
	var err error
	if b.PassSet, err = c.String(); err != nil {
		return b, err
	}
	if b.Index, err = c.String(); err != nil {
		return b, err
	}
	if b.Meta, err = c.String(); err != nil {
		return b, err
	}
	if _, err = c.Bool(); err != nil {
		return b, err
	}
	if c.Remaining() != 0 {
		return b, fmt.Errorf("tix: %d trailing header bytes", c.Remaining())
	}
	return b, nil
}

// nodeState is one node's decoded aggregate: total rows and delivered
// rows covered, plus the per-continent delivered-RTT distributions of
// probes the index resolves and their curve pre-aggregates (per-bin
// sample counts on the fixed figure grid; always present alongside a
// non-empty distribution).
type nodeState struct {
	rows, delivered uint64
	dists           map[geo.Continent]*stats.Dist
	counts          map[geo.Continent][]uint64
}

func newNodeState() *nodeState {
	return &nodeState{
		dists:  make(map[geo.Continent]*stats.Dist),
		counts: make(map[geo.Continent][]uint64),
	}
}

// bins returns ct's curve count vector, creating it on first use.
func (ns *nodeState) bins(ct geo.Continent) []uint64 {
	c := ns.counts[ct]
	if c == nil {
		c = make([]uint64, curveBins)
		ns.counts[ct] = c
	}
	return c
}

// merge folds right — covering the blocks after ns's — into ns.
// Receiver-first ordering keeps the float accumulators a deterministic
// function of the block range, whichever extend path built the node.
func (ns *nodeState) merge(right *nodeState) error {
	ns.rows += right.rows
	ns.delivered += right.delivered
	for _, ct := range geo.Continents() {
		rd := right.dists[ct]
		if rd == nil {
			continue
		}
		d := ns.dists[ct]
		if d == nil {
			ns.dists[ct] = rd
			continue
		}
		if err := d.Merge(rd); err != nil {
			return err
		}
	}
	for _, ct := range geo.Continents() {
		rc := right.counts[ct]
		if rc == nil {
			continue
		}
		c := ns.bins(ct)
		for i, x := range rc {
			c[i] += x
		}
	}
	return nil
}

// encodeNode serializes one node record payload. Distributions write
// sorted, so every stored slab is ascending and a query-time compose
// is a linear sorted merge; each distribution is followed by its curve
// count vector.
func encodeNode(level, start int, startOff, endOff int64, ns *nodeState) []byte {
	p := []byte{recNode}
	p = snap.AppendUvarint(p, uint64(level))
	p = snap.AppendUvarint(p, uint64(start))
	p = snap.AppendVarint(p, startOff)
	p = snap.AppendVarint(p, endOff)
	p = snap.AppendUvarint(p, ns.rows)
	p = snap.AppendUvarint(p, ns.delivered)
	var cts []geo.Continent
	for _, ct := range geo.Continents() {
		if d := ns.dists[ct]; d != nil && d.N() > 0 {
			cts = append(cts, ct)
		}
	}
	p = snap.AppendUvarint(p, uint64(len(cts)))
	for _, ct := range cts {
		p = append(p, byte(ct))
		d := ns.dists[ct]
		d.Sort()
		p = d.AppendState(p)
		cnt := ns.counts[ct]
		p = snap.AppendUvarint(p, curveBins)
		for k := 0; k < curveBins; k++ {
			var x uint64
			if cnt != nil {
				x = cnt[k]
			}
			p = snap.AppendUvarint(p, x)
		}
	}
	return p
}

// decodeNodeRef parses a node payload's fixed fields, skipping the
// distribution section — what open-time validation needs.
func decodeNodeRef(payload []byte) (nodeRef, error) {
	ref, _, err := decodeNodeFixed(payload)
	return ref, err
}

// decodeNodeFixed parses the fixed fields and returns the cursor
// positioned at the distribution section.
func decodeNodeFixed(payload []byte) (nodeRef, *snap.Cursor, error) {
	var ref nodeRef
	c := snap.NewCursor(payload[1:])
	level, err := c.Uvarint()
	if err != nil {
		return ref, nil, err
	}
	start, err := c.Uvarint()
	if err != nil {
		return ref, nil, err
	}
	if level < 1 || level > maxLevel {
		return ref, nil, fmt.Errorf("tix: node level %d out of range", level)
	}
	if start > 1<<62 || start%(1<<level) != 0 {
		return ref, nil, fmt.Errorf("tix: node start %d misaligned for level %d", start, level)
	}
	ref.level, ref.start = int(level), int(start)
	if ref.startOff, err = c.Varint(); err != nil {
		return ref, nil, err
	}
	if ref.endOff, err = c.Varint(); err != nil {
		return ref, nil, err
	}
	if ref.startOff < 0 || ref.endOff <= ref.startOff {
		return ref, nil, fmt.Errorf("tix: node byte range [%d, %d) invalid", ref.startOff, ref.endOff)
	}
	if ref.rows, err = c.Uvarint(); err != nil {
		return ref, nil, err
	}
	if ref.delivered, err = c.Uvarint(); err != nil {
		return ref, nil, err
	}
	if ref.delivered > ref.rows {
		return ref, nil, fmt.Errorf("tix: node delivered %d exceeds rows %d", ref.delivered, ref.rows)
	}
	return ref, c, nil
}

// decodeNodeState parses a full node payload including its
// distribution section. The returned distributions alias payload (lazy
// spans); the caller must keep payload alive, which holds for per-read
// buffers.
func decodeNodeState(payload []byte) (nodeRef, *nodeState, error) {
	ref, c, err := decodeNodeFixed(payload)
	if err != nil {
		return ref, nil, err
	}
	n, err := c.Uvarint()
	if err != nil {
		return ref, nil, err
	}
	if n > uint64(len(geo.Continents())) {
		return ref, nil, fmt.Errorf("tix: node claims %d continents", n)
	}
	ns := newNodeState()
	ns.rows, ns.delivered = ref.rows, ref.delivered
	prev := -1
	var total uint64
	for i := uint64(0); i < n; i++ {
		cb, err := c.Byte()
		if err != nil {
			return ref, nil, err
		}
		ct := geo.Continent(cb)
		if int(cb) <= prev || ct == geo.ContinentUnknown || ct.Code() == "??" {
			return ref, nil, fmt.Errorf("tix: bad continent byte %d in node", cb)
		}
		prev = int(cb)
		d, err := stats.DecodeDistState(c)
		if err != nil {
			return ref, nil, err
		}
		total += uint64(d.N())
		ns.dists[ct] = d
		nb, err := c.Uvarint()
		if err != nil {
			return ref, nil, err
		}
		if nb != curveBins {
			return ref, nil, fmt.Errorf("tix: node curve has %d bins, want %d", nb, curveBins)
		}
		cnt := make([]uint64, curveBins)
		var csum uint64
		for k := range cnt {
			if cnt[k], err = c.Uvarint(); err != nil {
				return ref, nil, err
			}
			if cnt[k] > uint64(d.N()) {
				return ref, nil, fmt.Errorf("tix: node curve bin %d counts %d of %d samples", k, cnt[k], d.N())
			}
			csum += cnt[k]
		}
		if csum > uint64(d.N()) {
			return ref, nil, fmt.Errorf("tix: node curve counts %d samples, dist holds %d", csum, d.N())
		}
		ns.counts[ct] = cnt
	}
	if c.Remaining() != 0 {
		return ref, nil, fmt.Errorf("tix: %d trailing node bytes", c.Remaining())
	}
	if total > ref.delivered {
		return ref, nil, fmt.Errorf("tix: node holds %d samples but covers %d delivered rows", total, ref.delivered)
	}
	return ref, ns, nil
}

// validateNode pins a decoded node to the store's current block list:
// the covered block range must exist and its byte boundaries and row
// total must match exactly. A store that was truncated or rewritten
// shifts offsets and fails here, invalidating the node and everything
// appended after it.
func validateNode(ref nodeRef, blocks []colf.BlockInfo, seen map[nodeKey]nodeRef) error {
	span := ref.blocks()
	if ref.start+span > len(blocks) {
		return fmt.Errorf("node [%d, %d) past %d sealed blocks", ref.start, ref.start+span, len(blocks))
	}
	if _, dup := seen[nodeKey{ref.level, ref.start}]; dup {
		return fmt.Errorf("duplicate node level %d start %d", ref.level, ref.start)
	}
	if got := blocks[ref.start].Off; got != ref.startOff {
		return fmt.Errorf("node start offset %d, store block at %d", ref.startOff, got)
	}
	last := blocks[ref.start+span-1]
	if got := last.Off + last.Len; got != ref.endOff {
		return fmt.Errorf("node end offset %d, store block ends at %d", ref.endOff, got)
	}
	var rows, delivered uint64
	for _, bi := range blocks[ref.start : ref.start+span] {
		rows += uint64(bi.Zone.Rows)
		delivered += uint64(bi.Zone.Delivered)
	}
	if rows != ref.rows || delivered != ref.delivered {
		return fmt.Errorf("node covers %d/%d rows/delivered, store has %d/%d",
			ref.rows, ref.delivered, rows, delivered)
	}
	return nil
}

// readNodeState reads one node's payload back and decodes it, CRC
// re-verified (the page-cache read is cheap; the check keeps a
// post-open corruption from silently skewing a window).
func readNodeState(r io.ReaderAt, ref nodeRef) (*nodeState, error) {
	buf := make([]byte, ref.payloadLen+4)
	if _, err := r.ReadAt(buf, ref.payloadOff); err != nil {
		return nil, err
	}
	payload := buf[:ref.payloadLen]
	if want := binary.LittleEndian.Uint32(buf[ref.payloadLen:]); snap.Checksum(payload) != want {
		return nil, fmt.Errorf("tix: node at offset %d failed its CRC", ref.payloadOff)
	}
	_, ns, err := decodeNodeState(payload)
	return ns, err
}

// leafState decodes one sealed block and folds it into a fresh node
// state, mirroring core.WindowCDFPass.ObserveBlock exactly (probe-run
// continent caching, lost rows skipped) so index-composed windows see
// the same sample multiset a scan pass would.
func (ix *Index) leafState(store io.ReaderAt, bi colf.BlockInfo, cls Continents) (*nodeState, error) {
	blk, err := ix.dec.DecodeCols(store, bi, 0)
	if err != nil {
		return nil, err
	}
	ns := newNodeState()
	// blk.Zone is the CRC-verified footer zone — the trusted row totals.
	ns.rows = uint64(blk.Zone.Rows)
	ns.delivered = uint64(blk.Zone.Delivered)
	if err := foldRows(ns, cls, blk, 0, blk.Rows()); err != nil {
		return nil, err
	}
	return ns, nil
}

// foldRows folds the delivered rows [lo, hi) of blk into ns —
// distribution and curve counts together — resolving the continent
// once per probe run.
func foldRows(ns *nodeState, cls Continents, blk *colf.Block, lo, hi int) error {
	lastProbe := 0
	var d *stats.Dist
	var cnt []uint64
	for i := lo; i < hi; i++ {
		if blk.Lost[i] {
			continue
		}
		probe := blk.Probe[i]
		if probe != lastProbe {
			lastProbe = probe
			d, cnt = nil, nil
			if cls.Known(probe) {
				if ct, ok := cls.Continent(probe); ok {
					if d = ns.dists[ct]; d == nil {
						d = &stats.Dist{}
						ns.dists[ct] = d
					}
					cnt = ns.bins(ct)
				}
			}
		}
		if d == nil {
			continue
		}
		v := blk.RTT[i]
		if err := d.Add(v); err != nil {
			return err
		}
		if k := curveBin(v); k >= 0 {
			cnt[k]++
		}
	}
	return nil
}

// Extend grows the index to cover the given sealed block list, which
// must be the store's full list (a superset of what previous calls
// saw — the store is append-only). It replays the binary-counter
// completion schedule from block zero, appending every segment node
// not already stored: level-1 nodes fold their two leaf blocks, higher
// nodes merge their two children read back from the sidecar, so each
// block's rows decode at most once over the index's whole life. The
// full replay is what makes Extend self-healing — a corruption
// truncation that dropped interior nodes below the frontier gets them
// rebuilt on the next call, at the cost of cheap map lookups for
// everything already present. Appended records are fsynced once per
// call.
func (ix *Index) Extend(store io.ReaderAt, blocks []colf.BlockInfo, cls Continents) error {
	if cls == nil {
		return fmt.Errorf("tix: nil continent resolver")
	}
	wrote := false
	for i := 0; i < len(blocks); i++ {
		for level := 1; (i+1)%(1<<level) == 0; level++ {
			span := 1 << level
			start := i + 1 - span
			key := nodeKey{level, start}
			if _, ok := ix.nodes[key]; ok {
				continue
			}
			var left, right *nodeState
			var err error
			if level == 1 {
				if left, err = ix.leafState(store, blocks[start], cls); err != nil {
					return err
				}
				if right, err = ix.leafState(store, blocks[start+1], cls); err != nil {
					return err
				}
			} else {
				half := span / 2
				lref, lok := ix.nodes[nodeKey{level - 1, start}]
				rref, rok := ix.nodes[nodeKey{level - 1, start + half}]
				if !lok || !rok {
					return fmt.Errorf("tix: children of node level %d start %d missing", level, start)
				}
				if left, err = readNodeState(ix.f, lref); err != nil {
					return err
				}
				if right, err = readNodeState(ix.f, rref); err != nil {
					return err
				}
			}
			if err := left.merge(right); err != nil {
				return err
			}
			startOff := blocks[start].Off
			lastBlk := blocks[start+span-1]
			endOff := lastBlk.Off + lastBlk.Len
			payload := encodeNode(level, start, startOff, endOff, left)
			ref := nodeRef{
				level: level, start: start,
				startOff: startOff, endOff: endOff,
				rows: left.rows, delivered: left.delivered,
				payloadOff: ix.size + 4, payloadLen: len(payload),
			}
			if err := ix.appendRecord(payload); err != nil {
				return err
			}
			ix.nodes[key] = ref
			wrote = true
		}
	}
	ix.frontier = len(blocks)
	if wrote {
		if err := ix.f.Sync(); err != nil {
			return err
		}
	}
	return nil
}

// Frontier returns how many sealed blocks the index has processed.
func (ix *Index) Frontier() int { return ix.frontier }

// Nodes returns the stored node count.
func (ix *Index) Nodes() int { return len(ix.nodes) }

// Path returns the sidecar path.
func (ix *Index) Path() string { return ix.path }

// Close releases the sidecar handle. Views taken earlier must not be
// queried afterwards.
func (ix *Index) Close() error { return ix.f.Close() }

// View publishes an immutable query handle over the nodes stored so
// far. The directory is copied, so a later Extend never races a
// concurrent Query; the file handle is shared (records are append-only
// and a view only references records already written and synced).
func (ix *Index) View() *View {
	nodes := make(map[nodeKey]nodeRef, len(ix.nodes))
	for k, v := range ix.nodes {
		nodes[k] = v
	}
	return &View{f: ix.f, nodes: nodes, frontier: ix.frontier}
}

// levels returns the distinct node levels present, descending — handy
// for tests and the dataset CLI's index report.
func (ix *Index) levelsDesc() []int {
	var out []int
	seen := make(map[int]bool)
	for k := range ix.nodes {
		if !seen[k.level] {
			seen[k.level] = true
			out = append(out, k.level)
		}
	}
	slices.SortFunc(out, func(a, b int) int { return b - a })
	return out
}
