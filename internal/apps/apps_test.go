package apps

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestPaperCatalog(t *testing.T) {
	c := Paper()
	if c.Len() < 14 {
		t.Errorf("catalog has %d apps, Figure 2 shows more", c.Len())
	}
	// Every quadrant is populated.
	byQ := c.ByQuadrant()
	for _, q := range []Quadrant{Q1, Q2, Q3, Q4} {
		if len(byQ[q]) == 0 {
			t.Errorf("quadrant %v empty", q)
		}
	}
	// Spot-check the paper's canonical examples.
	cases := map[string]Quadrant{
		"Wearables":           Q1,
		"AR/VR":               Q2,
		"Autonomous vehicles": Q2,
		"Cloud gaming":        Q2,
		"Smart city":          Q3,
		"Smart home":          Q4,
		"Weather monitoring":  Q4,
	}
	for name, want := range cases {
		a, ok := c.Lookup(name)
		if !ok {
			t.Errorf("%s missing from catalog", name)
			continue
		}
		if got := a.Quadrant(); got != want {
			t.Errorf("%s in %v, want %v", name, got, want)
		}
	}
	if _, ok := c.Lookup("Teleportation"); ok {
		t.Error("nonexistent app found")
	}
}

func TestCatalogValidation(t *testing.T) {
	good := App{Name: "x", LatencyMs: Span{1, 10}, DataGBPerEntity: Span{0, 1}, MarketBUSD: 1}
	bad := []App{
		{},
		{Name: "x", LatencyMs: Span{10, 1}, DataGBPerEntity: Span{0, 1}},
		{Name: "x", LatencyMs: Span{0, 0}, DataGBPerEntity: Span{0, 1}},
		{Name: "x", LatencyMs: Span{1, 10}, DataGBPerEntity: Span{5, 1}},
		{Name: "x", LatencyMs: Span{1, 10}, DataGBPerEntity: Span{0, 1}, MarketBUSD: -1},
	}
	for i, a := range bad {
		if _, err := NewCatalog([]App{a}); err == nil {
			t.Errorf("case %d: invalid app accepted", i)
		}
	}
	if _, err := NewCatalog([]App{good, good}); err == nil {
		t.Error("duplicate accepted")
	}
	if _, err := NewCatalog(nil); err == nil {
		t.Error("empty catalog accepted")
	}
}

func TestSpanProperties(t *testing.T) {
	overlapSym := func(a, b Span) bool {
		norm := func(s Span) Span {
			if s.Lo < 0 {
				s.Lo = -s.Lo
			}
			if s.Hi < s.Lo {
				s.Lo, s.Hi = s.Hi, s.Lo
			}
			return s
		}
		a, b = norm(a), norm(b)
		return a.Overlaps(b) == b.Overlaps(a)
	}
	if err := quick.Check(overlapSym, nil); err != nil {
		t.Error(err)
	}
	s := Span{10, 20}
	if !s.Contains(10) || !s.Contains(20) || s.Contains(9.99) || s.Contains(20.01) {
		t.Error("Contains boundary mismatch")
	}
	if !s.Overlaps(Span{20, 30}) || s.Overlaps(Span{21, 30}) {
		t.Error("Overlaps boundary mismatch")
	}
}

func TestZoneValidation(t *testing.T) {
	if err := PaperZone().Validate(); err != nil {
		t.Fatalf("paper zone invalid: %v", err)
	}
	bad := []Zone{
		{LatencyFloorMs: 0, LatencyCeilMs: 250, BandwidthFloorGB: 1},
		{LatencyFloorMs: 250, LatencyCeilMs: 10, BandwidthFloorGB: 1},
		{LatencyFloorMs: 10, LatencyCeilMs: 250, BandwidthFloorGB: 0},
	}
	for i, z := range bad {
		if err := z.Validate(); err == nil {
			t.Errorf("case %d: invalid zone accepted", i)
		}
	}
	if _, err := DeriveZone(12, 250, 1); err != nil {
		t.Errorf("DeriveZone: %v", err)
	}
	if _, err := DeriveZone(300, 250, 1); err == nil {
		t.Error("inverted derived zone accepted")
	}
}

func TestFeasibilityFigure8(t *testing.T) {
	rep, err := Feasibility(Paper(), PaperZone())
	if err != nil {
		t.Fatal(err)
	}
	in := map[string]bool{}
	for _, name := range rep.InZone() {
		in[name] = true
	}
	// §5: traffic camera monitoring and cloud gaming sit inside the zone.
	for _, name := range []string{"Traffic camera monitoring", "Cloud gaming"} {
		if !in[name] {
			t.Errorf("%s should be in the feasibility zone", name)
		}
	}
	// §5: the hyped drivers are NOT in the zone — autonomous vehicles are
	// too strict, wearables too light, smart cities too relaxed.
	for _, name := range []string{"AR/VR", "Autonomous vehicles", "Wearables", "Smart city", "Smart home", "Weather monitoring"} {
		if in[name] {
			t.Errorf("%s should be outside the feasibility zone", name)
		}
	}
	// §5: the in-zone market pales compared to the out-zone market.
	if rep.MarketInZone >= rep.MarketOutZone {
		t.Errorf("in-zone market $%gB >= out-zone $%gB; paper reports the opposite",
			rep.MarketInZone, rep.MarketOutZone)
	}
	if got := len(rep.Format()); got != Paper().Len() {
		t.Errorf("Format lines = %d", got)
	}
}

func TestEvaluateReasons(t *testing.T) {
	z := PaperZone()
	// Too strict: autonomous vehicles need < 10ms.
	av, _ := Paper().Lookup("Autonomous vehicles")
	v, err := z.Evaluate(av)
	if err != nil {
		t.Fatal(err)
	}
	if v.LatencyGain || v.InZone {
		t.Errorf("verdict = %+v, want latency-infeasible", v)
	}
	if len(v.Reasons) == 0 || !strings.Contains(v.Reasons[0], "floor") {
		t.Errorf("reasons = %v", v.Reasons)
	}
	// Too relaxed: weather monitoring is fine in the cloud and too light.
	wm, _ := Paper().Lookup("Weather monitoring")
	v, err = z.Evaluate(wm)
	if err != nil {
		t.Fatal(err)
	}
	if v.InZone || v.LatencyGain || v.BandwidthGain {
		t.Errorf("verdict = %+v", v)
	}
	if len(v.Reasons) != 2 {
		t.Errorf("want two reasons, got %v", v.Reasons)
	}
	// Errors propagate.
	if _, err := z.Evaluate(App{}); err == nil {
		t.Error("invalid app evaluated")
	}
	if _, err := (Zone{}).Evaluate(av); err == nil {
		t.Error("invalid zone evaluated")
	}
	if _, err := Feasibility(nil, z); err == nil {
		t.Error("nil catalog evaluated")
	}
}

func TestTotalMarket(t *testing.T) {
	apps := []App{{MarketBUSD: 1.5}, {MarketBUSD: 2.5}}
	if got := TotalMarket(apps); got != 4 {
		t.Errorf("TotalMarket = %v", got)
	}
	if TotalMarket(nil) != 0 {
		t.Error("empty market not zero")
	}
}

func TestQuadrantString(t *testing.T) {
	for q, want := range map[Quadrant]string{Q1: "Q1", Q2: "Q2", Q3: "Q3", Q4: "Q4", QuadrantUnknown: "unknown"} {
		if !strings.HasPrefix(q.String(), want) {
			t.Errorf("%d.String() = %q", q, q.String())
		}
	}
}
