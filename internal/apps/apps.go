// Package apps models the applications driving the edge-computing hype
// (Figure 2) — their latency and bandwidth requirements, expected market
// sizes — and the feasibility-zone analysis (Figure 8) that intersects those
// requirements with the measured reality of cloud latency and last-mile
// access.
package apps

import (
	"fmt"
	"sort"
)

// Span is a [Lo, Hi] requirement interval; Lo==Hi models a point
// requirement. The paper draws each application as an ellipse to absorb
// estimation error; Span is the projection of that ellipse onto one axis.
type Span struct {
	Lo, Hi float64
}

// Valid reports interval sanity.
func (s Span) Valid() bool { return s.Lo >= 0 && s.Hi >= s.Lo }

// Contains reports whether v falls inside the span.
func (s Span) Contains(v float64) bool { return v >= s.Lo && v <= s.Hi }

// Overlaps reports whether two spans intersect.
func (s Span) Overlaps(o Span) bool { return s.Lo <= o.Hi && o.Lo <= s.Hi }

// App is one Figure 2 application.
type App struct {
	Name string
	// LatencyMs is the response-time window the application needs for
	// optimal operation (round trip).
	LatencyMs Span
	// DataGBPerEntity is the data volume one entity (camera, car, sensor)
	// generates per day, in gigabytes; it proxies bandwidth demand.
	DataGBPerEntity Span
	// MarketBUSD is the expected 2025 market in billions of USD (ellipse
	// color in the figure).
	MarketBUSD float64
}

// Validate checks the entry.
func (a App) Validate() error {
	if a.Name == "" {
		return fmt.Errorf("apps: unnamed application")
	}
	if !a.LatencyMs.Valid() || a.LatencyMs.Hi == 0 {
		return fmt.Errorf("apps: %s has invalid latency span %+v", a.Name, a.LatencyMs)
	}
	if !a.DataGBPerEntity.Valid() {
		return fmt.Errorf("apps: %s has invalid data span %+v", a.Name, a.DataGBPerEntity)
	}
	if a.MarketBUSD < 0 {
		return fmt.Errorf("apps: %s has negative market", a.Name)
	}
	return nil
}

// Quadrant is the Figure 2 grouping by latency strictness and bandwidth
// demand (§3).
type Quadrant uint8

// The four quadrants.
const (
	QuadrantUnknown Quadrant = iota
	Q1                       // low latency, low bandwidth (wearables, health)
	Q2                       // low latency, high bandwidth (AR/VR, vehicles, gaming)
	Q3                       // high latency, high bandwidth (smart city, video analytics)
	Q4                       // high latency, low bandwidth (smart home, weather)
)

// String names the quadrant as in the figure.
func (q Quadrant) String() string {
	switch q {
	case Q1:
		return "Q1 (low latency, low bandwidth)"
	case Q2:
		return "Q2 (low latency, high bandwidth)"
	case Q3:
		return "Q3 (high latency, high bandwidth)"
	case Q4:
		return "Q4 (high latency, low bandwidth)"
	default:
		return "unknown"
	}
}

// Quadrant thresholds: latency is "strict" below the perceivable-latency
// threshold; bandwidth is "high" above the 1 GB/entity aggregation-gain
// mark (§5).
const (
	StrictLatencyMs = 100.0 // PL threshold
	HighBandwidthGB = 1.0
)

// Quadrant classifies the application.
func (a App) Quadrant() Quadrant {
	strict := a.LatencyMs.Hi <= StrictLatencyMs
	heavy := a.DataGBPerEntity.Hi >= HighBandwidthGB
	switch {
	case strict && !heavy:
		return Q1
	case strict && heavy:
		return Q2
	case !strict && heavy:
		return Q3
	default:
		return Q4
	}
}

// Catalog is a validated set of applications.
type Catalog struct {
	apps []App
}

// NewCatalog validates and sorts the applications by name.
func NewCatalog(apps []App) (*Catalog, error) {
	seen := make(map[string]bool, len(apps))
	out := make([]App, 0, len(apps))
	for _, a := range apps {
		if err := a.Validate(); err != nil {
			return nil, err
		}
		if seen[a.Name] {
			return nil, fmt.Errorf("apps: duplicate application %q", a.Name)
		}
		seen[a.Name] = true
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("apps: empty catalog")
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return &Catalog{apps: out}, nil
}

// Paper returns the built-in Figure 2 catalog.
func Paper() *Catalog {
	c, err := NewCatalog(paperApps)
	if err != nil {
		panic(err) // covered by tests
	}
	return c
}

// All returns the applications sorted by name.
func (c *Catalog) All() []App { return c.apps }

// Len returns the catalog size.
func (c *Catalog) Len() int { return len(c.apps) }

// Lookup finds an application by name.
func (c *Catalog) Lookup(name string) (App, bool) {
	for _, a := range c.apps {
		if a.Name == name {
			return a, true
		}
	}
	return App{}, false
}

// ByQuadrant groups the catalog for the Figure 2 rendering.
func (c *Catalog) ByQuadrant() map[Quadrant][]App {
	out := make(map[Quadrant][]App)
	for _, a := range c.apps {
		q := a.Quadrant()
		out[q] = append(out[q], a)
	}
	return out
}

// TotalMarket sums the expected market of the given apps.
func TotalMarket(apps []App) float64 {
	sum := 0.0
	for _, a := range apps {
		sum += a.MarketBUSD
	}
	return sum
}
