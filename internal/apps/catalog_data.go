package apps

// paperApps encodes Figure 2: the applications reputedly enabled by edge
// computing, with latency windows (ms RTT), per-entity daily data volumes
// (GB), and expected 2025 market sizes ($B, Statista-derived as in the
// paper). Requirement estimates follow the published analyses the paper
// cites [7, 37, 42, 54, 64].
var paperApps = []App{
	// Quadrant II candidates: strict latency, heavy data.
	// AR/VR's window is the MTP compute+RTT budget (~2.5-7 ms, §3), not the
	// full 20 ms MTP: the display pipeline consumes the rest.
	{Name: "AR/VR", LatencyMs: Span{2.5, 7}, DataGBPerEntity: Span{10, 100}, MarketBUSD: 90},
	{Name: "360-degree streaming", LatencyMs: Span{10, 25}, DataGBPerEntity: Span{5, 50}, MarketBUSD: 25},
	{Name: "Cloud gaming", LatencyMs: Span{20, 100}, DataGBPerEntity: Span{1, 30}, MarketBUSD: 7},
	{Name: "Autonomous vehicles", LatencyMs: Span{1, 10}, DataGBPerEntity: Span{100, 4000}, MarketBUSD: 60},
	{Name: "Traffic camera monitoring", LatencyMs: Span{50, 100}, DataGBPerEntity: Span{5, 120}, MarketBUSD: 18},
	{Name: "Industrial robots", LatencyMs: Span{1, 20}, DataGBPerEntity: Span{1, 50}, MarketBUSD: 25},
	{Name: "Remote surgery", LatencyMs: Span{10, 150}, DataGBPerEntity: Span{0.5, 5}, MarketBUSD: 4},

	// Quadrant I: strict latency, light data.
	{Name: "Wearables", LatencyMs: Span{50, 100}, DataGBPerEntity: Span{0.001, 0.1}, MarketBUSD: 70},
	{Name: "Health monitoring", LatencyMs: Span{50, 100}, DataGBPerEntity: Span{0.01, 0.5}, MarketBUSD: 50},
	{Name: "Voice assistants", LatencyMs: Span{50, 100}, DataGBPerEntity: Span{0.01, 0.2}, MarketBUSD: 12},

	// Quadrant III: relaxed latency, heavy data.
	{Name: "Smart city", LatencyMs: Span{1000, 3600000}, DataGBPerEntity: Span{10, 1000}, MarketBUSD: 250},
	{Name: "Video streaming analytics", LatencyMs: Span{500, 60000}, DataGBPerEntity: Span{5, 200}, MarketBUSD: 100},
	{Name: "Connected factories", LatencyMs: Span{200, 60000}, DataGBPerEntity: Span{1, 100}, MarketBUSD: 40},

	// Quadrant IV: relaxed latency, light data.
	{Name: "Smart home", LatencyMs: Span{200, 60000}, DataGBPerEntity: Span{0.01, 0.5}, MarketBUSD: 150},
	{Name: "Weather monitoring", LatencyMs: Span{60000, 3600000}, DataGBPerEntity: Span{0.001, 0.05}, MarketBUSD: 3},
	{Name: "Smart parking", LatencyMs: Span{1000, 600000}, DataGBPerEntity: Span{0.001, 0.1}, MarketBUSD: 10},
}
