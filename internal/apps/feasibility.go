package apps

import (
	"fmt"
	"sort"
)

// Zone is the Figure 8 feasibility zone: the band of requirements where a
// general-purpose edge actually beats the cloud. An application gains from
// edge latency only if its latency need sits between the wireless last-mile
// floor (edge cannot go below it) and the human-reaction ceiling (above it,
// the cloud already suffices); it gains from edge bandwidth aggregation
// only if an entity generates enough data to congest the last mile.
type Zone struct {
	// LatencyFloorMs is the wireless access-link latency: no edge placement
	// can respond faster than the last mile allows (§5: ~10 ms).
	LatencyFloorMs float64
	// LatencyCeilMs is the ceiling beyond which the cloud already delivers
	// (§5: human reaction time, ~250 ms, met by the cloud almost globally).
	LatencyCeilMs float64
	// BandwidthFloorGB is the per-entity data volume above which edge
	// aggregation saves meaningful backhaul bandwidth (§5: ~1 GB).
	BandwidthFloorGB float64
}

// PaperZone is the boundary set the paper derives from its measurements.
func PaperZone() Zone {
	return Zone{LatencyFloorMs: 10, LatencyCeilMs: 250, BandwidthFloorGB: 1}
}

// DeriveZone builds the zone from measured quantities: the wireless
// last-mile median added latency (Figure 7) becomes the floor, the
// human-reaction threshold the ceiling.
func DeriveZone(wirelessAddedMs, hrtMs, bandwidthFloorGB float64) (Zone, error) {
	z := Zone{LatencyFloorMs: wirelessAddedMs, LatencyCeilMs: hrtMs, BandwidthFloorGB: bandwidthFloorGB}
	return z, z.Validate()
}

// Validate checks boundary sanity.
func (z Zone) Validate() error {
	if z.LatencyFloorMs <= 0 || z.LatencyCeilMs <= z.LatencyFloorMs {
		return fmt.Errorf("apps: invalid latency band [%v, %v]", z.LatencyFloorMs, z.LatencyCeilMs)
	}
	if z.BandwidthFloorGB <= 0 {
		return fmt.Errorf("apps: invalid bandwidth floor %v", z.BandwidthFloorGB)
	}
	return nil
}

// Verdict explains one application's Figure 8 placement.
type Verdict struct {
	App           App      `json:"app"`
	InZone        bool     `json:"in_zone"`
	LatencyGain   bool     `json:"latency_gain"`   // latency need overlaps the feasible band
	BandwidthGain bool     `json:"bandwidth_gain"` // data volume justifies aggregation
	Reasons       []string `json:"reasons"`
}

// Evaluate places one application against the zone.
func (z Zone) Evaluate(a App) (Verdict, error) {
	if err := z.Validate(); err != nil {
		return Verdict{}, err
	}
	if err := a.Validate(); err != nil {
		return Verdict{}, err
	}
	v := Verdict{App: a}
	switch {
	case a.LatencyMs.Hi <= z.LatencyFloorMs:
		// Even the app's loosest acceptable latency sits at or below what
		// the wireless last mile alone costs.
		v.Reasons = append(v.Reasons,
			fmt.Sprintf("latency need (<=%.1fms) is below the wireless last-mile floor (%.1fms): not satisfiable even at the edge",
				a.LatencyMs.Hi, z.LatencyFloorMs))
	case a.LatencyMs.Lo > z.LatencyCeilMs:
		v.Reasons = append(v.Reasons,
			fmt.Sprintf("latency need (>=%.1fms) is above HRT (%.1fms): the cloud already satisfies it",
				a.LatencyMs.Lo, z.LatencyCeilMs))
	default:
		v.LatencyGain = true
	}
	if a.DataGBPerEntity.Hi >= z.BandwidthFloorGB {
		v.BandwidthGain = true
	} else {
		v.Reasons = append(v.Reasons,
			fmt.Sprintf("data volume (<=%.3fGB/entity) is below the %.1fGB aggregation threshold",
				a.DataGBPerEntity.Hi, z.BandwidthFloorGB))
	}
	v.InZone = v.LatencyGain && v.BandwidthGain
	return v, nil
}

// FeasibilityReport is the Figure 8 dataset.
type FeasibilityReport struct {
	Zone     Zone      `json:"zone"`
	Verdicts []Verdict `json:"verdicts"` // sorted by app name

	// MarketInZone and MarketOutZone compare the expected market share
	// inside and outside the feasibility zone — the paper's observation
	// that the hyped applications are NOT the ones edge helps.
	MarketInZone  float64 `json:"market_in_zone_busd"`
	MarketOutZone float64 `json:"market_out_zone_busd"`
}

// Feasibility evaluates the whole catalog against the zone (Figure 8).
func Feasibility(c *Catalog, z Zone) (*FeasibilityReport, error) {
	if c == nil {
		return nil, fmt.Errorf("apps: nil catalog")
	}
	rep := &FeasibilityReport{Zone: z}
	for _, a := range c.All() {
		v, err := z.Evaluate(a)
		if err != nil {
			return nil, err
		}
		rep.Verdicts = append(rep.Verdicts, v)
		if v.InZone {
			rep.MarketInZone += a.MarketBUSD
		} else {
			rep.MarketOutZone += a.MarketBUSD
		}
	}
	sort.Slice(rep.Verdicts, func(i, j int) bool { return rep.Verdicts[i].App.Name < rep.Verdicts[j].App.Name })
	return rep, nil
}

// InZone lists the applications inside the feasibility zone, sorted.
func (r *FeasibilityReport) InZone() []string {
	var out []string
	for _, v := range r.Verdicts {
		if v.InZone {
			out = append(out, v.App.Name)
		}
	}
	return out
}

// Format renders figure-ready text lines.
func (r *FeasibilityReport) Format() []string {
	out := make([]string, 0, len(r.Verdicts))
	for _, v := range r.Verdicts {
		mark := "OUT"
		if v.InZone {
			mark = "IN "
		}
		out = append(out, fmt.Sprintf("%s %-26s market=$%gB quadrant=%v", mark, v.App.Name, v.App.MarketBUSD, v.App.Quadrant()))
	}
	return out
}
