package world

import "testing"

func TestBuildDefaultShapes(t *testing.T) {
	w, err := Build(Small())
	if err != nil {
		t.Fatal(err)
	}
	if w.Catalog.Len() != 101 {
		t.Errorf("regions = %d", w.Catalog.Len())
	}
	if w.Probes.Len() != 800 {
		t.Errorf("probes = %d", w.Probes.Len())
	}
	if len(w.Probes.Countries()) < 166 {
		t.Errorf("countries = %d", len(w.Probes.Countries()))
	}
	if w.Index == nil || w.Platform == nil || w.Model == nil || w.Countries == nil {
		t.Error("incomplete world")
	}
	// Index and population agree on the public set.
	for _, p := range w.Probes.Public() {
		if !w.Index.Known(p.ID) {
			t.Fatalf("public probe %d missing from index", p.ID)
		}
	}
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(Config{Seed: 1, Probes: 0}); err == nil {
		t.Error("zero probes accepted")
	}
	if _, err := Build(Config{Seed: 1, Probes: 10}); err == nil {
		t.Error("probe count below country coverage accepted")
	}
}

func TestDefaultConfigs(t *testing.T) {
	if Default().Probes < 3200 {
		t.Errorf("default census %d below the paper's 3200", Default().Probes)
	}
	if Small().Probes >= Default().Probes {
		t.Error("small config not smaller than default")
	}
}
