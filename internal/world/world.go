// Package world assembles the standard reproduction environment — country
// database, cloud catalog, probe census, latency model, platform, analysis
// index — from one seed, so commands, examples, and benchmarks all build
// the same world the same way.
package world

import (
	"fmt"

	"repro/internal/atlas"
	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/netem"
	"repro/internal/probe"
)

// Config selects the world size and randomness.
type Config struct {
	Seed   uint64 // drives both probe placement and the latency model
	Probes int    // census size (paper: 3300)
}

// Default is the paper-scale world.
func Default() Config { return Config{Seed: 1, Probes: 3300} }

// Small is a compact world for tests, examples, and benchmarks.
func Small() Config { return Config{Seed: 1, Probes: 800} }

// World bundles the assembled components.
type World struct {
	Countries *geo.DB
	Catalog   *cloud.Catalog
	Probes    *probe.Population
	Model     *netem.Model
	Platform  *atlas.Platform
	Index     *core.Index
}

// Build assembles a world.
func Build(cfg Config) (*World, error) {
	if cfg.Probes <= 0 {
		return nil, fmt.Errorf("world: non-positive probe count %d", cfg.Probes)
	}
	db := geo.World()
	cat, err := cloud.Deployment(db)
	if err != nil {
		return nil, err
	}
	gen := probe.DefaultGenConfig()
	gen.Seed = int64(cfg.Seed)
	gen.Count = cfg.Probes
	pop, err := probe.Generate(db, gen)
	if err != nil {
		return nil, err
	}
	model, err := netem.NewModel(netem.DefaultConfig(), cfg.Seed)
	if err != nil {
		return nil, err
	}
	platform, err := atlas.NewPlatform(pop, cat, model)
	if err != nil {
		return nil, err
	}
	idx, err := core.NewIndex(pop, db)
	if err != nil {
		return nil, err
	}
	return &World{
		Countries: db,
		Catalog:   cat,
		Probes:    pop,
		Model:     model,
		Platform:  platform,
		Index:     idx,
	}, nil
}
