// Package cloud models the study's measurement end-points: the 101 compute
// cloud regions of seven providers (Figure 3a) that the paper established
// VMs in, with real-world coordinates and the provider's backbone class
// (private wide-scale peered backbone vs public-Internet transit), which the
// latency model uses for path stretch.
package cloud

import (
	"fmt"
	"sort"

	"repro/internal/geo"
)

// Backbone classifies how a provider carries wide-area traffic (§4.1: some
// providers run private, high-bandwidth, low-latency backbones with
// wide-scale ISP peering; others largely rely on the public Internet).
type Backbone uint8

// Backbone classes.
const (
	BackboneUnknown Backbone = iota
	BackbonePrivate          // private backbone, broad ISP peering
	BackbonePublic           // public-Internet transit
)

// String names the backbone class.
func (b Backbone) String() string {
	switch b {
	case BackbonePrivate:
		return "private"
	case BackbonePublic:
		return "public"
	default:
		return "unknown"
	}
}

// Provider identifies one of the seven measured cloud operators.
type Provider struct {
	Name     string   // e.g. "Amazon"
	Backbone Backbone // wide-area transport class
}

// The seven providers of the study (§4.1).
var (
	Amazon       = Provider{Name: "Amazon", Backbone: BackbonePrivate}
	Google       = Provider{Name: "Google", Backbone: BackbonePrivate}
	Azure        = Provider{Name: "Microsoft Azure", Backbone: BackbonePrivate}
	Alibaba      = Provider{Name: "Alibaba", Backbone: BackbonePrivate}
	DigitalOcean = Provider{Name: "DigitalOcean", Backbone: BackbonePublic}
	Linode       = Provider{Name: "Linode", Backbone: BackbonePublic}
	Vultr        = Provider{Name: "Vultr", Backbone: BackbonePublic}
)

// Providers lists all seven operators in a stable order.
func Providers() []Provider {
	return []Provider{Amazon, Google, Azure, Alibaba, DigitalOcean, Linode, Vultr}
}

// Region is one cloud region hosting a measurement VM.
type Region struct {
	ID       string    // provider-native region identifier, e.g. "eu-north-1"
	Provider Provider  // owning operator
	City     string    // nearest city, for display
	Country  string    // ISO2 country code
	Location geo.Point // datacenter coordinates
}

// Addr returns the region's stable simulator address ("provider/id").
func (r *Region) Addr() string { return r.Provider.Name + "/" + r.ID }

// Catalog is an immutable set of regions with lookup helpers.
type Catalog struct {
	regions   []*Region
	byAddr    map[string]*Region
	continent map[*Region]geo.Continent
}

// NewCatalog validates regions against the country database and indexes
// them. Every region's country must exist in db and its location must be
// valid.
func NewCatalog(db *geo.DB, regions []Region) (*Catalog, error) {
	c := &Catalog{
		byAddr:    make(map[string]*Region, len(regions)),
		continent: make(map[*Region]geo.Continent, len(regions)),
	}
	for i := range regions {
		r := regions[i]
		if r.ID == "" || r.Provider.Name == "" {
			return nil, fmt.Errorf("cloud: region %d missing id or provider", i)
		}
		if !r.Location.Valid() {
			return nil, fmt.Errorf("cloud: region %s has invalid location", r.ID)
		}
		country, ok := db.Lookup(r.Country)
		if !ok {
			return nil, fmt.Errorf("cloud: region %s in unknown country %q", r.ID, r.Country)
		}
		rr := r
		if _, dup := c.byAddr[rr.Addr()]; dup {
			return nil, fmt.Errorf("cloud: duplicate region %s", rr.Addr())
		}
		c.regions = append(c.regions, &rr)
		c.byAddr[rr.Addr()] = &rr
		c.continent[&rr] = country.Continent
	}
	sort.Slice(c.regions, func(i, j int) bool { return c.regions[i].Addr() < c.regions[j].Addr() })
	return c, nil
}

// Deployment returns the built-in catalog of the 101 regions the paper
// targeted, validated against the world database.
func Deployment(db *geo.DB) (*Catalog, error) {
	return NewCatalog(db, deploymentRegions)
}

// All returns every region sorted by address. The slice must not be modified.
func (c *Catalog) All() []*Region { return c.regions }

// Len returns the number of regions.
func (c *Catalog) Len() int { return len(c.regions) }

// Lookup resolves a region by its "provider/id" address.
func (c *Catalog) Lookup(addr string) (*Region, bool) {
	r, ok := c.byAddr[addr]
	return r, ok
}

// Continent returns the continent a catalog region sits on.
func (c *Catalog) Continent(r *Region) geo.Continent { return c.continent[r] }

// ByContinent returns the regions on one continent, sorted by address.
func (c *Catalog) ByContinent(ct geo.Continent) []*Region {
	var out []*Region
	for _, r := range c.regions {
		if c.continent[r] == ct {
			out = append(out, r)
		}
	}
	return out
}

// ByProvider returns the regions of one provider, sorted by address.
func (c *Catalog) ByProvider(p Provider) []*Region {
	var out []*Region
	for _, r := range c.regions {
		if r.Provider.Name == p.Name {
			out = append(out, r)
		}
	}
	return out
}

// Countries returns the distinct ISO2 codes hosting at least one region,
// sorted.
func (c *Catalog) Countries() []string {
	set := make(map[string]bool)
	for _, r := range c.regions {
		set[r.Country] = true
	}
	out := make([]string, 0, len(set))
	for iso := range set {
		out = append(out, iso)
	}
	sort.Strings(out)
	return out
}

// Nearest returns the region geographically closest to p, or nil for an
// empty catalog.
func (c *Catalog) Nearest(p geo.Point) *Region {
	var best *Region
	bestKm := 0.0
	for _, r := range c.regions {
		d := geo.DistanceKm(p, r.Location)
		if best == nil || d < bestKm {
			best, bestKm = r, d
		}
	}
	return best
}

// TargetsFor returns the regions a probe on continent ct measures to,
// following the paper's same-continent rule with the Africa→Europe and
// South-America→North-America extensions.
func (c *Catalog) TargetsFor(ct geo.Continent) []*Region {
	var out []*Region
	for _, target := range ct.MeasurementTargets() {
		out = append(out, c.ByContinent(target)...)
	}
	return out
}
