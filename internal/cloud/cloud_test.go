package cloud

import (
	"testing"

	"repro/internal/geo"
)

func deployment(t *testing.T) *Catalog {
	t.Helper()
	cat, err := Deployment(geo.World())
	if err != nil {
		t.Fatalf("Deployment: %v", err)
	}
	return cat
}

func TestDeploymentMatchesPaper(t *testing.T) {
	cat := deployment(t)
	// §4.1: "101 cloud regions ... from seven cloud providers ... in 21
	// countries".
	if got := cat.Len(); got != 101 {
		t.Errorf("catalog has %d regions, paper targets 101", got)
	}
	if got := len(cat.Countries()); got != 21 {
		t.Errorf("catalog spans %d countries, paper reports 21: %v", got, cat.Countries())
	}
	for _, p := range Providers() {
		if len(cat.ByProvider(p)) == 0 {
			t.Errorf("provider %s has no regions", p.Name)
		}
	}
	if len(Providers()) != 7 {
		t.Errorf("have %d providers, paper uses 7", len(Providers()))
	}
}

func TestBackboneClasses(t *testing.T) {
	// §4.1: Amazon, Google (and Azure, Alibaba) run private backbones;
	// Linode-class operators ride the public Internet.
	private := []Provider{Amazon, Google, Azure, Alibaba}
	public := []Provider{DigitalOcean, Linode, Vultr}
	for _, p := range private {
		if p.Backbone != BackbonePrivate {
			t.Errorf("%s backbone = %v, want private", p.Name, p.Backbone)
		}
	}
	for _, p := range public {
		if p.Backbone != BackbonePublic {
			t.Errorf("%s backbone = %v, want public", p.Name, p.Backbone)
		}
	}
	if BackboneUnknown.String() != "unknown" || BackbonePrivate.String() != "private" || BackbonePublic.String() != "public" {
		t.Error("Backbone.String mismatch")
	}
}

func TestLookupAndAddr(t *testing.T) {
	cat := deployment(t)
	r, ok := cat.Lookup("Amazon/eu-north-1")
	if !ok {
		t.Fatal("Amazon/eu-north-1 not found")
	}
	if r.City != "Stockholm" || r.Country != "SE" {
		t.Errorf("eu-north-1 = %+v", r)
	}
	if r.Addr() != "Amazon/eu-north-1" {
		t.Errorf("Addr() = %q", r.Addr())
	}
	if _, ok := cat.Lookup("Amazon/nope"); ok {
		t.Error("Lookup(Amazon/nope) succeeded")
	}
}

func TestContinentAssignment(t *testing.T) {
	cat := deployment(t)
	r, _ := cat.Lookup("Microsoft Azure/southafricanorth")
	if got := cat.Continent(r); got != geo.Africa {
		t.Errorf("Johannesburg continent = %v, want Africa", got)
	}
	// §4.3: Africa has "only one operating region".
	if got := len(cat.ByContinent(geo.Africa)); got != 1 {
		t.Errorf("Africa has %d regions, paper reports 1", got)
	}
	// All six continents except Africa have multiple regions; South America
	// has at least 3 (AWS, GCP, Azure in Sao Paulo).
	if got := len(cat.ByContinent(geo.SouthAmerica)); got < 3 {
		t.Errorf("South America has %d regions, want >= 3", got)
	}
}

func TestNearest(t *testing.T) {
	cat := deployment(t)
	// Helsinki's nearest region must be the Hamina GCP datacenter.
	r := cat.Nearest(geo.Point{Lat: 60.17, Lon: 24.94})
	if r == nil || r.ID != "europe-north1" {
		t.Errorf("nearest to Helsinki = %v, want europe-north1", r)
	}
	// An empty catalog has no nearest region.
	empty := &Catalog{}
	if empty.Nearest(geo.Point{}) != nil {
		t.Error("empty catalog returned a nearest region")
	}
}

func TestTargetsFor(t *testing.T) {
	cat := deployment(t)
	// African probes also target Europe (§4.1).
	af := cat.TargetsFor(geo.Africa)
	eu := cat.ByContinent(geo.Europe)
	if len(af) != 1+len(eu) {
		t.Errorf("Africa targets %d regions, want 1 (local) + %d (Europe)", len(af), len(eu))
	}
	// South American probes also target North America.
	sa := cat.TargetsFor(geo.SouthAmerica)
	na := cat.ByContinent(geo.NorthAmerica)
	saLocal := cat.ByContinent(geo.SouthAmerica)
	if len(sa) != len(saLocal)+len(na) {
		t.Errorf("South America targets %d, want %d", len(sa), len(saLocal)+len(na))
	}
	// Europe stays local.
	if len(cat.TargetsFor(geo.Europe)) != len(eu) {
		t.Error("Europe targets differ from local regions")
	}
}

func TestNewCatalogValidation(t *testing.T) {
	db := geo.World()
	good := Region{ID: "r1", Provider: Amazon, City: "X", Country: "US", Location: geo.Point{Lat: 1, Lon: 1}}
	cases := []struct {
		name string
		rs   []Region
	}{
		{"missing id", []Region{{Provider: Amazon, Country: "US", Location: geo.Point{Lat: 1, Lon: 1}}}},
		{"missing provider", []Region{{ID: "x", Country: "US", Location: geo.Point{Lat: 1, Lon: 1}}}},
		{"bad location", []Region{{ID: "x", Provider: Amazon, Country: "US", Location: geo.Point{Lat: 999, Lon: 0}}}},
		{"unknown country", []Region{{ID: "x", Provider: Amazon, Country: "ZZ", Location: geo.Point{Lat: 1, Lon: 1}}}},
		{"duplicate", []Region{good, good}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewCatalog(db, tc.rs); err == nil {
				t.Error("NewCatalog accepted invalid input")
			}
		})
	}
	if _, err := NewCatalog(db, []Region{good}); err != nil {
		t.Errorf("NewCatalog rejected valid region: %v", err)
	}
}

func TestAllSorted(t *testing.T) {
	cat := deployment(t)
	all := cat.All()
	for i := 1; i < len(all); i++ {
		if all[i-1].Addr() >= all[i].Addr() {
			t.Fatalf("All() not sorted at %d: %s >= %s", i, all[i-1].Addr(), all[i].Addr())
		}
	}
}
