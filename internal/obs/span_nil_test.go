package obs

import (
	"bytes"
	"context"
	"testing"
	"time"
)

// TestNilSpanInert pins the package's contract that a nil *Span is a
// no-op for EVERY public method: instrumented code runs untraced with
// no guards, and a disabled -trace flag costs nothing. Each method is
// exercised explicitly so adding a method without a nil guard fails
// here rather than panicking inside a campaign.
func TestNilSpanInert(t *testing.T) {
	var s *Span

	if c := s.Child("child"); c != nil {
		t.Error("nil.Child returned a non-nil span")
	}
	s.SetAttr("k", "v") // must not panic
	s.End()             // must not panic
	if d := s.Duration(); d != 0 {
		t.Errorf("nil.Duration = %v, want 0", d)
	}
	if d := s.Dump(); d.Name != "" || len(d.Children) != 0 || d.Attrs != nil {
		t.Errorf("nil.Dump = %+v, want zero value", d)
	}
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Errorf("nil.WriteJSON error: %v", err)
	}
	if buf.Len() != 0 {
		t.Errorf("nil.WriteJSON wrote %q, want nothing", buf.String())
	}
	if err := s.WriteChromeTrace(&buf); err != nil {
		t.Errorf("nil.WriteChromeTrace error: %v", err)
	}
	if buf.Len() != 0 {
		t.Errorf("nil.WriteChromeTrace wrote %q, want nothing", buf.String())
	}

	// Context plumbing: a nil span round-trips as nil without storing.
	ctx := context.Background()
	if got := ContextWith(ctx, s); got != ctx {
		t.Error("ContextWith(nil) allocated a new context")
	}
	if got := From(ctx); got != nil {
		t.Errorf("From(empty ctx) = %v, want nil", got)
	}

	// The whole chain composes: a nil root yields nil children that stay
	// inert through arbitrarily deep instrumentation.
	deep := s.Child("a").Child("b").Child("c")
	deep.SetAttr("x", 1)
	deep.End()
	if deep != nil {
		t.Error("nil chain produced a live span")
	}
}

// TestNilSpanConcurrent exercises the nil no-ops from many goroutines,
// mirroring how fan-out workers hit a disabled trace; runs under -race
// in scripts/check.sh.
func TestNilSpanConcurrent(t *testing.T) {
	var s *Span
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for j := 0; j < 100; j++ {
				c := s.Child("w")
				c.SetAttr("j", j)
				_ = c.Duration()
				c.End()
			}
		}()
	}
	timeout := time.After(5 * time.Second)
	for i := 0; i < 8; i++ {
		select {
		case <-done:
		case <-timeout:
			t.Fatal("nil span goroutines hung")
		}
	}
}
