package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func fixedClock() func() time.Time {
	return func() time.Time { return time.Date(2020, 6, 1, 12, 0, 0, 0, time.UTC) }
}

func TestLoggerTextFormat(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, WithLogClock(fixedClock()))
	l.With("shears").Info("campaign done", "samples", 42, "rate", 1.5, "out", "my dir")
	got := buf.String()
	want := `ts=2020-06-01T12:00:00Z level=info component=shears msg="campaign done" samples=42 rate=1.5 out="my dir"` + "\n"
	if got != want {
		t.Errorf("logfmt line:\n got %q\nwant %q", got, want)
	}
}

func TestLoggerJSONFormat(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, WithLogFormat(FormatJSON), WithLogClock(fixedClock()))
	l.With("atlasd").Warn("slow request", "route", "probes", "ms", 12.5)
	var obj map[string]any
	if err := json.Unmarshal(buf.Bytes(), &obj); err != nil {
		t.Fatalf("JSON line does not parse: %v\n%s", err, buf.String())
	}
	for k, want := range map[string]any{
		"level":     "warn",
		"component": "atlasd",
		"msg":       "slow request",
		"route":     "probes",
		"ms":        12.5,
	} {
		if obj[k] != want {
			t.Errorf("field %q = %v, want %v", k, obj[k], want)
		}
	}
	if _, err := time.Parse(time.RFC3339Nano, obj["ts"].(string)); err != nil {
		t.Errorf("ts field: %v", err)
	}
}

func TestLoggerLevelGate(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, WithLogLevel(LevelWarn))
	l.Debug("dropped")
	l.Info("dropped")
	l.Warn("kept")
	l.Error("kept")
	if n := strings.Count(buf.String(), "\n"); n != 2 {
		t.Errorf("level gate let %d lines through, want 2:\n%s", n, buf.String())
	}
	if l.Enabled(LevelInfo) {
		t.Error("Enabled(info) = true with warn-level logger")
	}
	if !l.Enabled(LevelError) {
		t.Error("Enabled(error) = false with warn-level logger")
	}
}

func TestLoggerNilInert(t *testing.T) {
	var l *Logger
	// None of these may panic.
	l.Debug("x")
	l.Info("x", "k", 1)
	l.Warn("x")
	l.Error("x", "err", fmt.Errorf("boom"))
	if l.With("sub") != nil {
		t.Error("nil Logger With returned non-nil")
	}
	if l.Enabled(LevelError) {
		t.Error("nil Logger Enabled returned true")
	}
	if l.Component() != "" {
		t.Error("nil Logger Component returned non-empty")
	}
	if l.Recorder() != nil {
		t.Error("nil Logger Recorder returned non-nil")
	}
	var r *Recorder
	r.Record(Event{})
	if r.Events() != nil || r.Total() != 0 {
		t.Error("nil Recorder not inert")
	}
}

func TestLoggerSubComponentNesting(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf).With("shears").With("scan")
	if got := l.Component(); got != "shears.scan" {
		t.Errorf("nested component = %q, want shears.scan", got)
	}
}

func TestLoggerNormalizesValues(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, WithLogClock(fixedClock()))
	l.Info("m", "err", fmt.Errorf("sink: broken"), "took", 1500*time.Millisecond)
	got := buf.String()
	if !strings.Contains(got, `err="sink: broken"`) {
		t.Errorf("error value not normalized: %q", got)
	}
	if !strings.Contains(got, "took=1.5s") {
		t.Errorf("duration value not normalized: %q", got)
	}
}

func TestLoggerOddKVKept(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf)
	l.Info("m", "k1", 1, "dangling")
	if !strings.Contains(buf.String(), "!extra=dangling") {
		t.Errorf("odd trailing value dropped: %q", buf.String())
	}
}

func TestRecorderRingEviction(t *testing.T) {
	r := NewRecorder(3)
	for i := 0; i < 5; i++ {
		r.Record(Event{Msg: fmt.Sprintf("e%d", i)})
	}
	events := r.Events()
	if len(events) != 3 {
		t.Fatalf("ring kept %d events, want 3", len(events))
	}
	for i, want := range []string{"e2", "e3", "e4"} {
		if events[i].Msg != want {
			t.Errorf("events[%d] = %q, want %q (oldest first)", i, events[i].Msg, want)
		}
	}
	if r.Total() != 5 {
		t.Errorf("Total = %d, want 5", r.Total())
	}
}

func TestRecorderWriteJSON(t *testing.T) {
	r := NewRecorder(2)
	l := NewLogger(nil, WithRecorder(r), WithLogClock(fixedClock()))
	l.With("engine").Info("checkpoint", "round", 16)
	l.With("engine").Info("checkpoint", "round", 32)
	l.With("engine").Info("checkpoint", "round", 48)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var dump struct {
		Total   uint64           `json:"total"`
		Dropped uint64           `json:"dropped"`
		Events  []map[string]any `json:"events"`
	}
	if err := json.Unmarshal(buf.Bytes(), &dump); err != nil {
		t.Fatalf("events dump does not parse: %v\n%s", err, buf.String())
	}
	if dump.Total != 3 || dump.Dropped != 1 || len(dump.Events) != 2 {
		t.Errorf("dump total=%d dropped=%d events=%d, want 3/1/2", dump.Total, dump.Dropped, len(dump.Events))
	}
	if dump.Events[0]["round"] != float64(32) {
		t.Errorf("oldest retained event round = %v, want 32", dump.Events[0]["round"])
	}
	if dump.Events[0]["component"] != "engine" {
		t.Errorf("component lost in dump: %v", dump.Events[0])
	}
}

func TestLoggerConcurrent(t *testing.T) {
	var buf bytes.Buffer
	rec := NewRecorder(64)
	l := NewLogger(&buf, WithRecorder(rec))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sub := l.With(fmt.Sprintf("g%d", g))
			for i := 0; i < 50; i++ {
				sub.Info("tick", "i", i)
			}
		}(g)
	}
	wg.Wait()
	if n := strings.Count(buf.String(), "\n"); n != 400 {
		t.Errorf("concurrent writers produced %d lines, want 400", n)
	}
	for _, line := range strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n") {
		if !strings.HasPrefix(line, "ts=") || !strings.Contains(line, "msg=tick") {
			t.Fatalf("torn log line: %q", line)
		}
	}
	if rec.Total() != 400 {
		t.Errorf("recorder saw %d events, want 400", rec.Total())
	}
}

func TestParseLevelAndFormat(t *testing.T) {
	for in, want := range map[string]Level{
		"debug": LevelDebug, "info": LevelInfo, "warn": LevelWarn,
		"warning": LevelWarn, "error": LevelError, "": LevelInfo,
	} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel accepted garbage")
	}
	for in, want := range map[string]LogFormat{"text": FormatText, "logfmt": FormatText, "json": FormatJSON, "": FormatText} {
		got, err := ParseLogFormat(in)
		if err != nil || got != want {
			t.Errorf("ParseLogFormat(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseLogFormat("xml"); err == nil {
		t.Error("ParseLogFormat accepted garbage")
	}
}
