package obs

import (
	"flag"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestRunManifestRoundTrip(t *testing.T) {
	start := time.Date(2020, 6, 1, 12, 0, 0, 0, time.UTC)
	m := NewRunManifest("shears", start)
	if m.RunID == "" || m.GoVersion == "" || m.GOMAXPROCS < 1 {
		t.Fatalf("identity fields not seeded: %+v", m)
	}
	if !strings.HasPrefix(m.RunID, "20200601T120000Z-") {
		t.Errorf("run ID %q not timestamp-prefixed", m.RunID)
	}
	m.WorldFingerprint = "abc123"
	m.Workers = 4
	m.Samples = 100000
	m.SamplesPerSec = 25000
	m.Snapshot = &SnapshotCoverage{PrefixBlocks: 22, BlocksRead: 1, BlocksTotal: 23}
	m.PeakQueueDepth = 9
	m.SetStagesFromDump(testTrace().Dump())
	m.Finish(start.Add(90 * time.Second))

	path := filepath.Join(t.TempDir(), "run.json")
	if err := m.Write(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRunManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.RunID != m.RunID || got.Binary != "shears" || got.DurationMs != 90000 {
		t.Errorf("round trip lost identity: %+v", got)
	}
	if len(got.Stages) != 2 || got.Stages[0].Name != "world.build" || got.Stages[1].Name != "campaign" {
		t.Errorf("stages = %+v, want top-level span children in order", got.Stages)
	}
	if got.Snapshot == nil || got.Snapshot.BlocksTotal != 23 {
		t.Errorf("snapshot coverage lost: %+v", got.Snapshot)
	}
	if got.Samples != 100000 || got.SamplesPerSec != 25000 || got.PeakQueueDepth != 9 {
		t.Errorf("outcome fields lost: %+v", got)
	}
}

func TestRunIDsUnique(t *testing.T) {
	now := time.Now()
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		id := NewRunID(now)
		if seen[id] {
			t.Fatalf("duplicate run ID %q", id)
		}
		seen[id] = true
	}
}

func TestFlagsFromSet(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	fs.String("out", "dataset", "")
	fs.Int("workers", 4, "")
	fs.Bool("full", false, "")
	if err := fs.Parse([]string{"-out", "d2", "-full"}); err != nil {
		t.Fatal(err)
	}
	got := FlagsFromSet(fs)
	if len(got) != 2 || got["out"] != "d2" || got["full"] != "true" {
		t.Errorf("FlagsFromSet = %v, want only explicitly-set flags", got)
	}
	empty := flag.NewFlagSet("y", flag.ContinueOnError)
	if FlagsFromSet(empty) != nil {
		t.Error("empty flag set should produce nil map")
	}
}

func TestReadRunManifestErrors(t *testing.T) {
	if _, err := ReadRunManifest(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Error("missing manifest accepted")
	}
}
