package obs

import (
	"os"
	"runtime"
	"runtime/pprof"
)

// StartCPUProfile begins writing a CPU profile to path and returns the
// function that stops profiling and closes the file. The CLIs hang this
// off their -cpuprofile flag.
func StartCPUProfile(path string) (stop func() error, err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, err
	}
	return func() error {
		pprof.StopCPUProfile()
		return f.Close()
	}, nil
}

// WriteHeapProfile records an end-of-run heap profile at path, after a
// GC so the profile reflects live memory rather than collectable
// garbage.
func WriteHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
