package obs

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime/debug"
	"time"
)

// RunManifest is the durable evidence bundle of one campaign or figure
// run, written as run.json next to the run's outputs: enough identity
// (run ID, build version, flags, world fingerprint) to reproduce the
// run and enough outcome (per-stage durations, throughput, snapshot
// coverage, peak queue depth) to compare it against other runs.
type RunManifest struct {
	RunID      string    `json:"run_id"`
	Binary     string    `json:"binary"`
	Version    string    `json:"version"` // VCS revision (+dirty) or module version
	GoVersion  string    `json:"go_version"`
	GOMAXPROCS int       `json:"gomaxprocs"`
	Start      time.Time `json:"start"`
	End        time.Time `json:"end"`
	DurationMs float64   `json:"duration_ms"`

	// Flags records the explicitly-set command-line flags of the run.
	Flags map[string]string `json:"flags,omitempty"`
	// WorldFingerprint identifies the (config, seed, census) workload;
	// see atlas.CampaignConfig.Fingerprint.
	WorldFingerprint string `json:"world_fingerprint,omitempty"`
	Workers          int    `json:"workers,omitempty"`

	Samples       uint64  `json:"samples"`
	SamplesPerSec float64 `json:"samples_per_sec"`

	// Stages are the per-stage wall times, from the run's span tree.
	Stages []StageDuration `json:"stages,omitempty"`

	// Snapshot is the analysis-snapshot coverage of the run's scan, when
	// one ran against a binary store.
	Snapshot *SnapshotCoverage `json:"snapshot,omitempty"`

	// PeakQueueDepth is the engine's high-water batch queue depth.
	PeakQueueDepth float64 `json:"peak_queue_depth,omitempty"`

	// Cluster is the execution topology of a distributed run, when the
	// campaign ran under the cluster control plane.
	Cluster *ClusterTopology `json:"cluster,omitempty"`
}

// ClusterTopology records how a distributed campaign was laid out:
// how many agents participated, how the fixed shard partition spread
// across them, and how many leases had to be reassigned from dead or
// stalled agents. The topology never affects the dataset bytes — it is
// recorded so runs can be compared by their execution shape.
type ClusterTopology struct {
	Agents         int     `json:"agents"`
	Shards         int     `json:"shards"`
	ShardsPerAgent float64 `json:"shards_per_agent"`
	Reassignments  uint64  `json:"reassignments"`
}

// StageDuration is one named stage's wall time.
type StageDuration struct {
	Name       string  `json:"name"`
	DurationMs float64 `json:"duration_ms"`
}

// SnapshotCoverage summarises how much of a scan a snapshot absorbed.
type SnapshotCoverage struct {
	PrefixBlocks int `json:"prefix_blocks"` // blocks the snapshot covered
	BlocksRead   int `json:"blocks_read"`   // blocks the scan decoded
	BlocksTotal  int `json:"blocks_total"`  // blocks in the store
}

// NewRunID mints a unique run identifier: UTC timestamp plus random
// suffix, sortable and collision-safe across concurrent runs.
func NewRunID(now time.Time) string {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Degrade to a time-only ID; the timestamp still identifies the run.
		return now.UTC().Format("20060102T150405.000000000Z")
	}
	return fmt.Sprintf("%s-%s", now.UTC().Format("20060102T150405Z"), hex.EncodeToString(b[:]))
}

// BuildVersion reports the binary's VCS revision (with a +dirty marker
// for modified trees), falling back to the module version or "unknown".
func BuildVersion() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	var rev, dirty string
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			if s.Value == "true" {
				dirty = "+dirty"
			}
		}
	}
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		return rev + dirty
	}
	if v := info.Main.Version; v != "" && v != "(devel)" {
		return v
	}
	return "unknown"
}

// NewRunManifest seeds a manifest with the run identity fields: ID,
// binary name, build and Go versions, GOMAXPROCS, and start time.
func NewRunManifest(binary string, start time.Time) *RunManifest {
	b := CurrentBuild()
	return &RunManifest{
		RunID:      NewRunID(start),
		Binary:     binary,
		Version:    b.Version,
		GoVersion:  b.GoVersion,
		GOMAXPROCS: b.GOMAXPROCS,
		Start:      start.UTC(),
	}
}

// Finish stamps the end time and duration.
func (m *RunManifest) Finish(end time.Time) {
	m.End = end.UTC()
	m.DurationMs = float64(end.Sub(m.Start)) / float64(time.Millisecond)
}

// SetStagesFromDump records the top-level children of the run's span
// tree as the manifest's stages, in execution order.
func (m *RunManifest) SetStagesFromDump(d SpanDump) {
	m.Stages = m.Stages[:0]
	for _, c := range d.Children {
		m.Stages = append(m.Stages, StageDuration{Name: c.Name, DurationMs: c.DurationMs})
	}
}

// Write atomically persists the manifest as indented JSON at path: a
// same-directory temp file is renamed over the target so readers never
// see a torn manifest.
func (m *RunManifest) Write(path string) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("obs: encoding run manifest: %w", err)
	}
	data = append(data, '\n')
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".run-*.json")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// ReadRunManifest loads a manifest written by Write.
func ReadRunManifest(path string) (*RunManifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m RunManifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("obs: decoding run manifest %s: %w", path, err)
	}
	return &m, nil
}

// FlagsFromSet captures the explicitly-set flags of fs as a name→value
// map, for the manifest's Flags field.
func FlagsFromSet(fs *flag.FlagSet) map[string]string {
	out := make(map[string]string)
	fs.Visit(func(f *flag.Flag) {
		out[f.Name] = f.Value.String()
	})
	if len(out) == 0 {
		return nil
	}
	return out
}
