package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func getBody(t *testing.T, srv *httptest.Server, path string) (int, string, string) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body), resp.Header.Get("Content-Type")
}

func TestStatusMuxServesAllEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("demo_total", "A demo counter.").Add(7)
	rec := NewRecorder(8)
	l := NewLogger(nil, WithRecorder(rec))
	l.With("test").Info("hello", "n", 1)
	type prog struct {
		Round int `json:"round"`
	}
	mux := NewStatusMux(reg, rec, func() any { return prog{Round: 42} })
	srv := httptest.NewServer(mux)
	defer srv.Close()

	code, body, ctype := getBody(t, srv, "/metrics")
	if code != http.StatusOK || !strings.Contains(body, "demo_total 7") {
		t.Errorf("/metrics = %d %q", code, body)
	}
	if !strings.HasPrefix(ctype, "text/plain") {
		t.Errorf("/metrics content type %q", ctype)
	}

	code, body, ctype = getBody(t, srv, "/debug/events")
	if code != http.StatusOK {
		t.Fatalf("/debug/events = %d", code)
	}
	if !strings.HasPrefix(ctype, "application/json") {
		t.Errorf("/debug/events content type %q", ctype)
	}
	var dump struct {
		Total  uint64           `json:"total"`
		Events []map[string]any `json:"events"`
	}
	if err := json.Unmarshal([]byte(body), &dump); err != nil {
		t.Fatalf("/debug/events body: %v\n%s", err, body)
	}
	if dump.Total != 1 || len(dump.Events) != 1 || dump.Events[0]["msg"] != "hello" {
		t.Errorf("/debug/events dump = %+v", dump)
	}

	code, body, _ = getBody(t, srv, "/api/v1/progress")
	if code != http.StatusOK {
		t.Fatalf("/api/v1/progress = %d", code)
	}
	var p prog
	if err := json.Unmarshal([]byte(body), &p); err != nil || p.Round != 42 {
		t.Errorf("/api/v1/progress = %q (err %v)", body, err)
	}
}

func TestStatusMuxNilPieces(t *testing.T) {
	srv := httptest.NewServer(NewStatusMux(nil, nil, nil))
	defer srv.Close()
	for _, path := range []string{"/metrics", "/debug/events", "/api/v1/progress"} {
		code, _, _ := getBody(t, srv, path)
		if code != http.StatusNotFound {
			t.Errorf("%s with nil pieces = %d, want 404", path, code)
		}
	}
}
