package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// testTrace builds a deterministic span tree: a root with two sequential
// stages, the second fanning out into two overlapping children.
func testTrace() *Span {
	now := time.Date(2020, 6, 1, 0, 0, 0, 0, time.UTC)
	clock := func() time.Time { return now }
	root := NewTrace("run", WithTraceClock(clock))
	root.SetAttr("seed", 1)

	build := root.Child("world.build")
	now = now.Add(100 * time.Millisecond)
	build.End()

	camp := root.Child("campaign")
	w0 := camp.Child("worker")
	w1 := camp.Child("worker")
	now = now.Add(200 * time.Millisecond)
	w0.End()
	now = now.Add(50 * time.Millisecond)
	w1.End()
	camp.End()
	root.End()
	return root
}

// decodeChrome parses exported trace JSON and returns the events.
func decodeChrome(t *testing.T, data []byte) []chromeEvent {
	t.Helper()
	var ct struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
		DisplayUnit string        `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(data, &ct); err != nil {
		t.Fatalf("chrome trace does not parse as JSON: %v", err)
	}
	if len(ct.TraceEvents) == 0 {
		t.Fatal("chrome trace has no events")
	}
	return ct.TraceEvents
}

func TestWriteChromeTraceSchema(t *testing.T) {
	var buf bytes.Buffer
	if err := testTrace().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	events := decodeChrome(t, buf.Bytes())
	if len(events) != 5 {
		t.Fatalf("exported %d events, want 5 (run, build, campaign, 2 workers)", len(events))
	}
	byName := map[string]chromeEvent{}
	for _, e := range events {
		// Schema invariants every event must satisfy.
		if e.Ph != "X" {
			t.Errorf("event %q ph = %q, want X", e.Name, e.Ph)
		}
		if e.Pid != 1 || e.Tid < 1 {
			t.Errorf("event %q pid/tid = %d/%d", e.Name, e.Pid, e.Tid)
		}
		if e.Ts < 0 || e.Dur < 0 {
			t.Errorf("event %q ts/dur negative: %v/%v", e.Name, e.Ts, e.Dur)
		}
		byName[e.Name] = e
	}
	if byName["run"].Args["seed"] != float64(1) {
		t.Errorf("span attrs not carried as args: %v", byName["run"].Args)
	}
	if byName["world.build"].Dur != 100_000 {
		t.Errorf("world.build dur = %vµs, want 100000", byName["world.build"].Dur)
	}
	// The two concurrent workers overlap and must land on distinct lanes.
	var workerTids []int
	for _, e := range events {
		if e.Name == "worker" {
			workerTids = append(workerTids, e.Tid)
		}
	}
	if len(workerTids) != 2 || workerTids[0] == workerTids[1] {
		t.Errorf("overlapping workers share a lane: tids %v", workerTids)
	}
}

func TestChromeTraceNilSpan(t *testing.T) {
	var s *Span
	var buf bytes.Buffer
	if err := s.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Errorf("nil span exported %q", buf.String())
	}
}

func TestStageTotals(t *testing.T) {
	totals := StageTotals(testTrace().Dump())
	byName := map[string]StageTotal{}
	for _, st := range totals {
		byName[st.Name] = st
	}
	if byName["worker"].Count != 2 {
		t.Errorf("worker count = %d, want 2", byName["worker"].Count)
	}
	if got := byName["worker"].Total; got != 450*time.Millisecond {
		t.Errorf("worker total = %v, want 450ms (200+250)", got)
	}
	// Two 200/250ms workers aggregate to 450ms — more than the 350ms
	// wall clock; the fan-out stage legitimately tops the table.
	if totals[0].Name != "worker" {
		t.Errorf("longest stage = %q, want worker", totals[0].Name)
	}
	table := FormatStageTable(totals, 350*time.Millisecond)
	if len(table) != len(totals)+1 {
		t.Fatalf("table has %d lines, want %d", len(table), len(totals)+1)
	}
	if !strings.Contains(table[0], "stage") || !strings.Contains(table[0], "share") {
		t.Errorf("missing header: %q", table[0])
	}
	if !strings.Contains(strings.Join(table, "\n"), "100.0%") {
		t.Errorf("root share != 100%%:\n%s", strings.Join(table, "\n"))
	}
}

func TestParseTraceLegacyJSON(t *testing.T) {
	var buf bytes.Buffer
	root := testTrace()
	if err := root.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	d, err := ParseTrace(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != "run" || len(d.Children) != 2 {
		t.Errorf("parsed dump: name=%q children=%d", d.Name, len(d.Children))
	}
}

func TestParseTraceChromeRoundTrip(t *testing.T) {
	root := testTrace()
	var buf bytes.Buffer
	if err := root.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	d, err := ParseTrace(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != "run" {
		t.Fatalf("chrome round-trip root = %q, want run", d.Name)
	}
	// Stage totals must agree between the legacy dump and the
	// reconstructed chrome tree (both aggregate the same durations).
	want := StageTotals(root.Dump())
	got := StageTotals(d)
	if len(got) != len(want) {
		t.Fatalf("stage count %d != %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Name != want[i].Name || got[i].Count != want[i].Count {
			t.Errorf("stage[%d] = %+v, want %+v", i, got[i], want[i])
		}
		if diff := got[i].Total - want[i].Total; diff < -time.Microsecond || diff > time.Microsecond {
			t.Errorf("stage %q total %v != %v", got[i].Name, got[i].Total, want[i].Total)
		}
	}
}

func TestParseTraceBareEventArray(t *testing.T) {
	events := `[{"name":"a","ph":"X","ts":0,"dur":100,"pid":1,"tid":1},
	            {"name":"b","ph":"X","ts":10,"dur":50,"pid":1,"tid":1}]`
	d, err := ParseTrace([]byte(events))
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != "a" || len(d.Children) != 1 || d.Children[0].Name != "b" {
		t.Errorf("bare array parse: %+v", d)
	}
}

func TestParseTraceGarbage(t *testing.T) {
	for _, in := range []string{"", "   ", "not json", "{}", "[]"} {
		if _, err := ParseTrace([]byte(in)); err == nil {
			t.Errorf("ParseTrace(%q) accepted garbage", in)
		}
	}
}
