package obs

import "runtime"

// BuildInfo is the binary's build identity: the fields every
// self-describing surface (run manifests, status endpoints) reports so
// runs and servers can be traced back to the code and toolchain that
// produced them.
type BuildInfo struct {
	// Version is the VCS revision (with a +dirty marker), the module
	// version, or "unknown" — see BuildVersion.
	Version string `json:"version"`
	// GoVersion is the toolchain that compiled the binary.
	GoVersion string `json:"go_version"`
	// GOMAXPROCS is the scheduler's current processor limit.
	GOMAXPROCS int `json:"gomaxprocs"`
}

// CurrentBuild reports the running binary's build identity.
func CurrentBuild() BuildInfo {
	return BuildInfo{
		Version:    BuildVersion(),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
}
