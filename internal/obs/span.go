package obs

import (
	"context"
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Span is one timed region of a trace. Spans form a tree: the campaign
// driver opens a root with NewTrace, and each stage (world build,
// schedule, per-round fan-out, result write, figure generation) opens
// children. A nil *Span is inert, so instrumented code can run untraced
// at zero cost beyond a nil check.
type Span struct {
	mu       sync.Mutex
	name     string
	start    time.Time
	end      time.Time
	attrs    map[string]any
	children []*Span
	clock    func() time.Time
}

// TraceOption configures a root span.
type TraceOption func(*Span)

// WithTraceClock overrides the trace's time source (tests).
func WithTraceClock(now func() time.Time) TraceOption {
	return func(s *Span) {
		if now != nil {
			s.clock = now
		}
	}
}

// NewTrace starts a root span.
func NewTrace(name string, opts ...TraceOption) *Span {
	s := &Span{name: name, clock: time.Now}
	for _, o := range opts {
		o(s)
	}
	s.start = s.clock()
	return s
}

// Child starts a nested span. Safe to call concurrently from fan-out
// workers; each child must be Ended by its own worker.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	c := &Span{name: name, clock: s.clock}
	c.start = c.clock()
	s.children = append(s.children, c)
	return c
}

// SetAttr attaches a key/value attribute to the span.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.attrs == nil {
		s.attrs = make(map[string]any)
	}
	s.attrs[key] = value
}

// End closes the span. Ending twice keeps the first end time.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.end.IsZero() {
		s.end = s.clock()
	}
}

// Duration returns the span length (to now, if still open).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.end.IsZero() {
		return s.clock().Sub(s.start)
	}
	return s.end.Sub(s.start)
}

// SpanDump is the exported snapshot of a span tree, as serialized by
// WriteJSON.
type SpanDump struct {
	Name       string         `json:"name"`
	Start      time.Time      `json:"start"`
	End        time.Time      `json:"end"` // zero if the span is still open
	DurationMs float64        `json:"duration_ms"`
	Attrs      map[string]any `json:"attrs,omitempty"`
	Children   []SpanDump     `json:"children,omitempty"`
}

// Dump snapshots the span tree. Open spans report their duration so far
// and a zero End.
func (s *Span) Dump() SpanDump {
	if s == nil {
		return SpanDump{}
	}
	s.mu.Lock()
	d := SpanDump{
		Name:  s.name,
		Start: s.start,
		End:   s.end,
	}
	end := s.end
	if end.IsZero() {
		end = s.clock()
	}
	d.DurationMs = float64(end.Sub(s.start)) / float64(time.Millisecond)
	if len(s.attrs) > 0 {
		d.Attrs = make(map[string]any, len(s.attrs))
		for k, v := range s.attrs {
			d.Attrs[k] = v
		}
	}
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range children {
		d.Children = append(d.Children, c.Dump())
	}
	return d
}

// WriteJSON serializes the span tree as indented JSON.
func (s *Span) WriteJSON(w io.Writer) error {
	if s == nil {
		return nil
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s.Dump())
}

// spanKey is the context key for the active span.
type spanKey struct{}

// ContextWith returns a context carrying the span.
func ContextWith(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, s)
}

// From extracts the active span from the context, or nil.
func From(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}
