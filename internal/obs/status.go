package obs

import (
	"encoding/json"
	"net/http"
)

// This file is the shared live-status surface: the handler set every
// binary mounts so a run can be inspected while it executes. atlasd
// wires the handlers into its API mux; the CLIs (shears, figures) serve
// them from the -status-addr listener via NewStatusMux.

// MetricsHandler serves the registry's Prometheus text exposition.
func MetricsHandler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WriteText(w)
	})
}

// EventsHandler serves the flight recorder's retained events as JSON.
func EventsHandler(rec *Recorder) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = rec.WriteJSON(w)
	})
}

// ProgressHandler serves the snapshot function's result as JSON. The
// snapshot runs per request, so it always reflects the live run.
func ProgressHandler(snapshot func() any) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(snapshot())
	})
}

// NewStatusMux bundles the three live-status endpoints on one mux:
//
//	GET /metrics          Prometheus text exposition of reg
//	GET /debug/events     flight-recorder dump (rec)
//	GET /api/v1/progress  progress snapshot (from the snapshot func)
//
// Any nil piece leaves its endpoint unmounted.
func NewStatusMux(reg *Registry, rec *Recorder, snapshot func() any) *http.ServeMux {
	mux := http.NewServeMux()
	if reg != nil {
		mux.Handle("GET /metrics", MetricsHandler(reg))
	}
	if rec != nil {
		mux.Handle("GET /debug/events", EventsHandler(rec))
	}
	if snapshot != nil {
		mux.Handle("GET /api/v1/progress", ProgressHandler(snapshot))
	}
	return mux
}
