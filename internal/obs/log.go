package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Level grades log events. Events below a logger's level are dropped
// before any formatting work happens.
type Level int8

// Levels, in ascending severity.
const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String returns the lowercase level name.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	}
	return fmt.Sprintf("level(%d)", int8(l))
}

// ParseLevel resolves a level name (debug, info, warn, error).
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return LevelDebug, nil
	case "info", "":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	}
	return LevelInfo, fmt.Errorf("obs: unknown log level %q (want debug, info, warn, or error)", s)
}

// LogFormat selects the logger's wire encoding.
type LogFormat int8

// Log encodings: logfmt-style key=value text, or one JSON object per line.
const (
	FormatText LogFormat = iota
	FormatJSON
)

// ParseLogFormat resolves a format name (text, json).
func ParseLogFormat(s string) (LogFormat, error) {
	switch strings.ToLower(s) {
	case "text", "logfmt", "":
		return FormatText, nil
	case "json":
		return FormatJSON, nil
	}
	return FormatText, fmt.Errorf("obs: unknown log format %q (want text or json)", s)
}

// Field is one ordered key/value pair of a log event.
type Field struct {
	Key   string
	Value any
}

// Event is one recorded log line: what the flight recorder keeps and
// /debug/events serves.
type Event struct {
	Time      time.Time `json:"ts"`
	Level     string    `json:"level"`
	Component string    `json:"component,omitempty"`
	Msg       string    `json:"msg"`
	Fields    []Field   `json:"-"`
}

// MarshalJSON flattens the ordered fields into the event object so the
// wire form reads like the JSON log encoding.
func (e Event) MarshalJSON() ([]byte, error) {
	var sb strings.Builder
	sb.WriteByte('{')
	writeJSONKV(&sb, "ts", e.Time.Format(time.RFC3339Nano))
	sb.WriteByte(',')
	writeJSONKV(&sb, "level", e.Level)
	if e.Component != "" {
		sb.WriteByte(',')
		writeJSONKV(&sb, "component", e.Component)
	}
	sb.WriteByte(',')
	writeJSONKV(&sb, "msg", e.Msg)
	for _, f := range e.Fields {
		sb.WriteByte(',')
		writeJSONKV(&sb, f.Key, f.Value)
	}
	sb.WriteByte('}')
	return []byte(sb.String()), nil
}

// writeJSONKV appends one `"key":value` pair; values that fail to
// marshal degrade to their string form rather than poisoning the line.
func writeJSONKV(sb *strings.Builder, key string, value any) {
	kb, _ := json.Marshal(key)
	sb.Write(kb)
	sb.WriteByte(':')
	vb, err := json.Marshal(value)
	if err != nil {
		vb, _ = json.Marshal(fmt.Sprint(value))
	}
	sb.Write(vb)
}

// Recorder is the flight recorder: a fixed-size ring of the most recent
// log events, dumped by /debug/events when a run needs a post-hoc look
// at what led up to the current state. Safe for concurrent use.
type Recorder struct {
	mu    sync.Mutex
	buf   []Event
	next  int
	total uint64
}

// NewRecorder builds a recorder keeping the last n events (minimum 1).
func NewRecorder(n int) *Recorder {
	if n < 1 {
		n = 1
	}
	return &Recorder{buf: make([]Event, 0, n)}
}

// Record appends one event, evicting the oldest when the ring is full.
func (r *Recorder) Record(e Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
	} else {
		r.buf[r.next] = e
		r.next = (r.next + 1) % cap(r.buf)
	}
	r.total++
}

// Events snapshots the ring, oldest first.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Total returns how many events were ever recorded (including evicted
// ones), so a dump can report how much history the ring dropped.
func (r *Recorder) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// WriteJSON dumps the ring as one JSON object: total recorded, dropped
// count, and the retained events oldest-first.
func (r *Recorder) WriteJSON(w io.Writer) error {
	events := r.Events()
	total := r.Total()
	dump := struct {
		Total   uint64  `json:"total"`
		Dropped uint64  `json:"dropped"`
		Events  []Event `json:"events"`
	}{Total: total, Dropped: total - uint64(len(events)), Events: events}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(dump)
}

// logSink is the shared backend of a logger family: one writer, one
// format, one level gate, one optional flight recorder. Sub-loggers
// built with With share it, so their output interleaves safely.
type logSink struct {
	mu     sync.Mutex
	w      io.Writer
	format LogFormat
	level  Level
	rec    *Recorder
	clock  func() time.Time
}

// Logger is a leveled, structured key-value logger. The zero-cost rule
// matches the metric types: a nil *Logger is inert, so instrumented
// code never guards. Loggers are cheap values sharing one sink; build
// per-component children with With.
type Logger struct {
	sink      *logSink
	component string
}

// LoggerOption configures NewLogger.
type LoggerOption func(*logSink)

// WithLogFormat selects text (logfmt) or JSON encoding.
func WithLogFormat(f LogFormat) LoggerOption {
	return func(s *logSink) { s.format = f }
}

// WithLogLevel sets the minimum level that gets emitted.
func WithLogLevel(l Level) LoggerOption {
	return func(s *logSink) { s.level = l }
}

// WithRecorder mirrors every emitted event into the flight recorder.
func WithRecorder(r *Recorder) LoggerOption {
	return func(s *logSink) { s.rec = r }
}

// WithLogClock overrides the logger's time source (tests).
func WithLogClock(now func() time.Time) LoggerOption {
	return func(s *logSink) {
		if now != nil {
			s.clock = now
		}
	}
}

// NewLogger builds a root logger writing to w (defaults: text format,
// info level, wall clock, no recorder).
func NewLogger(w io.Writer, opts ...LoggerOption) *Logger {
	s := &logSink{w: w, format: FormatText, level: LevelInfo, clock: time.Now}
	for _, o := range opts {
		o(s)
	}
	return &Logger{sink: s}
}

// With returns a sub-logger for a component, sharing the parent's sink.
// Nested calls join components with dots: With("scan") on a "shears"
// logger labels events "shears.scan".
func (l *Logger) With(component string) *Logger {
	if l == nil {
		return nil
	}
	name := component
	if l.component != "" {
		name = l.component + "." + component
	}
	return &Logger{sink: l.sink, component: name}
}

// Component returns the logger's component label.
func (l *Logger) Component() string {
	if l == nil {
		return ""
	}
	return l.component
}

// Recorder returns the flight recorder wired into the logger, or nil.
func (l *Logger) Recorder() *Recorder {
	if l == nil {
		return nil
	}
	return l.sink.rec
}

// Enabled reports whether events at the given level would be emitted.
func (l *Logger) Enabled(level Level) bool {
	if l == nil {
		return false
	}
	return level >= l.sink.level
}

// Debug emits a debug event. kv alternates keys and values.
func (l *Logger) Debug(msg string, kv ...any) { l.log(LevelDebug, msg, kv) }

// Info emits an info event. kv alternates keys and values.
func (l *Logger) Info(msg string, kv ...any) { l.log(LevelInfo, msg, kv) }

// Warn emits a warning event. kv alternates keys and values.
func (l *Logger) Warn(msg string, kv ...any) { l.log(LevelWarn, msg, kv) }

// Error emits an error event. kv alternates keys and values.
func (l *Logger) Error(msg string, kv ...any) { l.log(LevelError, msg, kv) }

// fields pairs the variadic kv list up. A trailing odd value is kept
// under the "!extra" key instead of being dropped silently.
func fields(kv []any) []Field {
	if len(kv) == 0 {
		return nil
	}
	out := make([]Field, 0, (len(kv)+1)/2)
	for i := 0; i+1 < len(kv); i += 2 {
		key, ok := kv[i].(string)
		if !ok {
			key = fmt.Sprint(kv[i])
		}
		out = append(out, Field{Key: key, Value: normalizeValue(kv[i+1])})
	}
	if len(kv)%2 != 0 {
		out = append(out, Field{Key: "!extra", Value: normalizeValue(kv[len(kv)-1])})
	}
	return out
}

// normalizeValue keeps recorder-retained values stable: errors and
// Stringers are captured as strings at log time, not at dump time.
func normalizeValue(v any) any {
	switch t := v.(type) {
	case error:
		return t.Error()
	case time.Duration:
		return t.String()
	case fmt.Stringer:
		return t.String()
	}
	return v
}

func (l *Logger) log(level Level, msg string, kv []any) {
	if l == nil || level < l.sink.level {
		return
	}
	s := l.sink
	e := Event{
		Time:      s.clock(),
		Level:     level.String(),
		Component: l.component,
		Msg:       msg,
		Fields:    fields(kv),
	}
	s.rec.Record(e)
	if s.w == nil {
		return
	}
	var line []byte
	switch s.format {
	case FormatJSON:
		line, _ = e.MarshalJSON()
		line = append(line, '\n')
	default:
		line = appendLogfmt(nil, e)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.w.Write(line)
}

// appendLogfmt renders one event as a logfmt line:
// ts=... level=info component=shears msg="campaign done" samples=42
func appendLogfmt(b []byte, e Event) []byte {
	b = append(b, "ts="...)
	b = e.Time.AppendFormat(b, time.RFC3339)
	b = append(b, " level="...)
	b = append(b, e.Level...)
	if e.Component != "" {
		b = append(b, " component="...)
		b = appendLogfmtValue(b, e.Component)
	}
	b = append(b, " msg="...)
	b = appendLogfmtValue(b, e.Msg)
	for _, f := range e.Fields {
		b = append(b, ' ')
		b = append(b, f.Key...)
		b = append(b, '=')
		b = appendLogfmtValue(b, f.Value)
	}
	return append(b, '\n')
}

// appendLogfmtValue renders one value, quoting strings that contain
// whitespace, quotes, or '=' so lines stay machine-splittable.
func appendLogfmtValue(b []byte, v any) []byte {
	switch t := v.(type) {
	case string:
		if needsQuoting(t) {
			return strconv.AppendQuote(b, t)
		}
		if t == "" {
			return append(b, `""`...)
		}
		return append(b, t...)
	case int:
		return strconv.AppendInt(b, int64(t), 10)
	case int64:
		return strconv.AppendInt(b, t, 10)
	case uint64:
		return strconv.AppendUint(b, t, 10)
	case float64:
		return strconv.AppendFloat(b, t, 'g', -1, 64)
	case bool:
		return strconv.AppendBool(b, t)
	case time.Time:
		return t.AppendFormat(b, time.RFC3339)
	}
	s := fmt.Sprint(v)
	if needsQuoting(s) {
		return strconv.AppendQuote(b, s)
	}
	return append(b, s...)
}

func needsQuoting(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c <= ' ' || c == '"' || c == '=' || c >= 0x7f {
			return true
		}
	}
	return false
}
