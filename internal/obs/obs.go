// Package obs is the telemetry substrate for the measurement platform: a
// dependency-free registry of labeled counters, gauges, and fixed-bucket
// histograms, a Prometheus-text-format exposition writer, and a
// lightweight hierarchical span API for tracing a campaign run.
//
// The metric types are lock-cheap (atomic hot paths) and safe for
// concurrent use from many pinger goroutines. Every method is nil-safe on
// its receiver, so instrumented code never needs "if metrics != nil"
// guards: a nil *Counter, *Gauge, *Histogram, or *Span is an inert no-op.
//
// Real measurement platforms live and die by self-observability — RIPE
// Atlas exposes probe and measurement status APIs — and the paper's
// nine-month, 3.2M-datapoint campaign is exactly the kind of run that
// needs progress and health reporting while it executes.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Kind discriminates the metric families a Registry can hold.
type Kind string

// Metric family kinds, matching the Prometheus TYPE names.
const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

// Registry holds metric families by name. All methods are safe for
// concurrent use; registration is idempotent (asking for an existing
// family with an identical shape returns the same vector).
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// family is one named metric: its metadata plus the label-keyed instances.
type family struct {
	name    string
	help    string
	kind    Kind
	labels  []string
	buckets []float64 // histograms only

	mu        sync.RWMutex
	instances map[string]any // labelKey -> *Counter | *Gauge | *Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// validName reports whether name is a legal Prometheus metric or label
// name: [a-zA-Z_:][a-zA-Z0-9_:]*.
func validName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		alpha := (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || r == '_' || r == ':'
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

// ValidName reports whether name is a legal metric, label, or log-key
// name. Exported for the repo's name lint (scripts/namelint), which
// checks registered metric names and logger keys against the same rule
// the registry enforces at run time.
func ValidName(name string) bool { return validName(name) }

// register returns the family for name, creating it on first use. It
// panics on an invalid name or on re-registration with a different shape —
// both are programming errors, caught by any test that touches the metric.
func (r *Registry) register(name, help string, kind Kind, labels []string, buckets []float64) *family {
	if r == nil {
		return nil
	}
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validName(l) {
			panic(fmt.Sprintf("obs: invalid label name %q on %q", l, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind || !equalStrings(f.labels, labels) {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s%v, was %s%v",
				name, kind, labels, f.kind, f.labels))
		}
		return f
	}
	f := &family{
		name:      name,
		help:      help,
		kind:      kind,
		labels:    append([]string(nil), labels...),
		buckets:   append([]float64(nil), buckets...),
		instances: make(map[string]any),
	}
	r.families[name] = f
	return f
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// labelKey joins label values into a map key. \xff cannot appear in a
// UTF-8 label value byte stream's role as a separator collision risk is
// negligible for our controlled label sets.
func labelKey(values []string) string {
	return strings.Join(values, "\xff")
}

// instance returns (creating if needed) the metric under the given label
// values, using mk to build a fresh one.
func (f *family) instance(values []string, mk func() any) any {
	if f == nil {
		return nil
	}
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d",
			f.name, len(f.labels), len(values)))
	}
	key := labelKey(values)
	f.mu.RLock()
	m, ok := f.instances[key]
	f.mu.RUnlock()
	if ok {
		return m
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok := f.instances[key]; ok {
		return m
	}
	m = mk()
	f.instances[key] = m
	return m
}

// sortedKeys returns the instance keys in deterministic order.
func (f *family) sortedKeys() []string {
	keys := make([]string, 0, len(f.instances))
	for k := range f.instances {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Counter returns the unlabeled counter registered under name.
func (r *Registry) Counter(name, help string) *Counter {
	return r.CounterVec(name, help).With()
}

// CounterVec returns the counter family registered under name with the
// given label names.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{f: r.register(name, help, KindCounter, labels, nil)}
}

// Gauge returns the unlabeled gauge registered under name.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.GaugeVec(name, help).With()
}

// GaugeVec returns the gauge family registered under name with the given
// label names.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	return &GaugeVec{f: r.register(name, help, KindGauge, labels, nil)}
}

// Histogram returns the unlabeled histogram registered under name with
// the given bucket upper bounds (ascending; +Inf is implicit).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return r.HistogramVec(name, help, buckets).With()
}

// HistogramVec returns the histogram family registered under name with
// the given bucket upper bounds and label names.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	if len(buckets) == 0 {
		panic(fmt.Sprintf("obs: histogram %q needs at least one bucket", name))
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("obs: histogram %q buckets not ascending: %v", name, buckets))
		}
	}
	return &HistogramVec{f: r.register(name, help, KindHistogram, labels, buckets)}
}
