package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// WriteText renders every registered metric in the Prometheus text
// exposition format (version 0.0.4), deterministically ordered: families
// by name, instances by label values. Histograms emit cumulative
// _bucket{le=...} series plus _sum and _count.
func (r *Registry) WriteText(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	families := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		families = append(families, r.families[name])
	}
	r.mu.RUnlock()

	for _, f := range families {
		if err := f.writeText(w); err != nil {
			return err
		}
	}
	return nil
}

func (f *family) writeText(w io.Writer) error {
	f.mu.RLock()
	defer f.mu.RUnlock()
	if len(f.instances) == 0 {
		return nil
	}
	if f.help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
		return err
	}
	for _, key := range f.sortedKeys() {
		values := splitLabelKey(key, len(f.labels))
		switch m := f.instances[key].(type) {
		case *Counter:
			if err := writeSeries(w, f.name, f.labels, values, "", "", formatUint(m.Value())); err != nil {
				return err
			}
		case *Gauge:
			if err := writeSeries(w, f.name, f.labels, values, "", "", formatFloat(m.Value())); err != nil {
				return err
			}
		case *Histogram:
			cumulative, total := m.snapshot()
			for i, ub := range m.buckets {
				le := formatFloat(ub)
				if err := writeSeries(w, f.name+"_bucket", f.labels, values, "le", le, formatUint(cumulative[i])); err != nil {
					return err
				}
			}
			if err := writeSeries(w, f.name+"_bucket", f.labels, values, "le", "+Inf", formatUint(total)); err != nil {
				return err
			}
			if err := writeSeries(w, f.name+"_sum", f.labels, values, "", "", formatFloat(m.Sum())); err != nil {
				return err
			}
			if err := writeSeries(w, f.name+"_count", f.labels, values, "", "", formatUint(m.Count())); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeSeries emits one sample line. extraName/extraValue append a
// trailing label (the histogram "le" bound) when extraName is non-empty.
func writeSeries(w io.Writer, name string, labels, values []string, extraName, extraValue, rendered string) error {
	var sb strings.Builder
	sb.WriteString(name)
	if len(labels) > 0 || extraName != "" {
		sb.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(l)
			sb.WriteString(`="`)
			sb.WriteString(escapeLabel(values[i]))
			sb.WriteByte('"')
		}
		if extraName != "" {
			if len(labels) > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(extraName)
			sb.WriteString(`="`)
			sb.WriteString(extraValue)
			sb.WriteByte('"')
		}
		sb.WriteByte('}')
	}
	sb.WriteByte(' ')
	sb.WriteString(rendered)
	sb.WriteByte('\n')
	_, err := io.WriteString(w, sb.String())
	return err
}

func formatUint(v uint64) string { return strconv.FormatUint(v, 10) }

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format: backslash,
// double quote, and newline.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var sb strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteRune(r)
		}
	}
	return sb.String()
}

// escapeHelp escapes a HELP string: backslash and newline.
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}
