package obs

import (
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("events_total", "events")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	g := r.Gauge("depth", "queue depth")
	g.Set(3)
	g.Add(-1.5)
	if got := g.Value(); got != 1.5 {
		t.Errorf("gauge = %v, want 1.5", got)
	}
}

func TestCounterVecLabels(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("http_requests_total", "requests", "route", "class")
	v.With("probes", "2xx").Add(3)
	v.With("probes", "4xx").Inc()
	v.With("regions", "2xx").Add(2)
	// Same labels return the same instance.
	v.With("probes", "2xx").Inc()
	if got := v.With("probes", "2xx").Value(); got != 4 {
		t.Errorf("probes/2xx = %d, want 4", got)
	}
	if got := v.Sum(); got != 7 {
		t.Errorf("sum = %d, want 7", got)
	}
	var seen [][]string
	v.Walk(func(labels []string, _ uint64) {
		seen = append(seen, append([]string(nil), labels...))
	})
	if len(seen) != 3 {
		t.Fatalf("walked %d instances, want 3", len(seen))
	}
	// Deterministic sorted order.
	if seen[0][0] != "probes" || seen[0][1] != "2xx" {
		t.Errorf("walk order: %v", seen)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("rtt_ms", "round trips", []float64{10, 20, 100})
	for _, v := range []float64{5, 10, 15, 50, 200} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Errorf("count = %d, want 5", got)
	}
	if got := h.Sum(); got != 280 {
		t.Errorf("sum = %v, want 280", got)
	}
	cumulative, total := h.snapshot()
	want := []uint64{2, 3, 4, 5} // <=10: {5,10}; <=20: +15; <=100: +50; +Inf: +200
	for i, w := range want {
		if cumulative[i] != w {
			t.Errorf("bucket %d = %d, want %d", i, cumulative[i], w)
		}
	}
	if total != 5 {
		t.Errorf("total = %d, want 5", total)
	}
}

// TestRegistryConcurrency hammers one counter, one labeled counter, and
// one histogram from many goroutines; exact totals prove no lost updates
// (and -race proves no data races, including against a concurrent
// exposition scrape).
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	v := r.CounterVec("v_total", "", "worker")
	h := r.Histogram("h_ms", "", RTTBucketsMs)
	const workers, iters = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			label := string(rune('a' + w))
			for i := 0; i < iters; i++ {
				c.Inc()
				v.With(label).Inc()
				h.Observe(float64(i % 300))
			}
		}(w)
	}
	// Concurrent scrapes must not race with writers.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var sb strings.Builder
			if err := r.WriteText(&sb); err != nil {
				t.Errorf("WriteText: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	<-done
	if got := c.Value(); got != workers*iters {
		t.Errorf("counter = %d, want %d", got, workers*iters)
	}
	if got := v.Sum(); got != workers*iters {
		t.Errorf("vec sum = %d, want %d", got, workers*iters)
	}
	if got := h.Count(); got != workers*iters {
		t.Errorf("histogram count = %d, want %d", got, workers*iters)
	}
}

func TestWriteTextGolden(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("api_requests_total", "API requests by route.", "route").With("probes").Add(12)
	r.Gauge("campaign_rounds", "Rounds completed.").Set(7)
	h := r.Histogram("req_seconds", "Request latency.", []float64{0.01, 0.1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(5)
	r.Counter("unused_total", "Never incremented but instantiated.")

	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP api_requests_total API requests by route.
# TYPE api_requests_total counter
api_requests_total{route="probes"} 12
# HELP campaign_rounds Rounds completed.
# TYPE campaign_rounds gauge
campaign_rounds 7
# HELP req_seconds Request latency.
# TYPE req_seconds histogram
req_seconds_bucket{le="0.01"} 1
req_seconds_bucket{le="0.1"} 2
req_seconds_bucket{le="+Inf"} 3
req_seconds_sum 5.055
req_seconds_count 3
# HELP unused_total Never incremented but instantiated.
# TYPE unused_total counter
unused_total 0
`
	if got := sb.String(); got != want {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("x_total", "", "path").With("a\"b\\c\nd").Inc()
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `x_total{path="a\"b\\c\nd"} 1`) {
		t.Errorf("escaping wrong:\n%s", sb.String())
	}
}

func TestRegistrationConflictsPanic(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup_total", "")
	for name, fn := range map[string]func(){
		"kind change":   func() { r.Gauge("dup_total", "") },
		"label change":  func() { r.CounterVec("dup_total", "", "extra") },
		"bad name":      func() { r.Counter("0bad", "") },
		"bad label":     func() { r.CounterVec("ok_total", "", "0bad") },
		"empty buckets": func() { r.Histogram("h", "", nil) },
		"bad buckets":   func() { r.Histogram("h", "", []float64{2, 1}) },
		"bad arity":     func() { r.CounterVec("lv_total", "", "a").With("x", "y") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
	// Identical re-registration is idempotent, not a panic.
	if got := r.Counter("dup_total", ""); got == nil {
		t.Error("idempotent re-registration failed")
	}
}

func TestNilSafety(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var cv *CounterVec
	var gv *GaugeVec
	var hv *HistogramVec
	var r *Registry
	var s *Span
	c.Inc()
	c.Add(2)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	cv.With("x").Inc()
	gv.With("x").Set(1)
	hv.With("x").Observe(1)
	cv.Walk(func([]string, uint64) { t.Error("nil vec walked") })
	r.Counter("x_total", "").Inc()
	if err := r.WriteText(&strings.Builder{}); err != nil {
		t.Error(err)
	}
	s.Child("x").SetAttr("k", 1)
	s.End()
	if s.Duration() != 0 || c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Error("nil receivers leaked state")
	}
	if err := s.WriteJSON(&strings.Builder{}); err != nil {
		t.Error(err)
	}
}

func TestSpanTree(t *testing.T) {
	now := time.Date(2020, 6, 1, 0, 0, 0, 0, time.UTC)
	clock := func() time.Time {
		now = now.Add(10 * time.Millisecond)
		return now
	}
	root := NewTrace("run", WithTraceClock(clock))
	root.SetAttr("seed", 1)
	build := root.Child("build")
	build.End()
	campaign := root.Child("campaign")
	r1 := campaign.Child("round")
	r1.SetAttr("round", 0)
	r1.End()
	campaign.End()
	root.End()

	var sb strings.Builder
	if err := root.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var d SpanDump
	if err := json.Unmarshal([]byte(sb.String()), &d); err != nil {
		t.Fatal(err)
	}
	if d.Name != "run" || len(d.Children) != 2 {
		t.Fatalf("root = %+v", d)
	}
	if d.Attrs["seed"] != float64(1) {
		t.Errorf("attrs = %v", d.Attrs)
	}
	if d.Children[0].Name != "build" || d.Children[1].Name != "campaign" {
		t.Errorf("children = %v, %v", d.Children[0].Name, d.Children[1].Name)
	}
	if len(d.Children[1].Children) != 1 || d.Children[1].Children[0].Attrs["round"] != float64(0) {
		t.Errorf("round span = %+v", d.Children[1].Children)
	}
	if d.DurationMs <= 0 || d.End.IsZero() {
		t.Errorf("root not closed: %+v", d)
	}
	// Each span's window covers its children.
	if d.Children[1].DurationMs < d.Children[1].Children[0].DurationMs {
		t.Errorf("campaign %vms shorter than its child %vms",
			d.Children[1].DurationMs, d.Children[1].Children[0].DurationMs)
	}
	// Double End keeps the first timestamp.
	end := root.Duration()
	root.End()
	if root.Duration() != end {
		t.Error("second End moved the end time")
	}
}

func TestSpanConcurrentChildren(t *testing.T) {
	root := NewTrace("fanout")
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := root.Child("worker")
			c.SetAttr("n", 1)
			c.End()
		}()
	}
	wg.Wait()
	root.End()
	if got := len(root.Dump().Children); got != 16 {
		t.Errorf("%d children, want 16", got)
	}
}

func TestSpanContext(t *testing.T) {
	ctx := context.Background()
	if From(ctx) != nil {
		t.Error("empty context has a span")
	}
	s := NewTrace("x")
	ctx = ContextWith(ctx, s)
	if From(ctx) != s {
		t.Error("span lost in context")
	}
	if got := ContextWith(context.Background(), nil); From(got) != nil {
		t.Error("nil span stored")
	}
}
