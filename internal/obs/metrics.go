package obs

import (
	"math"
	"sync/atomic"
)

// Counter is a monotonically increasing event count. The zero value of a
// nil pointer is an inert no-op, so instrumented code never guards.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds delta to the counter.
func (c *Counter) Add(delta uint64) {
	if c == nil {
		return
	}
	c.v.Add(delta)
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// CounterVec is a labeled counter family.
type CounterVec struct {
	f *family
}

// With returns the counter under the given label values (one per label
// name, in registration order), creating it on first use. Callers on hot
// paths should cache the returned pointer.
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil || v.f == nil {
		return nil
	}
	m := v.f.instance(values, func() any { return new(Counter) })
	return m.(*Counter)
}

// Walk visits every instance in deterministic (sorted label) order.
func (v *CounterVec) Walk(fn func(labels []string, value uint64)) {
	if v == nil || v.f == nil {
		return
	}
	v.f.mu.RLock()
	defer v.f.mu.RUnlock()
	for _, key := range v.f.sortedKeys() {
		fn(splitLabelKey(key, len(v.f.labels)), v.f.instances[key].(*Counter).Value())
	}
}

// Sum returns the total across all label combinations.
func (v *CounterVec) Sum() uint64 {
	var total uint64
	v.Walk(func(_ []string, value uint64) { total += value })
	return total
}

// Gauge is a value that can go up and down (queue depths, progress,
// balances). It stores a float64.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add increments the gauge by delta (which may be negative).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// GaugeVec is a labeled gauge family.
type GaugeVec struct {
	f *family
}

// With returns the gauge under the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	if v == nil || v.f == nil {
		return nil
	}
	m := v.f.instance(values, func() any { return new(Gauge) })
	return m.(*Gauge)
}

// Walk visits every instance in deterministic (sorted label) order.
func (v *GaugeVec) Walk(fn func(labels []string, value float64)) {
	if v == nil || v.f == nil {
		return
	}
	v.f.mu.RLock()
	defer v.f.mu.RUnlock()
	for _, key := range v.f.sortedKeys() {
		fn(splitLabelKey(key, len(v.f.labels)), v.f.instances[key].(*Gauge).Value())
	}
}

// Histogram counts observations into fixed buckets (upper bounds,
// ascending, +Inf implicit) and tracks their sum. Observation is a binary
// search plus two atomic adds — cheap enough for per-ping recording.
type Histogram struct {
	buckets []float64       // upper bounds, ascending
	counts  []atomic.Uint64 // len(buckets)+1; last is the +Inf overflow
	count   atomic.Uint64
	sumBits atomic.Uint64
}

func newHistogram(buckets []float64) *Histogram {
	return &Histogram{
		buckets: buckets,
		counts:  make([]atomic.Uint64, len(buckets)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Binary search for the first bucket with upper bound >= v.
	lo, hi := 0, len(h.buckets)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.buckets[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.counts[lo].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// snapshot returns cumulative bucket counts aligned with h.buckets plus
// the +Inf total. Concurrent observers may land between loads; each
// bucket value is individually consistent, which is all exposition needs.
func (h *Histogram) snapshot() (cumulative []uint64, total uint64) {
	cumulative = make([]uint64, len(h.buckets)+1)
	var running uint64
	for i := range h.counts {
		running += h.counts[i].Load()
		cumulative[i] = running
	}
	return cumulative, running
}

// HistogramVec is a labeled histogram family.
type HistogramVec struct {
	f *family
}

// With returns the histogram under the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil || v.f == nil {
		return nil
	}
	m := v.f.instance(values, func() any { return newHistogram(v.f.buckets) })
	return m.(*Histogram)
}

// splitLabelKey undoes labelKey. n is the expected arity; an empty key
// with zero labels yields an empty slice.
func splitLabelKey(key string, n int) []string {
	if n == 0 {
		return nil
	}
	out := make([]string, 0, n)
	start := 0
	for i := 0; i < len(key); i++ {
		if key[i] == '\xff' {
			out = append(out, key[start:i])
			start = i + 1
		}
	}
	return append(out, key[start:])
}

// DurationBuckets are histogram bounds in seconds suited to HTTP handler
// latencies, from 100µs to 10s.
var DurationBuckets = []float64{0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// RTTBucketsMs are histogram bounds in milliseconds suited to wide-area
// ping RTTs, matching the paper's bands of interest (<10, 10-20, 20-100,
// >100 ms).
var RTTBucketsMs = []float64{1, 2, 5, 10, 15, 20, 30, 50, 75, 100, 150, 200, 300, 500, 1000}
