package obs

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
)

// Exposition edge cases: HistogramVec series ordering, escaping
// round-trips, and registration racing a concurrent scrape.

func TestHistogramVecTextOrdering(t *testing.T) {
	reg := NewRegistry()
	hv := reg.HistogramVec("rtt_ms", "RTT.", []float64{10, 100}, "region", "provider")
	// Register out of lexical order; exposition must sort instances.
	hv.With("us-east", "aws").Observe(5)
	hv.With("eu-west", "gcp").Observe(50)
	hv.With("eu-west", "aws").Observe(500)

	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSuffix(out, "\n"), "\n")
	if lines[0] != "# HELP rtt_ms RTT." || lines[1] != "# TYPE rtt_ms histogram" {
		t.Fatalf("header lines: %q", lines[:2])
	}
	// Instances sorted by label values: (eu-west,aws) < (eu-west,gcp) <
	// (us-east,aws); each emits buckets (10, 100, +Inf), sum, count — in
	// that order, with cumulative bucket counts.
	want := []string{
		`rtt_ms_bucket{region="eu-west",provider="aws",le="10"} 0`,
		`rtt_ms_bucket{region="eu-west",provider="aws",le="100"} 0`,
		`rtt_ms_bucket{region="eu-west",provider="aws",le="+Inf"} 1`,
		`rtt_ms_sum{region="eu-west",provider="aws"} 500`,
		`rtt_ms_count{region="eu-west",provider="aws"} 1`,
		`rtt_ms_bucket{region="eu-west",provider="gcp",le="10"} 0`,
		`rtt_ms_bucket{region="eu-west",provider="gcp",le="100"} 1`,
		`rtt_ms_bucket{region="eu-west",provider="gcp",le="+Inf"} 1`,
		`rtt_ms_sum{region="eu-west",provider="gcp"} 50`,
		`rtt_ms_count{region="eu-west",provider="gcp"} 1`,
		`rtt_ms_bucket{region="us-east",provider="aws",le="10"} 1`,
		`rtt_ms_bucket{region="us-east",provider="aws",le="100"} 1`,
		`rtt_ms_bucket{region="us-east",provider="aws",le="+Inf"} 1`,
		`rtt_ms_sum{region="us-east",provider="aws"} 5`,
		`rtt_ms_count{region="us-east",provider="aws"} 1`,
	}
	got := lines[2:]
	if len(got) != len(want) {
		t.Fatalf("exposition has %d series lines, want %d:\n%s", len(got), len(want), out)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("line %d:\n got %q\nwant %q", i, got[i], want[i])
		}
	}
}

// unescapeLabel undoes escapeLabel, for the round-trip check.
func unescapeLabel(s string) string {
	var sb strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) {
			i++
			switch s[i] {
			case 'n':
				sb.WriteByte('\n')
			default:
				sb.WriteByte(s[i])
			}
			continue
		}
		sb.WriteByte(s[i])
	}
	return sb.String()
}

func TestLabelEscapingRoundTrip(t *testing.T) {
	hostile := []string{
		`plain`,
		`has "quotes"`,
		`back\slash`,
		"new\nline",
		`both \" and` + "\n",
		`trailing backslash \`,
	}
	reg := NewRegistry()
	cv := reg.CounterVec("edge_total", "", "v")
	for _, v := range hostile {
		cv.With(v).Inc()
	}
	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	// Pull every v="..." back out and unescape; the set must round-trip.
	got := map[string]bool{}
	for _, line := range strings.Split(buf.String(), "\n") {
		start := strings.Index(line, `v="`)
		if start < 0 {
			continue
		}
		end := strings.LastIndex(line, `"`)
		raw := line[start+3 : end]
		if strings.ContainsAny(raw, "\n") {
			t.Errorf("unescaped newline leaked into exposition line %q", line)
		}
		got[unescapeLabel(raw)] = true
	}
	for _, v := range hostile {
		if !got[v] {
			t.Errorf("label %q did not round-trip through exposition; got %v", v, got)
		}
	}
}

func TestHelpEscaping(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("h_total", "line one\nline two with \\ backslash").Inc()
	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	wantHelp := `# HELP h_total line one\nline two with \\ backslash`
	if !strings.Contains(out, wantHelp) {
		t.Errorf("HELP escaping:\n got %q\nwant to contain %q", out, wantHelp)
	}
	// The exposition must stay line-structured: exactly one HELP, one
	// TYPE, one series line.
	if n := strings.Count(out, "\n"); n != 3 {
		t.Errorf("exposition has %d lines, want 3:\n%q", n, out)
	}
}

func TestRegisterWhileScrapeRace(t *testing.T) {
	reg := NewRegistry()
	var scrapers, registrars sync.WaitGroup
	stop := make(chan struct{})
	// Scrapers: render the exposition continuously.
	for i := 0; i < 4; i++ {
		scrapers.Add(1)
		go func() {
			defer scrapers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var buf bytes.Buffer
				if err := reg.WriteText(&buf); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	// Registrars: add new families and instances while scrapes run.
	for i := 0; i < 4; i++ {
		registrars.Add(1)
		go func(i int) {
			defer registrars.Done()
			for j := 0; j < 100; j++ {
				reg.Counter(fmt.Sprintf("race_c%d_%d_total", i, j), "c").Inc()
				reg.GaugeVec(fmt.Sprintf("race_g%d_total", i), "g", "j").With(fmt.Sprint(j)).Set(float64(j))
				reg.HistogramVec(fmt.Sprintf("race_h%d", i), "h", []float64{1, 2}, "j").With(fmt.Sprint(j)).Observe(float64(j))
			}
		}(i)
	}
	registrars.Wait()
	close(stop)
	scrapers.Wait()

	// Afterwards the registry must expose everything registered.
	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if !strings.Contains(buf.String(), fmt.Sprintf("race_c%d_99_total 1", i)) {
			t.Errorf("registrar %d's last counter missing from exposition", i)
		}
	}
}
