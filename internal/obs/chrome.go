package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// This file is the trace exporter: it turns a span tree into the Chrome
// trace-event JSON format, which chrome://tracing and Perfetto load
// directly. Each span becomes one "complete" (ph "X") event with its
// attributes carried as args; concurrent spans are spread across lanes
// (tids) so overlapping children of a fan-out render side by side
// instead of corrupting the per-lane nesting stack.

// chromeEvent is one trace-event record. Timestamps and durations are
// microseconds, per the format.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON-object container form of the format.
type chromeTrace struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
	DisplayUnit string        `json:"displayTimeUnit,omitempty"`
}

// WriteChromeTrace exports the span tree in Chrome trace-event JSON.
// Open spans are exported with their duration so far, matching Dump.
func (s *Span) WriteChromeTrace(w io.Writer) error {
	if s == nil {
		return nil
	}
	return WriteChromeTraceDump(w, s.Dump())
}

// WriteChromeTraceDump exports an already-captured span dump in Chrome
// trace-event JSON.
func WriteChromeTraceDump(w io.Writer, d SpanDump) error {
	var flat []chromeEvent
	var parents, depths []int
	flattenDump(d, d.Start, -1, 0, &flat, &parents, &depths)
	assignLanes(flat, parents, depths)
	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: flat, DisplayUnit: "ms"})
}

// flattenDump appends d and its children as complete events with
// timestamps relative to the trace epoch, recording each event's parent
// index and depth for lane assignment.
func flattenDump(d SpanDump, epoch time.Time, parent, depth int, out *[]chromeEvent, parents, depths *[]int) {
	e := chromeEvent{
		Name: d.Name,
		Ph:   "X",
		Ts:   float64(d.Start.Sub(epoch)) / float64(time.Microsecond),
		Dur:  d.DurationMs * 1e3,
		Pid:  1,
	}
	if len(d.Attrs) > 0 {
		e.Args = d.Attrs
	}
	idx := len(*out)
	*out = append(*out, e)
	*parents = append(*parents, parent)
	*depths = append(*depths, depth)
	for _, c := range d.Children {
		flattenDump(c, epoch, idx, depth+1, out, parents, depths)
	}
}

// assignLanes spreads events across tids so every lane holds a valid
// nesting stack. An event may share a lane only if the lane's innermost
// still-open event is one of its ancestors: siblings of a concurrent
// fan-out therefore never stack inside each other, even when one's
// interval happens to contain the other's. Greedy first-fit keeps the
// sequential stages on lane 1 and spills overlap onto extra lanes.
func assignLanes(events []chromeEvent, parents, depths []int) {
	order := make([]int, len(events))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ia, ib := order[a], order[b]
		ea, eb := events[ia], events[ib]
		if ea.Ts != eb.Ts {
			return ea.Ts < eb.Ts
		}
		return depths[ia] < depths[ib] // parents before children at equal start
	})
	isAncestor := func(anc, i int) bool {
		for p := parents[i]; p >= 0; p = parents[p] {
			if p == anc {
				return true
			}
		}
		return false
	}
	type open struct {
		end float64
		idx int
	}
	var lanes [][]open
	for _, i := range order {
		ev := &events[i]
		end := ev.Ts + ev.Dur
		placed := false
		for lane := range lanes {
			stack := lanes[lane]
			// Close events that ended before this one starts.
			for len(stack) > 0 && stack[len(stack)-1].end <= ev.Ts {
				stack = stack[:len(stack)-1]
			}
			if len(stack) == 0 || (stack[len(stack)-1].end >= end && isAncestor(stack[len(stack)-1].idx, i)) {
				lanes[lane] = append(stack, open{end: end, idx: i})
				ev.Tid = lane + 1
				placed = true
				break
			}
			lanes[lane] = stack
		}
		if !placed {
			lanes = append(lanes, []open{{end: end, idx: i}})
			ev.Tid = len(lanes)
		}
	}
}

// StageTotal aggregates the wall time spent under one span name.
type StageTotal struct {
	Name  string
	Count int
	Total time.Duration
}

// StageTotals walks the dump and sums durations by span name, longest
// total first (ties broken by name for determinism).
func StageTotals(d SpanDump) []StageTotal {
	acc := make(map[string]*StageTotal)
	var walk func(SpanDump)
	walk = func(n SpanDump) {
		t := acc[n.Name]
		if t == nil {
			t = &StageTotal{Name: n.Name}
			acc[n.Name] = t
		}
		t.Count++
		t.Total += time.Duration(n.DurationMs * float64(time.Millisecond))
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(d)
	out := make([]StageTotal, 0, len(acc))
	for _, t := range acc {
		out = append(out, *t)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total != out[j].Total {
			return out[i].Total > out[j].Total
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// FormatStageTable renders stage totals as an aligned text table. The
// share column is each stage's total relative to the run's wall time;
// fan-out stages legitimately exceed 100% — that is the parallelism.
func FormatStageTable(totals []StageTotal, wall time.Duration) []string {
	if len(totals) == 0 {
		return nil
	}
	width := len("stage")
	for _, t := range totals {
		if len(t.Name) > width {
			width = len(t.Name)
		}
	}
	lines := []string{fmt.Sprintf("%-*s  %7s  %12s  %6s", width, "stage", "count", "total", "share")}
	for _, t := range totals {
		share := 0.0
		if wall > 0 {
			share = 100 * float64(t.Total) / float64(wall)
		}
		lines = append(lines, fmt.Sprintf("%-*s  %7d  %12s  %5.1f%%",
			width, t.Name, t.Count, t.Total.Round(time.Microsecond), share))
	}
	return lines
}

// ParseTrace decodes a trace file in either supported format — the
// legacy SpanDump JSON written by Span.WriteJSON, or the Chrome
// trace-event JSON written by WriteChromeTrace — into a SpanDump tree.
// Chrome events reconstruct nesting per lane from timestamp containment.
func ParseTrace(data []byte) (SpanDump, error) {
	trimmed := strings.TrimSpace(string(data))
	if trimmed == "" {
		return SpanDump{}, fmt.Errorf("obs: empty trace file")
	}
	// Try the Chrome container first: it is distinguished by traceEvents.
	var ct struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &ct); err == nil && len(ct.TraceEvents) > 0 {
		return dumpFromChrome(ct.TraceEvents), nil
	}
	// Chrome traces may also be a bare JSON array of events.
	var events []chromeEvent
	if err := json.Unmarshal(data, &events); err == nil && len(events) > 0 && events[0].Ph != "" {
		return dumpFromChrome(events), nil
	}
	var d SpanDump
	if err := json.Unmarshal(data, &d); err != nil {
		return SpanDump{}, fmt.Errorf("obs: trace file is neither span JSON nor Chrome trace JSON: %w", err)
	}
	if d.Name == "" {
		return SpanDump{}, fmt.Errorf("obs: trace file decodes to an empty span dump")
	}
	return d, nil
}

// dumpFromChrome rebuilds a span tree from complete events: the event
// covering the widest interval becomes the root and every other event
// nests under the smallest event that contains it.
func dumpFromChrome(events []chromeEvent) SpanDump {
	complete := events[:0:0]
	for _, e := range events {
		if e.Ph == "X" {
			complete = append(complete, e)
		}
	}
	if len(complete) == 0 {
		return SpanDump{}
	}
	order := make([]int, len(complete))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ea, eb := complete[order[a]], complete[order[b]]
		if ea.Ts != eb.Ts {
			return ea.Ts < eb.Ts
		}
		return ea.Dur > eb.Dur
	})
	// Stack of enclosing events along the containment path; children are
	// linked by index first so the tree can be materialized bottom-up.
	children := make([][]int, len(complete))
	type open struct {
		end float64
		idx int
	}
	rootIdx := order[0]
	stack := []open{{end: complete[rootIdx].Ts + complete[rootIdx].Dur, idx: rootIdx}}
	for _, i := range order[1:] {
		e := complete[i]
		for len(stack) > 1 && stack[len(stack)-1].end < e.Ts+e.Dur {
			stack = stack[:len(stack)-1]
		}
		parent := stack[len(stack)-1].idx
		children[parent] = append(children[parent], i)
		stack = append(stack, open{end: e.Ts + e.Dur, idx: i})
	}
	var build func(i int) SpanDump
	build = func(i int) SpanDump {
		d := SpanDump{Name: complete[i].Name, DurationMs: complete[i].Dur / 1e3, Attrs: complete[i].Args}
		for _, c := range children[i] {
			d.Children = append(d.Children, build(c))
		}
		return d
	}
	return build(rootIdx)
}
