package netsim

import "repro/internal/obs"

// Metrics mirror the network's Stats counters into an obs registry so a
// live platform can expose link/packet telemetry alongside its own. The
// internal Stats struct stays authoritative (and lock-consistent); these
// are incremented on the same code paths.
type Metrics struct {
	Sent        *obs.Counter
	Delivered   *obs.Counter
	Dropped     *obs.Counter
	Unroutable  *obs.Counter
	LinkerError *obs.Counter
}

// NewMetrics registers the network instruments on reg.
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		Sent:        reg.Counter("netsim_packets_sent_total", "Packets submitted to the virtual network."),
		Delivered:   reg.Counter("netsim_packets_delivered_total", "Packets handed to a receive handler."),
		Dropped:     reg.Counter("netsim_packets_dropped_total", "Packets lost in transit or cancelled at close."),
		Unroutable:  reg.Counter("netsim_packets_unroutable_total", "Packets whose destination was unknown at delivery."),
		LinkerError: reg.Counter("netsim_linker_errors_total", "Packets the Linker refused."),
	}
}

// WithMetrics attaches telemetry instruments to a Network. A nil Metrics
// is ignored.
func WithMetrics(m *Metrics) Option {
	return func(n *Network) { n.metrics = m }
}
