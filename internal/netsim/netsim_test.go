package netsim

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func constLinker(d time.Duration) Linker {
	return LinkerFunc(func(src, dst string, at time.Time) (time.Duration, bool, error) {
		return d, false, nil
	})
}

func TestNewNetworkValidation(t *testing.T) {
	if _, err := NewNetwork(nil); err == nil {
		t.Error("nil linker accepted")
	}
}

func TestAttachValidation(t *testing.T) {
	n, err := NewNetwork(constLinker(0))
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if _, err := n.Attach(""); err == nil {
		t.Error("empty address accepted")
	}
	if _, err := n.Attach("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Attach("a"); err == nil {
		t.Error("duplicate address accepted")
	}
}

func TestDelivery(t *testing.T) {
	n, err := NewNetwork(constLinker(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	a, err := n.Attach("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.Attach("b")
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan string, 1)
	b.SetHandler(func(src string, payload []byte) {
		got <- src + ":" + string(payload)
	})
	if err := a.Send("b", []byte("hi")); err != nil {
		t.Fatal(err)
	}
	select {
	case msg := <-got:
		if msg != "a:hi" {
			t.Errorf("delivered %q", msg)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("packet never arrived")
	}
	st := n.Stats()
	if st.Sent != 1 || st.Delivered != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestPayloadIsCopied(t *testing.T) {
	n, err := NewNetwork(constLinker(5 * time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	a, _ := n.Attach("a")
	b, _ := n.Attach("b")
	got := make(chan []byte, 1)
	b.SetHandler(func(_ string, payload []byte) { got <- payload })
	buf := []byte("original")
	if err := a.Send("b", buf); err != nil {
		t.Fatal(err)
	}
	copy(buf, "TAMPERED")
	select {
	case p := <-got:
		if string(p) != "original" {
			t.Errorf("payload mutated in flight: %q", p)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("packet never arrived")
	}
}

func TestLoss(t *testing.T) {
	lossy := LinkerFunc(func(src, dst string, at time.Time) (time.Duration, bool, error) {
		return 0, true, nil
	})
	n, err := NewNetwork(lossy)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	a, _ := n.Attach("a")
	b, _ := n.Attach("b")
	var delivered atomic.Int32
	b.SetHandler(func(string, []byte) { delivered.Add(1) })
	for i := 0; i < 10; i++ {
		if err := a.Send("b", []byte("x")); err != nil {
			t.Fatal(err) // loss must be silent
		}
	}
	n.Close()
	if delivered.Load() != 0 {
		t.Errorf("%d packets delivered on a fully lossy link", delivered.Load())
	}
	if st := n.Stats(); st.Dropped != 10 {
		t.Errorf("Dropped = %d, want 10", st.Dropped)
	}
}

func TestLinkerError(t *testing.T) {
	bad := LinkerFunc(func(src, dst string, at time.Time) (time.Duration, bool, error) {
		return 0, false, errors.New("no route")
	})
	n, err := NewNetwork(bad)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	a, _ := n.Attach("a")
	if err := a.Send("b", nil); err == nil {
		t.Error("linker error not surfaced")
	}
	if st := n.Stats(); st.LinkerError != 1 {
		t.Errorf("LinkerError = %d", st.LinkerError)
	}
}

func TestUnroutable(t *testing.T) {
	n, err := NewNetwork(constLinker(0))
	if err != nil {
		t.Fatal(err)
	}
	a, _ := n.Attach("a")
	// No handler on b, and c never attached.
	if _, err := n.Attach("b"); err != nil {
		t.Fatal(err)
	}
	if err := a.Send("b", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := a.Send("c", []byte("x")); err != nil {
		t.Fatal(err)
	}
	n.Drain()
	n.Close()
	if st := n.Stats(); st.Unroutable != 2 {
		t.Errorf("Unroutable = %d, want 2", st.Unroutable)
	}
}

func TestDetach(t *testing.T) {
	n, err := NewNetwork(constLinker(10 * time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	a, _ := n.Attach("a")
	b, _ := n.Attach("b")
	var delivered atomic.Int32
	b.SetHandler(func(string, []byte) { delivered.Add(1) })
	if err := a.Send("b", []byte("x")); err != nil {
		t.Fatal(err)
	}
	n.Detach("b") // before the 10ms delay elapses
	n.Close()
	if delivered.Load() != 0 {
		t.Error("packet delivered to detached endpoint")
	}
	// Address can be reused after detach.
	if _, err := n.Attach("b"); err == nil {
		t.Error("attach after close should fail")
	}
}

func TestSendAfterClose(t *testing.T) {
	n, err := NewNetwork(constLinker(0))
	if err != nil {
		t.Fatal(err)
	}
	a, _ := n.Attach("a")
	n.Close()
	if err := a.Send("b", nil); err == nil {
		t.Error("send after close accepted")
	}
	n.Close() // double close is a no-op
}

func TestTimeScaleCompressesDelay(t *testing.T) {
	// A 500ms link at 0.01 scale must deliver in well under 100ms.
	n, err := NewNetwork(constLinker(500*time.Millisecond), WithTimeScale(0.01))
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	a, _ := n.Attach("a")
	b, _ := n.Attach("b")
	got := make(chan struct{}, 1)
	b.SetHandler(func(string, []byte) { got <- struct{}{} })
	start := time.Now()
	if err := a.Send("b", nil); err != nil {
		t.Fatal(err)
	}
	select {
	case <-got:
		if el := time.Since(start); el > 200*time.Millisecond {
			t.Errorf("delivery took %v, time scale not applied", el)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("packet never arrived")
	}
}

func TestConcurrentSends(t *testing.T) {
	n, err := NewNetwork(constLinker(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	const senders = 8
	const perSender = 50
	sink, _ := n.Attach("sink")
	var delivered atomic.Int32
	sink.SetHandler(func(string, []byte) { delivered.Add(1) })
	var wg sync.WaitGroup
	for i := 0; i < senders; i++ {
		ep, err := n.Attach(string(rune('a' + i)))
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perSender; j++ {
				if err := ep.Send("sink", []byte{byte(j)}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	n.Drain()
	n.Close()
	if delivered.Load() != senders*perSender {
		t.Errorf("delivered %d, want %d", delivered.Load(), senders*perSender)
	}
}

func TestEmptyDestination(t *testing.T) {
	n, err := NewNetwork(constLinker(0))
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	a, _ := n.Attach("a")
	if err := a.Send("", nil); err == nil {
		t.Error("empty destination accepted")
	}
}

// sizedLinker records the sizes it was asked about.
type sizedLinker struct {
	mu    sync.Mutex
	sizes []int
}

func (l *sizedLinker) Link(src, dst string, at time.Time) (time.Duration, bool, error) {
	return l.LinkSized(src, dst, 0, at)
}

func (l *sizedLinker) LinkSized(src, dst string, size int, at time.Time) (time.Duration, bool, error) {
	l.mu.Lock()
	l.sizes = append(l.sizes, size)
	l.mu.Unlock()
	return time.Millisecond, false, nil
}

func TestSizedLinkerReceivesPayloadSize(t *testing.T) {
	linker := &sizedLinker{}
	n, err := NewNetwork(linker)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := n.Attach("a")
	b, _ := n.Attach("b")
	got := make(chan struct{}, 1)
	b.SetHandler(func(string, []byte) { got <- struct{}{} })
	payload := make([]byte, 137)
	if err := a.Send("b", payload); err != nil {
		t.Fatal(err)
	}
	select {
	case <-got:
	case <-time.After(2 * time.Second):
		t.Fatal("packet never arrived")
	}
	n.Close()
	linker.mu.Lock()
	defer linker.mu.Unlock()
	if len(linker.sizes) != 1 || linker.sizes[0] != 137 {
		t.Errorf("sized linker saw %v, want [137]", linker.sizes)
	}
}
