// Package netsim is a virtual packet network. Endpoints attach under
// string addresses; a Linker decides, per packet, the one-way delay and
// whether the packet is dropped. The measurement platform wires the netem
// latency model in as the Linker, which turns the simulator into the
// "Internet" between probes and datacenters.
package netsim

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Linker decides the fate of a packet from src to dst sent at time at.
// Implementations must be safe for concurrent use.
type Linker interface {
	Link(src, dst string, at time.Time) (delay time.Duration, lost bool, err error)
}

// SizedLinker is an optional Linker refinement: when the linker also
// implements it, the network passes each packet's payload size so the
// delay can include serialization time on the sender's uplink.
type SizedLinker interface {
	Linker
	LinkSized(src, dst string, size int, at time.Time) (delay time.Duration, lost bool, err error)
}

// LinkerFunc adapts a function to the Linker interface.
type LinkerFunc func(src, dst string, at time.Time) (time.Duration, bool, error)

// Link implements Linker.
func (f LinkerFunc) Link(src, dst string, at time.Time) (time.Duration, bool, error) {
	return f(src, dst, at)
}

// Handler consumes a delivered payload. src is the sender's address.
type Handler func(src string, payload []byte)

// Stats counts network-level events.
type Stats struct {
	Sent        uint64 // packets submitted
	Delivered   uint64 // packets handed to a handler
	Dropped     uint64 // lost in transit (Linker said lost)
	Unroutable  uint64 // destination unknown at delivery time
	LinkerError uint64 // Linker refused the packet
}

// Network routes packets between attached endpoints with Linker-provided
// delays. The zero value is not usable; call NewNetwork.
type Network struct {
	linker Linker

	mu        sync.Mutex
	endpoints map[string]*Endpoint
	stats     Stats
	metrics   *Metrics
	closed    bool
	inflight  sync.WaitGroup
	timers    map[*time.Timer]struct{}
	timeScale float64
}

// Option configures a Network.
type Option func(*Network)

// WithTimeScale compresses simulated delays by the given factor (0.01 makes
// a 100 ms path deliver in 1 ms of wall clock). Measured RTTs are still
// reported at full scale by the pinger because it timestamps virtual time.
func WithTimeScale(scale float64) Option {
	return func(n *Network) {
		if scale > 0 {
			n.timeScale = scale
		}
	}
}

// NewNetwork creates a network over the given Linker.
func NewNetwork(linker Linker, opts ...Option) (*Network, error) {
	if linker == nil {
		return nil, errors.New("netsim: nil linker")
	}
	n := &Network{
		linker:    linker,
		endpoints: make(map[string]*Endpoint),
		metrics:   &Metrics{}, // nil obs fields: recording is a no-op
		timers:    make(map[*time.Timer]struct{}),
		timeScale: 1,
	}
	for _, o := range opts {
		o(n)
	}
	if n.metrics == nil {
		n.metrics = &Metrics{}
	}
	return n, nil
}

// Attach registers an endpoint under addr. The handler may be set later
// with SetHandler; packets arriving before that are counted unroutable.
func (n *Network) Attach(addr string) (*Endpoint, error) {
	if addr == "" {
		return nil, errors.New("netsim: empty address")
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, errors.New("netsim: network closed")
	}
	if _, dup := n.endpoints[addr]; dup {
		return nil, fmt.Errorf("netsim: address %q already attached", addr)
	}
	ep := &Endpoint{net: n, addr: addr}
	n.endpoints[addr] = ep
	return ep, nil
}

// Detach removes the endpoint at addr. Packets in flight toward it are
// counted unroutable on arrival.
func (n *Network) Detach(addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.endpoints, addr)
}

// Stats returns a snapshot of the counters.
func (n *Network) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// Drain blocks until every packet currently in transit has been delivered
// (or dropped). Callers must stop sending before draining.
func (n *Network) Drain() { n.inflight.Wait() }

// Close stops accepting sends, cancels packets still in transit (they
// count as dropped), and waits for deliveries already firing to finish.
func (n *Network) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	timers := make([]*time.Timer, 0, len(n.timers))
	for t := range n.timers {
		timers = append(timers, t)
	}
	n.mu.Unlock()
	for _, t := range timers {
		if t.Stop() {
			// The delivery callback will never run; release its slot.
			n.mu.Lock()
			if _, ok := n.timers[t]; ok {
				delete(n.timers, t)
				n.stats.Dropped++
				n.metrics.Dropped.Inc()
				n.inflight.Done()
			}
			n.mu.Unlock()
		}
	}
	n.inflight.Wait()
}

func (n *Network) send(src, dst string, payload []byte) error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return errors.New("netsim: network closed")
	}
	n.stats.Sent++
	n.mu.Unlock()
	n.metrics.Sent.Inc()

	var delay time.Duration
	var lost bool
	var err error
	if sized, ok := n.linker.(SizedLinker); ok {
		delay, lost, err = sized.LinkSized(src, dst, len(payload), time.Now())
	} else {
		delay, lost, err = n.linker.Link(src, dst, time.Now())
	}
	if err != nil {
		n.count(func(s *Stats) { s.LinkerError++ })
		n.metrics.LinkerError.Inc()
		return fmt.Errorf("netsim: %s -> %s: %w", src, dst, err)
	}
	if lost {
		n.count(func(s *Stats) { s.Dropped++ })
		n.metrics.Dropped.Inc()
		return nil // loss is silent, like the real network
	}
	data := append([]byte(nil), payload...)
	// Hold the lock across timer creation and registration: the callback
	// also takes the lock first, so it cannot observe an unregistered
	// timer even at zero delay.
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		n.stats.Dropped++
		n.metrics.Dropped.Inc()
		return nil
	}
	n.inflight.Add(1)
	var timer *time.Timer
	timer = time.AfterFunc(time.Duration(float64(delay)*n.timeScale), func() {
		n.mu.Lock()
		if _, ok := n.timers[timer]; !ok {
			// Close already reclaimed this packet.
			n.mu.Unlock()
			return
		}
		delete(n.timers, timer)
		n.mu.Unlock()
		defer n.inflight.Done()
		n.deliver(src, dst, data)
	})
	n.timers[timer] = struct{}{}
	return nil
}

func (n *Network) deliver(src, dst string, payload []byte) {
	n.mu.Lock()
	ep := n.endpoints[dst]
	var h Handler
	if ep != nil {
		h = ep.handler
	}
	if ep == nil || h == nil {
		n.stats.Unroutable++
		n.mu.Unlock()
		n.metrics.Unroutable.Inc()
		return
	}
	n.stats.Delivered++
	n.mu.Unlock()
	n.metrics.Delivered.Inc()
	h(src, payload)
}

func (n *Network) count(f func(*Stats)) {
	n.mu.Lock()
	f(&n.stats)
	n.mu.Unlock()
}

// Endpoint is one attached network participant. The handler field is
// guarded by the owning network's mutex.
type Endpoint struct {
	net     *Network
	addr    string
	handler Handler
}

// Addr returns the endpoint's address.
func (e *Endpoint) Addr() string { return e.addr }

// SetHandler installs the receive callback. It may be called at most once
// before traffic is expected; replacing a handler mid-flight is allowed.
// The parameter is the unnamed signature of Handler so that Endpoint
// satisfies transport interfaces declared in other packages.
func (e *Endpoint) SetHandler(h func(src string, payload []byte)) {
	e.net.mu.Lock()
	e.handler = h
	e.net.mu.Unlock()
}

// Send submits a packet toward dst. A nil error does not imply delivery:
// the packet may be lost in transit, exactly like UDP.
func (e *Endpoint) Send(dst string, payload []byte) error {
	if dst == "" {
		return errors.New("netsim: empty destination")
	}
	return e.net.send(e.addr, dst, payload)
}
