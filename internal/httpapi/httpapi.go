// Package httpapi holds the small wire conventions every HTTP surface
// of the platform shares: JSON responses, the stable {"error": ...}
// error shape, and uniform 405 handling. Handlers across atlasd (the
// platform API, the cluster control plane, the serving layer) all
// encode through these helpers so clients see one contract — errors
// are always JSON with Content-Type application/json, never a mix of
// plain-text http.Error bodies and ad-hoc encodings.
package httpapi

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
)

// WriteJSON sends v as a JSON response with the given status code. The
// status header goes out first, so an encode failure cannot change the
// response anymore; the error is returned for callers that surface it
// (e.g. to request metrics) and safe to ignore otherwise.
func WriteJSON(w http.ResponseWriter, code int, v any) error {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	return json.NewEncoder(w).Encode(v)
}

// errorBody is the stable error shape every endpoint returns.
type errorBody struct {
	Error string `json:"error"`
}

// Error sends the platform's uniform JSON error response.
func Error(w http.ResponseWriter, code int, msg string) {
	_ = WriteJSON(w, code, errorBody{Error: msg})
}

// Errorf is Error with formatting.
func Errorf(w http.ResponseWriter, code int, format string, args ...any) {
	Error(w, code, fmt.Sprintf(format, args...))
}

// MethodNotAllowed sends a 405 with the Allow header listing the
// methods the resource supports, keeping the JSON error shape (the
// stdlib mux's automatic 405 writes a plain-text body).
func MethodNotAllowed(w http.ResponseWriter, r *http.Request, allow ...string) {
	w.Header().Set("Allow", strings.Join(allow, ", "))
	Errorf(w, http.StatusMethodNotAllowed, "method %s not allowed (allow: %s)",
		r.Method, strings.Join(allow, ", "))
}
