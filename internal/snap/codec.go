package snap

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Codec primitives shared by every snapshot state encoder: varints for
// counts and identifiers, raw IEEE-754 bits for floats (so accumulator
// state round-trips bitwise), length-prefixed strings, and a
// bounds-checked Cursor for decoding. Higher layers (stats, core)
// compose these into per-aggregate state codecs.

// AppendUvarint appends v in unsigned varint encoding.
func AppendUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

// AppendVarint appends v in zig-zag varint encoding.
func AppendVarint(b []byte, v int64) []byte {
	return binary.AppendVarint(b, v)
}

// AppendFloat appends v's exact IEEE-754 bits, little-endian. Encoding
// bits rather than a decimal rendering is what keeps resumed float
// folds bitwise identical to cold ones.
func AppendFloat(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

// AppendUint32 appends v little-endian.
func AppendUint32(b []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(b, v)
}

// AppendBool appends v as one byte.
func AppendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// AppendString appends s length-prefixed.
func AppendString(b []byte, s string) []byte {
	b = AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// Cursor reads the primitive encodings back with bounds checking; every
// decode error identifies the failing offset.
type Cursor struct {
	b   []byte
	off int
}

// NewCursor wraps b.
func NewCursor(b []byte) *Cursor { return &Cursor{b: b} }

// Remaining returns the undecoded byte count.
func (c *Cursor) Remaining() int { return len(c.b) - c.off }

// Uvarint decodes one unsigned varint.
func (c *Cursor) Uvarint() (uint64, error) {
	v, n := binary.Uvarint(c.b[c.off:])
	if n <= 0 {
		return 0, fmt.Errorf("snap: corrupt uvarint at offset %d", c.off)
	}
	c.off += n
	return v, nil
}

// Varint decodes one zig-zag varint.
func (c *Cursor) Varint() (int64, error) {
	v, n := binary.Varint(c.b[c.off:])
	if n <= 0 {
		return 0, fmt.Errorf("snap: corrupt varint at offset %d", c.off)
	}
	c.off += n
	return v, nil
}

// Float decodes one raw-bits float64.
func (c *Cursor) Float() (float64, error) {
	if c.Remaining() < 8 {
		return 0, fmt.Errorf("snap: truncated float at offset %d", c.off)
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(c.b[c.off:]))
	c.off += 8
	return v, nil
}

// Uint32 decodes one little-endian uint32.
func (c *Cursor) Uint32() (uint32, error) {
	if c.Remaining() < 4 {
		return 0, fmt.Errorf("snap: truncated uint32 at offset %d", c.off)
	}
	v := binary.LittleEndian.Uint32(c.b[c.off:])
	c.off += 4
	return v, nil
}

// Byte decodes one byte.
func (c *Cursor) Byte() (byte, error) {
	if c.Remaining() < 1 {
		return 0, fmt.Errorf("snap: truncated byte at offset %d", c.off)
	}
	v := c.b[c.off]
	c.off++
	return v, nil
}

// Bool decodes one byte written by AppendBool, rejecting values other
// than 0 and 1.
func (c *Cursor) Bool() (bool, error) {
	v, err := c.Byte()
	if err != nil {
		return false, err
	}
	if v > 1 {
		return false, fmt.Errorf("snap: bad bool byte %d at offset %d", v, c.off-1)
	}
	return v == 1, nil
}

// Pos returns the cursor's current offset, for re-slicing a decoded
// region out of the buffer with Since.
func (c *Cursor) Pos() int { return c.off }

// Since returns the bytes between a previously captured Pos and the
// current offset. The returned slice aliases the cursor's buffer —
// this is what lets a decoder keep an encoded span verbatim (to splice
// back into the next encode) without copying it.
func (c *Cursor) Since(pos int) []byte {
	if pos < 0 || pos > c.off {
		return nil
	}
	return c.b[pos:c.off]
}

// Bytes consumes the next n bytes. The returned slice aliases the
// cursor's buffer.
func (c *Cursor) Bytes(n int) ([]byte, error) {
	if n < 0 || c.Remaining() < n {
		return nil, fmt.Errorf("snap: %d bytes wanted at offset %d, %d remain", n, c.off, c.Remaining())
	}
	v := c.b[c.off : c.off+n]
	c.off += n
	return v, nil
}

// String decodes one length-prefixed string.
func (c *Cursor) String() (string, error) {
	n, err := c.Uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(c.Remaining()) {
		return "", fmt.Errorf("snap: string of %d bytes at offset %d, %d remain", n, c.off, c.Remaining())
	}
	raw, err := c.Bytes(int(n))
	if err != nil {
		return "", err
	}
	return string(raw), nil
}
