package snap

import "repro/internal/obs"

// Metrics counts snapshot cache behavior. All methods are nil-safe so
// unmetered scans pay nothing.
type Metrics struct {
	Hits          *obs.Counter
	Misses        *obs.Counter
	Invalidations *obs.Counter
	Writes        *obs.Counter
	BlocksSkipped *obs.Counter
	BytesSkipped  *obs.Counter
}

// NewMetrics registers the snap_* counters on reg.
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		Hits:          reg.Counter("snap_hits_total", "Scans resumed from a valid snapshot."),
		Misses:        reg.Counter("snap_misses_total", "Scans with no snapshot on disk."),
		Invalidations: reg.Counter("snap_invalidations_total", "Snapshots discarded as unusable (corrupt, mismatched, or stale)."),
		Writes:        reg.Counter("snap_writes_total", "Snapshots written."),
		BlocksSkipped: reg.Counter("snap_blocks_skipped_total", "Store blocks not decoded because a snapshot covered them."),
		BytesSkipped:  reg.Counter("snap_bytes_skipped_total", "Store bytes not decoded because a snapshot covered them."),
	}
}

// Hit records a scan resumed from a snapshot covering the given blocks
// and bytes.
func (m *Metrics) Hit(blocks int, bytes int64) {
	if m == nil {
		return
	}
	m.Hits.Inc()
	m.BlocksSkipped.Add(uint64(blocks))
	m.BytesSkipped.Add(uint64(bytes))
}

// Miss records a scan that found no snapshot.
func (m *Metrics) Miss() {
	if m == nil {
		return
	}
	m.Misses.Inc()
}

// Invalidate records a snapshot discarded as unusable.
func (m *Metrics) Invalidate() {
	if m == nil {
		return
	}
	m.Invalidations.Inc()
}

// Wrote records a snapshot write.
func (m *Metrics) Wrote() {
	if m == nil {
		return
	}
	m.Writes.Inc()
}
