package snap

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func testHeader() Header {
	return Header{
		PassSet:       "suite-v1|start=1567296000000000000|width=604800000000000",
		Index:         "8f3a1c5d9e2b4a60",
		Meta:          "0011223344556677",
		Format:        FormatBinary,
		CoveredBytes:  1 << 20,
		CoveredBlocks: 88,
		Samples:       345600,
		HeadCRC:       0xdeadbeef,
		TailCRC:       0x01020304,
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	h := testHeader()
	payload := []byte("opaque pass state \x00\x01\x02")
	data := Encode(h, payload)
	got, gotPayload, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Errorf("header round trip: got %+v want %+v", got, h)
	}
	if !bytes.Equal(gotPayload, payload) {
		t.Errorf("payload round trip: got %q want %q", gotPayload, payload)
	}

	// Empty payload and zero-valued header round-trip too.
	data = Encode(Header{}, nil)
	got, gotPayload, err = Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if got != (Header{}) || len(gotPayload) != 0 {
		t.Errorf("zero round trip: %+v payload %d bytes", got, len(gotPayload))
	}
}

// TestDecodeRejectsCorruption flips every byte of a valid snapshot in
// turn; each mutation must fail to decode (the CRC covers everything),
// and so must every truncation.
func TestDecodeRejectsCorruption(t *testing.T) {
	data := Encode(testHeader(), []byte("payload"))
	for i := range data {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x40
		if _, _, err := Decode(mut); err == nil {
			t.Fatalf("byte %d flipped but Decode succeeded", i)
		}
	}
	for n := 0; n < len(data); n++ {
		if _, _, err := Decode(data[:n]); err == nil {
			t.Fatalf("truncation to %d bytes decoded", n)
		}
	}
	if _, _, err := Decode(append(append([]byte(nil), data...), 0)); err == nil {
		t.Fatal("trailing byte decoded")
	}
}

func TestWriteReadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "samples.snap")

	if _, _, err := ReadFile(path); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("missing file: got %v, want ErrNoSnapshot", err)
	}

	h := testHeader()
	if err := WriteFile(path, h, []byte("state")); err != nil {
		t.Fatal(err)
	}
	got, payload, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != h || string(payload) != "state" {
		t.Errorf("read back %+v %q", got, payload)
	}

	// Rewrite replaces atomically; no temp files linger.
	h.Samples++
	if err := WriteFile(path, h, []byte("state2")); err != nil {
		t.Fatal(err)
	}
	got, payload, err = ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != h || string(payload) != "state2" {
		t.Errorf("rewrite read back %+v %q", got, payload)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("dir has %d entries after rewrite, want 1", len(entries))
	}
}

func TestWindowCRCs(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "data")
	big := bytes.Repeat([]byte("0123456789abcdef"), 3*WindowBytes/16)
	if err := os.WriteFile(path, big, 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	covered := int64(2*WindowBytes + 123)
	head, tail, err := WindowCRCs(f, covered)
	if err != nil {
		t.Fatal(err)
	}
	if want := checksum(big[:WindowBytes]); head != want {
		t.Errorf("head CRC %08x want %08x", head, want)
	}
	if want := checksum(big[covered-WindowBytes : covered]); tail != want {
		t.Errorf("tail CRC %08x want %08x", tail, want)
	}

	// Short prefix: both windows are the whole prefix.
	head, tail, err = WindowCRCs(f, 10)
	if err != nil {
		t.Fatal(err)
	}
	if want := checksum(big[:10]); head != want || tail != want {
		t.Errorf("short prefix CRCs %08x/%08x want %08x", head, tail, want)
	}

	// Empty prefix is legal (empty store) and hashes nothing.
	if _, _, err := WindowCRCs(f, 0); err != nil {
		t.Fatalf("empty prefix: %v", err)
	}

	// A window past EOF is an error, not a silent short read.
	if _, _, err := WindowCRCs(f, int64(len(big))+1); err == nil {
		t.Error("covered past EOF succeeded")
	}
}

func TestCursorPrimitives(t *testing.T) {
	var b []byte
	b = AppendUvarint(b, 300)
	b = AppendVarint(b, -7)
	b = AppendFloat(b, 3.5)
	b = AppendBool(b, true)
	b = AppendString(b, "hé")
	b = AppendUint32(b, 0xcafef00d)

	c := NewCursor(b)
	if v, err := c.Uvarint(); err != nil || v != 300 {
		t.Fatalf("uvarint %d %v", v, err)
	}
	if v, err := c.Varint(); err != nil || v != -7 {
		t.Fatalf("varint %d %v", v, err)
	}
	if v, err := c.Float(); err != nil || v != 3.5 {
		t.Fatalf("float %v %v", v, err)
	}
	if v, err := c.Bool(); err != nil || !v {
		t.Fatalf("bool %v %v", v, err)
	}
	if v, err := c.String(); err != nil || v != "hé" {
		t.Fatalf("string %q %v", v, err)
	}
	if v, err := c.Uint32(); err != nil || v != 0xcafef00d {
		t.Fatalf("uint32 %x %v", v, err)
	}
	if c.Remaining() != 0 {
		t.Fatalf("%d bytes remain", c.Remaining())
	}
	if _, err := c.Byte(); err == nil {
		t.Fatal("read past end succeeded")
	}

	// Bad bool byte and oversized string length are rejected.
	if _, err := NewCursor([]byte{2}).Bool(); err == nil {
		t.Error("bool byte 2 accepted")
	}
	if _, err := NewCursor([]byte{0xff, 0x01}).String(); err == nil {
		t.Error("string length past end accepted")
	}
}
