// Package snap persists merged analysis-pass state between scans so an
// append-only store can be re-analyzed at O(delta) cost: load the
// snapshot, seed the passes, decode only the bytes written since the
// snapshot's covered boundary, merge, rewrite.
//
// The file is a small versioned envelope — magic, a binding header, an
// opaque pass-state payload, and a whole-file CRC. The header carries
// everything needed to prove the snapshot is an exact prefix of the
// store it is applied to (format, covered byte/block boundary, content
// window CRCs, index/meta/pass-set fingerprints); any mismatch discards
// the snapshot and the caller falls back to a cold scan. Corruption is
// therefore never worse than a cache miss.
package snap

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"os"
	"path/filepath"
)

// ErrNoSnapshot reports that no snapshot file exists at the given path.
var ErrNoSnapshot = errors.New("snap: no snapshot")

// magic identifies a snapshot file; the fifth byte is the envelope
// version.
var magic = [8]byte{'S', 'N', 'A', 'P', 1, 0, 0, '\n'}

// crcTable selects the Castagnoli polynomial: snapshots checksum the
// whole multi-megabyte state on every load, and Castagnoli has a
// dedicated instruction on amd64/arm64 where the IEEE polynomial does
// not, so validation stays a small fraction of the file read itself.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

func checksum(b []byte) uint32 { return crc32.Checksum(b, crcTable) }

// Checksum is the envelope checksum other sidecar formats share (the
// temporal aggregate index guards its records with the same Castagnoli
// CRC), so every CRC-guarded companion file of a store validates with
// one polynomial.
func Checksum(b []byte) uint32 { return checksum(b) }

// Format mirrors the store's sample encoding; a snapshot binds to one.
type Format uint8

const (
	// FormatJSONL covers line-oriented stores; CoveredBytes is a byte
	// offset on a line boundary.
	FormatJSONL Format = iota
	// FormatBinary covers colf stores; CoveredBytes is a block boundary
	// and CoveredBlocks counts the blocks before it.
	FormatBinary
)

// Header binds a snapshot to the exact store prefix it summarizes.
type Header struct {
	// PassSet fingerprints the analysis configuration (pass-set version,
	// window geometry). State from a different pass set never applies.
	PassSet string
	// Index fingerprints the probe index the passes were seeded with.
	Index string
	// Meta fingerprints the store's campaign metadata.
	Meta string
	// Format is the store encoding the snapshot was taken from.
	Format Format
	// CoveredBytes is the store data size (bytes of sample data, not
	// counting any trailing index) the snapshot summarizes.
	CoveredBytes int64
	// CoveredBlocks is the block count before CoveredBytes (binary
	// stores only; zero for JSONL).
	CoveredBlocks int
	// Samples is the number of samples folded into the state.
	Samples uint64
	// HeadCRC and TailCRC checksum the first and last WindowBytes of the
	// covered prefix, catching in-place rewrites that preserve length.
	HeadCRC uint32
	TailCRC uint32
}

func (h Header) append(b []byte) []byte {
	b = AppendString(b, h.PassSet)
	b = AppendString(b, h.Index)
	b = AppendString(b, h.Meta)
	b = append(b, byte(h.Format))
	b = AppendVarint(b, h.CoveredBytes)
	b = AppendUvarint(b, uint64(h.CoveredBlocks))
	b = AppendUvarint(b, h.Samples)
	b = AppendUint32(b, h.HeadCRC)
	b = AppendUint32(b, h.TailCRC)
	return b
}

func decodeHeader(c *Cursor) (Header, error) {
	var h Header
	var err error
	if h.PassSet, err = c.String(); err != nil {
		return h, err
	}
	if h.Index, err = c.String(); err != nil {
		return h, err
	}
	if h.Meta, err = c.String(); err != nil {
		return h, err
	}
	f, err := c.Byte()
	if err != nil {
		return h, err
	}
	if f > byte(FormatBinary) {
		return h, fmt.Errorf("snap: unknown format %d", f)
	}
	h.Format = Format(f)
	if h.CoveredBytes, err = c.Varint(); err != nil {
		return h, err
	}
	if h.CoveredBytes < 0 {
		return h, fmt.Errorf("snap: negative covered bytes %d", h.CoveredBytes)
	}
	blocks, err := c.Uvarint()
	if err != nil {
		return h, err
	}
	if blocks > uint64(h.CoveredBytes) {
		return h, fmt.Errorf("snap: %d covered blocks exceed %d covered bytes", blocks, h.CoveredBytes)
	}
	h.CoveredBlocks = int(blocks)
	if h.Samples, err = c.Uvarint(); err != nil {
		return h, err
	}
	if h.HeadCRC, err = c.Uint32(); err != nil {
		return h, err
	}
	if h.TailCRC, err = c.Uint32(); err != nil {
		return h, err
	}
	return h, nil
}

// Encode frames a header and pass-state payload into a snapshot file
// image: magic, length-prefixed header, length-prefixed payload, and a
// CRC32 over everything before it.
func Encode(h Header, payload []byte) []byte {
	hb := h.append(nil)
	b := make([]byte, 0, len(magic)+len(hb)+len(payload)+24)
	b = append(b, magic[:]...)
	b = AppendUvarint(b, uint64(len(hb)))
	b = append(b, hb...)
	b = AppendUvarint(b, uint64(len(payload)))
	b = append(b, payload...)
	return AppendUint32(b, checksum(b))
}

// Decode parses a snapshot file image, verifying magic, CRC, and that
// every byte is accounted for. The returned payload aliases data.
func Decode(data []byte) (Header, []byte, error) {
	var h Header
	if len(data) < len(magic)+4 {
		return h, nil, fmt.Errorf("snap: %d bytes is too short for a snapshot", len(data))
	}
	if string(data[:len(magic)]) != string(magic[:]) {
		return h, nil, errors.New("snap: bad magic")
	}
	body, sum := data[:len(data)-4], data[len(data)-4:]
	c := NewCursor(sum)
	want, _ := c.Uint32()
	if got := checksum(body); got != want {
		return h, nil, fmt.Errorf("snap: checksum mismatch: file %08x, computed %08x", want, got)
	}
	c = NewCursor(body[len(magic):])
	hlen, err := c.Uvarint()
	if err != nil {
		return h, nil, err
	}
	if hlen > uint64(c.Remaining()) {
		return h, nil, fmt.Errorf("snap: header length %d exceeds %d remaining bytes", hlen, c.Remaining())
	}
	hb, err := c.Bytes(int(hlen))
	if err != nil {
		return h, nil, err
	}
	hc := NewCursor(hb)
	if h, err = decodeHeader(hc); err != nil {
		return h, nil, err
	}
	if hc.Remaining() != 0 {
		return h, nil, fmt.Errorf("snap: %d trailing header bytes", hc.Remaining())
	}
	plen, err := c.Uvarint()
	if err != nil {
		return h, nil, err
	}
	if plen > uint64(c.Remaining()) {
		return h, nil, fmt.Errorf("snap: payload length %d exceeds %d remaining bytes", plen, c.Remaining())
	}
	payload, err := c.Bytes(int(plen))
	if err != nil {
		return h, nil, err
	}
	if c.Remaining() != 0 {
		return h, nil, fmt.Errorf("snap: %d trailing bytes after payload", c.Remaining())
	}
	return h, payload, nil
}

// WriteFile atomically replaces path with the encoded snapshot: write
// to a temp file in the same directory, fsync, rename. A crash leaves
// either the old snapshot or the new one, never a torn file.
func WriteFile(path string, h Header, payload []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".snap-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(Encode(h, payload)); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// ReadFile loads and decodes the snapshot at path. A missing file is
// ErrNoSnapshot; any other failure surfaces as-is for the caller to
// treat as an invalidation.
func ReadFile(path string) (Header, []byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return Header{}, nil, ErrNoSnapshot
		}
		return Header{}, nil, err
	}
	return Decode(data)
}

// Fingerprint derives a compact identity for a store prefix from the
// same evidence a snapshot header binds to: the covered byte boundary,
// the sample count, and the head/tail content-window CRCs. Two prefixes
// with equal fingerprints carry the same analysis state for practical
// purposes, which is what cache keys and HTTP ETags need — the serving
// layer stamps every response with the fingerprint of the snapshot
// that produced it.
func Fingerprint(covered int64, samples uint64, head, tail uint32) string {
	return fmt.Sprintf("%x-%x-%08x%08x", covered, samples, head, tail)
}

// WindowBytes is the size of the head and tail content windows hashed
// into the header. Two 64 KiB reads bound validation cost regardless of
// store size while still catching same-length rewrites at either end.
const WindowBytes = 64 << 10

// WindowCRCs checksums the first and last WindowBytes of the covered
// prefix [0, covered) of r.
func WindowCRCs(r io.ReaderAt, covered int64) (head, tail uint32, err error) {
	window := func(off, n int64) (uint32, error) {
		buf := make([]byte, n)
		if _, err := r.ReadAt(buf, off); err != nil {
			return 0, err
		}
		return checksum(buf), nil
	}
	n := covered
	if n > WindowBytes {
		n = WindowBytes
	}
	if head, err = window(0, n); err != nil {
		return 0, 0, err
	}
	if tail, err = window(covered-n, n); err != nil {
		return 0, 0, err
	}
	return head, tail, nil
}
