package snap

import (
	"bytes"
	"testing"
)

// FuzzSnapshotRoundTrip drives Decode with arbitrary bytes: it must
// either reject the input or yield a header+payload that re-encode and
// re-decode to the same values — a snapshot is never silently
// misapplied. Seeds cover valid images so mutation explores near-valid
// corruptions.
func FuzzSnapshotRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add(Encode(Header{}, nil))
	f.Add(Encode(Header{
		PassSet:       "suite-v1",
		Index:         "idx",
		Meta:          "meta",
		Format:        FormatBinary,
		CoveredBytes:  1 << 20,
		CoveredBlocks: 88,
		Samples:       345600,
		HeadCRC:       1,
		TailCRC:       2,
	}, []byte("state")))
	data := Encode(Header{Format: FormatJSONL, CoveredBytes: 42, Samples: 7}, bytes.Repeat([]byte{0xaa}, 64))
	f.Add(data)
	data = append([]byte(nil), data...)
	data[len(data)/2] ^= 0xff
	f.Add(data)

	f.Fuzz(func(t *testing.T, data []byte) {
		h, payload, err := Decode(data)
		if err != nil {
			return
		}
		re := Encode(h, payload)
		h2, payload2, err := Decode(re)
		if err != nil {
			t.Fatalf("re-encoded snapshot failed to decode: %v", err)
		}
		if h2 != h || !bytes.Equal(payload2, payload) {
			t.Fatalf("round trip diverged: %+v %q vs %+v %q", h, payload, h2, payload2)
		}
	})
}
