// Package tcping implements the TCP-style probing the paper plans as an
// extension (§5, "Network vs. application latency"): a three-way-handshake
// protocol whose connect time measures the network RTT the way
// tcptraceroute-style tools do, plus a request/response phase whose
// time-to-first-byte additionally includes server processing — the
// application-level latency the discussion contrasts with ping.
package tcping

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Message types of the handshake protocol.
const (
	TypeSYN uint8 = 1 + iota
	TypeSYNACK
	TypeACK
	TypeREQ
	TypeRESP
)

// segmentLen is the fixed wire size of a segment.
const segmentLen = 13

// Common decode errors.
var (
	ErrShortSegment = errors.New("tcping: segment truncated")
	ErrBadType      = errors.New("tcping: unknown segment type")
)

// Segment is one protocol message.
//
// Wire layout (big endian):
//
//	byte  0     Type
//	bytes 1-4   ConnID
//	bytes 5-12  SentUnixNano
type Segment struct {
	Type         uint8
	ConnID       uint32
	SentUnixNano int64
}

// Marshal encodes the segment.
func (s *Segment) Marshal() ([]byte, error) {
	if s.Type < TypeSYN || s.Type > TypeRESP {
		return nil, fmt.Errorf("%w: %d", ErrBadType, s.Type)
	}
	buf := make([]byte, segmentLen)
	buf[0] = s.Type
	binary.BigEndian.PutUint32(buf[1:5], s.ConnID)
	binary.BigEndian.PutUint64(buf[5:13], uint64(s.SentUnixNano))
	return buf, nil
}

// UnmarshalSegment decodes and validates a segment.
func UnmarshalSegment(buf []byte) (*Segment, error) {
	if len(buf) < segmentLen {
		return nil, ErrShortSegment
	}
	s := &Segment{
		Type:         buf[0],
		ConnID:       binary.BigEndian.Uint32(buf[1:5]),
		SentUnixNano: int64(binary.BigEndian.Uint64(buf[5:13])),
	}
	if s.Type < TypeSYN || s.Type > TypeRESP {
		return nil, fmt.Errorf("%w: %d", ErrBadType, s.Type)
	}
	return s, nil
}
