package tcping

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ping"
)

// Server answers TCP-style probes on a transport: SYN-ACKs handshakes and
// serves requests after a configurable processing delay — the in-cloud
// compute share of application latency the paper's §5 discusses.
type Server struct {
	tr      ping.Transport
	delayFn func(connID uint32) time.Duration
	sleep   func(time.Duration)

	mu     sync.Mutex
	open   map[uint32]bool
	served atomic.Uint64
}

// ServerOption configures a Server.
type ServerOption func(*Server)

// WithProcessingDelay sets the per-request compute delay. The default is
// zero (an echo-like service). The function is keyed by connection so
// deterministic simulations can vary it reproducibly.
func WithProcessingDelay(fn func(connID uint32) time.Duration) ServerOption {
	return func(s *Server) {
		if fn != nil {
			s.delayFn = fn
		}
	}
}

// NewServer installs the server as the transport's handler.
func NewServer(tr ping.Transport, opts ...ServerOption) (*Server, error) {
	if tr == nil {
		return nil, errors.New("tcping: nil transport")
	}
	s := &Server{
		tr:      tr,
		delayFn: func(uint32) time.Duration { return 0 },
		sleep:   time.Sleep,
		open:    make(map[uint32]bool),
	}
	for _, o := range opts {
		o(s)
	}
	tr.SetHandler(s.onPacket)
	return s, nil
}

func (s *Server) onPacket(src string, payload []byte) {
	seg, err := UnmarshalSegment(payload)
	if err != nil {
		return
	}
	switch seg.Type {
	case TypeSYN:
		// The connection is usable once SYN-ACKed: like real TCP, the
		// client's first data segment may carry the ACK (and the network
		// may reorder equal-delay packets).
		s.mu.Lock()
		s.open[seg.ConnID] = true
		s.mu.Unlock()
		s.reply(src, TypeSYNACK, seg.ConnID)
	case TypeACK:
		// State confirmation only; the SYN already opened the connection.
	case TypeREQ:
		s.mu.Lock()
		established := s.open[seg.ConnID]
		s.mu.Unlock()
		if !established {
			return // request on a half-open connection: drop, like a RST
		}
		if d := s.delayFn(seg.ConnID); d > 0 {
			s.sleep(d)
		}
		s.reply(src, TypeRESP, seg.ConnID)
		s.served.Add(1)
	}
}

func (s *Server) reply(dst string, typ uint8, connID uint32) {
	seg := &Segment{Type: typ, ConnID: connID, SentUnixNano: time.Now().UnixNano()}
	buf, err := seg.Marshal()
	if err != nil {
		return
	}
	_ = s.tr.Send(dst, buf) // loss is silent, like the network
}

// Served returns the number of answered requests.
func (s *Server) Served() uint64 { return s.served.Load() }
