package tcping

import (
	"context"
	"errors"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/netsim"
	"repro/internal/ping"
)

func TestSegmentRoundTrip(t *testing.T) {
	prop := func(typRaw uint8, connID uint32, ts int64) bool {
		typ := TypeSYN + typRaw%(TypeRESP-TypeSYN+1)
		s := &Segment{Type: typ, ConnID: connID, SentUnixNano: ts}
		buf, err := s.Marshal()
		if err != nil {
			return false
		}
		got, err := UnmarshalSegment(buf)
		if err != nil {
			return false
		}
		return got.Type == typ && got.ConnID == connID && got.SentUnixNano == ts
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSegmentErrors(t *testing.T) {
	if _, err := UnmarshalSegment(make([]byte, segmentLen-1)); !errors.Is(err, ErrShortSegment) {
		t.Errorf("short: %v", err)
	}
	bad := make([]byte, segmentLen)
	bad[0] = 99
	if _, err := UnmarshalSegment(bad); !errors.Is(err, ErrBadType) {
		t.Errorf("bad type: %v", err)
	}
	s := &Segment{Type: 0}
	if _, err := s.Marshal(); !errors.Is(err, ErrBadType) {
		t.Errorf("marshal bad type: %v", err)
	}
}

func pair(t *testing.T, delay time.Duration, opts ...ServerOption) (*Prober, *Server) {
	t.Helper()
	n, err := netsim.NewNetwork(netsim.LinkerFunc(
		func(src, dst string, at time.Time) (time.Duration, bool, error) {
			return delay, false, nil
		}))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(n.Close)
	ce, err := n.Attach("client")
	if err != nil {
		t.Fatal(err)
	}
	se, err := n.Attach("server")
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProber(ce)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewServer(se, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return p, s
}

func TestProbeMeasuresConnectAndTTFB(t *testing.T) {
	const oneWay = 4 * time.Millisecond
	const processing = 30 * time.Millisecond
	p, s := pair(t, oneWay, WithProcessingDelay(func(uint32) time.Duration { return processing }))
	res, err := p.Probe(context.Background(), "server", 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// Connect = 2 legs; TTFB = 2 legs + processing.
	if res.ConnectRTT < 2*oneWay || res.ConnectRTT > 20*oneWay {
		t.Errorf("connect = %v, want ~%v", res.ConnectRTT, 2*oneWay)
	}
	if res.TTFB < 2*oneWay+processing {
		t.Errorf("TTFB = %v, want >= %v", res.TTFB, 2*oneWay+processing)
	}
	if got := res.ProcessingDelay(); got < processing/2 {
		t.Errorf("processing share = %v, want ~%v", got, processing)
	}
	if s.Served() != 1 {
		t.Errorf("served = %d", s.Served())
	}
}

func TestProcessingDelayNonNegative(t *testing.T) {
	r := Result{ConnectRTT: 10 * time.Millisecond, TTFB: 5 * time.Millisecond}
	if r.ProcessingDelay() != 0 {
		t.Error("negative processing delay leaked")
	}
}

func TestHalfOpenConnectionRejected(t *testing.T) {
	// A REQ without a completed handshake is dropped.
	n, err := netsim.NewNetwork(netsim.LinkerFunc(
		func(src, dst string, at time.Time) (time.Duration, bool, error) {
			return time.Millisecond, false, nil
		}))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(n.Close)
	ce, _ := n.Attach("client")
	se, _ := n.Attach("server")
	srv, err := NewServer(se)
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan struct{}, 1)
	ce.SetHandler(func(string, []byte) { got <- struct{}{} })
	seg := &Segment{Type: TypeREQ, ConnID: 7}
	buf, err := seg.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if err := ce.Send("server", buf); err != nil {
		t.Fatal(err)
	}
	select {
	case <-got:
		t.Error("half-open request answered")
	case <-time.After(50 * time.Millisecond):
	}
	if srv.Served() != 0 {
		t.Errorf("served = %d", srv.Served())
	}
}

func TestProbeTimeout(t *testing.T) {
	n, err := netsim.NewNetwork(netsim.LinkerFunc(
		func(src, dst string, at time.Time) (time.Duration, bool, error) {
			return 0, true, nil // black hole
		}))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(n.Close)
	ce, _ := n.Attach("client")
	if _, err := n.Attach("server"); err != nil {
		t.Fatal(err)
	}
	p, err := NewProber(ce)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Probe(context.Background(), "server", 30*time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Errorf("got %v, want ErrTimeout", err)
	}
}

func TestProbeValidation(t *testing.T) {
	if _, err := NewProber(nil); err == nil {
		t.Error("nil transport accepted")
	}
	if _, err := NewServer(nil); err == nil {
		t.Error("nil server transport accepted")
	}
	p, _ := pair(t, time.Millisecond)
	if _, err := p.Probe(context.Background(), "server", 0); err == nil {
		t.Error("zero timeout accepted")
	}
}

func TestProbeContextCancel(t *testing.T) {
	p, _ := pair(t, time.Hour)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := p.Probe(ctx, "server", time.Hour)
		done <- err
	}()
	time.Sleep(5 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("got %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancel ignored")
	}
}

func TestOverUDP(t *testing.T) {
	reg := ping.NewUDPRegistry()
	ct, err := reg.NewTransport("tc-client")
	if err != nil {
		t.Fatal(err)
	}
	defer ct.Close()
	st, err := reg.NewTransport("tc-server")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	p, err := NewProber(ct)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewServer(st, WithProcessingDelay(func(uint32) time.Duration { return 2 * time.Millisecond })); err != nil {
		t.Fatal(err)
	}
	res, err := p.Probe(context.Background(), "tc-server", 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.ConnectRTT <= 0 || res.TTFB < res.ConnectRTT {
		t.Errorf("result = %+v", res)
	}
}

func TestTTFBExceedsConnectOverManyProbes(t *testing.T) {
	p, _ := pair(t, 2*time.Millisecond,
		WithProcessingDelay(func(id uint32) time.Duration {
			return time.Duration(5+id%10) * time.Millisecond
		}))
	for i := 0; i < 10; i++ {
		res, err := p.Probe(context.Background(), "server", 5*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if res.TTFB <= res.ConnectRTT {
			t.Errorf("probe %d: TTFB %v <= connect %v", i, res.TTFB, res.ConnectRTT)
		}
	}
}
