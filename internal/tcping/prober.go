package tcping

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/ping"
)

// ErrTimeout is returned when the peer does not answer within the deadline.
var ErrTimeout = errors.New("tcping: timeout")

// Result is one TCP-style probe outcome.
type Result struct {
	// ConnectRTT is the SYN -> SYN-ACK time: the pure network round trip,
	// comparable to a ping.
	ConnectRTT time.Duration `json:"connect_rtt"`
	// TTFB is the REQ -> RESP time: network round trip plus server
	// processing — the application-level latency.
	TTFB time.Duration `json:"ttfb"`
}

// ProcessingDelay returns the server-side share of the TTFB.
func (r Result) ProcessingDelay() time.Duration {
	d := r.TTFB - r.ConnectRTT
	if d < 0 {
		return 0
	}
	return d
}

// Prober runs TCP-style probes from one transport endpoint.
type Prober struct {
	tr       ping.Transport
	rttScale float64
	now      func() time.Time

	mu      sync.Mutex
	nextID  uint32
	pending map[uint32]chan *Segment
}

// ProberOption configures a Prober.
type ProberOption func(*Prober)

// WithRTTScale multiplies measured durations (pair with compressed
// simulation time).
func WithRTTScale(f float64) ProberOption {
	return func(p *Prober) {
		if f > 0 {
			p.rttScale = f
		}
	}
}

// NewProber wraps a transport and installs its receive handler.
func NewProber(tr ping.Transport, opts ...ProberOption) (*Prober, error) {
	if tr == nil {
		return nil, errors.New("tcping: nil transport")
	}
	p := &Prober{
		tr:       tr,
		rttScale: 1,
		now:      time.Now,
		pending:  make(map[uint32]chan *Segment),
	}
	for _, o := range opts {
		o(p)
	}
	tr.SetHandler(p.onPacket)
	return p, nil
}

func (p *Prober) onPacket(src string, payload []byte) {
	seg, err := UnmarshalSegment(payload)
	if err != nil {
		return
	}
	if seg.Type != TypeSYNACK && seg.Type != TypeRESP {
		return
	}
	p.mu.Lock()
	ch := p.pending[seg.ConnID]
	p.mu.Unlock()
	if ch != nil {
		select {
		case ch <- seg:
		default:
		}
	}
}

// exchange sends one segment and waits for the matching reply type.
func (p *Prober) exchange(ctx context.Context, dst string, connID uint32, sendType, wantType uint8, timeout time.Duration) (time.Duration, error) {
	ch := make(chan *Segment, 1)
	p.mu.Lock()
	p.pending[connID] = ch
	p.mu.Unlock()
	defer func() {
		p.mu.Lock()
		delete(p.pending, connID)
		p.mu.Unlock()
	}()

	start := p.now()
	seg := &Segment{Type: sendType, ConnID: connID, SentUnixNano: start.UnixNano()}
	buf, err := seg.Marshal()
	if err != nil {
		return 0, err
	}
	if err := p.tr.Send(dst, buf); err != nil {
		return 0, err
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	for {
		select {
		case reply := <-ch:
			if reply.Type != wantType {
				continue // stale segment from a previous phase
			}
			elapsed := p.now().Sub(start)
			return time.Duration(float64(elapsed) * p.rttScale), nil
		case <-timer.C:
			return 0, ErrTimeout
		case <-ctx.Done():
			return 0, ctx.Err()
		}
	}
}

// Probe performs one full TCP-style measurement against dst: handshake
// (connect time), then a request (TTFB). The ACK completing the handshake
// is sent before the request, like a real client.
func (p *Prober) Probe(ctx context.Context, dst string, timeout time.Duration) (Result, error) {
	if timeout <= 0 {
		return Result{}, fmt.Errorf("tcping: non-positive timeout %v", timeout)
	}
	p.mu.Lock()
	p.nextID++
	connID := p.nextID
	p.mu.Unlock()

	connect, err := p.exchange(ctx, dst, connID, TypeSYN, TypeSYNACK, timeout)
	if err != nil {
		return Result{}, fmt.Errorf("tcping: connect: %w", err)
	}
	ack := &Segment{Type: TypeACK, ConnID: connID, SentUnixNano: p.now().UnixNano()}
	buf, err := ack.Marshal()
	if err != nil {
		return Result{}, err
	}
	if err := p.tr.Send(dst, buf); err != nil {
		return Result{}, err
	}
	ttfb, err := p.exchange(ctx, dst, connID, TypeREQ, TypeRESP, timeout)
	if err != nil {
		return Result{}, fmt.Errorf("tcping: request: %w", err)
	}
	return Result{ConnectRTT: connect, TTFB: ttfb}, nil
}
