//go:build !(linux || darwin || freebsd || netbsd || openbsd)

package colf

import "os"

func mmapFile(*os.File, int) ([]byte, error) { return nil, ErrMmapUnsupported }

func munmapFile([]byte) error { return nil }
