package colf

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
)

// Reader locates the blocks of a colf stream. Opening reads only the
// file-level index (or, when the index is missing after a crash,
// rebuilds it from the block footers); payloads stay untouched until a
// BlockDecoder asks for them.
type Reader struct {
	r      io.ReaderAt
	size   int64
	blocks []BlockInfo
}

// NewReader indexes the colf stream held by r. A zero-length stream is
// an empty dataset; anything else must start with the colf header.
func NewReader(r io.ReaderAt, size int64) (*Reader, error) {
	if size == 0 {
		return &Reader{r: r, size: 0}, nil
	}
	if size < HeaderSize {
		return nil, fmt.Errorf("colf: file of %d bytes is shorter than the header", size)
	}
	var hdr [HeaderSize]byte
	if _, err := r.ReadAt(hdr[:], 0); err != nil {
		return nil, err
	}
	if !Sniff(hdr[:]) {
		return nil, fmt.Errorf("colf: bad file header % x", hdr)
	}
	rd := &Reader{r: r, size: size}
	blocks, ok, err := loadIndex(r, size)
	if err != nil {
		return nil, err
	}
	if !ok {
		// No trailing index (interrupted run): rebuild from the block
		// footers, verifying payload CRCs along the way.
		if blocks, err = ScanBlocks(r, size, true); err != nil {
			return nil, err
		}
	}
	rd.blocks = blocks
	return rd, nil
}

// Open indexes the colf file at path. The returned closer owns the
// file handle; the Reader stays valid until it is closed.
func Open(path string) (*Reader, io.Closer, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	r, err := NewReader(f, st.Size())
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	return r, f, nil
}

// Blocks returns the stream's blocks in file order. The slice is
// shared; don't mutate it.
func (r *Reader) Blocks() []BlockInfo { return r.blocks }

// Rows returns the total row count from the zone maps.
func (r *Reader) Rows() uint64 {
	var n uint64
	for _, b := range r.blocks {
		n += uint64(b.Zone.Rows)
	}
	return n
}

// ForEachRow decodes every block in file order and calls fn per row.
func (r *Reader) ForEachRow(fn func(Row) error) error {
	dec := NewBlockDecoder()
	for _, bi := range r.blocks {
		blk, err := dec.Decode(r.r, bi)
		if err != nil {
			return err
		}
		for i := 0; i < blk.Rows(); i++ {
			if err := fn(blk.Row(i)); err != nil {
				return err
			}
		}
	}
	return nil
}

// loadIndex tries the trailing file-level index. ok=false means the
// trailer is absent (not an error: the stream may simply never have
// been finished); a present-but-corrupt index is an error.
func loadIndex(r io.ReaderAt, size int64) ([]BlockInfo, bool, error) {
	if size < HeaderSize+indexTrailerSize {
		return nil, false, nil
	}
	var trailer [indexTrailerSize]byte
	if _, err := r.ReadAt(trailer[:], size-indexTrailerSize); err != nil {
		return nil, false, err
	}
	if string(trailer[4:]) != string(indexMagic[:]) {
		return nil, false, nil
	}
	idxLen := int64(binary.LittleEndian.Uint32(trailer[:4]))
	idxStart := size - indexTrailerSize - idxLen
	if idxStart < HeaderSize {
		return nil, false, fmt.Errorf("colf: index of %d bytes does not fit the file", idxLen)
	}
	body := make([]byte, idxLen)
	if _, err := r.ReadAt(body, idxStart); err != nil {
		return nil, false, err
	}
	c := &byteCursor{b: body}
	count, err := c.uvarint()
	if err != nil {
		return nil, false, fmt.Errorf("colf: corrupt index: %w", err)
	}
	if count > uint64(size/8) {
		return nil, false, fmt.Errorf("colf: corrupt index: %d blocks in a %d-byte file", count, size)
	}
	blocks := make([]BlockInfo, 0, count)
	prevOff, prevEnd := int64(0), int64(HeaderSize)
	for i := uint64(0); i < count; i++ {
		offDelta, err := c.uvarint()
		if err != nil {
			return nil, false, fmt.Errorf("colf: corrupt index entry %d: %w", i, err)
		}
		length, err := c.uvarint()
		if err != nil {
			return nil, false, fmt.Errorf("colf: corrupt index entry %d: %w", i, err)
		}
		zone, err := decodeZone(c)
		if err != nil {
			return nil, false, fmt.Errorf("colf: corrupt index entry %d: %w", i, err)
		}
		bi := BlockInfo{Off: prevOff + int64(offDelta), Len: int64(length), Zone: zone}
		if bi.Off != prevEnd || bi.Len < 12 || bi.Off+bi.Len > idxStart {
			return nil, false, fmt.Errorf("colf: index entry %d places block at [%d,%d) outside [%d,%d)",
				i, bi.Off, bi.Off+bi.Len, prevEnd, idxStart)
		}
		prevOff, prevEnd = bi.Off, bi.Off+bi.Len
		blocks = append(blocks, bi)
	}
	if c.remaining() != 0 {
		return nil, false, fmt.Errorf("colf: %d trailing bytes after index entries", c.remaining())
	}
	if prevEnd != idxStart {
		return nil, false, fmt.Errorf("colf: index covers bytes up to %d, data ends at %d", prevEnd, idxStart)
	}
	return blocks, true, nil
}

// ScanBlocks walks the block chain from the header to end, parsing
// each block's footer (and, when verify is set, checking its CRC
// against the payload). It fails on a torn or truncated block — the
// state a crash leaves behind, which checkpoint-based resume repairs
// by truncating to a known block boundary.
func ScanBlocks(r io.ReaderAt, end int64, verify bool) ([]BlockInfo, error) {
	return ScanBlocksFrom(r, HeaderSize, end, verify)
}

// ScanBlocksFrom walks the block chain over [start, end). start must be
// a block boundary (or HeaderSize); the walk fails on the first torn or
// misaligned block, so a bogus start cannot yield a plausible-looking
// block list.
func ScanBlocksFrom(r io.ReaderAt, start, end int64, verify bool) ([]BlockInfo, error) {
	var blocks []BlockInfo
	var head [8]byte
	off := start
	for off < end {
		if end-off < 8 {
			return nil, fmt.Errorf("colf: %d stray bytes at offset %d (torn block?)", end-off, off)
		}
		if _, err := r.ReadAt(head[:], off); err != nil {
			return nil, err
		}
		bodyLen := int64(binary.LittleEndian.Uint32(head[0:4]))
		payloadLen := int64(binary.LittleEndian.Uint32(head[4:8]))
		if bodyLen > maxBlockBytes || payloadLen+4 > bodyLen {
			return nil, fmt.Errorf("colf: implausible block lengths (%d, %d) at offset %d", bodyLen, payloadLen, off)
		}
		if off+8+bodyLen > end {
			return nil, fmt.Errorf("colf: block at offset %d runs past byte %d (torn block?)", off, end)
		}
		footer := make([]byte, bodyLen-payloadLen)
		if _, err := r.ReadAt(footer, off+8+payloadLen); err != nil {
			return nil, err
		}
		c := &byteCursor{b: footer[:len(footer)-4]}
		zone, err := decodeZone(c)
		if err != nil {
			return nil, fmt.Errorf("colf: block at offset %d: %w", off, err)
		}
		if c.remaining() != 0 {
			return nil, fmt.Errorf("colf: block at offset %d: %d stray footer bytes", off, c.remaining())
		}
		if verify {
			payload := make([]byte, payloadLen)
			if _, err := r.ReadAt(payload, off+8); err != nil {
				return nil, err
			}
			crc := crc32.ChecksumIEEE(head[4:8])
			crc = crc32.Update(crc, crc32.IEEETable, payload)
			crc = crc32.Update(crc, crc32.IEEETable, footer[:len(footer)-4])
			if got := binary.LittleEndian.Uint32(footer[len(footer)-4:]); got != crc {
				return nil, fmt.Errorf("colf: block at offset %d fails CRC (%08x != %08x)", off, got, crc)
			}
		}
		blocks = append(blocks, BlockInfo{Off: off, Len: 8 + bodyLen, Zone: zone})
		off += 8 + bodyLen
	}
	return blocks, nil
}

// BlocksTo walks the block chain up to exactly offset, verifying CRCs,
// and returns the blocks of that prefix. It errors when offset is not
// a block boundary — the caller is about to truncate there, and
// cutting a block in half would corrupt the stream.
func BlocksTo(r io.ReaderAt, offset int64) ([]BlockInfo, error) {
	if offset < HeaderSize {
		return nil, fmt.Errorf("colf: offset %d is inside the file header", offset)
	}
	blocks, err := ScanBlocks(r, offset, true)
	if err != nil {
		return nil, fmt.Errorf("colf: offset %d is not a block boundary: %w", offset, err)
	}
	return blocks, nil
}

// DeltaBlocks returns the blocks at or after boundary in the colf
// stream held by r — the suffix a snapshot-resumed scan must decode.
// boundary must be a block boundary previously covered by a snapshot;
// anything else (mid-block offset, boundary past the data) is an error
// so a stale snapshot can never be silently applied. With a trailing
// index present the suffix costs one binary search; without one (an
// unfinished stream) the suffix alone is re-walked with CRC checks.
func DeltaBlocks(r io.ReaderAt, size, boundary int64) ([]BlockInfo, error) {
	if boundary < HeaderSize {
		return nil, fmt.Errorf("colf: resume boundary %d is inside the file header", boundary)
	}
	blocks, ok, err := loadIndex(r, size)
	if err != nil {
		return nil, err
	}
	if !ok {
		dataEnd := size
		if boundary == dataEnd {
			return nil, nil
		}
		if boundary > dataEnd {
			return nil, fmt.Errorf("colf: resume boundary %d past data end %d", boundary, dataEnd)
		}
		return ScanBlocksFrom(r, boundary, dataEnd, true)
	}
	dataEnd := int64(HeaderSize)
	if len(blocks) > 0 {
		last := blocks[len(blocks)-1]
		dataEnd = last.Off + last.Len
	}
	if boundary == dataEnd {
		return nil, nil
	}
	i := sort.Search(len(blocks), func(i int) bool { return blocks[i].Off >= boundary })
	if i == len(blocks) || blocks[i].Off != boundary {
		return nil, fmt.Errorf("colf: resume boundary %d is not a block boundary", boundary)
	}
	return blocks[i:], nil
}

// Block holds one decoded block in columnar form. Slices are owned by
// the BlockDecoder and overwritten by its next Decode.
type Block struct {
	Probe    []int
	TimeNano []int64
	Region   []string
	RTT      []float64
	Lost     []bool
}

// Rows returns the decoded row count.
func (b *Block) Rows() int { return len(b.Probe) }

// Row assembles row i.
func (b *Block) Row(i int) Row {
	return Row{Probe: b.Probe[i], TimeNano: b.TimeNano[i], Region: b.Region[i], RTT: b.RTT[i], Lost: b.Lost[i]}
}

// BlockDecoder decodes blocks, reusing its buffers and interning
// region strings across blocks so a long scan allocates almost
// nothing per block. Not safe for concurrent use; scanners give each
// worker its own.
type BlockDecoder struct {
	buf    []byte
	blk    Block
	dict   []string
	intern map[string]string
}

// NewBlockDecoder returns a ready decoder.
func NewBlockDecoder() *BlockDecoder {
	return &BlockDecoder{intern: make(map[string]string)}
}

// Decode reads and decodes the block described by bi. The returned
// Block is valid until the next Decode call.
func (d *BlockDecoder) Decode(r io.ReaderAt, bi BlockInfo) (*Block, error) {
	if bi.Len < 12 || bi.Len > maxBlockBytes {
		return nil, fmt.Errorf("colf: implausible block length %d at offset %d", bi.Len, bi.Off)
	}
	if cap(d.buf) < int(bi.Len) {
		d.buf = make([]byte, bi.Len)
	}
	buf := d.buf[:bi.Len]
	if _, err := r.ReadAt(buf, bi.Off); err != nil {
		return nil, err
	}
	bodyLen := int64(binary.LittleEndian.Uint32(buf[0:4]))
	payloadLen := int64(binary.LittleEndian.Uint32(buf[4:8]))
	if 8+bodyLen != bi.Len || payloadLen+4 > bodyLen {
		return nil, fmt.Errorf("colf: block at offset %d: lengths (%d, %d) disagree with index length %d",
			bi.Off, bodyLen, payloadLen, bi.Len)
	}
	payload := buf[8 : 8+payloadLen]
	footer := buf[8+payloadLen : 8+bodyLen-4]
	crc := crc32.ChecksumIEEE(buf[4:8])
	crc = crc32.Update(crc, crc32.IEEETable, payload)
	crc = crc32.Update(crc, crc32.IEEETable, footer)
	if got := binary.LittleEndian.Uint32(buf[8+bodyLen-4:]); got != crc {
		return nil, fmt.Errorf("colf: block at offset %d fails CRC (%08x != %08x)", bi.Off, got, crc)
	}
	fc := &byteCursor{b: footer}
	zone, err := decodeZone(fc)
	if err != nil {
		return nil, fmt.Errorf("colf: block at offset %d: corrupt footer: %w", bi.Off, err)
	}
	rows := zone.Rows
	if rows > int(payloadLen)+1 {
		// Every row costs at least one payload byte in some column.
		return nil, fmt.Errorf("colf: block at offset %d claims %d rows in %d payload bytes", bi.Off, rows, payloadLen)
	}

	c := &byteCursor{b: payload}
	probeSec, err := section(c)
	if err != nil {
		return nil, err
	}
	timeSec, err := section(c)
	if err != nil {
		return nil, err
	}
	regionSec, err := section(c)
	if err != nil {
		return nil, err
	}
	rttSec, err := section(c)
	if err != nil {
		return nil, err
	}
	lostSec, err := section(c)
	if err != nil {
		return nil, err
	}
	if c.remaining() != 0 {
		return nil, fmt.Errorf("colf: block at offset %d: %d stray payload bytes", bi.Off, c.remaining())
	}

	blk := &d.blk
	blk.Probe = grow(blk.Probe, rows)
	blk.TimeNano = grow(blk.TimeNano, rows)
	blk.Region = grow(blk.Region, rows)
	blk.RTT = grow(blk.RTT, rows)
	blk.Lost = grow(blk.Lost, rows)

	// Probe and time columns: delta chains restarting at zero.
	prev := int64(0)
	for i := 0; i < rows; i++ {
		dlt, err := probeSec.varint()
		if err != nil {
			return nil, err
		}
		prev += dlt
		blk.Probe[i] = int(prev)
	}
	if probeSec.remaining() != 0 {
		return nil, fmt.Errorf("colf: block at offset %d: stray probe bytes", bi.Off)
	}
	prev = 0
	for i := 0; i < rows; i++ {
		dlt, err := timeSec.varint()
		if err != nil {
			return nil, err
		}
		prev += dlt
		blk.TimeNano[i] = prev
	}
	if timeSec.remaining() != 0 {
		return nil, fmt.Errorf("colf: block at offset %d: stray time bytes", bi.Off)
	}

	// Region column: dictionary then codes.
	dictN, err := regionSec.uvarint()
	if err != nil {
		return nil, err
	}
	if dictN > uint64(rows) {
		return nil, fmt.Errorf("colf: block at offset %d: dictionary of %d entries for %d rows", bi.Off, dictN, rows)
	}
	d.dict = d.dict[:0]
	for i := uint64(0); i < dictN; i++ {
		n, err := regionSec.uvarint()
		if err != nil {
			return nil, err
		}
		raw, err := regionSec.bytes(int(n))
		if err != nil {
			return nil, err
		}
		d.dict = append(d.dict, d.internString(raw))
	}
	for i := 0; i < rows; i++ {
		code, err := regionSec.uvarint()
		if err != nil {
			return nil, err
		}
		if code >= uint64(len(d.dict)) {
			return nil, fmt.Errorf("colf: block at offset %d: region code %d outside dictionary of %d", bi.Off, code, len(d.dict))
		}
		blk.Region[i] = d.dict[code]
	}
	if regionSec.remaining() != 0 {
		return nil, fmt.Errorf("colf: block at offset %d: stray region bytes", bi.Off)
	}

	// RTT column: raw bits.
	if rttSec.remaining() != rows*8 {
		return nil, fmt.Errorf("colf: block at offset %d: RTT column holds %d bytes for %d rows", bi.Off, rttSec.remaining(), rows)
	}
	for i := 0; i < rows; i++ {
		v, err := rttSec.floatBits()
		if err != nil {
			return nil, err
		}
		blk.RTT[i] = v
	}

	// Loss bitmap.
	want := (rows + 7) / 8
	bits, err := lostSec.bytes(want)
	if err != nil || lostSec.remaining() != 0 {
		return nil, fmt.Errorf("colf: block at offset %d: loss bitmap holds %d bytes, want %d", bi.Off, len(lostSec.b), want)
	}
	for i := 0; i < rows; i++ {
		blk.Lost[i] = bits[i/8]&(1<<(i%8)) != 0
	}

	return blk, nil
}

// section carves the next length-prefixed column section into its own
// cursor.
func section(c *byteCursor) (*byteCursor, error) {
	n, err := c.uvarint()
	if err != nil {
		return nil, err
	}
	raw, err := c.bytes(int(n))
	if err != nil {
		return nil, err
	}
	return &byteCursor{b: raw}, nil
}

// grow returns a slice of length n, reusing s's capacity.
func grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// internString returns a shared string for b, allocating only the
// first time a spelling is seen.
func (d *BlockDecoder) internString(b []byte) string {
	if s, ok := d.intern[string(b)]; ok {
		return s
	}
	s := string(b)
	d.intern[s] = s
	return s
}
