package colf

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"sort"
)

// Reader locates the blocks of a colf stream. Opening reads only the
// file-level index (or, when the index is missing after a crash,
// rebuilds it from the block footers); payloads stay untouched until a
// BlockDecoder asks for them.
type Reader struct {
	r      io.ReaderAt
	size   int64
	blocks []BlockInfo
}

// NewReader indexes the colf stream held by r. A zero-length stream is
// an empty dataset; anything else must start with the colf header.
func NewReader(r io.ReaderAt, size int64) (*Reader, error) {
	if size == 0 {
		return &Reader{r: r, size: 0}, nil
	}
	if size < HeaderSize {
		return nil, fmt.Errorf("colf: file of %d bytes is shorter than the header", size)
	}
	var hdr [HeaderSize]byte
	if _, err := r.ReadAt(hdr[:], 0); err != nil {
		return nil, err
	}
	if !Sniff(hdr[:]) {
		return nil, fmt.Errorf("colf: bad file header % x", hdr)
	}
	rd := &Reader{r: r, size: size}
	blocks, ok, err := loadIndex(r, size)
	if err != nil {
		return nil, err
	}
	if !ok {
		// No trailing index (interrupted run): rebuild from the block
		// footers, verifying payload CRCs along the way.
		if blocks, err = ScanBlocks(r, size, true); err != nil {
			return nil, err
		}
	}
	rd.blocks = blocks
	return rd, nil
}

// Open indexes the colf file at path. The returned closer owns the
// file handle; the Reader stays valid until it is closed.
func Open(path string) (*Reader, io.Closer, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	r, err := NewReader(f, st.Size())
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	return r, f, nil
}

// Blocks returns the stream's blocks in file order. The slice is
// shared; don't mutate it.
func (r *Reader) Blocks() []BlockInfo { return r.blocks }

// Rows returns the total row count from the zone maps.
func (r *Reader) Rows() uint64 {
	var n uint64
	for _, b := range r.blocks {
		n += uint64(b.Zone.Rows)
	}
	return n
}

// ForEachRow decodes every block in file order and calls fn per row.
func (r *Reader) ForEachRow(fn func(Row) error) error {
	dec := NewBlockDecoder()
	for _, bi := range r.blocks {
		blk, err := dec.Decode(r.r, bi)
		if err != nil {
			return err
		}
		for i := 0; i < blk.Rows(); i++ {
			if err := fn(blk.Row(i)); err != nil {
				return err
			}
		}
	}
	return nil
}

// loadIndex tries the trailing file-level index. ok=false means the
// trailer is absent (not an error: the stream may simply never have
// been finished); a present-but-corrupt index is an error.
func loadIndex(r io.ReaderAt, size int64) ([]BlockInfo, bool, error) {
	if size < HeaderSize+indexTrailerSize {
		return nil, false, nil
	}
	var trailer [indexTrailerSize]byte
	if _, err := r.ReadAt(trailer[:], size-indexTrailerSize); err != nil {
		return nil, false, err
	}
	var v2 bool
	switch {
	case string(trailer[4:]) == string(indexMagic[:]):
		v2 = true
	case string(trailer[4:]) == string(indexMagicV1[:]):
	default:
		return nil, false, nil
	}
	idxLen := int64(binary.LittleEndian.Uint32(trailer[:4]))
	idxStart := size - indexTrailerSize - idxLen
	if idxStart < HeaderSize {
		return nil, false, fmt.Errorf("colf: index of %d bytes does not fit the file", idxLen)
	}
	body := make([]byte, idxLen)
	if _, err := r.ReadAt(body, idxStart); err != nil {
		return nil, false, err
	}
	c := &byteCursor{b: body}
	count, err := c.uvarint()
	if err != nil {
		return nil, false, fmt.Errorf("colf: corrupt index: %w", err)
	}
	if count > uint64(size/8) {
		return nil, false, fmt.Errorf("colf: corrupt index: %d blocks in a %d-byte file", count, size)
	}
	blocks := make([]BlockInfo, 0, count)
	prevOff, prevEnd := int64(0), int64(HeaderSize)
	for i := uint64(0); i < count; i++ {
		offDelta, err := c.uvarint()
		if err != nil {
			return nil, false, fmt.Errorf("colf: corrupt index entry %d: %w", i, err)
		}
		length, err := c.uvarint()
		if err != nil {
			return nil, false, fmt.Errorf("colf: corrupt index entry %d: %w", i, err)
		}
		var zone Zone
		if v2 {
			// v2 length-prefixes each zone so the entry stream stays
			// parseable however the zone encoding grows.
			zLen, err := c.uvarint()
			if err != nil {
				return nil, false, fmt.Errorf("colf: corrupt index entry %d: %w", i, err)
			}
			raw, err := c.bytes(int(zLen))
			if err != nil {
				return nil, false, fmt.Errorf("colf: corrupt index entry %d: %w", i, err)
			}
			if zone, err = decodeZoneFull(&byteCursor{b: raw}); err != nil {
				return nil, false, fmt.Errorf("colf: corrupt index entry %d: %w", i, err)
			}
		} else if zone, err = decodeZone(c); err != nil {
			return nil, false, fmt.Errorf("colf: corrupt index entry %d: %w", i, err)
		}
		bi := BlockInfo{Off: prevOff + int64(offDelta), Len: int64(length), Zone: zone}
		if bi.Off != prevEnd || bi.Len < 12 || bi.Off+bi.Len > idxStart {
			return nil, false, fmt.Errorf("colf: index entry %d places block at [%d,%d) outside [%d,%d)",
				i, bi.Off, bi.Off+bi.Len, prevEnd, idxStart)
		}
		prevOff, prevEnd = bi.Off, bi.Off+bi.Len
		blocks = append(blocks, bi)
	}
	if c.remaining() != 0 {
		return nil, false, fmt.Errorf("colf: %d trailing bytes after index entries", c.remaining())
	}
	if prevEnd != idxStart {
		return nil, false, fmt.Errorf("colf: index covers bytes up to %d, data ends at %d", prevEnd, idxStart)
	}
	return blocks, true, nil
}

// ScanBlocks walks the block chain from the header to end, parsing
// each block's footer (and, when verify is set, checking its CRC
// against the payload). It fails on a torn or truncated block — the
// state a crash leaves behind, which checkpoint-based resume repairs
// by truncating to a known block boundary.
func ScanBlocks(r io.ReaderAt, end int64, verify bool) ([]BlockInfo, error) {
	return ScanBlocksFrom(r, HeaderSize, end, verify)
}

// ScanBlocksFrom walks the block chain over [start, end). start must be
// a block boundary (or HeaderSize); the walk fails on the first torn or
// misaligned block, so a bogus start cannot yield a plausible-looking
// block list.
func ScanBlocksFrom(r io.ReaderAt, start, end int64, verify bool) ([]BlockInfo, error) {
	var blocks []BlockInfo
	var head [8]byte
	off := start
	for off < end {
		if end-off < 8 {
			return nil, fmt.Errorf("colf: %d stray bytes at offset %d (torn block?)", end-off, off)
		}
		if _, err := r.ReadAt(head[:], off); err != nil {
			return nil, err
		}
		bodyLen := int64(binary.LittleEndian.Uint32(head[0:4]))
		payloadLen := int64(binary.LittleEndian.Uint32(head[4:8]))
		if bodyLen > maxBlockBytes || payloadLen+4 > bodyLen {
			return nil, fmt.Errorf("colf: implausible block lengths (%d, %d) at offset %d", bodyLen, payloadLen, off)
		}
		if off+8+bodyLen > end {
			return nil, fmt.Errorf("colf: block at offset %d runs past byte %d (torn block?)", off, end)
		}
		footer := make([]byte, bodyLen-payloadLen)
		if _, err := r.ReadAt(footer, off+8+payloadLen); err != nil {
			return nil, err
		}
		c := &byteCursor{b: footer[:len(footer)-4]}
		zone, err := decodeZoneFull(c)
		if err != nil {
			return nil, fmt.Errorf("colf: block at offset %d: %w", off, err)
		}
		if verify {
			payload := make([]byte, payloadLen)
			if _, err := r.ReadAt(payload, off+8); err != nil {
				return nil, err
			}
			crc := crc32.ChecksumIEEE(head[4:8])
			crc = crc32.Update(crc, crc32.IEEETable, payload)
			crc = crc32.Update(crc, crc32.IEEETable, footer[:len(footer)-4])
			if got := binary.LittleEndian.Uint32(footer[len(footer)-4:]); got != crc {
				return nil, fmt.Errorf("colf: block at offset %d fails CRC (%08x != %08x)", off, got, crc)
			}
		}
		blocks = append(blocks, BlockInfo{Off: off, Len: 8 + bodyLen, Zone: zone})
		off += 8 + bodyLen
	}
	return blocks, nil
}

// ScanBlocksAvailable walks the block chain over [start, end) like
// ScanBlocksFrom, but tolerates a torn tail: a trailing partial block —
// the state a live appender's in-flight write leaves visible — ends the
// walk cleanly instead of failing it. It returns the complete blocks
// and the boundary they cover (the stable data end a reader may safely
// consume). Corruption strictly inside the stable range (a bad CRC, an
// implausible length) is still an error: sequential appends only ever
// leave a *prefix* of a block behind, never a complete-looking block
// with wrong bytes.
func ScanBlocksAvailable(r io.ReaderAt, start, end int64, verify bool) ([]BlockInfo, int64, error) {
	var blocks []BlockInfo
	var head [8]byte
	off := start
	for off < end {
		if end-off < 8 {
			break // torn head: the appender has not finished this block
		}
		if _, err := r.ReadAt(head[:], off); err != nil {
			return nil, 0, err
		}
		bodyLen := int64(binary.LittleEndian.Uint32(head[0:4]))
		payloadLen := int64(binary.LittleEndian.Uint32(head[4:8]))
		if bodyLen > maxBlockBytes || payloadLen+4 > bodyLen {
			return nil, 0, fmt.Errorf("colf: implausible block lengths (%d, %d) at offset %d", bodyLen, payloadLen, off)
		}
		if off+8+bodyLen > end {
			break // torn body: only a prefix of the block is on disk yet
		}
		footer := make([]byte, bodyLen-payloadLen)
		if _, err := r.ReadAt(footer, off+8+payloadLen); err != nil {
			return nil, 0, err
		}
		c := &byteCursor{b: footer[:len(footer)-4]}
		zone, err := decodeZoneFull(c)
		if err != nil {
			return nil, 0, fmt.Errorf("colf: block at offset %d: %w", off, err)
		}
		if verify {
			payload := make([]byte, payloadLen)
			if _, err := r.ReadAt(payload, off+8); err != nil {
				return nil, 0, err
			}
			crc := crc32.ChecksumIEEE(head[4:8])
			crc = crc32.Update(crc, crc32.IEEETable, payload)
			crc = crc32.Update(crc, crc32.IEEETable, footer[:len(footer)-4])
			if got := binary.LittleEndian.Uint32(footer[len(footer)-4:]); got != crc {
				return nil, 0, fmt.Errorf("colf: block at offset %d fails CRC (%08x != %08x)", off, got, crc)
			}
		}
		blocks = append(blocks, BlockInfo{Off: off, Len: 8 + bodyLen, Zone: zone})
		off += 8 + bodyLen
	}
	return blocks, off, nil
}

// BlocksTo walks the block chain up to exactly offset, verifying CRCs,
// and returns the blocks of that prefix. It errors when offset is not
// a block boundary — the caller is about to truncate there, and
// cutting a block in half would corrupt the stream.
func BlocksTo(r io.ReaderAt, offset int64) ([]BlockInfo, error) {
	if offset < HeaderSize {
		return nil, fmt.Errorf("colf: offset %d is inside the file header", offset)
	}
	blocks, err := ScanBlocks(r, offset, true)
	if err != nil {
		return nil, fmt.Errorf("colf: offset %d is not a block boundary: %w", offset, err)
	}
	return blocks, nil
}

// DeltaBlocks returns the blocks at or after boundary in the colf
// stream held by r — the suffix a snapshot-resumed scan must decode.
// boundary must be a block boundary previously covered by a snapshot;
// anything else (mid-block offset, boundary past the data) is an error
// so a stale snapshot can never be silently applied. With a trailing
// index present the suffix costs one binary search; without one (an
// unfinished stream) the suffix alone is re-walked with CRC checks.
func DeltaBlocks(r io.ReaderAt, size, boundary int64) ([]BlockInfo, error) {
	if boundary < HeaderSize {
		return nil, fmt.Errorf("colf: resume boundary %d is inside the file header", boundary)
	}
	blocks, ok, err := loadIndex(r, size)
	if err != nil {
		return nil, err
	}
	if !ok {
		dataEnd := size
		if boundary == dataEnd {
			return nil, nil
		}
		if boundary > dataEnd {
			return nil, fmt.Errorf("colf: resume boundary %d past data end %d", boundary, dataEnd)
		}
		return ScanBlocksFrom(r, boundary, dataEnd, true)
	}
	dataEnd := int64(HeaderSize)
	if len(blocks) > 0 {
		last := blocks[len(blocks)-1]
		dataEnd = last.Off + last.Len
	}
	if boundary == dataEnd {
		return nil, nil
	}
	i := sort.Search(len(blocks), func(i int) bool { return blocks[i].Off >= boundary })
	if i == len(blocks) || blocks[i].Off != boundary {
		return nil, fmt.Errorf("colf: resume boundary %d is not a block boundary", boundary)
	}
	return blocks[i:], nil
}

// DeltaBlocksAvailable returns the complete blocks at or after boundary
// plus the stable data end they reach — the live-store twin of
// DeltaBlocks. A sealed store (trailing index present) resolves from
// the index like DeltaBlocks; a live store (no index yet — the appender
// only writes it at close) walks the suffix with CRC checks, treating a
// torn tail as the clean end of available data rather than an error.
// The serving layer polls this to advance its in-memory state while the
// campaign is still writing.
func DeltaBlocksAvailable(r io.ReaderAt, size, boundary int64) ([]BlockInfo, int64, error) {
	if boundary < HeaderSize {
		return nil, 0, fmt.Errorf("colf: resume boundary %d is inside the file header", boundary)
	}
	if boundary > size {
		return nil, 0, fmt.Errorf("colf: resume boundary %d past file size %d", boundary, size)
	}
	blocks, ok, err := loadIndex(r, size)
	if err != nil {
		return nil, 0, err
	}
	if !ok {
		return ScanBlocksAvailable(r, boundary, size, true)
	}
	dataEnd := int64(HeaderSize)
	if len(blocks) > 0 {
		last := blocks[len(blocks)-1]
		dataEnd = last.Off + last.Len
	}
	if boundary == dataEnd {
		return nil, dataEnd, nil
	}
	if boundary > dataEnd {
		return nil, 0, fmt.Errorf("colf: resume boundary %d past data end %d", boundary, dataEnd)
	}
	i := sort.Search(len(blocks), func(i int) bool { return blocks[i].Off >= boundary })
	if i == len(blocks) || blocks[i].Off != boundary {
		return nil, 0, fmt.Errorf("colf: resume boundary %d is not a block boundary", boundary)
	}
	return blocks[i:], dataEnd, nil
}

// Block holds one decoded block in columnar form. Slices are owned by
// the BlockDecoder and overwritten by its next Decode.
//
// The region column is exposed two ways: Region[i] as an interned
// string (filled only when ColRegionStrings was requested), and
// RegionID[i] as the block-local dictionary code with Dict as the
// dictionary — Region[i] == Dict[RegionID[i]]. Batch kernels resolve
// region → accumulator once per dictionary code instead of per row.
// Dict entries are interned across blocks, so equal spellings are
// pointer-equal between blocks of one decoder.
type Block struct {
	Probe    []int
	TimeNano []int64  // empty when decoded without ColTime
	Region   []string // empty when decoded without ColRegionStrings
	RTT      []float64
	Lost     []bool
	RegionID []uint32
	Dict     []string
	// Zone is the block's footer zone, CRC-verified together with the
	// payload — unlike an index zone, it is integrity-protected, so
	// consumers may trust its bounds against the decoded columns.
	Zone Zone
}

// Rows returns the decoded row count.
func (b *Block) Rows() int { return len(b.Probe) }

// EdgeRows returns the row range [lo, hi) of b whose timestamps fall
// inside the half-open window [sinceNano, untilNano) — the rows a
// window predicate admits from a partially covered edge block. The
// block must have been decoded with ColTime. Campaign writers emit
// rows in time order, so the time column is normally non-decreasing;
// EdgeRows verifies that (one compare per row, far cheaper than the
// per-row filter fold it replaces) and then locates both boundaries by
// binary search, so the caller folds only in-window rows with no
// per-row time test. When the column is not monotone, exact is false
// and the full range returns: the caller must filter per row, which
// keeps the semantics identical to MatchRow on every row.
func (b *Block) EdgeRows(sinceNano, untilNano int64) (lo, hi int, exact bool) {
	n := len(b.TimeNano)
	for i := 1; i < n; i++ {
		if b.TimeNano[i] < b.TimeNano[i-1] {
			return 0, n, false
		}
	}
	lo = sort.Search(n, func(i int) bool { return b.TimeNano[i] >= sinceNano })
	hi = sort.Search(n, func(i int) bool { return b.TimeNano[i] >= untilNano })
	return lo, hi, true
}

// Row assembles row i.
func (b *Block) Row(i int) Row {
	return Row{Probe: b.Probe[i], TimeNano: b.TimeNano[i], Region: b.Region[i], RTT: b.RTT[i], Lost: b.Lost[i]}
}

// BlockDecoder decodes blocks, reusing its buffers and interning
// region strings across blocks so a long scan allocates almost
// nothing per block. Not safe for concurrent use; scanners give each
// worker its own.
type BlockDecoder struct {
	buf    []byte
	blk    Block
	dict   []string
	intern map[string]string
}

// NewBlockDecoder returns a ready decoder.
func NewBlockDecoder() *BlockDecoder {
	return &BlockDecoder{intern: make(map[string]string)}
}

// ColumnSet selects which optional columns DecodeCols materializes.
// Probe, RTT, and loss always decode (they are cheap and the
// validation sweep needs them); timestamps, region codes, and per-row
// region strings are the expensive fills a batch kernel can skip.
type ColumnSet uint8

const (
	// ColTime decodes the timestamp column into Block.TimeNano.
	ColTime ColumnSet = 1 << iota
	// ColRegionStrings fills Block.Region with interned strings
	// (implies decoding the dictionary and codes).
	ColRegionStrings
	// ColRegionIDs decodes the region dictionary and per-row codes
	// into Block.Dict and Block.RegionID without the per-row string
	// fill — the form the batch kernels consume.
	ColRegionIDs

	// ColAll is the full row-assembly set Decode uses.
	ColAll = ColTime | ColRegionStrings | ColRegionIDs
)

// Decode reads and decodes the block described by bi. The returned
// Block is valid until the next Decode call.
func (d *BlockDecoder) Decode(r io.ReaderAt, bi BlockInfo) (*Block, error) {
	return d.DecodeCols(r, bi, ColAll)
}

// DecodeCols decodes the block described by bi, materializing only the
// requested optional columns. Skipped columns come back empty (length
// zero, so stale data can never be read by mistake); their bytes are
// still CRC-verified but not parsed. When r is a *Mapping the block
// decodes zero-copy out of the page cache — everything a Block retains
// is copied or interned, so nothing aliases the map afterwards.
func (d *BlockDecoder) DecodeCols(r io.ReaderAt, bi BlockInfo, cols ColumnSet) (*Block, error) {
	if bi.Len < 12 || bi.Len > maxBlockBytes {
		return nil, fmt.Errorf("colf: implausible block length %d at offset %d", bi.Len, bi.Off)
	}
	var buf []byte
	if m, ok := r.(*Mapping); ok {
		b, err := m.Slice(bi.Off, bi.Len)
		if err != nil {
			return nil, err
		}
		buf = b
	} else {
		if cap(d.buf) < int(bi.Len) {
			d.buf = make([]byte, bi.Len)
		}
		buf = d.buf[:bi.Len]
		if _, err := r.ReadAt(buf, bi.Off); err != nil {
			return nil, err
		}
	}
	bodyLen := int64(binary.LittleEndian.Uint32(buf[0:4]))
	payloadLen := int64(binary.LittleEndian.Uint32(buf[4:8]))
	if 8+bodyLen != bi.Len || payloadLen+4 > bodyLen {
		return nil, fmt.Errorf("colf: block at offset %d: lengths (%d, %d) disagree with index length %d",
			bi.Off, bodyLen, payloadLen, bi.Len)
	}
	payload := buf[8 : 8+payloadLen]
	footer := buf[8+payloadLen : 8+bodyLen-4]
	crc := crc32.ChecksumIEEE(buf[4:8])
	crc = crc32.Update(crc, crc32.IEEETable, payload)
	crc = crc32.Update(crc, crc32.IEEETable, footer)
	if got := binary.LittleEndian.Uint32(buf[8+bodyLen-4:]); got != crc {
		return nil, fmt.Errorf("colf: block at offset %d fails CRC (%08x != %08x)", bi.Off, got, crc)
	}
	fc := &byteCursor{b: footer}
	zone, err := decodeZoneFull(fc)
	if err != nil {
		return nil, fmt.Errorf("colf: block at offset %d: corrupt footer: %w", bi.Off, err)
	}
	rows := zone.Rows
	if rows > int(payloadLen)+1 {
		// Every row costs at least one payload byte in some column.
		return nil, fmt.Errorf("colf: block at offset %d claims %d rows in %d payload bytes", bi.Off, rows, payloadLen)
	}
	d.blk.Zone = zone

	c := &byteCursor{b: payload}
	var secs [5][]byte
	for i := range secs {
		if secs[i], err = sectionBytes(c); err != nil {
			return nil, err
		}
	}
	if c.remaining() != 0 {
		return nil, fmt.Errorf("colf: block at offset %d: %d stray payload bytes", bi.Off, c.remaining())
	}
	probeSec, timeSec, regionSec, rttSec, lostSec := secs[0], secs[1], secs[2], secs[3], secs[4]

	blk := &d.blk
	blk.Probe = grow(blk.Probe, rows)
	blk.RTT = grow(blk.RTT, rows)
	blk.Lost = grow(blk.Lost, rows)

	// Probe and time columns: delta chains restarting at zero, decoded
	// by the batch kernels.
	if err := decodeDeltaVarints(probeSec, blk.Probe); err != nil {
		return nil, fmt.Errorf("colf: block at offset %d: probe column: %w", bi.Off, err)
	}
	if cols&ColTime != 0 {
		blk.TimeNano = grow(blk.TimeNano, rows)
		if err := decodeDeltaVarints(timeSec, blk.TimeNano); err != nil {
			return nil, fmt.Errorf("colf: block at offset %d: time column: %w", bi.Off, err)
		}
	} else {
		blk.TimeNano = blk.TimeNano[:0]
	}

	// Region column: dictionary then codes (skipped wholesale when the
	// pass set needs neither IDs nor strings — the bytes stay inside
	// the CRC above but are never parsed).
	if cols&(ColRegionIDs|ColRegionStrings) != 0 {
		blk.RegionID = grow(blk.RegionID, rows)
		rc := &byteCursor{b: regionSec}
		dictN, err := rc.uvarint()
		if err != nil {
			return nil, err
		}
		if dictN > uint64(rows) {
			return nil, fmt.Errorf("colf: block at offset %d: dictionary of %d entries for %d rows", bi.Off, dictN, rows)
		}
		d.dict = d.dict[:0]
		for i := uint64(0); i < dictN; i++ {
			n, err := rc.uvarint()
			if err != nil {
				return nil, err
			}
			raw, err := rc.bytes(int(n))
			if err != nil {
				return nil, err
			}
			d.dict = append(d.dict, d.internString(raw))
		}
		blk.Dict = d.dict
		if err := decodeRegionCodes(regionSec[rc.off:], blk.RegionID, len(d.dict)); err != nil {
			return nil, fmt.Errorf("colf: block at offset %d: %w", bi.Off, err)
		}
	} else {
		blk.RegionID = blk.RegionID[:0]
		blk.Dict = nil
	}
	if cols&ColRegionStrings != 0 {
		blk.Region = grow(blk.Region, rows)
		for i, code := range blk.RegionID {
			blk.Region[i] = d.dict[code]
		}
	} else {
		blk.Region = blk.Region[:0]
	}

	// RTT column: raw bits.
	if len(rttSec) != rows*8 {
		return nil, fmt.Errorf("colf: block at offset %d: RTT column holds %d bytes for %d rows", bi.Off, len(rttSec), rows)
	}
	for i := 0; i < rows; i++ {
		blk.RTT[i] = math.Float64frombits(binary.LittleEndian.Uint64(rttSec[8*i:]))
	}

	// Loss bitmap: expand full bytes eight flags at a time (the stores
	// are independent, so they pipeline), then the ragged tail.
	want := (rows + 7) / 8
	if len(lostSec) != want {
		return nil, fmt.Errorf("colf: block at offset %d: loss bitmap holds %d bytes, want %d", bi.Off, len(lostSec), want)
	}
	lost := blk.Lost
	n8 := rows &^ 7
	for i := 0; i < n8; i += 8 {
		m := lostSec[i>>3]
		lost[i] = m&0x01 != 0
		lost[i+1] = m&0x02 != 0
		lost[i+2] = m&0x04 != 0
		lost[i+3] = m&0x08 != 0
		lost[i+4] = m&0x10 != 0
		lost[i+5] = m&0x20 != 0
		lost[i+6] = m&0x40 != 0
		lost[i+7] = m&0x80 != 0
	}
	for i := n8; i < rows; i++ {
		lost[i] = lostSec[i/8]&(1<<(i%8)) != 0
	}

	return blk, nil
}

// sectionBytes carves the next length-prefixed column section out of
// the payload cursor.
func sectionBytes(c *byteCursor) ([]byte, error) {
	n, err := c.uvarint()
	if err != nil {
		return nil, err
	}
	return c.bytes(int(n))
}

// grow returns a slice of length n, reusing s's capacity.
func grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// internString returns a shared string for b, allocating only the
// first time a spelling is seen.
func (d *BlockDecoder) internString(b []byte) string {
	if s, ok := d.intern[string(b)]; ok {
		return s
	}
	s := string(b)
	d.intern[s] = s
	return s
}
