package colf

import (
	"encoding/binary"
	"fmt"
	"math/bits"
)

// This file holds the batch column kernels: whole-column decode loops
// that replace the per-value byteCursor walk on the scan hot path.
// Acceptance must mirror encoding/binary exactly — including
// non-canonical and overlong varint forms — so the batch kernels and
// the generic cursor reject byte-identical inputs.

// deltaKeep[k] keeps the low k+1 bytes of a 64-bit window — the bytes
// of a varint whose stop byte is at index k. A table lookup instead of
// a computed shift keeps the compiler from emitting shift-clamping
// sequences in the hot loop.
var deltaKeep = [8]uint64{
	0xFF, 0xFFFF, 0xFFFFFF, 0xFFFFFFFF,
	0xFFFFFFFFFF, 0xFFFFFFFFFFFF, 0xFFFFFFFFFFFFFF, 0xFFFFFFFFFFFFFFFF,
}

// decodeDeltaVarints decodes a column of zigzag-varint deltas (chain
// restarting at zero) into dst, consuming sec exactly.
func decodeDeltaVarints[T ~int | ~int64](sec []byte, dst []T) error {
	j := 0
	i := 0
	prev := int64(0)
	// Window loop: one 64-bit load yields the stop-bit mask for every
	// varint ending inside it — typically 4..6 values per load on delta
	// columns. The per-value critical chain collapses to clearing the
	// lowest stop bit; the 7-bit-group extraction (a fixed shift-fold
	// cascade: pairs → quads → halves, whose masks also clear the
	// continuation bits) runs off the chain, so mixed 1/2-byte delta
	// streams cost neither mispredictions nor serialized loads.
	for i < len(dst) && j+8 <= len(sec) {
		x := binary.LittleEndian.Uint64(sec[j:])
		stops := ^x & 0x8080808080808080
		if stops == 0 {
			// 8+ continuation bytes: a rare giant delta; delegate so the
			// 10-byte and overflow rules match binary.Uvarint bit for bit.
			v, n := binary.Uvarint(sec[j:])
			if n <= 0 {
				return fmt.Errorf("truncated or overlong varint at byte %d", j)
			}
			prev += int64(v>>1) ^ -int64(v&1)
			dst[i] = T(prev)
			i++
			j += n
			continue
		}
		if stops == 0x8080808080808080 && len(dst)-i >= 8 {
			// All eight window bytes are single-byte varints — the
			// dominant shape on delta columns (same-round time deltas are
			// zero, probe deltas are ±1). Eight values per load with no
			// boundary chain and no fold cascade: each byte zigzag-decodes
			// independently, leaving only the prefix-sum adds serialized.
			v := x & 0x7f
			prev += int64(v>>1) ^ -int64(v&1)
			dst[i] = T(prev)
			v = x >> 8 & 0x7f
			prev += int64(v>>1) ^ -int64(v&1)
			dst[i+1] = T(prev)
			v = x >> 16 & 0x7f
			prev += int64(v>>1) ^ -int64(v&1)
			dst[i+2] = T(prev)
			v = x >> 24 & 0x7f
			prev += int64(v>>1) ^ -int64(v&1)
			dst[i+3] = T(prev)
			v = x >> 32 & 0x7f
			prev += int64(v>>1) ^ -int64(v&1)
			dst[i+4] = T(prev)
			v = x >> 40 & 0x7f
			prev += int64(v>>1) ^ -int64(v&1)
			dst[i+5] = T(prev)
			v = x >> 48 & 0x7f
			prev += int64(v>>1) ^ -int64(v&1)
			dst[i+6] = T(prev)
			v = x >> 56
			prev += int64(v>>1) ^ -int64(v&1)
			dst[i+7] = T(prev)
			i += 8
			j += 8
			continue
		}
		if stops == 0x8000800080008000 && len(dst)-i >= 4 {
			// Four two-byte varints — the shape of probe columns whose
			// deltas land in [64, 8191]. Each value is a fixed two-group
			// splice; no boundary chain.
			uv := x&0x7f | (x>>8&0x7f)<<7
			prev += int64(uv>>1) ^ -int64(uv&1)
			dst[i] = T(prev)
			uv = x>>16&0x7f | (x>>24&0x7f)<<7
			prev += int64(uv>>1) ^ -int64(uv&1)
			dst[i+1] = T(prev)
			uv = x>>32&0x7f | (x>>40&0x7f)<<7
			prev += int64(uv>>1) ^ -int64(uv&1)
			dst[i+2] = T(prev)
			uv = x>>48&0x7f | (x>>56)<<7
			prev += int64(uv>>1) ^ -int64(uv&1)
			dst[i+3] = T(prev)
			i += 4
			j += 8
			continue
		}
		if stops == 0x0000008000000000 && len(dst)-i >= 2 && j+16 <= len(sec) {
			// A five-byte varint followed by another — the shape of time
			// columns at second-scale cadence (delta ~1e9 ns zigzags to 35
			// bits). Splice both from two loads instead of paying the
			// boundary chain once per window for a single value.
			y := binary.LittleEndian.Uint64(sec[j+8:])
			if ^y&0x8080 == 0x8000 {
				uv := x&0x7f | (x>>8&0x7f)<<7 | (x>>16&0x7f)<<14 | (x>>24&0x7f)<<21 | (x>>32&0x7f)<<28
				prev += int64(uv>>1) ^ -int64(uv&1)
				dst[i] = T(prev)
				uv = x>>40&0x7f | (x>>48&0x7f)<<7 | (x>>56&0x7f)<<14 | (y&0x7f)<<21 | (y>>8&0x7f)<<28
				prev += int64(uv>>1) ^ -int64(uv&1)
				dst[i+1] = T(prev)
				i += 2
				j += 10
				continue
			}
		}
		start := 0
		n := bits.OnesCount64(stops) // values ending in this window
		if n > len(dst)-i {
			n = len(dst) - i
		}
		if cont := x & 0x8080808080808080; cont&(cont<<8) == 0 {
			// No two adjacent continuation bytes: every varint in this
			// window is 1 or 2 bytes (the shape of mixed small-delta
			// columns that miss the uniform fast paths above). The
			// boundary chain is unchanged, but extraction collapses from
			// the three-step fold cascade to a single two-group splice.
			for ; n >= 2; n -= 2 {
				end0 := bits.TrailingZeros64(stops) >> 3
				stops &= stops - 1
				end1 := bits.TrailingZeros64(stops) >> 3
				stops &= stops - 1
				w0 := x >> (uint(start*8) & 63) & deltaKeep[(end0-start)&7]
				uv0 := w0&0x7f | w0>>1&0x3F80
				w1 := x >> (uint((end0+1)*8) & 63) & deltaKeep[(end1-end0-1)&7]
				uv1 := w1&0x7f | w1>>1&0x3F80
				prev += int64(uv0>>1) ^ -int64(uv0&1)
				dst[i] = T(prev)
				prev += int64(uv1>>1) ^ -int64(uv1&1)
				dst[i+1] = T(prev)
				i += 2
				start = end1 + 1
			}
			if n > 0 {
				end := bits.TrailingZeros64(stops) >> 3
				w := x >> (uint(start*8) & 63) & deltaKeep[(end-start)&7]
				uv := w&0x7f | w>>1&0x3F80
				prev += int64(uv>>1) ^ -int64(uv&1)
				dst[i] = T(prev)
				i++
				start = end + 1
			}
			j += start
			continue
		}
		// Two values per iteration: the boundary chain (trailing-zeros,
		// clear-lowest-bit) is the loop's critical path, and pairing lets
		// the two extractions overlap.
		for ; n >= 2; n -= 2 {
			end0 := bits.TrailingZeros64(stops) >> 3 // stop byte index, 0..7
			stops &= stops - 1
			end1 := bits.TrailingZeros64(stops) >> 3
			stops &= stops - 1
			w0 := x >> (uint(start*8) & 63)
			w0 &= deltaKeep[(end0-start)&7] // keep bytes start..end0
			w0 = w0&0x007F007F007F007F | w0>>1&0x3F803F803F803F80
			w0 = w0&0x00003FFF00003FFF | w0>>2&0x0FFFC0000FFFC000
			uv0 := w0&0x000000000FFFFFFF | w0>>4&0x00FFFFFFF0000000
			w1 := x >> (uint((end0+1)*8) & 63)
			w1 &= deltaKeep[(end1-end0-1)&7]
			w1 = w1&0x007F007F007F007F | w1>>1&0x3F803F803F803F80
			w1 = w1&0x00003FFF00003FFF | w1>>2&0x0FFFC0000FFFC000
			uv1 := w1&0x000000000FFFFFFF | w1>>4&0x00FFFFFFF0000000
			prev += int64(uv0>>1) ^ -int64(uv0&1)
			dst[i] = T(prev)
			prev += int64(uv1>>1) ^ -int64(uv1&1)
			dst[i+1] = T(prev)
			i += 2
			start = end1 + 1
		}
		if n > 0 {
			end := bits.TrailingZeros64(stops) >> 3
			stops &= stops - 1
			w := x >> (uint(start*8) & 63)
			w &= deltaKeep[(end-start)&7]
			w = w&0x007F007F007F007F | w>>1&0x3F803F803F803F80
			w = w&0x00003FFF00003FFF | w>>2&0x0FFFC0000FFFC000
			uv := w&0x000000000FFFFFFF | w>>4&0x00FFFFFFF0000000
			prev += int64(uv>>1) ^ -int64(uv&1)
			dst[i] = T(prev)
			i++
			start = end + 1
		}
		j += start // a varint cut off by the window edge re-reads next pass
	}
	// Section tail: too close to the end for a full window.
	for i < len(dst) {
		v, n := binary.Uvarint(sec[j:])
		if n <= 0 {
			return fmt.Errorf("truncated varint at byte %d", j)
		}
		prev += int64(v>>1) ^ -int64(v&1)
		dst[i] = T(prev)
		i++
		j += n
	}
	if j != len(sec) {
		return fmt.Errorf("%d stray bytes after %d values", len(sec)-j, len(dst))
	}
	return nil
}

// decodeRegionCodes decodes the per-row dictionary codes, checking
// each against the dictionary size.
func decodeRegionCodes(sec []byte, dst []uint32, dictN int) error {
	j := 0
	i := 0
	// Fast path: real dictionaries are small, so codes are almost always
	// one byte — unpack eight per 64-bit window. Any continuation bit or
	// out-of-range code drops to the exact scalar path below, which owns
	// error semantics. The range check is one byte-parallel add: with
	// every byte < 0x80, byte b trips bit 7 of b+(0x80-lim) exactly when
	// b >= lim, and no byte sum can carry. Dictionaries of 128+ entries
	// make addend zero, which rejects nothing — correctly, since any
	// one-byte code is then in range.
	var addend uint64
	if dictN < 128 {
		addend = (128 - uint64(dictN)) * 0x0101010101010101
	}
	for i+8 <= len(dst) && j+8 <= len(sec) {
		x := binary.LittleEndian.Uint64(sec[j:])
		if x&0x8080808080808080 != 0 || (x+addend)&0x8080808080808080 != 0 {
			break
		}
		dst[i], dst[i+1], dst[i+2], dst[i+3] = uint32(x)&0x7f, uint32(x>>8)&0x7f, uint32(x>>16)&0x7f, uint32(x>>24)&0x7f
		dst[i+4], dst[i+5], dst[i+6], dst[i+7] = uint32(x>>32)&0x7f, uint32(x>>40)&0x7f, uint32(x>>48)&0x7f, uint32(x>>56)
		i += 8
		j += 8
	}
	for ; i < len(dst); i++ {
		var code uint64
		if j < len(sec) && sec[j] < 0x80 {
			code = uint64(sec[j])
			j++
		} else {
			v, n := binary.Uvarint(sec[j:])
			if n <= 0 {
				return fmt.Errorf("truncated region code at byte %d", j)
			}
			code, j = v, j+n
		}
		if code >= uint64(dictN) {
			return fmt.Errorf("region code %d outside dictionary of %d", code, dictN)
		}
		dst[i] = uint32(code)
	}
	if j != len(sec) {
		return fmt.Errorf("%d stray region bytes", len(sec)-j)
	}
	return nil
}
