package colf

import (
	"bytes"
	"fmt"
	"math"
	"reflect"
	"strings"
	"testing"
	"time"
)

// genRows builds a deterministic row stream shaped like real campaign
// data: round-major timestamps, repeating regions, occasional losses.
func genRows(n int) []Row {
	regions := []string{"Amazon/eu-north-1", "Google/us-west2", "Azure/eastus", "Amazon/ap-south-1"}
	rows := make([]Row, n)
	base := time.Date(2019, 7, 1, 0, 0, 0, 0, time.UTC).UnixNano()
	for i := range rows {
		rows[i] = Row{
			Probe:    1 + (i*37)%523,
			TimeNano: base + int64(i/100)*int64(3*time.Hour),
			Region:   regions[i%len(regions)],
			RTT:      1 + math.Mod(float64(i)*17.3331, 290),
			Lost:     i%19 == 0,
		}
		if rows[i].Lost {
			rows[i].RTT = 0
		}
	}
	return rows
}

// encodeRows writes rows with the given block size and returns the
// full file bytes plus the data-only length (before the index).
func encodeRows(t testing.TB, rows []Row, blockRows int) (file []byte, dataLen int64) {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.SetBlockRows(blockRows)
	for _, r := range rows {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	dataLen = int64(w.BytesWritten())
	if err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), dataLen
}

func sameRows(a, b []Row) error {
	if len(a) != len(b) {
		return fmt.Errorf("row counts %d vs %d", len(a), len(b))
	}
	for i := range a {
		x, y := a[i], b[i]
		if x.Probe != y.Probe || x.TimeNano != y.TimeNano || x.Region != y.Region ||
			math.Float64bits(x.RTT) != math.Float64bits(y.RTT) || x.Lost != y.Lost {
			return fmt.Errorf("row %d: %+v vs %+v", i, x, y)
		}
	}
	return nil
}

func readAll(t testing.TB, file []byte) []Row {
	t.Helper()
	r, err := NewReader(bytes.NewReader(file), int64(len(file)))
	if err != nil {
		t.Fatal(err)
	}
	var got []Row
	if err := r.ForEachRow(func(row Row) error { got = append(got, row); return nil }); err != nil {
		t.Fatal(err)
	}
	return got
}

func TestRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 1000} {
		rows := genRows(n)
		file, _ := encodeRows(t, rows, 64)
		if err := sameRows(rows, readAll(t, file)); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestRoundTripViaRebuild(t *testing.T) {
	rows := genRows(777)
	file, dataLen := encodeRows(t, rows, 100)
	// Chop off the index: the reader must rebuild from block footers.
	if err := sameRows(rows, readAll(t, file[:dataLen])); err != nil {
		t.Fatal(err)
	}
}

func TestSniff(t *testing.T) {
	file, _ := encodeRows(t, genRows(10), 8)
	if !Sniff(file) {
		t.Error("colf file not sniffed")
	}
	for _, bad := range [][]byte{nil, []byte("COLF"), []byte(`{"probe":1}`), []byte("XOLF\x01\x00\x00\n....")} {
		if Sniff(bad) {
			t.Errorf("false sniff on %q", bad)
		}
	}
}

func TestZoneMaps(t *testing.T) {
	rows := genRows(500)
	file, _ := encodeRows(t, rows, 128)
	r, err := NewReader(bytes.NewReader(file), int64(len(file)))
	if err != nil {
		t.Fatal(err)
	}
	blocks := r.Blocks()
	if len(blocks) != 4 { // ceil(500/128)
		t.Fatalf("%d blocks, want 4", len(blocks))
	}
	if r.Rows() != 500 {
		t.Fatalf("Rows() = %d", r.Rows())
	}
	i := 0
	for bi, b := range blocks {
		z := Zone{}
		for k := 0; k < b.Zone.Rows; k++ {
			z.observe(rows[i])
			i++
		}
		got := b.Zone
		// The per-region aggregates must tile the block exactly.
		if len(got.Regions) == 0 {
			t.Fatalf("block %d carries no region aggregates", bi)
		}
		var sumRows, sumDelivered int
		var sumRTT float64
		for _, rz := range got.Regions {
			sumRows += rz.Rows
			sumDelivered += rz.Delivered
			sumRTT += rz.RTTSum
		}
		if sumRows != got.Rows || sumDelivered != got.Delivered {
			t.Errorf("block %d region aggregates cover %d rows/%d delivered, zone has %d/%d",
				bi, sumRows, sumDelivered, got.Rows, got.Delivered)
		}
		if math.Abs(sumRTT-got.RTTSum) > 1e-6*math.Abs(got.RTTSum) {
			t.Errorf("block %d region RTT sums %.9g, zone RTTSum %.9g", bi, sumRTT, got.RTTSum)
		}
		got.Regions = nil
		if !reflect.DeepEqual(z, got) {
			t.Errorf("block %d zone %+v, recomputed %+v", bi, got, z)
		}
	}
}

func TestPredicateZoneAndRow(t *testing.T) {
	rows := genRows(600)
	file, _ := encodeRows(t, rows, 64)
	r, err := NewReader(bytes.NewReader(file), int64(len(file)))
	if err != nil {
		t.Fatal(err)
	}
	base := time.Date(2019, 7, 1, 0, 0, 0, 0, time.UTC)
	preds := []*Predicate{
		nil,
		{},
		{Since: base.Add(6 * time.Hour), Until: base.Add(9 * time.Hour)},
		{Until: base.Add(3 * time.Hour)},
		{MinProbe: 100, MaxProbe: 120},
		{RegionPrefix: "Amazon/"},
		{RegionPrefix: "Nowhere/"},
		{Since: base.Add(100 * 24 * time.Hour)},
	}
	for pi, p := range preds {
		// Ground truth: row-by-row filtering over the raw rows.
		var want int
		for _, row := range rows {
			if p.MatchRow(row.Probe, row.TimeNano, row.Region) {
				want++
			}
		}
		// Zone-based skipping plus row filtering must agree, and skipped
		// blocks must contain no matching rows.
		var got, skippedBlocks int
		dec := NewBlockDecoder()
		for _, bi := range r.Blocks() {
			blk, err := dec.Decode(bytes.NewReader(file), bi)
			if err != nil {
				t.Fatal(err)
			}
			if !p.MatchZone(bi.Zone) {
				skippedBlocks++
				for k := 0; k < blk.Rows(); k++ {
					row := blk.Row(k)
					if p.MatchRow(row.Probe, row.TimeNano, row.Region) {
						t.Fatalf("pred %d skipped a block containing matching row %+v", pi, row)
					}
				}
				continue
			}
			for k := 0; k < blk.Rows(); k++ {
				row := blk.Row(k)
				if p.MatchRow(row.Probe, row.TimeNano, row.Region) {
					got++
				}
			}
		}
		if got != want {
			t.Errorf("pred %d: %d rows via zones, %d via full filter", pi, got, want)
		}
		if p != nil && pi >= 6 && skippedBlocks != len(r.Blocks()) {
			t.Errorf("pred %d: impossible predicate skipped only %d/%d blocks", pi, skippedBlocks, len(r.Blocks()))
		}
	}
}

func TestPredicateEmpty(t *testing.T) {
	var p *Predicate
	if !p.Empty() || !(&Predicate{}).Empty() {
		t.Error("nil/zero predicate not Empty")
	}
	if (&Predicate{RegionPrefix: "x"}).Empty() || (&Predicate{MinProbe: 1}).Empty() {
		t.Error("constrained predicate reported Empty")
	}
}

func TestCorruptionDetected(t *testing.T) {
	rows := genRows(300)
	file, dataLen := encodeRows(t, rows, 64)
	// Flip every 97th byte of the data region (past the header) one at a
	// time; each must surface an error somewhere in the read path.
	for off := int64(HeaderSize); off < dataLen; off += 97 {
		mut := append([]byte(nil), file...)
		mut[off] ^= 0x41
		if err := decodeErr(mut); err == nil {
			t.Fatalf("corruption at byte %d went unnoticed", off)
		}
	}
}

// decodeErr reads the whole stream and returns the first error, trying
// both the indexed and the rebuild path.
func decodeErr(file []byte) error {
	r, err := NewReader(bytes.NewReader(file), int64(len(file)))
	if err != nil {
		return err
	}
	return r.ForEachRow(func(Row) error { return nil })
}

func TestTornTailRejected(t *testing.T) {
	rows := genRows(200)
	_, dataLen := encodeRows(t, rows, 64)
	file, _ := encodeRows(t, rows, 64)
	// A crash mid-block-write leaves a partial block and no index.
	torn := file[:dataLen-5]
	if _, err := NewReader(bytes.NewReader(torn), int64(len(torn))); err == nil {
		t.Fatal("torn tail accepted")
	}
	if !strings.Contains(fmt.Sprint(decodeErr(torn)), "torn") {
		t.Errorf("torn-tail error not descriptive: %v", decodeErr(torn))
	}
}

func TestBlocksToBoundaries(t *testing.T) {
	rows := genRows(256)
	file, dataLen := encodeRows(t, rows, 64)
	r := bytes.NewReader(file)
	blocks, err := BlocksTo(r, dataLen)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 4 {
		t.Fatalf("%d blocks, want 4", len(blocks))
	}
	// Every block boundary is a valid resume point.
	for i, b := range blocks {
		prefix, err := BlocksTo(r, b.Off)
		if err != nil {
			t.Fatalf("boundary %d: %v", b.Off, err)
		}
		if len(prefix) != i {
			t.Fatalf("boundary %d: %d blocks, want %d", b.Off, len(prefix), i)
		}
	}
	// Mid-block offsets are rejected.
	if _, err := BlocksTo(r, blocks[1].Off+3); err == nil {
		t.Error("mid-block offset accepted")
	}
	if _, err := BlocksTo(r, 3); err == nil {
		t.Error("mid-header offset accepted")
	}
}

func TestWriterResumeAppends(t *testing.T) {
	rows := genRows(500)
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.SetBlockRows(64)
	for _, r := range rows[:300] {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	boundary := int64(w.BytesWritten())
	// Simulate a crash with garbage after the boundary, then resume:
	// truncate and append the remaining rows with a new writer.
	file := append(append([]byte(nil), buf.Bytes()...), "GARBAGE"...)
	file = file[:boundary]
	existing, err := BlocksTo(bytes.NewReader(file), boundary)
	if err != nil {
		t.Fatal(err)
	}
	var tail bytes.Buffer
	w2 := NewWriterAt(&tail, boundary, existing)
	for _, r := range rows[300:] {
		if err := w2.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w2.Finish(); err != nil {
		t.Fatal(err)
	}
	full := append(file, tail.Bytes()...)
	if err := sameRows(rows, readAll(t, full)); err != nil {
		t.Fatal(err)
	}
	if w2.Count() != 200 {
		t.Errorf("resumed writer Count = %d", w2.Count())
	}
}

func TestFlushMidBlockKeepsRoundTrip(t *testing.T) {
	rows := genRows(150)
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.SetBlockRows(64)
	for i, r := range rows {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
		if i%37 == 0 { // checkpoint-style partial-block flushes
			if err := w.Flush(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := sameRows(rows, readAll(t, buf.Bytes())); err != nil {
		t.Fatal(err)
	}
}

func TestWriteAfterFinishRejected(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := w.Write(Row{Probe: 1, Region: "r", RTT: 1}); err == nil {
		t.Error("write after Finish accepted")
	}
	// An empty finished file still opens as an empty dataset.
	r, err := NewReader(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Blocks()) != 0 || r.Rows() != 0 {
		t.Errorf("empty file has %d blocks, %d rows", len(r.Blocks()), r.Rows())
	}
}

func TestLosslessFloatAndExtremeRows(t *testing.T) {
	rows := []Row{
		{Probe: 1, TimeNano: 0, Region: "", RTT: math.Pi, Lost: false},
		{Probe: 1 << 40, TimeNano: -5, Region: strings.Repeat("長い地域/", 40), RTT: math.SmallestNonzeroFloat64},
		{Probe: -3, TimeNano: math.MaxInt64, Region: "r", RTT: math.Inf(1), Lost: true},
		{Probe: 0, TimeNano: math.MinInt64, Region: "r", RTT: math.NaN(), Lost: true},
		{Probe: 2, TimeNano: 1, Region: "\x00\xff", RTT: -0.0},
	}
	file, _ := encodeRows(t, rows, 2)
	if err := sameRows(rows, readAll(t, file)); err != nil {
		t.Fatal(err)
	}
}

func TestSizeAdvantage(t *testing.T) {
	rows := genRows(20000)
	file, _ := encodeRows(t, rows, DefaultBlockRows)
	perRow := float64(len(file)) / float64(len(rows))
	if perRow > 25 {
		t.Errorf("encoded size %.1f bytes/row, want well under a JSONL line (~90)", perRow)
	}
}
