package colf

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Writer appends rows to a colf stream. Rows buffer in columnar form
// until a block fills (or Flush is called), then the block encodes and
// writes out in one piece. Writes are unbuffered beyond the current
// block — a flushed prefix is always a valid block sequence, which is
// what makes block-aligned checkpoint offsets work.
//
// Lifecycle: Write*, optionally Flush at durability points, then
// Finish exactly once to append the file-level block index. A Writer
// is not safe for concurrent use.
type Writer struct {
	w          io.Writer
	base       int64  // file offset where this writer started appending
	written    uint64 // bytes this writer pushed to w (header included)
	n          uint64 // rows accepted
	blockRows  int
	headerDone bool
	finished   bool

	// Column builders for the open block.
	probes      []int64
	times       []int64
	regionCodes []uint32
	rtts        []float64
	lost        []bool
	dict        map[string]uint32
	dictEntries []string
	regionAggs  []regionAgg // parallel to dictEntries
	zone        Zone

	blocks []BlockInfo

	// Encode scratch, reused across blocks.
	payload, sec, zoneBuf []byte
}

// regionAgg accumulates one dictionary entry's zone pre-aggregate
// while its block is open. The dictionary lookup Write already does
// doubles as the accumulator lookup, so the aggregates cost no extra
// hashing on the write path.
type regionAgg struct {
	firstRow  int
	rows      int
	delivered int
	rttSum    float64
}

// NewWriter starts a fresh colf stream on w; the file header is
// written ahead of the first block.
func NewWriter(w io.Writer) *Writer { return NewWriterAt(w, 0, nil) }

// NewWriterAt continues an existing stream: w must be positioned at
// byte offset base of the file (a block boundary), and existing lists
// the blocks already on disk before base so Finish can index the whole
// file. base 0 with no existing blocks is a fresh stream.
func NewWriterAt(w io.Writer, base int64, existing []BlockInfo) *Writer {
	return &Writer{
		w:          w,
		base:       base,
		blockRows:  DefaultBlockRows,
		headerDone: base > 0,
		dict:       make(map[string]uint32),
		blocks:     append([]BlockInfo(nil), existing...),
	}
}

// SetBlockRows overrides the rows-per-block target. It only takes
// effect before the first row is written; later calls are ignored.
func (w *Writer) SetBlockRows(n int) {
	if n > 0 && w.n == 0 && w.zone.Rows == 0 {
		w.blockRows = n
	}
}

// Write buffers one row, flushing a block when it fills.
func (w *Writer) Write(r Row) error {
	if w.finished {
		return errors.New("colf: write after Finish")
	}
	code, ok := w.dict[r.Region]
	if !ok {
		code = uint32(len(w.dictEntries))
		w.dict[r.Region] = code
		w.dictEntries = append(w.dictEntries, r.Region)
		w.regionAggs = append(w.regionAggs, regionAgg{firstRow: w.zone.Rows})
	}
	agg := &w.regionAggs[code]
	agg.rows++
	if !r.Lost {
		agg.delivered++
		agg.rttSum += r.RTT
	}
	w.probes = append(w.probes, int64(r.Probe))
	w.times = append(w.times, r.TimeNano)
	w.regionCodes = append(w.regionCodes, code)
	w.rtts = append(w.rtts, r.RTT)
	w.lost = append(w.lost, r.Lost)
	w.zone.observe(r)
	w.n++
	if w.zone.Rows >= w.blockRows {
		return w.flushBlock()
	}
	return nil
}

// Flush encodes and writes the open partial block, if any. After a
// successful Flush, BytesWritten is a block boundary — the offsets
// checkpoints are made of.
func (w *Writer) Flush() error {
	if w.finished {
		return nil
	}
	return w.flushBlock()
}

// Finish flushes the open block and appends the file-level block
// index. The Writer accepts no rows afterwards.
func (w *Writer) Finish() error {
	if w.finished {
		return nil
	}
	if err := w.flushBlock(); err != nil {
		return err
	}
	if err := w.ensureHeader(); err != nil {
		return err
	}
	w.finished = true
	// v2 index: zones are length-prefixed so the entry stream stays
	// parseable as the zone encoding grows (v1 concatenated them, which
	// made any zone extension ambiguous mid-stream).
	idx := w.payload[:0]
	idx = appendUvarint(idx, uint64(len(w.blocks)))
	prevOff := int64(0)
	for _, b := range w.blocks {
		idx = appendUvarint(idx, uint64(b.Off-prevOff))
		idx = appendUvarint(idx, uint64(b.Len))
		zb := appendZone(w.zoneBuf[:0], b.Zone)
		idx = appendUvarint(idx, uint64(len(zb)))
		idx = append(idx, zb...)
		prevOff = b.Off
	}
	var trailer [indexTrailerSize]byte
	binary.LittleEndian.PutUint32(trailer[:4], uint32(len(idx)))
	copy(trailer[4:], indexMagic[:])
	return w.writeAll(idx, trailer[:])
}

// Count returns the number of rows accepted.
func (w *Writer) Count() uint64 { return w.n }

// BytesWritten returns the bytes this writer pushed to the underlying
// writer: the header (fresh streams) plus every flushed block, and the
// index once Finish ran. Buffered rows of the open block don't count —
// they aren't on disk yet.
func (w *Writer) BytesWritten() uint64 { return w.written }

// Blocks returns the blocks written so far (including any pre-existing
// ones handed to NewWriterAt). The slice is shared; don't mutate it.
func (w *Writer) Blocks() []BlockInfo { return w.blocks }

func (w *Writer) ensureHeader() error {
	if w.headerDone {
		return nil
	}
	w.headerDone = true
	return w.writeAll(header[:])
}

// flushBlock encodes the buffered columns as one block and writes it.
func (w *Writer) flushBlock() error {
	if w.zone.Rows == 0 {
		return nil
	}
	if err := w.ensureHeader(); err != nil {
		return err
	}
	payload := w.payload[:0]

	// Probe IDs: varint deltas, chain restarting at 0 each block.
	sec := w.sec[:0]
	prev := int64(0)
	for _, p := range w.probes {
		sec = appendVarint(sec, p-prev)
		prev = p
	}
	payload = appendSection(payload, sec)

	// Timestamps: varint deltas of Unix nanos, same restart rule.
	sec = sec[:0]
	prev = 0
	for _, t := range w.times {
		sec = appendVarint(sec, t-prev)
		prev = t
	}
	payload = appendSection(payload, sec)

	// Regions: first-appearance dictionary, then one code per row.
	sec = sec[:0]
	sec = appendUvarint(sec, uint64(len(w.dictEntries)))
	for _, e := range w.dictEntries {
		sec = appendUvarint(sec, uint64(len(e)))
		sec = append(sec, e...)
	}
	for _, c := range w.regionCodes {
		sec = appendUvarint(sec, uint64(c))
	}
	payload = appendSection(payload, sec)

	// RTTs: raw IEEE-754 bits so round-trips are exact.
	sec = sec[:0]
	for _, v := range w.rtts {
		sec = appendFloatBits(sec, v)
	}
	payload = appendSection(payload, sec)

	// Loss flags: bitmap, LSB-first within each byte.
	sec = sec[:0]
	sec = append(sec, make([]byte, (len(w.lost)+7)/8)...)
	for i, l := range w.lost {
		if l {
			sec[i/8] |= 1 << (i % 8)
		}
	}
	payload = appendSection(payload, sec)

	// Per-region pre-aggregates ride in the zone footer unless the
	// dictionary outgrew the cap (then consumers fall back to row decode
	// for per-region questions; the block-level RTTSum still applies).
	if len(w.dictEntries) <= maxZoneRegions {
		regions := make([]RegionZone, len(w.dictEntries))
		for i, agg := range w.regionAggs {
			regions[i] = RegionZone{
				Region:    w.dictEntries[i],
				FirstRow:  agg.firstRow,
				Rows:      agg.rows,
				Delivered: agg.delivered,
				RTTSum:    agg.rttSum,
			}
		}
		w.zone.Regions = regions
	}

	zoneBytes := appendZone(w.zoneBuf[:0], w.zone)
	bodyLen := len(payload) + len(zoneBytes) + 4
	if bodyLen > maxBlockBytes {
		return fmt.Errorf("colf: block of %d bytes exceeds format cap", bodyLen)
	}
	var head [8]byte
	binary.LittleEndian.PutUint32(head[0:4], uint32(bodyLen))
	binary.LittleEndian.PutUint32(head[4:8], uint32(len(payload)))
	// The CRC covers the payload-length field, the payload, and the zone
	// footer: any single corrupted byte past the outer length field is
	// detected at decode time.
	crc := crc32.ChecksumIEEE(head[4:8])
	crc = crc32.Update(crc, crc32.IEEETable, payload)
	crc = crc32.Update(crc, crc32.IEEETable, zoneBytes)
	var crcBuf [4]byte
	binary.LittleEndian.PutUint32(crcBuf[:], crc)

	off := w.base + int64(w.written)
	if err := w.writeAll(head[:], payload, zoneBytes, crcBuf[:]); err != nil {
		return err
	}
	w.blocks = append(w.blocks, BlockInfo{Off: off, Len: int64(8 + bodyLen), Zone: w.zone})

	// Reset the open block; keep capacity and scratch.
	w.payload, w.sec = payload[:0], sec[:0]
	w.probes = w.probes[:0]
	w.times = w.times[:0]
	w.regionCodes = w.regionCodes[:0]
	w.rtts = w.rtts[:0]
	w.lost = w.lost[:0]
	w.dictEntries = w.dictEntries[:0]
	w.regionAggs = w.regionAggs[:0]
	clear(w.dict)
	w.zone = Zone{}
	return nil
}

// appendSection appends one length-prefixed column section.
func appendSection(dst, sec []byte) []byte {
	dst = appendUvarint(dst, uint64(len(sec)))
	return append(dst, sec...)
}

// writeAll pushes the given byte slices to the underlying writer,
// crediting written bytes as they land.
func (w *Writer) writeAll(bufs ...[]byte) error {
	for _, b := range bufs {
		n, err := w.w.Write(b)
		w.written += uint64(n)
		if err != nil {
			return err
		}
	}
	return nil
}
