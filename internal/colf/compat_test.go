package colf

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"reflect"
	"testing"
	"unsafe"
)

// encodeRowsV1 hand-encodes rows exactly as the format v1 writer did:
// version-1 header byte, v1-only zone footers (no aggregate
// extension), and a v1 index whose zones are concatenated without
// length prefixes. It pins backward compatibility: the v2 rev is
// additive, and stores written before it must keep reading.
func encodeRowsV1(t testing.TB, rows []Row, blockRows int) []byte {
	t.Helper()
	out := []byte{'C', 'O', 'L', 'F', 1, 0, 0, '\n'}
	var blocks []BlockInfo
	for start := 0; start < len(rows); start += blockRows {
		end := start + blockRows
		if end > len(rows) {
			end = len(rows)
		}
		chunk := rows[start:end]

		var payload, sec []byte
		prev := int64(0)
		for _, r := range chunk {
			sec = appendVarint(sec, int64(r.Probe)-prev)
			prev = int64(r.Probe)
		}
		payload = appendSection(payload, sec)
		sec, prev = sec[:0], 0
		for _, r := range chunk {
			sec = appendVarint(sec, r.TimeNano-prev)
			prev = r.TimeNano
		}
		payload = appendSection(payload, sec)
		sec = sec[:0]
		dict := map[string]uint64{}
		var entries []string
		for _, r := range chunk {
			if _, ok := dict[r.Region]; !ok {
				dict[r.Region] = uint64(len(entries))
				entries = append(entries, r.Region)
			}
		}
		sec = appendUvarint(sec, uint64(len(entries)))
		for _, e := range entries {
			sec = appendUvarint(sec, uint64(len(e)))
			sec = append(sec, e...)
		}
		for _, r := range chunk {
			sec = appendUvarint(sec, dict[r.Region])
		}
		payload = appendSection(payload, sec)
		sec = sec[:0]
		for _, r := range chunk {
			sec = appendFloatBits(sec, r.RTT)
		}
		payload = appendSection(payload, sec)
		sec = sec[:0]
		sec = append(sec, make([]byte, (len(chunk)+7)/8)...)
		for i, r := range chunk {
			if r.Lost {
				sec[i/8] |= 1 << (i % 8)
			}
		}
		payload = appendSection(payload, sec)

		var zone Zone
		for _, r := range chunk {
			zone.observe(r)
		}
		// Strip the v2 aggregates: appendZone then emits the exact v1
		// footer encoding.
		zone.HasAgg, zone.RTTSum, zone.Regions = false, 0, nil
		zoneBytes := appendZone(nil, zone)

		bodyLen := len(payload) + len(zoneBytes) + 4
		var head [8]byte
		binary.LittleEndian.PutUint32(head[0:4], uint32(bodyLen))
		binary.LittleEndian.PutUint32(head[4:8], uint32(len(payload)))
		crc := crc32.ChecksumIEEE(head[4:8])
		crc = crc32.Update(crc, crc32.IEEETable, payload)
		crc = crc32.Update(crc, crc32.IEEETable, zoneBytes)
		off := int64(len(out))
		out = append(out, head[:]...)
		out = append(out, payload...)
		out = append(out, zoneBytes...)
		out = binary.LittleEndian.AppendUint32(out, crc)
		blocks = append(blocks, BlockInfo{Off: off, Len: int64(8 + bodyLen), Zone: zone})
	}

	// v1 index: zones concatenated, v1 trailer magic.
	idx := appendUvarint(nil, uint64(len(blocks)))
	prevOff := int64(0)
	for _, b := range blocks {
		idx = appendUvarint(idx, uint64(b.Off-prevOff))
		idx = appendUvarint(idx, uint64(b.Len))
		idx = appendZone(idx, b.Zone)
		prevOff = b.Off
	}
	out = append(out, idx...)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(idx)))
	out = append(out, indexMagicV1[:]...)
	return out
}

func TestV1StoreStillReads(t *testing.T) {
	rows := genRows(700)
	v1 := encodeRowsV1(t, rows, 128)
	if !Sniff(v1) {
		t.Fatal("v1 header not sniffed")
	}

	// Indexed read path.
	r, err := NewReader(bytes.NewReader(v1), int64(len(v1)))
	if err != nil {
		t.Fatal(err)
	}
	if err := sameRows(rows, readAll(t, v1)); err != nil {
		t.Fatal(err)
	}
	for i, b := range r.Blocks() {
		if b.Zone.HasAgg || b.Zone.Regions != nil {
			t.Fatalf("v1 block %d decoded with invented aggregates: %+v", i, b.Zone)
		}
	}

	// Footer-rebuild path (index chopped off).
	idxLen := int64(binary.LittleEndian.Uint32(v1[len(v1)-indexTrailerSize:]))
	chopped := v1[:int64(len(v1))-indexTrailerSize-idxLen]
	if err := sameRows(rows, readAll(t, chopped)); err != nil {
		t.Fatalf("footer rebuild: %v", err)
	}

	// Corruption in a v1 block must still surface.
	mut := append([]byte(nil), v1...)
	mut[HeaderSize+40] ^= 0x41
	if err := decodeErr(mut); err == nil {
		t.Fatal("corruption in v1 block went unnoticed")
	}
}

func TestV1StoreAppendsMixedBlocks(t *testing.T) {
	rows := genRows(500)
	v1 := encodeRowsV1(t, rows[:300], 64)
	idxLen := int64(binary.LittleEndian.Uint32(v1[len(v1)-indexTrailerSize:]))
	data := v1[:int64(len(v1))-indexTrailerSize-idxLen]

	// Resume-append onto the v1 data region with the v2 writer: the file
	// ends up with mixed v1/v2 blocks under a v2 index.
	existing, err := BlocksTo(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	var tail bytes.Buffer
	w := NewWriterAt(&tail, int64(len(data)), existing)
	w.SetBlockRows(64)
	for _, r := range rows[300:] {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	full := append(append([]byte(nil), data...), tail.Bytes()...)
	if err := sameRows(rows, readAll(t, full)); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(bytes.NewReader(full), int64(len(full)))
	if err != nil {
		t.Fatal(err)
	}
	blocks := r.Blocks()
	if blocks[0].Zone.HasAgg {
		t.Error("v1 prefix block gained aggregates through the index round-trip")
	}
	last := blocks[len(blocks)-1].Zone
	if !last.HasAgg || len(last.Regions) == 0 {
		t.Errorf("appended v2 block lost its aggregates: %+v", last)
	}
}

// TestZoneV2IndexRoundTrip pins that the index and footer paths decode
// identical zones, aggregates included.
func TestZoneV2IndexRoundTrip(t *testing.T) {
	rows := genRows(400)
	file, _ := encodeRows(t, rows, 100)
	r, err := NewReader(bytes.NewReader(file), int64(len(file)))
	if err != nil {
		t.Fatal(err)
	}
	scanned, err := ScanBlocks(bytes.NewReader(file), fileDataEnd(t, file), true)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r.Blocks(), scanned) {
		t.Fatalf("index blocks %+v\nfooter blocks %+v", r.Blocks(), scanned)
	}
	for i, b := range r.Blocks() {
		z := b.Zone
		if !z.HasAgg || len(z.Regions) == 0 {
			t.Fatalf("block %d missing aggregates: %+v", i, z)
		}
		var sum float64
		var delivered int
		for _, rz := range z.Regions {
			sum += rz.RTTSum
			delivered += rz.Delivered
		}
		if delivered != z.Delivered {
			t.Errorf("block %d: region delivered %d, zone %d", i, delivered, z.Delivered)
		}
	}
}

func fileDataEnd(t testing.TB, file []byte) int64 {
	t.Helper()
	idxLen := int64(binary.LittleEndian.Uint32(file[len(file)-indexTrailerSize:]))
	return int64(len(file)) - indexTrailerSize - idxLen
}

// TestRegionInterningAcrossBlocks scans a store whose dictionary
// changes from block to block and pins that one decoder hands back
// canonical strings: equal spellings are pointer-equal across blocks,
// and the dictionary view agrees with the string column.
func TestRegionInterningAcrossBlocks(t *testing.T) {
	regionSets := [][]string{
		{"Amazon/eu-north-1", "Google/us-west2"},
		{"Google/us-west2", "Azure/eastus"},       // overlaps block 0
		{"Azure/eastus", "Amazon/eu-north-1"},     // dict order flipped vs earlier blocks
		{"Cloud/x", "Cloud/y", "Cloud/z"},         // all-new entries
		{"Amazon/eu-north-1", "Cloud/z", "new/r"}, // mix of old and new
	}
	var rows []Row
	for b, set := range regionSets {
		for i := 0; i < 16; i++ {
			rows = append(rows, Row{
				Probe:    1 + i,
				TimeNano: int64(b*16+i) * 1e9,
				Region:   set[i%len(set)],
				RTT:      float64(10 + i),
			})
		}
	}
	file, _ := encodeRows(t, rows, 16)
	r, err := NewReader(bytes.NewReader(file), int64(len(file)))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Blocks()) != len(regionSets) {
		t.Fatalf("%d blocks, want %d", len(r.Blocks()), len(regionSets))
	}
	canonical := map[string]*byte{} // spelling -> data pointer of first sighting
	dec := NewBlockDecoder()
	for bi, info := range r.Blocks() {
		blk, err := dec.Decode(bytes.NewReader(file), info)
		if err != nil {
			t.Fatal(err)
		}
		if len(blk.Dict) != len(regionSets[bi]) {
			t.Fatalf("block %d dictionary %v, want %v", bi, blk.Dict, regionSets[bi])
		}
		for i := range blk.Region {
			if got, want := blk.Region[i], blk.Dict[blk.RegionID[i]]; got != want {
				t.Fatalf("block %d row %d: Region %q != Dict[RegionID] %q", bi, i, got, want)
			}
		}
		for _, s := range blk.Dict {
			ptr := unsafe.StringData(s)
			if first, ok := canonical[s]; !ok {
				canonical[s] = ptr
			} else if first != ptr {
				t.Errorf("block %d: %q re-allocated instead of interned", bi, s)
			}
		}
	}
	// Every spelling ever written must have been seen.
	for _, set := range regionSets {
		for _, s := range set {
			if _, ok := canonical[s]; !ok {
				t.Errorf("region %q never surfaced in a dictionary", s)
			}
		}
	}
}

// TestDecodeColsSkipsColumns pins the projection contract: skipped
// columns come back empty, kept columns match a full decode.
func TestDecodeColsSkipsColumns(t *testing.T) {
	rows := genRows(200)
	file, _ := encodeRows(t, rows, 64)
	r, err := NewReader(bytes.NewReader(file), int64(len(file)))
	if err != nil {
		t.Fatal(err)
	}
	full := NewBlockDecoder()
	ids := NewBlockDecoder()
	proj := NewBlockDecoder()
	for _, bi := range r.Blocks() {
		want, err := full.Decode(bytes.NewReader(file), bi)
		if err != nil {
			t.Fatal(err)
		}
		// ColRegionIDs: dictionary and codes decode, no string fill.
		got, err := ids.DecodeCols(bytes.NewReader(file), bi, ColRegionIDs)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.TimeNano) != 0 || len(got.Region) != 0 {
			t.Fatalf("skipped columns materialized: %d times, %d regions", len(got.TimeNano), len(got.Region))
		}
		if !reflect.DeepEqual(got.Probe, want.Probe) || !reflect.DeepEqual(got.RTT, want.RTT) ||
			!reflect.DeepEqual(got.Lost, want.Lost) || !reflect.DeepEqual(got.RegionID, want.RegionID) ||
			!reflect.DeepEqual(got.Dict, want.Dict) {
			t.Fatal("projected decode disagrees with full decode")
		}
		// The empty set: only the always-decoded validation columns.
		bare, err := proj.DecodeCols(bytes.NewReader(file), bi, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(bare.TimeNano) != 0 || len(bare.Region) != 0 || len(bare.RegionID) != 0 || bare.Dict != nil {
			t.Fatalf("empty column set materialized optional columns: %d times, %d regions, %d ids, dict %v",
				len(bare.TimeNano), len(bare.Region), len(bare.RegionID), bare.Dict)
		}
		if !reflect.DeepEqual(bare.Probe, want.Probe) || !reflect.DeepEqual(bare.RTT, want.RTT) ||
			!reflect.DeepEqual(bare.Lost, want.Lost) {
			t.Fatal("bare decode disagrees with full decode")
		}
	}
}
