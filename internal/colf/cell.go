package colf

import (
	"bytes"
	"errors"
)

// This file is the block handoff codec: a standalone colf stream (file
// header followed by sealed blocks, no trailing index) used to ship row
// batches between processes. The cluster's worker agents encode each
// (shard, round) cell with EncodeRows and upload the bytes; the
// coordinator decodes with DecodeRows, which re-verifies every block
// CRC, so a corrupted or torn upload can never reach the merged
// dataset.

// EncodeRows encodes rows as a self-contained colf stream. Zero rows
// encode as a bare header, which DecodeRows accepts back as zero rows.
func EncodeRows(rows []Row) ([]byte, error) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, r := range rows {
		if err := w.Write(r); err != nil {
			return nil, err
		}
	}
	if err := w.Flush(); err != nil {
		return nil, err
	}
	if err := w.ensureHeader(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeRows decodes a stream produced by EncodeRows, verifying each
// block's CRC. Any torn, truncated, or corrupted input is an error —
// never a silently short row slice.
func DecodeRows(b []byte) ([]Row, error) {
	if !Sniff(b) {
		return nil, errors.New("colf: row stream missing file header")
	}
	r := bytes.NewReader(b)
	blocks, err := ScanBlocks(r, int64(len(b)), true)
	if err != nil {
		return nil, err
	}
	var total int
	for _, bi := range blocks {
		total += bi.Zone.Rows
	}
	rows := make([]Row, 0, total)
	dec := NewBlockDecoder()
	for _, bi := range blocks {
		blk, err := dec.Decode(r, bi)
		if err != nil {
			return nil, err
		}
		for i := 0; i < blk.Rows(); i++ {
			rows = append(rows, blk.Row(i))
		}
	}
	return rows, nil
}
