package colf

import (
	"math/rand"
	"testing"
)

// benchDeltaSection builds a probe-like delta section: random walk with
// mixed 1/2-byte zigzag deltas, the scan benchmark's dominant shape.
func benchDeltaSection(n int) ([]byte, []int) {
	rng := rand.New(rand.NewSource(7))
	var sec []byte
	vals := make([]int, n)
	prev := int64(0)
	for i := 0; i < n; i++ {
		v := int64(1 + rng.Intn(500))
		sec = appendVarint(sec, v-prev)
		prev = v
		vals[i] = int(v)
	}
	return sec, vals
}

func BenchmarkDecodeDeltaVarints(b *testing.B) {
	const n = 8192
	sec, _ := benchDeltaSection(n)
	dst := make([]int, n)
	b.SetBytes(int64(len(sec)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := decodeDeltaVarints(sec, dst); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "vals/s")
}
