// Package colf is the binary columnar block format for campaign
// datasets (samples.bin). Samples are grouped into fixed-size blocks
// (DefaultBlockRows rows); inside a block every column is encoded
// independently — varint deltas for probe IDs and timestamps,
// dictionary codes for region addresses, raw IEEE-754 bits for RTTs so
// round-trips are lossless, and a bitmap for the loss flags. Each block
// carries a footer with its row count, a CRC32 over the encoded bytes,
// and per-column min/max zone maps; a file-level block index at the
// tail lets readers locate and skip blocks without touching their
// payloads.
//
// The format is append-friendly: blocks are self-contained (every
// delta chain restarts per block), so a writer can flush a partial
// block at a checkpoint and the resulting file prefix is a valid
// sequence of blocks. Resume truncates to a block boundary and keeps
// appending; the index is (re)written on Finish and rebuilt from block
// footers when missing.
//
// colf deliberately knows nothing about the results package: it moves
// Rows, and the dataset layer converts. That keeps the dependency
// arrow pointing one way (results -> colf) while both scan and results
// share the codec.
package colf

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
)

// Row is one decoded sample in colf's terms. TimeNano is nanoseconds
// since the Unix epoch (UTC); RTT carries the exact float64 bits the
// writer was given.
type Row struct {
	Probe    int
	TimeNano int64
	Region   string
	RTT      float64
	Lost     bool
}

// DefaultBlockRows is the target rows-per-block. ~8K rows keep blocks
// around 100 KiB encoded: big enough to amortize per-block overhead,
// small enough that zone-map skipping has useful granularity.
const DefaultBlockRows = 8192

// HeaderSize is the fixed file header length.
const HeaderSize = 8

// header is the file magic: "COLF", format version, reserved bytes.
// Version 2 (additive) grew the zone footer with pre-aggregates
// (delivered-RTT sum, per-region row ranges) and length-prefixed the
// file-level index entries; fresh streams are written at version 2, and
// readers accept both versions — every block footer self-describes its
// zone encoding, so v1 and v2 blocks mix freely in one file.
var header = [HeaderSize]byte{'C', 'O', 'L', 'F', 2, 0, 0, '\n'}

// indexMagic / indexMagicV1 trail the file-level block index; their
// presence at EOF is how readers find the index without scanning, and
// the version byte selects the index entry encoding (v1 concatenates
// zones, v2 length-prefixes them so zone growth stays additive).
var indexMagic = [8]byte{'C', 'I', 'D', 'X', 2, 0, 0, '\n'}
var indexMagicV1 = [8]byte{'C', 'I', 'D', 'X', 1, 0, 0, '\n'}

// indexTrailerSize is the fixed tail after the index body: a u32
// little-endian body length plus the index magic.
const indexTrailerSize = 4 + 8

// maxBlockBytes bounds a single encoded block body. Real blocks are
// ~100 KiB; the cap exists so a corrupted length field cannot drive a
// reader into a multi-gigabyte allocation.
const maxBlockBytes = 1 << 28

// Sniff reports whether prefix begins with a colf file header of any
// supported format version. Eight bytes are enough; shorter prefixes
// never match.
func Sniff(prefix []byte) bool {
	if len(prefix) < HeaderSize || !bytes.Equal(prefix[:4], header[:4]) {
		return false
	}
	v := prefix[4]
	return (v == 1 || v == 2) && prefix[5] == 0 && prefix[6] == 0 && prefix[7] == '\n'
}

// BlockInfo locates one block and carries its zone map.
type BlockInfo struct {
	// Off is the file offset of the block's length header.
	Off int64
	// Len is the full encoded block length, length fields included.
	Len int64
	// Zone is the block's per-column min/max summary.
	Zone Zone
}

// appendUvarint / appendVarint are thin wrappers so call sites read as
// the format spec does.
func appendUvarint(b []byte, v uint64) []byte { return binary.AppendUvarint(b, v) }
func appendVarint(b []byte, v int64) []byte   { return binary.AppendVarint(b, v) }

// appendFloatBits appends the raw little-endian IEEE-754 bits.
func appendFloatBits(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

// byteCursor is a bounds-checked forward reader over an encoded
// region; every decode path goes through it so corrupt inputs surface
// as errors instead of panics.
type byteCursor struct {
	b   []byte
	off int
}

func (c *byteCursor) remaining() int { return len(c.b) - c.off }

func (c *byteCursor) uvarint() (uint64, error) {
	v, n := binary.Uvarint(c.b[c.off:])
	if n <= 0 {
		return 0, fmt.Errorf("colf: truncated uvarint at byte %d", c.off)
	}
	c.off += n
	return v, nil
}

func (c *byteCursor) varint() (int64, error) {
	v, n := binary.Varint(c.b[c.off:])
	if n <= 0 {
		return 0, fmt.Errorf("colf: truncated varint at byte %d", c.off)
	}
	c.off += n
	return v, nil
}

func (c *byteCursor) floatBits() (float64, error) {
	if c.remaining() < 8 {
		return 0, fmt.Errorf("colf: truncated float at byte %d", c.off)
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(c.b[c.off:]))
	c.off += 8
	return v, nil
}

func (c *byteCursor) bytes(n int) ([]byte, error) {
	if n < 0 || c.remaining() < n {
		return nil, fmt.Errorf("colf: truncated field of %d bytes at byte %d", n, c.off)
	}
	b := c.b[c.off : c.off+n]
	c.off += n
	return b, nil
}
