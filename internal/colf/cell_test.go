package colf

import (
	"fmt"
	"testing"
	"time"
)

// cellRows fabricates n distinct rows.
func cellRows(n int) []Row {
	base := time.Date(2020, 3, 1, 0, 0, 0, 0, time.UTC).UnixNano()
	rows := make([]Row, n)
	for i := range rows {
		rows[i] = Row{
			Probe:    i + 1,
			TimeNano: base + int64(i)*int64(time.Second),
			Region:   fmt.Sprintf("aws/region-%d", i%7),
			RTT:      float64(10 + i%300),
			Lost:     i%11 == 0,
		}
	}
	return rows
}

// TestEncodeDecodeRowsRoundTrip checks the block handoff codec
// round-trips rows exactly, across sizes that span multiple blocks.
func TestEncodeDecodeRowsRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 3, DefaultBlockRows - 1, DefaultBlockRows, DefaultBlockRows + 1, 2*DefaultBlockRows + 17} {
		b, err := EncodeRows(cellRows(n))
		if err != nil {
			t.Fatalf("n=%d: encode: %v", n, err)
		}
		got, err := DecodeRows(b)
		if err != nil {
			t.Fatalf("n=%d: decode: %v", n, err)
		}
		want := cellRows(n)
		if len(got) != len(want) {
			t.Fatalf("n=%d: decoded %d rows", n, len(got))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("n=%d: row %d diverges: %+v vs %+v", n, i, got[i], want[i])
			}
		}
	}
}

// TestDecodeRowsRejectsCorruption flips one payload byte and expects a
// CRC failure — a corrupted cell must never decode to short data.
func TestDecodeRowsRejectsCorruption(t *testing.T) {
	b, err := EncodeRows(cellRows(100))
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0xff
	if _, err := DecodeRows(b); err == nil {
		t.Fatal("corrupted stream decoded without error")
	}
}

// TestDecodeRowsRejectsGarbage checks non-colf bytes are refused at the
// header sniff.
func TestDecodeRowsRejectsGarbage(t *testing.T) {
	if _, err := DecodeRows([]byte("not a colf stream at all")); err == nil {
		t.Fatal("garbage decoded without error")
	}
	if _, err := DecodeRows(nil); err == nil {
		t.Fatal("empty input decoded without error")
	}
}
