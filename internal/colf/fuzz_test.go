package colf

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"
)

// FuzzBlockRoundTrip drives the writer with fuzz-derived rows and
// checks three properties: encode→decode is the identity (exact float
// bits included), the index and footer-rebuild paths agree, and a
// single corrupted data byte is always rejected — never a panic, never
// silently wrong rows.
func FuzzBlockRoundTrip(f *testing.F) {
	f.Add([]byte{}, uint8(4), uint16(0))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}, uint8(1), uint16(3))
	f.Add(bytes.Repeat([]byte{0xFF, 0x00, 0x7A}, 40), uint8(3), uint16(55))
	// Dictionary edge cases: region bytes that vary per row so every row
	// mints a fresh dict entry (dict size == rows, the format's cap), and
	// a corruption offset that tends to land in the dict/codes section.
	dictHeavy := make([]byte, 0, 16*13)
	for i := 0; i < 16; i++ {
		dictHeavy = append(dictHeavy, byte(i), 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 6, byte('a'+i))
	}
	f.Add(dictHeavy, uint8(7), uint16(90))
	// Empty-string regions mixed with one-byte ones: exercises dict code
	// 0 reuse and the zero-length intern path.
	f.Add(bytes.Repeat([]byte{9, 8, 7, 6, 5, 4, 3, 2, 1, 0, 0x80, 1, 'z'}, 12), uint8(2), uint16(140))
	f.Fuzz(func(t *testing.T, raw []byte, blockRows uint8, corruptAt uint16) {
		rows := rowsFromBytes(raw)
		var buf bytes.Buffer
		w := NewWriter(&buf)
		w.SetBlockRows(int(blockRows%8) + 1)
		for i, r := range rows {
			if err := w.Write(r); err != nil {
				t.Fatal(err)
			}
			if i%5 == 2 { // exercise partial-block checkpoint flushes
				if err := w.Flush(); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		dataLen := int64(w.BytesWritten())
		if err := w.Finish(); err != nil {
			t.Fatal(err)
		}
		file := buf.Bytes()

		for _, variant := range [][]byte{file, file[:dataLen]} {
			r, err := NewReader(bytes.NewReader(variant), int64(len(variant)))
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			var got []Row
			if err := r.ForEachRow(func(row Row) error { got = append(got, row); return nil }); err != nil {
				t.Fatalf("decode: %v", err)
			}
			if len(got) != len(rows) {
				t.Fatalf("%d rows decoded, %d written", len(got), len(rows))
			}
			for i := range rows {
				a, b := rows[i], got[i]
				if a.Probe != b.Probe || a.TimeNano != b.TimeNano || a.Region != b.Region ||
					math.Float64bits(a.RTT) != math.Float64bits(b.RTT) || a.Lost != b.Lost {
					t.Fatalf("row %d: wrote %+v, read %+v", i, a, b)
				}
			}
		}

		// Single-byte corruption anywhere in the CRC-protected data region
		// must surface an error (readers may also legitimately error while
		// indexing); it must never decode successfully or panic.
		if dataLen > HeaderSize {
			off := HeaderSize + int64(corruptAt)%(dataLen-HeaderSize)
			mut := append([]byte(nil), file...)
			mut[off] ^= 1 << (corruptAt % 8)
			if mut[off] == file[off] {
				mut[off] ^= 0xFF
			}
			r, err := NewReader(bytes.NewReader(mut), int64(len(mut)))
			if err == nil {
				err = r.ForEachRow(func(Row) error { return nil })
			}
			if err == nil {
				t.Fatalf("corruption at byte %d went unnoticed", off)
			}
		}
	})
}

// rowsFromBytes deterministically derives a row stream from fuzz
// bytes, 12 bytes per row, covering negative values, NaNs and
// arbitrary region bytes.
func rowsFromBytes(raw []byte) []Row {
	var rows []Row
	for len(raw) >= 12 {
		chunk := raw[:12]
		raw = raw[12:]
		regionLen := int(chunk[11] % 7)
		if regionLen > len(raw) {
			regionLen = len(raw)
		}
		rows = append(rows, Row{
			Probe:    int(int16(binary.LittleEndian.Uint16(chunk[0:2]))),
			TimeNano: int64(binary.LittleEndian.Uint32(chunk[2:6]))*1e6 - 1e12,
			Region:   string(raw[:regionLen]),
			RTT:      math.Float64frombits(binary.LittleEndian.Uint64(chunk[3:11])),
			Lost:     chunk[11]&0x80 != 0,
		})
		raw = raw[regionLen:]
	}
	return rows
}
