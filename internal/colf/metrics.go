package colf

import "repro/internal/obs"

// Metrics are the columnar reader's instruments, recorded by scanners
// that read colf datasets. A nil *Metrics disables recording.
type Metrics struct {
	// BlocksRead counts blocks decoded.
	BlocksRead *obs.Counter
	// BlocksSkipped counts blocks skipped via zone maps.
	BlocksSkipped *obs.Counter
	// BytesDecoded counts encoded block bytes actually decoded.
	BytesDecoded *obs.Counter
}

// NewMetrics registers the colf instrument set on reg.
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		BlocksRead: reg.Counter("colf_blocks_read_total",
			"Columnar blocks decoded by dataset scans."),
		BlocksSkipped: reg.Counter("colf_blocks_skipped_total",
			"Columnar blocks skipped via zone-map pushdown."),
		BytesDecoded: reg.Counter("colf_bytes_decoded_total",
			"Encoded columnar bytes decoded by dataset scans."),
	}
}

// Observe records one scan's block accounting.
func (m *Metrics) Observe(read, skipped int, bytesDecoded int64) {
	if m == nil {
		return
	}
	m.BlocksRead.Add(uint64(read))
	m.BlocksSkipped.Add(uint64(skipped))
	m.BytesDecoded.Add(uint64(bytesDecoded))
}
