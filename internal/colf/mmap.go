package colf

import (
	"errors"
	"fmt"
	"io"
	"os"
)

// ErrMmapUnsupported reports that this platform has no memory-map
// support; callers fall back to plain ReadAt on the file handle.
var ErrMmapUnsupported = errors.New("colf: mmap unsupported on this platform")

// Mapping is a read-only memory map of a colf file. It satisfies
// io.ReaderAt (copying), and the BlockDecoder recognizes it to decode
// blocks zero-copy straight out of the page cache. A Mapping is safe
// for concurrent readers. After Close no slice obtained from it may be
// touched — decoded Blocks only hold copied or interned data, so they
// survive the unmap.
type Mapping struct {
	data   []byte
	mapped bool
}

// OpenMapping maps size bytes of f read-only. On platforms without
// mmap it returns ErrMmapUnsupported and the caller keeps using f.
func OpenMapping(f *os.File, size int64) (*Mapping, error) {
	if size == 0 {
		return &Mapping{}, nil
	}
	if size < 0 || int64(int(size)) != size {
		return nil, fmt.Errorf("colf: cannot map %d bytes", size)
	}
	data, err := mmapFile(f, int(size))
	if err != nil {
		return nil, err
	}
	return &Mapping{data: data, mapped: true}, nil
}

// Bytes returns the mapped file contents. Treat as read-only.
func (m *Mapping) Bytes() []byte { return m.data }

// Size returns the mapped length in bytes.
func (m *Mapping) Size() int64 { return int64(len(m.data)) }

// Slice returns the n bytes at off without copying.
func (m *Mapping) Slice(off, n int64) ([]byte, error) {
	if off < 0 || n < 0 || off+n > int64(len(m.data)) {
		return nil, fmt.Errorf("colf: mapped read [%d,%d) outside %d-byte file", off, off+n, len(m.data))
	}
	return m.data[off : off+n : off+n], nil
}

// ReadAt implements io.ReaderAt over the mapping.
func (m *Mapping) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 || off > int64(len(m.data)) {
		return 0, fmt.Errorf("colf: mapped read at %d outside %d-byte file", off, len(m.data))
	}
	n := copy(p, m.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// Close unmaps. Safe to call more than once.
func (m *Mapping) Close() error {
	if !m.mapped {
		return nil
	}
	m.mapped = false
	data := m.data
	m.data = nil
	return munmapFile(data)
}
