package colf

import (
	"fmt"
	"time"
)

// Zone is one block's per-column summary: row count and min/max per
// column. Readers use it two ways — integrity (the decoded block must
// reproduce it) and skipping (a predicate that excludes the zone's
// ranges excludes every row of the block without decoding it).
type Zone struct {
	// Rows is the block's row count.
	Rows int
	// MinProbe/MaxProbe bound the probe ID column.
	MinProbe, MaxProbe int
	// MinTime/MaxTime bound the timestamp column, Unix nanoseconds.
	MinTime, MaxTime int64
	// Delivered counts rows with Lost == false. MinRTT/MaxRTT bound the
	// RTT column over delivered rows only and are zero when none were.
	Delivered      int
	MinRTT, MaxRTT float64
	// MinRegion/MaxRegion bound the region column lexicographically.
	MinRegion, MaxRegion string
}

// observe folds one row into the zone.
func (z *Zone) observe(r Row) {
	if z.Rows == 0 {
		z.MinProbe, z.MaxProbe = r.Probe, r.Probe
		z.MinTime, z.MaxTime = r.TimeNano, r.TimeNano
		z.MinRegion, z.MaxRegion = r.Region, r.Region
	} else {
		if r.Probe < z.MinProbe {
			z.MinProbe = r.Probe
		}
		if r.Probe > z.MaxProbe {
			z.MaxProbe = r.Probe
		}
		if r.TimeNano < z.MinTime {
			z.MinTime = r.TimeNano
		}
		if r.TimeNano > z.MaxTime {
			z.MaxTime = r.TimeNano
		}
		if r.Region < z.MinRegion {
			z.MinRegion = r.Region
		}
		if r.Region > z.MaxRegion {
			z.MaxRegion = r.Region
		}
	}
	z.Rows++
	if !r.Lost {
		if z.Delivered == 0 {
			z.MinRTT, z.MaxRTT = r.RTT, r.RTT
		} else {
			if r.RTT < z.MinRTT {
				z.MinRTT = r.RTT
			}
			if r.RTT > z.MaxRTT {
				z.MaxRTT = r.RTT
			}
		}
		z.Delivered++
	}
}

// appendZone encodes z. The same encoding serves block footers and the
// file-level index.
func appendZone(b []byte, z Zone) []byte {
	b = appendUvarint(b, uint64(z.Rows))
	b = appendVarint(b, int64(z.MinProbe))
	b = appendVarint(b, int64(z.MaxProbe))
	b = appendVarint(b, z.MinTime)
	b = appendVarint(b, z.MaxTime)
	b = appendUvarint(b, uint64(z.Delivered))
	if z.Delivered > 0 {
		b = appendFloatBits(b, z.MinRTT)
		b = appendFloatBits(b, z.MaxRTT)
	}
	b = appendUvarint(b, uint64(len(z.MinRegion)))
	b = append(b, z.MinRegion...)
	b = appendUvarint(b, uint64(len(z.MaxRegion)))
	b = append(b, z.MaxRegion...)
	return b
}

// decodeZone parses one zone from the cursor.
func decodeZone(c *byteCursor) (Zone, error) {
	var z Zone
	rows, err := c.uvarint()
	if err != nil {
		return z, err
	}
	if rows > uint64(maxBlockBytes) {
		return z, fmt.Errorf("colf: implausible zone row count %d", rows)
	}
	z.Rows = int(rows)
	minP, err := c.varint()
	if err != nil {
		return z, err
	}
	maxP, err := c.varint()
	if err != nil {
		return z, err
	}
	z.MinProbe, z.MaxProbe = int(minP), int(maxP)
	if z.MinTime, err = c.varint(); err != nil {
		return z, err
	}
	if z.MaxTime, err = c.varint(); err != nil {
		return z, err
	}
	delivered, err := c.uvarint()
	if err != nil {
		return z, err
	}
	if delivered > rows {
		return z, fmt.Errorf("colf: zone delivered %d exceeds rows %d", delivered, rows)
	}
	z.Delivered = int(delivered)
	if z.Delivered > 0 {
		if z.MinRTT, err = c.floatBits(); err != nil {
			return z, err
		}
		if z.MaxRTT, err = c.floatBits(); err != nil {
			return z, err
		}
	}
	n, err := c.uvarint()
	if err != nil {
		return z, err
	}
	raw, err := c.bytes(int(n))
	if err != nil {
		return z, err
	}
	z.MinRegion = string(raw)
	if n, err = c.uvarint(); err != nil {
		return z, err
	}
	if raw, err = c.bytes(int(n)); err != nil {
		return z, err
	}
	z.MaxRegion = string(raw)
	return z, nil
}

// Predicate is a conjunction of per-column range filters. MatchZone is
// the block-skipping side: it answers "may this block contain a
// matching row?" and errs toward true, so skipping is always safe.
// Row-level filtering stays the consumer's job — a scan pass must
// still test every decoded row (MatchRow), because kept blocks carry
// non-matching rows too. Zero-valued fields leave their column
// unconstrained.
type Predicate struct {
	// Since/Until restrict timestamps to the half-open window
	// [Since, Until). Zero times leave the corresponding side open.
	Since, Until time.Time
	// MinProbe/MaxProbe restrict probe IDs to an inclusive range; zero
	// leaves the corresponding side open (probe IDs are positive).
	MinProbe, MaxProbe int
	// RegionPrefix restricts the region address to one prefix, e.g. one
	// provider's "Amazon/" namespace.
	RegionPrefix string
}

// Empty reports whether the predicate constrains nothing.
func (p *Predicate) Empty() bool {
	return p == nil || (p.Since.IsZero() && p.Until.IsZero() &&
		p.MinProbe == 0 && p.MaxProbe == 0 && p.RegionPrefix == "")
}

// MatchZone reports whether a block with zone z may contain a matching
// row. A false return proves no row matches.
func (p *Predicate) MatchZone(z Zone) bool {
	if p == nil {
		return true
	}
	if !p.Since.IsZero() && z.MaxTime < p.Since.UnixNano() {
		return false
	}
	if !p.Until.IsZero() && z.MinTime >= p.Until.UnixNano() {
		return false
	}
	if p.MinProbe != 0 && z.MaxProbe < p.MinProbe {
		return false
	}
	if p.MaxProbe != 0 && z.MinProbe > p.MaxProbe {
		return false
	}
	if p.RegionPrefix != "" {
		// A region with the prefix exists in [MinRegion, MaxRegion] only
		// if the range reaches the prefix: not entirely below it and not
		// entirely past its last possible expansion.
		if z.MaxRegion < p.RegionPrefix {
			return false
		}
		if hi, bounded := prefixSuccessor(p.RegionPrefix); bounded && z.MinRegion >= hi {
			return false
		}
	}
	return true
}

// MatchRow is the row-level mirror of MatchZone: exact, not
// conservative.
func (p *Predicate) MatchRow(probe int, timeNano int64, region string) bool {
	if p == nil {
		return true
	}
	if !p.Since.IsZero() && timeNano < p.Since.UnixNano() {
		return false
	}
	if !p.Until.IsZero() && timeNano >= p.Until.UnixNano() {
		return false
	}
	if p.MinProbe != 0 && probe < p.MinProbe {
		return false
	}
	if p.MaxProbe != 0 && probe > p.MaxProbe {
		return false
	}
	if p.RegionPrefix != "" && (len(region) < len(p.RegionPrefix) || region[:len(p.RegionPrefix)] != p.RegionPrefix) {
		return false
	}
	return true
}

// prefixSuccessor returns the smallest string greater than every
// string with the given prefix, and whether such a bound exists (it
// does not when the prefix is all 0xFF bytes).
func prefixSuccessor(prefix string) (string, bool) {
	b := []byte(prefix)
	for i := len(b) - 1; i >= 0; i-- {
		if b[i] != 0xFF {
			b[i]++
			return string(b[:i+1]), true
		}
	}
	return "", false
}
