package colf

import (
	"fmt"
	"strings"
	"time"
)

// maxZoneRegions caps the per-region aggregate list a zone carries.
// Real blocks cycle through a campaign's region set (a few dozen); a
// block whose dictionary exceeds the cap drops the list rather than
// bloating every footer, and consumers fall back to row decode.
const maxZoneRegions = 64

// RegionZone is one region's pre-aggregate within a block: where its
// rows start, how many there are, and the delivered-RTT fold over them.
// Entries appear in dictionary (first-appearance) order; a region's
// rows need not be contiguous — FirstRow is the first occurrence.
type RegionZone struct {
	Region    string
	FirstRow  int
	Rows      int
	Delivered int
	// RTTSum is the sum of RTT over the region's delivered rows, folded
	// in row order (so it is bit-reproducible from a row scan).
	RTTSum float64
}

// Zone is one block's per-column summary: row count and min/max per
// column. Readers use it two ways — integrity (the decoded block must
// reproduce it) and skipping (a predicate that excludes the zone's
// ranges excludes every row of the block without decoding it).
type Zone struct {
	// Rows is the block's row count.
	Rows int
	// MinProbe/MaxProbe bound the probe ID column.
	MinProbe, MaxProbe int
	// MinTime/MaxTime bound the timestamp column, Unix nanoseconds.
	MinTime, MaxTime int64
	// Delivered counts rows with Lost == false. MinRTT/MaxRTT bound the
	// RTT column over delivered rows only and are zero when none were.
	Delivered      int
	MinRTT, MaxRTT float64
	// MinRegion/MaxRegion bound the region column lexicographically.
	MinRegion, MaxRegion string

	// Format v2 pre-aggregates. HasAgg reports whether the block was
	// written with them (v1 blocks decode with HasAgg false); RTTSum is
	// then the row-order sum of RTT over delivered rows. Regions holds
	// the per-region breakdown, and is nil on v1 blocks or when the
	// block's dictionary exceeded maxZoneRegions.
	HasAgg  bool
	RTTSum  float64
	Regions []RegionZone
}

// observe folds one row into the zone.
func (z *Zone) observe(r Row) {
	z.HasAgg = true
	if z.Rows == 0 {
		z.MinProbe, z.MaxProbe = r.Probe, r.Probe
		z.MinTime, z.MaxTime = r.TimeNano, r.TimeNano
		z.MinRegion, z.MaxRegion = r.Region, r.Region
	} else {
		if r.Probe < z.MinProbe {
			z.MinProbe = r.Probe
		}
		if r.Probe > z.MaxProbe {
			z.MaxProbe = r.Probe
		}
		if r.TimeNano < z.MinTime {
			z.MinTime = r.TimeNano
		}
		if r.TimeNano > z.MaxTime {
			z.MaxTime = r.TimeNano
		}
		if r.Region < z.MinRegion {
			z.MinRegion = r.Region
		}
		if r.Region > z.MaxRegion {
			z.MaxRegion = r.Region
		}
	}
	z.Rows++
	if !r.Lost {
		if z.Delivered == 0 {
			z.MinRTT, z.MaxRTT = r.RTT, r.RTT
		} else {
			if r.RTT < z.MinRTT {
				z.MinRTT = r.RTT
			}
			if r.RTT > z.MaxRTT {
				z.MaxRTT = r.RTT
			}
		}
		z.Delivered++
		z.RTTSum += r.RTT
	}
}

// Zone extension flags (format v2). The extension is self-describing:
// a v1 zone simply ends after MaxRegion, so its presence is detected by
// leftover bytes in the (exactly bounded) footer or index entry.
const (
	zoneFlagAgg     = 1 << 0 // RTTSum present (when Delivered > 0)
	zoneFlagRegions = 1 << 1 // per-region aggregate list present
)

// appendZone encodes z. The same encoding serves block footers and the
// file-level index. Zones observed by a v2 writer carry the aggregate
// extension; zones decoded from v1 blocks re-encode as v1 (HasAgg is
// false — inventing an RTTSum of zero would be wrong, not additive).
func appendZone(b []byte, z Zone) []byte {
	b = appendUvarint(b, uint64(z.Rows))
	b = appendVarint(b, int64(z.MinProbe))
	b = appendVarint(b, int64(z.MaxProbe))
	b = appendVarint(b, z.MinTime)
	b = appendVarint(b, z.MaxTime)
	b = appendUvarint(b, uint64(z.Delivered))
	if z.Delivered > 0 {
		b = appendFloatBits(b, z.MinRTT)
		b = appendFloatBits(b, z.MaxRTT)
	}
	b = appendUvarint(b, uint64(len(z.MinRegion)))
	b = append(b, z.MinRegion...)
	b = appendUvarint(b, uint64(len(z.MaxRegion)))
	b = append(b, z.MaxRegion...)
	if !z.HasAgg {
		return b
	}
	flags := uint64(zoneFlagAgg)
	if len(z.Regions) > 0 {
		flags |= zoneFlagRegions
	}
	b = appendUvarint(b, flags)
	if z.Delivered > 0 {
		b = appendFloatBits(b, z.RTTSum)
	}
	if len(z.Regions) > 0 {
		b = appendUvarint(b, uint64(len(z.Regions)))
		for _, rz := range z.Regions {
			b = appendUvarint(b, uint64(len(rz.Region)))
			b = append(b, rz.Region...)
			b = appendUvarint(b, uint64(rz.FirstRow))
			b = appendUvarint(b, uint64(rz.Rows))
			b = appendUvarint(b, uint64(rz.Delivered))
			if rz.Delivered > 0 {
				b = appendFloatBits(b, rz.RTTSum)
			}
		}
	}
	return b
}

// decodeZone parses one zone from the cursor.
func decodeZone(c *byteCursor) (Zone, error) {
	var z Zone
	rows, err := c.uvarint()
	if err != nil {
		return z, err
	}
	if rows > uint64(maxBlockBytes) {
		return z, fmt.Errorf("colf: implausible zone row count %d", rows)
	}
	z.Rows = int(rows)
	minP, err := c.varint()
	if err != nil {
		return z, err
	}
	maxP, err := c.varint()
	if err != nil {
		return z, err
	}
	z.MinProbe, z.MaxProbe = int(minP), int(maxP)
	if z.MinTime, err = c.varint(); err != nil {
		return z, err
	}
	if z.MaxTime, err = c.varint(); err != nil {
		return z, err
	}
	delivered, err := c.uvarint()
	if err != nil {
		return z, err
	}
	if delivered > rows {
		return z, fmt.Errorf("colf: zone delivered %d exceeds rows %d", delivered, rows)
	}
	z.Delivered = int(delivered)
	if z.Delivered > 0 {
		if z.MinRTT, err = c.floatBits(); err != nil {
			return z, err
		}
		if z.MaxRTT, err = c.floatBits(); err != nil {
			return z, err
		}
	}
	n, err := c.uvarint()
	if err != nil {
		return z, err
	}
	raw, err := c.bytes(int(n))
	if err != nil {
		return z, err
	}
	z.MinRegion = string(raw)
	if n, err = c.uvarint(); err != nil {
		return z, err
	}
	if raw, err = c.bytes(int(n)); err != nil {
		return z, err
	}
	z.MaxRegion = string(raw)
	return z, nil
}

// decodeZoneExt parses the v2 aggregate extension into z. Callers
// invoke it only when the zone's bounds (an exactly sized footer or a
// length-prefixed index entry) show bytes past the v1 fields, and must
// check the cursor is fully consumed afterwards.
func decodeZoneExt(c *byteCursor, z *Zone) error {
	flags, err := c.uvarint()
	if err != nil {
		return err
	}
	if flags&zoneFlagAgg == 0 || flags&^uint64(zoneFlagAgg|zoneFlagRegions) != 0 {
		return fmt.Errorf("colf: unknown zone extension flags %#x", flags)
	}
	z.HasAgg = true
	if z.Delivered > 0 {
		if z.RTTSum, err = c.floatBits(); err != nil {
			return err
		}
	}
	if flags&zoneFlagRegions == 0 {
		return nil
	}
	count, err := c.uvarint()
	if err != nil {
		return err
	}
	if count == 0 || count > maxZoneRegions || count > uint64(z.Rows) {
		return fmt.Errorf("colf: implausible zone region count %d for %d rows", count, z.Rows)
	}
	regions := make([]RegionZone, 0, count)
	var sumRows, sumDelivered int
	for i := uint64(0); i < count; i++ {
		var rz RegionZone
		n, err := c.uvarint()
		if err != nil {
			return err
		}
		raw, err := c.bytes(int(n))
		if err != nil {
			return err
		}
		rz.Region = string(raw)
		first, err := c.uvarint()
		if err != nil {
			return err
		}
		rows, err := c.uvarint()
		if err != nil {
			return err
		}
		delivered, err := c.uvarint()
		if err != nil {
			return err
		}
		if first >= uint64(z.Rows) || rows > uint64(z.Rows) || delivered > rows {
			return fmt.Errorf("colf: implausible zone region entry %d (first %d, rows %d, delivered %d)",
				i, first, rows, delivered)
		}
		rz.FirstRow, rz.Rows, rz.Delivered = int(first), int(rows), int(delivered)
		if rz.Delivered > 0 {
			if rz.RTTSum, err = c.floatBits(); err != nil {
				return err
			}
		}
		sumRows += rz.Rows
		sumDelivered += rz.Delivered
		regions = append(regions, rz)
	}
	if sumRows != z.Rows || sumDelivered != z.Delivered {
		return fmt.Errorf("colf: zone region aggregates cover %d rows/%d delivered, zone has %d/%d",
			sumRows, sumDelivered, z.Rows, z.Delivered)
	}
	z.Regions = regions
	return nil
}

// decodeZoneFull parses a zone that owns the remainder of the cursor:
// v1 fields, the v2 extension when bytes remain, and nothing after.
// Block footers and v2 index entries are exactly bounded, which is what
// makes the extension's presence unambiguous.
func decodeZoneFull(c *byteCursor) (Zone, error) {
	z, err := decodeZone(c)
	if err != nil {
		return z, err
	}
	if c.remaining() > 0 {
		if err := decodeZoneExt(c, &z); err != nil {
			return z, err
		}
		if c.remaining() != 0 {
			return z, fmt.Errorf("colf: %d stray bytes after zone extension", c.remaining())
		}
	}
	return z, nil
}

// Predicate is a conjunction of per-column range filters. MatchZone is
// the block-skipping side: it answers "may this block contain a
// matching row?" and errs toward true, so skipping is always safe.
// Row-level filtering stays the consumer's job — a scan pass must
// still test every decoded row (MatchRow), because kept blocks carry
// non-matching rows too. Zero-valued fields leave their column
// unconstrained.
type Predicate struct {
	// Since/Until restrict timestamps to the half-open window
	// [Since, Until). Zero times leave the corresponding side open.
	Since, Until time.Time
	// MinProbe/MaxProbe restrict probe IDs to an inclusive range; zero
	// leaves the corresponding side open (probe IDs are positive).
	MinProbe, MaxProbe int
	// RegionPrefix restricts the region address to one prefix, e.g. one
	// provider's "Amazon/" namespace.
	RegionPrefix string
}

// Key returns a canonical encoding of the predicate: two predicates
// select the same rows if and only if their keys are equal. Consumers
// use it as a cache-key component for windowed reads; the empty
// predicate's key is "".
func (p *Predicate) Key() string {
	if p.Empty() {
		return ""
	}
	var b strings.Builder
	if !p.Since.IsZero() {
		fmt.Fprintf(&b, "since=%d;", p.Since.UnixNano())
	}
	if !p.Until.IsZero() {
		fmt.Fprintf(&b, "until=%d;", p.Until.UnixNano())
	}
	if p.MinProbe != 0 {
		fmt.Fprintf(&b, "minprobe=%d;", p.MinProbe)
	}
	if p.MaxProbe != 0 {
		fmt.Fprintf(&b, "maxprobe=%d;", p.MaxProbe)
	}
	if p.RegionPrefix != "" {
		fmt.Fprintf(&b, "region=%q;", p.RegionPrefix)
	}
	return b.String()
}

// Empty reports whether the predicate constrains nothing.
func (p *Predicate) Empty() bool {
	return p == nil || (p.Since.IsZero() && p.Until.IsZero() &&
		p.MinProbe == 0 && p.MaxProbe == 0 && p.RegionPrefix == "")
}

// MatchZone reports whether a block with zone z may contain a matching
// row. A false return proves no row matches.
func (p *Predicate) MatchZone(z Zone) bool {
	if p == nil {
		return true
	}
	if !p.Since.IsZero() && z.MaxTime < p.Since.UnixNano() {
		return false
	}
	if !p.Until.IsZero() && z.MinTime >= p.Until.UnixNano() {
		return false
	}
	if p.MinProbe != 0 && z.MaxProbe < p.MinProbe {
		return false
	}
	if p.MaxProbe != 0 && z.MinProbe > p.MaxProbe {
		return false
	}
	if p.RegionPrefix != "" {
		// A region with the prefix exists in [MinRegion, MaxRegion] only
		// if the range reaches the prefix: not entirely below it and not
		// entirely past its last possible expansion.
		if z.MaxRegion < p.RegionPrefix {
			return false
		}
		if hi, bounded := prefixSuccessor(p.RegionPrefix); bounded && z.MinRegion >= hi {
			return false
		}
	}
	return true
}

// CoversZone is MatchZone's dual: it reports whether EVERY row of a
// block with zone z provably matches the predicate. A true return lets
// a scanner skip per-row filtering for the whole block (and resolve
// aggregate-only passes from the zone alone); false proves nothing —
// the block may still match fully, partially, or not at all. It errs
// toward false, so acting on it is always safe.
func (p *Predicate) CoversZone(z Zone) bool {
	if p.Empty() {
		return true
	}
	if !p.Since.IsZero() && z.MinTime < p.Since.UnixNano() {
		return false
	}
	if !p.Until.IsZero() && z.MaxTime >= p.Until.UnixNano() {
		return false
	}
	if p.MinProbe != 0 && z.MinProbe < p.MinProbe {
		return false
	}
	if p.MaxProbe != 0 && z.MaxProbe > p.MaxProbe {
		return false
	}
	if p.RegionPrefix != "" {
		// If both lexicographic extremes carry the prefix, every region in
		// [MinRegion, MaxRegion] does: a string in the range that lacked it
		// would differ from the prefix at some byte and thereby fall below
		// MinRegion or above MaxRegion.
		if !strings.HasPrefix(z.MinRegion, p.RegionPrefix) || !strings.HasPrefix(z.MaxRegion, p.RegionPrefix) {
			return false
		}
	}
	return true
}

// MatchRow is the row-level mirror of MatchZone: exact, not
// conservative.
func (p *Predicate) MatchRow(probe int, timeNano int64, region string) bool {
	if p == nil {
		return true
	}
	if !p.Since.IsZero() && timeNano < p.Since.UnixNano() {
		return false
	}
	if !p.Until.IsZero() && timeNano >= p.Until.UnixNano() {
		return false
	}
	if p.MinProbe != 0 && probe < p.MinProbe {
		return false
	}
	if p.MaxProbe != 0 && probe > p.MaxProbe {
		return false
	}
	if p.RegionPrefix != "" && (len(region) < len(p.RegionPrefix) || region[:len(p.RegionPrefix)] != p.RegionPrefix) {
		return false
	}
	return true
}

// prefixSuccessor returns the smallest string greater than every
// string with the given prefix, and whether such a bound exists (it
// does not when the prefix is all 0xFF bytes).
func prefixSuccessor(prefix string) (string, bool) {
	b := []byte(prefix)
	for i := len(b) - 1; i >= 0; i-- {
		if b[i] != 0xFF {
			b[i]++
			return string(b[:i+1]), true
		}
	}
	return "", false
}
