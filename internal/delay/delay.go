// Package delay answers the paper's §4.3 question — "Where is the Delay?"
// — by decomposing cloud-access RTTs into propagation, transit, last-mile,
// and bufferbloat components, aggregated per continent and per access
// class. The paper attributes poor reachability to insufficient
// infrastructure deployment (transit) and to the wireless last mile; this
// analysis quantifies both from the same model that generated the dataset.
package delay

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/atlas"
	"repro/internal/geo"
	"repro/internal/netem"
)

// Attribution is the averaged component decomposition of one probe group.
type Attribution struct {
	Group         string  `json:"group"` // continent name or access class
	Samples       int     `json:"samples"`
	MeanRTTms     float64 `json:"mean_rtt_ms"`
	PropagationMs float64 `json:"propagation_ms"`
	TransitMs     float64 `json:"transit_ms"`
	LastMileMs    float64 `json:"last_mile_ms"`
	BloatMs       float64 `json:"bloat_ms"`
}

// Share returns a component's fraction of the mean RTT.
func (a Attribution) Share(componentMs float64) float64 {
	if a.MeanRTTms <= 0 {
		return 0
	}
	return componentMs / a.MeanRTTms
}

// Dominant names the largest component.
func (a Attribution) Dominant() string {
	best, name := a.PropagationMs, "propagation"
	if a.TransitMs > best {
		best, name = a.TransitMs, "transit"
	}
	if a.LastMileMs > best {
		best, name = a.LastMileMs, "last-mile"
	}
	if a.BloatMs > best {
		name = "bufferbloat"
	}
	return name
}

// Report groups attributions by continent and by access class.
type Report struct {
	ByContinent []Attribution `json:"by_continent"`
	ByAccess    []Attribution `json:"by_access"`
}

// Config controls the sampling.
type Config struct {
	Start   time.Time     // first sample time
	Rounds  int           // samples per probe
	Spacing time.Duration // time between samples
}

// DefaultConfig samples a week at three-hour spacing.
func DefaultConfig() Config {
	return Config{
		Start:   time.Date(2019, 9, 1, 0, 0, 0, 0, time.UTC),
		Rounds:  56,
		Spacing: 3 * time.Hour,
	}
}

// Validate checks the sampling parameters.
func (c Config) Validate() error {
	if c.Start.IsZero() {
		return errors.New("delay: zero start time")
	}
	if c.Rounds <= 0 {
		return fmt.Errorf("delay: non-positive rounds %d", c.Rounds)
	}
	if c.Spacing <= 0 {
		return fmt.Errorf("delay: non-positive spacing %v", c.Spacing)
	}
	return nil
}

type acc struct {
	n                                      int
	rtt, prop, transit, lastMile, bloatSum float64
}

func (a *acc) add(b netem.Breakdown) {
	a.n++
	a.rtt += b.TotalMs
	a.prop += b.PropagationMs
	a.transit += b.TransitMs
	a.lastMile += b.LastMileMs
	a.bloatSum += b.BloatMs
}

func (a *acc) attribution(group string) Attribution {
	n := float64(a.n)
	return Attribution{
		Group:         group,
		Samples:       a.n,
		MeanRTTms:     a.rtt / n,
		PropagationMs: a.prop / n,
		TransitMs:     a.transit / n,
		LastMileMs:    a.lastMile / n,
		BloatMs:       a.bloatSum / n,
	}
}

// WhereIsTheDelay samples every public probe's path to its geographically
// nearest region over the configured window and attributes the mean RTT to
// its components.
func WhereIsTheDelay(p *atlas.Platform, cfg Config) (*Report, error) {
	if p == nil {
		return nil, errors.New("delay: nil platform")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	byContinent := make(map[geo.Continent]*acc)
	byAccess := make(map[netem.Access]*acc)
	for _, pr := range p.Population.Public() {
		region := p.Catalog.Nearest(pr.Location)
		if region == nil {
			return nil, errors.New("delay: empty catalog")
		}
		path, err := p.Path(pr, region)
		if err != nil {
			return nil, err
		}
		for i := 0; i < cfg.Rounds; i++ {
			b := path.Sample(cfg.Start.Add(time.Duration(i) * cfg.Spacing))
			if b.Lost {
				continue
			}
			ca := byContinent[pr.Continent]
			if ca == nil {
				ca = &acc{}
				byContinent[pr.Continent] = ca
			}
			ca.add(b)
			aa := byAccess[pr.Access]
			if aa == nil {
				aa = &acc{}
				byAccess[pr.Access] = aa
			}
			aa.add(b)
		}
	}
	if len(byContinent) == 0 {
		return nil, errors.New("delay: no samples")
	}
	rep := &Report{}
	for _, ct := range geo.Continents() {
		if a, ok := byContinent[ct]; ok && a.n > 0 {
			rep.ByContinent = append(rep.ByContinent, a.attribution(ct.String()))
		}
	}
	for _, access := range []netem.Access{netem.AccessWired, netem.AccessWireless, netem.AccessCore} {
		if a, ok := byAccess[access]; ok && a.n > 0 {
			rep.ByAccess = append(rep.ByAccess, a.attribution(access.String()))
		}
	}
	return rep, nil
}

// Format renders the report as figure-ready lines.
func (r *Report) Format() []string {
	lines := []string{"group            mean-rtt  propagation  transit  last-mile  bloat  dominant"}
	emit := func(rows []Attribution) {
		for _, a := range rows {
			lines = append(lines, fmt.Sprintf("%-16s %7.1fms  %10.1fms %7.1fms %9.1fms %5.1fms  %s",
				a.Group, a.MeanRTTms, a.PropagationMs, a.TransitMs, a.LastMileMs, a.BloatMs, a.Dominant()))
		}
	}
	emit(r.ByContinent)
	emit(r.ByAccess)
	return lines
}

// Lookup finds a group's attribution in either grouping.
func (r *Report) Lookup(group string) (Attribution, bool) {
	for _, a := range r.ByContinent {
		if a.Group == group {
			return a, true
		}
	}
	for _, a := range r.ByAccess {
		if a.Group == group {
			return a, true
		}
	}
	return Attribution{}, false
}

// consistencyGapMs is used by tests: the mean components must reconstruct
// the mean RTT up to the fixed processing floor.
func (a Attribution) consistencyGapMs() float64 {
	return a.MeanRTTms - (a.PropagationMs + a.TransitMs + a.LastMileMs + a.BloatMs)
}
