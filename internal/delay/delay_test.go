package delay

import (
	"math"
	"testing"
	"time"

	"repro/internal/netem"
	"repro/internal/world"
)

func report(t *testing.T) *Report {
	t.Helper()
	w, err := world.Build(world.Config{Seed: 5, Probes: 400})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := WhereIsTheDelay(w.Platform, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestWhereIsTheDelayShape(t *testing.T) {
	rep := report(t)
	if len(rep.ByContinent) != 6 {
		t.Fatalf("attributed %d continents", len(rep.ByContinent))
	}
	// §4.3 narrative: Africa's delay is dominated by transit (insufficient
	// infrastructure), not by physics.
	africa, ok := rep.Lookup("Africa")
	if !ok {
		t.Fatal("Africa missing")
	}
	if africa.Dominant() != "transit" && africa.Dominant() != "propagation" {
		t.Errorf("Africa dominated by %s", africa.Dominant())
	}
	if africa.TransitMs < 20 {
		t.Errorf("Africa transit share %.1f ms implausibly small", africa.TransitMs)
	}
	// Europe's remaining delay is mostly the last mile or short transit —
	// propagation to a nearby DC is small.
	europe, ok := rep.Lookup("Europe")
	if !ok {
		t.Fatal("Europe missing")
	}
	if europe.MeanRTTms >= africa.MeanRTTms {
		t.Errorf("Europe mean %.1f >= Africa mean %.1f", europe.MeanRTTms, africa.MeanRTTms)
	}
	if europe.PropagationMs > 15 {
		t.Errorf("Europe propagation %.1f ms too high for nearest-DC paths", europe.PropagationMs)
	}
}

func TestAccessAttribution(t *testing.T) {
	rep := report(t)
	wired, ok := rep.Lookup("wired")
	if !ok {
		t.Fatal("wired missing")
	}
	wireless, ok := rep.Lookup("wireless")
	if !ok {
		t.Fatal("wireless missing")
	}
	// The wireless group's last mile dominates its wired counterpart —
	// the §4.3 conclusion.
	if wireless.LastMileMs < wired.LastMileMs*2 {
		t.Errorf("wireless last mile %.1f not clearly above wired %.1f",
			wireless.LastMileMs, wired.LastMileMs)
	}
	// Bufferbloat shows up on wireless paths.
	if wireless.BloatMs <= wired.BloatMs {
		t.Errorf("wireless bloat %.2f <= wired bloat %.2f", wireless.BloatMs, wired.BloatMs)
	}
}

func TestAttributionConsistency(t *testing.T) {
	rep := report(t)
	all := append(append([]Attribution(nil), rep.ByContinent...), rep.ByAccess...)
	for _, a := range all {
		gap := a.consistencyGapMs()
		// The gap is exactly the processing floor.
		if math.Abs(gap-netem.DefaultConfig().ProcessingMs) > 1e-6 {
			t.Errorf("%s: components + %.3f != mean RTT (gap %.3f)", a.Group, netem.DefaultConfig().ProcessingMs, gap)
		}
		if a.Samples <= 0 {
			t.Errorf("%s has no samples", a.Group)
		}
		share := a.Share(a.TransitMs) + a.Share(a.PropagationMs) + a.Share(a.LastMileMs) + a.Share(a.BloatMs)
		if share < 0.9 || share > 1.01 {
			t.Errorf("%s shares sum to %.3f", a.Group, share)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	w, err := world.Build(world.Config{Seed: 5, Probes: 200})
	if err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{},
		{Start: time.Now(), Rounds: 0, Spacing: time.Hour},
		{Start: time.Now(), Rounds: 1, Spacing: 0},
	}
	for i, cfg := range bad {
		if _, err := WhereIsTheDelay(w.Platform, cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	if _, err := WhereIsTheDelay(nil, DefaultConfig()); err == nil {
		t.Error("nil platform accepted")
	}
}

func TestFormatAndLookup(t *testing.T) {
	rep := report(t)
	lines := rep.Format()
	if len(lines) != 1+len(rep.ByContinent)+len(rep.ByAccess) {
		t.Errorf("Format produced %d lines", len(lines))
	}
	if _, ok := rep.Lookup("Atlantis"); ok {
		t.Error("unknown group found")
	}
}
