package probe

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/geo"
	"repro/internal/netem"
)

// GenConfig parameterizes the synthetic probe census.
type GenConfig struct {
	// Seed makes generation reproducible.
	Seed int64
	// Count is the total number of probes (paper: 3200+).
	Count int
	// ContinentShare is the fraction of probes per continent. Shares must
	// sum to ~1. The default skews toward Europe and North America the way
	// the real Atlas deployment does (§4.2: EU+NA hold about 62% of probes).
	ContinentShare map[geo.Continent]float64
	// WirelessFrac and CoreFrac are the fractions of probes on wireless
	// last miles and in privileged core locations.
	WirelessFrac, CoreFrac float64
}

// DefaultGenConfig returns the census matching the paper's Figure 3b
// marginals: 3300 probes, EU+NA-heavy, with enough wireless-tagged probes to
// support the Figure 7 comparison.
func DefaultGenConfig() GenConfig {
	return GenConfig{
		Seed:  1,
		Count: 3300,
		ContinentShare: map[geo.Continent]float64{
			geo.Europe:       0.45,
			geo.NorthAmerica: 0.17,
			geo.Asia:         0.17,
			geo.Oceania:      0.06,
			geo.SouthAmerica: 0.07,
			geo.Africa:       0.08,
		},
		WirelessFrac: 0.22,
		CoreFrac:     0.05,
	}
}

// Validate checks the generation parameters.
func (c GenConfig) Validate() error {
	if c.Count <= 0 {
		return fmt.Errorf("probe: count must be positive, got %d", c.Count)
	}
	sum := 0.0
	for ct, share := range c.ContinentShare {
		if ct == geo.ContinentUnknown {
			return fmt.Errorf("probe: share for unknown continent")
		}
		if share < 0 {
			return fmt.Errorf("probe: negative share for %v", ct)
		}
		sum += share
	}
	if sum < 0.99 || sum > 1.01 {
		return fmt.Errorf("probe: continent shares sum to %v, want 1", sum)
	}
	if c.WirelessFrac < 0 || c.CoreFrac < 0 || c.WirelessFrac+c.CoreFrac > 1 {
		return fmt.Errorf("probe: invalid access fractions wireless=%v core=%v", c.WirelessFrac, c.CoreFrac)
	}
	return nil
}

// tierWeight grades how many probes a country attracts relative to others
// on its continent: well-connected countries host far more Atlas probes
// (the real deployment is overwhelmingly concentrated in tier-1 networks).
func tierWeight(t geo.Tier) float64 {
	switch t {
	case geo.Tier1:
		return 40
	case geo.Tier2:
		return 8
	case geo.Tier3:
		return 2
	default:
		return 1
	}
}

// Generate builds a deterministic synthetic population over the country
// database. Every country receives at least one probe, so country coverage
// matches the paper's 166-country census.
func Generate(db *geo.DB, cfg GenConfig) (*Population, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if db.Len() == 0 {
		return nil, fmt.Errorf("probe: empty country database")
	}
	if cfg.Count < db.Len() {
		return nil, fmt.Errorf("probe: count %d below country count %d (need full coverage)", cfg.Count, db.Len())
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Phase 1: one probe per country (coverage floor).
	quota := make(map[string]int, db.Len())
	for _, c := range db.All() {
		quota[c.ISO2] = 1
	}
	remaining := cfg.Count - db.Len()

	// Phase 2: distribute the remainder by continent share, then within a
	// continent by tier weight.
	continents := geo.Continents()
	for _, ct := range continents {
		share := cfg.ContinentShare[ct]
		n := int(share * float64(remaining))
		countries := db.ByContinent(ct)
		if len(countries) == 0 || n == 0 {
			continue
		}
		total := 0.0
		for _, c := range countries {
			total += tierWeight(c.Tier)
		}
		assigned := 0
		for _, c := range countries {
			k := int(float64(n) * tierWeight(c.Tier) / total)
			quota[c.ISO2] += k
			assigned += k
		}
		// Round-off remainder goes to the highest-weight countries.
		sorted := append([]*geo.Country(nil), countries...)
		sort.Slice(sorted, func(i, j int) bool {
			wi, wj := tierWeight(sorted[i].Tier), tierWeight(sorted[j].Tier)
			if wi != wj {
				return wi > wj
			}
			return sorted[i].ISO2 < sorted[j].ISO2
		})
		for i := 0; assigned < n; i++ {
			quota[sorted[i%len(sorted)].ISO2]++
			assigned++
		}
	}

	var probes []*Probe
	id := 0
	for _, c := range db.All() {
		for i := 0; i < quota[c.ISO2]; i++ {
			id++
			probes = append(probes, synthesize(rng, id, c))
		}
	}
	// Top up rounding shortfall with extra probes in tier-1 countries.
	tier1 := db.All()
	for i := 0; len(probes) < cfg.Count; i++ {
		c := tier1[i%len(tier1)]
		if c.Tier != geo.Tier1 {
			continue
		}
		id++
		probes = append(probes, synthesize(rng, id, c))
	}

	// Assign environments and access links.
	for _, p := range probes {
		r := rng.Float64()
		switch {
		case r < cfg.CoreFrac:
			p.Env = EnvCore
			p.Access = netem.AccessCore
			p.Tags = append(p.Tags, PrivilegedTags[rng.Intn(len(PrivilegedTags))])
		case r < cfg.CoreFrac+cfg.WirelessFrac:
			p.Env = EnvHome
			p.Access = netem.AccessWireless
			p.Tags = append(p.Tags, "home", WirelessTags[rng.Intn(len(WirelessTags))])
		default:
			if rng.Float64() < 0.25 {
				p.Env = EnvAccess
				p.Tags = append(p.Tags, "office")
			} else {
				p.Env = EnvHome
				p.Tags = append(p.Tags, "home")
			}
			p.Access = netem.AccessWired
			p.Tags = append(p.Tags, WiredTags[rng.Intn(len(WiredTags))])
		}
	}
	return NewPopulation(probes)
}

// synthesize creates a probe near the country centroid. Placement jitter
// shrinks for small countries (heuristically by tier, since the database
// stores no area).
func synthesize(rng *rand.Rand, id int, c *geo.Country) *Probe {
	spread := 1.5 // degrees
	loc := geo.Point{
		Lat: clampLat(c.Centroid.Lat + rng.NormFloat64()*spread),
		Lon: wrapLon(c.Centroid.Lon + rng.NormFloat64()*spread),
	}
	return &Probe{
		ID:        id,
		Country:   c.ISO2,
		Continent: c.Continent,
		Tier:      c.Tier,
		Location:  loc,
		Tags:      []string{"system-ipv4-works"},
	}
}

func clampLat(lat float64) float64 {
	if lat > 89 {
		return 89
	}
	if lat < -89 {
		return -89
	}
	return lat
}

func wrapLon(lon float64) float64 {
	for lon > 180 {
		lon -= 360
	}
	for lon < -180 {
		lon += 360
	}
	return lon
}
