package probe

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	pop := genDefault(t)
	var buf bytes.Buffer
	if err := Save(&buf, pop); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != pop.Len() {
		t.Fatalf("loaded %d probes, want %d", got.Len(), pop.Len())
	}
	for i, want := range pop.All() {
		p := got.All()[i]
		if p.ID != want.ID || p.Country != want.Country || p.Continent != want.Continent ||
			p.Tier != want.Tier || p.Location != want.Location || p.Access != want.Access ||
			p.Env != want.Env || len(p.Tags) != len(want.Tags) {
			t.Fatalf("probe %d differs: %+v vs %+v", i, p, want)
		}
		for j := range want.Tags {
			if p.Tags[j] != want.Tags[j] {
				t.Fatalf("probe %d tag %d differs", i, j)
			}
		}
	}
	// Derived behaviour survives the round trip.
	if len(got.Public()) != len(pop.Public()) {
		t.Error("privileged filtering changed after reload")
	}
	if len(got.WithAnyTag(WirelessTags)) != len(pop.WithAnyTag(WirelessTags)) {
		t.Error("tag queries changed after reload")
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(strings.NewReader("{broken\n")); err == nil {
		t.Error("corrupt line accepted")
	}
	if _, err := Load(strings.NewReader(`{"id":1,"location":{"Lat":999,"Lon":0}}` + "\n")); err == nil {
		t.Error("invalid location accepted")
	}
	if _, err := Load(strings.NewReader(`{"id":0}` + "\n")); err == nil {
		t.Error("zero ID accepted")
	}
	// Blank lines are fine.
	pop, err := Load(strings.NewReader("\n" + `{"id":1,"country":"DE","continent":3,"tier":1,"location":{"Lat":50,"Lon":8}}` + "\n\n"))
	if err != nil || pop.Len() != 1 {
		t.Errorf("blank-line handling: %v, %v", pop, err)
	}
	if err := Save(nil, nil); err == nil {
		t.Error("nil population accepted")
	}
}

func TestSaveLoadFile(t *testing.T) {
	pop := genDefault(t)
	path := filepath.Join(t.TempDir(), "census.jsonl")
	if err := SaveFile(path, pop); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != pop.Len() {
		t.Errorf("loaded %d, want %d", got.Len(), pop.Len())
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.jsonl")); err == nil {
		t.Error("missing file accepted")
	}
}
