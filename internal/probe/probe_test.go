package probe

import (
	"testing"

	"repro/internal/geo"
	"repro/internal/netem"
)

func genDefault(t *testing.T) *Population {
	t.Helper()
	pop, err := Generate(geo.World(), DefaultGenConfig())
	if err != nil {
		t.Fatal(err)
	}
	return pop
}

func TestGenerateMatchesPaperCensus(t *testing.T) {
	pop := genDefault(t)
	// §4.1: "3200+ RIPE Atlas probes distributed in 166 countries".
	if pop.Len() < 3200 {
		t.Errorf("population = %d, want >= 3200", pop.Len())
	}
	if got := len(pop.Countries()); got < 166 {
		t.Errorf("countries = %d, want >= 166", got)
	}
	// §4.2: EU+NA hold roughly 62%% of probes (80%% of them = 50%% of total).
	counts := pop.CountByContinent()
	total := 0
	for _, n := range counts {
		total += n
	}
	euna := float64(counts[geo.Europe]+counts[geo.NorthAmerica]) / float64(total)
	if euna < 0.5 || euna > 0.75 {
		t.Errorf("EU+NA share = %.2f, want 0.50-0.75", euna)
	}
	for _, ct := range geo.Continents() {
		if counts[ct] == 0 {
			t.Errorf("no public probes in %v", ct)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := genDefault(t)
	b := genDefault(t)
	if a.Len() != b.Len() {
		t.Fatalf("sizes differ: %d vs %d", a.Len(), b.Len())
	}
	for i, p := range a.All() {
		q := b.All()[i]
		if p.ID != q.ID || p.Country != q.Country || p.Location != q.Location ||
			p.Access != q.Access || p.Env != q.Env || len(p.Tags) != len(q.Tags) {
			t.Fatalf("probe %d differs: %+v vs %+v", i, p, q)
		}
	}
	cfg := DefaultGenConfig()
	cfg.Seed = 99
	c, err := Generate(geo.World(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i, p := range a.All() {
		if p.Location != c.All()[i].Location {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical placements")
	}
}

func TestAccessMix(t *testing.T) {
	pop := genDefault(t)
	var wired, wireless, core int
	for _, p := range pop.All() {
		switch p.Access {
		case netem.AccessWired:
			wired++
		case netem.AccessWireless:
			wireless++
		case netem.AccessCore:
			core++
		default:
			t.Fatalf("probe %d has unassigned access", p.ID)
		}
	}
	n := float64(pop.Len())
	if f := float64(wireless) / n; f < 0.15 || f > 0.30 {
		t.Errorf("wireless fraction = %.2f, want ~0.22", f)
	}
	if f := float64(core) / n; f < 0.02 || f > 0.09 {
		t.Errorf("core fraction = %.2f, want ~0.05", f)
	}
	if wired <= wireless {
		t.Error("wired should dominate")
	}
}

func TestPrivilegedFiltering(t *testing.T) {
	pop := genDefault(t)
	pub := pop.Public()
	if len(pub) >= pop.Len() {
		t.Error("no probes were filtered as privileged")
	}
	for _, p := range pub {
		if p.Privileged() {
			t.Fatalf("Public() returned privileged probe %d", p.ID)
		}
	}
	// Tag-based detection: a probe tagged datacentre is privileged even in
	// a home environment.
	p := &Probe{ID: 1, Env: EnvHome, Tags: []string{"datacentre"}}
	if !p.Privileged() {
		t.Error("datacentre-tagged probe not privileged")
	}
}

func TestTagQueries(t *testing.T) {
	pop := genDefault(t)
	wireless := pop.WithAnyTag(WirelessTags)
	wired := pop.WithAnyTag(WiredTags)
	if len(wireless) == 0 || len(wired) == 0 {
		t.Fatalf("tag sets empty: wireless=%d wired=%d", len(wireless), len(wired))
	}
	for _, p := range wireless {
		if p.Access != netem.AccessWireless {
			t.Fatalf("probe %d tagged wireless but access=%v", p.ID, p.Access)
		}
	}
	for _, p := range wired {
		if p.Access != netem.AccessWired {
			t.Fatalf("probe %d tagged wired but access=%v", p.ID, p.Access)
		}
	}
	p := &Probe{ID: 1, Tags: []string{"home", "wifi"}}
	if !p.HasTag("wifi") || p.HasTag("lte") {
		t.Error("HasTag mismatch")
	}
	if !p.HasAnyTag([]string{"lte", "wifi"}) || p.HasAnyTag([]string{"lte", "4g"}) {
		t.Error("HasAnyTag mismatch")
	}
}

func TestSiteConversion(t *testing.T) {
	pop := genDefault(t)
	p := pop.All()[0]
	s := p.Site()
	if s.ID != p.Addr() || s.Location != p.Location || s.Tier != p.Tier ||
		s.Continent != p.Continent || s.Access != p.Access {
		t.Errorf("Site() = %+v does not mirror probe %+v", s, p)
	}
}

func TestAllLocationsValid(t *testing.T) {
	pop := genDefault(t)
	db := geo.World()
	for _, p := range pop.All() {
		if !p.Location.Valid() {
			t.Fatalf("probe %d has invalid location %v", p.ID, p.Location)
		}
		c, ok := db.Lookup(p.Country)
		if !ok {
			t.Fatalf("probe %d in unknown country %s", p.ID, p.Country)
		}
		if c.Continent != p.Continent || c.Tier != p.Tier {
			t.Fatalf("probe %d continent/tier mismatch vs country %s", p.ID, p.Country)
		}
		// Placement jitter stays within a few degrees of the centroid.
		if d := geo.DistanceKm(p.Location, c.Centroid); d > 1200 {
			t.Fatalf("probe %d placed %.0f km from %s centroid", p.ID, d, p.Country)
		}
	}
}

func TestGenConfigValidation(t *testing.T) {
	db := geo.World()
	bad := []func(*GenConfig){
		func(c *GenConfig) { c.Count = 0 },
		func(c *GenConfig) { c.Count = 10 }, // below country coverage
		func(c *GenConfig) { c.ContinentShare = map[geo.Continent]float64{geo.Europe: 0.2} },
		func(c *GenConfig) { c.ContinentShare[geo.Europe] = -0.1 },
		func(c *GenConfig) { c.WirelessFrac = 0.9; c.CoreFrac = 0.3 },
		func(c *GenConfig) { c.ContinentShare[geo.ContinentUnknown] = 0.0 },
	}
	for i, mut := range bad {
		cfg := DefaultGenConfig()
		// Deep-copy the share map so mutations don't leak across cases.
		shares := make(map[geo.Continent]float64, len(cfg.ContinentShare))
		for k, v := range cfg.ContinentShare {
			shares[k] = v
		}
		cfg.ContinentShare = shares
		mut(&cfg)
		if _, err := Generate(db, cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestNewPopulationValidation(t *testing.T) {
	if _, err := NewPopulation([]*Probe{nil}); err == nil {
		t.Error("nil probe accepted")
	}
	if _, err := NewPopulation([]*Probe{{ID: 0}}); err == nil {
		t.Error("zero ID accepted")
	}
	if _, err := NewPopulation([]*Probe{{ID: 1}, {ID: 1}}); err == nil {
		t.Error("duplicate ID accepted")
	}
	pop, err := NewPopulation([]*Probe{{ID: 2}, {ID: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if pop.All()[0].ID != 1 {
		t.Error("All() not sorted by ID")
	}
	if p, ok := pop.Lookup(2); !ok || p.ID != 2 {
		t.Error("Lookup(2) failed")
	}
	if _, ok := pop.Lookup(3); ok {
		t.Error("Lookup(3) succeeded")
	}
}

func TestEnvironmentString(t *testing.T) {
	cases := map[Environment]string{EnvHome: "home", EnvAccess: "access", EnvCore: "core", EnvUnknown: "unknown"}
	for e, want := range cases {
		if e.String() != want {
			t.Errorf("%d.String() = %q", e, e.String())
		}
	}
}
