package probe

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
)

// Save writes the population as JSONL, one probe per line — the analogue
// of the probe-metadata dumps RIPE Atlas publishes, so a census can be
// shared and reloaded without regenerating it.
func Save(w io.Writer, pop *Population) error {
	if pop == nil {
		return errors.New("probe: nil population")
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, p := range pop.All() {
		if err := enc.Encode(p); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Load reads a population back from JSONL, validating every entry.
func Load(r io.Reader) (*Population, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var probes []*Probe
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var p Probe
		if err := json.Unmarshal(raw, &p); err != nil {
			return nil, fmt.Errorf("probe: line %d: %w", line, err)
		}
		if !p.Location.Valid() {
			return nil, fmt.Errorf("probe: line %d: invalid location", line)
		}
		probes = append(probes, &p)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return NewPopulation(probes)
}

// SaveFile writes the census to a file.
func SaveFile(path string, pop *Population) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Save(f, pop); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a census from a file.
func LoadFile(path string) (*Population, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}
