// Package probe models the study's vantage points: a synthetic
// RIPE-Atlas-like probe population (Figure 3b) with per-country placement,
// network environments, user tags describing the access link, and the
// privileged-location filtering the paper applies (§4.1).
package probe

import (
	"fmt"
	"sort"

	"repro/internal/geo"
	"repro/internal/netem"
)

// Environment is the network environment a probe is installed in (§4.1:
// core, access, or home).
type Environment uint8

// Environments.
const (
	EnvUnknown Environment = iota
	EnvHome                // residential connection
	EnvAccess              // office / access network
	EnvCore                // datacenter, IXP or backbone (privileged)
)

// String names the environment.
func (e Environment) String() string {
	switch e {
	case EnvHome:
		return "home"
	case EnvAccess:
		return "access"
	case EnvCore:
		return "core"
	default:
		return "unknown"
	}
}

// Well-known user tags, mirroring RIPE Atlas conventions. Wired and
// wireless tag sets drive the Figure 7 filtering.
var (
	WiredTags      = []string{"ethernet", "broadband", "dsl", "fibre"}
	WirelessTags   = []string{"wifi", "wlan", "lte", "4g"}
	PrivilegedTags = []string{"datacentre", "cloud", "ixp"}
)

// Probe is one vantage point.
type Probe struct {
	ID        int           `json:"id"`
	Country   string        `json:"country"` // ISO2
	Continent geo.Continent `json:"continent"`
	Tier      geo.Tier      `json:"tier"`
	Location  geo.Point     `json:"location"`
	Access    netem.Access  `json:"access"`
	Env       Environment   `json:"env"`
	Tags      []string      `json:"tags"`
}

// HasTag reports whether the probe carries the user tag.
func (p *Probe) HasTag(tag string) bool {
	for _, t := range p.Tags {
		if t == tag {
			return true
		}
	}
	return false
}

// HasAnyTag reports whether the probe carries at least one of the tags.
func (p *Probe) HasAnyTag(tags []string) bool {
	for _, t := range tags {
		if p.HasTag(t) {
			return true
		}
	}
	return false
}

// Privileged reports whether the probe is clearly installed in a privileged
// location (datacenter or cloud network). The paper filters these out of all
// analyses using user-defined tags (§4.1).
func (p *Probe) Privileged() bool {
	return p.Env == EnvCore || p.HasAnyTag(PrivilegedTags)
}

// Addr returns the probe's stable simulator address.
func (p *Probe) Addr() string { return fmt.Sprintf("probe/%d", p.ID) }

// Site converts the probe into a netem path endpoint.
func (p *Probe) Site() netem.Site {
	return netem.Site{
		ID:        p.Addr(),
		Location:  p.Location,
		Continent: p.Continent,
		Tier:      p.Tier,
		Access:    p.Access,
	}
}

// Population is an immutable set of probes.
type Population struct {
	probes []*Probe
	byID   map[int]*Probe
}

// NewPopulation indexes the probes. IDs must be unique and positive.
func NewPopulation(probes []*Probe) (*Population, error) {
	pop := &Population{byID: make(map[int]*Probe, len(probes))}
	for _, p := range probes {
		if p == nil {
			return nil, fmt.Errorf("probe: nil probe")
		}
		if p.ID <= 0 {
			return nil, fmt.Errorf("probe: non-positive ID %d", p.ID)
		}
		if _, dup := pop.byID[p.ID]; dup {
			return nil, fmt.Errorf("probe: duplicate ID %d", p.ID)
		}
		pop.byID[p.ID] = p
		pop.probes = append(pop.probes, p)
	}
	sort.Slice(pop.probes, func(i, j int) bool { return pop.probes[i].ID < pop.probes[j].ID })
	return pop, nil
}

// All returns every probe sorted by ID. The slice must not be modified.
func (pop *Population) All() []*Probe { return pop.probes }

// Len returns the population size.
func (pop *Population) Len() int { return len(pop.probes) }

// Lookup resolves a probe by ID.
func (pop *Population) Lookup(id int) (*Probe, bool) {
	p, ok := pop.byID[id]
	return p, ok
}

// Filter returns the probes satisfying pred, in ID order.
func (pop *Population) Filter(pred func(*Probe) bool) []*Probe {
	var out []*Probe
	for _, p := range pop.probes {
		if pred(p) {
			out = append(out, p)
		}
	}
	return out
}

// Public returns the probes that survive the paper's privileged-location
// filter.
func (pop *Population) Public() []*Probe {
	return pop.Filter(func(p *Probe) bool { return !p.Privileged() })
}

// ByContinent returns the public probes on one continent.
func (pop *Population) ByContinent(ct geo.Continent) []*Probe {
	return pop.Filter(func(p *Probe) bool { return !p.Privileged() && p.Continent == ct })
}

// WithAnyTag returns the public probes carrying at least one of the tags.
func (pop *Population) WithAnyTag(tags []string) []*Probe {
	return pop.Filter(func(p *Probe) bool { return !p.Privileged() && p.HasAnyTag(tags) })
}

// Countries returns the distinct ISO2 codes hosting at least one probe,
// sorted.
func (pop *Population) Countries() []string {
	set := make(map[string]bool)
	for _, p := range pop.probes {
		set[p.Country] = true
	}
	out := make([]string, 0, len(set))
	for iso := range set {
		out = append(out, iso)
	}
	sort.Strings(out)
	return out
}

// CountByContinent tallies public probes per continent (Figure 3b).
func (pop *Population) CountByContinent() map[geo.Continent]int {
	out := make(map[geo.Continent]int)
	for _, p := range pop.probes {
		if !p.Privileged() {
			out[p.Continent]++
		}
	}
	return out
}
