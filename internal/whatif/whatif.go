// Package whatif runs counterfactual campaigns for the paper's §5
// discussion: what happens to the wired/wireless gap and to the edge
// feasibility zone if the last mile improves — e.g., if 5G delivers its
// promised 1-10 ms access latency, or if bufferbloat is engineered away?
// The paper argues the feasibility zone's lower edge is pinned to the
// wireless last mile; these scenarios move that edge and measure what
// enters the zone.
package whatif

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/apps"
	"repro/internal/atlas"
	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/netem"
	"repro/internal/probe"
	"repro/internal/results"
)

// Scenario is one counterfactual network configuration.
type Scenario struct {
	Name  string
	Model netem.Config
}

// Baseline is today's network as calibrated in DESIGN.md §5.
func Baseline() Scenario {
	return Scenario{Name: "baseline", Model: netem.DefaultConfig()}
}

// FiveG assumes 5G delivers its promised 1-10 ms wireless access latency
// (§5 cites the IMT-2020 1 ms target while noting early deployments fall
// short) with bufferbloat largely engineered away.
func FiveG() Scenario {
	cfg := netem.DefaultConfig()
	cfg.LastMileWireless = netem.Range{Lo: 1, Hi: 10}
	cfg.BloatProb = cfg.BloatWiredProb
	cfg.LossWireless = cfg.LossWired * 2
	return Scenario{Name: "5g-promised", Model: cfg}
}

// FiveGEarly models the sub-optimal early 5G deployments the paper cites
// [49, 71]: better than LTE, far from the 1 ms promise.
func FiveGEarly() Scenario {
	cfg := netem.DefaultConfig()
	cfg.LastMileWireless = netem.Range{Lo: 6, Hi: 22}
	cfg.BloatProb /= 2
	return Scenario{Name: "5g-early", Model: cfg}
}

// NoBufferbloat isolates the queueing pathology: today's access latencies
// with bufferbloat eliminated.
func NoBufferbloat() Scenario {
	cfg := netem.DefaultConfig()
	cfg.BloatProb = 0
	cfg.BloatWiredProb = 0
	return Scenario{Name: "no-bufferbloat", Model: cfg}
}

// Outcome summarizes one scenario's campaign.
type Outcome struct {
	Scenario        string   `json:"scenario"`
	WirelessRatio   float64  `json:"wireless_ratio"`    // wireless/wired median ratio
	WirelessAddedMs float64  `json:"wireless_added_ms"` // feasibility-zone latency floor
	EUWithinMTP     float64  `json:"eu_within_mtp"`     // per-probe min-RTT fraction
	InZone          []string `json:"in_zone"`           // apps inside the derived zone
	MarketInZoneB   float64  `json:"market_in_zone_busd"`
}

// Report compares scenarios.
type Report struct {
	Outcomes []Outcome `json:"outcomes"` // in input order
}

// Config sizes the counterfactual campaigns.
type Config struct {
	Seed     uint64
	Probes   int
	Campaign atlas.CampaignConfig
}

// DefaultConfig uses a compact world and the 30-day test campaign.
func DefaultConfig() Config {
	return Config{Seed: 1, Probes: 400, Campaign: atlas.TestCampaign()}
}

// Run executes every scenario's campaign over an identical world (same
// probes, same regions, same seed — only the network model changes) and
// reports the resulting last-mile gap and feasibility zone.
func Run(ctx context.Context, cfg Config, scenarios ...Scenario) (*Report, error) {
	if len(scenarios) == 0 {
		return nil, errors.New("whatif: no scenarios")
	}
	if cfg.Probes <= 0 {
		return nil, fmt.Errorf("whatif: non-positive probe count %d", cfg.Probes)
	}
	db := geo.World()
	catalog, err := cloud.Deployment(db)
	if err != nil {
		return nil, err
	}
	gen := probe.DefaultGenConfig()
	gen.Seed = int64(cfg.Seed)
	gen.Count = cfg.Probes
	pop, err := probe.Generate(db, gen)
	if err != nil {
		return nil, err
	}
	idx, err := core.NewIndex(pop, db)
	if err != nil {
		return nil, err
	}
	appCatalog := apps.Paper()

	rep := &Report{}
	for _, sc := range scenarios {
		outcome, err := runScenario(ctx, sc, cfg, pop, catalog, idx, appCatalog)
		if err != nil {
			return nil, fmt.Errorf("whatif: scenario %s: %w", sc.Name, err)
		}
		rep.Outcomes = append(rep.Outcomes, outcome)
	}
	return rep, nil
}

func runScenario(ctx context.Context, sc Scenario, cfg Config, pop *probe.Population,
	catalog *cloud.Catalog, idx *core.Index, appCatalog *apps.Catalog) (Outcome, error) {
	model, err := netem.NewModel(sc.Model, cfg.Seed)
	if err != nil {
		return Outcome{}, err
	}
	platform, err := atlas.NewPlatform(pop, catalog, model)
	if err != nil {
		return Outcome{}, err
	}
	var mem results.Memory
	if _, err := platform.RunCampaign(ctx, cfg.Campaign, mem.Add); err != nil {
		return Outcome{}, err
	}

	lastMile, err := core.LastMile(&mem, idx, cfg.Campaign.Start, 7*24*time.Hour)
	if err != nil {
		return Outcome{}, err
	}
	ratio, err := lastMile.MedianRatio()
	if err != nil {
		return Outcome{}, err
	}
	added, err := lastMile.AddedLatencyMs()
	if err != nil {
		return Outcome{}, err
	}
	minRTT, err := core.MinRTTByProbe(&mem, idx)
	if err != nil {
		return Outcome{}, err
	}
	eu, err := minRTT.FractionWithin(geo.Europe, core.MTPms)
	if err != nil {
		return Outcome{}, err
	}

	// A better last mile lowers the feasibility zone's floor. Clamp at
	// 1 ms: even a perfect access link leaves some latency.
	floor := added
	if floor < 1 {
		floor = 1
	}
	zone, err := apps.DeriveZone(floor, core.HRTms, 1)
	if err != nil {
		return Outcome{}, err
	}
	feas, err := apps.Feasibility(appCatalog, zone)
	if err != nil {
		return Outcome{}, err
	}
	return Outcome{
		Scenario:        sc.Name,
		WirelessRatio:   ratio,
		WirelessAddedMs: added,
		EUWithinMTP:     eu,
		InZone:          feas.InZone(),
		MarketInZoneB:   feas.MarketInZone,
	}, nil
}

// Format renders the comparison as text lines.
func (r *Report) Format() []string {
	lines := []string{"scenario         wireless-ratio  added-ms  EU<=MTP  in-zone-market  in-zone-apps"}
	for _, o := range r.Outcomes {
		lines = append(lines, fmt.Sprintf("%-16s %13.2fx %8.1f  %7.2f  $%12.0fB  %d",
			o.Scenario, o.WirelessRatio, o.WirelessAddedMs, o.EUWithinMTP, o.MarketInZoneB, len(o.InZone)))
	}
	return lines
}

// Lookup finds a scenario's outcome.
func (r *Report) Lookup(name string) (Outcome, bool) {
	for _, o := range r.Outcomes {
		if o.Scenario == name {
			return o, true
		}
	}
	return Outcome{}, false
}
