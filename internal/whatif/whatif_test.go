package whatif

import (
	"context"
	"testing"
	"time"

	"repro/internal/atlas"
)

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Probes = 300
	c := atlas.TestCampaign()
	c.End = c.Start.Add(14 * 24 * time.Hour)
	cfg.Campaign = c
	return cfg
}

func TestFiveGShiftsTheZone(t *testing.T) {
	rep, err := Run(context.Background(), smallConfig(), Baseline(), FiveG())
	if err != nil {
		t.Fatal(err)
	}
	base, ok := rep.Lookup("baseline")
	if !ok {
		t.Fatal("baseline missing")
	}
	fiveG, ok := rep.Lookup("5g-promised")
	if !ok {
		t.Fatal("5g missing")
	}
	// The promised 5G collapses the wired/wireless gap...
	if fiveG.WirelessRatio >= base.WirelessRatio {
		t.Errorf("5G ratio %.2f >= baseline %.2f", fiveG.WirelessRatio, base.WirelessRatio)
	}
	if fiveG.WirelessAddedMs >= base.WirelessAddedMs {
		t.Errorf("5G added %.1f >= baseline %.1f", fiveG.WirelessAddedMs, base.WirelessAddedMs)
	}
	// ...and lowers the feasibility-zone floor, letting more (or at least
	// as many) applications in.
	if len(fiveG.InZone) < len(base.InZone) {
		t.Errorf("5G zone (%v) smaller than baseline (%v)", fiveG.InZone, base.InZone)
	}
	// The paper's key strict-latency exclusions (AR/VR at the 7 ms MTP
	// compute budget) come within reach once the floor drops under 7 ms.
	if fiveG.WirelessAddedMs < 6 {
		found := false
		for _, name := range fiveG.InZone {
			if name == "AR/VR" {
				found = true
			}
		}
		if !found {
			t.Errorf("floor %.1f ms but AR/VR still outside: %v", fiveG.WirelessAddedMs, fiveG.InZone)
		}
	}
}

func TestEarly5GIsIncremental(t *testing.T) {
	rep, err := Run(context.Background(), smallConfig(), Baseline(), FiveGEarly(), FiveG())
	if err != nil {
		t.Fatal(err)
	}
	base, _ := rep.Lookup("baseline")
	early, _ := rep.Lookup("5g-early")
	promised, _ := rep.Lookup("5g-promised")
	// Early 5G sits between today and the promise (§5's skepticism).
	if !(promised.WirelessAddedMs <= early.WirelessAddedMs && early.WirelessAddedMs <= base.WirelessAddedMs) {
		t.Errorf("ordering broken: promised=%.1f early=%.1f base=%.1f",
			promised.WirelessAddedMs, early.WirelessAddedMs, base.WirelessAddedMs)
	}
}

func TestNoBufferbloatHelpsTail(t *testing.T) {
	rep, err := Run(context.Background(), smallConfig(), Baseline(), NoBufferbloat())
	if err != nil {
		t.Fatal(err)
	}
	base, _ := rep.Lookup("baseline")
	noBloat, _ := rep.Lookup("no-bufferbloat")
	// Removing bufferbloat cannot hurt the wireless medians.
	if noBloat.WirelessAddedMs > base.WirelessAddedMs*1.1 {
		t.Errorf("no-bloat added %.1f > baseline %.1f", noBloat.WirelessAddedMs, base.WirelessAddedMs)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(context.Background(), DefaultConfig()); err == nil {
		t.Error("no scenarios accepted")
	}
	bad := DefaultConfig()
	bad.Probes = 0
	if _, err := Run(context.Background(), bad, Baseline()); err == nil {
		t.Error("zero probes accepted")
	}
	badModel := Baseline()
	badModel.Model.FiberKmPerMs = -1
	if _, err := Run(context.Background(), smallConfig(), badModel); err == nil {
		t.Error("invalid model accepted")
	}
}

func TestFormat(t *testing.T) {
	rep, err := Run(context.Background(), smallConfig(), Baseline())
	if err != nil {
		t.Fatal(err)
	}
	lines := rep.Format()
	if len(lines) != 2 {
		t.Errorf("Format produced %d lines", len(lines))
	}
	if _, ok := rep.Lookup("nope"); ok {
		t.Error("unknown scenario found")
	}
}
