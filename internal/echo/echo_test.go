package echo

import (
	"bytes"
	"encoding/binary"
	"testing"
	"testing/quick"
)

func TestRoundTrip(t *testing.T) {
	m := &Message{
		Type:         TypeEchoRequest,
		ID:           0x1234,
		Seq:          42,
		SentUnixNano: 1567296000123456789,
		Payload:      []byte("latency shears"),
	}
	buf, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != m.Type || got.Code != m.Code || got.ID != m.ID ||
		got.Seq != m.Seq || got.SentUnixNano != m.SentUnixNano ||
		!bytes.Equal(got.Payload, m.Payload) {
		t.Errorf("round trip mismatch: %+v vs %+v", got, m)
	}
}

func TestRoundTripProperty(t *testing.T) {
	prop := func(typ, code uint8, id, seq uint16, ts int64, payload []byte) bool {
		if len(payload) > MaxPayload {
			payload = payload[:MaxPayload]
		}
		m := &Message{Type: typ, Code: code, ID: id, Seq: seq, SentUnixNano: ts, Payload: payload}
		buf, err := m.Marshal()
		if err != nil {
			return false
		}
		got, err := Unmarshal(buf)
		if err != nil {
			return false
		}
		return got.Type == typ && got.Code == code && got.ID == id &&
			got.Seq == seq && got.SentUnixNano == ts && bytes.Equal(got.Payload, payload)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := Unmarshal(make([]byte, HeaderLen-1)); err != ErrTruncated {
		t.Errorf("short buffer: %v, want ErrTruncated", err)
	}
	if _, err := Unmarshal(make([]byte, HeaderLen+MaxPayload+1)); err != ErrPayloadSize {
		t.Errorf("oversize buffer: %v, want ErrPayloadSize", err)
	}
	m := &Message{Type: TypeEchoRequest, ID: 1, Seq: 2}
	buf, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	buf[8] ^= 0xff // corrupt timestamp
	if _, err := Unmarshal(buf); err != ErrChecksum {
		t.Errorf("corrupted buffer: %v, want ErrChecksum", err)
	}
}

func TestMarshalRejectsOversizePayload(t *testing.T) {
	m := &Message{Type: TypeEchoRequest, Payload: make([]byte, MaxPayload+1)}
	if _, err := m.Marshal(); err != ErrPayloadSize {
		t.Errorf("got %v, want ErrPayloadSize", err)
	}
}

func TestCorruptionDetectedProperty(t *testing.T) {
	// Flipping any single byte must be caught by the checksum (single-bit
	// and single-byte errors are within the Internet checksum's guarantee).
	m := &Message{Type: TypeEchoRequest, ID: 7, Seq: 9, SentUnixNano: 12345, Payload: []byte("abcdef")}
	buf, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	for i := range buf {
		corrupt := append([]byte(nil), buf...)
		corrupt[i] ^= 0x5a
		if _, err := Unmarshal(corrupt); err == nil {
			// A flip inside the checksum field itself is also detected as a
			// mismatch, so any nil error is a failure.
			t.Errorf("corruption at byte %d not detected", i)
		}
	}
}

func TestReply(t *testing.T) {
	req := &Message{Type: TypeEchoRequest, ID: 5, Seq: 6, SentUnixNano: 777, Payload: []byte("x")}
	rep := req.Reply()
	if rep.Type != TypeEchoReply {
		t.Errorf("reply type = %d", rep.Type)
	}
	if rep.ID != req.ID || rep.Seq != req.Seq || rep.SentUnixNano != req.SentUnixNano {
		t.Error("reply did not preserve identity fields")
	}
	// Reply payload is a copy, not an alias.
	rep.Payload[0] = 'y'
	if req.Payload[0] != 'x' {
		t.Error("reply aliases request payload")
	}
}

func TestChecksumKnownVector(t *testing.T) {
	// RFC 1071 example: 00 01 f2 03 f4 f5 f6 f7 -> checksum 0x220d.
	data := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Checksum(data); got != 0x220d {
		t.Errorf("Checksum = %#04x, want 0x220d", got)
	}
	// Odd-length input is padded with a zero byte.
	odd := []byte{0xab}
	if got := Checksum(odd); got != ^uint16(0xab00) {
		t.Errorf("odd checksum = %#04x", got)
	}
}

func TestChecksumVerifiesToZero(t *testing.T) {
	// A message with its checksum in place sums to 0xffff complemented: 0.
	m := &Message{Type: TypeEchoRequest, ID: 99, Seq: 100, Payload: []byte("check")}
	buf, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	var sum uint32
	for i := 0; i+1 < len(buf); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(buf[i : i+2]))
	}
	if len(buf)%2 == 1 {
		sum += uint32(buf[len(buf)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	if uint16(sum) != 0xffff {
		t.Errorf("message does not verify: sum=%#04x", sum)
	}
}
