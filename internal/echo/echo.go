// Package echo defines the wire format of the measurement ping: an
// ICMP-echo-like request/reply protocol with an Internet checksum. The
// pinger engine and the datacenter responders speak it over the virtual
// network or real UDP sockets.
package echo

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Message types.
const (
	TypeEchoReply   uint8 = 0
	TypeEchoRequest uint8 = 8
)

// HeaderLen is the fixed encoded size before the payload.
const HeaderLen = 16

// MaxPayload bounds the variable part to keep datagrams under typical MTUs.
const MaxPayload = 1400

// Common decode errors.
var (
	ErrTruncated   = errors.New("echo: message truncated")
	ErrChecksum    = errors.New("echo: checksum mismatch")
	ErrPayloadSize = fmt.Errorf("echo: payload exceeds %d bytes", MaxPayload)
)

// Message is one echo request or reply.
//
// Wire layout (big endian):
//
//	byte  0     Type
//	byte  1     Code (always 0)
//	bytes 2-3   Checksum (Internet checksum over the whole message with
//	            the checksum field zeroed)
//	bytes 4-5   ID (per-pinger identifier)
//	bytes 6-7   Seq (per-probe sequence number)
//	bytes 8-15  SentUnixNano (sender timestamp)
//	bytes 16-   Payload
type Message struct {
	Type         uint8
	Code         uint8
	ID           uint16
	Seq          uint16
	SentUnixNano int64
	Payload      []byte
}

// Marshal encodes the message and computes its checksum.
func (m *Message) Marshal() ([]byte, error) {
	if len(m.Payload) > MaxPayload {
		return nil, ErrPayloadSize
	}
	buf := make([]byte, HeaderLen+len(m.Payload))
	buf[0] = m.Type
	buf[1] = m.Code
	// bytes 2-3 left zero for checksum computation
	binary.BigEndian.PutUint16(buf[4:6], m.ID)
	binary.BigEndian.PutUint16(buf[6:8], m.Seq)
	binary.BigEndian.PutUint64(buf[8:16], uint64(m.SentUnixNano))
	copy(buf[HeaderLen:], m.Payload)
	binary.BigEndian.PutUint16(buf[2:4], Checksum(buf))
	return buf, nil
}

// Unmarshal decodes and validates a message, verifying the checksum.
func Unmarshal(buf []byte) (*Message, error) {
	if len(buf) < HeaderLen {
		return nil, ErrTruncated
	}
	if len(buf) > HeaderLen+MaxPayload {
		return nil, ErrPayloadSize
	}
	want := binary.BigEndian.Uint16(buf[2:4])
	scratch := make([]byte, len(buf))
	copy(scratch, buf)
	scratch[2], scratch[3] = 0, 0
	if got := Checksum(scratch); got != want {
		return nil, ErrChecksum
	}
	m := &Message{
		Type:         buf[0],
		Code:         buf[1],
		ID:           binary.BigEndian.Uint16(buf[4:6]),
		Seq:          binary.BigEndian.Uint16(buf[6:8]),
		SentUnixNano: int64(binary.BigEndian.Uint64(buf[8:16])),
	}
	if len(buf) > HeaderLen {
		m.Payload = append([]byte(nil), buf[HeaderLen:]...)
	}
	return m, nil
}

// Reply builds the echo reply for a request, preserving ID, Seq, timestamp
// and payload (like ICMP echo).
func (m *Message) Reply() *Message {
	return &Message{
		Type:         TypeEchoReply,
		Code:         0,
		ID:           m.ID,
		Seq:          m.Seq,
		SentUnixNano: m.SentUnixNano,
		Payload:      append([]byte(nil), m.Payload...),
	}
}

// Checksum computes the 16-bit one's-complement Internet checksum (RFC
// 1071) over data.
func Checksum(data []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(data); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(data[i : i+2]))
	}
	if len(data)%2 == 1 {
		sum += uint32(data[len(data)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	return ^uint16(sum)
}
