// Package stats is the statistics substrate for the analysis pipeline:
// exact empirical distributions (CDFs, quantiles), streaming quantile
// estimation for datasets too large to hold in memory, histograms, and
// time-binned series used by the figure generators.
package stats

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty is returned by queries against a distribution with no samples.
var ErrEmpty = errors.New("stats: empty distribution")

// Dist accumulates float64 samples and answers exact empirical-distribution
// queries. The zero value is ready to use.
type Dist struct {
	samples []float64
	sorted  bool
	sum     float64
	sumSq   float64
	// span, when non-nil, stands in for the sample history: a slab of
	// ascending IEEE-754 little-endian sample bits still in serialized
	// form, aliasing the snapshot buffer it was decoded from. While a
	// span is pending, samples holds only the overlay of values added
	// since decode, so absorbing a delta costs O(delta) regardless of
	// history size. Order-statistic queries select across the span and
	// the sorted overlay without copying; only a query that needs the
	// full buffer materializes. This keeps snapshot-resumed analysis
	// from paying a decode copy for distributions a delta merge and its
	// report barely touch.
	span []byte
}

// materialize merges a pending span and its overlay into the owned
// sample buffer. Span bits with an all-ones exponent (NaN or ±Inf —
// values Add would have rejected) fail the decode here, on first touch,
// rather than up front for distributions that are never read.
func (d *Dist) materialize() error {
	if d.span == nil {
		return nil
	}
	raw, ov := d.span, d.samples
	d.span = nil
	if !d.sorted {
		sort.Float64s(ov)
	}
	n, m := len(raw)/8, len(ov)
	total := n + m
	// Headroom beyond the merged length lets a later delta merge fold a
	// small appended tail in place instead of reallocating and copying
	// the whole buffer (see Dist.mergeSorted).
	out := make([]float64, total, total+total/8+64)
	i, j := 0, 0
	for k := range out {
		if i < n {
			bits := binary.LittleEndian.Uint64(raw[8*i:])
			if bits&0x7FF0000000000000 == 0x7FF0000000000000 {
				return fmt.Errorf("stats: invalid dist sample %v in state", math.Float64frombits(bits))
			}
			if v := math.Float64frombits(bits); j >= m || v <= ov[j] {
				out[k] = v
				i++
				continue
			}
		}
		out[k] = ov[j]
		j++
	}
	d.samples = out
	d.sorted = true
	return nil
}

// at returns the k-th sample of the span slab.
func (d *Dist) at(k int) (float64, error) {
	bits := binary.LittleEndian.Uint64(d.span[8*k:])
	if bits&0x7FF0000000000000 == 0x7FF0000000000000 {
		return 0, fmt.Errorf("stats: invalid dist sample %v in state", math.Float64frombits(bits))
	}
	return math.Float64frombits(bits), nil
}

// Add appends one sample. NaN and Inf samples are rejected. With a span
// pending, the sample lands in the overlay and the history stays
// serialized.
func (d *Dist) Add(v float64) error {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return fmt.Errorf("stats: invalid sample %v", v)
	}
	d.samples = append(d.samples, v)
	d.sorted = false
	d.sum += v
	d.sumSq += v * v
	return nil
}

// AddAll appends many samples, stopping at the first invalid one.
func (d *Dist) AddAll(vs ...float64) error { return d.AddBulk(vs) }

// Clone returns an independent copy: no later mutation of either side
// — adds, merges, lazy materialization — can touch the other. A
// pending span slab is copied too, so the clone never aliases a
// snapshot buffer whose owner may keep mutating.
func (d *Dist) Clone() *Dist {
	c := &Dist{sorted: d.sorted, sum: d.sum, sumSq: d.sumSq}
	if d.samples != nil {
		c.samples = append(make([]float64, 0, len(d.samples)), d.samples...)
	}
	if d.span != nil {
		c.span = append(make([]byte, 0, len(d.span)), d.span...)
	}
	return c
}

// AddBulk appends a batch of samples in order — the batch-kernel entry
// point. Behaviour matches calling Add per value (the valid prefix
// before the first invalid sample is appended, then the error), but
// the buffer grows once per batch instead of once per value.
func (d *Dist) AddBulk(vs []float64) error {
	bad := -1
	for k, v := range vs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			bad = k
			break
		}
	}
	take := vs
	if bad >= 0 {
		take = vs[:bad]
	}
	if len(take) > 0 {
		d.samples = append(d.samples, take...)
		d.sorted = false
		for _, v := range take {
			d.sum += v
			d.sumSq += v * v
		}
	}
	if bad >= 0 {
		return fmt.Errorf("stats: invalid sample %v", vs[bad])
	}
	return nil
}

// N returns the number of samples.
func (d *Dist) N() int {
	if d.span != nil {
		return len(d.span)/8 + len(d.samples)
	}
	return len(d.samples)
}

// Mean returns the arithmetic mean.
func (d *Dist) Mean() (float64, error) {
	if d.N() == 0 {
		return 0, ErrEmpty
	}
	return d.sum / float64(d.N()), nil
}

// StdDev returns the population standard deviation.
func (d *Dist) StdDev() (float64, error) {
	n := float64(d.N())
	if n == 0 {
		return 0, ErrEmpty
	}
	mean := d.sum / n
	variance := d.sumSq/n - mean*mean
	if variance < 0 { // numerical noise
		variance = 0
	}
	return math.Sqrt(variance), nil
}

func (d *Dist) ensureSorted() {
	if !d.sorted {
		sort.Float64s(d.samples)
		d.sorted = true
	}
}

// Min returns the smallest sample.
func (d *Dist) Min() (float64, error) {
	if d.N() == 0 {
		return 0, ErrEmpty
	}
	d.ensureSorted()
	if d.span != nil {
		v, err := d.at(0)
		if err != nil {
			return 0, err
		}
		if len(d.samples) > 0 && d.samples[0] < v {
			v = d.samples[0]
		}
		return v, nil
	}
	return d.samples[0], nil
}

// Max returns the largest sample.
func (d *Dist) Max() (float64, error) {
	if d.N() == 0 {
		return 0, ErrEmpty
	}
	d.ensureSorted()
	if d.span != nil {
		v, err := d.at(len(d.span)/8 - 1)
		if err != nil {
			return 0, err
		}
		if m := len(d.samples); m > 0 && d.samples[m-1] > v {
			v = d.samples[m-1]
		}
		return v, nil
	}
	return d.samples[len(d.samples)-1], nil
}

// Quantile returns the q-quantile (0 <= q <= 1) using linear interpolation
// between order statistics (type-7, the common default).
func (d *Dist) Quantile(q float64) (float64, error) {
	n := d.N()
	if n == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		return 0, fmt.Errorf("stats: quantile %v out of [0,1]", q)
	}
	d.ensureSorted()
	if n == 1 {
		return d.orderStat(0)
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	vlo, err := d.orderStat(lo)
	if err != nil {
		return 0, err
	}
	if lo == hi {
		return vlo, nil
	}
	vhi, err := d.orderStat(hi)
	if err != nil {
		return 0, err
	}
	frac := pos - float64(lo)
	return vlo*(1-frac) + vhi*frac, nil
}

// orderStat returns the k-th smallest sample. The buffer (or, with a
// span pending, the overlay) must already be sorted.
func (d *Dist) orderStat(k int) (float64, error) {
	if d.span != nil {
		return d.selectMerged(k)
	}
	return d.samples[k], nil
}

// selectMerged returns the k-th smallest element of the multiset formed
// by the span slab and the sorted overlay, by binary-searching the
// merge split point — O(log n) span reads, no materialization.
func (d *Dist) selectMerged(k int) (float64, error) {
	ov := d.samples
	n, m := len(d.span)/8, len(ov)
	// i counts elements taken from the span, j = k+1-i from the overlay.
	// Find the largest feasible i with span[i-1] <= ov[j]; the matching
	// condition ov[j-1] <= span[i] then holds automatically.
	lo, hi := k+1-m, k+1
	if lo < 0 {
		lo = 0
	}
	if hi > n {
		hi = n
	}
	for lo < hi {
		i := (lo + hi + 1) / 2
		v, err := d.at(i - 1)
		if err != nil {
			return 0, err
		}
		if j := k + 1 - i; j >= m || v <= ov[j] {
			lo = i
		} else {
			hi = i - 1
		}
	}
	i := lo
	j := k + 1 - i
	var best float64
	have := false
	if i > 0 {
		v, err := d.at(i - 1)
		if err != nil {
			return 0, err
		}
		best, have = v, true
	}
	if j > 0 && (!have || ov[j-1] > best) {
		best = ov[j-1]
	}
	return best, nil
}

// Median returns the 0.5-quantile.
func (d *Dist) Median() (float64, error) { return d.Quantile(0.5) }

// CDF returns the empirical probability P(X <= x).
func (d *Dist) CDF(x float64) (float64, error) {
	if d.N() == 0 {
		return 0, ErrEmpty
	}
	if err := d.materialize(); err != nil {
		return 0, err
	}
	d.ensureSorted()
	// Index of first sample > x.
	idx := sort.SearchFloat64s(d.samples, math.Nextafter(x, math.Inf(1)))
	return float64(idx) / float64(len(d.samples)), nil
}

// CDFPoint is one (x, P(X<=x)) pair of an empirical CDF curve.
type CDFPoint struct {
	X float64 `json:"x"`
	P float64 `json:"p"`
}

// Curve samples the empirical CDF at the given x values, producing the
// series a figure plots.
func (d *Dist) Curve(xs []float64) ([]CDFPoint, error) {
	if d.N() == 0 {
		return nil, ErrEmpty
	}
	out := make([]CDFPoint, 0, len(xs))
	for _, x := range xs {
		p, err := d.CDF(x)
		if err != nil {
			return nil, err
		}
		out = append(out, CDFPoint{X: x, P: p})
	}
	return out, nil
}

// Summary bundles the descriptive statistics reported for a distribution.
type Summary struct {
	N      int     `json:"n"`
	Min    float64 `json:"min"`
	P25    float64 `json:"p25"`
	Median float64 `json:"median"`
	P75    float64 `json:"p75"`
	P95    float64 `json:"p95"`
	Max    float64 `json:"max"`
	Mean   float64 `json:"mean"`
	StdDev float64 `json:"stddev"`
}

// Summarize computes a Summary of the distribution.
func (d *Dist) Summarize() (Summary, error) {
	if d.N() == 0 {
		return Summary{}, ErrEmpty
	}
	s := Summary{N: d.N()}
	var err error
	if s.Min, err = d.Min(); err != nil {
		return Summary{}, err
	}
	if s.P25, err = d.Quantile(0.25); err != nil {
		return Summary{}, err
	}
	if s.Median, err = d.Median(); err != nil {
		return Summary{}, err
	}
	if s.P75, err = d.Quantile(0.75); err != nil {
		return Summary{}, err
	}
	if s.P95, err = d.Quantile(0.95); err != nil {
		return Summary{}, err
	}
	if s.Max, err = d.Max(); err != nil {
		return Summary{}, err
	}
	if s.Mean, err = d.Mean(); err != nil {
		return Summary{}, err
	}
	if s.StdDev, err = d.StdDev(); err != nil {
		return Summary{}, err
	}
	return s, nil
}
