// Package stats is the statistics substrate for the analysis pipeline:
// exact empirical distributions (CDFs, quantiles), streaming quantile
// estimation for datasets too large to hold in memory, histograms, and
// time-binned series used by the figure generators.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty is returned by queries against a distribution with no samples.
var ErrEmpty = errors.New("stats: empty distribution")

// Dist accumulates float64 samples and answers exact empirical-distribution
// queries. The zero value is ready to use.
type Dist struct {
	samples []float64
	sorted  bool
	sum     float64
	sumSq   float64
}

// Add appends one sample. NaN and Inf samples are rejected.
func (d *Dist) Add(v float64) error {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return fmt.Errorf("stats: invalid sample %v", v)
	}
	d.samples = append(d.samples, v)
	d.sorted = false
	d.sum += v
	d.sumSq += v * v
	return nil
}

// AddAll appends many samples, stopping at the first invalid one.
func (d *Dist) AddAll(vs ...float64) error {
	for _, v := range vs {
		if err := d.Add(v); err != nil {
			return err
		}
	}
	return nil
}

// N returns the number of samples.
func (d *Dist) N() int { return len(d.samples) }

// Mean returns the arithmetic mean.
func (d *Dist) Mean() (float64, error) {
	if len(d.samples) == 0 {
		return 0, ErrEmpty
	}
	return d.sum / float64(len(d.samples)), nil
}

// StdDev returns the population standard deviation.
func (d *Dist) StdDev() (float64, error) {
	n := float64(len(d.samples))
	if n == 0 {
		return 0, ErrEmpty
	}
	mean := d.sum / n
	variance := d.sumSq/n - mean*mean
	if variance < 0 { // numerical noise
		variance = 0
	}
	return math.Sqrt(variance), nil
}

func (d *Dist) ensureSorted() {
	if !d.sorted {
		sort.Float64s(d.samples)
		d.sorted = true
	}
}

// Min returns the smallest sample.
func (d *Dist) Min() (float64, error) {
	if len(d.samples) == 0 {
		return 0, ErrEmpty
	}
	d.ensureSorted()
	return d.samples[0], nil
}

// Max returns the largest sample.
func (d *Dist) Max() (float64, error) {
	if len(d.samples) == 0 {
		return 0, ErrEmpty
	}
	d.ensureSorted()
	return d.samples[len(d.samples)-1], nil
}

// Quantile returns the q-quantile (0 <= q <= 1) using linear interpolation
// between order statistics (type-7, the common default).
func (d *Dist) Quantile(q float64) (float64, error) {
	if len(d.samples) == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		return 0, fmt.Errorf("stats: quantile %v out of [0,1]", q)
	}
	d.ensureSorted()
	if len(d.samples) == 1 {
		return d.samples[0], nil
	}
	pos := q * float64(len(d.samples)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return d.samples[lo], nil
	}
	frac := pos - float64(lo)
	return d.samples[lo]*(1-frac) + d.samples[hi]*frac, nil
}

// Median returns the 0.5-quantile.
func (d *Dist) Median() (float64, error) { return d.Quantile(0.5) }

// CDF returns the empirical probability P(X <= x).
func (d *Dist) CDF(x float64) (float64, error) {
	if len(d.samples) == 0 {
		return 0, ErrEmpty
	}
	d.ensureSorted()
	// Index of first sample > x.
	idx := sort.SearchFloat64s(d.samples, math.Nextafter(x, math.Inf(1)))
	return float64(idx) / float64(len(d.samples)), nil
}

// CDFPoint is one (x, P(X<=x)) pair of an empirical CDF curve.
type CDFPoint struct {
	X float64 `json:"x"`
	P float64 `json:"p"`
}

// Curve samples the empirical CDF at the given x values, producing the
// series a figure plots.
func (d *Dist) Curve(xs []float64) ([]CDFPoint, error) {
	if len(d.samples) == 0 {
		return nil, ErrEmpty
	}
	out := make([]CDFPoint, 0, len(xs))
	for _, x := range xs {
		p, err := d.CDF(x)
		if err != nil {
			return nil, err
		}
		out = append(out, CDFPoint{X: x, P: p})
	}
	return out, nil
}

// Summary bundles the descriptive statistics reported for a distribution.
type Summary struct {
	N      int     `json:"n"`
	Min    float64 `json:"min"`
	P25    float64 `json:"p25"`
	Median float64 `json:"median"`
	P75    float64 `json:"p75"`
	P95    float64 `json:"p95"`
	Max    float64 `json:"max"`
	Mean   float64 `json:"mean"`
	StdDev float64 `json:"stddev"`
}

// Summarize computes a Summary of the distribution.
func (d *Dist) Summarize() (Summary, error) {
	if len(d.samples) == 0 {
		return Summary{}, ErrEmpty
	}
	s := Summary{N: len(d.samples)}
	var err error
	if s.Min, err = d.Min(); err != nil {
		return Summary{}, err
	}
	if s.P25, err = d.Quantile(0.25); err != nil {
		return Summary{}, err
	}
	if s.Median, err = d.Median(); err != nil {
		return Summary{}, err
	}
	if s.P75, err = d.Quantile(0.75); err != nil {
		return Summary{}, err
	}
	if s.P95, err = d.Quantile(0.95); err != nil {
		return Summary{}, err
	}
	if s.Max, err = d.Max(); err != nil {
		return Summary{}, err
	}
	if s.Mean, err = d.Mean(); err != nil {
		return Summary{}, err
	}
	if s.StdDev, err = d.StdDev(); err != nil {
		return Summary{}, err
	}
	return s, nil
}
