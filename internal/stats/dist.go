// Package stats is the statistics substrate for the analysis pipeline:
// exact empirical distributions (CDFs, quantiles), streaming quantile
// estimation for datasets too large to hold in memory, histograms, and
// time-binned series used by the figure generators.
package stats

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty is returned by queries against a distribution with no samples.
var ErrEmpty = errors.New("stats: empty distribution")

// Dist accumulates float64 samples and answers exact empirical-distribution
// queries. The zero value is ready to use.
type Dist struct {
	samples []float64
	sorted  bool
	sum     float64
	sumSq   float64
	// spans, when non-empty, stand in for the sample history: slabs of
	// ascending IEEE-754 little-endian sample bits still in serialized
	// form, aliasing the buffers they were decoded from. While spans are
	// pending, samples holds only the overlay of values added since
	// decode, so absorbing a delta costs O(delta) regardless of history
	// size. A snapshot-decoded distribution carries one span; a window
	// composed from temporal-index nodes carries one span per node.
	// Counting queries (CDF, N, Min, Max) answer across the spans and
	// the sorted overlay without copying; only a query that needs the
	// full buffer materializes. This keeps snapshot-resumed analysis —
	// and index-composed windows, whose whole point is to not touch
	// every sample per query — from paying a merge they don't need.
	spans [][]byte
}

// materialize merges the pending spans and the overlay into the owned
// sample buffer. Span bits with an all-ones exponent (NaN or ±Inf —
// values Add would have rejected) fail the decode here, on first touch,
// rather than up front for distributions that are never read.
func (d *Dist) materialize() error {
	if len(d.spans) == 0 {
		return nil
	}
	if len(d.spans) == 1 {
		raw, ov := d.spans[0], d.samples
		d.spans = nil
		if !d.sorted {
			sort.Float64s(ov)
		}
		n, m := len(raw)/8, len(ov)
		total := n + m
		// Headroom beyond the merged length lets a later delta merge fold a
		// small appended tail in place instead of reallocating and copying
		// the whole buffer (see Dist.mergeSorted).
		out := make([]float64, total, total+total/8+64)
		i, j := 0, 0
		for k := range out {
			if i < n {
				bits := binary.LittleEndian.Uint64(raw[8*i:])
				if bits&0x7FF0000000000000 == 0x7FF0000000000000 {
					return fmt.Errorf("stats: invalid dist sample %v in state", math.Float64frombits(bits))
				}
				if v := math.Float64frombits(bits); j >= m || v <= ov[j] {
					out[k] = v
					i++
					continue
				}
			}
			out[k] = ov[j]
			j++
		}
		d.samples = out
		d.sorted = true
		return nil
	}
	// Multiple spans: decode every slab, then combine the sorted runs by
	// a tournament of linear two-way merges — O(n log k), never a re-sort
	// of the union.
	runs := make([][]float64, 0, len(d.spans)+1)
	for _, s := range d.spans {
		run := make([]float64, len(s)/8)
		for i := range run {
			bits := binary.LittleEndian.Uint64(s[8*i:])
			if bits&0x7FF0000000000000 == 0x7FF0000000000000 {
				return fmt.Errorf("stats: invalid dist sample %v in state", math.Float64frombits(bits))
			}
			run[i] = math.Float64frombits(bits)
		}
		runs = append(runs, run)
	}
	if !d.sorted {
		sort.Float64s(d.samples)
	}
	if len(d.samples) > 0 {
		runs = append(runs, d.samples)
	}
	d.spans = nil
	for len(runs) > 1 {
		next := runs[:0]
		for i := 0; i < len(runs); i += 2 {
			if i+1 == len(runs) {
				next = append(next, runs[i])
				break
			}
			next = append(next, mergeTwoSorted(runs[i], runs[i+1]))
		}
		runs = next
	}
	d.samples = runs[0]
	d.sorted = true
	return nil
}

// spanAt returns the k-th sample of one span slab.
func spanAt(s []byte, k int) (float64, error) {
	bits := binary.LittleEndian.Uint64(s[8*k:])
	if bits&0x7FF0000000000000 == 0x7FF0000000000000 {
		return 0, fmt.Errorf("stats: invalid dist sample %v in state", math.Float64frombits(bits))
	}
	return math.Float64frombits(bits), nil
}

// spanCountBelow returns how many slab samples are < y, by binary
// search over the serialized ascending bits.
func spanCountBelow(s []byte, y float64) (int, error) {
	var err error
	idx := sort.Search(len(s)/8, func(i int) bool {
		v, e := spanAt(s, i)
		if e != nil {
			err = e
			return true
		}
		return v >= y
	})
	if err != nil {
		return 0, err
	}
	return idx, nil
}

// Add appends one sample. NaN and Inf samples are rejected. With spans
// pending, the sample lands in the overlay and the history stays
// serialized.
func (d *Dist) Add(v float64) error {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return fmt.Errorf("stats: invalid sample %v", v)
	}
	d.samples = append(d.samples, v)
	d.sorted = false
	d.sum += v
	d.sumSq += v * v
	return nil
}

// AddAll appends many samples, stopping at the first invalid one.
func (d *Dist) AddAll(vs ...float64) error { return d.AddBulk(vs) }

// Clone returns an independent copy: no later mutation of either side
// — adds, merges, lazy materialization — can touch the other. A
// pending span slab is copied too, so the clone never aliases a
// snapshot buffer whose owner may keep mutating.
func (d *Dist) Clone() *Dist {
	c := &Dist{sorted: d.sorted, sum: d.sum, sumSq: d.sumSq}
	if d.samples != nil {
		c.samples = append(make([]float64, 0, len(d.samples)), d.samples...)
	}
	if d.spans != nil {
		c.spans = make([][]byte, len(d.spans))
		for i, s := range d.spans {
			c.spans[i] = append(make([]byte, 0, len(s)), s...)
		}
	}
	return c
}

// AddBulk appends a batch of samples in order — the batch-kernel entry
// point. Behaviour matches calling Add per value (the valid prefix
// before the first invalid sample is appended, then the error), but
// the buffer grows once per batch instead of once per value.
func (d *Dist) AddBulk(vs []float64) error {
	bad := -1
	for k, v := range vs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			bad = k
			break
		}
	}
	take := vs
	if bad >= 0 {
		take = vs[:bad]
	}
	if len(take) > 0 {
		d.samples = append(d.samples, take...)
		d.sorted = false
		for _, v := range take {
			d.sum += v
			d.sumSq += v * v
		}
	}
	if bad >= 0 {
		return fmt.Errorf("stats: invalid sample %v", vs[bad])
	}
	return nil
}

// N returns the number of samples.
func (d *Dist) N() int {
	n := len(d.samples)
	for _, s := range d.spans {
		n += len(s) / 8
	}
	return n
}

// Mean returns the arithmetic mean.
func (d *Dist) Mean() (float64, error) {
	if d.N() == 0 {
		return 0, ErrEmpty
	}
	return d.sum / float64(d.N()), nil
}

// StdDev returns the population standard deviation.
func (d *Dist) StdDev() (float64, error) {
	n := float64(d.N())
	if n == 0 {
		return 0, ErrEmpty
	}
	mean := d.sum / n
	variance := d.sumSq/n - mean*mean
	if variance < 0 { // numerical noise
		variance = 0
	}
	return math.Sqrt(variance), nil
}

func (d *Dist) ensureSorted() {
	if !d.sorted {
		sort.Float64s(d.samples)
		d.sorted = true
	}
}

// Min returns the smallest sample.
func (d *Dist) Min() (float64, error) {
	if d.N() == 0 {
		return 0, ErrEmpty
	}
	d.ensureSorted()
	best, have := 0.0, false
	if len(d.samples) > 0 {
		best, have = d.samples[0], true
	}
	for _, s := range d.spans {
		if len(s) == 0 {
			continue
		}
		v, err := spanAt(s, 0)
		if err != nil {
			return 0, err
		}
		if !have || v < best {
			best, have = v, true
		}
	}
	return best, nil
}

// Max returns the largest sample.
func (d *Dist) Max() (float64, error) {
	if d.N() == 0 {
		return 0, ErrEmpty
	}
	d.ensureSorted()
	best, have := 0.0, false
	if m := len(d.samples); m > 0 {
		best, have = d.samples[m-1], true
	}
	for _, s := range d.spans {
		if len(s) == 0 {
			continue
		}
		v, err := spanAt(s, len(s)/8-1)
		if err != nil {
			return 0, err
		}
		if !have || v > best {
			best, have = v, true
		}
	}
	return best, nil
}

// Quantile returns the q-quantile (0 <= q <= 1) using linear interpolation
// between order statistics (type-7, the common default).
func (d *Dist) Quantile(q float64) (float64, error) {
	n := d.N()
	if n == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		return 0, fmt.Errorf("stats: quantile %v out of [0,1]", q)
	}
	d.ensureSorted()
	if n == 1 {
		return d.orderStat(0)
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	vlo, err := d.orderStat(lo)
	if err != nil {
		return 0, err
	}
	if lo == hi {
		return vlo, nil
	}
	vhi, err := d.orderStat(hi)
	if err != nil {
		return 0, err
	}
	frac := pos - float64(lo)
	return vlo*(1-frac) + vhi*frac, nil
}

// orderStat returns the k-th smallest sample. The buffer (or, with
// spans pending, the overlay) must already be sorted. One pending span
// selects lazily; several materialize first — order statistics over
// many runs are rare (index-composed windows answer curves through
// CDF, which never materializes) and the merge is paid once.
func (d *Dist) orderStat(k int) (float64, error) {
	switch len(d.spans) {
	case 0:
		return d.samples[k], nil
	case 1:
		return d.selectMerged(k)
	}
	if err := d.materialize(); err != nil {
		return 0, err
	}
	return d.samples[k], nil
}

// selectMerged returns the k-th smallest element of the multiset formed
// by the single span slab and the sorted overlay, by binary-searching
// the merge split point — O(log n) span reads, no materialization.
func (d *Dist) selectMerged(k int) (float64, error) {
	span, ov := d.spans[0], d.samples
	n, m := len(span)/8, len(ov)
	// i counts elements taken from the span, j = k+1-i from the overlay.
	// Find the largest feasible i with span[i-1] <= ov[j]; the matching
	// condition ov[j-1] <= span[i] then holds automatically.
	lo, hi := k+1-m, k+1
	if lo < 0 {
		lo = 0
	}
	if hi > n {
		hi = n
	}
	for lo < hi {
		i := (lo + hi + 1) / 2
		v, err := spanAt(span, i-1)
		if err != nil {
			return 0, err
		}
		if j := k + 1 - i; j >= m || v <= ov[j] {
			lo = i
		} else {
			hi = i - 1
		}
	}
	i := lo
	j := k + 1 - i
	var best float64
	have := false
	if i > 0 {
		v, err := spanAt(span, i-1)
		if err != nil {
			return 0, err
		}
		best, have = v, true
	}
	if j > 0 && (!have || ov[j-1] > best) {
		best = ov[j-1]
	}
	return best, nil
}

// Median returns the 0.5-quantile.
func (d *Dist) Median() (float64, error) { return d.Quantile(0.5) }

// CDF returns the empirical probability P(X <= x). Pending spans are
// counted in place by per-slab binary search — a CDF curve over an
// index-composed window never merges or copies the union buffer.
func (d *Dist) CDF(x float64) (float64, error) {
	if d.N() == 0 {
		return 0, ErrEmpty
	}
	d.ensureSorted()
	// Count of samples <= x == index of the first sample > x.
	y := math.Nextafter(x, math.Inf(1))
	idx := sort.SearchFloat64s(d.samples, y)
	for _, s := range d.spans {
		j, err := spanCountBelow(s, y)
		if err != nil {
			return 0, err
		}
		idx += j
	}
	return float64(idx) / float64(d.N()), nil
}

// CDFPoint is one (x, P(X<=x)) pair of an empirical CDF curve.
type CDFPoint struct {
	X float64 `json:"x"`
	P float64 `json:"p"`
}

// Curve samples the empirical CDF at the given x values, producing the
// series a figure plots. An ascending grid over pending spans is
// answered by one forward sweep per run — the whole curve costs
// O(samples + runs·grid) sequential reads, instead of per-point binary
// searches re-probing every run (the difference between an
// index-composed window rendering in microseconds and in milliseconds).
func (d *Dist) Curve(xs []float64) ([]CDFPoint, error) {
	if d.N() == 0 {
		return nil, ErrEmpty
	}
	if len(d.spans) > 0 && sort.Float64sAreSorted(xs) {
		return d.curveSwept(xs)
	}
	out := make([]CDFPoint, 0, len(xs))
	for _, x := range xs {
		p, err := d.CDF(x)
		if err != nil {
			return nil, err
		}
		out = append(out, CDFPoint{X: x, P: p})
	}
	return out, nil
}

// curveSwept evaluates an ascending grid by advancing one cursor per
// pending run. Counts match per-point CDF calls exactly; only the
// access pattern differs.
func (d *Dist) curveSwept(xs []float64) ([]CDFPoint, error) {
	d.ensureSorted()
	counts := make([]int, len(xs))
	sweep := func(at func(int) (float64, error), n int) error {
		i := 0
		var v float64
		if n > 0 {
			var err error
			if v, err = at(0); err != nil {
				return err
			}
		}
		for k, x := range xs {
			y := math.Nextafter(x, math.Inf(1))
			for i < n && v < y {
				i++
				if i < n {
					var err error
					if v, err = at(i); err != nil {
						return err
					}
				}
			}
			counts[k] += i
		}
		return nil
	}
	if err := sweep(func(i int) (float64, error) { return d.samples[i], nil }, len(d.samples)); err != nil {
		return nil, err
	}
	for _, s := range d.spans {
		if err := sweep(func(i int) (float64, error) { return spanAt(s, i) }, len(s)/8); err != nil {
			return nil, err
		}
	}
	n := float64(d.N())
	out := make([]CDFPoint, 0, len(xs))
	for k, x := range xs {
		out = append(out, CDFPoint{X: x, P: float64(counts[k]) / n})
	}
	return out, nil
}

// Summary bundles the descriptive statistics reported for a distribution.
type Summary struct {
	N      int     `json:"n"`
	Min    float64 `json:"min"`
	P25    float64 `json:"p25"`
	Median float64 `json:"median"`
	P75    float64 `json:"p75"`
	P95    float64 `json:"p95"`
	Max    float64 `json:"max"`
	Mean   float64 `json:"mean"`
	StdDev float64 `json:"stddev"`
}

// Summarize computes a Summary of the distribution.
func (d *Dist) Summarize() (Summary, error) {
	if d.N() == 0 {
		return Summary{}, ErrEmpty
	}
	s := Summary{N: d.N()}
	var err error
	if s.Min, err = d.Min(); err != nil {
		return Summary{}, err
	}
	if s.P25, err = d.Quantile(0.25); err != nil {
		return Summary{}, err
	}
	if s.Median, err = d.Median(); err != nil {
		return Summary{}, err
	}
	if s.P75, err = d.Quantile(0.75); err != nil {
		return Summary{}, err
	}
	if s.P95, err = d.Quantile(0.95); err != nil {
		return Summary{}, err
	}
	if s.Max, err = d.Max(); err != nil {
		return Summary{}, err
	}
	if s.Mean, err = d.Mean(); err != nil {
		return Summary{}, err
	}
	if s.StdDev, err = d.StdDev(); err != nil {
		return Summary{}, err
	}
	return s, nil
}
