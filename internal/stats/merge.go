package stats

import (
	"fmt"
	"sort"
)

// Merge folds other's samples into d by replaying them through Add in
// their stored insertion order. Replay — rather than summing the cached
// sum/sumSq accumulators — keeps the float folds associative with a
// sequential run: when contiguous dataset shards are merged in shard
// order, d's accumulators equal the bitwise result of adding every
// sample in original file order, for any shard count. other is not
// modified; merging a distribution into itself is rejected.
func (d *Dist) Merge(other *Dist) error {
	if other == nil {
		return nil
	}
	if other == d {
		return fmt.Errorf("stats: cannot merge distribution into itself")
	}
	// Replaying other.samples directly is only order-faithful while other
	// has never been queried (queries sort in place). Scan merges satisfy
	// this — partials are merged before any report runs — and for queried
	// distributions the sorted replay still yields an equivalent sample
	// multiset, so every rank-based query is unaffected.
	for _, v := range other.samples {
		if err := d.Add(v); err != nil {
			return err
		}
	}
	return nil
}

// Merge folds other's bins into ts. Both series must share the same
// start and bin width so bin indices line up; per-bin distributions are
// merged by replay (see Dist.Merge) to stay order-faithful under
// shard-ordered merging.
func (ts *TimeSeries) Merge(other *TimeSeries) error {
	if other == nil {
		return nil
	}
	if !other.start.Equal(ts.start) || other.width != ts.width {
		return fmt.Errorf("stats: cannot merge series start=%v width=%v into start=%v width=%v",
			other.start, other.width, ts.start, ts.width)
	}
	idxs := make([]int, 0, len(other.bins))
	for i := range other.bins {
		idxs = append(idxs, i)
	}
	// Deterministic bin visit order; per-bin replay order is what matters
	// for the float folds, but a stable iteration keeps error selection
	// (first failing bin) reproducible too.
	sort.Ints(idxs)
	for _, i := range idxs {
		d := ts.bins[i]
		if d == nil {
			d = &Dist{}
			ts.bins[i] = d
		}
		if err := d.Merge(other.bins[i]); err != nil {
			return err
		}
	}
	return nil
}

// Merge adds other's counts into h. The histograms must have identical
// bounds and bin counts. Counts are integers, so histogram merging is
// exact and order-independent.
func (h *Histogram) Merge(other *Histogram) error {
	if other == nil {
		return nil
	}
	if other.min != h.min || other.max != h.max || len(other.counts) != len(h.counts) {
		return fmt.Errorf("stats: cannot merge histogram [%v,%v)/%d into [%v,%v)/%d",
			other.min, other.max, len(other.counts), h.min, h.max, len(h.counts))
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.underflow += other.underflow
	h.overflow += other.overflow
	h.total += other.total
	return nil
}
