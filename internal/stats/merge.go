package stats

import (
	"fmt"
	"math"
	"slices"
	"sort"
)

// Merge folds other's samples into d by replaying them through Add in
// their stored insertion order. Replay — rather than summing the cached
// sum/sumSq accumulators — keeps the float folds associative with a
// sequential run: when contiguous dataset shards are merged in shard
// order, d's accumulators equal the bitwise result of adding every
// sample in original file order, for any shard count. other is not
// modified; merging a distribution into itself is rejected.
func (d *Dist) Merge(other *Dist) error {
	if other == nil {
		return nil
	}
	if other == d {
		return fmt.Errorf("stats: cannot merge distribution into itself")
	}
	// An empty other folds nothing; returning here keeps a span-backed d
	// lazy, so merging a sparse delta leaves untouched bins serialized.
	if other.N() == 0 {
		return nil
	}
	if err := other.materialize(); err != nil {
		return err
	}
	if len(d.spans) > 0 {
		// Fold into the overlay: the serialized history is untouched, so
		// a delta merge costs O(delta) however large the history is.
		for _, v := range other.samples {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("stats: invalid sample %v", v)
			}
			d.sum += v
			d.sumSq += v * v
		}
		d.samples = append(d.samples, other.samples...)
		d.sorted = false
		return nil
	}
	// Replaying other.samples directly is only order-faithful while other
	// has never been queried (queries sort in place). Scan merges satisfy
	// this — partials are merged before any report runs — and for queried
	// distributions the sorted replay still yields an equivalent sample
	// multiset, so every rank-based query is unaffected.
	if d.sorted && len(d.samples) > 0 {
		return d.mergeSorted(other)
	}
	for _, v := range other.samples {
		if err := d.Add(v); err != nil {
			return err
		}
	}
	return nil
}

// mergeSorted folds other into an already-sorted d without discarding
// the sort: the accumulators replay other's insertion order exactly as
// the plain path does (float folds stay sequential-identical), while
// the sample buffers — order-free multisets for every rank query — are
// combined by a linear two-way merge. This keeps a snapshot-resumed
// suite sorted through delta merges, so neither the snapshot rewrite
// nor the report pays an O(n log n) re-sort of the whole history.
func (d *Dist) mergeSorted(other *Dist) error {
	for _, v := range other.samples {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("stats: invalid sample %v", v)
		}
		d.sum += v
		d.sumSq += v * v
	}
	tail := append([]float64(nil), other.samples...)
	sort.Float64s(tail)
	// Merge from the back, in place: the buffer grows by the tail's
	// length and elements shift right only until the tail is placed, so
	// a large sorted history absorbs a small append without a fresh
	// allocation or a full copy.
	n, m := len(d.samples), len(tail)
	d.samples = slices.Grow(d.samples, m)[:n+m]
	i, k := n-1, n+m-1
	for j := m - 1; j >= 0; k-- {
		if i >= 0 && d.samples[i] > tail[j] {
			d.samples[k] = d.samples[i]
			i--
		} else {
			d.samples[k] = tail[j]
			j--
		}
	}
	return nil
}

// CombineSorted builds one distribution holding the union multiset of
// ds without merging any sample buffers: serialized sorted slabs are
// adopted as lazy spans and the overlays concatenate, so composition is
// O(k) in run count regardless of sample volume. This is the
// temporal-index composition kernel — a window assembled from
// pre-merged segment nodes answers counting queries (CDF curves, N,
// Min, Max) straight off the composed runs by per-slab binary search;
// only an order-statistic query over many runs materializes, once.
//
// The result aliases the inputs' span slabs and copies their overlays;
// inputs must not be mutated afterwards. The accumulators fold per
// input in slice order (sum += ds[i].sum), not per sample, so
// mean/stddev can differ in final bits from a sequential replay; every
// rank query sees the exact union multiset. Nil and empty inputs are
// skipped; a single non-empty input is returned as-is.
func CombineSorted(ds []*Dist) (*Dist, error) {
	live := make([]*Dist, 0, len(ds))
	for _, d := range ds {
		if d != nil && d.N() > 0 {
			live = append(live, d)
		}
	}
	if len(live) == 0 {
		return &Dist{}, nil
	}
	if len(live) == 1 {
		return live[0], nil
	}
	out := &Dist{}
	for _, d := range live {
		out.sum += d.sum
		out.sumSq += d.sumSq
		out.spans = append(out.spans, d.spans...)
		out.samples = append(out.samples, d.samples...)
	}
	return out, nil
}

// mergeTwoSorted linearly merges two ascending runs into a fresh
// buffer.
func mergeTwoSorted(a, b []float64) []float64 {
	out := make([]float64, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// Merge folds other's bins into ts. Both series must share the same
// start and bin width so bin indices line up; per-bin distributions are
// merged by replay (see Dist.Merge) to stay order-faithful under
// shard-ordered merging.
func (ts *TimeSeries) Merge(other *TimeSeries) error {
	if other == nil {
		return nil
	}
	if !other.start.Equal(ts.start) || other.width != ts.width {
		return fmt.Errorf("stats: cannot merge series start=%v width=%v into start=%v width=%v",
			other.start, other.width, ts.start, ts.width)
	}
	idxs := make([]int, 0, len(other.bins))
	for i := range other.bins {
		idxs = append(idxs, i)
	}
	// Deterministic bin visit order; per-bin replay order is what matters
	// for the float folds, but a stable iteration keeps error selection
	// (first failing bin) reproducible too.
	sort.Ints(idxs)
	for _, i := range idxs {
		d := ts.bins[i]
		if d == nil {
			d = &Dist{}
			ts.bins[i] = d
		}
		if err := d.Merge(other.bins[i]); err != nil {
			return err
		}
	}
	return nil
}

// Merge adds other's counts into h. The histograms must have identical
// bounds and bin counts. Counts are integers, so histogram merging is
// exact and order-independent.
func (h *Histogram) Merge(other *Histogram) error {
	if other == nil {
		return nil
	}
	if other.min != h.min || other.max != h.max || len(other.counts) != len(h.counts) {
		return fmt.Errorf("stats: cannot merge histogram [%v,%v)/%d into [%v,%v)/%d",
			other.min, other.max, len(other.counts), h.min, h.max, len(h.counts))
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.underflow += other.underflow
	h.overflow += other.overflow
	h.total += other.total
	return nil
}
