package stats

import (
	"errors"
	"math"
	"sort"
)

// KSResult is the outcome of a two-sample Kolmogorov-Smirnov test.
type KSResult struct {
	// D is the KS statistic: the supremum distance between the two
	// empirical CDFs.
	D float64
	// P is the approximate p-value for the null hypothesis that both
	// samples come from the same distribution (Numerical-Recipes
	// asymptotic approximation).
	P float64
}

// Different reports whether the samples differ at the given significance
// level (e.g. 0.01).
func (r KSResult) Different(alpha float64) bool { return r.P < alpha }

// KolmogorovSmirnov runs the two-sample KS test on two distributions. The
// analysis uses it to confirm that the wired and wireless RTT populations
// of Figure 7 are statistically distinct rather than a binning artifact.
func KolmogorovSmirnov(a, b *Dist) (KSResult, error) {
	if a == nil || b == nil {
		return KSResult{}, errors.New("stats: nil distribution")
	}
	n1, n2 := a.N(), b.N()
	if n1 == 0 || n2 == 0 {
		return KSResult{}, ErrEmpty
	}
	if err := a.materialize(); err != nil {
		return KSResult{}, err
	}
	if err := b.materialize(); err != nil {
		return KSResult{}, err
	}
	s1 := append([]float64(nil), a.samples...)
	s2 := append([]float64(nil), b.samples...)
	sort.Float64s(s1)
	sort.Float64s(s2)

	var d float64
	i, j := 0, 0
	for i < n1 && j < n2 {
		v1, v2 := s1[i], s2[j]
		if v1 <= v2 {
			i++
		}
		if v2 <= v1 {
			j++
		}
		f1 := float64(i) / float64(n1)
		f2 := float64(j) / float64(n2)
		if diff := math.Abs(f1 - f2); diff > d {
			d = diff
		}
	}

	ne := float64(n1) * float64(n2) / float64(n1+n2)
	lambda := (math.Sqrt(ne) + 0.12 + 0.11/math.Sqrt(ne)) * d
	return KSResult{D: d, P: ksProb(lambda)}, nil
}

// ksProb is the Kolmogorov distribution tail Q_KS(lambda).
func ksProb(lambda float64) float64 {
	if lambda <= 0 {
		return 1
	}
	const eps1, eps2 = 1e-3, 1e-8
	sum, fac, prevTerm := 0.0, 2.0, 0.0
	a2 := -2 * lambda * lambda
	for k := 1; k <= 100; k++ {
		term := fac * math.Exp(a2*float64(k)*float64(k))
		sum += term
		if math.Abs(term) <= eps1*prevTerm || math.Abs(term) <= eps2*sum {
			if sum < 0 {
				return 0
			}
			if sum > 1 {
				return 1
			}
			return sum
		}
		fac = -fac
		prevTerm = math.Abs(term)
	}
	return 1 // did not converge: be conservative
}
