package stats

import (
	"fmt"
	"math"
)

// QuantileSketch is a streaming quantile estimator over geometric
// buckets: bucket i covers (lo·γ^(i-1), lo·γ^i], so every estimate has
// bounded relative error γ−1. Unlike the P² estimator it is mergeable —
// the state is a fixed vector of integer counts, so merging partial
// sketches is exact addition and the merged result is identical for any
// sharding of the input. The parallel dataset scanner relies on this to
// make `dataset stats` output invariant to the worker count.
type QuantileSketch struct {
	lo     float64 // lower edge of bucket 1; values <= lo land in bucket 0
	gamma  float64 // bucket growth factor, > 1
	invLnG float64 // 1 / ln(gamma), cached for Add
	counts []uint64
	total  uint64
}

// NewQuantileSketch builds a sketch covering (0, hi] with relative
// error gamma-1; values above hi are clamped into the top bucket and
// values at or below lo into the bottom one.
func NewQuantileSketch(lo, hi, gamma float64) (*QuantileSketch, error) {
	if !(lo > 0) || !(hi > lo) || math.IsInf(hi, 0) {
		return nil, fmt.Errorf("stats: invalid sketch range (%v, %v]", lo, hi)
	}
	if !(gamma > 1) || math.IsInf(gamma, 0) {
		return nil, fmt.Errorf("stats: sketch gamma %v must be > 1", gamma)
	}
	n := int(math.Ceil(math.Log(hi/lo)/math.Log(gamma))) + 1
	return &QuantileSketch{
		lo:     lo,
		gamma:  gamma,
		invLnG: 1 / math.Log(gamma),
		counts: make([]uint64, n),
	}, nil
}

// NewRTTSketch builds a sketch sized for RTT milliseconds: 0.01 ms to
// 100 s at 2% relative error (~815 buckets, ~6.5 KiB).
func NewRTTSketch() *QuantileSketch {
	s, err := NewQuantileSketch(0.01, 1e5, 1.02)
	if err != nil { // static parameters; cannot fail
		panic(err)
	}
	return s
}

// Add records one observation. Non-positive, NaN, and Inf values are
// rejected.
func (s *QuantileSketch) Add(v float64) error {
	if math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
		return fmt.Errorf("stats: invalid sketch sample %v", v)
	}
	idx := 0
	if v > s.lo {
		idx = int(math.Ceil(math.Log(v/s.lo) * s.invLnG))
		if idx < 0 {
			idx = 0
		}
		if idx >= len(s.counts) {
			idx = len(s.counts) - 1
		}
	}
	s.counts[idx]++
	s.total++
	return nil
}

// N returns the number of observations recorded.
func (s *QuantileSketch) N() uint64 { return s.total }

// Merge adds other's counts into s. The sketches must share identical
// parameters. Merging is exact: integer counts are added, so the result
// does not depend on how the input was sharded.
func (s *QuantileSketch) Merge(other *QuantileSketch) error {
	if other == nil {
		return nil
	}
	if other.lo != s.lo || other.gamma != s.gamma || len(other.counts) != len(s.counts) {
		return fmt.Errorf("stats: cannot merge sketch lo=%v gamma=%v/%d into lo=%v gamma=%v/%d",
			other.lo, other.gamma, len(other.counts), s.lo, s.gamma, len(s.counts))
	}
	for i, c := range other.counts {
		s.counts[i] += c
	}
	s.total += other.total
	return nil
}

// Quantile returns the estimated q-quantile (0 <= q <= 1): the
// geometric midpoint of the bucket holding the rank-⌈q·N⌉ observation,
// which is within a factor of √γ of the true order statistic.
func (s *QuantileSketch) Quantile(q float64) (float64, error) {
	if s.total == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		return 0, fmt.Errorf("stats: quantile %v out of [0,1]", q)
	}
	rank := uint64(math.Ceil(q * float64(s.total)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, c := range s.counts {
		cum += c
		if cum >= rank {
			if i == 0 {
				return s.lo, nil
			}
			// Geometric midpoint of (lo·γ^(i-1), lo·γ^i].
			return s.lo * math.Pow(s.gamma, float64(i)-0.5), nil
		}
	}
	// Unreachable: cum reaches total >= rank within the loop.
	return 0, ErrEmpty
}
