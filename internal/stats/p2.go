package stats

import (
	"fmt"
	"math"
	"sort"
)

// P2 is a streaming quantile estimator implementing the P² algorithm
// (Jain & Chlamtac, 1985). It estimates a single quantile in O(1) memory,
// which lets the analysis pipeline stream the full 3.2M-datapoint campaign
// dataset without holding it in memory.
type P2 struct {
	q       float64    // target quantile
	n       int        // samples seen
	heights [5]float64 // marker heights
	pos     [5]float64 // marker positions (1-based)
	want    [5]float64 // desired marker positions
	incr    [5]float64 // desired-position increments
	initial []float64  // first five samples before initialization
}

// NewP2 creates an estimator for quantile q in (0, 1).
func NewP2(q float64) (*P2, error) {
	if q <= 0 || q >= 1 || math.IsNaN(q) {
		return nil, fmt.Errorf("stats: P2 quantile %v out of (0,1)", q)
	}
	return &P2{q: q}, nil
}

// Add feeds one observation.
func (p *P2) Add(v float64) error {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return fmt.Errorf("stats: invalid sample %v", v)
	}
	p.n++
	if p.n <= 5 {
		p.initial = append(p.initial, v)
		if p.n == 5 {
			p.initialize()
		}
		return nil
	}
	p.update(v)
	return nil
}

func (p *P2) initialize() {
	sort.Float64s(p.initial)
	copy(p.heights[:], p.initial)
	p.initial = nil
	for i := range p.pos {
		p.pos[i] = float64(i + 1)
	}
	p.want = [5]float64{1, 1 + 2*p.q, 1 + 4*p.q, 3 + 2*p.q, 5}
	p.incr = [5]float64{0, p.q / 2, p.q, (1 + p.q) / 2, 1}
}

func (p *P2) update(v float64) {
	// Find cell k such that heights[k] <= v < heights[k+1], adjusting
	// extremes.
	var k int
	switch {
	case v < p.heights[0]:
		p.heights[0] = v
		k = 0
	case v >= p.heights[4]:
		p.heights[4] = v
		k = 3
	default:
		for k = 0; k < 4; k++ {
			if v < p.heights[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		p.pos[i]++
	}
	for i := range p.want {
		p.want[i] += p.incr[i]
	}
	// Adjust interior markers.
	for i := 1; i <= 3; i++ {
		d := p.want[i] - p.pos[i]
		if (d >= 1 && p.pos[i+1]-p.pos[i] > 1) || (d <= -1 && p.pos[i-1]-p.pos[i] < -1) {
			sign := 1.0
			if d < 0 {
				sign = -1.0
			}
			h := p.parabolic(i, sign)
			if p.heights[i-1] < h && h < p.heights[i+1] {
				p.heights[i] = h
			} else {
				p.heights[i] = p.linear(i, sign)
			}
			p.pos[i] += sign
		}
	}
}

func (p *P2) parabolic(i int, d float64) float64 {
	return p.heights[i] + d/(p.pos[i+1]-p.pos[i-1])*
		((p.pos[i]-p.pos[i-1]+d)*(p.heights[i+1]-p.heights[i])/(p.pos[i+1]-p.pos[i])+
			(p.pos[i+1]-p.pos[i]-d)*(p.heights[i]-p.heights[i-1])/(p.pos[i]-p.pos[i-1]))
}

func (p *P2) linear(i int, d float64) float64 {
	di := int(d)
	return p.heights[i] + d*(p.heights[i+di]-p.heights[i])/(p.pos[i+di]-p.pos[i])
}

// N returns the number of observations fed so far.
func (p *P2) N() int { return p.n }

// Value returns the current quantile estimate.
func (p *P2) Value() (float64, error) {
	switch {
	case p.n == 0:
		return 0, ErrEmpty
	case p.n < 5:
		// Fall back to the exact quantile of the few samples seen.
		tmp := append([]float64(nil), p.initial...)
		sort.Float64s(tmp)
		pos := p.q * float64(len(tmp)-1)
		lo := int(math.Floor(pos))
		hi := int(math.Ceil(pos))
		if lo == hi {
			return tmp[lo], nil
		}
		frac := pos - float64(lo)
		return tmp[lo]*(1-frac) + tmp[hi]*frac, nil
	default:
		return p.heights[2], nil
	}
}
