package stats

import (
	"math/rand"
	"testing"
)

func fill(t *testing.T, rng *rand.Rand, n int, gen func() float64) *Dist {
	t.Helper()
	var d Dist
	for i := 0; i < n; i++ {
		if err := d.Add(gen()); err != nil {
			t.Fatal(err)
		}
	}
	return &d
}

func TestKSSameDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := fill(t, rng, 2000, func() float64 { return rng.NormFloat64()*5 + 20 })
	b := fill(t, rng, 2000, func() float64 { return rng.NormFloat64()*5 + 20 })
	res, err := KolmogorovSmirnov(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.D > 0.06 {
		t.Errorf("same-distribution D = %.3f", res.D)
	}
	if res.Different(0.01) {
		t.Errorf("same distribution flagged as different (p=%.4f)", res.P)
	}
}

func TestKSShiftedDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	wired := fill(t, rng, 1500, func() float64 { return rng.NormFloat64()*4 + 13 })
	wireless := fill(t, rng, 1500, func() float64 { return rng.NormFloat64()*8 + 31 })
	res, err := KolmogorovSmirnov(wired, wireless)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Different(0.001) {
		t.Errorf("clearly shifted distributions not detected (D=%.3f p=%.4f)", res.D, res.P)
	}
	if res.D < 0.5 {
		t.Errorf("shifted D = %.3f, want large", res.D)
	}
}

func TestKSSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := fill(t, rng, 500, func() float64 { return rng.Float64() * 10 })
	b := fill(t, rng, 700, func() float64 { return rng.Float64()*10 + 2 })
	r1, err := KolmogorovSmirnov(a, b)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := KolmogorovSmirnov(b, a)
	if err != nil {
		t.Fatal(err)
	}
	if r1.D != r2.D || r1.P != r2.P {
		t.Errorf("KS not symmetric: %+v vs %+v", r1, r2)
	}
}

func TestKSValidation(t *testing.T) {
	var empty Dist
	var one Dist
	if err := one.Add(1); err != nil {
		t.Fatal(err)
	}
	if _, err := KolmogorovSmirnov(nil, &one); err == nil {
		t.Error("nil distribution accepted")
	}
	if _, err := KolmogorovSmirnov(&empty, &one); err != ErrEmpty {
		t.Errorf("empty distribution: %v", err)
	}
}

func TestKSDoesNotMutateInputs(t *testing.T) {
	var a, b Dist
	if err := a.AddAll(3, 1, 2); err != nil {
		t.Fatal(err)
	}
	if err := b.AddAll(9, 7, 8); err != nil {
		t.Fatal(err)
	}
	if _, err := KolmogorovSmirnov(&a, &b); err != nil {
		t.Fatal(err)
	}
	// The distributions still answer queries correctly afterwards.
	if m, _ := a.Median(); m != 2 {
		t.Errorf("a median = %v after KS", m)
	}
	if m, _ := b.Median(); m != 8 {
		t.Errorf("b median = %v after KS", m)
	}
}
