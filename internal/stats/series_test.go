package stats

import (
	"testing"
	"time"
)

func TestTimeSeriesValidation(t *testing.T) {
	start := time.Date(2019, 9, 1, 0, 0, 0, 0, time.UTC)
	if _, err := NewTimeSeries(start, 0); err == nil {
		t.Error("zero width accepted")
	}
	ts, err := NewTimeSeries(start, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if err := ts.Add(start.Add(-time.Minute), 1); err == nil {
		t.Error("pre-start sample accepted")
	}
}

func TestTimeSeriesBinning(t *testing.T) {
	start := time.Date(2019, 9, 1, 0, 0, 0, 0, time.UTC)
	ts, err := NewTimeSeries(start, 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	// Day 0: samples 10, 20, 30 -> median 20. Day 2: 100 -> median 100.
	for _, v := range []float64{10, 20, 30} {
		if err := ts.Add(start.Add(time.Hour), v); err != nil {
			t.Fatal(err)
		}
	}
	if err := ts.Add(start.Add(49*time.Hour), 100); err != nil {
		t.Fatal(err)
	}
	pts, err := ts.Points()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("got %d points, want 2 (empty day skipped)", len(pts))
	}
	if pts[0].Median != 20 || pts[0].N != 3 {
		t.Errorf("day 0 = %+v", pts[0])
	}
	if !pts[0].Start.Equal(start) {
		t.Errorf("day 0 start = %v", pts[0].Start)
	}
	if pts[1].Median != 100 || pts[1].N != 1 {
		t.Errorf("day 2 = %+v", pts[1])
	}
	if !pts[1].Start.Equal(start.Add(48 * time.Hour)) {
		t.Errorf("day 2 start = %v", pts[1].Start)
	}
	// Points are in time order.
	if !pts[0].Start.Before(pts[1].Start) {
		t.Error("points out of order")
	}
}
