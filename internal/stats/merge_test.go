package stats

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/snap"
)

// TestDistMergeMatchesSequentialFold is the determinism contract the
// parallel scanner depends on: splitting a sample stream into contiguous
// shards, folding each shard into its own Dist, and merging the partials
// in shard order must reproduce the sequential fold bitwise — including
// the float sum/sumSq accumulators, which are order-sensitive.
func TestDistMergeMatchesSequentialFold(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	samples := make([]float64, 10007)
	for i := range samples {
		samples[i] = 1 + 400*rng.Float64()
	}
	var seq Dist
	if err := seq.AddAll(samples...); err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 2, 4, 7} {
		parts := make([]*Dist, shards)
		for s := 0; s < shards; s++ {
			parts[s] = &Dist{}
			lo, hi := len(samples)*s/shards, len(samples)*(s+1)/shards
			if err := parts[s].AddAll(samples[lo:hi]...); err != nil {
				t.Fatal(err)
			}
		}
		merged := parts[0]
		for _, p := range parts[1:] {
			if err := merged.Merge(p); err != nil {
				t.Fatal(err)
			}
		}
		if merged.N() != seq.N() || merged.sum != seq.sum || merged.sumSq != seq.sumSq {
			t.Errorf("shards=%d: merged (n=%d sum=%x sumSq=%x) != sequential (n=%d sum=%x sumSq=%x)",
				shards, merged.N(), merged.sum, merged.sumSq, seq.N(), seq.sum, seq.sumSq)
		}
		mm, _ := merged.Median()
		sm, _ := seq.Median()
		if mm != sm {
			t.Errorf("shards=%d: median %v != %v", shards, mm, sm)
		}
	}
}

func TestDistMergeRejectsSelf(t *testing.T) {
	var d Dist
	if err := d.Add(1); err != nil {
		t.Fatal(err)
	}
	if err := d.Merge(&d); err == nil {
		t.Error("self-merge accepted")
	}
	if err := d.Merge(nil); err != nil {
		t.Errorf("nil merge = %v, want nil", err)
	}
}

func TestTimeSeriesMerge(t *testing.T) {
	start := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	mk := func() *TimeSeries {
		ts, err := NewTimeSeries(start, time.Hour)
		if err != nil {
			t.Fatal(err)
		}
		return ts
	}
	rng := rand.New(rand.NewSource(3))
	type obs struct {
		t time.Time
		v float64
	}
	var all []obs
	for i := 0; i < 500; i++ {
		all = append(all, obs{
			t: start.Add(time.Duration(rng.Intn(72)) * time.Minute * 10),
			v: 1 + 100*rng.Float64(),
		})
	}
	seq := mk()
	for _, o := range all {
		if err := seq.Add(o.t, o.v); err != nil {
			t.Fatal(err)
		}
	}
	a, b := mk(), mk()
	for i, o := range all {
		dst := a
		if i >= len(all)/2 {
			dst = b
		}
		if err := dst.Add(o.t, o.v); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	want, err := seq.Points()
	if err != nil {
		t.Fatal(err)
	}
	got, err := a.Points()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("points: got %d bins, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bin %d: got %+v, want %+v", i, got[i], want[i])
		}
	}

	other, err := NewTimeSeries(start.Add(time.Minute), time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Merge(other); err == nil {
		t.Error("mismatched series start accepted")
	}
}

func TestHistogramMerge(t *testing.T) {
	mk := func() *Histogram {
		h, err := NewHistogram(0, 300, 30)
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	seq, a, b := mk(), mk(), mk()
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 2000; i++ {
		v := -10 + 400*rng.Float64()
		if math.IsNaN(v) {
			continue
		}
		if err := seq.Add(v); err != nil {
			t.Fatal(err)
		}
		dst := a
		if i%2 == 1 {
			dst = b
		}
		if err := dst.Add(v); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Total() != seq.Total() || a.Underflow() != seq.Underflow() || a.Overflow() != seq.Overflow() {
		t.Errorf("merged totals %d/%d/%d != sequential %d/%d/%d",
			a.Total(), a.Underflow(), a.Overflow(), seq.Total(), seq.Underflow(), seq.Overflow())
	}
	ab, sb := a.Bins(), seq.Bins()
	for i := range sb {
		if ab[i] != sb[i] {
			t.Errorf("bin %d: got %+v, want %+v", i, ab[i], sb[i])
		}
	}

	narrow, err := NewHistogram(0, 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Merge(narrow); err == nil {
		t.Error("mismatched histogram bounds accepted")
	}
}

// TestDistMergeSortedEquivalence pins the sorted-receiver merge path
// (mergeSorted, used by snapshot-resumed suites) to the plain replay
// path: identical accumulator bits, identical sorted sample multiset,
// and sortedness preserved through successive merges.
func TestDistMergeSortedEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	base := make([]float64, 5003)
	for i := range base {
		base[i] = 1 + 300*rng.Float64()
	}
	plain, sorted := &Dist{}, &Dist{}
	if err := plain.AddAll(base...); err != nil {
		t.Fatal(err)
	}
	if err := sorted.AddAll(base...); err != nil {
		t.Fatal(err)
	}
	if _, err := sorted.Median(); err != nil { // force the sorted state
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		delta := &Dist{}
		for i := 0; i < 97; i++ {
			if err := delta.Add(1 + 300*rng.Float64()); err != nil {
				t.Fatal(err)
			}
		}
		if err := plain.Merge(delta); err != nil {
			t.Fatal(err)
		}
		if err := sorted.Merge(delta); err != nil {
			t.Fatal(err)
		}
		if !sorted.sorted {
			t.Fatalf("round %d: merge discarded sortedness", round)
		}
		if math.Float64bits(sorted.sum) != math.Float64bits(plain.sum) ||
			math.Float64bits(sorted.sumSq) != math.Float64bits(plain.sumSq) ||
			sorted.N() != plain.N() {
			t.Fatalf("round %d: accumulators diverged", round)
		}
		for i := 1; i < len(sorted.samples); i++ {
			if sorted.samples[i-1] > sorted.samples[i] {
				t.Fatalf("round %d: buffer not sorted at %d", round, i)
			}
		}
		for _, q := range []float64{0, 0.25, 0.5, 0.75, 0.95, 1} {
			pv, err := plain.Quantile(q)
			if err != nil {
				t.Fatal(err)
			}
			sv, err := sorted.Quantile(q)
			if err != nil {
				t.Fatal(err)
			}
			if math.Float64bits(pv) != math.Float64bits(sv) {
				t.Fatalf("round %d: q%v %v != %v", round, q, sv, pv)
			}
		}
	}
}

// TestCombineSorted pins the index-composition kernel: combining any
// mix of sorted runs, unsorted tails, span-backed states, and empty
// inputs yields the exact union multiset — every rank query identical
// to a sequential fold — without re-sorting the combined buffer.
func TestCombineSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	samples := make([]float64, 8009)
	for i := range samples {
		samples[i] = 1 + 300*rng.Float64()
	}
	var seq Dist
	if err := seq.AddAll(samples...); err != nil {
		t.Fatal(err)
	}
	for _, runs := range []int{1, 2, 3, 8, 17} {
		parts := make([]*Dist, 0, runs+2)
		parts = append(parts, nil, &Dist{}) // skipped
		for s := 0; s < runs; s++ {
			p := &Dist{}
			lo, hi := len(samples)*s/runs, len(samples)*(s+1)/runs
			if err := p.AddAll(samples[lo:hi]...); err != nil {
				t.Fatal(err)
			}
			switch s % 3 {
			case 1:
				p.Sort() // pre-sorted run
			case 2:
				// Round-trip through serialized state: a sorted slab
				// decodes as a lazy span, the shape index nodes arrive in.
				p.Sort()
				c := snap.NewCursor(p.AppendState(nil))
				var err error
				if p, err = DecodeDistState(c); err != nil {
					t.Fatal(err)
				}
			}
			parts = append(parts, p)
		}
		got, err := CombineSorted(parts)
		if err != nil {
			t.Fatal(err)
		}
		if got.N() != seq.N() {
			t.Fatalf("runs=%d: n=%d, want %d", runs, got.N(), seq.N())
		}
		for _, q := range []float64{0, 0.01, 0.25, 0.5, 0.75, 0.99, 1} {
			gv, err := got.Quantile(q)
			if err != nil {
				t.Fatal(err)
			}
			sv, err := seq.Quantile(q)
			if err != nil {
				t.Fatal(err)
			}
			if gv != sv {
				t.Fatalf("runs=%d: q%.2f = %v, want %v", runs, q, gv, sv)
			}
		}
		for _, x := range []float64{0.5, 80, 151, 280, 400} {
			gv, err := got.CDF(x)
			if err != nil {
				t.Fatal(err)
			}
			sv, err := seq.CDF(x)
			if err != nil {
				t.Fatal(err)
			}
			if gv != sv {
				t.Fatalf("runs=%d: CDF(%v) = %v, want %v", runs, x, gv, sv)
			}
		}
	}
	if d, err := CombineSorted(nil); err != nil || d.N() != 0 {
		t.Fatalf("empty combine: %v, n=%d", err, d.N())
	}
}
