package stats

import (
	"math"
	"testing"
)

func TestHistogramValidation(t *testing.T) {
	if _, err := NewHistogram(0, 10, 0); err == nil {
		t.Error("0 bins accepted")
	}
	if _, err := NewHistogram(10, 10, 5); err == nil {
		t.Error("empty range accepted")
	}
	if _, err := NewHistogram(math.NaN(), 10, 5); err == nil {
		t.Error("NaN min accepted")
	}
}

func TestHistogramCounts(t *testing.T) {
	h, err := NewHistogram(0, 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{-5, 0, 5, 9.999, 10, 55, 99.9, 100, 250} {
		if err := h.Add(v); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.Add(math.Inf(1)); err == nil {
		t.Error("Add(Inf) accepted")
	}
	if h.Total() != 9 {
		t.Errorf("Total = %d, want 9", h.Total())
	}
	if h.Underflow() != 1 {
		t.Errorf("Underflow = %d, want 1", h.Underflow())
	}
	if h.Overflow() != 2 {
		t.Errorf("Overflow = %d, want 2 (100 and 250)", h.Overflow())
	}
	bins := h.Bins()
	if len(bins) != 10 {
		t.Fatalf("len(bins) = %d", len(bins))
	}
	if bins[0].Count != 3 { // 0, 5, 9.999
		t.Errorf("bin[0] = %d, want 3", bins[0].Count)
	}
	if bins[1].Count != 1 { // 10
		t.Errorf("bin[1] = %d, want 1", bins[1].Count)
	}
	if bins[5].Count != 1 { // 55
		t.Errorf("bin[5] = %d, want 1", bins[5].Count)
	}
	if bins[9].Count != 1 { // 99.9
		t.Errorf("bin[9] = %d, want 1", bins[9].Count)
	}
}

func TestHistogramCountBelow(t *testing.T) {
	h, err := NewHistogram(0, 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{-1, 5, 15, 25, 99, 150} {
		if err := h.Add(v); err != nil {
			t.Fatal(err)
		}
	}
	got, err := h.CountBelow(20)
	if err != nil || got != 3 { // -1, 5, 15
		t.Errorf("CountBelow(20) = %d, %v; want 3", got, err)
	}
	got, err = h.CountBelow(0)
	if err != nil || got != 1 {
		t.Errorf("CountBelow(0) = %d, %v; want 1", got, err)
	}
	got, err = h.CountBelow(100)
	if err != nil || got != 6 {
		t.Errorf("CountBelow(100) = %d, %v; want 6 (incl overflow)", got, err)
	}
	if _, err := h.CountBelow(17); err == nil {
		t.Error("CountBelow(non-boundary) accepted")
	}
}
