package stats

import (
	"fmt"
	"sort"
	"time"
)

// TimeSeries bins timestamped samples into fixed windows and reports a
// per-bin aggregate. Figure 7 uses it to plot wired vs wireless medians over
// the measurement period.
type TimeSeries struct {
	start time.Time
	width time.Duration
	bins  map[int]*Dist
}

// NewTimeSeries creates a series whose first bin starts at start and whose
// bins are width wide.
func NewTimeSeries(start time.Time, width time.Duration) (*TimeSeries, error) {
	if width <= 0 {
		return nil, fmt.Errorf("stats: non-positive bin width %v", width)
	}
	return &TimeSeries{start: start, width: width, bins: make(map[int]*Dist)}, nil
}

// Add records a sample at time t. Samples before the series start are
// rejected.
func (ts *TimeSeries) Add(t time.Time, v float64) error {
	if t.Before(ts.start) {
		return fmt.Errorf("stats: sample at %v precedes series start %v", t, ts.start)
	}
	idx := int(t.Sub(ts.start) / ts.width)
	d := ts.bins[idx]
	if d == nil {
		d = &Dist{}
		ts.bins[idx] = d
	}
	return d.Add(v)
}

// TimedSample is one timestamped value, the record type batch callers
// hand to AddBulk.
type TimedSample struct {
	T time.Time
	V float64
}

// AddBulk records a batch of samples in order — the batch-kernel entry
// point, equivalent to calling Add per sample. The bin lookup is
// cached across consecutive samples landing in the same bin, which is
// the common case for time-ordered streams.
func (ts *TimeSeries) AddBulk(samples []TimedSample) error {
	var d *Dist
	lastIdx := 0
	for _, s := range samples {
		if s.T.Before(ts.start) {
			return fmt.Errorf("stats: sample at %v precedes series start %v", s.T, ts.start)
		}
		idx := int(s.T.Sub(ts.start) / ts.width)
		if d == nil || idx != lastIdx {
			d = ts.bins[idx]
			if d == nil {
				d = &Dist{}
				ts.bins[idx] = d
			}
			lastIdx = idx
		}
		if err := d.Add(s.V); err != nil {
			return err
		}
	}
	return nil
}

// SeriesPoint is one aggregated bin of a time series.
type SeriesPoint struct {
	Start  time.Time `json:"start"`  // bin start
	N      int       `json:"n"`      // samples in the bin
	Median float64   `json:"median"` // bin median
	P25    float64   `json:"p25"`
	P75    float64   `json:"p75"`
}

// Points returns the non-empty bins in time order with their medians and
// quartiles.
func (ts *TimeSeries) Points() ([]SeriesPoint, error) {
	idxs := make([]int, 0, len(ts.bins))
	for i := range ts.bins {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	out := make([]SeriesPoint, 0, len(idxs))
	for _, i := range idxs {
		d := ts.bins[i]
		med, err := d.Median()
		if err != nil {
			return nil, err
		}
		p25, err := d.Quantile(0.25)
		if err != nil {
			return nil, err
		}
		p75, err := d.Quantile(0.75)
		if err != nil {
			return nil, err
		}
		out = append(out, SeriesPoint{
			Start:  ts.start.Add(time.Duration(i) * ts.width),
			N:      d.N(),
			Median: med,
			P25:    p25,
			P75:    p75,
		})
	}
	return out, nil
}
