package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestP2Validation(t *testing.T) {
	for _, q := range []float64{0, 1, -0.5, 1.5, math.NaN()} {
		if _, err := NewP2(q); err == nil {
			t.Errorf("NewP2(%v) accepted", q)
		}
	}
	p, err := NewP2(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Add(math.NaN()); err == nil {
		t.Error("Add(NaN) accepted")
	}
	if _, err := p.Value(); err != ErrEmpty {
		t.Errorf("Value on empty = %v", err)
	}
}

func TestP2SmallN(t *testing.T) {
	// Below 5 samples the estimator falls back to the exact quantile.
	p, err := NewP2(0.5)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{5, 1, 3} {
		if err := p.Add(v); err != nil {
			t.Fatal(err)
		}
	}
	v, err := p.Value()
	if err != nil || v != 3 {
		t.Errorf("median of {5,1,3} = %v, %v; want 3", v, err)
	}
}

func TestP2AgainstExact(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, q := range []float64{0.25, 0.5, 0.75, 0.95} {
		p, err := NewP2(q)
		if err != nil {
			t.Fatal(err)
		}
		var exact Dist
		for i := 0; i < 50000; i++ {
			// Lognormal-ish latency shape.
			v := math.Exp(rng.NormFloat64()*0.5) * 20
			if err := p.Add(v); err != nil {
				t.Fatal(err)
			}
			if err := exact.Add(v); err != nil {
				t.Fatal(err)
			}
		}
		got, err := p.Value()
		if err != nil {
			t.Fatal(err)
		}
		want, err := exact.Quantile(q)
		if err != nil {
			t.Fatal(err)
		}
		// P² should land within a few percent for smooth distributions.
		if relErr := math.Abs(got-want) / want; relErr > 0.05 {
			t.Errorf("q=%v: P2=%v exact=%v relerr=%.3f", q, got, want, relErr)
		}
		if p.N() != 50000 {
			t.Errorf("N = %d", p.N())
		}
	}
}

func TestP2Monotone(t *testing.T) {
	// Feeding a sorted ramp: the median estimate must sit inside the range.
	p, err := NewP2(0.5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 1001; i++ {
		if err := p.Add(float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	v, err := p.Value()
	if err != nil {
		t.Fatal(err)
	}
	if v < 400 || v > 600 {
		t.Errorf("median of 1..1001 estimated at %v", v)
	}
}
