package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestQuantileSketchAccuracy(t *testing.T) {
	s := NewRTTSketch()
	var exact Dist
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 50000; i++ {
		v := math.Exp(rng.NormFloat64()*1.2 + 3.5) // lognormal around ~33ms
		if err := s.Add(v); err != nil {
			t.Fatal(err)
		}
		if err := exact.Add(v); err != nil {
			t.Fatal(err)
		}
	}
	for _, q := range []float64{0.05, 0.25, 0.5, 0.75, 0.95, 0.99} {
		got, err := s.Quantile(q)
		if err != nil {
			t.Fatal(err)
		}
		want, err := exact.Quantile(q)
		if err != nil {
			t.Fatal(err)
		}
		if rel := math.Abs(got-want) / want; rel > 0.03 {
			t.Errorf("q=%v: sketch %v vs exact %v (rel err %.3f > 3%%)", q, got, want, rel)
		}
	}
}

// TestQuantileSketchMergeInvariant checks the property the parallel
// scanner needs: any sharding of the input merges to the identical
// sketch, so quantile estimates cannot vary with the worker count.
func TestQuantileSketchMergeInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	samples := make([]float64, 9001)
	for i := range samples {
		samples[i] = 0.5 + 500*rng.Float64()
	}
	whole := NewRTTSketch()
	for _, v := range samples {
		if err := whole.Add(v); err != nil {
			t.Fatal(err)
		}
	}
	wantP50, err := whole.Quantile(0.5)
	if err != nil {
		t.Fatal(err)
	}
	wantP95, err := whole.Quantile(0.95)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 2, 4, 7} {
		parts := make([]*QuantileSketch, shards)
		for i := range parts {
			parts[i] = NewRTTSketch()
			lo, hi := len(samples)*i/shards, len(samples)*(i+1)/shards
			for _, v := range samples[lo:hi] {
				if err := parts[i].Add(v); err != nil {
					t.Fatal(err)
				}
			}
		}
		merged := parts[0]
		for _, p := range parts[1:] {
			if err := merged.Merge(p); err != nil {
				t.Fatal(err)
			}
		}
		if merged.N() != whole.N() {
			t.Errorf("shards=%d: N=%d, want %d", shards, merged.N(), whole.N())
		}
		p50, _ := merged.Quantile(0.5)
		p95, _ := merged.Quantile(0.95)
		if p50 != wantP50 || p95 != wantP95 {
			t.Errorf("shards=%d: p50=%v p95=%v, want %v %v", shards, p50, p95, wantP50, wantP95)
		}
	}
}

func TestQuantileSketchEdges(t *testing.T) {
	s := NewRTTSketch()
	if _, err := s.Quantile(0.5); err != ErrEmpty {
		t.Errorf("empty sketch quantile err = %v, want ErrEmpty", err)
	}
	for _, v := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if err := s.Add(v); err == nil {
			t.Errorf("Add(%v) accepted", v)
		}
	}
	// Clamping: below-range and above-range values land in end buckets.
	if err := s.Add(1e-9); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(1e9); err != nil {
		t.Fatal(err)
	}
	lo, err := s.Quantile(0)
	if err != nil {
		t.Fatal(err)
	}
	if lo != 0.01 {
		t.Errorf("bottom-bucket estimate = %v, want 0.01", lo)
	}
	hi, err := s.Quantile(1)
	if err != nil {
		t.Fatal(err)
	}
	if hi < 9e4 {
		t.Errorf("top-bucket estimate = %v, want near 1e5", hi)
	}
	if _, err := s.Quantile(1.5); err == nil {
		t.Error("quantile 1.5 accepted")
	}

	other, err := NewQuantileSketch(0.01, 1e5, 1.05)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Merge(other); err == nil {
		t.Error("mismatched sketch params accepted")
	}
	if _, err := NewQuantileSketch(0, 1, 1.02); err == nil {
		t.Error("lo=0 accepted")
	}
	if _, err := NewQuantileSketch(1, 2, 1); err == nil {
		t.Error("gamma=1 accepted")
	}
}
