package stats

import (
	"encoding/binary"
	"fmt"
	"math"
	"slices"
	"sort"
	"time"

	"repro/internal/snap"
)

// Snapshot state codecs. Each aggregate serializes its exact in-memory
// accumulator — float fields as raw IEEE-754 bits, samples in insertion
// order — so a decoded aggregate continues adding and merging bitwise
// identically to one that never left memory. Decoders validate
// structure (counts vs remaining bytes, totals vs bucket sums) and
// reject values Add would reject, so corrupt state surfaces as an error
// rather than a subtly wrong figure.

// AppendState appends d's serialized accumulator state to b. The sample
// buffer is written as one contiguous slab of IEEE-754 bits — snapshots
// carry a few buffered floats per dataset sample, so this loop is the
// bulk of every snapshot write.
func (d *Dist) AppendState(b []byte) []byte {
	if len(d.spans) == 1 {
		span := d.spans[0]
		n, m := len(span)/8, len(d.samples)
		b = snap.AppendUvarint(b, uint64(n+m))
		if m == 0 {
			// A still-serialized span round-trips verbatim.
			b = append(b, span...)
		} else {
			// Merge the span slab with the sorted overlay straight into
			// the output, written ascending — the same bytes a sorted
			// materialized buffer would serialize.
			ov := append([]float64(nil), d.samples...)
			sort.Float64s(ov)
			b = slices.Grow(b, 8*(n+m)+19)
			off := len(b)
			b = b[:off+8*(n+m)]
			i, j := 0, 0
			for k := 0; k < n+m; k++ {
				var bits uint64
				if i < n {
					sb := binary.LittleEndian.Uint64(span[8*i:])
					if j >= m || math.Float64frombits(sb) <= ov[j] {
						bits = sb
						i++
					} else {
						bits = math.Float64bits(ov[j])
						j++
					}
				} else {
					bits = math.Float64bits(ov[j])
					j++
				}
				binary.LittleEndian.PutUint64(b[off+8*k:], bits)
			}
		}
		b = snap.AppendFloat(b, d.sum)
		b = snap.AppendFloat(b, d.sumSq)
		return snap.AppendBool(b, true)
	}
	if len(d.spans) > 1 {
		// Multi-span states arise only transiently, from window
		// composition; serialize by merging on a clone so d stays lazy.
		// AppendState has never validated span bits (checksums vouch for
		// them), so an undecodable slab serializes as a sorted best
		// effort of the decodable prefix rather than panicking.
		c := d.Clone()
		if err := c.materialize(); err != nil {
			c.spans = nil
			c.ensureSorted()
		}
		return c.AppendState(b)
	}
	b = snap.AppendUvarint(b, uint64(len(d.samples)))
	b = slices.Grow(b, 8*len(d.samples)+19)
	off := len(b)
	b = b[:off+8*len(d.samples)]
	for i, v := range d.samples {
		binary.LittleEndian.PutUint64(b[off+8*i:], math.Float64bits(v))
	}
	b = snap.AppendFloat(b, d.sum)
	b = snap.AppendFloat(b, d.sumSq)
	return snap.AppendBool(b, d.sorted)
}

// Sort orders the sample buffer ascending, exactly as report-time
// queries do lazily. Sorting commutes with every downstream result —
// the running sums are carried explicitly and quantiles see the same
// multiset — but a buffer sorted before serialization round-trips with
// sorted=true, so a snapshot-seeded report skips the large re-sort.
func (d *Dist) Sort() {
	if len(d.spans) > 0 {
		return // spans are sorted by construction
	}
	d.ensureSorted()
}

func sortedKeys(m map[int]*Dist) []int {
	idxs := make([]int, 0, len(m))
	for i := range m {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	return idxs
}

// DecodeDistState decodes one Dist state from c. A sorted sample slab is
// captured by reference as a lazy span (see Dist.spans): the cursor's
// buffer must therefore outlive the distribution, which holds for
// snapshot payloads (the decoded suite keeps the payload alive).
// Per-sample validation runs when the span is first touched; untouched
// spans are vouched for by the snapshot's checksums.
func DecodeDistState(c *snap.Cursor) (*Dist, error) {
	n, err := c.Uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(c.Remaining())/8 {
		return nil, fmt.Errorf("stats: dist claims %d samples, %d bytes remain", n, c.Remaining())
	}
	var raw []byte
	if n > 0 {
		if raw, err = c.Bytes(int(n) * 8); err != nil {
			return nil, err
		}
	}
	d := &Dist{}
	if d.sum, err = c.Float(); err != nil {
		return nil, err
	}
	if d.sumSq, err = c.Float(); err != nil {
		return nil, err
	}
	if d.sorted, err = c.Bool(); err != nil {
		return nil, err
	}
	if n > 0 {
		d.spans = [][]byte{raw}
		if !d.sorted {
			// An unsorted buffer cannot serve order-statistic reads;
			// decode it eagerly, restoring insertion order.
			if err := d.materialize(); err != nil {
				return nil, err
			}
			d.sorted = false
		}
	}
	return d, nil
}

// AppendState appends ts's serialized state to b.
func (ts *TimeSeries) AppendState(b []byte) []byte {
	b = snap.AppendVarint(b, ts.start.Unix())
	b = snap.AppendVarint(b, int64(ts.start.Nanosecond()))
	b = snap.AppendVarint(b, int64(ts.width))
	b = snap.AppendUvarint(b, uint64(len(ts.bins)))
	for _, i := range sortedKeys(ts.bins) {
		b = snap.AppendVarint(b, int64(i))
		b = ts.bins[i].AppendState(b)
	}
	return b
}

// DecodeTimeSeriesState decodes one TimeSeries state from c.
func DecodeTimeSeriesState(c *snap.Cursor) (*TimeSeries, error) {
	sec, err := c.Varint()
	if err != nil {
		return nil, err
	}
	ns, err := c.Varint()
	if err != nil {
		return nil, err
	}
	width, err := c.Varint()
	if err != nil {
		return nil, err
	}
	ts, err := NewTimeSeries(time.Unix(sec, ns).UTC(), time.Duration(width))
	if err != nil {
		return nil, err
	}
	n, err := c.Uvarint()
	if err != nil {
		return nil, err
	}
	for j := uint64(0); j < n; j++ {
		i, err := c.Varint()
		if err != nil {
			return nil, err
		}
		d, err := DecodeDistState(c)
		if err != nil {
			return nil, err
		}
		if _, dup := ts.bins[int(i)]; dup {
			return nil, fmt.Errorf("stats: duplicate series bin %d in state", i)
		}
		ts.bins[int(i)] = d
	}
	return ts, nil
}

// AppendState appends h's serialized state to b.
func (h *Histogram) AppendState(b []byte) []byte {
	b = snap.AppendFloat(b, h.min)
	b = snap.AppendFloat(b, h.max)
	b = snap.AppendUvarint(b, uint64(len(h.counts)))
	for _, c := range h.counts {
		b = snap.AppendUvarint(b, c)
	}
	b = snap.AppendUvarint(b, h.underflow)
	b = snap.AppendUvarint(b, h.overflow)
	return snap.AppendUvarint(b, h.total)
}

// DecodeHistogramState decodes one Histogram state from c.
func DecodeHistogramState(c *snap.Cursor) (*Histogram, error) {
	min, err := c.Float()
	if err != nil {
		return nil, err
	}
	max, err := c.Float()
	if err != nil {
		return nil, err
	}
	n, err := c.Uvarint()
	if err != nil {
		return nil, err
	}
	if n == 0 || n > uint64(c.Remaining()) {
		return nil, fmt.Errorf("stats: histogram claims %d bins, %d bytes remain", n, c.Remaining())
	}
	// NewHistogram recomputes width from (min, max, n) exactly as the
	// original construction did, so decoded bin edges are bit-identical.
	h, err := NewHistogram(min, max, int(n))
	if err != nil {
		return nil, err
	}
	var sum uint64
	for i := range h.counts {
		if h.counts[i], err = c.Uvarint(); err != nil {
			return nil, err
		}
		sum += h.counts[i]
	}
	if h.underflow, err = c.Uvarint(); err != nil {
		return nil, err
	}
	if h.overflow, err = c.Uvarint(); err != nil {
		return nil, err
	}
	if h.total, err = c.Uvarint(); err != nil {
		return nil, err
	}
	if h.total != sum+h.underflow+h.overflow {
		return nil, fmt.Errorf("stats: histogram total %d != bucket sum %d", h.total, sum+h.underflow+h.overflow)
	}
	return h, nil
}

// AppendState appends s's serialized state to b.
func (s *QuantileSketch) AppendState(b []byte) []byte {
	b = snap.AppendFloat(b, s.lo)
	b = snap.AppendFloat(b, s.gamma)
	b = snap.AppendUvarint(b, uint64(len(s.counts)))
	for _, c := range s.counts {
		b = snap.AppendUvarint(b, c)
	}
	return b
}

// DecodeQuantileSketchState decodes one QuantileSketch state from c.
func DecodeQuantileSketchState(c *snap.Cursor) (*QuantileSketch, error) {
	lo, err := c.Float()
	if err != nil {
		return nil, err
	}
	gamma, err := c.Float()
	if err != nil {
		return nil, err
	}
	if !(lo > 0) || math.IsInf(lo, 0) || !(gamma > 1) || math.IsInf(gamma, 0) {
		return nil, fmt.Errorf("stats: invalid sketch parameters lo=%v gamma=%v in state", lo, gamma)
	}
	n, err := c.Uvarint()
	if err != nil {
		return nil, err
	}
	if n == 0 || n > uint64(c.Remaining()) {
		return nil, fmt.Errorf("stats: sketch claims %d buckets, %d bytes remain", n, c.Remaining())
	}
	s := &QuantileSketch{
		lo:     lo,
		gamma:  gamma,
		invLnG: 1 / math.Log(gamma),
		counts: make([]uint64, n),
	}
	for i := range s.counts {
		if s.counts[i], err = c.Uvarint(); err != nil {
			return nil, err
		}
		s.total += s.counts[i]
	}
	return s, nil
}
