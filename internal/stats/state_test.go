package stats

import (
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"repro/internal/snap"
)

// TestDistStateRoundTrip checks that a decoded Dist is bitwise
// interchangeable with the original: same queries, and — the property
// snapshots rely on — continuing to Add after decode yields the same
// accumulators as never serializing at all.
func TestDistStateRoundTrip(t *testing.T) {
	d := &Dist{}
	vals := []float64{3.25, 1e-9, 7, 2.5, 3.25, 1e6, 0.1}
	for _, v := range vals {
		if err := d.Add(v); err != nil {
			t.Fatal(err)
		}
	}
	c := snap.NewCursor(d.AppendState(nil))
	got, err := DecodeDistState(c)
	if err != nil {
		t.Fatal(err)
	}
	if c.Remaining() != 0 {
		t.Fatalf("%d bytes remain", c.Remaining())
	}
	if !reflect.DeepEqual(got, d) {
		t.Fatalf("round trip: got %+v want %+v", got, d)
	}

	// Continue adding on both; every accumulator must stay bitwise equal.
	for _, v := range []float64{9.75, 0.5} {
		if err := d.Add(v); err != nil {
			t.Fatal(err)
		}
		if err := got.Add(v); err != nil {
			t.Fatal(err)
		}
	}
	if math.Float64bits(got.sum) != math.Float64bits(d.sum) ||
		math.Float64bits(got.sumSq) != math.Float64bits(d.sumSq) ||
		!reflect.DeepEqual(got.samples, d.samples) {
		t.Fatal("decoded dist diverged after further adds")
	}

	// Sorted flag round-trips: a queried dist decodes as sorted, and the
	// sorted slab is captured lazily — order-statistic queries answer
	// straight from the span, materializing recovers the full buffer,
	// and re-encoding the untouched span reproduces the state verbatim.
	if _, err := d.Median(); err != nil {
		t.Fatal(err)
	}
	state := d.AppendState(nil)
	c = snap.NewCursor(state)
	got, err = DecodeDistState(c)
	if err != nil {
		t.Fatal(err)
	}
	if !got.sorted || len(got.spans) == 0 {
		t.Fatalf("sorted dist state not captured as span: %+v", got)
	}
	if !bytes.Equal(got.AppendState(nil), state) {
		t.Fatal("span splice did not reproduce the state")
	}
	gm, err := got.Median()
	if err != nil {
		t.Fatal(err)
	}
	dm, err := d.Median()
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(gm) != math.Float64bits(dm) {
		t.Fatalf("span median %v != %v", gm, dm)
	}
	if err := got.materialize(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.samples, d.samples) {
		t.Fatal("sorted dist state did not round-trip")
	}

	// Empty dist round-trips too.
	c = snap.NewCursor((&Dist{}).AppendState(nil))
	if got, err = DecodeDistState(c); err != nil || got.N() != 0 {
		t.Fatalf("empty dist: %v %+v", err, got)
	}
}

func TestDecodeDistStateRejectsCorruption(t *testing.T) {
	d := &Dist{}
	if err := d.AddAll(1, 2, 3); err != nil {
		t.Fatal(err)
	}
	state := d.AppendState(nil)
	for n := 0; n < len(state); n++ {
		if _, err := DecodeDistState(snap.NewCursor(state[:n])); err == nil {
			t.Fatalf("truncation to %d bytes decoded", n)
		}
	}
	// Absurd sample count vs remaining bytes.
	bad := snap.AppendUvarint(nil, 1<<40)
	if _, err := DecodeDistState(snap.NewCursor(bad)); err == nil {
		t.Fatal("oversized count decoded")
	}
	// NaN sample in state.
	bad = snap.AppendUvarint(nil, 1)
	bad = snap.AppendFloat(bad, math.NaN())
	bad = snap.AppendFloat(bad, 0)
	bad = snap.AppendFloat(bad, 0)
	bad = snap.AppendBool(bad, false)
	if _, err := DecodeDistState(snap.NewCursor(bad)); err == nil {
		t.Fatal("NaN sample decoded")
	}
}

func TestTimeSeriesStateRoundTrip(t *testing.T) {
	start := time.Date(2019, 9, 1, 0, 0, 0, 0, time.UTC)
	ts, err := NewTimeSeries(start, 7*24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range []float64{10, 20, 15, 40, 8} {
		if err := ts.Add(start.Add(time.Duration(i*50)*time.Hour), v); err != nil {
			t.Fatal(err)
		}
	}
	c := snap.NewCursor(ts.AppendState(nil))
	got, err := DecodeTimeSeriesState(c)
	if err != nil {
		t.Fatal(err)
	}
	if c.Remaining() != 0 {
		t.Fatalf("%d bytes remain", c.Remaining())
	}
	if !got.start.Equal(ts.start) || got.width != ts.width || !reflect.DeepEqual(got.bins, ts.bins) {
		t.Fatalf("round trip: got %+v want %+v", got, ts)
	}
	wantPts, err := ts.Points()
	if err != nil {
		t.Fatal(err)
	}
	gotPts, err := got.Points()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotPts, wantPts) {
		t.Fatal("points differ after round trip")
	}
}

func TestHistogramStateRoundTrip(t *testing.T) {
	h, err := NewHistogram(0, 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{-5, 0, 12, 55, 99.9, 100, 1e9} {
		if err := h.Add(v); err != nil {
			t.Fatal(err)
		}
	}
	c := snap.NewCursor(h.AppendState(nil))
	got, err := DecodeHistogramState(c)
	if err != nil {
		t.Fatal(err)
	}
	if c.Remaining() != 0 || !reflect.DeepEqual(got, h) {
		t.Fatalf("round trip: got %+v want %+v (%d remain)", got, h, c.Remaining())
	}

	// Inconsistent total is rejected.
	state := h.AppendState(nil)
	bad := append([]byte(nil), state[:len(state)-1]...)
	bad = snap.AppendUvarint(bad, h.total+1)
	if _, err := DecodeHistogramState(snap.NewCursor(bad)); err == nil {
		t.Fatal("inconsistent total decoded")
	}
}

func TestQuantileSketchStateRoundTrip(t *testing.T) {
	s := NewRTTSketch()
	for _, v := range []float64{0.005, 0.3, 12, 90, 450, 99999, 1e9} {
		if err := s.Add(v); err != nil {
			t.Fatal(err)
		}
	}
	c := snap.NewCursor(s.AppendState(nil))
	got, err := DecodeQuantileSketchState(c)
	if err != nil {
		t.Fatal(err)
	}
	if c.Remaining() != 0 || !reflect.DeepEqual(got, s) {
		t.Fatalf("round trip mismatch (%d remain)", c.Remaining())
	}
	// Merging the decoded sketch back into a fresh one works (parameters
	// survived bitwise).
	fresh := NewRTTSketch()
	if err := fresh.Merge(got); err != nil {
		t.Fatal(err)
	}
	if fresh.N() != s.N() {
		t.Fatalf("merged N %d want %d", fresh.N(), s.N())
	}

	// Bad parameters are rejected.
	bad := snap.AppendFloat(nil, -1)
	bad = snap.AppendFloat(bad, 1.02)
	bad = snap.AppendUvarint(bad, 1)
	bad = snap.AppendUvarint(bad, 0)
	if _, err := DecodeQuantileSketchState(snap.NewCursor(bad)); err == nil {
		t.Fatal("negative lo decoded")
	}
}

// TestStateAppendsInPlace pins the Append* convention: state encoders
// append to the passed buffer rather than replacing it, so callers can
// concatenate multiple aggregates into one payload.
func TestStateAppendsInPlace(t *testing.T) {
	d := &Dist{}
	if err := d.Add(4); err != nil {
		t.Fatal(err)
	}
	prefix := []byte("prefix")
	out := d.AppendState(append([]byte(nil), prefix...))
	if !bytes.HasPrefix(out, prefix) {
		t.Fatal("AppendState did not preserve prefix")
	}
}

// TestDistSpanOverlayQueries pins the lazy span+overlay representation
// to an eagerly materialized twin: merging deltas into a span-backed
// dist keeps the history serialized, yet every query and the
// re-serialized state stay bitwise identical to the materialized path.
func TestDistSpanOverlayQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	d := &Dist{}
	for i := 0; i < 4001; i++ {
		if err := d.Add(1 + 250*rng.Float64()); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.Median(); err != nil { // sorted state captures as span
		t.Fatal(err)
	}
	state := d.AppendState(nil)
	lazy, err := DecodeDistState(snap.NewCursor(state))
	if err != nil {
		t.Fatal(err)
	}
	eager, err := DecodeDistState(snap.NewCursor(state))
	if err != nil {
		t.Fatal(err)
	}
	if err := eager.materialize(); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		delta := &Dist{}
		for i := 0; i < 61; i++ {
			if err := delta.Add(1 + 250*rng.Float64()); err != nil {
				t.Fatal(err)
			}
		}
		if err := lazy.Merge(delta); err != nil {
			t.Fatal(err)
		}
		if err := eager.Merge(delta); err != nil {
			t.Fatal(err)
		}
		if len(lazy.spans) == 0 {
			t.Fatalf("round %d: delta merge materialized the span", round)
		}
		if lazy.N() != eager.N() {
			t.Fatalf("round %d: n %d != %d", round, lazy.N(), eager.N())
		}
		for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.95, 0.99, 1} {
			lv, err := lazy.Quantile(q)
			if err != nil {
				t.Fatal(err)
			}
			ev, err := eager.Quantile(q)
			if err != nil {
				t.Fatal(err)
			}
			if math.Float64bits(lv) != math.Float64bits(ev) {
				t.Fatalf("round %d: q%v %v != %v", round, q, lv, ev)
			}
		}
		for name, pair := range map[string][2]func() (float64, error){
			"min":  {lazy.Min, eager.Min},
			"max":  {lazy.Max, eager.Max},
			"mean": {lazy.Mean, eager.Mean},
			"std":  {lazy.StdDev, eager.StdDev},
		} {
			lv, err := pair[0]()
			if err != nil {
				t.Fatal(err)
			}
			ev, err := pair[1]()
			if err != nil {
				t.Fatal(err)
			}
			if math.Float64bits(lv) != math.Float64bits(ev) {
				t.Fatalf("round %d: %s %v != %v", round, name, lv, ev)
			}
		}
	}
	// Serializing the span+overlay form writes the same bytes as the
	// materialized, sorted twin.
	eager.ensureSorted()
	if !bytes.Equal(lazy.AppendState(nil), eager.AppendState(nil)) {
		t.Fatal("span+overlay state differs from materialized state")
	}
}

// TestDistSpanCorruptionSurfaces confirms deferred validation still
// surfaces: a NaN hidden in a sorted slab decodes lazily but fails on
// first touch instead of yielding a figure.
func TestDistSpanCorruptionSurfaces(t *testing.T) {
	bad := snap.AppendUvarint(nil, 2)
	bad = snap.AppendFloat(bad, 1)
	bad = snap.AppendFloat(bad, math.NaN())
	bad = snap.AppendFloat(bad, 1)
	bad = snap.AppendFloat(bad, 1)
	bad = snap.AppendBool(bad, true)
	d, err := DecodeDistState(snap.NewCursor(bad))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Quantile(0.9); err == nil {
		t.Fatal("NaN span sample served a quantile")
	}
	if err := d.materialize(); err == nil {
		t.Fatal("NaN span sample materialized")
	}
}
