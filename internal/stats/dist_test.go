package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestDistBasics(t *testing.T) {
	var d Dist
	if _, err := d.Mean(); err != ErrEmpty {
		t.Errorf("Mean on empty = %v, want ErrEmpty", err)
	}
	if err := d.AddAll(3, 1, 2, 5, 4); err != nil {
		t.Fatal(err)
	}
	if d.N() != 5 {
		t.Errorf("N = %d, want 5", d.N())
	}
	if m, _ := d.Mean(); m != 3 {
		t.Errorf("Mean = %v, want 3", m)
	}
	if m, _ := d.Min(); m != 1 {
		t.Errorf("Min = %v, want 1", m)
	}
	if m, _ := d.Max(); m != 5 {
		t.Errorf("Max = %v, want 5", m)
	}
	if m, _ := d.Median(); m != 3 {
		t.Errorf("Median = %v, want 3", m)
	}
	sd, _ := d.StdDev()
	if math.Abs(sd-math.Sqrt(2)) > 1e-9 {
		t.Errorf("StdDev = %v, want sqrt(2)", sd)
	}
}

func TestDistRejectsInvalid(t *testing.T) {
	var d Dist
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if err := d.Add(v); err == nil {
			t.Errorf("Add(%v) accepted", v)
		}
	}
	if d.N() != 0 {
		t.Errorf("invalid samples were stored: N=%d", d.N())
	}
}

func TestQuantileInterpolation(t *testing.T) {
	var d Dist
	if err := d.AddAll(10, 20); err != nil {
		t.Fatal(err)
	}
	q, err := d.Quantile(0.5)
	if err != nil || q != 15 {
		t.Errorf("Quantile(0.5) = %v, %v; want 15", q, err)
	}
	if _, err := d.Quantile(-0.1); err == nil {
		t.Error("Quantile(-0.1) accepted")
	}
	if _, err := d.Quantile(1.1); err == nil {
		t.Error("Quantile(1.1) accepted")
	}
	// Single sample: every quantile is that sample.
	var one Dist
	if err := one.Add(7); err != nil {
		t.Fatal(err)
	}
	for _, q := range []float64{0, 0.3, 1} {
		got, err := one.Quantile(q)
		if err != nil || got != 7 {
			t.Errorf("single-sample Quantile(%v) = %v, %v", q, got, err)
		}
	}
}

func TestCDF(t *testing.T) {
	var d Dist
	if err := d.AddAll(1, 2, 2, 3); err != nil {
		t.Fatal(err)
	}
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {1.5, 0.25}, {2, 0.75}, {3, 1}, {10, 1},
	}
	for _, tc := range cases {
		got, err := d.CDF(tc.x)
		if err != nil || got != tc.want {
			t.Errorf("CDF(%v) = %v, %v; want %v", tc.x, got, err, tc.want)
		}
	}
	curve, err := d.Curve([]float64{1, 2, 3})
	if err != nil || len(curve) != 3 || curve[1].P != 0.75 {
		t.Errorf("Curve = %v, %v", curve, err)
	}
}

func TestDistProperties(t *testing.T) {
	// Quantile is monotone in q, CDF is monotone in x, and
	// CDF(Quantile(q)) >= q for any sample set.
	prop := func(raw []float64, qa, qb float64) bool {
		var d Dist
		n := 0
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e12 {
				if err := d.Add(v); err != nil {
					return false
				}
				n++
			}
		}
		if n == 0 {
			return true
		}
		clampQ := func(q float64) float64 {
			q = math.Abs(math.Mod(q, 1))
			if math.IsNaN(q) {
				return 0.5
			}
			return q
		}
		qa, qb = clampQ(qa), clampQ(qb)
		if qa > qb {
			qa, qb = qb, qa
		}
		va, err := d.Quantile(qa)
		if err != nil {
			return false
		}
		vb, err := d.Quantile(qb)
		if err != nil {
			return false
		}
		if va > vb+1e-9 {
			return false
		}
		ca, err := d.CDF(va)
		if err != nil {
			return false
		}
		cb, err := d.CDF(vb)
		if err != nil {
			return false
		}
		return ca <= cb+1e-12 && cb <= 1 && ca >= 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSummarize(t *testing.T) {
	var d Dist
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		if err := d.Add(rng.Float64() * 100); err != nil {
			t.Fatal(err)
		}
	}
	s, err := d.Summarize()
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 1000 {
		t.Errorf("N = %d", s.N)
	}
	if !(s.Min <= s.P25 && s.P25 <= s.Median && s.Median <= s.P75 && s.P75 <= s.P95 && s.P95 <= s.Max) {
		t.Errorf("summary not ordered: %+v", s)
	}
	if s.Mean < 40 || s.Mean > 60 {
		t.Errorf("uniform mean = %v, want ~50", s.Mean)
	}
	var empty Dist
	if _, err := empty.Summarize(); err != ErrEmpty {
		t.Errorf("Summarize on empty = %v", err)
	}
}

func TestQuantileMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var d Dist
	vals := make([]float64, 101)
	for i := range vals {
		vals[i] = rng.NormFloat64() * 10
		if err := d.Add(vals[i]); err != nil {
			t.Fatal(err)
		}
	}
	sort.Float64s(vals)
	for _, q := range []float64{0, 0.25, 0.5, 0.75, 1} {
		got, err := d.Quantile(q)
		if err != nil {
			t.Fatal(err)
		}
		want := vals[int(q*100)]
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", q, got, want)
		}
	}
}
