package stats

import (
	"fmt"
	"math"
)

// Histogram counts samples into fixed-width bins over [min, max), with
// overflow/underflow buckets. It backs the latency-band tallies of Figure 4.
type Histogram struct {
	min, max  float64
	width     float64
	counts    []uint64
	underflow uint64
	overflow  uint64
	total     uint64
}

// NewHistogram creates a histogram with n equal bins spanning [min, max).
func NewHistogram(min, max float64, n int) (*Histogram, error) {
	if n <= 0 {
		return nil, fmt.Errorf("stats: histogram needs >= 1 bin, got %d", n)
	}
	if !(min < max) || math.IsNaN(min) || math.IsNaN(max) {
		return nil, fmt.Errorf("stats: invalid histogram range [%v, %v)", min, max)
	}
	return &Histogram{
		min:    min,
		max:    max,
		width:  (max - min) / float64(n),
		counts: make([]uint64, n),
	}, nil
}

// Add counts one sample.
func (h *Histogram) Add(v float64) error {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return fmt.Errorf("stats: invalid sample %v", v)
	}
	h.total++
	switch {
	case v < h.min:
		h.underflow++
	case v >= h.max:
		h.overflow++
	default:
		idx := int((v - h.min) / h.width)
		if idx >= len(h.counts) { // guard against float rounding at max
			idx = len(h.counts) - 1
		}
		h.counts[idx]++
	}
	return nil
}

// AddBulk counts a batch of samples — the batch-kernel entry point.
// Behaviour matches calling Add per value (samples before the first
// invalid one are counted, then the error), with the bin math hoisted
// out of the interface-call-per-row shape.
func (h *Histogram) AddBulk(vs []float64) error {
	for _, v := range vs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("stats: invalid sample %v", v)
		}
		h.total++
		switch {
		case v < h.min:
			h.underflow++
		case v >= h.max:
			h.overflow++
		default:
			idx := int((v - h.min) / h.width)
			if idx >= len(h.counts) { // guard against float rounding at max
				idx = len(h.counts) - 1
			}
			h.counts[idx]++
		}
	}
	return nil
}

// Total returns the number of samples added.
func (h *Histogram) Total() uint64 { return h.total }

// Bin describes one histogram bucket.
type Bin struct {
	Lo, Hi float64
	Count  uint64
}

// Bins returns the in-range buckets, low to high.
func (h *Histogram) Bins() []Bin {
	out := make([]Bin, len(h.counts))
	for i, c := range h.counts {
		out[i] = Bin{
			Lo:    h.min + float64(i)*h.width,
			Hi:    h.min + float64(i+1)*h.width,
			Count: c,
		}
	}
	return out
}

// Underflow returns the count of samples below the range.
func (h *Histogram) Underflow() uint64 { return h.underflow }

// Overflow returns the count of samples at or above the range.
func (h *Histogram) Overflow() uint64 { return h.overflow }

// CountBelow returns how many samples were strictly below x, where x must be
// a bin boundary (or the range bounds); other values return an error because
// the histogram cannot resolve them.
func (h *Histogram) CountBelow(x float64) (uint64, error) {
	if x <= h.min {
		return h.underflow, nil
	}
	rel := (x - h.min) / h.width
	idx := math.Round(rel)
	if math.Abs(rel-idx) > 1e-9 {
		return 0, fmt.Errorf("stats: %v is not a bin boundary", x)
	}
	n := h.underflow
	for i := 0; i < int(idx) && i < len(h.counts); i++ {
		n += h.counts[i]
	}
	if x >= h.max {
		n += h.overflow
	}
	return n, nil
}
