package ping

import (
	"errors"
	"sync/atomic"

	"repro/internal/echo"
)

// Responder answers echo requests on a transport, playing the role of the
// VM the paper establishes in every cloud region (§4.1).
type Responder struct {
	tr      Transport
	served  atomic.Uint64
	dropped atomic.Uint64
}

// NewResponder installs the responder as the transport's handler.
func NewResponder(tr Transport) (*Responder, error) {
	if tr == nil {
		return nil, errors.New("ping: nil transport")
	}
	r := &Responder{tr: tr}
	tr.SetHandler(r.onPacket)
	return r, nil
}

func (r *Responder) onPacket(src string, payload []byte) {
	m, err := echo.Unmarshal(payload)
	if err != nil || m.Type != echo.TypeEchoRequest {
		r.dropped.Add(1)
		return
	}
	rep, err := m.Reply().Marshal()
	if err != nil {
		r.dropped.Add(1)
		return
	}
	if err := r.tr.Send(src, rep); err != nil {
		r.dropped.Add(1)
		return
	}
	r.served.Add(1)
}

// Served returns how many requests were answered.
func (r *Responder) Served() uint64 { return r.served.Load() }

// Dropped returns how many packets were discarded (malformed, wrong type,
// or unsendable replies).
func (r *Responder) Dropped() uint64 { return r.dropped.Load() }
