package ping

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/echo"
)

// ErrTimeout is returned when no reply arrives within the deadline; the
// measurement records it as packet loss, as the paper's ping methodology
// does.
var ErrTimeout = errors.New("ping: timeout")

// Pinger sends echo requests from one transport endpoint and matches
// replies to compute RTTs. It is safe for concurrent pings to different
// (or the same) destinations.
type Pinger struct {
	tr       Transport
	id       uint16
	rttScale float64
	now      func() time.Time
	metrics  *Metrics

	mu      sync.Mutex
	nextSeq uint16
	pending map[uint16]chan time.Duration
}

// PingerOption configures a Pinger.
type PingerOption func(*Pinger)

// WithRTTScale multiplies measured wall-clock RTTs by the given factor.
// Pair it with netsim.WithTimeScale(1/f) to run compressed simulations that
// still report full-scale latencies.
func WithRTTScale(f float64) PingerOption {
	return func(p *Pinger) {
		if f > 0 {
			p.rttScale = f
		}
	}
}

// WithClock overrides the time source (tests).
func WithClock(now func() time.Time) PingerOption {
	return func(p *Pinger) {
		if now != nil {
			p.now = now
		}
	}
}

// NewPinger wraps a transport and installs its receive handler. The id
// distinguishes this pinger's traffic, mirroring the ICMP echo identifier.
func NewPinger(tr Transport, id uint16, opts ...PingerOption) (*Pinger, error) {
	if tr == nil {
		return nil, errors.New("ping: nil transport")
	}
	p := &Pinger{
		tr:       tr,
		id:       id,
		rttScale: 1,
		now:      time.Now,
		pending:  make(map[uint16]chan time.Duration),
	}
	for _, o := range opts {
		o(p)
	}
	tr.SetHandler(p.onPacket)
	return p, nil
}

func (p *Pinger) onPacket(src string, payload []byte) {
	m, err := echo.Unmarshal(payload)
	if err != nil || m.Type != echo.TypeEchoReply || m.ID != p.id {
		return // not ours; drop like a kernel would
	}
	elapsed := p.now().Sub(time.Unix(0, m.SentUnixNano))
	if elapsed < 0 {
		return
	}
	p.mu.Lock()
	ch, ok := p.pending[m.Seq]
	if ok {
		delete(p.pending, m.Seq)
	}
	p.mu.Unlock()
	if ok {
		// Non-blocking: the waiter may have timed out concurrently.
		select {
		case ch <- time.Duration(float64(elapsed) * p.rttScale):
		default:
		}
	}
}

// Ping sends one echo request to dst and waits for the reply or the
// timeout. The returned duration is the measured RTT (scaled if WithRTTScale
// was set).
func (p *Pinger) Ping(ctx context.Context, dst string, timeout time.Duration) (time.Duration, error) {
	if timeout <= 0 {
		return 0, fmt.Errorf("ping: non-positive timeout %v", timeout)
	}
	ch := make(chan time.Duration, 1)
	p.mu.Lock()
	seq := p.nextSeq
	p.nextSeq++
	p.pending[seq] = ch
	p.mu.Unlock()

	defer func() {
		p.mu.Lock()
		delete(p.pending, seq)
		p.mu.Unlock()
	}()

	req := &echo.Message{
		Type:         echo.TypeEchoRequest,
		ID:           p.id,
		Seq:          seq,
		SentUnixNano: p.now().UnixNano(),
	}
	buf, err := req.Marshal()
	if err != nil {
		return 0, err
	}
	if err := p.tr.Send(dst, buf); err != nil {
		return 0, err
	}
	if p.metrics != nil {
		p.metrics.Sent.Inc()
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case rtt := <-ch:
		if p.metrics != nil {
			p.metrics.Received.Inc()
			p.metrics.RTTms.Observe(float64(rtt) / float64(time.Millisecond))
		}
		return rtt, nil
	case <-timer.C:
		if p.metrics != nil {
			p.metrics.Timeouts.Inc()
		}
		return 0, ErrTimeout
	case <-ctx.Done():
		return 0, ctx.Err()
	}
}

// Stats summarizes a ping series, in the shape of the classic ping footer.
type Stats struct {
	Sent     int           `json:"sent"`
	Received int           `json:"received"`
	Min      time.Duration `json:"min"`
	Avg      time.Duration `json:"avg"`
	Max      time.Duration `json:"max"`
}

// Loss returns the fraction of unanswered requests.
func (s Stats) Loss() float64 {
	if s.Sent == 0 {
		return 0
	}
	return float64(s.Sent-s.Received) / float64(s.Sent)
}

// Series sends count echo requests to dst, spaced by interval, and
// aggregates the results. A fully lost series returns valid Stats with
// Received == 0, not an error; the campaign layer decides what loss means.
func (p *Pinger) Series(ctx context.Context, dst string, count int, interval, timeout time.Duration) (Stats, error) {
	if count <= 0 {
		return Stats{}, fmt.Errorf("ping: non-positive count %d", count)
	}
	var st Stats
	var sum time.Duration
	for i := 0; i < count; i++ {
		if i > 0 && interval > 0 {
			select {
			case <-time.After(interval):
			case <-ctx.Done():
				return st, ctx.Err()
			}
		}
		st.Sent++
		rtt, err := p.Ping(ctx, dst, timeout)
		switch {
		case err == nil:
			st.Received++
			sum += rtt
			if st.Min == 0 || rtt < st.Min {
				st.Min = rtt
			}
			if rtt > st.Max {
				st.Max = rtt
			}
		case errors.Is(err, ErrTimeout):
			// loss: keep going
		default:
			return st, err
		}
	}
	if st.Received > 0 {
		st.Avg = sum / time.Duration(st.Received)
	}
	return st, nil
}
