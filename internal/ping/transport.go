// Package ping implements the measurement engine: a pinger that sends echo
// requests and measures round-trip times, the datacenter-side responder,
// and a UDP transport so the same engine runs over real sockets as well as
// the virtual network.
package ping

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
)

// Transport moves opaque payloads between named endpoints. Both
// netsim.Endpoint and UDPTransport satisfy it.
type Transport interface {
	// Addr returns this endpoint's name.
	Addr() string
	// Send submits a payload toward dst. A nil error does not imply
	// delivery.
	Send(dst string, payload []byte) error
	// SetHandler installs the receive callback.
	SetHandler(h func(src string, payload []byte))
}

// UDPRegistry maps endpoint names to UDP socket addresses so transports can
// find each other. It plays the role of DNS for the loopback deployment.
type UDPRegistry struct {
	mu    sync.RWMutex
	names map[string]*net.UDPAddr
}

// NewUDPRegistry creates an empty registry.
func NewUDPRegistry() *UDPRegistry {
	return &UDPRegistry{names: make(map[string]*net.UDPAddr)}
}

func (r *UDPRegistry) register(name string, addr *net.UDPAddr) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.names[name]; dup {
		return fmt.Errorf("ping: name %q already registered", name)
	}
	r.names[name] = addr
	return nil
}

func (r *UDPRegistry) unregister(name string) {
	r.mu.Lock()
	delete(r.names, name)
	r.mu.Unlock()
}

func (r *UDPRegistry) resolve(name string) (*net.UDPAddr, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	a, ok := r.names[name]
	return a, ok
}

// UDPTransport is a Transport over a real UDP socket on the loopback
// interface. Datagrams carry the sender's name so receivers can reply by
// name: [2-byte name length][name][payload].
type UDPTransport struct {
	name string
	reg  *UDPRegistry
	conn *net.UDPConn

	mu      sync.Mutex
	handler func(src string, payload []byte)
	closed  bool
	wg      sync.WaitGroup
}

// maxDatagram bounds receive buffers.
const maxDatagram = 2048

// NewTransport binds a UDP socket on 127.0.0.1 and registers it under name.
func (r *UDPRegistry) NewTransport(name string) (*UDPTransport, error) {
	if name == "" {
		return nil, errors.New("ping: empty transport name")
	}
	if len(name) > 255 {
		return nil, errors.New("ping: transport name too long")
	}
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return nil, fmt.Errorf("ping: listen: %w", err)
	}
	addr, ok := conn.LocalAddr().(*net.UDPAddr)
	if !ok {
		conn.Close()
		return nil, errors.New("ping: unexpected local address type")
	}
	if err := r.register(name, addr); err != nil {
		conn.Close()
		return nil, err
	}
	t := &UDPTransport{name: name, reg: r, conn: conn}
	t.wg.Add(1)
	go t.readLoop()
	return t, nil
}

// Addr returns the transport's registered name.
func (t *UDPTransport) Addr() string { return t.name }

// SetHandler installs the receive callback.
func (t *UDPTransport) SetHandler(h func(src string, payload []byte)) {
	t.mu.Lock()
	t.handler = h
	t.mu.Unlock()
}

// Send resolves dst through the registry and writes one datagram.
func (t *UDPTransport) Send(dst string, payload []byte) error {
	addr, ok := t.reg.resolve(dst)
	if !ok {
		return fmt.Errorf("ping: unknown destination %q", dst)
	}
	buf := make([]byte, 2+len(t.name)+len(payload))
	binary.BigEndian.PutUint16(buf[0:2], uint16(len(t.name)))
	copy(buf[2:], t.name)
	copy(buf[2+len(t.name):], payload)
	if len(buf) > maxDatagram {
		return fmt.Errorf("ping: datagram of %d bytes exceeds %d", len(buf), maxDatagram)
	}
	_, err := t.conn.WriteToUDP(buf, addr)
	return err
}

// Close unregisters the name and shuts the socket down.
func (t *UDPTransport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	t.mu.Unlock()
	t.reg.unregister(t.name)
	err := t.conn.Close()
	t.wg.Wait()
	return err
}

func (t *UDPTransport) readLoop() {
	defer t.wg.Done()
	buf := make([]byte, maxDatagram)
	for {
		n, _, err := t.conn.ReadFromUDP(buf)
		if err != nil {
			return // socket closed
		}
		if n < 2 {
			continue
		}
		nameLen := int(binary.BigEndian.Uint16(buf[0:2]))
		if n < 2+nameLen {
			continue
		}
		src := string(buf[2 : 2+nameLen])
		payload := append([]byte(nil), buf[2+nameLen:n]...)
		t.mu.Lock()
		h := t.handler
		t.mu.Unlock()
		if h != nil {
			h(src, payload)
		}
	}
}
