package ping

import "repro/internal/obs"

// Metrics are the pinger-engine telemetry instruments: echo requests
// sent, replies matched, timeouts, and the measured RTT distribution. A
// nil *Metrics (and nil fields, courtesy of obs nil-safety) disables
// recording without any call-site guards.
type Metrics struct {
	Sent     *obs.Counter
	Received *obs.Counter
	Timeouts *obs.Counter
	RTTms    *obs.Histogram
}

// NewMetrics registers the pinger instruments on reg. Multiple pingers
// may share one Metrics; the counters aggregate across them.
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		Sent:     reg.Counter("ping_echoes_sent_total", "Echo requests submitted to the transport."),
		Received: reg.Counter("ping_echoes_received_total", "Echo replies matched to a pending request."),
		Timeouts: reg.Counter("ping_timeouts_total", "Echo requests that expired without a reply."),
		RTTms:    reg.Histogram("ping_rtt_ms", "Measured round-trip times in milliseconds.", obs.RTTBucketsMs),
	}
}

// WithMetrics attaches telemetry instruments to a Pinger.
func WithMetrics(m *Metrics) PingerOption {
	return func(p *Pinger) { p.metrics = m }
}
