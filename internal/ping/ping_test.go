package ping

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/netsim"
)

func simPair(t *testing.T, delay time.Duration) (*Pinger, *Responder, *netsim.Network) {
	t.Helper()
	n, err := netsim.NewNetwork(netsim.LinkerFunc(
		func(src, dst string, at time.Time) (time.Duration, bool, error) {
			return delay, false, nil
		}))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(n.Close)
	pe, err := n.Attach("probe/1")
	if err != nil {
		t.Fatal(err)
	}
	de, err := n.Attach("dc/1")
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPinger(pe, 7)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewResponder(de)
	if err != nil {
		t.Fatal(err)
	}
	return p, r, n
}

func TestPingOverVirtualNetwork(t *testing.T) {
	p, r, _ := simPair(t, 5*time.Millisecond)
	rtt, err := p.Ping(context.Background(), "dc/1", 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// Two legs of 5ms each: RTT must be >= 10ms and not wildly above.
	if rtt < 10*time.Millisecond || rtt > 500*time.Millisecond {
		t.Errorf("RTT = %v, want ~10ms", rtt)
	}
	if r.Served() != 1 {
		t.Errorf("responder served %d", r.Served())
	}
}

func TestPingTimeout(t *testing.T) {
	n, err := netsim.NewNetwork(netsim.LinkerFunc(
		func(src, dst string, at time.Time) (time.Duration, bool, error) {
			return 0, true, nil // all packets lost
		}))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(n.Close)
	pe, _ := n.Attach("probe/1")
	if _, err := n.Attach("dc/1"); err != nil {
		t.Fatal(err)
	}
	p, err := NewPinger(pe, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, err = p.Ping(context.Background(), "dc/1", 30*time.Millisecond)
	if !errors.Is(err, ErrTimeout) {
		t.Errorf("got %v, want ErrTimeout", err)
	}
}

func TestPingContextCancel(t *testing.T) {
	p, _, _ := simPair(t, time.Hour) // never arrives in test time
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := p.Ping(ctx, "dc/1", time.Hour)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("got %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Ping did not honor cancellation")
	}
}

func TestPingValidation(t *testing.T) {
	if _, err := NewPinger(nil, 1); err == nil {
		t.Error("nil transport accepted")
	}
	p, _, _ := simPair(t, time.Millisecond)
	if _, err := p.Ping(context.Background(), "dc/1", 0); err == nil {
		t.Error("zero timeout accepted")
	}
	if _, err := NewResponder(nil); err == nil {
		t.Error("nil responder transport accepted")
	}
}

func TestSeries(t *testing.T) {
	p, r, _ := simPair(t, 2*time.Millisecond)
	st, err := p.Series(context.Background(), "dc/1", 5, time.Millisecond, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if st.Sent != 5 || st.Received != 5 {
		t.Errorf("stats = %+v", st)
	}
	if st.Loss() != 0 {
		t.Errorf("loss = %v", st.Loss())
	}
	if st.Min <= 0 || st.Min > st.Avg || st.Avg > st.Max {
		t.Errorf("ordering broken: %+v", st)
	}
	if r.Served() != 5 {
		t.Errorf("served = %d", r.Served())
	}
	if _, err := p.Series(context.Background(), "dc/1", 0, 0, time.Second); err == nil {
		t.Error("zero count accepted")
	}
}

func TestSeriesWithLoss(t *testing.T) {
	var mu sync.Mutex
	i := 0
	n, err := netsim.NewNetwork(netsim.LinkerFunc(
		func(src, dst string, at time.Time) (time.Duration, bool, error) {
			mu.Lock()
			defer mu.Unlock()
			i++
			// Drop every second probe-side packet (requests are odd calls
			// here because replies also traverse the linker).
			return time.Millisecond, i%4 == 1, nil
		}))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(n.Close)
	pe, _ := n.Attach("p")
	de, _ := n.Attach("d")
	p, err := NewPinger(pe, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewResponder(de); err != nil {
		t.Fatal(err)
	}
	st, err := p.Series(context.Background(), "d", 6, 0, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.Sent != 6 {
		t.Errorf("sent = %d", st.Sent)
	}
	if st.Received == 0 || st.Received == 6 {
		t.Errorf("received = %d, want partial loss", st.Received)
	}
	if st.Loss() <= 0 || st.Loss() >= 1 {
		t.Errorf("loss = %v", st.Loss())
	}
}

func TestLossStatsZeroSent(t *testing.T) {
	if (Stats{}).Loss() != 0 {
		t.Error("Loss on zero stats should be 0")
	}
}

func TestRTTScale(t *testing.T) {
	n, err := netsim.NewNetwork(netsim.LinkerFunc(
		func(src, dst string, at time.Time) (time.Duration, bool, error) {
			return time.Millisecond, false, nil
		}))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(n.Close)
	pe, _ := n.Attach("p")
	de, _ := n.Attach("d")
	p, err := NewPinger(pe, 1, WithRTTScale(100))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewResponder(de); err != nil {
		t.Fatal(err)
	}
	rtt, err := p.Ping(context.Background(), "d", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// Real RTT ~2ms, scaled by 100 -> >= 200ms reported.
	if rtt < 200*time.Millisecond {
		t.Errorf("scaled RTT = %v, want >= 200ms", rtt)
	}
}

func TestPingerIgnoresForeignTraffic(t *testing.T) {
	p, _, n := simPair(t, time.Millisecond)
	// Inject garbage and a reply with the wrong pinger ID directly.
	ext, err := n.Attach("external")
	if err != nil {
		t.Fatal(err)
	}
	if err := ext.Send("probe/1", []byte("garbage")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	// The pinger must still work.
	if _, err := p.Ping(context.Background(), "dc/1", time.Second); err != nil {
		t.Errorf("pinger broken by foreign traffic: %v", err)
	}
}

func TestConcurrentPings(t *testing.T) {
	p, r, _ := simPair(t, 2*time.Millisecond)
	var wg sync.WaitGroup
	errs := make(chan error, 20)
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := p.Ping(context.Background(), "dc/1", 2*time.Second); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if r.Served() != 20 {
		t.Errorf("served = %d, want 20", r.Served())
	}
}

func TestPingOverUDP(t *testing.T) {
	reg := NewUDPRegistry()
	pt, err := reg.NewTransport("probe/udp")
	if err != nil {
		t.Fatal(err)
	}
	defer pt.Close()
	dt, err := reg.NewTransport("dc/udp")
	if err != nil {
		t.Fatal(err)
	}
	defer dt.Close()
	p, err := NewPinger(pt, 9)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewResponder(dt)
	if err != nil {
		t.Fatal(err)
	}
	rtt, err := p.Ping(context.Background(), "dc/udp", 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if rtt <= 0 || rtt > time.Second {
		t.Errorf("loopback RTT = %v", rtt)
	}
	if r.Served() != 1 {
		t.Errorf("served = %d", r.Served())
	}
}

func TestUDPRegistry(t *testing.T) {
	reg := NewUDPRegistry()
	if _, err := reg.NewTransport(""); err == nil {
		t.Error("empty name accepted")
	}
	a, err := reg.NewTransport("a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.NewTransport("a"); err == nil {
		t.Error("duplicate name accepted")
	}
	if err := a.Send("missing", []byte("x")); err == nil {
		t.Error("send to unknown name accepted")
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
	// Name is free after close.
	b, err := reg.NewTransport("a")
	if err != nil {
		t.Errorf("name not released: %v", err)
	} else {
		b.Close()
	}
}
