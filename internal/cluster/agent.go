package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/results"
	"repro/internal/world"
)

// Sentinel conditions of the lease loop. Both are recoverable: a
// revoked lease sends the agent back to the lease queue, and sustained
// backpressure makes it release its grant so a frontier-blocking shard
// can be leased instead.
var (
	errLeaseRevoked = errors.New("cluster: lease revoked")
	errBackpressure = errors.New("cluster: sustained upload backpressure")
)

// AgentConfig wires a worker agent to its coordinator.
type AgentConfig struct {
	// ID names the agent in the coordinator's registry; required.
	ID string
	// BaseURL is the coordinator's root, e.g. http://127.0.0.1:9000.
	BaseURL string
	// Client overrides the HTTP client (default http.DefaultClient).
	Client *http.Client
	// Heartbeat overrides the heartbeat interval (default: a quarter of
	// the plan's lease TTL).
	Heartbeat time.Duration
	// ChunkBytes is the upload chunk size (default DefaultChunkBytes).
	ChunkBytes int
	// BackoffLimit is how many consecutive backoff acks the agent
	// tolerates before releasing its lease (default
	// DefaultBackoffLimit).
	BackoffLimit int
	// MaxRetries bounds transport retries per upload chunk (default
	// engine.DefaultMaxRetries).
	MaxRetries int
	// Log, when set, receives the agent's structured events.
	Log *obs.Logger

	// Gen overrides the cell generator (tests). When nil the agent
	// rebuilds the world from the plan's seed and census and uses
	// atlas.Platform.ShardGen, verifying the plan fingerprint first.
	Gen engine.GenFunc
	// BatchHint sizes per-round sample buffers when Gen is set.
	BatchHint int

	// onCell observes each encoded cell before upload (tests).
	onCell func(shard, round int, payload []byte)
}

// Agent is one cluster worker: it registers with the coordinator,
// rebuilds the world locally, then loops leasing shards and running
// each lease through engine.RunLease, shipping every completed cell
// with resumable CRC-checked uploads.
type Agent struct {
	cfg    AgentConfig
	client *http.Client
	log    *obs.Logger

	plan Plan
	gen  engine.GenFunc
	hint int

	backoffs int // consecutive backoff acks within the current lease
}

// NewAgent validates the configuration.
func NewAgent(cfg AgentConfig) (*Agent, error) {
	if cfg.ID == "" {
		return nil, errors.New("cluster: agent needs an ID")
	}
	if cfg.BaseURL == "" {
		return nil, errors.New("cluster: agent needs the coordinator's base URL")
	}
	if cfg.Client == nil {
		cfg.Client = http.DefaultClient
	}
	if cfg.ChunkBytes <= 0 {
		cfg.ChunkBytes = DefaultChunkBytes
	}
	if cfg.BackoffLimit <= 0 {
		cfg.BackoffLimit = DefaultBackoffLimit
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = engine.DefaultMaxRetries
	}
	return &Agent{
		cfg:    cfg,
		client: cfg.Client,
		log:    cfg.Log.With("agent"),
	}, nil
}

// Run executes the agent until the campaign completes, ctx is
// cancelled, or a fatal error occurs. It is safe to run many agents
// against one coordinator; the merged output does not depend on how
// many there are.
func (a *Agent) Run(ctx context.Context) error {
	if err := a.register(ctx); err != nil {
		return err
	}
	if err := a.buildGen(); err != nil {
		return err
	}
	hb := a.heartbeatEvery()
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		grant, err := a.lease(ctx)
		if err != nil {
			return err
		}
		switch grant.Status {
		case "done":
			a.log.Info("campaign done", "agent", a.cfg.ID)
			return nil
		case "wait":
			retry := time.Duration(grant.RetryMs) * time.Millisecond
			if retry <= 0 {
				retry = hb
			}
			if err := sleepCtx(ctx, retry); err != nil {
				return err
			}
		case "grant":
			err := a.runLease(ctx, grant)
			switch {
			case err == nil:
				// Lease ran to the campaign's end; loop for the next
				// shard (or the done signal).
			case errors.Is(err, errLeaseRevoked):
				a.log.Info("lease revoked; re-leasing", "lease", grant.Lease, "shard", grant.Shard)
			case errors.Is(err, errBackpressure):
				a.log.Info("releasing lease under backpressure", "lease", grant.Lease, "shard", grant.Shard)
				a.release(ctx, grant.Lease)
				if err := sleepCtx(ctx, hb); err != nil {
					return err
				}
			case ctx.Err() != nil:
				return ctx.Err()
			default:
				return err
			}
		default:
			return fmt.Errorf("cluster: unknown lease status %q", grant.Status)
		}
	}
}

// register admits the agent and fetches the plan, retrying while the
// coordinator is still coming up.
func (a *Agent) register(ctx context.Context) error {
	for {
		var plan Plan
		err := a.postJSON(ctx, "/api/v1/cluster/register", agentRequest{Agent: a.cfg.ID}, &plan)
		if err == nil {
			a.plan = plan
			a.log.Info("registered",
				"agent", a.cfg.ID, "fingerprint", plan.Fingerprint,
				"shards", plan.Shards, "rounds", plan.Rounds)
			return nil
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		a.log.Warn("register failed; retrying", "error", err)
		if serr := sleepCtx(ctx, 100*time.Millisecond); serr != nil {
			return serr
		}
	}
}

// buildGen resolves the cell generator: the configured override, or a
// world rebuilt from the plan's seed — fingerprint-verified, so an
// agent can never contribute cells from a different world than the
// coordinator's dataset.
func (a *Agent) buildGen() error {
	if a.cfg.Gen != nil {
		a.gen, a.hint = a.cfg.Gen, a.cfg.BatchHint
		return nil
	}
	w, err := world.Build(world.Config{Seed: a.plan.Seed, Probes: a.plan.Probes})
	if err != nil {
		return fmt.Errorf("cluster: agent world build: %w", err)
	}
	got := a.plan.Campaign.Fingerprint(a.plan.Seed, w.Probes.Len())
	if got != a.plan.Fingerprint {
		return fmt.Errorf("cluster: local world fingerprint %s does not match plan %s", got, a.plan.Fingerprint)
	}
	gen, err := w.Platform.ShardGen(a.plan.Campaign, a.plan.Shards)
	if err != nil {
		return err
	}
	a.gen = gen
	public := w.Platform.PublicProbes()
	a.hint = (public + a.plan.Shards - 1) / a.plan.Shards * a.plan.Campaign.TargetsPerRound
	return nil
}

// heartbeatEvery resolves the heartbeat interval.
func (a *Agent) heartbeatEvery() time.Duration {
	if a.cfg.Heartbeat > 0 {
		return a.cfg.Heartbeat
	}
	return a.plan.LeaseTTL() / 4
}

// runLease executes one granted lease: a heartbeat goroutine keeps the
// lease alive (and cancels the run the moment the coordinator revokes
// it), while engine.RunLease synthesizes and ships the shard's rounds.
func (a *Agent) runLease(ctx context.Context, grant leaseResponse) error {
	lctx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)
	a.backoffs = 0

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(a.heartbeatEvery())
		defer t.Stop()
		for {
			select {
			case <-lctx.Done():
				return
			case <-t.C:
				var res okResponse
				err := a.postJSON(lctx, "/api/v1/cluster/heartbeat",
					agentRequest{Agent: a.cfg.ID, Lease: grant.Lease}, &res)
				if err == nil && !res.OK {
					cancel(errLeaseRevoked)
					return
				}
			}
		}
	}()

	_, err := engine.RunLease(lctx, engine.LeaseConfig{
		Shard:      grant.Shard,
		StartRound: grant.StartRound,
		Rounds:     a.plan.Rounds,
		BatchHint:  a.hint,
		Gen:        a.gen,
		Log:        a.log,
		Emit: func(round int, samples []results.Sample) error {
			payload, eerr := results.EncodeCell(samples)
			if eerr != nil {
				return eerr
			}
			if a.cfg.onCell != nil {
				a.cfg.onCell(grant.Shard, round, payload)
			}
			return a.uploadCell(lctx, grant, round, payload)
		},
	})
	cancel(nil)
	wg.Wait()
	if err != nil && errors.Is(context.Cause(lctx), errLeaseRevoked) {
		return errLeaseRevoked
	}
	return err
}

// uploadCell ships one encoded cell in resumable chunks, following the
// coordinator's authoritative offsets and statuses.
func (a *Agent) uploadCell(ctx context.Context, grant leaseResponse, round int, payload []byte) error {
	size := int64(len(payload))
	crc := crc32.ChecksumIEEE(payload)
	var offset int64
	transportErrs := 0
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		end := offset + int64(a.cfg.ChunkBytes)
		if end > size {
			end = size
		}
		ack, err := a.postChunk(ctx, grant, round, offset, size, crc, payload[offset:end])
		if err != nil {
			transportErrs++
			if transportErrs > a.cfg.MaxRetries {
				return fmt.Errorf("cluster: upload shard %d round %d: %w", grant.Shard, round, err)
			}
			if serr := sleepCtx(ctx, 50*time.Millisecond); serr != nil {
				return serr
			}
			continue
		}
		transportErrs = 0
		switch ack.Status {
		case StatusPartial:
			offset = ack.Received
		case StatusResume:
			offset = ack.Received
		case StatusComplete, StatusDuplicate:
			a.backoffs = 0
			return nil
		case StatusBackoff:
			a.backoffs++
			if a.backoffs >= a.cfg.BackoffLimit {
				return errBackpressure
			}
			if serr := sleepCtx(ctx, a.heartbeatEvery()); serr != nil {
				return serr
			}
		case StatusRevoked:
			return errLeaseRevoked
		case StatusFailed:
			return fmt.Errorf("cluster: campaign failed at coordinator: %s", ack.Error)
		default:
			return fmt.Errorf("cluster: unknown upload ack status %q", ack.Status)
		}
	}
}

// lease requests a shard grant.
func (a *Agent) lease(ctx context.Context) (leaseResponse, error) {
	var res leaseResponse
	err := a.postJSON(ctx, "/api/v1/cluster/lease", agentRequest{Agent: a.cfg.ID}, &res)
	return res, err
}

// release voluntarily returns a lease.
func (a *Agent) release(ctx context.Context, leaseID string) {
	var res okResponse
	_ = a.postJSON(ctx, "/api/v1/cluster/release", agentRequest{Agent: a.cfg.ID, Lease: leaseID}, &res)
}

// postJSON posts a JSON control request and decodes the JSON reply.
func (a *Agent) postJSON(ctx context.Context, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, a.cfg.BaseURL+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	return a.do(req, out)
}

// postChunk posts one raw upload chunk.
func (a *Agent) postChunk(ctx context.Context, grant leaseResponse, round int, offset, size int64, crc uint32, data []byte) (UploadAck, error) {
	q := url.Values{}
	q.Set("agent", a.cfg.ID)
	q.Set("lease", grant.Lease)
	q.Set("shard", strconv.Itoa(grant.Shard))
	q.Set("round", strconv.Itoa(round))
	q.Set("offset", strconv.FormatInt(offset, 10))
	q.Set("size", strconv.FormatInt(size, 10))
	q.Set("crc", strconv.FormatUint(uint64(crc), 10))
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		a.cfg.BaseURL+"/api/v1/cluster/blocks?"+q.Encode(), bytes.NewReader(data))
	if err != nil {
		return UploadAck{}, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	var ack UploadAck
	if err := a.do(req, &ack); err != nil {
		return UploadAck{}, err
	}
	return ack, nil
}

// do executes a request and decodes the JSON reply into out.
func (a *Agent) do(req *http.Request, out any) error {
	res, err := a.client.Do(req)
	if err != nil {
		return err
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(res.Body, 512))
		return fmt.Errorf("cluster: %s %s: %s: %s",
			req.Method, req.URL.Path, res.Status, bytes.TrimSpace(msg))
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(res.Body).Decode(out)
}

// sleepCtx sleeps for d unless ctx ends first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
