// Package cluster is the distributed campaign control plane: a
// coordinator that owns the campaign plan and the merged dataset, plus
// worker agents that lease shards, synthesize their rounds through the
// execution engine, and ship each completed (shard, round) cell back
// over HTTP.
//
// The merge guarantee is the whole point: the coordinator partitions
// the probe population into a fixed number of contiguous shards chosen
// by the plan — independent of how many agents show up — and merges
// uploaded cells round-major in shard order, committing the sink on the
// engine's checkpoint cadence. Because every cell is a deterministic
// function of the seeded world model and its (shard, round) identity,
// the merged dataset is byte-identical to a single-process engine run
// at any agent count, including runs where an agent dies mid-campaign
// and its shard is re-leased to a survivor.
//
// Failure model: agents hold one lease at a time and heartbeat it.
// The coordinator revokes a lease when its agent's heartbeat goes
// stale, or when the leased shard blocks the merge frontier without
// advancing its upload watermark (a straggler); the next Lease call
// from any agent re-grants the shard from its durable watermark.
// Uploads are chunked and resumable with a full-payload CRC, and every
// cell's colf block CRCs are re-verified on decode, so a torn or
// corrupted upload can never reach the merged dataset. The coordinator
// persists its merge watermark in the engine's checkpoint format
// (engine.Checkpoint), so a restarted coordinator resumes from
// checkpoint + sink truncation exactly like a restarted engine run.
package cluster

import (
	"time"

	"repro/internal/atlas"
)

// Defaults for plan and coordinator knobs.
const (
	// DefaultShards is the plan's shard count when unset. Like the
	// engine's worker count, it never affects the output bytes — it only
	// bounds how many agents can execute concurrently.
	DefaultShards = 8
	// DefaultMaxPendingRounds bounds how far any shard's upload
	// watermark may run ahead of the merge frontier before uploads get
	// backoff acks (the cluster analogue of the engine's queue depth).
	DefaultMaxPendingRounds = 64
	// DefaultChunkBytes is the agent's upload chunk size.
	DefaultChunkBytes = 256 << 10
	// DefaultLeaseTTL is how long a lease survives without a heartbeat.
	DefaultLeaseTTL = 10 * time.Second
	// DefaultStallTTL is how long a frontier-blocking shard may go
	// without advancing its upload watermark before its lease is
	// revoked as a straggler.
	DefaultStallTTL = 45 * time.Second
	// DefaultBackoffLimit is how many consecutive backoff acks an agent
	// tolerates before voluntarily releasing its lease so a
	// frontier-blocking shard can be granted instead.
	DefaultBackoffLimit = 8
)

// Plan is the campaign specification the coordinator owns and hands to
// every registering agent. Agents rebuild the world locally from Seed
// and Probes and verify Fingerprint before leasing, so a mis-deployed
// agent can never contribute cells from a different world.
type Plan struct {
	// Fingerprint identifies the (campaign, seed, census) tuple; see
	// atlas.CampaignConfig.Fingerprint.
	Fingerprint string `json:"fingerprint"`
	// Seed and Probes parameterize world.Build on each agent.
	Seed   uint64 `json:"seed"`
	Probes int    `json:"probes"`
	// Shards is the fixed partition width. It bounds agent concurrency
	// but never changes the merged bytes.
	Shards int `json:"shards"`
	// Rounds is the campaign's round count (atlas.CampaignConfig.Rounds).
	Rounds int `json:"rounds"`
	// Campaign is the full campaign window and sampling configuration.
	Campaign atlas.CampaignConfig `json:"campaign"`
	// LeaseTTLMs is the heartbeat deadline agents must beat, in
	// milliseconds (wire-friendly; see LeaseTTL).
	LeaseTTLMs int64 `json:"lease_ttl_ms"`
}

// LeaseTTL returns the plan's lease TTL as a duration, applying the
// default when unset.
func (p Plan) LeaseTTL() time.Duration {
	if p.LeaseTTLMs <= 0 {
		return DefaultLeaseTTL
	}
	return time.Duration(p.LeaseTTLMs) * time.Millisecond
}
