package cluster

import (
	"strconv"

	"repro/internal/obs"
)

// Metrics are the control plane's instruments. A nil *Metrics (or any
// nil field) disables that instrument; the coordinator and agents never
// guard.
type Metrics struct {
	// AgentsLive is the number of registered agents with a fresh
	// heartbeat.
	AgentsLive *obs.Gauge
	// LeasesActive is the number of shards currently leased.
	LeasesActive *obs.Gauge
	// LeaseAgeMax is the age in seconds of the oldest active lease,
	// refreshed on every coordinator request.
	LeaseAgeMax *obs.Gauge
	// RoundsMerged is the coordinator's merged-round watermark.
	RoundsMerged *obs.Gauge
	// ShardUploaded tracks each shard's uploaded-round watermark (which
	// may run ahead of the merge frontier by up to MaxPendingRounds).
	ShardUploaded *obs.GaugeVec // shard
	// Reassignments counts leases revoked from dead or stalled agents.
	Reassignments *obs.Counter
	// UploadRetries counts upload chunks that had to be resent (offset
	// resyncs and transport retries).
	UploadRetries *obs.Counter
	// UploadBackoffs counts uploads deferred by merge backpressure.
	UploadBackoffs *obs.Counter
	// CellsMerged counts (shard, round) cells folded into the dataset.
	CellsMerged *obs.Counter
	// CheckpointWrites counts cluster checkpoints persisted.
	CheckpointWrites *obs.Counter
}

// NewMetrics registers the cluster instrument set on reg.
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		AgentsLive: reg.Gauge("cluster_agents_live",
			"Registered agents with a fresh heartbeat."),
		LeasesActive: reg.Gauge("cluster_leases_active",
			"Shards currently leased to an agent."),
		LeaseAgeMax: reg.Gauge("cluster_lease_age_max_seconds",
			"Age of the oldest active lease."),
		RoundsMerged: reg.Gauge("cluster_rounds_merged",
			"Rounds fully merged into the coordinator's sink."),
		ShardUploaded: reg.GaugeVec("cluster_shard_rounds_uploaded",
			"Rounds uploaded per shard (may run ahead of the merge).", "shard"),
		Reassignments: reg.Counter("cluster_reassignments_total",
			"Leases revoked from dead or stalled agents."),
		UploadRetries: reg.Counter("cluster_upload_retries_total",
			"Upload chunks resent after offset resyncs or transport errors."),
		UploadBackoffs: reg.Counter("cluster_upload_backoffs_total",
			"Uploads deferred by merge backpressure."),
		CellsMerged: reg.Counter("cluster_cells_merged_total",
			"Shard-round cells folded into the merged dataset."),
		CheckpointWrites: reg.Counter("cluster_checkpoint_writes_total",
			"Cluster checkpoints persisted."),
	}
}

func (m *Metrics) shardGauge(shard int) *obs.Gauge {
	if m == nil {
		return nil
	}
	return m.ShardUploaded.With(strconv.Itoa(shard))
}

func (m *Metrics) reassignment() {
	if m != nil {
		m.Reassignments.Inc()
	}
}

func (m *Metrics) uploadRetry() {
	if m != nil {
		m.UploadRetries.Inc()
	}
}

func (m *Metrics) uploadBackoff() {
	if m != nil {
		m.UploadBackoffs.Inc()
	}
}

func (m *Metrics) cellMerged() {
	if m != nil {
		m.CellsMerged.Inc()
	}
}

func (m *Metrics) checkpointWrite() {
	if m != nil {
		m.CheckpointWrites.Inc()
	}
}
