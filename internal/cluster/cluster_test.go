package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"os"
	"sync"
	"testing"
	"time"

	"repro/internal/atlas"
	"repro/internal/engine"
	"repro/internal/results"
	"repro/internal/world"
)

// Test world and campaign: 200 probes, 5 days = 40 rounds. Small enough
// that the whole agent-count matrix runs in seconds, big enough to span
// many shard cells and several checkpoint cadences.
const (
	testSeed   = 7
	testProbes = 200
)

func testWorld(t testing.TB) *world.World {
	t.Helper()
	w, err := world.Build(world.Config{Seed: testSeed, Probes: testProbes})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func testCampaign(days int) atlas.CampaignConfig {
	cfg := atlas.TestCampaign()
	cfg.End = cfg.Start.Add(time.Duration(days) * 24 * time.Hour)
	return cfg
}

func testPlan(w *world.World, cfg atlas.CampaignConfig, shards int) Plan {
	return Plan{
		Fingerprint: cfg.Fingerprint(testSeed, w.Probes.Len()),
		Seed:        testSeed,
		Probes:      testProbes,
		Shards:      shards,
		Rounds:      cfg.Rounds(),
		Campaign:    cfg,
		LeaseTTLMs:  250,
	}
}

// startCoordinator serves cfg's coordinator from a loopback listener.
func startCoordinator(t *testing.T, cfg CoordinatorConfig) (*Coordinator, string) {
	t.Helper()
	coord, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Handler())
	t.Cleanup(srv.Close)
	return coord, srv.URL
}

// runAgents starts n worker agents against base and returns a stop
// function that cancels and joins them, yielding each agent's error.
func runAgents(t *testing.T, base string, n int, mut func(i int, cfg *AgentConfig)) (stop func() []error) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		cfg := AgentConfig{
			ID:        fmt.Sprintf("test-agent-%d", i),
			BaseURL:   base,
			Heartbeat: 50 * time.Millisecond,
		}
		if mut != nil {
			mut(i, &cfg)
		}
		ag, err := NewAgent(cfg)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = ag.Run(ctx)
		}(i)
	}
	return func() []error {
		cancel()
		wg.Wait()
		return errs
	}
}

// waitDone blocks on the coordinator with a test deadline.
func waitDone(t *testing.T, coord *Coordinator) error {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	err := coord.Wait(ctx)
	if errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("cluster campaign did not finish: merged %d, status %+v", coord.Merged(), coord.Status())
	}
	return err
}

// engineReferenceBytes renders the single-process engine run's JSONL
// byte stream — the ground truth every cluster topology must reproduce.
func engineReferenceBytes(t *testing.T, w *world.World, cfg atlas.CampaignConfig) ([]byte, uint64) {
	t.Helper()
	var buf bytes.Buffer
	wr := results.NewWriter(&buf)
	n, err := w.Platform.RunCampaignOpts(context.Background(), cfg, atlas.CampaignOptions{Workers: 3}, wr.Write)
	if err != nil {
		t.Fatal(err)
	}
	if err := wr.Flush(); err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("reference campaign emitted nothing")
	}
	return buf.Bytes(), n
}

// TestClusterByteIdenticalAcrossAgentCounts is the tentpole guarantee:
// the coordinator's merged dataset is byte-identical to a
// single-process engine run at any agent count, for a shard count that
// divides neither the probe population nor the agent counts.
func TestClusterByteIdenticalAcrossAgentCounts(t *testing.T) {
	w := testWorld(t)
	cfg := testCampaign(5)
	reference, want := engineReferenceBytes(t, w, cfg)

	for _, agents := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("agents=%d", agents), func(t *testing.T) {
			var buf bytes.Buffer
			wr := results.NewWriter(&buf)
			coord, base := startCoordinator(t, CoordinatorConfig{
				Plan: testPlan(w, cfg, 5),
				Sink: wr.Write,
			})
			stop := runAgents(t, base, agents, func(i int, ac *AgentConfig) {
				if i == 0 {
					// Exercise multi-chunk resumable uploads on at
					// least one agent.
					ac.ChunkBytes = 512
				}
			})
			err := waitDone(t, coord)
			for _, aerr := range stop() {
				if aerr != nil && !errors.Is(aerr, context.Canceled) {
					t.Errorf("agent error: %v", aerr)
				}
			}
			if err != nil {
				t.Fatal(err)
			}
			if err := wr.Flush(); err != nil {
				t.Fatal(err)
			}
			if coord.Samples() != want {
				t.Errorf("merged %d samples, engine merged %d", coord.Samples(), want)
			}
			if !bytes.Equal(buf.Bytes(), reference) {
				t.Errorf("agents=%d dataset diverges from single-process run", agents)
			}
		})
	}
}

// TestClusterKillAndReassign kills one of two agents mid-campaign (it
// stops heartbeating without releasing its lease) and verifies the
// coordinator reassigns the orphaned shard and still merges a dataset
// byte-identical to the single-process run.
func TestClusterKillAndReassign(t *testing.T) {
	w := testWorld(t)
	cfg := testCampaign(5)
	reference, want := engineReferenceBytes(t, w, cfg)

	var buf bytes.Buffer
	wr := results.NewWriter(&buf)
	coord, base := startCoordinator(t, CoordinatorConfig{
		Plan: testPlan(w, cfg, 3),
		Sink: wr.Write,
	})

	// Victim control: agent 0 dies (context cancelled, as an abrupt
	// crash — no release, no further heartbeats) after shipping 5 cells.
	victimCtx, kill := context.WithCancel(context.Background())
	defer kill()
	cells := 0
	victim, err := NewAgent(AgentConfig{
		ID:        "victim",
		BaseURL:   base,
		Heartbeat: 50 * time.Millisecond,
		onCell: func(shard, round int, payload []byte) {
			cells++
			if cells == 5 {
				kill()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	victimErr := make(chan error, 1)
	go func() { victimErr <- victim.Run(victimCtx) }()

	stop := runAgents(t, base, 1, nil)
	err = waitDone(t, coord)
	for _, aerr := range stop() {
		if aerr != nil && !errors.Is(aerr, context.Canceled) {
			t.Errorf("survivor agent error: %v", aerr)
		}
	}
	if err != nil {
		t.Fatal(err)
	}
	if verr := <-victimErr; !errors.Is(verr, context.Canceled) {
		t.Errorf("victim exit = %v, want context.Canceled", verr)
	}
	if cells < 5 {
		t.Fatalf("victim shipped only %d cells before the kill", cells)
	}
	if coord.Reassignments() == 0 {
		t.Error("no lease was reassigned after the agent died")
	}
	if err := wr.Flush(); err != nil {
		t.Fatal(err)
	}
	if coord.Samples() != want {
		t.Errorf("merged %d samples, engine merged %d", coord.Samples(), want)
	}
	if !bytes.Equal(buf.Bytes(), reference) {
		t.Error("dataset diverges from single-process run after kill and reassignment")
	}
}

// TestClusterBinaryBytesMatchCheckpointedEngine pins the strongest form
// of the merge guarantee: with the same checkpoint cadence, the cluster
// writes a binary (colf) dataset whose block boundaries — and therefore
// file bytes — exactly match a checkpointing single-process engine run.
func TestClusterBinaryBytesMatchCheckpointedEngine(t *testing.T) {
	w := testWorld(t)
	cfg := testCampaign(5)
	fp := cfg.Fingerprint(testSeed, w.Probes.Len())
	meta := cfg.Meta(testSeed, w.Probes.Len(), w.Catalog.Len())

	// Engine side.
	engDir := t.TempDir()
	engStore, engSink, err := results.Create(engDir, meta, results.FormatBinary)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Platform.RunCampaignOpts(context.Background(), cfg, atlas.CampaignOptions{
		Workers:         3,
		CheckpointPath:  engDir + "/checkpoint.json",
		CheckpointEvery: 8,
		Commit:          engSink.Commit,
		Fingerprint:     fp,
	}, engSink.Write); err != nil {
		t.Fatal(err)
	}
	if err := engSink.Close(); err != nil {
		t.Fatal(err)
	}

	// Cluster side, same cadence.
	cluDir := t.TempDir()
	cluStore, cluSink, err := results.Create(cluDir, meta, results.FormatBinary)
	if err != nil {
		t.Fatal(err)
	}
	coord, base := startCoordinator(t, CoordinatorConfig{
		Plan:            testPlan(w, cfg, 4),
		Sink:            cluSink.Write,
		Commit:          cluSink.Commit,
		CheckpointPath:  cluDir + "/checkpoint.json",
		CheckpointEvery: 8,
	})
	stop := runAgents(t, base, 2, nil)
	err = waitDone(t, coord)
	stop()
	if err != nil {
		t.Fatal(err)
	}
	if err := cluSink.Close(); err != nil {
		t.Fatal(err)
	}

	engBytes, err := os.ReadFile(engStore.SamplesPath())
	if err != nil {
		t.Fatal(err)
	}
	cluBytes, err := os.ReadFile(cluStore.SamplesPath())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cluBytes, engBytes) {
		t.Fatalf("binary dataset diverges: cluster %d bytes, engine %d bytes", len(cluBytes), len(engBytes))
	}
}

// TestClusterCoordinatorRestartResume kills the whole control plane (a
// fatal sink failure mid-campaign) and restarts a fresh coordinator
// from the checkpoint with fresh agents. Block boundaries legitimately
// move (the resume truncates to the checkpoint's durable offset), so
// the decoded sample stream is compared instead of raw bytes.
func TestClusterCoordinatorRestartResume(t *testing.T) {
	w := testWorld(t)
	cfg := testCampaign(10) // 80 rounds: several checkpoints before the kill
	fp := cfg.Fingerprint(testSeed, w.Probes.Len())
	meta := cfg.Meta(testSeed, w.Probes.Len(), w.Catalog.Len())

	// Reference: the decoded sample stream of one uninterrupted run.
	var reference []results.Sample
	total, err := w.Platform.RunCampaignOpts(context.Background(), cfg, atlas.CampaignOptions{Workers: 3},
		func(s results.Sample) error { reference = append(reference, s); return nil })
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	ckPath := dir + "/checkpoint.json"
	_, sink, err := results.Create(dir, meta, results.FormatBinary)
	if err != nil {
		t.Fatal(err)
	}

	// Phase 1: the sink dies permanently ~62% through; the coordinator
	// fails the campaign and every agent sees a fatal ack.
	killAt := total * 5 / 8
	var seen uint64
	killed := errors.New("simulated coordinator crash")
	coord, base := startCoordinator(t, CoordinatorConfig{
		Plan:            testPlan(w, cfg, 4),
		CheckpointPath:  ckPath,
		CheckpointEvery: 8,
		Commit:          sink.Commit,
		Sink: func(s results.Sample) error {
			if seen == killAt {
				return killed
			}
			seen++
			return sink.Write(s)
		},
	})
	stop := runAgents(t, base, 2, nil)
	err = waitDone(t, coord)
	stop()
	if !errors.Is(err, killed) {
		t.Fatalf("phase 1 err = %v, want the simulated crash", err)
	}
	// A crashed coordinator never ran Close; flush what the OS had.
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}

	cp, err := engine.LoadCheckpoint(ckPath)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Fingerprint != fp {
		t.Fatalf("checkpoint fingerprint %q, want %q", cp.Fingerprint, fp)
	}
	if cp.Round < 7 || cp.Samples == 0 || cp.SinkOffset == 0 {
		t.Fatalf("implausible checkpoint %+v", cp)
	}

	// Phase 2: fresh coordinator, truncated sink, fresh agents.
	reopened, err := results.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	sink2, err := reopened.Resume(cp.SinkOffset)
	if err != nil {
		t.Fatal(err)
	}
	coord2, base2 := startCoordinator(t, CoordinatorConfig{
		Plan:            testPlan(w, cfg, 4),
		Sink:            sink2.Write,
		Commit:          sink2.Commit,
		CheckpointPath:  ckPath,
		CheckpointEvery: 8,
		StartRound:      cp.Round + 1,
		StartSamples:    cp.Samples,
	})
	stop2 := runAgents(t, base2, 2, nil)
	err = waitDone(t, coord2)
	stop2()
	if err != nil {
		t.Fatal(err)
	}
	if err := sink2.Close(); err != nil {
		t.Fatal(err)
	}
	if coord2.Samples() != total {
		t.Fatalf("resumed campaign merged %d samples, want %d", coord2.Samples(), total)
	}

	var got []results.Sample
	if err := reopened.ForEach(func(s results.Sample) error { got = append(got, s); return nil }); err != nil {
		t.Fatal(err)
	}
	if uint64(len(got)) != total {
		t.Fatalf("resumed store holds %d samples, want %d", len(got), total)
	}
	for i := range got {
		a, b := got[i], reference[i]
		if a.ProbeID != b.ProbeID || a.Region != b.Region || !a.Time.Equal(b.Time) ||
			a.RTTms != b.RTTms || a.Lost != b.Lost {
			t.Fatalf("sample %d diverges after coordinator restart: %+v vs %+v", i, a, b)
		}
	}
}
