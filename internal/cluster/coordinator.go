package cluster

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/results"
)

// CoordinatorConfig wires a coordinator to its plan, sink and knobs.
type CoordinatorConfig struct {
	// Plan is the campaign specification handed to registering agents.
	Plan Plan
	// Sink receives merged samples in their final order. Errors marked
	// engine.Transient are retried up to MaxRetries times; anything
	// else fails the campaign.
	Sink func(results.Sample) error
	// Commit makes everything written to Sink durable and reports the
	// durable byte offset; called at every checkpoint (required when
	// CheckpointPath is set).
	Commit engine.CommitFunc
	// CheckpointPath enables cluster checkpointing: the merge watermark
	// is persisted in the engine's checkpoint format after every
	// CheckpointEvery merged rounds, exactly on the engine's cadence,
	// so binary block boundaries match a checkpointing engine run.
	CheckpointPath  string
	CheckpointEvery int
	// StartRound/StartSamples resume an interrupted campaign from a
	// checkpoint watermark (cp.Round+1, cp.Samples): every shard's
	// upload watermark restarts at StartRound and cells above it are
	// re-uploaded.
	StartRound   int
	StartSamples uint64
	// MaxPendingRounds bounds how far any shard's uploads may run ahead
	// of the merge frontier (default DefaultMaxPendingRounds).
	MaxPendingRounds int
	// StallTTL revokes the lease of a frontier-blocking shard that has
	// not advanced its upload watermark for this long (default
	// DefaultStallTTL). Heartbeat loss is governed by Plan.LeaseTTL.
	StallTTL time.Duration
	// MaxRetries bounds transient sink-error retries per sample
	// (default engine.DefaultMaxRetries).
	MaxRetries int
	// OnRound, when set, observes each merged round (index and sample
	// count). It runs with the coordinator's lock held and must not
	// call back into the coordinator.
	OnRound func(round int, samples uint64)
	// OnCheckpoint, when set, runs after each checkpoint is durably
	// written, with the checkpointed round and committed sink offset.
	// Same locking caveat as OnRound.
	OnCheckpoint func(round int, offset int64)
	// Metrics, when set, receives the cluster instrument set.
	Metrics *Metrics
	// Log, when set, receives structured control-plane events.
	Log *obs.Logger

	// now overrides the clock in tests.
	now func() time.Time
}

// lease is one shard's active grant.
type lease struct {
	id          string
	agent       string
	granted     time.Time
	lastAdvance time.Time
}

// partial is an in-flight chunked upload for one shard.
type partial struct {
	round int
	lease string
	size  int64
	crc   uint32
	buf   []byte
}

// shardState is the coordinator's view of one shard of the partition.
type shardState struct {
	// uploaded is the shard's durable watermark: the number of rounds
	// whose cells have been accepted (merged or pending).
	uploaded int
	// pending holds accepted cells not yet merged, keyed by round.
	pending map[int][]results.Sample
	// partial is the in-flight chunked upload, if any.
	partial *partial
}

// agentState tracks one registered agent.
type agentState struct {
	lastSeen time.Time
}

// Coordinator owns the campaign: the shard partition, the agent
// registry and lease table, the round-major merge into the sink, and
// the cluster checkpoint. All state lives behind one mutex; there are
// no background goroutines — lease expiry and reassignment run inline
// on every agent request, so an idle coordinator is perfectly quiescent.
type Coordinator struct {
	cfg   CoordinatorConfig
	plan  Plan
	log   *obs.Logger
	m     *Metrics
	clock func() time.Time

	mu            sync.Mutex
	shards        []shardState
	leases        map[int]*lease // keyed by shard
	agents        map[string]*agentState
	merged        int // rounds fully merged into the sink
	samples       uint64
	leaseSeq      uint64
	reassignments uint64
	err           error
	finished      bool
	done          chan struct{}
}

// NewCoordinator validates the configuration and builds a coordinator
// with every shard's watermark at StartRound.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	p := cfg.Plan
	if p.Shards < 1 {
		return nil, fmt.Errorf("cluster: plan needs at least one shard (got %d)", p.Shards)
	}
	if p.Rounds < 1 {
		return nil, fmt.Errorf("cluster: plan needs at least one round (got %d)", p.Rounds)
	}
	if p.Fingerprint == "" {
		return nil, errors.New("cluster: plan missing fingerprint")
	}
	if cfg.Sink == nil {
		return nil, errors.New("cluster: nil sink")
	}
	if cfg.CheckpointPath != "" && cfg.Commit == nil {
		return nil, errors.New("cluster: checkpointing requires Commit")
	}
	if cfg.StartRound < 0 || cfg.StartRound > p.Rounds {
		return nil, fmt.Errorf("cluster: start round %d outside [0, %d]", cfg.StartRound, p.Rounds)
	}
	if cfg.MaxPendingRounds <= 0 {
		cfg.MaxPendingRounds = DefaultMaxPendingRounds
	}
	if cfg.StallTTL <= 0 {
		cfg.StallTTL = DefaultStallTTL
	}
	if cfg.CheckpointEvery <= 0 {
		cfg.CheckpointEvery = engine.DefaultCheckpointEvery
	}
	if cfg.now == nil {
		cfg.now = time.Now
	}
	c := &Coordinator{
		cfg:    cfg,
		plan:   p,
		log:    cfg.Log.With("coordinator"),
		m:      cfg.Metrics,
		clock:  cfg.now,
		shards: make([]shardState, p.Shards),
		leases: make(map[int]*lease),
		agents: make(map[string]*agentState),
		merged: cfg.StartRound,
		done:   make(chan struct{}),
	}
	c.samples = cfg.StartSamples
	for i := range c.shards {
		c.shards[i].uploaded = cfg.StartRound
		c.shards[i].pending = make(map[int][]results.Sample)
	}
	if c.m != nil {
		c.m.RoundsMerged.Set(float64(c.merged))
	}
	if cfg.StartRound == p.Rounds {
		// Nothing left to merge (a resume of a completed run).
		c.finished = true
		close(c.done)
	}
	return c, nil
}

// Plan returns the campaign plan agents execute.
func (c *Coordinator) Plan() Plan { return c.plan }

// register admits (or refreshes) an agent and returns the plan.
func (c *Coordinator) register(agent string) Plan {
	now := c.clock()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reap(now)
	if _, ok := c.agents[agent]; !ok {
		c.log.Info("agent registered", "agent", agent)
	}
	c.agents[agent] = &agentState{lastSeen: now}
	c.refreshGauges(now)
	return c.plan
}

// leaseResult is the outcome of a lease request.
type leaseResult struct {
	status     string // "grant", "wait", or "done"
	shard      int
	startRound int
	leaseID    string
	retry      time.Duration
}

// leaseShard grants the requesting agent the most urgent available
// shard: among unleased, unfinished shards, the one with the lowest
// upload watermark (the merge-frontier blocker) wins, ties to the
// lowest shard index. One lease per agent: a prior lease held by the
// same agent is released first, so a re-leasing agent can never
// deadlock the frontier behind its own abandoned grant.
func (c *Coordinator) leaseShard(agent string) leaseResult {
	now := c.clock()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.touch(agent, now)
	c.reap(now)
	for shard, l := range c.leases {
		if l.agent == agent {
			c.dropLease(shard, "superseded")
		}
	}
	best, bestUploaded := -1, 0
	finished := 0
	for i := range c.shards {
		if c.shards[i].uploaded >= c.plan.Rounds {
			finished++
			continue
		}
		if _, leased := c.leases[i]; leased {
			continue
		}
		if best == -1 || c.shards[i].uploaded < bestUploaded {
			best, bestUploaded = i, c.shards[i].uploaded
		}
	}
	if finished == len(c.shards) {
		return leaseResult{status: "done"}
	}
	if best == -1 {
		return leaseResult{status: "wait", retry: c.plan.LeaseTTL() / 4}
	}
	c.leaseSeq++
	l := &lease{
		id:          fmt.Sprintf("L%06d", c.leaseSeq),
		agent:       agent,
		granted:     now,
		lastAdvance: now,
	}
	c.leases[best] = l
	c.refreshGauges(now)
	c.log.Info("lease granted",
		"lease", l.id, "shard", best, "agent", agent, "start_round", bestUploaded)
	return leaseResult{status: "grant", shard: best, startRound: bestUploaded, leaseID: l.id}
}

// heartbeat refreshes an agent's liveness and reports whether the
// named lease is still valid.
func (c *Coordinator) heartbeat(agent, leaseID string) bool {
	now := c.clock()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.touch(agent, now)
	c.reap(now)
	c.refreshGauges(now)
	for _, l := range c.leases {
		if l.id == leaseID && l.agent == agent {
			return true
		}
	}
	return false
}

// release voluntarily returns a lease (agents do this after sustained
// upload backpressure so a frontier-blocking shard can be granted).
func (c *Coordinator) release(agent, leaseID string) {
	now := c.clock()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.touch(agent, now)
	for shard, l := range c.leases {
		if l.id == leaseID && l.agent == agent {
			c.dropLease(shard, "released")
			break
		}
	}
	c.reap(now)
	c.refreshGauges(now)
}

// touch refreshes an agent's last-seen time (registering it if the
// coordinator restarted and lost the registry).
func (c *Coordinator) touch(agent string, now time.Time) {
	if a, ok := c.agents[agent]; ok {
		a.lastSeen = now
		return
	}
	c.agents[agent] = &agentState{lastSeen: now}
}

// dropLease removes a shard's lease and any in-flight upload tied to
// it. Callers hold c.mu.
func (c *Coordinator) dropLease(shard int, why string) {
	l := c.leases[shard]
	delete(c.leases, shard)
	if st := &c.shards[shard]; st.partial != nil && l != nil && st.partial.lease == l.id {
		st.partial = nil
	}
	if l != nil {
		c.log.Info("lease dropped", "lease", l.id, "shard", shard, "agent", l.agent, "why", why)
	}
}

// reap revokes leases whose agents went dark (no heartbeat within the
// lease TTL) or whose shard blocks the merge frontier without
// advancing (stalled for StallTTL). Runs inline on every agent
// request; callers hold c.mu.
func (c *Coordinator) reap(now time.Time) {
	ttl := c.plan.LeaseTTL()
	for shard, l := range c.leases {
		a := c.agents[l.agent]
		dead := a == nil || now.Sub(a.lastSeen) > ttl
		st := &c.shards[shard]
		blocking := st.uploaded == c.merged && st.uploaded < c.plan.Rounds
		last := l.lastAdvance
		if l.granted.After(last) {
			last = l.granted
		}
		stalled := blocking && now.Sub(last) > c.cfg.StallTTL
		if !dead && !stalled {
			continue
		}
		why := "heartbeat lost"
		if !dead {
			why = "frontier stalled"
		}
		c.reassignments++
		c.m.reassignment()
		c.log.Warn("lease revoked",
			"lease", l.id, "shard", shard, "agent", l.agent, "why", why,
			"uploaded", st.uploaded, "merged", c.merged)
		c.dropLease(shard, why)
	}
}

// refreshGauges recomputes the liveness and lease gauges. Callers hold
// c.mu.
func (c *Coordinator) refreshGauges(now time.Time) {
	if c.m == nil {
		return
	}
	ttl := c.plan.LeaseTTL()
	live := 0
	for _, a := range c.agents {
		if now.Sub(a.lastSeen) <= ttl {
			live++
		}
	}
	c.m.AgentsLive.Set(float64(live))
	c.m.LeasesActive.Set(float64(len(c.leases)))
	var oldest time.Duration
	for _, l := range c.leases {
		if age := now.Sub(l.granted); age > oldest {
			oldest = age
		}
	}
	c.m.LeaseAgeMax.Set(oldest.Seconds())
}

// accept folds a fully received, CRC-verified cell payload into the
// shard's pending set and advances the merge. Callers hold c.mu.
func (c *Coordinator) accept(shard, round int, payload []byte, now time.Time) error {
	samples, err := results.DecodeCell(payload)
	if err != nil {
		return err
	}
	st := &c.shards[shard]
	st.pending[round] = samples
	st.uploaded++
	c.m.shardGauge(shard).Set(float64(st.uploaded))
	if l := c.leases[shard]; l != nil {
		l.lastAdvance = now
	}
	c.m.cellMerged()
	return c.advance()
}

// advance merges every round whose full shard row is pending: cells
// are written in shard order within the round, the engine's checkpoint
// cadence is applied, and completion closes the done channel. Callers
// hold c.mu.
func (c *Coordinator) advance() error {
	for c.merged < c.plan.Rounds {
		ready := true
		for i := range c.shards {
			if _, ok := c.shards[i].pending[c.merged]; !ok {
				ready = false
				break
			}
		}
		if !ready {
			return nil
		}
		round := c.merged
		var roundSamples uint64
		for i := range c.shards {
			cell := c.shards[i].pending[round]
			delete(c.shards[i].pending, round)
			for _, s := range cell {
				if err := c.write(s); err != nil {
					c.fail(err)
					return err
				}
			}
			roundSamples += uint64(len(cell))
		}
		c.merged++
		c.samples += roundSamples
		if c.m != nil {
			c.m.RoundsMerged.Set(float64(c.merged))
		}
		if c.cfg.OnRound != nil {
			c.cfg.OnRound(round, roundSamples)
		}
		// Mirror the engine's checkpoint condition exactly so binary
		// block boundaries (sealed by Commit) match a checkpointing
		// single-process run.
		if c.cfg.CheckpointPath != "" &&
			(c.merged-c.cfg.StartRound)%c.cfg.CheckpointEvery == 0 &&
			c.merged < c.plan.Rounds {
			if err := c.writeCheckpoint(round); err != nil {
				c.fail(err)
				return err
			}
		}
	}
	if !c.finished {
		c.finished = true
		c.log.Info("campaign merged",
			"rounds", c.plan.Rounds, "shards", c.plan.Shards,
			"samples", c.samples, "reassignments", c.reassignments)
		close(c.done)
	}
	return nil
}

// write pushes one merged sample into the sink, retrying transient
// errors. Callers hold c.mu.
func (c *Coordinator) write(s results.Sample) error {
	maxRetries := c.cfg.MaxRetries
	if maxRetries <= 0 {
		maxRetries = engine.DefaultMaxRetries
	}
	var err error
	for attempt := 0; attempt <= maxRetries; attempt++ {
		if err = c.cfg.Sink(s); err == nil {
			return nil
		}
		if !engine.IsTransient(err) {
			return err
		}
		c.log.Warn("sink retry", "attempt", attempt+1, "error", err)
	}
	return fmt.Errorf("cluster: sink still failing after %d retries: %w", maxRetries, err)
}

// writeCheckpoint commits the sink and persists the merge watermark in
// the engine's checkpoint format. Callers hold c.mu.
func (c *Coordinator) writeCheckpoint(round int) error {
	offset, err := c.cfg.Commit()
	if err != nil {
		return fmt.Errorf("cluster: checkpoint commit: %w", err)
	}
	cp := engine.Checkpoint{
		Version:     engine.CheckpointVersion,
		Fingerprint: c.plan.Fingerprint,
		Workers:     c.plan.Shards,
		Round:       round,
		Samples:     c.samples,
		SinkOffset:  offset,
		Shards:      make([]engine.ShardMark, c.plan.Shards),
	}
	// Upload watermarks ahead of the merge are deliberately not
	// persisted: a restarted coordinator re-collects those cells, which
	// keeps resume state identical to the engine's.
	for s := range cp.Shards {
		cp.Shards[s] = engine.ShardMark{Shard: s, Round: round}
	}
	if err := cp.Save(c.cfg.CheckpointPath); err != nil {
		return err
	}
	c.m.checkpointWrite()
	c.log.Info("checkpoint written",
		"path", c.cfg.CheckpointPath, "round", round, "samples", c.samples, "sink_offset", offset)
	if c.cfg.OnCheckpoint != nil {
		c.cfg.OnCheckpoint(round, offset)
	}
	return nil
}

// fail records the first fatal error and releases waiters. Callers
// hold c.mu.
func (c *Coordinator) fail(err error) {
	if c.finished {
		return
	}
	c.finished = true
	c.err = err
	c.log.Error("campaign failed", "error", err, "merged", c.merged, "samples", c.samples)
	close(c.done)
}

// Wait blocks until every round is merged, the campaign fails, or ctx
// is cancelled. It returns the campaign's fatal error, if any.
func (c *Coordinator) Wait(ctx context.Context) error {
	select {
	case <-c.done:
		c.mu.Lock()
		defer c.mu.Unlock()
		return c.err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Done reports whether the campaign has finished (merged or failed).
func (c *Coordinator) Done() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.finished
}

// Merged returns the merged-round watermark.
func (c *Coordinator) Merged() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.merged
}

// Samples returns the merged sample count.
func (c *Coordinator) Samples() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.samples
}

// Reassignments returns how many leases were revoked from dead or
// stalled agents.
func (c *Coordinator) Reassignments() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.reassignments
}

// AgentsSeen returns how many distinct agents ever registered.
func (c *Coordinator) AgentsSeen() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.agents)
}

// AgentStatus is one agent's row in the status snapshot.
type AgentStatus struct {
	ID         string `json:"id"`
	LastSeenMs int64  `json:"last_seen_ms"`
	Live       bool   `json:"live"`
}

// LeaseStatus is one active lease's row in the status snapshot.
type LeaseStatus struct {
	Shard    int    `json:"shard"`
	Agent    string `json:"agent"`
	Lease    string `json:"lease"`
	AgeMs    int64  `json:"age_ms"`
	Uploaded int    `json:"uploaded"`
}

// Status is the coordinator's live state snapshot, served over HTTP.
type Status struct {
	Fingerprint   string        `json:"fingerprint"`
	Shards        int           `json:"shards"`
	Rounds        int           `json:"rounds"`
	Merged        int           `json:"merged"`
	Samples       uint64        `json:"samples"`
	PendingCells  int           `json:"pending_cells"`
	Reassignments uint64        `json:"reassignments"`
	Done          bool          `json:"done"`
	Error         string        `json:"error,omitempty"`
	Agents        []AgentStatus `json:"agents"`
	Leases        []LeaseStatus `json:"leases"`
}

// Status snapshots the coordinator's live state.
func (c *Coordinator) Status() Status {
	now := c.clock()
	c.mu.Lock()
	defer c.mu.Unlock()
	ttl := c.plan.LeaseTTL()
	st := Status{
		Fingerprint:   c.plan.Fingerprint,
		Shards:        c.plan.Shards,
		Rounds:        c.plan.Rounds,
		Merged:        c.merged,
		Samples:       c.samples,
		Reassignments: c.reassignments,
		Done:          c.finished,
	}
	if c.err != nil {
		st.Error = c.err.Error()
	}
	for i := range c.shards {
		st.PendingCells += len(c.shards[i].pending)
	}
	for id, a := range c.agents {
		st.Agents = append(st.Agents, AgentStatus{
			ID:         id,
			LastSeenMs: now.Sub(a.lastSeen).Milliseconds(),
			Live:       now.Sub(a.lastSeen) <= ttl,
		})
	}
	sort.Slice(st.Agents, func(i, j int) bool { return st.Agents[i].ID < st.Agents[j].ID })
	for shard, l := range c.leases {
		st.Leases = append(st.Leases, LeaseStatus{
			Shard:    shard,
			Agent:    l.agent,
			Lease:    l.id,
			AgeMs:    now.Sub(l.granted).Milliseconds(),
			Uploaded: c.shards[shard].uploaded,
		})
	}
	sort.Slice(st.Leases, func(i, j int) bool { return st.Leases[i].Shard < st.Leases[j].Shard })
	return st
}
