package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"repro/internal/httpapi"
)

// The coordinator's wire surface, all under /api/v1/cluster/:
//
//	POST /api/v1/cluster/register   {agent} -> Plan
//	POST /api/v1/cluster/lease      {agent} -> leaseResponse
//	POST /api/v1/cluster/heartbeat  {agent, lease} -> {ok}
//	POST /api/v1/cluster/release    {agent, lease} -> {ok}
//	POST /api/v1/cluster/blocks?shard=&round=&agent=&lease=&offset=&size=&crc=
//	     raw chunk body -> UploadAck
//	GET  /api/v1/cluster/status     -> Status
//
// Cell bytes travel as a raw body with query-string framing (not JSON)
// so uploads stream without base64 inflation; everything else is JSON.

// maxControlBody bounds JSON control-request bodies.
const maxControlBody = 1 << 16

// maxChunkBody bounds one upload chunk (agents default to
// DefaultChunkBytes; the cap just blocks abuse).
const maxChunkBody = 8 << 20

type agentRequest struct {
	Agent string `json:"agent"`
	Lease string `json:"lease,omitempty"`
}

type leaseResponse struct {
	Status     string `json:"status"` // "grant", "wait", or "done"
	Shard      int    `json:"shard"`
	StartRound int    `json:"start_round"`
	Lease      string `json:"lease"`
	RetryMs    int64  `json:"retry_ms"`
}

type okResponse struct {
	OK bool `json:"ok"`
}

// Mount attaches the coordinator's endpoints to mux, which may be a
// shared status mux (obs.NewStatusMux) or a server's API mux.
func (c *Coordinator) Mount(mux *http.ServeMux) {
	mux.HandleFunc("POST /api/v1/cluster/register", c.handleRegister)
	mux.HandleFunc("POST /api/v1/cluster/lease", c.handleLease)
	mux.HandleFunc("POST /api/v1/cluster/heartbeat", c.handleHeartbeat)
	mux.HandleFunc("POST /api/v1/cluster/release", c.handleRelease)
	mux.HandleFunc("POST /api/v1/cluster/blocks", c.handleBlocks)
	mux.HandleFunc("GET /api/v1/cluster/status", c.handleStatus)
}

// Handler returns a standalone mux serving only the cluster endpoints.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	c.Mount(mux)
	return mux
}

// decodeAgent parses a JSON control body requiring a non-empty agent.
func decodeAgent(w http.ResponseWriter, r *http.Request) (agentRequest, bool) {
	var req agentRequest
	body := http.MaxBytesReader(w, r.Body, maxControlBody)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		httpapi.Errorf(w, http.StatusBadRequest, "bad request body: %v", err)
		return req, false
	}
	if req.Agent == "" {
		httpapi.Error(w, http.StatusBadRequest, "missing agent id")
		return req, false
	}
	return req, true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	req, ok := decodeAgent(w, r)
	if !ok {
		return
	}
	writeJSON(w, c.register(req.Agent))
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	req, ok := decodeAgent(w, r)
	if !ok {
		return
	}
	res := c.leaseShard(req.Agent)
	writeJSON(w, leaseResponse{
		Status:     res.status,
		Shard:      res.shard,
		StartRound: res.startRound,
		Lease:      res.leaseID,
		RetryMs:    res.retry.Milliseconds(),
	})
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	req, ok := decodeAgent(w, r)
	if !ok {
		return
	}
	writeJSON(w, okResponse{OK: c.heartbeat(req.Agent, req.Lease)})
}

func (c *Coordinator) handleRelease(w http.ResponseWriter, r *http.Request) {
	req, ok := decodeAgent(w, r)
	if !ok {
		return
	}
	c.release(req.Agent, req.Lease)
	writeJSON(w, okResponse{OK: true})
}

// queryInt parses one required integer query parameter.
func queryInt(r *http.Request, key string) (int64, error) {
	s := r.URL.Query().Get(key)
	if s == "" {
		return 0, fmt.Errorf("missing %s", key)
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad %s: %v", key, err)
	}
	return v, nil
}

func (c *Coordinator) handleBlocks(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	u := UploadChunk{Agent: q.Get("agent"), Lease: q.Get("lease")}
	if u.Agent == "" || u.Lease == "" {
		httpapi.Error(w, http.StatusBadRequest, "missing agent or lease")
		return
	}
	var err error
	var shard, round, offset, size, crc int64
	for _, f := range []struct {
		key string
		dst *int64
	}{{"shard", &shard}, {"round", &round}, {"offset", &offset}, {"size", &size}, {"crc", &crc}} {
		if *f.dst, err = queryInt(r, f.key); err != nil {
			httpapi.Error(w, http.StatusBadRequest, err.Error())
			return
		}
	}
	u.Shard, u.Round, u.Offset, u.Size, u.CRC = int(shard), int(round), offset, size, uint32(crc)
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxChunkBody))
	if err != nil {
		httpapi.Errorf(w, http.StatusBadRequest, "bad chunk body: %v", err)
		return
	}
	u.Data = data
	writeJSON(w, c.upload(u))
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(c.Status())
}
