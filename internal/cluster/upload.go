package cluster

import (
	"hash/crc32"
)

// Upload ack statuses. The protocol is resumable: "resume" carries the
// coordinator's authoritative received-byte count, so an agent that
// lost an ack (or the coordinator, a partial buffer) resynchronizes by
// continuing from Received instead of resending the whole cell.
const (
	// StatusPartial acknowledges a chunk; more bytes are expected.
	StatusPartial = "partial"
	// StatusResume rejects a chunk at the wrong offset; Received is the
	// authoritative byte count to continue from.
	StatusResume = "resume"
	// StatusComplete acknowledges a fully received, verified, accepted
	// cell.
	StatusComplete = "complete"
	// StatusDuplicate acknowledges a cell the coordinator already has
	// (an agent retry after a lost ack, or a re-run after revocation).
	StatusDuplicate = "duplicate"
	// StatusBackoff defers an upload running too far ahead of the merge
	// frontier; the agent should retry later or release its lease.
	StatusBackoff = "backoff"
	// StatusRevoked rejects an upload under a stale or missing lease;
	// the agent must request a fresh lease.
	StatusRevoked = "revoked"
	// StatusFailed reports a failed campaign; agents should exit.
	StatusFailed = "failed"
)

// UploadChunk is one chunk of a (shard, round) cell upload.
type UploadChunk struct {
	Agent  string
	Lease  string
	Shard  int
	Round  int
	Offset int64
	Size   int64  // total cell payload size
	CRC    uint32 // IEEE CRC-32 of the full payload
	Data   []byte
}

// UploadAck is the coordinator's reply to one chunk.
type UploadAck struct {
	Status   string `json:"status"`
	Received int64  `json:"received"` // authoritative buffered byte count
	Merged   int    `json:"merged"`   // merge-frontier watermark
	Done     bool   `json:"done"`     // campaign fully merged
	Error    string `json:"error,omitempty"`
}

// upload runs the chunked-upload state machine for one request: buffer
// the chunk (resynchronizing offsets when the agent and coordinator
// disagree), and on the final chunk verify the payload CRC, decode the
// cell, and advance the merge.
func (c *Coordinator) upload(u UploadChunk) UploadAck {
	now := c.clock()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.touch(u.Agent, now)
	c.reap(now)
	defer c.refreshGauges(now)
	if c.err != nil {
		return UploadAck{Status: StatusFailed, Error: c.err.Error()}
	}
	if u.Shard < 0 || u.Shard >= len(c.shards) || u.Size < 0 || u.Round < 0 {
		return UploadAck{Status: StatusRevoked, Error: "malformed upload"}
	}
	st := &c.shards[u.Shard]
	if u.Round < st.uploaded {
		// Already accepted — an agent retry after a lost ack, or the
		// first rounds of a re-leased shard. Idempotent by design.
		return UploadAck{Status: StatusDuplicate, Received: u.Size, Merged: c.merged, Done: c.finished}
	}
	l := c.leases[u.Shard]
	if l == nil || l.id != u.Lease || l.agent != u.Agent {
		return UploadAck{Status: StatusRevoked}
	}
	if u.Round > st.uploaded {
		// The agent skipped a round; its lease state has diverged from
		// the watermark, so force a fresh lease at the right round.
		c.dropLease(u.Shard, "out-of-order upload")
		return UploadAck{Status: StatusRevoked, Error: "out-of-order round"}
	}
	if st.partial == nil && u.Round >= c.merged+c.cfg.MaxPendingRounds {
		c.m.uploadBackoff()
		return UploadAck{Status: StatusBackoff, Merged: c.merged}
	}
	p := st.partial
	if p == nil || p.round != u.Round || p.lease != u.Lease || p.size != u.Size || p.crc != u.CRC {
		p = &partial{round: u.Round, lease: u.Lease, size: u.Size, crc: u.CRC, buf: make([]byte, 0, u.Size)}
		st.partial = p
	}
	if u.Offset != int64(len(p.buf)) {
		c.m.uploadRetry()
		return UploadAck{Status: StatusResume, Received: int64(len(p.buf))}
	}
	if int64(len(u.Data)) > p.size-int64(len(p.buf)) {
		st.partial = nil
		c.m.uploadRetry()
		return UploadAck{Status: StatusResume, Received: 0, Error: "chunk overruns declared size"}
	}
	p.buf = append(p.buf, u.Data...)
	if int64(len(p.buf)) < p.size {
		return UploadAck{Status: StatusPartial, Received: int64(len(p.buf))}
	}
	payload := p.buf
	st.partial = nil
	if crc32.ChecksumIEEE(payload) != p.crc {
		c.m.uploadRetry()
		return UploadAck{Status: StatusResume, Received: 0, Error: "payload crc mismatch"}
	}
	if err := c.accept(u.Shard, u.Round, payload, now); err != nil {
		if c.err != nil {
			return UploadAck{Status: StatusFailed, Error: c.err.Error()}
		}
		// CRC passed but the cell did not decode: the agent encoded a
		// bad cell. Revoke so a fresh lease re-synthesizes it.
		c.dropLease(u.Shard, "undecodable cell")
		return UploadAck{Status: StatusRevoked, Error: err.Error()}
	}
	return UploadAck{Status: StatusComplete, Received: p.size, Merged: c.merged, Done: c.finished && c.err == nil}
}
