package cluster

import (
	"hash/crc32"
	"strings"
	"testing"
	"time"

	"repro/internal/results"
)

func cellCRC(b []byte) uint32 { return crc32.ChecksumIEEE(b) }

// testCell fabricates a valid encoded cell for (shard, round) with n
// samples, plus the samples themselves for sink assertions.
func testCell(t *testing.T, shard, round, n int) ([]byte, []results.Sample) {
	t.Helper()
	base := time.Date(2020, 3, 1, 0, 0, 0, 0, time.UTC)
	samples := make([]results.Sample, n)
	for i := range samples {
		samples[i] = results.Sample{
			ProbeID: shard*10_000 + round*100 + i + 1,
			Region:  "aws/unit",
			Time:    base.Add(time.Duration(round) * time.Hour),
			RTTms:   5,
		}
	}
	payload, err := results.EncodeCell(samples)
	if err != nil {
		t.Fatal(err)
	}
	return payload, samples
}

func unitCoordinator(t *testing.T, shards, rounds, maxPending int, sink func(results.Sample) error) *Coordinator {
	t.Helper()
	if sink == nil {
		sink = func(results.Sample) error { return nil }
	}
	coord, err := NewCoordinator(CoordinatorConfig{
		Plan: Plan{
			Fingerprint: "unit-test",
			Seed:        1,
			Probes:      10,
			Shards:      shards,
			Rounds:      rounds,
		},
		Sink:             sink,
		MaxPendingRounds: maxPending,
	})
	if err != nil {
		t.Fatal(err)
	}
	return coord
}

func mustGrant(t *testing.T, coord *Coordinator, agent string) leaseResult {
	t.Helper()
	lr := coord.leaseShard(agent)
	if lr.status != "grant" {
		t.Fatalf("lease for %q = %q, want grant", agent, lr.status)
	}
	return lr
}

// TestUploadStateMachine walks one shard through the full chunked
// upload protocol: partial buffering, offset resynchronization after a
// lost ack, CRC rejection, overrun rejection, duplicate detection,
// out-of-order revocation, and completion.
func TestUploadStateMachine(t *testing.T) {
	var got []results.Sample
	coord := unitCoordinator(t, 1, 3, 0, func(s results.Sample) error {
		got = append(got, s)
		return nil
	})
	coord.register("u1")
	lr := mustGrant(t, coord, "u1")
	if lr.shard != 0 || lr.startRound != 0 {
		t.Fatalf("granted shard %d round %d, want 0/0", lr.shard, lr.startRound)
	}

	payload, want0 := testCell(t, 0, 0, 9)
	size := int64(len(payload))
	crc := cellCRC(payload)
	half := payload[:size/2]
	chunk := func(round int, offset int64, data []byte, sz int64, c uint32, lease string) UploadAck {
		return coord.upload(UploadChunk{
			Agent: "u1", Lease: lease, Shard: 0, Round: round,
			Offset: offset, Size: sz, CRC: c, Data: data,
		})
	}

	// First half buffers.
	if ack := chunk(0, 0, half, size, crc, lr.leaseID); ack.Status != StatusPartial || ack.Received != int64(len(half)) {
		t.Fatalf("first chunk ack = %+v", ack)
	}
	// The same chunk again (lost ack): wrong offset, authoritative resume.
	if ack := chunk(0, 0, half, size, crc, lr.leaseID); ack.Status != StatusResume || ack.Received != int64(len(half)) {
		t.Fatalf("replayed chunk ack = %+v", ack)
	}
	// Continue from the resume point: cell completes and, with a single
	// shard, merges immediately.
	if ack := chunk(0, int64(len(half)), payload[len(half):], size, crc, lr.leaseID); ack.Status != StatusComplete || ack.Merged != 1 {
		t.Fatalf("final chunk ack = %+v", ack)
	}
	// Re-uploading the merged round is an idempotent duplicate.
	if ack := chunk(0, 0, payload, size, crc, lr.leaseID); ack.Status != StatusDuplicate {
		t.Fatalf("duplicate ack = %+v", ack)
	}

	p1, want1 := testCell(t, 0, 1, 9)
	s1, c1 := int64(len(p1)), cellCRC(p1)
	// A stale lease is revoked.
	if ack := chunk(1, 0, p1, s1, c1, "L-stale"); ack.Status != StatusRevoked {
		t.Fatalf("stale-lease ack = %+v", ack)
	}
	// A corrupt payload fails the CRC and restarts the cell.
	if ack := chunk(1, 0, p1, s1, c1+1, lr.leaseID); ack.Status != StatusResume || ack.Received != 0 {
		t.Fatalf("bad-crc ack = %+v", ack)
	}
	// A chunk overrunning the declared size restarts the cell.
	if ack := chunk(1, 0, p1, s1-1, c1, lr.leaseID); ack.Status != StatusResume || ack.Received != 0 {
		t.Fatalf("overrun ack = %+v", ack)
	}
	// Skipping ahead of the watermark drops the lease.
	p2, want2 := testCell(t, 0, 2, 9)
	if ack := chunk(2, 0, p2, int64(len(p2)), cellCRC(p2), lr.leaseID); ack.Status != StatusRevoked {
		t.Fatalf("out-of-order ack = %+v", ack)
	}

	// A fresh lease resumes exactly at the watermark and finishes.
	lr2 := mustGrant(t, coord, "u1")
	if lr2.startRound != 1 || lr2.leaseID == lr.leaseID {
		t.Fatalf("re-lease = %+v after %+v", lr2, lr)
	}
	if ack := chunk(1, 0, p1, s1, c1, lr2.leaseID); ack.Status != StatusComplete || ack.Merged != 2 {
		t.Fatalf("round 1 ack = %+v", ack)
	}
	ack := chunk(2, 0, p2, int64(len(p2)), cellCRC(p2), lr2.leaseID)
	if ack.Status != StatusComplete || ack.Merged != 3 || !ack.Done {
		t.Fatalf("final round ack = %+v", ack)
	}
	if !coord.Done() || coord.Merged() != 3 {
		t.Fatalf("coordinator merged %d, done=%v", coord.Merged(), coord.Done())
	}
	if next := coord.leaseShard("u1"); next.status != "done" {
		t.Fatalf("post-completion lease = %q, want done", next.status)
	}

	want := append(append(append([]results.Sample(nil), want0...), want1...), want2...)
	if len(got) != len(want) {
		t.Fatalf("sink saw %d samples, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].ProbeID != want[i].ProbeID {
			t.Fatalf("sink order diverges at %d: probe %d, want %d", i, got[i].ProbeID, want[i].ProbeID)
		}
	}
}

// TestUploadBackpressure checks uploads running ahead of the merge
// frontier are deferred while frontier uploads always pass, and that
// the window reopens as the frontier advances.
func TestUploadBackpressure(t *testing.T) {
	coord := unitCoordinator(t, 2, 4, 1, nil)
	coord.register("u1")
	coord.register("u2")
	l0 := mustGrant(t, coord, "u1") // shard 0 — the frontier blocker
	l1 := mustGrant(t, coord, "u2") // shard 1 — runs ahead
	if l0.shard == l1.shard {
		t.Fatalf("both agents granted shard %d", l0.shard)
	}

	send := func(agent string, lr leaseResult, round int) UploadAck {
		payload, _ := testCell(t, lr.shard, round, 4)
		return coord.upload(UploadChunk{
			Agent: agent, Lease: lr.leaseID, Shard: lr.shard, Round: round,
			Offset: 0, Size: int64(len(payload)), CRC: cellCRC(payload), Data: payload,
		})
	}

	// Shard 1 round 0 sits at the frontier: accepted even at the
	// tightest window.
	if ack := send("u2", l1, 0); ack.Status != StatusComplete {
		t.Fatalf("frontier upload ack = %+v", ack)
	}
	// Round 1 is one past the stalled frontier: deferred.
	ack := send("u2", l1, 1)
	if ack.Status != StatusBackoff || ack.Merged != 0 {
		t.Fatalf("ahead-of-frontier ack = %+v", ack)
	}
	if !strings.HasPrefix(l1.leaseID, "L") {
		t.Fatalf("lease id %q", l1.leaseID)
	}
	// The blocker lands, the frontier moves, and the window reopens.
	if ack := send("u1", l0, 0); ack.Status != StatusComplete || ack.Merged != 1 {
		t.Fatalf("blocker upload ack = %+v", ack)
	}
	if ack := send("u2", l1, 1); ack.Status != StatusComplete {
		t.Fatalf("post-advance ack = %+v", ack)
	}
}
