package atlas

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/results"
)

// metricsFixture is apiFixture with telemetry attached everywhere.
func metricsFixture(t *testing.T) (*Platform, *Metrics, *Client, *httptest.Server) {
	t.Helper()
	p := smallPlatform(t)
	m := NewMetrics(obs.NewRegistry())
	p.Metrics = m
	ledger := NewLedger()
	ledger.Instrument(m)
	if err := ledger.Grant("alice", 10000); err != nil {
		t.Fatal(err)
	}
	live, err := NewLiveService(p, ledger, 0.001, WithLiveMetrics(m))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(live.Close)
	srv, err := NewServer(p, ledger, live, WithServerMetrics(m))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	c, err := NewClient(ts.URL, "alice", ts.Client())
	if err != nil {
		t.Fatal(err)
	}
	return p, m, c, ts
}

func scrape(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

func TestMiddlewareRecordsRequests(t *testing.T) {
	_, m, c, ts := metricsFixture(t)
	ctx := context.Background()

	if _, err := c.Probes(ctx, ProbeFilter{Limit: 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Regions(ctx); err != nil {
		t.Fatal(err)
	}
	// A 4xx on the probes route.
	resp, err := http.Get(ts.URL + "/api/v1/probes?limit=abc")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad limit = %d", resp.StatusCode)
	}

	if got := m.ReqTotal.With("probes", "2xx").Value(); got != 1 {
		t.Errorf("probes 2xx = %d, want 1", got)
	}
	if got := m.ReqTotal.With("probes", "4xx").Value(); got != 1 {
		t.Errorf("probes 4xx = %d, want 1", got)
	}
	if got := m.ReqTotal.With("regions", "2xx").Value(); got != 1 {
		t.Errorf("regions 2xx = %d, want 1", got)
	}
	if got := m.ReqDur.With("probes").Count(); got != 2 {
		t.Errorf("probes duration observations = %d, want 2", got)
	}

	expo := scrape(t, ts)
	for _, want := range []string{
		`atlas_http_requests_total{route="probes",class="2xx"} 1`,
		`atlas_http_requests_total{route="probes",class="4xx"} 1`,
		`atlas_http_requests_total{route="regions",class="2xx"} 1`,
		"# TYPE atlas_http_request_duration_seconds histogram",
		`atlas_http_request_duration_seconds_count{route="probes"} 2`,
	} {
		if !strings.Contains(expo, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// The scrape itself is not self-instrumented (no /metrics route label).
	if strings.Contains(expo, `route="metrics"`) {
		t.Error("scrape instrumented itself")
	}
}

func TestLiveMeasurementMetrics(t *testing.T) {
	p, m, c, ts := metricsFixture(t)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	pr := p.Population.Public()[0]
	target := p.Targets(pr)[0].Addr()
	id, err := c.CreateMeasurement(ctx, target, []int{pr.ID}, 2, 10*time.Millisecond, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	samples, err := c.WaitDone(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.MeasurementsCreated.Value(); got != 1 {
		t.Errorf("created = %d, want 1", got)
	}
	if got := m.MeasurementsDone.Value(); got != 1 {
		t.Errorf("done = %d, want 1", got)
	}
	if got := m.ResultsCollected.Value(); got != uint64(len(samples)) {
		t.Errorf("results collected = %d, want %d", got, len(samples))
	}
	if got := m.CreditsSpent.Value(); got != 2 {
		t.Errorf("credits spent = %d, want 2", got)
	}
	if got := m.CreditsGranted.Value(); got != 10000 {
		t.Errorf("credits granted = %d, want 10000", got)
	}
	if got := m.Ping.Sent.Value(); got < 2 {
		t.Errorf("ping sent = %d, want >= 2", got)
	}
	if got := m.Net.Sent.Value(); got < 2 {
		t.Errorf("net packets = %d, want >= 2", got)
	}
	received := m.Ping.Received.Value() + m.Ping.Timeouts.Value()
	if received < 2 {
		t.Errorf("ping received+timeouts = %d, want >= 2", received)
	}
	if m.Ping.Received.Value() > 0 && m.Ping.RTTms.Count() == 0 {
		t.Error("RTT histogram empty despite replies")
	}

	expo := scrape(t, ts)
	for _, want := range []string{
		"# TYPE atlas_measurements_done_total counter",
		"atlas_measurements_done_total 1",
		"atlas_credits_spent_total 2",
		"# TYPE ping_timeouts_total counter",
		"# TYPE ping_rtt_ms histogram",
	} {
		if !strings.Contains(expo, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

func TestStatusEndpoint(t *testing.T) {
	p, _, c, ts := metricsFixture(t)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	pr := p.Population.Public()[0]
	target := p.Targets(pr)[0].Addr()
	id, err := c.CreateMeasurement(ctx, target, []int{pr.ID}, 1, 0, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.WaitDone(ctx, id); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/api/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/api/v1/status = %d", resp.StatusCode)
	}
	var st StatusDTO
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Probes != p.Population.Len() || st.Regions != p.Catalog.Len() {
		t.Errorf("census: %+v", st)
	}
	if st.Measurements[StatusDone] != 1 {
		t.Errorf("measurements = %v", st.Measurements)
	}
	if st.ResultsCollected != 1 {
		t.Errorf("results collected = %d", st.ResultsCollected)
	}
	if st.UptimeSeconds <= 0 {
		t.Errorf("uptime = %v", st.UptimeSeconds)
	}
}

func TestStatusWithoutMetrics(t *testing.T) {
	// The uninstrumented fixture still serves status (zero-valued
	// telemetry) and refuses /metrics.
	p, _, c := apiFixture(t)
	resp, err := c.hc.Get(c.base + "/api/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/api/v1/status = %d", resp.StatusCode)
	}
	var st StatusDTO
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Probes != p.Population.Len() {
		t.Errorf("probes = %d", st.Probes)
	}
	mresp, err := c.hc.Get(c.base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mresp.Body.Close()
	if mresp.StatusCode != http.StatusNotFound {
		t.Errorf("/metrics without registry = %d, want 404", mresp.StatusCode)
	}
}

func TestWriteJSONEncodeErrorSurfaced(t *testing.T) {
	m := NewMetrics(obs.NewRegistry())
	h := m.instrument("bad", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"ch": make(chan int)}) // unencodable
	})
	rec := httptest.NewRecorder()
	h(rec, httptest.NewRequest("GET", "/x", nil))
	if got := m.EncodeErrors.With("bad").Value(); got != 1 {
		t.Errorf("encode errors = %d, want 1", got)
	}
	// The status class is still recorded (2xx: header went out first).
	if got := m.ReqTotal.With("bad", "2xx").Value(); got != 1 {
		t.Errorf("requests = %d, want 1", got)
	}

	// A clean response records no encode error.
	ok := m.instrument("ok", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]int{"n": 1})
	})
	ok(httptest.NewRecorder(), httptest.NewRequest("GET", "/y", nil))
	if got := m.EncodeErrors.With("ok").Value(); got != 0 {
		t.Errorf("clean route encode errors = %d", got)
	}
}

func TestCampaignMetricsAndSpans(t *testing.T) {
	p := smallPlatform(t)
	m := NewMetrics(obs.NewRegistry())
	p.Metrics = m

	cfg := TestCampaign()
	cfg.End = cfg.Start.Add(24 * time.Hour) // 8 rounds
	span := obs.NewTrace("campaign")
	ctx := obs.ContextWith(context.Background(), span)
	var mem results.Memory
	n, err := p.RunCampaign(ctx, cfg, mem.Add)
	if err != nil {
		t.Fatal(err)
	}
	span.End()

	if got := m.CampaignSamples.Sum(); got != n {
		t.Errorf("samples counter = %d, campaign emitted %d", got, n)
	}
	if got := m.CampaignRoundsDone.Value(); got != float64(cfg.Rounds()) {
		t.Errorf("rounds done = %v, want %d", got, cfg.Rounds())
	}
	if got := m.CampaignRoundsTotal.Value(); got != float64(cfg.Rounds()) {
		t.Errorf("rounds total = %v, want %d", got, cfg.Rounds())
	}
	// Multiple continents actually contribute.
	continents := 0
	m.CampaignSamples.Walk(func(labels []string, v uint64) {
		if v > 0 {
			continents++
		}
	})
	if continents < 3 {
		t.Errorf("only %d continents sampled", continents)
	}

	d := span.Dump()
	if len(d.Children) != cfg.Rounds() {
		t.Fatalf("%d round spans, want %d", len(d.Children), cfg.Rounds())
	}
	var total uint64
	for _, c := range d.Children {
		if c.Name != "round" || c.End.IsZero() {
			t.Errorf("bad round span %+v", c)
		}
		total += c.Attrs["samples"].(uint64)
	}
	if total != n {
		t.Errorf("round spans account for %d samples, campaign emitted %d", total, n)
	}
	if d.Attrs["samples"].(uint64) != n {
		t.Errorf("root samples attr = %v, want %d", d.Attrs["samples"], n)
	}
}
