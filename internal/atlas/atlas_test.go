package atlas

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/cloud"
	"repro/internal/geo"
	"repro/internal/netem"
	"repro/internal/probe"
	"repro/internal/results"
)

// smallPlatform builds a compact platform for tests: ~200 probes, full
// region catalog.
func smallPlatform(t testing.TB) *Platform {
	t.Helper()
	db := geo.World()
	cat, err := cloud.Deployment(db)
	if err != nil {
		t.Fatal(err)
	}
	cfg := probe.DefaultGenConfig()
	cfg.Count = 200
	pop, err := probe.Generate(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	model, err := netem.NewModel(netem.DefaultConfig(), 7)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPlatform(pop, cat, model)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewPlatformValidation(t *testing.T) {
	p := smallPlatform(t)
	if _, err := NewPlatform(nil, p.Catalog, p.Model); err == nil {
		t.Error("nil population accepted")
	}
	if _, err := NewPlatform(p.Population, nil, p.Model); err == nil {
		t.Error("nil catalog accepted")
	}
	if _, err := NewPlatform(p.Population, p.Catalog, nil); err == nil {
		t.Error("nil model accepted")
	}
}

func TestTargetsFollowMethodology(t *testing.T) {
	p := smallPlatform(t)
	for _, pr := range p.Population.Public() {
		targets := p.Targets(pr)
		if len(targets) == 0 {
			t.Fatalf("probe %d (%v) has no targets", pr.ID, pr.Continent)
		}
		wantContinents := map[geo.Continent]bool{}
		for _, ct := range pr.Continent.MeasurementTargets() {
			wantContinents[ct] = true
		}
		for _, r := range targets {
			if !wantContinents[p.Catalog.Continent(r)] {
				t.Fatalf("probe %d on %v got out-of-methodology target %s on %v",
					pr.ID, pr.Continent, r.Addr(), p.Catalog.Continent(r))
			}
		}
	}
}

func TestPathCaching(t *testing.T) {
	p := smallPlatform(t)
	pr := p.Population.Public()[0]
	r := p.Targets(pr)[0]
	p1, err := p.Path(pr, r)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := p.Path(pr, r)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("path not cached")
	}
}

func TestLinkResolution(t *testing.T) {
	p := smallPlatform(t)
	pr := p.Population.Public()[0]
	r := p.Targets(pr)[0]
	at := time.Date(2019, 9, 1, 0, 0, 0, 0, time.UTC)
	// Forward and reverse legs must both resolve.
	d1, _, err := p.Link(pr.Addr(), r.Addr(), at)
	if err != nil {
		t.Fatalf("forward: %v", err)
	}
	d2, lost2, err := p.Link(r.Addr(), pr.Addr(), at)
	if err != nil {
		t.Fatalf("reverse: %v", err)
	}
	if d1 <= 0 || d2 <= 0 {
		t.Errorf("non-positive delays %v %v", d1, d2)
	}
	if lost2 {
		t.Error("reverse leg applied loss")
	}
	// Unknown pairs are rejected.
	if _, _, err := p.Link("probe/999999", r.Addr(), at); err == nil {
		t.Error("unknown probe accepted")
	}
	if _, _, err := p.Link(pr.Addr(), "Nebula/nowhere", at); err == nil {
		t.Error("unknown region accepted")
	}
	if _, _, err := p.Link("x", "y", at); err == nil {
		t.Error("garbage pair accepted")
	}
}

func TestCampaignConfigValidation(t *testing.T) {
	good := TestCampaign()
	if err := good.Validate(); err != nil {
		t.Fatalf("test campaign invalid: %v", err)
	}
	if err := PaperCampaign().Validate(); err != nil {
		t.Fatalf("paper campaign invalid: %v", err)
	}
	muts := []func(*CampaignConfig){
		func(c *CampaignConfig) { c.End = c.Start },
		func(c *CampaignConfig) { c.Interval = 0 },
		func(c *CampaignConfig) { c.TargetsPerRound = 0 },
		func(c *CampaignConfig) { c.Participation = 0 },
		func(c *CampaignConfig) { c.Participation = 1.5 },
		func(c *CampaignConfig) { c.PingsPerTarget = 0 },
	}
	for i, m := range muts {
		c := TestCampaign()
		m(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestRunCampaign(t *testing.T) {
	p := smallPlatform(t)
	cfg := TestCampaign()
	cfg.End = cfg.Start.Add(3 * 24 * time.Hour) // 3 days, 8 rounds/day

	var mem results.Memory
	n, err := p.RunCampaign(context.Background(), cfg, mem.Add)
	if err != nil {
		t.Fatal(err)
	}
	public := len(p.Population.Public())
	want := uint64(cfg.Rounds() * public * cfg.TargetsPerRound)
	if n != want {
		t.Errorf("emitted %d samples, want %d", n, want)
	}
	if uint64(mem.Len()) != n {
		t.Errorf("sink saw %d, runner reports %d", mem.Len(), n)
	}

	// Samples reference only public probes and real regions, inside the
	// window, with sane RTTs.
	lost := 0
	err = mem.ForEach(func(s results.Sample) error {
		pr, ok := p.Population.Lookup(s.ProbeID)
		if !ok || pr.Privileged() {
			t.Fatalf("sample from bad probe %d", s.ProbeID)
		}
		if _, ok := p.Catalog.Lookup(s.Region); !ok {
			t.Fatalf("sample to unknown region %s", s.Region)
		}
		if s.Time.Before(cfg.Start) || !s.Time.Before(cfg.End) {
			t.Fatalf("sample at %v outside window", s.Time)
		}
		if s.Lost {
			lost++
		} else if s.RTTms <= 0 || s.RTTms > 5000 {
			t.Fatalf("implausible RTT %v", s.RTTms)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if frac := float64(lost) / float64(mem.Len()); frac > 0.1 {
		t.Errorf("loss fraction %.3f implausibly high", frac)
	}
}

func TestRunCampaignDeterministic(t *testing.T) {
	cfg := TestCampaign()
	cfg.End = cfg.Start.Add(24 * time.Hour)
	collect := func() []results.Sample {
		p := smallPlatform(t)
		var mem results.Memory
		if _, err := p.RunCampaign(context.Background(), cfg, mem.Add); err != nil {
			t.Fatal(err)
		}
		var out []results.Sample
		_ = mem.ForEach(func(s results.Sample) error { out = append(out, s); return nil })
		return out
	}
	a, b := collect(), collect()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sample %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestRunCampaignHonorsContext(t *testing.T) {
	p := smallPlatform(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.RunCampaign(ctx, TestCampaign(), func(results.Sample) error { return nil }); !errors.Is(err, context.Canceled) {
		t.Errorf("got %v, want context.Canceled", err)
	}
}

func TestRunCampaignSinkError(t *testing.T) {
	p := smallPlatform(t)
	sentinel := errors.New("disk full")
	n, err := p.RunCampaign(context.Background(), TestCampaign(), func(results.Sample) error { return sentinel })
	if !errors.Is(err, sentinel) {
		t.Errorf("got %v", err)
	}
	if n != 0 {
		t.Errorf("emitted %d after sink failure", n)
	}
}

func TestParticipationThinning(t *testing.T) {
	p := smallPlatform(t)
	cfg := TestCampaign()
	cfg.End = cfg.Start.Add(6 * 24 * time.Hour)
	full, err := p.RunCampaign(context.Background(), cfg, func(results.Sample) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	cfg.Participation = 0.5
	half, err := p.RunCampaign(context.Background(), cfg, func(results.Sample) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(half) / float64(full)
	if ratio < 0.4 || ratio > 0.6 {
		t.Errorf("participation 0.5 kept %.2f of samples", ratio)
	}
}

func TestLedger(t *testing.T) {
	l := NewLedger()
	if err := l.Grant("", 10); err == nil {
		t.Error("empty account accepted")
	}
	if err := l.Grant("a", 0); err == nil {
		t.Error("zero grant accepted")
	}
	if err := l.Grant("a", 100); err != nil {
		t.Fatal(err)
	}
	if err := l.Charge("a", 150); !errors.Is(err, ErrInsufficientCredits) {
		t.Errorf("overdraft: %v", err)
	}
	if err := l.Charge("a", 60); err != nil {
		t.Fatal(err)
	}
	if l.Balance("a") != 40 || l.Spent("a") != 60 {
		t.Errorf("balance=%d spent=%d", l.Balance("a"), l.Spent("a"))
	}
	if err := l.Refund("a", 100); err == nil {
		t.Error("refund beyond spend accepted")
	}
	if err := l.Refund("a", 10); err != nil {
		t.Fatal(err)
	}
	if l.Balance("a") != 50 || l.Spent("a") != 50 {
		t.Errorf("after refund: balance=%d spent=%d", l.Balance("a"), l.Spent("a"))
	}
	if err := l.Charge("a", -1); err == nil {
		t.Error("negative charge accepted")
	}
	if err := l.Refund("a", -1); err == nil {
		t.Error("negative refund accepted")
	}
	if l.Balance("ghost") != 0 {
		t.Error("unknown account has balance")
	}
}

func TestLiveMeasurement(t *testing.T) {
	p := smallPlatform(t)
	ledger := NewLedger()
	if err := ledger.Grant("alice", 1000); err != nil {
		t.Fatal(err)
	}
	svc, err := NewLiveService(p, ledger, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	pr := p.Population.Public()[0]
	target := p.Targets(pr)[0]
	spec := MeasurementSpec{
		Target:   target.Addr(),
		ProbeIDs: []int{pr.ID},
		Count:    3,
		Interval: 10 * time.Millisecond,
		Timeout:  5 * time.Second,
	}
	id, err := svc.Create("alice", spec)
	if err != nil {
		t.Fatal(err)
	}
	if ledger.Spent("alice") != spec.Cost() {
		t.Errorf("spent %d, want %d", ledger.Spent("alice"), spec.Cost())
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	m, err := svc.Wait(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if m.Status != StatusDone {
		t.Fatalf("status = %s (%s)", m.Status, m.Error)
	}
	if len(m.Results) != 3 {
		t.Fatalf("got %d results", len(m.Results))
	}
	for _, s := range m.Results {
		if s.Lost {
			continue
		}
		// RTT is reported at full scale: a wide-area path is at least 1 ms
		// and under 5 s.
		if s.RTTms < 1 || s.RTTms > 5000 {
			t.Errorf("RTT %v ms out of range", s.RTTms)
		}
	}
}

func TestLiveMeasurementValidation(t *testing.T) {
	p := smallPlatform(t)
	ledger := NewLedger()
	if err := ledger.Grant("bob", 5); err != nil {
		t.Fatal(err)
	}
	svc, err := NewLiveService(p, ledger, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	pr := p.Population.Public()[0]
	target := p.Targets(pr)[0].Addr()
	base := MeasurementSpec{Target: target, ProbeIDs: []int{pr.ID}, Count: 1, Timeout: time.Second}

	cases := []struct {
		name string
		mut  func(MeasurementSpec) MeasurementSpec
	}{
		{"unknown target", func(s MeasurementSpec) MeasurementSpec { s.Target = "X/y"; return s }},
		{"no probes", func(s MeasurementSpec) MeasurementSpec { s.ProbeIDs = nil; return s }},
		{"unknown probe", func(s MeasurementSpec) MeasurementSpec { s.ProbeIDs = []int{99999}; return s }},
		{"zero count", func(s MeasurementSpec) MeasurementSpec { s.Count = 0; return s }},
		{"huge count", func(s MeasurementSpec) MeasurementSpec { s.Count = 1000; return s }},
		{"negative interval", func(s MeasurementSpec) MeasurementSpec { s.Interval = -time.Second; return s }},
		{"zero timeout", func(s MeasurementSpec) MeasurementSpec { s.Timeout = 0; return s }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := svc.Create("bob", tc.mut(base)); err == nil {
				t.Error("invalid spec accepted")
			}
		})
	}

	// Privileged probes are refused.
	var privileged int
	for _, pr := range p.Population.All() {
		if pr.Privileged() {
			privileged = pr.ID
			break
		}
	}
	if privileged != 0 {
		s := base
		s.ProbeIDs = []int{privileged}
		if _, err := svc.Create("bob", s); err == nil {
			t.Error("privileged probe accepted")
		}
	}

	// Credit exhaustion.
	s := base
	s.Count = 100
	if _, err := svc.Create("bob", s); !errors.Is(err, ErrInsufficientCredits) {
		t.Errorf("overdraft: %v", err)
	}
	if _, ok := svc.Get(12345); ok {
		t.Error("unknown measurement found")
	}
}

func TestNewLiveServiceValidation(t *testing.T) {
	p := smallPlatform(t)
	if _, err := NewLiveService(nil, NewLedger(), 1); err == nil {
		t.Error("nil platform accepted")
	}
	if _, err := NewLiveService(p, nil, 1); err == nil {
		t.Error("nil ledger accepted")
	}
	if _, err := NewLiveService(p, NewLedger(), 0); err == nil {
		t.Error("zero time scale accepted")
	}
	if _, err := NewLiveService(p, NewLedger(), 2); err == nil {
		t.Error("time scale above 1 accepted")
	}
}

func TestLinkServiceSuffixes(t *testing.T) {
	p := smallPlatform(t)
	pr := p.Population.Public()[0]
	r := p.Targets(pr)[0]
	at := time.Date(2019, 9, 1, 0, 0, 0, 0, time.UTC)
	// Suffixed service addresses share the host's network location.
	if _, _, err := p.Link(pr.Addr()+"/tcp-client", r.Addr()+"/tcp", at); err != nil {
		t.Errorf("suffixed pair rejected: %v", err)
	}
	if _, _, err := p.Link(r.Addr()+"/tcp", pr.Addr(), at); err != nil {
		t.Errorf("suffixed reverse rejected: %v", err)
	}
	// But garbage still fails.
	if _, _, err := p.Link("Amazon/nope/tcp", pr.Addr(), at); err == nil {
		t.Error("unknown suffixed region accepted")
	}
}

func TestLinkSizedSerialization(t *testing.T) {
	p := smallPlatform(t)
	pr := p.Population.Public()[0]
	r := p.Targets(pr)[0]
	at := time.Date(2019, 9, 1, 0, 0, 0, 0, time.UTC)
	small, _, err := p.LinkSized(pr.Addr(), r.Addr(), 64, at)
	if err != nil {
		t.Fatal(err)
	}
	big, _, err := p.LinkSized(pr.Addr(), r.Addr(), 1<<20, at)
	if err != nil {
		t.Fatal(err)
	}
	// A 1 MiB payload pays serialization time a 64-byte ping does not.
	if big <= small {
		t.Errorf("1MiB leg (%v) not slower than 64B leg (%v)", big, small)
	}
	// The reverse (datacenter->probe) leg is not probe-uplink constrained.
	revSmall, _, err := p.LinkSized(r.Addr(), pr.Addr(), 64, at)
	if err != nil {
		t.Fatal(err)
	}
	revBig, _, err := p.LinkSized(r.Addr(), pr.Addr(), 1<<20, at)
	if err != nil {
		t.Fatal(err)
	}
	if revBig != revSmall {
		t.Errorf("reverse leg varies with size: %v vs %v", revBig, revSmall)
	}
}
