package atlas

import (
	"context"
	"fmt"
	"time"

	"repro/internal/geo"
	"repro/internal/obs"
	"repro/internal/results"
)

// CampaignConfig describes a long-running measurement campaign following
// the paper's methodology (§4.1): every Interval, each participating probe
// pings TargetsPerRound of its same-continent regions (rotating through the
// whole target list over successive rounds, so every probe eventually
// covers every target).
type CampaignConfig struct {
	Start    time.Time
	End      time.Time
	Interval time.Duration
	// TargetsPerRound is how many regions a probe pings per round.
	TargetsPerRound int
	// Participation thins rounds: a probe takes part in a round with this
	// probability (deterministic in the probe and round). The paper's
	// credit quotas have the same effect; 1 means every probe every round.
	Participation float64
	// PingsPerTarget is the ping repetition per (probe, target, round);
	// the minimum RTT of the repetitions is recorded, like ping -c N.
	PingsPerTarget int
}

// PaperCampaign is the paper-scale configuration: nine months from
// September 2019 at three-hour rounds, tuned to land near the reported 3.2M
// datapoints.
func PaperCampaign() CampaignConfig {
	return CampaignConfig{
		Start:           time.Date(2019, 9, 1, 0, 0, 0, 0, time.UTC),
		End:             time.Date(2020, 6, 1, 0, 0, 0, 0, time.UTC),
		Interval:        3 * time.Hour,
		TargetsPerRound: 1,
		Participation:   0.45,
		PingsPerTarget:  3,
	}
}

// TestCampaign is a small configuration for tests, examples and benches:
// 30 days, ~400x smaller than the paper run but with the same shape.
func TestCampaign() CampaignConfig {
	return CampaignConfig{
		Start:           time.Date(2019, 9, 1, 0, 0, 0, 0, time.UTC),
		End:             time.Date(2019, 10, 1, 0, 0, 0, 0, time.UTC),
		Interval:        3 * time.Hour,
		TargetsPerRound: 2,
		Participation:   1,
		PingsPerTarget:  1,
	}
}

// Validate checks the campaign parameters.
func (c CampaignConfig) Validate() error {
	if c.Start.IsZero() || c.End.IsZero() || !c.End.After(c.Start) {
		return fmt.Errorf("atlas: invalid campaign window [%v, %v]", c.Start, c.End)
	}
	if c.Interval <= 0 {
		return fmt.Errorf("atlas: non-positive interval %v", c.Interval)
	}
	if c.TargetsPerRound <= 0 {
		return fmt.Errorf("atlas: non-positive targets per round %d", c.TargetsPerRound)
	}
	if c.Participation <= 0 || c.Participation > 1 {
		return fmt.Errorf("atlas: participation %v out of (0,1]", c.Participation)
	}
	if c.PingsPerTarget <= 0 {
		return fmt.Errorf("atlas: non-positive pings per target %d", c.PingsPerTarget)
	}
	return nil
}

// Rounds returns the number of measurement rounds in the window.
func (c CampaignConfig) Rounds() int {
	return int(c.End.Sub(c.Start) / c.Interval)
}

// Meta converts the config into dataset metadata.
func (c CampaignConfig) Meta(seed uint64, probes, regions int) results.Meta {
	return results.Meta{
		Seed:          seed,
		Start:         c.Start,
		End:           c.End,
		IntervalHours: c.Interval.Hours(),
		Probes:        probes,
		Regions:       regions,
	}
}

// RunCampaign synthesizes the campaign dataset directly from the latency
// model (the fast path: no packet machinery), streaming every sample to
// sink in deterministic order. Privileged probes are excluded, mirroring
// the paper's filtering. It returns the number of samples emitted.
//
// Observability: a span carried in ctx (obs.ContextWith) gets one child
// span per round; p.Metrics, when set, receives round progress gauges and
// per-continent sample tallies as the campaign runs.
func (p *Platform) RunCampaign(ctx context.Context, cfg CampaignConfig, sink func(results.Sample) error) (uint64, error) {
	if err := cfg.Validate(); err != nil {
		return 0, err
	}
	probes := p.Population.Public()
	if len(probes) == 0 {
		return 0, fmt.Errorf("atlas: no public probes")
	}
	var emitted uint64
	rounds := cfg.Rounds()
	m := p.Metrics
	span := obs.From(ctx)
	span.SetAttr("rounds", rounds)
	span.SetAttr("probes", len(probes))
	if m != nil {
		m.CampaignRoundsTotal.Set(float64(rounds))
		m.CampaignRoundsDone.Set(0)
	}
	// Per-continent counters, resolved once: the sample loop is the
	// hottest path in the system (3.2M iterations at paper scale).
	samplesBy := make(map[geo.Continent]*obs.Counter)
	for round := 0; round < rounds; round++ {
		if err := ctx.Err(); err != nil {
			return emitted, err
		}
		at := cfg.Start.Add(time.Duration(round) * cfg.Interval)
		roundSpan := span.Child("round")
		roundSpan.SetAttr("round", round)
		roundSpan.SetAttr("at", at.Format(time.RFC3339))
		roundStart := emitted
		for _, pr := range probes {
			targets := p.Targets(pr)
			if len(targets) == 0 {
				continue
			}
			if cfg.Participation < 1 && !participates(pr.ID, round, cfg.Participation) {
				continue
			}
			for k := 0; k < cfg.TargetsPerRound; k++ {
				// Rotate deterministically through the target list so each
				// probe covers every region over the campaign.
				idx := (round*cfg.TargetsPerRound + k + pr.ID) % len(targets)
				r := targets[idx]
				path, err := p.Path(pr, r)
				if err != nil {
					return emitted, err
				}
				s := results.Sample{ProbeID: pr.ID, Region: r.Addr(), Time: at}
				best := 0.0
				got := false
				for rep := 0; rep < cfg.PingsPerTarget; rep++ {
					ms, lost := path.RTT(at.Add(time.Duration(rep) * time.Second))
					if lost {
						continue
					}
					if !got || ms < best {
						best, got = ms, true
					}
				}
				if got {
					s.RTTms = best
				} else {
					s.Lost = true
				}
				if err := sink(s); err != nil {
					return emitted, err
				}
				emitted++
				if m != nil {
					c, ok := samplesBy[pr.Continent]
					if !ok {
						c = m.CampaignSamples.With(pr.Continent.Code())
						samplesBy[pr.Continent] = c
					}
					c.Inc()
					if s.Lost {
						m.CampaignLost.Inc()
					}
				}
			}
		}
		roundSpan.SetAttr("samples", emitted-roundStart)
		roundSpan.End()
		if m != nil {
			m.CampaignRoundsDone.Set(float64(round + 1))
		}
	}
	span.SetAttr("samples", emitted)
	return emitted, nil
}

// participates deterministically thins probe-rounds: it hashes (probe,
// round) into [0,1) and compares against the participation fraction.
func participates(probeID, round int, frac float64) bool {
	h := uint64(probeID)*0x9e3779b97f4a7c15 + uint64(round)*0xbf58476d1ce4e5b9
	h ^= h >> 29
	h *= 0x94d049bb133111eb
	h ^= h >> 32
	return float64(h>>11)/(1<<53) < frac
}
