package atlas

import (
	"context"
	"fmt"
	"time"

	"repro/internal/geo"
	"repro/internal/obs"
	"repro/internal/probe"
	"repro/internal/results"
)

// CampaignConfig describes a long-running measurement campaign following
// the paper's methodology (§4.1): every Interval, each participating probe
// pings TargetsPerRound of its same-continent regions (rotating through the
// whole target list over successive rounds, so every probe eventually
// covers every target).
type CampaignConfig struct {
	Start    time.Time
	End      time.Time
	Interval time.Duration
	// TargetsPerRound is how many regions a probe pings per round.
	TargetsPerRound int
	// Participation thins rounds: a probe takes part in a round with this
	// probability (deterministic in the probe and round). The paper's
	// credit quotas have the same effect; 1 means every probe every round.
	Participation float64
	// PingsPerTarget is the ping repetition per (probe, target, round);
	// the minimum RTT of the repetitions is recorded, like ping -c N.
	PingsPerTarget int
}

// PaperCampaign is the paper-scale configuration: nine months from
// September 2019 at three-hour rounds, tuned to land near the reported 3.2M
// datapoints.
func PaperCampaign() CampaignConfig {
	return CampaignConfig{
		Start:           time.Date(2019, 9, 1, 0, 0, 0, 0, time.UTC),
		End:             time.Date(2020, 6, 1, 0, 0, 0, 0, time.UTC),
		Interval:        3 * time.Hour,
		TargetsPerRound: 1,
		Participation:   0.45,
		PingsPerTarget:  3,
	}
}

// TestCampaign is a small configuration for tests, examples and benches:
// 30 days, ~400x smaller than the paper run but with the same shape.
func TestCampaign() CampaignConfig {
	return CampaignConfig{
		Start:           time.Date(2019, 9, 1, 0, 0, 0, 0, time.UTC),
		End:             time.Date(2019, 10, 1, 0, 0, 0, 0, time.UTC),
		Interval:        3 * time.Hour,
		TargetsPerRound: 2,
		Participation:   1,
		PingsPerTarget:  1,
	}
}

// Validate checks the campaign parameters.
func (c CampaignConfig) Validate() error {
	if c.Start.IsZero() || c.End.IsZero() || !c.End.After(c.Start) {
		return fmt.Errorf("atlas: invalid campaign window [%v, %v]", c.Start, c.End)
	}
	if c.Interval <= 0 {
		return fmt.Errorf("atlas: non-positive interval %v", c.Interval)
	}
	if c.TargetsPerRound <= 0 {
		return fmt.Errorf("atlas: non-positive targets per round %d", c.TargetsPerRound)
	}
	if c.Participation <= 0 || c.Participation > 1 {
		return fmt.Errorf("atlas: participation %v out of (0,1]", c.Participation)
	}
	if c.PingsPerTarget <= 0 {
		return fmt.Errorf("atlas: non-positive pings per target %d", c.PingsPerTarget)
	}
	return nil
}

// Rounds returns the number of measurement rounds in the window.
func (c CampaignConfig) Rounds() int {
	return int(c.End.Sub(c.Start) / c.Interval)
}

// Meta converts the config into dataset metadata.
func (c CampaignConfig) Meta(seed uint64, probes, regions int) results.Meta {
	return results.Meta{
		Seed:          seed,
		Start:         c.Start,
		End:           c.End,
		IntervalHours: c.Interval.Hours(),
		Probes:        probes,
		Regions:       regions,
	}
}

// RunCampaign synthesizes the campaign dataset directly from the latency
// model (the fast path: no packet machinery), streaming every sample to
// sink in deterministic order. Privileged probes are excluded, mirroring
// the paper's filtering. It returns the number of samples emitted.
//
// Observability: a span carried in ctx (obs.ContextWith) gets one child
// span per round; p.Metrics, when set, receives round progress gauges and
// per-continent sample tallies as the campaign runs.
//
// RunCampaign is the serial path; RunCampaignOpts runs the same workload
// through the parallel execution engine with identical output.
func (p *Platform) RunCampaign(ctx context.Context, cfg CampaignConfig, sink func(results.Sample) error) (uint64, error) {
	return p.RunCampaignOpts(ctx, cfg, CampaignOptions{}, sink)
}

// runSerial is the single-goroutine campaign loop.
func (p *Platform) runSerial(ctx context.Context, cfg CampaignConfig, probes []*probe.Probe, sink func(results.Sample) error) (uint64, error) {
	var emitted uint64
	rounds := cfg.Rounds()
	m := p.Metrics
	span := obs.From(ctx)
	span.SetAttr("rounds", rounds)
	span.SetAttr("probes", len(probes))
	if m != nil {
		m.CampaignRoundsTotal.Set(float64(rounds))
		m.CampaignRoundsDone.Set(0)
	}
	tally := p.newCampaignTally()
	for round := 0; round < rounds; round++ {
		if err := ctx.Err(); err != nil {
			return emitted, err
		}
		roundSpan := span.Child("round")
		roundSpan.SetAttr("round", round)
		roundSpan.SetAttr("at", cfg.RoundTime(round).Format(time.RFC3339))
		n, err := p.synthesizeRound(ctx, cfg, round, probes, tally, sink)
		emitted += n
		if err != nil {
			return emitted, err
		}
		roundSpan.SetAttr("samples", n)
		roundSpan.End()
		if m != nil {
			m.CampaignRoundsDone.Set(float64(round + 1))
		}
	}
	span.SetAttr("samples", emitted)
	return emitted, nil
}

// RoundTime returns the timestamp of one measurement round.
func (c CampaignConfig) RoundTime(round int) time.Time {
	return c.Start.Add(time.Duration(round) * c.Interval)
}

// ctxCheckEvery bounds how many samples a round synthesizes between
// context checks: at paper scale one round is ~3,300 probes × targets, so
// a per-round check alone would make cancellation (SIGINT) lag by whole
// rounds.
const ctxCheckEvery = 256

// campaignTally holds the per-continent sample counters resolved once up
// front: the sample loop is the hottest path in the system (3.2M
// iterations at paper scale), and the eager read-only array is also what
// makes the tally safe to share across engine shards.
type campaignTally struct {
	samples [geo.SouthAmerica + 1]*obs.Counter // indexed by Continent
	lost    *obs.Counter
}

// newCampaignTally resolves the counters, or returns nil without metrics.
func (p *Platform) newCampaignTally() *campaignTally {
	if p.Metrics == nil {
		return nil
	}
	t := &campaignTally{lost: p.Metrics.CampaignLost}
	for _, ct := range geo.Continents() {
		t.samples[ct] = p.Metrics.CampaignSamples.With(ct.Code())
	}
	return t
}

// localTally accumulates one round's counts on the stack so the shared
// atomic counters are touched once per round rather than once per
// sample: with eight shard workers incrementing the same few cache
// lines, per-sample atomics measurably erode worker scaling.
type localTally struct {
	samples [geo.SouthAmerica + 1]uint64
	lost    uint64
}

// flushTo folds the local counts into the shared counters.
func (l *localTally) flushTo(t *campaignTally) {
	for ct, n := range l.samples {
		if n > 0 {
			t.samples[ct].Add(n)
		}
	}
	if l.lost > 0 {
		t.lost.Add(l.lost)
	}
}

// synthesizeRound emits one round's samples for the given probe slice in
// deterministic (probe, target) order. It is the shared core of the
// serial path and the engine's shard workers: a shard is just a
// contiguous sub-slice of the public probe population, so concatenating
// shard outputs in shard order reproduces the serial stream exactly.
func (p *Platform) synthesizeRound(ctx context.Context, cfg CampaignConfig, round int, probes []*probe.Probe, tally *campaignTally, emit func(results.Sample) error) (uint64, error) {
	at := cfg.RoundTime(round)
	var emitted uint64
	var local localTally
	if tally != nil {
		defer local.flushTo(tally)
	}
	for _, pr := range probes {
		targets := p.Targets(pr)
		if len(targets) == 0 {
			continue
		}
		if cfg.Participation < 1 && !participates(pr.ID, round, cfg.Participation) {
			continue
		}
		for k := 0; k < cfg.TargetsPerRound; k++ {
			// Rotate deterministically through the target list so each
			// probe covers every region over the campaign.
			idx := (round*cfg.TargetsPerRound + k + pr.ID) % len(targets)
			r := targets[idx]
			path, err := p.Path(pr, r)
			if err != nil {
				return emitted, err
			}
			s := results.Sample{ProbeID: pr.ID, Region: r.Addr(), Time: at}
			best := 0.0
			got := false
			for rep := 0; rep < cfg.PingsPerTarget; rep++ {
				ms, lost := path.RTT(at.Add(time.Duration(rep) * time.Second))
				if lost {
					continue
				}
				if !got || ms < best {
					best, got = ms, true
				}
			}
			if got {
				s.RTTms = best
			} else {
				s.Lost = true
			}
			if err := emit(s); err != nil {
				return emitted, err
			}
			emitted++
			if emitted%ctxCheckEvery == 0 {
				if err := ctx.Err(); err != nil {
					return emitted, err
				}
			}
			if tally != nil {
				local.samples[pr.Continent]++
				if s.Lost {
					local.lost++
				}
			}
		}
	}
	return emitted, nil
}

// participates deterministically thins probe-rounds: it hashes (probe,
// round) into [0,1) and compares against the participation fraction.
func participates(probeID, round int, frac float64) bool {
	h := uint64(probeID)*0x9e3779b97f4a7c15 + uint64(round)*0xbf58476d1ce4e5b9
	h ^= h >> 29
	h *= 0x94d049bb133111eb
	h ^= h >> 32
	return float64(h>>11)/(1<<53) < frac
}
