// Package atlas is the measurement platform substituting for RIPE Atlas: a
// probe registry, credit accounting, a measurement scheduler, and an
// HTTP+JSON API with a client SDK. It drives pings either "live" over the
// virtual packet network (exercising the full echo/ping stack) or through
// the fast campaign synthesizer that generates the multi-month dataset the
// paper's analysis consumes.
package atlas

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/cloud"
	"repro/internal/geo"
	"repro/internal/netem"
	"repro/internal/probe"
)

// Platform binds the probe population, the cloud catalog, and the latency
// model together, and owns per-pair network paths.
type Platform struct {
	Population *probe.Population
	Catalog    *cloud.Catalog
	Model      *netem.Model

	// Metrics, when set before a campaign runs, receives per-round
	// progress and per-continent sample tallies from RunCampaign.
	Metrics *Metrics

	// paths caches pathKey -> *netem.Path. It is a sync.Map because the
	// campaign engine hits it from every shard worker on every sample:
	// after first-round warmup the cache is read-only, which is the
	// append-mostly access pattern sync.Map makes lock-free.
	paths sync.Map

	targets map[geo.Continent][]*cloud.Region
}

type pathKey struct {
	probeID int
	region  string
}

// NewPlatform wires the pieces together.
func NewPlatform(pop *probe.Population, cat *cloud.Catalog, model *netem.Model) (*Platform, error) {
	if pop == nil || cat == nil || model == nil {
		return nil, fmt.Errorf("atlas: nil component")
	}
	if pop.Len() == 0 {
		return nil, fmt.Errorf("atlas: empty probe population")
	}
	if cat.Len() == 0 {
		return nil, fmt.Errorf("atlas: empty region catalog")
	}
	p := &Platform{
		Population: pop,
		Catalog:    cat,
		Model:      model,
		targets:    make(map[geo.Continent][]*cloud.Region),
	}
	for _, ct := range geo.Continents() {
		p.targets[ct] = cat.TargetsFor(ct)
	}
	return p, nil
}

// Targets returns the regions a probe measures to under the paper's
// same-continent methodology.
func (p *Platform) Targets(pr *probe.Probe) []*cloud.Region {
	return p.targets[pr.Continent]
}

// Path returns the (cached) network path between a probe and a region.
// It is safe for concurrent use; racing derivations of the same key are
// deterministic (the model is immutable) and collapse to one canonical
// instance via LoadOrStore.
func (p *Platform) Path(pr *probe.Probe, r *cloud.Region) (*netem.Path, error) {
	key := pathKey{probeID: pr.ID, region: r.Addr()}
	if v, ok := p.paths.Load(key); ok {
		return v.(*netem.Path), nil
	}
	path, err := p.Model.Path(pr.Site(), netem.Target{
		ID:        r.Addr(),
		Location:  r.Location,
		Continent: p.Catalog.Continent(r),
		Private:   r.Provider.Backbone == cloud.BackbonePrivate,
	})
	if err != nil {
		return nil, err
	}
	if v, loaded := p.paths.LoadOrStore(key, path); loaded {
		return v.(*netem.Path), nil
	}
	return path, nil
}

// Link implements netsim.Linker over the platform's paths: it resolves
// probe/region pairs in either direction, samples the RTT at the send time,
// and charges each leg half the RTT. Loss applies on the forward
// (probe-to-region) leg only so the end-to-end loss rate matches the model.
func (p *Platform) Link(src, dst string, at time.Time) (time.Duration, bool, error) {
	return p.LinkSized(src, dst, 0, at)
}

// LinkSized implements netsim.SizedLinker: payload-carrying packets pay
// serialization time on the probe's access uplink in addition to the
// propagation delay. Only the probe-side (forward) leg is
// capacity-constrained; datacenter downlinks are effectively unconstrained
// at ping-scale payloads.
func (p *Platform) LinkSized(src, dst string, size int, at time.Time) (time.Duration, bool, error) {
	pr, r, forward, err := p.resolve(src, dst)
	if err != nil {
		return 0, false, fmt.Errorf("atlas: no link between %q and %q", src, dst)
	}
	path, err := p.Path(pr, r)
	if err != nil {
		return 0, false, err
	}
	ms, lost := path.RTT(at)
	delayMs := ms / 2
	if forward {
		delayMs += path.SerializationMs(size)
	} else {
		lost = false
	}
	return time.Duration(delayMs * float64(time.Millisecond)), lost, nil
}

// resolve interprets (src, dst) as probe->region or region->probe.
func (p *Platform) resolve(src, dst string) (*probe.Probe, *cloud.Region, bool, error) {
	if pr, ok := p.lookupProbe(src); ok {
		if r, ok := p.lookupRegion(dst); ok {
			return pr, r, true, nil
		}
	}
	if r, ok := p.lookupRegion(src); ok {
		if pr, ok := p.lookupProbe(dst); ok {
			return pr, r, false, nil
		}
	}
	return nil, nil, false, fmt.Errorf("atlas: unknown pair")
}

// lookupProbe resolves "probe/<id>" addresses. A service suffix
// ("probe/7/tcp-client") shares the probe's network location.
func (p *Platform) lookupProbe(addr string) (*probe.Probe, bool) {
	var id int
	if _, err := fmt.Sscanf(addr, "probe/%d", &id); err != nil {
		return nil, false
	}
	return p.Population.Lookup(id)
}

// lookupRegion resolves "Provider/region" addresses. A service suffix
// ("Amazon/eu-west-1/tcp") shares the region's network location.
func (p *Platform) lookupRegion(addr string) (*cloud.Region, bool) {
	if r, ok := p.Catalog.Lookup(addr); ok {
		return r, true
	}
	if i := strings.LastIndex(addr, "/"); i > 0 {
		if r, ok := p.Catalog.Lookup(addr[:i]); ok {
			return r, true
		}
	}
	return nil, false
}
