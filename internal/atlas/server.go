package atlas

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/geo"
	"repro/internal/httpapi"
	"repro/internal/obs"
	"repro/internal/probe"
)

// Server exposes the platform over HTTP+JSON, mirroring the parts of the
// RIPE Atlas REST API the paper's methodology uses: probe discovery with
// tag filtering, measurement creation, status polling, and result
// retrieval, guarded by credit accounting.
type Server struct {
	platform *Platform
	ledger   *Ledger
	live     *LiveService
	mux      *http.ServeMux
	metrics  *Metrics
	events   *obs.Recorder
	serving  func() any
	started  time.Time
}

// ServerOption configures a Server.
type ServerOption func(*Server)

// WithServerMetrics instruments every route with request/duration/error
// accounting and additionally serves GET /metrics (Prometheus text
// exposition of the metrics' registry).
func WithServerMetrics(m *Metrics) ServerOption {
	return func(s *Server) { s.metrics = m }
}

// WithServerEvents additionally serves GET /debug/events: a JSON dump of
// the flight recorder's retained structured-log events.
func WithServerEvents(rec *obs.Recorder) ServerOption {
	return func(s *Server) { s.events = rec }
}

// WithServerServing embeds fn's result in the status report under
// "serving" — the query-serving layer's snapshot coverage, provided as
// a closure so this package needs no dependency on the serving engine.
func WithServerServing(fn func() any) ServerOption {
	return func(s *Server) { s.serving = fn }
}

// NewServer wires the HTTP handlers.
func NewServer(p *Platform, ledger *Ledger, live *LiveService, opts ...ServerOption) (*Server, error) {
	if p == nil || ledger == nil || live == nil {
		return nil, errors.New("atlas: nil component")
	}
	s := &Server{platform: p, ledger: ledger, live: live, mux: http.NewServeMux(), started: time.Now()}
	for _, o := range opts {
		o(s)
	}
	for _, r := range []struct {
		pattern string
		route   string // metric label: one value per pattern, no IDs
		h       http.HandlerFunc
	}{
		{"GET /api/v1/probes", "probes", s.handleProbes},
		{"GET /api/v1/probes/{id}", "probe", s.handleProbe},
		{"GET /api/v1/regions", "regions", s.handleRegions},
		{"GET /api/v1/credits/{account}", "credits", s.handleCredits},
		{"POST /api/v1/measurements", "measurement_create", s.handleCreate},
		{"GET /api/v1/measurements", "measurement_list", s.handleList},
		{"GET /api/v1/measurements/{id}", "measurement_get", s.handleMeasurement},
		{"GET /api/v1/measurements/{id}/results", "measurement_results", s.handleResults},
		{"DELETE /api/v1/measurements/{id}", "measurement_stop", s.handleStop},
		{"GET /api/v1/status", "status", s.handleStatus},
	} {
		s.mux.HandleFunc(r.pattern, s.metrics.instrument(r.route, r.h))
	}
	// Uniform method handling: a wrong method on a known path answers
	// 405 with an Allow header, not the mux's bare 404. The
	// method-qualified patterns above are more specific and keep
	// winning for the methods they name.
	for _, f := range []struct {
		pattern string
		allow   []string
	}{
		{"/api/v1/probes", []string{"GET"}},
		{"/api/v1/probes/{id}", []string{"GET"}},
		{"/api/v1/regions", []string{"GET"}},
		{"/api/v1/credits/{account}", []string{"GET"}},
		{"/api/v1/measurements", []string{"GET", "POST"}},
		{"/api/v1/measurements/{id}", []string{"GET", "DELETE"}},
		{"/api/v1/measurements/{id}/results", []string{"GET"}},
		{"/api/v1/status", []string{"GET"}},
	} {
		allow := f.allow
		s.mux.HandleFunc(f.pattern, s.metrics.instrument("method_not_allowed",
			func(w http.ResponseWriter, r *http.Request) {
				httpapi.MethodNotAllowed(w, r, allow...)
			}))
	}
	if s.metrics != nil && s.metrics.Registry != nil {
		s.mux.Handle("GET /metrics", obs.MetricsHandler(s.metrics.Registry))
	}
	if s.events != nil {
		s.mux.Handle("GET /debug/events", obs.EventsHandler(s.events))
	}
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// writeJSON sends a JSON response through the shared httpapi encoding.
// An encode failure is surfaced to the request-metrics middleware
// (which counts it per route) instead of being silently discarded.
func writeJSON(w http.ResponseWriter, code int, v any) {
	if err := httpapi.WriteJSON(w, code, v); err != nil {
		if sw, ok := w.(*statusWriter); ok {
			sw.encodeErr = err
		}
	}
}

// writeError sends the platform's uniform {"error": ...} JSON shape.
func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// ProbeDTO is the wire representation of a probe.
type ProbeDTO struct {
	ID        int      `json:"id"`
	Country   string   `json:"country"`
	Continent string   `json:"continent"`
	Lat       float64  `json:"lat"`
	Lon       float64  `json:"lon"`
	Tags      []string `json:"tags"`
}

func toProbeDTO(p *probe.Probe) ProbeDTO {
	return ProbeDTO{
		ID:        p.ID,
		Country:   p.Country,
		Continent: p.Continent.Code(),
		Lat:       p.Location.Lat,
		Lon:       p.Location.Lon,
		Tags:      p.Tags,
	}
}

func (s *Server) handleProbes(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	country := q.Get("country")
	tag := q.Get("tag")
	var continent geo.Continent
	if c := q.Get("continent"); c != "" {
		ct, err := geo.ParseContinent(c)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		continent = ct
	}
	limit := 0
	if l := q.Get("limit"); l != "" {
		n, err := strconv.Atoi(l)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad limit %q", l))
			return
		}
		limit = n
	}
	var out []ProbeDTO
	for _, p := range s.platform.Population.Public() {
		if country != "" && p.Country != country {
			continue
		}
		if continent != geo.ContinentUnknown && p.Continent != continent {
			continue
		}
		if tag != "" && !p.HasTag(tag) {
			continue
		}
		out = append(out, toProbeDTO(p))
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleProbe(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad probe id"))
		return
	}
	p, ok := s.platform.Population.Lookup(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("probe %d not found", id))
		return
	}
	writeJSON(w, http.StatusOK, toProbeDTO(p))
}

// RegionDTO is the wire representation of a cloud region.
type RegionDTO struct {
	Addr     string  `json:"addr"`
	Provider string  `json:"provider"`
	City     string  `json:"city"`
	Country  string  `json:"country"`
	Lat      float64 `json:"lat"`
	Lon      float64 `json:"lon"`
}

func (s *Server) handleRegions(w http.ResponseWriter, r *http.Request) {
	var out []RegionDTO
	for _, reg := range s.platform.Catalog.All() {
		out = append(out, RegionDTO{
			Addr:     reg.Addr(),
			Provider: reg.Provider.Name,
			City:     reg.City,
			Country:  reg.Country,
			Lat:      reg.Location.Lat,
			Lon:      reg.Location.Lon,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleCredits(w http.ResponseWriter, r *http.Request) {
	account := r.PathValue("account")
	writeJSON(w, http.StatusOK, map[string]any{
		"account": account,
		"balance": s.ledger.Balance(account),
		"spent":   s.ledger.Spent(account),
	})
}

// SpecDTO is the wire form of a MeasurementSpec (durations in ms).
type SpecDTO struct {
	Account    string `json:"account"`
	Target     string `json:"target"`
	ProbeIDs   []int  `json:"probe_ids"`
	Count      int    `json:"count"`
	IntervalMs int64  `json:"interval_ms"`
	TimeoutMs  int64  `json:"timeout_ms"`
}

// Spec converts the DTO to the internal spec.
func (d SpecDTO) Spec() MeasurementSpec {
	return MeasurementSpec{
		Target:   d.Target,
		ProbeIDs: d.ProbeIDs,
		Count:    d.Count,
		Interval: time.Duration(d.IntervalMs) * time.Millisecond,
		Timeout:  time.Duration(d.TimeoutMs) * time.Millisecond,
	}
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var dto SpecDTO
	if err := json.NewDecoder(r.Body).Decode(&dto); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad body: %w", err))
		return
	}
	if dto.Account == "" {
		writeError(w, http.StatusBadRequest, errors.New("missing account"))
		return
	}
	id, err := s.live.Create(dto.Account, dto.Spec())
	if err != nil {
		code := http.StatusBadRequest
		if errors.Is(err, ErrInsufficientCredits) {
			code = http.StatusPaymentRequired
		}
		writeError(w, code, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]int{"id": id})
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	account := r.URL.Query().Get("account")
	writeJSON(w, http.StatusOK, s.live.List(account))
}

func (s *Server) measurementFromPath(w http.ResponseWriter, r *http.Request) (Measurement, bool) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad measurement id"))
		return Measurement{}, false
	}
	m, ok := s.live.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("measurement %d not found", id))
		return Measurement{}, false
	}
	return m, true
}

func (s *Server) handleMeasurement(w http.ResponseWriter, r *http.Request) {
	m, ok := s.measurementFromPath(w, r)
	if !ok {
		return
	}
	m.Results = nil // status endpoint omits the payload
	writeJSON(w, http.StatusOK, m)
}

func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	m, ok := s.measurementFromPath(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, m.Results)
}

func (s *Server) handleStop(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad measurement id"))
		return
	}
	if err := s.live.Stop(id); err != nil {
		writeError(w, http.StatusConflict, err)
		return
	}
	m, _ := s.live.Get(id)
	m.Results = nil
	writeJSON(w, http.StatusOK, m)
}

// CampaignStatusDTO is the campaign-progress slice of the status report.
type CampaignStatusDTO struct {
	RoundsDone         float64           `json:"rounds_done"`
	RoundsTotal        float64           `json:"rounds_total"`
	Samples            uint64            `json:"samples"`
	SamplesLost        uint64            `json:"samples_lost"`
	SamplesByContinent map[string]uint64 `json:"samples_by_continent,omitempty"`
}

// StatusDTO is the platform self-observability snapshot served at
// GET /api/v1/status, in the spirit of RIPE Atlas's status APIs. Build
// mirrors the run manifest's identity fields, so a live server and an
// archived run are traceable the same way; Serving carries the query
// layer's snapshot coverage when one is embedded.
type StatusDTO struct {
	UptimeSeconds    float64           `json:"uptime_seconds"`
	Build            obs.BuildInfo     `json:"build"`
	Probes           int               `json:"probes"`
	Regions          int               `json:"regions"`
	Measurements     map[Status]int    `json:"measurements"`
	ResultsCollected uint64            `json:"results_collected"`
	ProbeTimeouts    uint64            `json:"probe_timeouts"`
	Campaign         CampaignStatusDTO `json:"campaign"`
	Serving          any               `json:"serving,omitempty"`
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	st := StatusDTO{
		UptimeSeconds: time.Since(s.started).Seconds(),
		Build:         obs.CurrentBuild(),
		Probes:        s.platform.Population.Len(),
		Regions:       s.platform.Catalog.Len(),
		Measurements:  make(map[Status]int),
	}
	if s.serving != nil {
		st.Serving = s.serving()
	}
	for _, m := range s.live.List("") {
		st.Measurements[m.Status]++
	}
	if m := s.metrics; m != nil {
		st.ResultsCollected = m.ResultsCollected.Value()
		st.ProbeTimeouts = m.ProbeTimeouts.Value()
		st.Campaign = CampaignStatusDTO{
			RoundsDone:  m.CampaignRoundsDone.Value(),
			RoundsTotal: m.CampaignRoundsTotal.Value(),
			Samples:     m.CampaignSamples.Sum(),
			SamplesLost: m.CampaignLost.Value(),
		}
		m.CampaignSamples.Walk(func(labels []string, v uint64) {
			if st.Campaign.SamplesByContinent == nil {
				st.Campaign.SamplesByContinent = make(map[string]uint64)
			}
			st.Campaign.SamplesByContinent[labels[0]] = v
		})
	}
	writeJSON(w, http.StatusOK, st)
}
