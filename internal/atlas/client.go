package atlas

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"repro/internal/results"
)

// Client is the SDK for the platform's HTTP API.
type Client struct {
	base    string
	account string
	hc      *http.Client
}

// NewClient targets a server base URL (e.g. "http://127.0.0.1:8080") on
// behalf of an account.
func NewClient(base, account string, hc *http.Client) (*Client, error) {
	if base == "" {
		return nil, fmt.Errorf("atlas: empty base URL")
	}
	if account == "" {
		return nil, fmt.Errorf("atlas: empty account")
	}
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Client{base: base, account: account, hc: hc}, nil
}

func (c *Client) get(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return decodeResponse(resp, out)
}

func decodeResponse(resp *http.Response, out any) error {
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode >= 400 {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(body, &e) == nil && e.Error != "" {
			return fmt.Errorf("atlas: %s: %s", resp.Status, e.Error)
		}
		return fmt.Errorf("atlas: %s", resp.Status)
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(body, out)
}

// ProbeFilter narrows probe discovery.
type ProbeFilter struct {
	Country   string // ISO2
	Continent string // two-letter code
	Tag       string // user tag, e.g. "wifi"
	Limit     int
}

// Probes lists public probes matching the filter.
func (c *Client) Probes(ctx context.Context, f ProbeFilter) ([]ProbeDTO, error) {
	q := url.Values{}
	if f.Country != "" {
		q.Set("country", f.Country)
	}
	if f.Continent != "" {
		q.Set("continent", f.Continent)
	}
	if f.Tag != "" {
		q.Set("tag", f.Tag)
	}
	if f.Limit > 0 {
		q.Set("limit", strconv.Itoa(f.Limit))
	}
	path := "/api/v1/probes"
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	var out []ProbeDTO
	err := c.get(ctx, path, &out)
	return out, err
}

// Probe fetches one probe by ID.
func (c *Client) Probe(ctx context.Context, id int) (ProbeDTO, error) {
	var out ProbeDTO
	err := c.get(ctx, fmt.Sprintf("/api/v1/probes/%d", id), &out)
	return out, err
}

// Regions lists the measurement targets.
func (c *Client) Regions(ctx context.Context) ([]RegionDTO, error) {
	var out []RegionDTO
	err := c.get(ctx, "/api/v1/regions", &out)
	return out, err
}

// Credits returns the account's balance and lifetime spend.
func (c *Client) Credits(ctx context.Context) (balance, spent int64, err error) {
	var out struct {
		Balance int64 `json:"balance"`
		Spent   int64 `json:"spent"`
	}
	if err := c.get(ctx, "/api/v1/credits/"+url.PathEscape(c.account), &out); err != nil {
		return 0, 0, err
	}
	return out.Balance, out.Spent, nil
}

// CreateMeasurement submits a live measurement and returns its ID.
func (c *Client) CreateMeasurement(ctx context.Context, target string, probeIDs []int, count int, interval, timeout time.Duration) (int, error) {
	dto := SpecDTO{
		Account:    c.account,
		Target:     target,
		ProbeIDs:   probeIDs,
		Count:      count,
		IntervalMs: int64(interval / time.Millisecond),
		TimeoutMs:  int64(timeout / time.Millisecond),
	}
	body, err := json.Marshal(dto)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/api/v1/measurements", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	var out struct {
		ID int `json:"id"`
	}
	if err := decodeResponse(resp, &out); err != nil {
		return 0, err
	}
	return out.ID, nil
}

// Measurement fetches a measurement's status (without results).
func (c *Client) Measurement(ctx context.Context, id int) (Measurement, error) {
	var out Measurement
	err := c.get(ctx, fmt.Sprintf("/api/v1/measurements/%d", id), &out)
	return out, err
}

// Results fetches a measurement's collected samples.
func (c *Client) Results(ctx context.Context, id int) ([]results.Sample, error) {
	var out []results.Sample
	err := c.get(ctx, fmt.Sprintf("/api/v1/measurements/%d/results", id), &out)
	return out, err
}

// Measurements lists this account's measurements (without results).
func (c *Client) Measurements(ctx context.Context) ([]Measurement, error) {
	var out []Measurement
	err := c.get(ctx, "/api/v1/measurements?account="+url.QueryEscape(c.account), &out)
	return out, err
}

// StopMeasurement cancels a running measurement; collected results stay
// available and unused credits are refunded.
func (c *Client) StopMeasurement(ctx context.Context, id int) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete,
		fmt.Sprintf("%s/api/v1/measurements/%d", c.base, id), nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return decodeResponse(resp, nil)
}

// WaitDone polls until the measurement completes, then returns its results.
func (c *Client) WaitDone(ctx context.Context, id int) ([]results.Sample, error) {
	for {
		m, err := c.Measurement(ctx, id)
		if err != nil {
			return nil, err
		}
		switch m.Status {
		case StatusDone:
			return c.Results(ctx, id)
		case StatusFailed:
			return nil, fmt.Errorf("atlas: measurement %d failed: %s", id, m.Error)
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(5 * time.Millisecond):
		}
	}
}
