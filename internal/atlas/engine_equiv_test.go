package atlas

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/results"
)

// equivCampaign is TestCampaign shortened to keep the matrix fast while
// still spanning many rounds.
func equivCampaign() CampaignConfig {
	cfg := TestCampaign()
	cfg.End = cfg.Start.Add(10 * 24 * time.Hour) // 80 rounds
	return cfg
}

// campaignBytes renders a campaign run to its on-disk JSONL byte stream.
func campaignBytes(t *testing.T, p *Platform, cfg CampaignConfig, opts CampaignOptions) ([]byte, uint64) {
	t.Helper()
	var buf bytes.Buffer
	w := results.NewWriter(&buf)
	n, err := p.RunCampaignOpts(context.Background(), cfg, opts, w.Write)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), n
}

// TestEngineByteIdenticalToSerial is the core determinism guarantee: the
// engine's merged dataset is byte-identical to the serial path for every
// worker count, including counts that do not divide the probe population.
func TestEngineByteIdenticalToSerial(t *testing.T) {
	p := smallPlatform(t)
	cfg := equivCampaign()

	var serial bytes.Buffer
	sw := results.NewWriter(&serial)
	want, err := p.RunCampaign(context.Background(), cfg, sw.Write)
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.Flush(); err != nil {
		t.Fatal(err)
	}
	if want == 0 {
		t.Fatal("serial campaign emitted nothing")
	}

	for _, workers := range []int{1, 2, 4, 7} {
		got, n := campaignBytes(t, p, cfg, CampaignOptions{Workers: workers})
		if n != want {
			t.Errorf("workers=%d emitted %d samples, serial emitted %d", workers, n, want)
		}
		if !bytes.Equal(got, serial.Bytes()) {
			t.Errorf("workers=%d dataset diverges from serial output", workers)
		}
	}
}

// TestEngineKillAndResume interrupts a checkpointing run mid-flight and
// verifies the resumed dataset matches an uninterrupted run byte for
// byte.
func TestEngineKillAndResume(t *testing.T) {
	p := smallPlatform(t)
	cfg := equivCampaign()
	fp := cfg.Fingerprint(7, p.Population.Len())

	// Reference: one uninterrupted engine run.
	reference, total := campaignBytes(t, p, cfg, CampaignOptions{Workers: 4})

	dir := t.TempDir()
	ckPath := filepath.Join(dir, "checkpoint.json")
	meta := cfg.Meta(7, p.Population.Len(), p.Catalog.Len())
	_, sink, err := results.Create(dir, meta, results.FormatJSONL)
	if err != nil {
		t.Fatal(err)
	}
	em := engine.NewMetrics(obs.NewRegistry())

	// Kill the run partway: the sink dies permanently after ~62% of the
	// samples, well past several CheckpointEvery=8 checkpoints.
	kill := errors.New("simulated kill")
	limit := total * 5 / 8
	var seen uint64
	_, err = p.RunCampaignOpts(context.Background(), cfg, CampaignOptions{
		Workers:         4,
		CheckpointPath:  ckPath,
		CheckpointEvery: 8,
		Commit:          sink.Commit,
		Fingerprint:     fp,
		EngineMetrics:   em,
	}, func(s results.Sample) error {
		if seen == limit {
			return kill
		}
		seen++
		return sink.Write(s)
	})
	if !errors.Is(err, kill) {
		t.Fatalf("interrupted run err = %v, want simulated kill", err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if em.CheckpointWrites.Value() == 0 {
		t.Fatal("no checkpoints written before the kill")
	}

	cp, err := engine.LoadCheckpoint(ckPath)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Fingerprint != fp {
		t.Fatalf("checkpoint fingerprint %q, want %q", cp.Fingerprint, fp)
	}
	if cp.Round < 7 || cp.Samples == 0 || cp.SinkOffset == 0 {
		t.Fatalf("implausible checkpoint %+v", cp)
	}

	// Resume with a different worker count: truncate the sink to the
	// durable offset and continue from the watermark.
	reopened, err := results.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	sink2, err := reopened.Resume(cp.SinkOffset)
	if err != nil {
		t.Fatal(err)
	}
	n, err := p.RunCampaignOpts(context.Background(), cfg, CampaignOptions{
		Workers:         3,
		CheckpointPath:  ckPath,
		CheckpointEvery: 8,
		Commit:          sink2.Commit,
		Fingerprint:     fp,
		StartRound:      cp.Round + 1,
		StartSamples:    cp.Samples,
	}, sink2.Write)
	if err != nil {
		t.Fatal(err)
	}
	if err := sink2.Close(); err != nil {
		t.Fatal(err)
	}
	if n != total {
		t.Fatalf("resumed run total = %d, want %d", n, total)
	}

	got, err := os.ReadFile(filepath.Join(dir, "samples.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, reference) {
		t.Fatal("resumed dataset diverges from uninterrupted run")
	}
}

// TestEngineKillAndResumeBinary mirrors the kill-and-resume check on a
// binary (colf) store. Block boundaries depend on where checkpoints
// flushed, so the file bytes legitimately differ from an uninterrupted
// run — the decoded sample stream must not.
func TestEngineKillAndResumeBinary(t *testing.T) {
	p := smallPlatform(t)
	cfg := equivCampaign()
	fp := cfg.Fingerprint(7, p.Population.Len())

	// Reference: the decoded sample stream of one uninterrupted run.
	var reference []results.Sample
	total, err := p.RunCampaignOpts(context.Background(), cfg, CampaignOptions{Workers: 4},
		func(s results.Sample) error { reference = append(reference, s); return nil })
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	ckPath := filepath.Join(dir, "checkpoint.json")
	meta := cfg.Meta(7, p.Population.Len(), p.Catalog.Len())
	_, sink, err := results.Create(dir, meta, results.FormatBinary)
	if err != nil {
		t.Fatal(err)
	}

	kill := errors.New("simulated kill")
	limit := total * 5 / 8
	var seen uint64
	_, err = p.RunCampaignOpts(context.Background(), cfg, CampaignOptions{
		Workers:         4,
		CheckpointPath:  ckPath,
		CheckpointEvery: 8,
		Commit:          sink.Commit,
		Fingerprint:     fp,
	}, func(s results.Sample) error {
		if seen == limit {
			return kill
		}
		seen++
		return sink.Write(s)
	})
	if !errors.Is(err, kill) {
		t.Fatalf("interrupted run err = %v, want simulated kill", err)
	}
	// A real kill never runs Close: the file ends in flushed blocks with
	// no trailing index, plus whatever the last checkpoint didn't cover.
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}

	cp, err := engine.LoadCheckpoint(ckPath)
	if err != nil {
		t.Fatal(err)
	}
	reopened, err := results.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if reopened.Format() != results.FormatBinary {
		t.Fatalf("reopened store format %v", reopened.Format())
	}
	sink2, err := reopened.Resume(cp.SinkOffset)
	if err != nil {
		t.Fatal(err)
	}
	n, err := p.RunCampaignOpts(context.Background(), cfg, CampaignOptions{
		Workers:         3,
		CheckpointPath:  ckPath,
		CheckpointEvery: 8,
		Commit:          sink2.Commit,
		Fingerprint:     fp,
		StartRound:      cp.Round + 1,
		StartSamples:    cp.Samples,
	}, sink2.Write)
	if err != nil {
		t.Fatal(err)
	}
	if err := sink2.Close(); err != nil {
		t.Fatal(err)
	}
	if n != total {
		t.Fatalf("resumed run total = %d, want %d", n, total)
	}

	var got []results.Sample
	if err := reopened.ForEach(func(s results.Sample) error { got = append(got, s); return nil }); err != nil {
		t.Fatal(err)
	}
	if uint64(len(got)) != total {
		t.Fatalf("resumed store holds %d samples, want %d", len(got), total)
	}
	for i := range got {
		a, b := got[i], reference[i]
		if a.ProbeID != b.ProbeID || a.Region != b.Region || !a.Time.Equal(b.Time) ||
			a.RTTms != b.RTTms || a.Lost != b.Lost {
			t.Fatalf("sample %d diverges after resume: %+v vs %+v", i, a, b)
		}
	}
}

// TestRunCampaignCancelMidRound asserts the satellite promptness fix: a
// context cancelled in the middle of a round stops the synthesizer within
// ~256 samples instead of at the next round boundary.
func TestRunCampaignCancelMidRound(t *testing.T) {
	p := smallPlatform(t)
	cfg := TestCampaign() // one round is ~400 samples on smallPlatform

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var n uint64
	emitted, err := p.RunCampaign(ctx, cfg, func(results.Sample) error {
		n++
		if n == 100 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if emitted > 100+ctxCheckEvery {
		t.Errorf("cancellation lagged: %d samples emitted after cancel at 100", emitted)
	}
}

// TestEngineCampaignHonorsContext mirrors the serial cancellation test on
// the engine path.
func TestEngineCampaignHonorsContext(t *testing.T) {
	p := smallPlatform(t)
	ctx, cancel := context.WithCancel(context.Background())
	var n uint64
	_, err := p.RunCampaignOpts(ctx, TestCampaign(), CampaignOptions{Workers: 4}, func(results.Sample) error {
		n++
		if n == 500 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestShardProbesPartition checks the sharder covers the population
// exactly once, in order, for awkward worker counts.
func TestShardProbesPartition(t *testing.T) {
	p := smallPlatform(t)
	probes := p.Population.Public()
	for _, n := range []int{1, 2, 3, 7, len(probes)} {
		shards := shardProbes(probes, n)
		if len(shards) != n {
			t.Fatalf("n=%d: %d shards", n, len(shards))
		}
		i := 0
		for _, sh := range shards {
			for _, pr := range sh {
				if pr != probes[i] {
					t.Fatalf("n=%d: shard order diverges at %d", n, i)
				}
				i++
			}
		}
		if i != len(probes) {
			t.Fatalf("n=%d: shards cover %d probes, want %d", n, i, len(probes))
		}
	}
}

// TestCampaignFingerprint pins the fingerprint's sensitivity: any
// config, seed, or census change must produce a different value, while
// the worker count must not be part of it at all.
func TestCampaignFingerprint(t *testing.T) {
	cfg := TestCampaign()
	base := cfg.Fingerprint(1, 200)
	if base != cfg.Fingerprint(1, 200) {
		t.Fatal("fingerprint not stable")
	}
	if base == cfg.Fingerprint(2, 200) {
		t.Error("seed change not reflected")
	}
	if base == cfg.Fingerprint(1, 201) {
		t.Error("census change not reflected")
	}
	mod := cfg
	mod.Interval = 6 * time.Hour
	if base == mod.Fingerprint(1, 200) {
		t.Error("interval change not reflected")
	}
}
