package atlas

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// apiFixture spins up the full platform + HTTP server + client stack.
func apiFixture(t *testing.T) (*Platform, *Ledger, *Client) {
	t.Helper()
	p := smallPlatform(t)
	ledger := NewLedger()
	if err := ledger.Grant("alice", 10000); err != nil {
		t.Fatal(err)
	}
	live, err := NewLiveService(p, ledger, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(live.Close)
	srv, err := NewServer(p, ledger, live)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	c, err := NewClient(ts.URL, "alice", ts.Client())
	if err != nil {
		t.Fatal(err)
	}
	return p, ledger, c
}

func TestAPIProbeDiscovery(t *testing.T) {
	p, _, c := apiFixture(t)
	ctx := context.Background()

	all, err := c.Probes(ctx, ProbeFilter{})
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(p.Population.Public()) {
		t.Errorf("listed %d probes, platform has %d public", len(all), len(p.Population.Public()))
	}

	// Country filter.
	de, err := c.Probes(ctx, ProbeFilter{Country: "DE"})
	if err != nil {
		t.Fatal(err)
	}
	for _, pr := range de {
		if pr.Country != "DE" {
			t.Errorf("country filter leaked %s", pr.Country)
		}
	}
	if len(de) == 0 {
		t.Error("no German probes")
	}

	// Continent + limit.
	eu, err := c.Probes(ctx, ProbeFilter{Continent: "EU", Limit: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(eu) != 5 {
		t.Errorf("limit ignored: %d", len(eu))
	}
	for _, pr := range eu {
		if pr.Continent != "EU" {
			t.Errorf("continent filter leaked %s", pr.Continent)
		}
	}

	// Tag filter mirrors the Figure-7 methodology.
	wifi, err := c.Probes(ctx, ProbeFilter{Tag: "wifi"})
	if err != nil {
		t.Fatal(err)
	}
	for _, pr := range wifi {
		found := false
		for _, tag := range pr.Tags {
			if tag == "wifi" {
				found = true
			}
		}
		if !found {
			t.Errorf("probe %d lacks wifi tag: %v", pr.ID, pr.Tags)
		}
	}

	// Single probe fetch and not-found.
	if len(all) > 0 {
		got, err := c.Probe(ctx, all[0].ID)
		if err != nil || got.ID != all[0].ID {
			t.Errorf("Probe(%d) = %+v, %v", all[0].ID, got, err)
		}
	}
	if _, err := c.Probe(ctx, 999999); err == nil {
		t.Error("missing probe fetched")
	}
}

func TestAPIRegions(t *testing.T) {
	p, _, c := apiFixture(t)
	regions, err := c.Regions(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(regions) != p.Catalog.Len() {
		t.Errorf("listed %d regions, want %d", len(regions), p.Catalog.Len())
	}
	seen := map[string]bool{}
	for _, r := range regions {
		if r.Addr == "" || r.Provider == "" || r.Country == "" {
			t.Errorf("incomplete region DTO %+v", r)
		}
		seen[r.Provider] = true
	}
	if len(seen) != 7 {
		t.Errorf("%d providers via API, want 7", len(seen))
	}
}

func TestAPIMeasurementLifecycle(t *testing.T) {
	p, ledger, c := apiFixture(t)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	pr := p.Population.Public()[0]
	target := p.Targets(pr)[0].Addr()
	id, err := c.CreateMeasurement(ctx, target, []int{pr.ID}, 2, 10*time.Millisecond, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	samples, err := c.WaitDone(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 2 {
		t.Fatalf("got %d samples", len(samples))
	}
	for _, s := range samples {
		if s.ProbeID != pr.ID || s.Region != target {
			t.Errorf("sample misattributed: %+v", s)
		}
	}
	balance, spent, err := c.Credits(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if spent != 2 || balance != ledger.Balance("alice") {
		t.Errorf("credits: balance=%d spent=%d", balance, spent)
	}
}

func TestAPIErrors(t *testing.T) {
	p, _, c := apiFixture(t)
	ctx := context.Background()

	// Bad measurement spec -> 400 with error payload.
	if _, err := c.CreateMeasurement(ctx, "Nope/x", []int{1}, 1, 0, time.Second); err == nil {
		t.Error("bad target accepted")
	}
	// Unknown measurement.
	if _, err := c.Measurement(ctx, 99999); err == nil {
		t.Error("missing measurement fetched")
	}
	if _, err := c.Results(ctx, 99999); err == nil {
		t.Error("missing results fetched")
	}
	// Broke account -> 402.
	broke, err := NewClient(c.base, "broke", c.hc)
	if err != nil {
		t.Fatal(err)
	}
	pr := p.Population.Public()[0]
	target := p.Targets(pr)[0].Addr()
	if _, err := broke.CreateMeasurement(ctx, target, []int{pr.ID}, 1, 0, time.Second); err == nil {
		t.Error("insufficient credits accepted")
	}
}

func TestAPIBadRequests(t *testing.T) {
	p := smallPlatform(t)
	ledger := NewLedger()
	live, err := NewLiveService(p, ledger, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(live.Close)
	srv, err := NewServer(p, ledger, live)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	for _, tc := range []struct {
		path string
		want int
	}{
		{"/api/v1/probes?limit=abc", http.StatusBadRequest},
		{"/api/v1/probes?continent=Atlantis", http.StatusBadRequest},
		{"/api/v1/probes/notanumber", http.StatusBadRequest},
		{"/api/v1/measurements/notanumber", http.StatusBadRequest},
		{"/api/v1/nosuch", http.StatusNotFound},
	} {
		resp, err := http.Get(ts.URL + tc.path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("GET %s = %d, want %d", tc.path, resp.StatusCode, tc.want)
		}
	}

	// Malformed POST body.
	resp, err := http.Post(ts.URL+"/api/v1/measurements", "application/json",
		nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty POST = %d", resp.StatusCode)
	}
}

func TestClientValidation(t *testing.T) {
	if _, err := NewClient("", "a", nil); err == nil {
		t.Error("empty base accepted")
	}
	if _, err := NewClient("http://x", "", nil); err == nil {
		t.Error("empty account accepted")
	}
	if _, err := NewClient("http://x", "a", nil); err != nil {
		t.Errorf("nil http client rejected: %v", err)
	}
}

func TestStopMeasurement(t *testing.T) {
	p, ledger, c := apiFixture(t)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	pr := p.Population.Public()[0]
	target := p.Targets(pr)[0].Addr()
	// A long measurement: 50 pings spaced 100ms apart (scaled) would take
	// far longer than the test; stop it early.
	id, err := c.CreateMeasurement(ctx, target, []int{pr.ID}, 50, 200*time.Millisecond, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	spentBefore := ledger.Spent("alice")
	if spentBefore < 50 {
		t.Fatalf("spent = %d, want >= 50", spentBefore)
	}
	time.Sleep(20 * time.Millisecond) // let a few rounds land
	if err := c.StopMeasurement(ctx, id); err != nil {
		t.Fatal(err)
	}
	m, err := c.Measurement(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if m.Status != StatusStopped {
		t.Errorf("status = %s", m.Status)
	}
	// The unused charge was refunded: net spend equals collected results.
	samples, err := c.Results(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) >= 50 {
		t.Errorf("measurement was not stopped early: %d samples", len(samples))
	}
	wantSpend := int64(len(samples)) * CostPerPing
	if got := ledger.Spent("alice"); got != wantSpend {
		t.Errorf("net spend = %d, want %d (for %d collected samples)", got, wantSpend, len(samples))
	}
	// Stopping again conflicts.
	if err := c.StopMeasurement(ctx, id); err == nil {
		t.Error("double stop accepted")
	}
	// Stopping a missing measurement conflicts.
	if err := c.StopMeasurement(ctx, 99999); err == nil {
		t.Error("stop of unknown measurement accepted")
	}
}

func TestListMeasurements(t *testing.T) {
	p, _, c := apiFixture(t)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Nothing yet.
	ms, err := c.Measurements(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 0 {
		t.Fatalf("fresh account has %d measurements", len(ms))
	}
	pr := p.Population.Public()[0]
	target := p.Targets(pr)[0].Addr()
	id1, err := c.CreateMeasurement(ctx, target, []int{pr.ID}, 1, 0, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	id2, err := c.CreateMeasurement(ctx, target, []int{pr.ID}, 1, 0, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	ms, err = c.Measurements(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 || ms[0].ID != id1 || ms[1].ID != id2 {
		t.Fatalf("listed %+v", ms)
	}
	for _, m := range ms {
		if m.Results != nil {
			t.Error("listing leaked results")
		}
		if m.Account != "alice" {
			t.Errorf("account filter leaked %q", m.Account)
		}
	}
	// Another account sees nothing.
	other, err := NewClient(c.base, "other", c.hc)
	if err != nil {
		t.Fatal(err)
	}
	ms, err = other.Measurements(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 0 {
		t.Errorf("other account sees %d measurements", len(ms))
	}
}
