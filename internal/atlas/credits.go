package atlas

import (
	"errors"
	"fmt"
	"sync"
)

// Credit costs, mirroring RIPE Atlas pricing where a ping result costs a
// fixed number of credits.
const (
	// CostPerPing is charged for each requested ping result.
	CostPerPing = 1
)

// ErrInsufficientCredits is returned when an account cannot cover a
// measurement. The paper acknowledges Atlas raising their quota limits; the
// Ledger models exactly that constraint.
var ErrInsufficientCredits = errors.New("atlas: insufficient credits")

// Ledger tracks measurement credits for API users.
type Ledger struct {
	mu       sync.Mutex
	balance  map[string]int64
	spent    map[string]int64
	earnedBy map[string]int64
	metrics  *Metrics
}

// Instrument attaches telemetry: grants, charges, and refunds increment
// the platform credit counters from then on.
func (l *Ledger) Instrument(m *Metrics) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.metrics = m
}

// NewLedger creates an empty ledger.
func NewLedger() *Ledger {
	return &Ledger{
		balance:  make(map[string]int64),
		spent:    make(map[string]int64),
		earnedBy: make(map[string]int64),
	}
}

// Grant adds credits to an account (hosting a probe earns credits on the
// real platform; operators can also raise quotas).
func (l *Ledger) Grant(account string, credits int64) error {
	if account == "" {
		return errors.New("atlas: empty account")
	}
	if credits <= 0 {
		return fmt.Errorf("atlas: non-positive grant %d", credits)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.balance[account] += credits
	l.earnedBy[account] += credits
	if l.metrics != nil {
		l.metrics.CreditsGranted.Add(uint64(credits))
	}
	return nil
}

// Charge deducts credits, failing atomically if the balance is too low.
func (l *Ledger) Charge(account string, credits int64) error {
	if credits < 0 {
		return fmt.Errorf("atlas: negative charge %d", credits)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.balance[account] < credits {
		return fmt.Errorf("%w: account %q has %d, needs %d",
			ErrInsufficientCredits, account, l.balance[account], credits)
	}
	l.balance[account] -= credits
	l.spent[account] += credits
	if l.metrics != nil {
		l.metrics.CreditsSpent.Add(uint64(credits))
	}
	return nil
}

// Refund returns credits from a failed or truncated measurement.
func (l *Ledger) Refund(account string, credits int64) error {
	if credits < 0 {
		return fmt.Errorf("atlas: negative refund %d", credits)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.spent[account] < credits {
		return fmt.Errorf("atlas: refund %d exceeds spend %d", credits, l.spent[account])
	}
	l.balance[account] += credits
	l.spent[account] -= credits
	if l.metrics != nil {
		l.metrics.CreditsRefunded.Add(uint64(credits))
	}
	return nil
}

// Balance returns the current balance.
func (l *Ledger) Balance(account string) int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.balance[account]
}

// Spent returns the lifetime spend (net of refunds).
func (l *Ledger) Spent(account string) int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.spent[account]
}
