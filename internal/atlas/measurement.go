package atlas

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/netsim"
	"repro/internal/ping"
	"repro/internal/results"
)

// MeasurementSpec is a user request for a live ping measurement, shaped
// like the RIPE Atlas one-off/interval measurement API.
type MeasurementSpec struct {
	Target   string        `json:"target"`    // region address, e.g. "Amazon/eu-north-1"
	ProbeIDs []int         `json:"probe_ids"` // participating probes
	Count    int           `json:"count"`     // pings per probe
	Interval time.Duration `json:"interval"`  // spacing between pings
	Timeout  time.Duration `json:"timeout"`   // per-ping deadline
}

// Validate checks the spec against the platform.
func (s MeasurementSpec) Validate(p *Platform) error {
	if _, ok := p.Catalog.Lookup(s.Target); !ok {
		return fmt.Errorf("atlas: unknown target %q", s.Target)
	}
	if len(s.ProbeIDs) == 0 {
		return errors.New("atlas: no probes selected")
	}
	for _, id := range s.ProbeIDs {
		pr, ok := p.Population.Lookup(id)
		if !ok {
			return fmt.Errorf("atlas: unknown probe %d", id)
		}
		if pr.Privileged() {
			return fmt.Errorf("atlas: probe %d is in a privileged location", id)
		}
	}
	if s.Count <= 0 {
		return fmt.Errorf("atlas: non-positive count %d", s.Count)
	}
	if s.Count > 100 {
		return fmt.Errorf("atlas: count %d exceeds per-measurement cap 100", s.Count)
	}
	if s.Interval < 0 {
		return fmt.Errorf("atlas: negative interval")
	}
	if s.Timeout <= 0 {
		return fmt.Errorf("atlas: non-positive timeout")
	}
	return nil
}

// Cost returns the credit price of the measurement.
func (s MeasurementSpec) Cost() int64 {
	return int64(s.Count) * int64(len(s.ProbeIDs)) * CostPerPing
}

// Status of a measurement.
type Status string

// Measurement lifecycle states.
const (
	StatusRunning Status = "running"
	StatusDone    Status = "done"
	StatusFailed  Status = "failed"
	StatusStopped Status = "stopped" // cancelled by the user; unused pings refunded
)

// Measurement is a live measurement and its collected results.
type Measurement struct {
	ID      int              `json:"id"`
	Account string           `json:"account"`
	Spec    MeasurementSpec  `json:"spec"`
	Status  Status           `json:"status"`
	Error   string           `json:"error,omitempty"`
	Results []results.Sample `json:"results,omitempty"`

	cancel context.CancelFunc `json:"-"`
}

// LiveService runs measurements over the virtual packet network, so a
// "ping" traverses the full echo/pinger/responder stack with netem delays.
type LiveService struct {
	platform  *Platform
	ledger    *Ledger
	net       *netsim.Network
	timeScale float64
	metrics   *Metrics

	mu      sync.Mutex
	nextID  int
	byID    map[int]*Measurement
	pingers map[int]*ping.Pinger
	wg      sync.WaitGroup
	closed  bool
}

// LiveOption configures a LiveService.
type LiveOption func(*LiveService)

// WithLiveMetrics instruments the service: measurement lifecycle and
// result counters on the service itself, packet counters on the virtual
// network, and echo/RTT instruments on every probe pinger.
func WithLiveMetrics(m *Metrics) LiveOption {
	return func(s *LiveService) { s.metrics = m }
}

// NewLiveService builds the virtual network, attaches a responder in every
// cloud region, and is then ready to accept measurements. timeScale
// compresses simulated delays (0.01 runs a 100 ms ping in 1 ms wall time);
// reported RTTs are scaled back to full scale.
func NewLiveService(p *Platform, ledger *Ledger, timeScale float64, opts ...LiveOption) (*LiveService, error) {
	if p == nil || ledger == nil {
		return nil, errors.New("atlas: nil component")
	}
	if timeScale <= 0 || timeScale > 1 {
		return nil, fmt.Errorf("atlas: time scale %v out of (0,1]", timeScale)
	}
	s := &LiveService{
		platform:  p,
		ledger:    ledger,
		timeScale: timeScale,
		byID:      make(map[int]*Measurement),
		pingers:   make(map[int]*ping.Pinger),
	}
	for _, o := range opts {
		o(s)
	}
	netOpts := []netsim.Option{netsim.WithTimeScale(timeScale)}
	if s.metrics != nil && s.metrics.Net != nil {
		netOpts = append(netOpts, netsim.WithMetrics(s.metrics.Net))
	}
	n, err := netsim.NewNetwork(p, netOpts...)
	if err != nil {
		return nil, err
	}
	s.net = n
	for _, r := range p.Catalog.All() {
		ep, err := n.Attach(r.Addr())
		if err != nil {
			n.Close()
			return nil, err
		}
		if _, err := ping.NewResponder(ep); err != nil {
			n.Close()
			return nil, err
		}
	}
	return s, nil
}

// pinger returns (attaching lazily) the shared pinger for a probe.
func (s *LiveService) pinger(probeID int) (*ping.Pinger, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if p, ok := s.pingers[probeID]; ok {
		return p, nil
	}
	ep, err := s.net.Attach(fmt.Sprintf("probe/%d", probeID))
	if err != nil {
		return nil, err
	}
	pingOpts := []ping.PingerOption{ping.WithRTTScale(1 / s.timeScale)}
	if s.metrics != nil && s.metrics.Ping != nil {
		pingOpts = append(pingOpts, ping.WithMetrics(s.metrics.Ping))
	}
	p, err := ping.NewPinger(ep, uint16(probeID), pingOpts...)
	if err != nil {
		return nil, err
	}
	s.pingers[probeID] = p
	return p, nil
}

// Create validates, charges, and starts a measurement. It returns the
// measurement ID immediately; results accumulate asynchronously.
func (s *LiveService) Create(account string, spec MeasurementSpec) (int, error) {
	if err := spec.Validate(s.platform); err != nil {
		return 0, err
	}
	if err := s.ledger.Charge(account, spec.Cost()); err != nil {
		return 0, err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		// Refund: the measurement never started.
		_ = s.ledger.Refund(account, spec.Cost())
		return 0, errors.New("atlas: service closed")
	}
	s.nextID++
	id := s.nextID
	ctx, cancel := context.WithCancel(context.Background())
	m := &Measurement{ID: id, Account: account, Spec: spec, Status: StatusRunning, cancel: cancel}
	s.byID[id] = m
	s.wg.Add(1)
	s.mu.Unlock()
	if s.metrics != nil {
		s.metrics.MeasurementsCreated.Inc()
	}

	go s.run(ctx, m)
	return id, nil
}

func (s *LiveService) run(ctx context.Context, m *Measurement) {
	defer s.wg.Done()
	var firstErr error
	var wg sync.WaitGroup
	var mu sync.Mutex
	for _, probeID := range m.Spec.ProbeIDs {
		wg.Add(1)
		go func(probeID int) {
			defer wg.Done()
			p, err := s.pinger(probeID)
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				return
			}
			for i := 0; i < m.Spec.Count; i++ {
				if ctx.Err() != nil {
					return
				}
				if i > 0 && m.Spec.Interval > 0 {
					select {
					case <-ctx.Done():
						return
					case <-time.After(time.Duration(float64(m.Spec.Interval) * s.timeScale)):
					}
				}
				sample := results.Sample{ProbeID: probeID, Region: m.Spec.Target, Time: time.Now()}
				rtt, err := p.Ping(ctx, m.Spec.Target, m.Spec.Timeout)
				switch {
				case err == nil:
					sample.RTTms = float64(rtt) / float64(time.Millisecond)
				case errors.Is(err, ping.ErrTimeout):
					sample.Lost = true
				case errors.Is(err, context.Canceled):
					return
				default:
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				if s.metrics != nil {
					s.metrics.ResultsCollected.Inc()
					if sample.Lost {
						s.metrics.ProbeTimeouts.Inc()
					}
				}
				s.mu.Lock()
				m.Results = append(m.Results, sample)
				s.mu.Unlock()
			}
		}(probeID)
	}
	wg.Wait()
	s.mu.Lock()
	switch {
	case ctx.Err() != nil:
		m.Status = StatusStopped
	case firstErr != nil:
		m.Status = StatusFailed
		m.Error = firstErr.Error()
	default:
		m.Status = StatusDone
	}
	final := m.Status
	s.mu.Unlock()
	if s.metrics != nil {
		switch final {
		case StatusDone:
			s.metrics.MeasurementsDone.Inc()
		case StatusFailed:
			s.metrics.MeasurementsFailed.Inc()
		case StatusStopped:
			s.metrics.MeasurementsStopped.Inc()
		}
	}
}

// Stop cancels a running measurement. Results already collected remain
// available; the unused share of the charge is refunded.
func (s *LiveService) Stop(id int) error {
	s.mu.Lock()
	m, ok := s.byID[id]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("atlas: unknown measurement %d", id)
	}
	if m.Status != StatusRunning {
		s.mu.Unlock()
		return fmt.Errorf("atlas: measurement %d is %s, not running", id, m.Status)
	}
	cancel := m.cancel
	account := m.Account
	s.mu.Unlock()
	cancel()

	// Wait for the runner to settle so the collected count is final.
	for {
		m, _ := s.Get(id)
		if m.Status != StatusRunning {
			unused := m.Spec.Cost() - int64(len(m.Results))*CostPerPing
			if unused > 0 {
				return s.ledger.Refund(account, unused)
			}
			return nil
		}
		time.Sleep(time.Millisecond)
	}
}

// Get returns a snapshot of a measurement.
func (s *LiveService) Get(id int) (Measurement, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.byID[id]
	if !ok {
		return Measurement{}, false
	}
	snap := *m
	snap.Results = append([]results.Sample(nil), m.Results...)
	return snap, true
}

// Wait blocks until the measurement leaves the running state or the
// context expires, and returns the final snapshot.
func (s *LiveService) Wait(ctx context.Context, id int) (Measurement, error) {
	for {
		m, ok := s.Get(id)
		if !ok {
			return Measurement{}, fmt.Errorf("atlas: unknown measurement %d", id)
		}
		if m.Status != StatusRunning {
			return m, nil
		}
		select {
		case <-ctx.Done():
			return m, ctx.Err()
		case <-time.After(2 * time.Millisecond):
		}
	}
}

// Close waits for running measurements and shuts the network down.
func (s *LiveService) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.wg.Wait()
	s.net.Close()
}

// List returns snapshots (without results) of all measurements, optionally
// filtered by account, sorted by ID.
func (s *LiveService) List(account string) []Measurement {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Measurement, 0, len(s.byID))
	for _, m := range s.byID {
		if account != "" && m.Account != account {
			continue
		}
		snap := *m
		snap.Results = nil
		out = append(out, snap)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
