package atlas

import (
	"context"
	"fmt"
	"hash/fnv"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/probe"
	"repro/internal/results"
)

// CampaignOptions select the campaign execution strategy. The zero value
// is the serial path; anything else routes through internal/engine.
type CampaignOptions struct {
	// Workers is the shard/worker count. Values <= 1 run serially (unless
	// checkpointing or resuming, which always use the engine). The merged
	// output is byte-identical for every worker count.
	Workers int

	// CheckpointPath enables periodic checkpointing (requires Commit).
	CheckpointPath string
	// CheckpointEvery is the checkpoint cadence in merged rounds
	// (default engine.DefaultCheckpointEvery).
	CheckpointEvery int
	// Commit flushes the sink and reports its durable byte offset; called
	// at every checkpoint.
	Commit engine.CommitFunc
	// Fingerprint identifies the run configuration inside checkpoints;
	// see CampaignConfig.Fingerprint.
	Fingerprint string

	// StartRound/StartSamples resume an interrupted run from a checkpoint
	// watermark: rounds before StartRound are skipped and StartSamples
	// seeds the emitted-sample total.
	StartRound   int
	StartSamples uint64

	// OnCheckpoint, when set, runs after each checkpoint is durably
	// written, with the checkpointed round and committed sink offset; the
	// sink is quiesced while it runs (see engine.Config.OnCheckpoint).
	OnCheckpoint func(round int, offset int64)

	// OnRound, when set, observes each merged round (its index and sample
	// count) from the merger goroutine, after metrics are updated.
	OnRound func(round int, samples uint64)

	// EngineMetrics, when set, receives shard progress, queue depth,
	// merge stall, retry and checkpoint instruments.
	EngineMetrics *engine.Metrics

	// Log, when set, receives the engine's structured events (checkpoint
	// writes, sink retries, run completion).
	Log *obs.Logger
}

// serial reports whether the options select the plain single-goroutine
// loop rather than the execution engine.
func (o CampaignOptions) serial() bool {
	return o.Workers <= 1 && o.CheckpointPath == "" && o.StartRound == 0 && o.StartSamples == 0
}

// RunCampaignOpts runs the campaign under the given execution options,
// delegating to the parallel engine when they ask for more than the
// serial loop: the public probe population is split into contiguous
// shards (one per worker), every shard synthesizes its rounds on its own
// goroutine, and the engine merges shard batches round-major in shard
// order — reproducing the serial sample stream byte for byte for any
// worker count, because each sample's value depends only on the seeded
// latency model and the sample's (probe, target, time) identity.
func (p *Platform) RunCampaignOpts(ctx context.Context, cfg CampaignConfig, opts CampaignOptions, sink func(results.Sample) error) (uint64, error) {
	if err := cfg.Validate(); err != nil {
		return 0, err
	}
	probes := p.Population.Public()
	if len(probes) == 0 {
		return 0, fmt.Errorf("atlas: no public probes")
	}
	if opts.serial() {
		return p.runSerial(ctx, cfg, probes, sink)
	}

	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > len(probes) {
		workers = len(probes)
	}
	shards := shardProbes(probes, workers)
	rounds := cfg.Rounds()
	m := p.Metrics
	span := obs.From(ctx)
	span.SetAttr("rounds", rounds)
	span.SetAttr("probes", len(probes))
	span.SetAttr("workers", workers)
	if opts.StartRound > 0 {
		span.SetAttr("resume_round", opts.StartRound)
	}
	if m != nil {
		m.CampaignRoundsTotal.Set(float64(rounds))
		m.CampaignRoundsDone.Set(float64(opts.StartRound))
	}
	tally := p.newCampaignTally()

	// Upper bound on one (shard, round) cell, so worker batch buffers
	// never reallocate mid-round.
	hint := (len(probes) + workers - 1) / workers * cfg.TargetsPerRound

	n, err := engine.Run(ctx, engine.Config{
		Workers:         workers,
		Rounds:          rounds,
		BatchHint:       hint,
		StartRound:      opts.StartRound,
		StartSamples:    opts.StartSamples,
		CheckpointPath:  opts.CheckpointPath,
		CheckpointEvery: opts.CheckpointEvery,
		Commit:          opts.Commit,
		Fingerprint:     opts.Fingerprint,
		OnCheckpoint:    opts.OnCheckpoint,
		Metrics:         opts.EngineMetrics,
		Log:             opts.Log,
		Gen: func(ctx context.Context, shard, round int, emit func(results.Sample) error) error {
			_, err := p.synthesizeRound(ctx, cfg, round, shards[shard], tally, emit)
			return err
		},
		Sink: sink,
		OnRound: func(round int, samples uint64) {
			// Rounds are generated concurrently, so per-round spans mark
			// merge completion events rather than synthesis intervals;
			// they keep the trace's round fan-out (and per-round sample
			// attribution) identical in shape to the serial path.
			rs := span.Child("round")
			rs.SetAttr("round", round)
			rs.SetAttr("at", cfg.RoundTime(round).Format(time.RFC3339))
			rs.SetAttr("samples", samples)
			rs.End()
			if m != nil {
				m.CampaignRoundsDone.Set(float64(round + 1))
			}
			if opts.OnRound != nil {
				opts.OnRound(round, samples)
			}
		},
	})
	span.SetAttr("samples", n)
	return n, err
}

// ShardGen returns an engine.GenFunc that synthesizes the cells of an
// n-way contiguous shard partition of the public probe population —
// the exact workload RunCampaignOpts hands the in-process engine,
// exposed so cluster worker agents can execute single leased shards of
// a fixed partition with identical output. The shard count, like the
// worker count, never affects the merged byte stream: concatenating
// every shard's round in shard order reproduces the serial round.
func (p *Platform) ShardGen(cfg CampaignConfig, shards int) (engine.GenFunc, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	probes := p.Population.Public()
	if len(probes) == 0 {
		return nil, fmt.Errorf("atlas: no public probes")
	}
	if shards < 1 || shards > len(probes) {
		return nil, fmt.Errorf("atlas: shard count %d outside [1, %d]", shards, len(probes))
	}
	parts := shardProbes(probes, shards)
	tally := p.newCampaignTally()
	return func(ctx context.Context, shard, round int, emit func(results.Sample) error) error {
		if shard < 0 || shard >= len(parts) {
			return fmt.Errorf("atlas: shard %d outside the %d-way partition", shard, len(parts))
		}
		_, err := p.synthesizeRound(ctx, cfg, round, parts[shard], tally, emit)
		return err
	}, nil
}

// PublicProbes returns the size of the public probe population — the
// upper bound on a usable shard count.
func (p *Platform) PublicProbes() int { return len(p.Population.Public()) }

// shardProbes splits the probe slice into n contiguous chunks whose sizes
// differ by at most one, preserving ID order. Shard boundaries depend on
// n, but the round-major shard-order merge makes the concatenated stream
// independent of it.
func shardProbes(probes []*probe.Probe, n int) [][]*probe.Probe {
	out := make([][]*probe.Probe, 0, n)
	base, rem := len(probes)/n, len(probes)%n
	i := 0
	for s := 0; s < n; s++ {
		size := base
		if s < rem {
			size++
		}
		out = append(out, probes[i:i+size])
		i += size
	}
	return out
}

// Fingerprint identifies a campaign execution for checkpoint
// compatibility: the same (config, seed, census) produces the same
// fingerprint, and resuming under a different one is refused. The worker
// count is deliberately excluded — it does not affect the output.
func (c CampaignConfig) Fingerprint(seed uint64, probes int) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%d|%d|%d|%d|%d|%g|%d",
		seed, probes,
		c.Start.UTC().UnixNano(), c.End.UTC().UnixNano(), int64(c.Interval),
		c.TargetsPerRound, c.Participation, c.PingsPerTarget)
	return fmt.Sprintf("%016x", h.Sum64())
}
