package atlas

import (
	"net/http"
	"time"

	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/ping"
)

// Metrics bundles every platform-level telemetry instrument: HTTP request
// accounting for the API server, credit flow, live-measurement lifecycle,
// campaign-synthesis progress, and the pinger/network instruments shared
// with the lower layers. All fields are optional; a nil *Metrics (or any
// nil field) disables that instrument.
type Metrics struct {
	Registry *obs.Registry

	// HTTP middleware instruments.
	ReqTotal     *obs.CounterVec   // route, class ("2xx", "4xx", ...)
	ReqDur       *obs.HistogramVec // route; seconds
	EncodeErrors *obs.CounterVec   // route; JSON encode failures in writeJSON

	// Credit ledger flow.
	CreditsGranted  *obs.Counter
	CreditsSpent    *obs.Counter
	CreditsRefunded *obs.Counter

	// Live measurement lifecycle.
	MeasurementsCreated *obs.Counter
	MeasurementsDone    *obs.Counter
	MeasurementsFailed  *obs.Counter
	MeasurementsStopped *obs.Counter
	ResultsCollected    *obs.Counter
	ProbeTimeouts       *obs.Counter

	// Campaign synthesizer progress (RunCampaign).
	CampaignSamples     *obs.CounterVec // continent
	CampaignLost        *obs.Counter
	CampaignRoundsDone  *obs.Gauge
	CampaignRoundsTotal *obs.Gauge

	// Shared lower-layer instruments.
	Ping *ping.Metrics
	Net  *netsim.Metrics
}

// NewMetrics registers the full platform instrument set on reg.
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		Registry: reg,

		ReqTotal: reg.CounterVec("atlas_http_requests_total",
			"API requests by route and status class.", "route", "class"),
		ReqDur: reg.HistogramVec("atlas_http_request_duration_seconds",
			"API request handling latency.", obs.DurationBuckets, "route"),
		EncodeErrors: reg.CounterVec("atlas_http_encode_errors_total",
			"JSON response bodies that failed to encode after the header was sent.", "route"),

		CreditsGranted:  reg.Counter("atlas_credits_granted_total", "Credits granted to accounts."),
		CreditsSpent:    reg.Counter("atlas_credits_spent_total", "Credits charged for measurements."),
		CreditsRefunded: reg.Counter("atlas_credits_refunded_total", "Credits refunded from stopped or failed measurements."),

		MeasurementsCreated: reg.Counter("atlas_measurements_created_total", "Live measurements accepted."),
		MeasurementsDone:    reg.Counter("atlas_measurements_done_total", "Live measurements that completed."),
		MeasurementsFailed:  reg.Counter("atlas_measurements_failed_total", "Live measurements that failed."),
		MeasurementsStopped: reg.Counter("atlas_measurements_stopped_total", "Live measurements stopped by the user."),
		ResultsCollected:    reg.Counter("atlas_results_collected_total", "Samples collected from live measurements."),
		ProbeTimeouts:       reg.Counter("atlas_probe_timeouts_total", "Live pings that timed out (recorded as loss)."),

		CampaignSamples: reg.CounterVec("atlas_campaign_samples_total",
			"Campaign samples synthesized, by probe continent.", "continent"),
		CampaignLost:        reg.Counter("atlas_campaign_samples_lost_total", "Campaign samples recorded as loss."),
		CampaignRoundsDone:  reg.Gauge("atlas_campaign_rounds_done", "Campaign rounds completed so far."),
		CampaignRoundsTotal: reg.Gauge("atlas_campaign_rounds_total", "Campaign rounds planned."),

		Ping: ping.NewMetrics(reg),
		Net:  netsim.NewMetrics(reg),
	}
}

// statusWriter captures the response status class for the middleware and
// carries JSON encode failures from writeJSON back to it: once the header
// is out, the handler cannot change the status, so the error is surfaced
// as a counter instead of being dropped.
type statusWriter struct {
	http.ResponseWriter
	status    int
	encodeErr error
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// statusClass buckets an HTTP status code ("2xx", "4xx", ...).
func statusClass(code int) string {
	switch {
	case code >= 500:
		return "5xx"
	case code >= 400:
		return "4xx"
	case code >= 300:
		return "3xx"
	case code >= 200:
		return "2xx"
	default:
		return "1xx"
	}
}

// instrument wraps a handler with request counting, duration histograms,
// and encode-error accounting under the given route label. With nil
// metrics the handler is returned untouched.
func (m *Metrics) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	if m == nil {
		return h
	}
	reqTotal := m.ReqTotal
	dur := m.ReqDur.With(route)
	encodeErrs := m.EncodeErrors.With(route)
	return func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		h(sw, r)
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		reqTotal.With(route, statusClass(status)).Inc()
		dur.Observe(time.Since(start).Seconds())
		if sw.encodeErr != nil {
			encodeErrs.Inc()
		}
	}
}
