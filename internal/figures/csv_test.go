package figures

import (
	"bytes"
	"context"
	"encoding/csv"
	"strings"
	"testing"

	"repro/internal/apps"
)

func parseCSV(t *testing.T, buf *bytes.Buffer) [][]string {
	t.Helper()
	rows, err := csv.NewReader(buf).ReadAll()
	if err != nil {
		t.Fatalf("output is not valid CSV: %v", err)
	}
	return rows
}

func TestFigure1CSV(t *testing.T) {
	series, _, err := Figure1(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Figure1CSV(&buf, series); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, &buf)
	if len(rows) != 17 {
		t.Errorf("%d rows, want header + 16 years", len(rows))
	}
	if strings.Join(rows[0], ",") != "year,edge_pubs,cloud_pubs,edge_search,cloud_search,era" {
		t.Errorf("header = %v", rows[0])
	}
	if err := Figure1CSV(&buf, nil); err == nil {
		t.Error("nil series accepted")
	}
}

func TestFigureCSVFromDataset(t *testing.T) {
	f := dataset(t)

	rep4, _, err := Figure4(f.mem, f.w.Index)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Figure4CSV(&buf, rep4); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, &buf)
	if len(rows) != len(rep4.Rows)+1 {
		t.Errorf("figure 4 CSV rows = %d", len(rows))
	}

	rep5, _, err := Figure5(f.mem, f.w.Index)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := CDFCSV(&buf, rep5); err != nil {
		t.Fatal(err)
	}
	rows = parseCSV(t, &buf)
	// 6 continents x 400 grid points + header.
	if len(rows) != 6*400+1 {
		t.Errorf("CDF CSV rows = %d", len(rows))
	}

	rep7, _, err := Figure7(f.mem, f.w.Index, f.cfg.Start)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := Figure7CSV(&buf, rep7); err != nil {
		t.Fatal(err)
	}
	rows = parseCSV(t, &buf)
	if len(rows) != len(rep7.Wired)+len(rep7.Wireless)+1 {
		t.Errorf("figure 7 CSV rows = %d", len(rows))
	}

	rep8, _, err := Figure8(rep7, apps.Paper())
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := Figure8CSV(&buf, rep8); err != nil {
		t.Fatal(err)
	}
	rows = parseCSV(t, &buf)
	if len(rows) != len(rep8.Verdicts)+1 {
		t.Errorf("figure 8 CSV rows = %d", len(rows))
	}

	// Nil guards.
	if err := Figure4CSV(&buf, nil); err == nil {
		t.Error("nil proximity accepted")
	}
	if err := CDFCSV(&buf, nil); err == nil {
		t.Error("nil CDF accepted")
	}
	if err := Figure7CSV(&buf, nil); err == nil {
		t.Error("nil last-mile accepted")
	}
	if err := Figure8CSV(&buf, nil); err == nil {
		t.Error("nil feasibility accepted")
	}
}
