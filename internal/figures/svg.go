package figures

import (
	"errors"
	"fmt"
	"io"
	"math"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/trends"
)

// SVGSeries is one polyline of a chart.
type SVGSeries struct {
	Name  string
	Color string // CSS color
	X, Y  []float64
}

// SVGChart is a minimal line-chart renderer (pure stdlib) used to emit the
// figures as vector graphics.
type SVGChart struct {
	Title          string
	XLabel, YLabel string
	Width, Height  int
	Series         []SVGSeries
}

// chart geometry.
const (
	marginLeft   = 60
	marginRight  = 20
	marginTop    = 36
	marginBottom = 46
)

// Render writes the chart as an SVG document.
func (c *SVGChart) Render(w io.Writer) error {
	if len(c.Series) == 0 {
		return errors.New("figures: chart has no series")
	}
	if c.Width <= marginLeft+marginRight || c.Height <= marginTop+marginBottom {
		return fmt.Errorf("figures: chart size %dx%d too small", c.Width, c.Height)
	}
	var xMin, xMax, yMin, yMax float64
	first := true
	for _, s := range c.Series {
		if len(s.X) != len(s.Y) {
			return fmt.Errorf("figures: series %q has %d x values for %d y values", s.Name, len(s.X), len(s.Y))
		}
		if len(s.X) == 0 {
			return fmt.Errorf("figures: series %q is empty", s.Name)
		}
		for i := range s.X {
			if math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) {
				return fmt.Errorf("figures: series %q contains NaN", s.Name)
			}
			if first {
				xMin, xMax, yMin, yMax = s.X[i], s.X[i], s.Y[i], s.Y[i]
				first = false
				continue
			}
			xMin = math.Min(xMin, s.X[i])
			xMax = math.Max(xMax, s.X[i])
			yMin = math.Min(yMin, s.Y[i])
			yMax = math.Max(yMax, s.Y[i])
		}
	}
	if xMax == xMin {
		xMax = xMin + 1
	}
	if yMax == yMin {
		yMax = yMin + 1
	}
	plotW := float64(c.Width - marginLeft - marginRight)
	plotH := float64(c.Height - marginTop - marginBottom)
	px := func(x float64) float64 { return float64(marginLeft) + (x-xMin)/(xMax-xMin)*plotW }
	py := func(y float64) float64 { return float64(c.Height-marginBottom) - (y-yMin)/(yMax-yMin)*plotH }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		c.Width, c.Height, c.Width, c.Height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", c.Width, c.Height)
	fmt.Fprintf(&b, `<text x="%d" y="20" font-family="sans-serif" font-size="14" font-weight="bold">%s</text>`+"\n",
		marginLeft, xmlEscape(c.Title))

	// Axes.
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		marginLeft, c.Height-marginBottom, c.Width-marginRight, c.Height-marginBottom)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		marginLeft, marginTop, marginLeft, c.Height-marginBottom)

	// Ticks: five per axis.
	for i := 0; i <= 4; i++ {
		fx := xMin + (xMax-xMin)*float64(i)/4
		fy := yMin + (yMax-yMin)*float64(i)/4
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-family="sans-serif" font-size="10" text-anchor="middle">%s</text>`+"\n",
			px(fx), c.Height-marginBottom+14, formatTick(fx))
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-family="sans-serif" font-size="10" text-anchor="end">%s</text>`+"\n",
			marginLeft-6, py(fy)+3, formatTick(fy))
	}
	fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-family="sans-serif" font-size="11" text-anchor="middle">%s</text>`+"\n",
		float64(marginLeft)+plotW/2, c.Height-8, xmlEscape(c.XLabel))
	fmt.Fprintf(&b, `<text x="14" y="%.1f" font-family="sans-serif" font-size="11" text-anchor="middle" transform="rotate(-90 14 %.1f)">%s</text>`+"\n",
		float64(marginTop)+plotH/2, float64(marginTop)+plotH/2, xmlEscape(c.YLabel))

	// Series polylines and legend.
	for i, s := range c.Series {
		var pts strings.Builder
		for j := range s.X {
			fmt.Fprintf(&pts, "%.1f,%.1f ", px(s.X[j]), py(s.Y[j]))
		}
		fmt.Fprintf(&b, `<polyline fill="none" stroke="%s" stroke-width="1.5" points="%s"/>`+"\n",
			s.Color, strings.TrimSpace(pts.String()))
		lx := marginLeft + 10
		ly := marginTop + 8 + i*14
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="2"/>`+"\n",
			lx, ly, lx+18, ly, s.Color)
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="10">%s</text>`+"\n",
			lx+24, ly+3, xmlEscape(s.Name))
	}
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func formatTick(v float64) string {
	if math.Abs(v) >= 1000 {
		return fmt.Sprintf("%.0fk", v/1000)
	}
	if v == math.Trunc(v) {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.2f", v)
}

func xmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// continentColors is the fixed palette for per-continent curves.
var continentColors = []string{"#d62728", "#ff7f0e", "#1f77b4", "#2ca02c", "#9467bd", "#8c564b"}

// CDFSVG renders a continent-grouped CDF (Figures 5 and 6) as SVG.
func CDFSVG(w io.Writer, rep *core.CDFReport, title string) error {
	if rep == nil {
		return errors.New("figures: nil report")
	}
	chart := &SVGChart{
		Title:  title,
		XLabel: "RTT (ms)",
		YLabel: "CDF",
		Width:  640,
		Height: 420,
	}
	grid := core.DefaultGrid()
	for i, ct := range rep.Continents() {
		curve, err := rep.Curve(ct, grid)
		if err != nil {
			return err
		}
		s := SVGSeries{Name: ct.String(), Color: continentColors[i%len(continentColors)]}
		for _, pt := range curve {
			s.X = append(s.X, pt.X)
			s.Y = append(s.Y, pt.P)
		}
		chart.Series = append(chart.Series, s)
	}
	return chart.Render(w)
}

// Figure1SVG renders the zeitgeist publication series.
func Figure1SVG(w io.Writer, s *trends.Series) error {
	if s == nil {
		return errors.New("figures: nil series")
	}
	edge := SVGSeries{Name: "edge computing (pubs)", Color: "#1f77b4"}
	cloud := SVGSeries{Name: "cloud computing (pubs)", Color: "#d62728"}
	for _, p := range s.Points {
		edge.X = append(edge.X, float64(p.Year))
		edge.Y = append(edge.Y, float64(p.EdgePubs))
		cloud.X = append(cloud.X, float64(p.Year))
		cloud.Y = append(cloud.Y, float64(p.CloudPubs))
	}
	chart := &SVGChart{
		Title:  "Figure 1: publications per year",
		XLabel: "year",
		YLabel: "publications",
		Width:  640,
		Height: 420,
		Series: []SVGSeries{cloud, edge},
	}
	return chart.Render(w)
}

// Figure7SVG renders the wired/wireless weekly medians.
func Figure7SVG(w io.Writer, rep *core.LastMileReport, start time.Time) error {
	if rep == nil {
		return errors.New("figures: nil report")
	}
	wired := SVGSeries{Name: "wired", Color: "#1f77b4"}
	for _, p := range rep.Wired {
		wired.X = append(wired.X, p.Start.Sub(start).Hours()/24)
		wired.Y = append(wired.Y, p.Median)
	}
	wireless := SVGSeries{Name: "wireless", Color: "#d62728"}
	for _, p := range rep.Wireless {
		wireless.X = append(wireless.X, p.Start.Sub(start).Hours()/24)
		wireless.Y = append(wireless.Y, p.Median)
	}
	chart := &SVGChart{
		Title:  "Figure 7: wired vs wireless access RTT",
		XLabel: "day of campaign",
		YLabel: "median RTT (ms)",
		Width:  640,
		Height: 420,
		Series: []SVGSeries{wired, wireless},
	}
	return chart.Render(w)
}
