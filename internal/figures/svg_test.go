package figures

import (
	"bytes"
	"context"
	"encoding/xml"
	"strings"
	"testing"
)

// validateSVG checks that the output parses as XML and counts polylines.
func validateSVG(t *testing.T, buf *bytes.Buffer) int {
	t.Helper()
	dec := xml.NewDecoder(bytes.NewReader(buf.Bytes()))
	polylines := 0
	for {
		tok, err := dec.Token()
		if err != nil {
			break
		}
		if se, ok := tok.(xml.StartElement); ok && se.Name.Local == "polyline" {
			polylines++
		}
	}
	if !strings.HasPrefix(buf.String(), "<svg") {
		t.Fatal("output does not start with <svg")
	}
	return polylines
}

func TestChartValidation(t *testing.T) {
	c := &SVGChart{Width: 640, Height: 420}
	var buf bytes.Buffer
	if err := c.Render(&buf); err == nil {
		t.Error("empty chart accepted")
	}
	c.Series = []SVGSeries{{Name: "a", Color: "red", X: []float64{1}, Y: []float64{1, 2}}}
	if err := c.Render(&buf); err == nil {
		t.Error("mismatched series accepted")
	}
	c.Series = []SVGSeries{{Name: "a", Color: "red"}}
	if err := c.Render(&buf); err == nil {
		t.Error("empty series accepted")
	}
	c.Series = []SVGSeries{{Name: "a", Color: "red", X: []float64{1, 2}, Y: []float64{1, 2}}}
	c.Width = 10
	if err := c.Render(&buf); err == nil {
		t.Error("tiny chart accepted")
	}
}

func TestChartConstantSeries(t *testing.T) {
	// Degenerate ranges (flat series) must not divide by zero.
	c := &SVGChart{
		Title: "flat", Width: 640, Height: 420,
		Series: []SVGSeries{{Name: "flat", Color: "blue", X: []float64{5, 5, 5}, Y: []float64{2, 2, 2}}},
	}
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if n := validateSVG(t, &buf); n != 1 {
		t.Errorf("%d polylines", n)
	}
	if strings.Contains(buf.String(), "NaN") {
		t.Error("NaN leaked into SVG")
	}
}

func TestFigureSVGs(t *testing.T) {
	f := dataset(t)

	series, _, err := Figure1(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Figure1SVG(&buf, series); err != nil {
		t.Fatal(err)
	}
	if n := validateSVG(t, &buf); n != 2 {
		t.Errorf("figure 1 has %d polylines, want 2", n)
	}

	rep5, _, err := Figure5(f.mem, f.w.Index)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := CDFSVG(&buf, rep5, "Figure 5"); err != nil {
		t.Fatal(err)
	}
	if n := validateSVG(t, &buf); n != 6 {
		t.Errorf("figure 5 has %d polylines, want 6 continents", n)
	}

	rep7, _, err := Figure7(f.mem, f.w.Index, f.cfg.Start)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := Figure7SVG(&buf, rep7, f.cfg.Start); err != nil {
		t.Fatal(err)
	}
	if n := validateSVG(t, &buf); n != 2 {
		t.Errorf("figure 7 has %d polylines, want 2", n)
	}

	// Nil guards.
	if err := Figure1SVG(&buf, nil); err == nil {
		t.Error("nil series accepted")
	}
	if err := CDFSVG(&buf, nil, "x"); err == nil {
		t.Error("nil CDF accepted")
	}
	if err := Figure7SVG(&buf, nil, f.cfg.Start); err == nil {
		t.Error("nil last-mile accepted")
	}
}

func TestXMLEscape(t *testing.T) {
	c := &SVGChart{
		Title: `a <b> & "c"`, Width: 640, Height: 420,
		Series: []SVGSeries{{Name: "s<1>", Color: "red", X: []float64{1, 2}, Y: []float64{3, 4}}},
	}
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
	validateSVG(t, &buf) // would fail to parse if unescaped
}
