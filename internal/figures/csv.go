package figures

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"strconv"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/trends"
)

// CSV writers: the machine-readable form of each figure, for external
// plotting tools. Each writes a header row followed by data rows.

func writeAll(w io.Writer, rows [][]string) error {
	cw := csv.NewWriter(w)
	if err := cw.WriteAll(rows); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

// Figure1CSV writes the zeitgeist series.
func Figure1CSV(w io.Writer, s *trends.Series) error {
	if s == nil {
		return errors.New("figures: nil series")
	}
	rows := [][]string{{"year", "edge_pubs", "cloud_pubs", "edge_search", "cloud_search", "era"}}
	eras := s.Eras()
	for _, p := range s.Points {
		rows = append(rows, []string{
			strconv.Itoa(p.Year),
			strconv.Itoa(p.EdgePubs),
			strconv.Itoa(p.CloudPubs),
			fmt.Sprintf("%.2f", p.EdgeSearch),
			fmt.Sprintf("%.2f", p.CloudSearch),
			string(eras[p.Year]),
		})
	}
	return writeAll(w, rows)
}

// Figure4CSV writes the per-country proximity rows.
func Figure4CSV(w io.Writer, rep *core.ProximityReport) error {
	if rep == nil {
		return errors.New("figures: nil report")
	}
	rows := [][]string{{"country", "name", "continent", "min_rtt_ms", "band"}}
	for _, r := range rep.Rows {
		rows = append(rows, []string{
			r.Country, r.Name, r.Continent.Code(),
			fmt.Sprintf("%.2f", r.MinRTTms), r.Band.String(),
		})
	}
	return writeAll(w, rows)
}

// CDFCSV writes a continent-grouped CDF sampled on the default grid; it
// serves Figures 5 and 6.
func CDFCSV(w io.Writer, rep *core.CDFReport) error {
	if rep == nil {
		return errors.New("figures: nil report")
	}
	rows := [][]string{{"continent", "rtt_ms", "fraction"}}
	grid := core.DefaultGrid()
	for _, ct := range rep.Continents() {
		curve, err := rep.Curve(ct, grid)
		if err != nil {
			return err
		}
		for _, pt := range curve {
			rows = append(rows, []string{
				ct.Code(), fmt.Sprintf("%.0f", pt.X), fmt.Sprintf("%.4f", pt.P),
			})
		}
	}
	return writeAll(w, rows)
}

// Figure7CSV writes the wired/wireless weekly series.
func Figure7CSV(w io.Writer, rep *core.LastMileReport) error {
	if rep == nil {
		return errors.New("figures: nil report")
	}
	rows := [][]string{{"week_start", "class", "median_ms", "p25_ms", "p75_ms", "samples"}}
	for _, p := range rep.Wired {
		rows = append(rows, []string{
			p.Start.Format("2006-01-02"), "wired",
			fmt.Sprintf("%.2f", p.Median), fmt.Sprintf("%.2f", p.P25),
			fmt.Sprintf("%.2f", p.P75), strconv.Itoa(p.N),
		})
	}
	for _, p := range rep.Wireless {
		rows = append(rows, []string{
			p.Start.Format("2006-01-02"), "wireless",
			fmt.Sprintf("%.2f", p.Median), fmt.Sprintf("%.2f", p.P25),
			fmt.Sprintf("%.2f", p.P75), strconv.Itoa(p.N),
		})
	}
	return writeAll(w, rows)
}

// Figure8CSV writes the feasibility verdicts.
func Figure8CSV(w io.Writer, rep *apps.FeasibilityReport) error {
	if rep == nil {
		return errors.New("figures: nil report")
	}
	rows := [][]string{{"app", "quadrant", "market_busd", "latency_gain", "bandwidth_gain", "in_zone"}}
	for _, v := range rep.Verdicts {
		rows = append(rows, []string{
			v.App.Name, v.App.Quadrant().String(),
			fmt.Sprintf("%g", v.App.MarketBUSD),
			strconv.FormatBool(v.LatencyGain),
			strconv.FormatBool(v.BandwidthGain),
			strconv.FormatBool(v.InZone),
		})
	}
	return writeAll(w, rows)
}
