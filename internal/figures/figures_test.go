package figures

import (
	"context"
	"strings"
	"testing"

	"repro/internal/apps"
	"repro/internal/atlas"
	"repro/internal/core"
	"repro/internal/results"
	"repro/internal/world"
)

type fixture struct {
	w   *world.World
	mem *results.Memory
	cfg atlas.CampaignConfig
}

var cached *fixture

func dataset(t testing.TB) *fixture {
	t.Helper()
	if cached != nil {
		return cached
	}
	w, err := world.Build(world.Config{Seed: 3, Probes: 400})
	if err != nil {
		t.Fatal(err)
	}
	var mem results.Memory
	cfg := atlas.TestCampaign()
	if _, err := w.Platform.RunCampaign(context.Background(), cfg, mem.Add); err != nil {
		t.Fatal(err)
	}
	cached = &fixture{w: w, mem: &mem, cfg: cfg}
	return cached
}

func TestFigure1(t *testing.T) {
	series, lines, err := Figure1(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(series.Points) != 16 || len(lines) != 17 {
		t.Errorf("points=%d lines=%d", len(series.Points), len(lines))
	}
	if !strings.Contains(lines[0], "era") {
		t.Errorf("missing header: %q", lines[0])
	}
}

func TestFigure2(t *testing.T) {
	lines, err := Figure2(apps.Paper())
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(lines, "\n")
	for _, want := range []string{"Q1", "Q2", "Q3", "Q4", "AR/VR", "Smart home"} {
		if !strings.Contains(joined, want) {
			t.Errorf("figure 2 output missing %q", want)
		}
	}
	if _, err := Figure2(nil); err == nil {
		t.Error("nil catalog accepted")
	}
}

func TestFigure3(t *testing.T) {
	f := dataset(t)
	a, err := Figure3a(f.w.Catalog)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(a[0], "101 regions, 7 providers, 21 countries") {
		t.Errorf("3a header = %q", a[0])
	}
	b, err := Figure3b(f.w.Probes)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b[0], "public probes") {
		t.Errorf("3b header = %q", b[0])
	}
	if _, err := Figure3a(nil); err == nil {
		t.Error("nil catalog accepted")
	}
	if _, err := Figure3b(nil); err == nil {
		t.Error("nil population accepted")
	}
}

func TestFigures4Through8(t *testing.T) {
	f := dataset(t)
	rep4, lines4, err := Figure4(f.mem, f.w.Index)
	if err != nil {
		t.Fatal(err)
	}
	if len(lines4) != len(rep4.Rows)+1 {
		t.Errorf("figure 4: %d lines for %d rows", len(lines4), len(rep4.Rows))
	}
	rep5, lines5, err := Figure5(f.mem, f.w.Index)
	if err != nil {
		t.Fatal(err)
	}
	if len(lines5) != len(rep5.Continents()) {
		t.Errorf("figure 5: %d lines", len(lines5))
	}
	if !strings.Contains(lines5[0], "P(<=20ms)") {
		t.Errorf("figure 5 missing MTP mark: %q", lines5[0])
	}
	_, lines6, err := Figure6(f.mem, f.w.Index)
	if err != nil {
		t.Fatal(err)
	}
	if len(lines6) == 0 {
		t.Error("figure 6 empty")
	}
	rep7, lines7, err := Figure7(f.mem, f.w.Index, f.cfg.Start)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(lines7[0], "ratio") {
		t.Errorf("figure 7 header = %q", lines7[0])
	}
	rep8, lines8, err := Figure8(rep7, apps.Paper())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep8.InZone()) == 0 {
		t.Error("figure 8 zone empty")
	}
	if !strings.Contains(lines8[0], "feasibility zone") {
		t.Errorf("figure 8 header = %q", lines8[0])
	}
	if _, _, err := Figure8(nil, nil); err == nil {
		t.Error("nil figure 8 inputs accepted")
	}
}

func TestNames(t *testing.T) {
	if got := len(Names()); got != 9 {
		t.Errorf("Names() has %d entries", got)
	}
}

// TestHeadlineNumbers cross-checks the figure pipeline against the paper's
// headline claims on the small fixture (shape, not absolutes).
func TestHeadlineNumbers(t *testing.T) {
	f := dataset(t)
	rep4, _, err := Figure4(f.mem, f.w.Index)
	if err != nil {
		t.Fatal(err)
	}
	bands := rep4.CountByBand()
	if bands[core.BandSub10] == 0 {
		t.Error("no sub-10ms countries")
	}
	rep7, _, err := Figure7(f.mem, f.w.Index, f.cfg.Start)
	if err != nil {
		t.Fatal(err)
	}
	ratio, err := rep7.MedianRatio()
	if err != nil {
		t.Fatal(err)
	}
	if ratio < 1.5 {
		t.Errorf("wireless/wired = %.2f, want the paper's ~2.5x shape", ratio)
	}
}
