package figures

import (
	"context"
	"testing"

	"repro/internal/analysisutil"
)

// TestHeadlineStabilityAcrossSeeds re-runs the core headline numbers under
// three different world seeds: the paper's conclusions must not hinge on
// one lucky random draw.
func TestHeadlineStabilityAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed campaign sweep")
	}
	for _, seed := range []uint64{11, 22, 33} {
		seed := seed
		t.Run(analysisutil.SeedName(seed), func(t *testing.T) {
			f, err := analysisutil.BuildFixture(context.Background(), seed, 400)
			if err != nil {
				t.Fatal(err)
			}
			rep4, _, err := Figure4(f.Mem, f.World.Index)
			if err != nil {
				t.Fatal(err)
			}
			// Figure 4 shape: a healthy sub-10ms block, a 10-20 tranche,
			// and a bounded >=100ms tail, every seed.
			bands := rep4.CountByBand()
			if bands[0] != 0 {
				t.Error("no-data band non-empty")
			}
			sub10 := rep4.CountWithin(10)
			if sub10 < 15 || sub10 > 60 {
				t.Errorf("seed %d: %d countries < 10ms", seed, sub10)
			}
			over := len(rep4.Rows) - rep4.CountWithin(100)
			if over < 3 || over > 45 {
				t.Errorf("seed %d: %d countries >= 100ms", seed, over)
			}
			// Figure 7 shape: the wireless penalty holds for every seed.
			rep7, _, err := Figure7(f.Mem, f.World.Index, f.Cfg.Start)
			if err != nil {
				t.Fatal(err)
			}
			ratio, err := rep7.MedianRatio()
			if err != nil {
				t.Fatal(err)
			}
			if ratio < 1.5 || ratio > 4.5 {
				t.Errorf("seed %d: wireless ratio %.2f", seed, ratio)
			}
		})
	}
}
