// Package figures regenerates every figure of the paper's evaluation as
// text rows/series: the same numbers the plots encode, in a form a harness
// can assert against. One function per figure, each returning printable
// lines plus the underlying report for programmatic checks.
package figures

import (
	"context"
	"fmt"
	"net/http/httptest"
	"sort"
	"time"

	"repro/internal/apps"
	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/probe"
	"repro/internal/results"
	"repro/internal/trends"
)

// Figure1 builds the zeitgeist series by standing up the in-process
// scholar server and crawling it, exactly like the paper's custom crawler.
func Figure1(ctx context.Context, seed uint64) (*trends.Series, []string, error) {
	corpus := trends.GenerateCorpus(seed)
	srv, err := trends.NewScholarServer(corpus)
	if err != nil {
		return nil, nil, err
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	crawler, err := trends.NewCrawler(ts.URL, ts.Client())
	if err != nil {
		return nil, nil, err
	}
	tts := httptest.NewServer(trends.NewTrendsServer())
	defer tts.Close()
	trendsClient, err := trends.NewTrendsClient(tts.URL, tts.Client())
	if err != nil {
		return nil, nil, err
	}
	series, err := trends.BuildSeries(ctx, crawler, trendsClient)
	if err != nil {
		return nil, nil, err
	}
	lines := []string{"year  edge_pubs  cloud_pubs  edge_search  cloud_search  era"}
	eras := series.Eras()
	for _, p := range series.Points {
		lines = append(lines, fmt.Sprintf("%d  %9d  %10d  %11.1f  %12.1f  %s",
			p.Year, p.EdgePubs, p.CloudPubs, p.EdgeSearch, p.CloudSearch, eras[p.Year]))
	}
	return series, lines, nil
}

// Figure2 renders the application-requirements map grouped by quadrant.
func Figure2(catalog *apps.Catalog) ([]string, error) {
	if catalog == nil {
		return nil, fmt.Errorf("figures: nil catalog")
	}
	byQ := catalog.ByQuadrant()
	var lines []string
	for _, q := range []apps.Quadrant{apps.Q1, apps.Q2, apps.Q3, apps.Q4} {
		lines = append(lines, q.String())
		for _, a := range byQ[q] {
			lines = append(lines, fmt.Sprintf("  %-26s latency=[%g,%g]ms  data=[%g,%g]GB  market=$%gB",
				a.Name, a.LatencyMs.Lo, a.LatencyMs.Hi, a.DataGBPerEntity.Lo, a.DataGBPerEntity.Hi, a.MarketBUSD))
		}
	}
	return lines, nil
}

// Figure3a summarizes the cloud-region deployment per provider and country.
func Figure3a(cat *cloud.Catalog) ([]string, error) {
	if cat == nil {
		return nil, fmt.Errorf("figures: nil catalog")
	}
	lines := []string{fmt.Sprintf("%d regions, %d providers, %d countries",
		cat.Len(), len(cloud.Providers()), len(cat.Countries()))}
	for _, p := range cloud.Providers() {
		lines = append(lines, fmt.Sprintf("  %-16s %3d regions (%s backbone)",
			p.Name, len(cat.ByProvider(p)), p.Backbone))
	}
	for _, ct := range geo.Continents() {
		lines = append(lines, fmt.Sprintf("  %-16s %3d regions", ct.String(), len(cat.ByContinent(ct))))
	}
	return lines, nil
}

// Figure3b summarizes the probe census per continent.
func Figure3b(pop *probe.Population) ([]string, error) {
	if pop == nil {
		return nil, fmt.Errorf("figures: nil population")
	}
	counts := pop.CountByContinent()
	total := 0
	for _, n := range counts {
		total += n
	}
	lines := []string{fmt.Sprintf("%d public probes in %d countries", total, len(pop.Countries()))}
	for _, ct := range geo.Continents() {
		lines = append(lines, fmt.Sprintf("  %-16s %4d probes (%.1f%%)",
			ct.String(), counts[ct], 100*float64(counts[ct])/float64(total)))
	}
	return lines, nil
}

// Figure4 renders per-country minimum latency bands.
func Figure4(src results.Source, idx *core.Index) (*core.ProximityReport, []string, error) {
	rep, err := core.Proximity(src, idx)
	if err != nil {
		return nil, nil, err
	}
	return rep, Figure4Lines(rep), nil
}

// Figure4Lines renders an already-computed proximity report, letting fused
// scans reuse the exact Figure 4 formatting without re-reading the dataset.
func Figure4Lines(rep *core.ProximityReport) []string {
	bands := rep.CountByBand()
	lines := []string{fmt.Sprintf("countries: <10ms=%d  10-20ms=%d  20-100ms=%d  >=100ms=%d  (within PL: %d/%d)",
		bands[core.BandSub10], bands[core.Band10to20], bands[core.Band20to100],
		bands[core.BandOver100], rep.CountWithin(core.PLms), len(rep.Rows))}
	return append(lines, rep.Format()...)
}

// CDFLines renders one CDF report at the canonical thresholds — the shared
// body of Figures 5 and 6.
func CDFLines(rep *core.CDFReport) ([]string, error) {
	marks := []float64{10, core.MTPms, 50, core.PLms, 150, core.HRTms}
	var lines []string
	for _, ct := range rep.Continents() {
		d, _ := rep.Dist(ct)
		row := fmt.Sprintf("%-14s n=%-8d", ct.String(), d.N())
		for _, m := range marks {
			frac, err := rep.FractionWithin(ct, m)
			if err != nil {
				return nil, err
			}
			row += fmt.Sprintf("  P(<=%gms)=%.2f", m, frac)
		}
		lines = append(lines, row)
	}
	return lines, nil
}

// Figure5 renders the per-probe minimum-RTT CDFs by continent.
func Figure5(src results.Source, idx *core.Index) (*core.CDFReport, []string, error) {
	rep, err := core.MinRTTByProbe(src, idx)
	if err != nil {
		return nil, nil, err
	}
	lines, err := CDFLines(rep)
	return rep, lines, err
}

// Figure6 renders the closest-datacenter full-distribution CDFs.
func Figure6(src results.Source, idx *core.Index) (*core.CDFReport, []string, error) {
	rep, err := core.FullDistribution(src, idx)
	if err != nil {
		return nil, nil, err
	}
	lines, err := CDFLines(rep)
	return rep, lines, err
}

// Figure7 renders the wired-vs-wireless comparison.
func Figure7(src results.Source, idx *core.Index, start time.Time) (*core.LastMileReport, []string, error) {
	rep, err := core.LastMile(src, idx, start, 7*24*time.Hour)
	if err != nil {
		return nil, nil, err
	}
	lines, err := Figure7Lines(rep)
	return rep, lines, err
}

// Figure7Lines renders an already-computed last-mile report.
func Figure7Lines(rep *core.LastMileReport) ([]string, error) {
	ratio, err := rep.MedianRatio()
	if err != nil {
		return nil, err
	}
	added, err := rep.AddedLatencyMs()
	if err != nil {
		return nil, err
	}
	lines := []string{fmt.Sprintf("wireless/wired ratio=%.2fx  added=%.1fms", ratio, added)}
	n := len(rep.Wired)
	if len(rep.Wireless) < n {
		n = len(rep.Wireless)
	}
	for i := 0; i < n; i++ {
		lines = append(lines, fmt.Sprintf("week %2d  wired=%.1fms  wireless=%.1fms",
			i+1, rep.Wired[i].Median, rep.Wireless[i].Median))
	}
	return lines, nil
}

// Figure8 derives the feasibility zone from the measured last-mile data and
// evaluates the application catalog against it.
func Figure8(lastMile *core.LastMileReport, catalog *apps.Catalog) (*apps.FeasibilityReport, []string, error) {
	if lastMile == nil || catalog == nil {
		return nil, nil, fmt.Errorf("figures: nil inputs")
	}
	added, err := lastMile.AddedLatencyMs()
	if err != nil {
		return nil, nil, err
	}
	zone, err := apps.DeriveZone(added, core.HRTms, 1)
	if err != nil {
		return nil, nil, err
	}
	rep, err := apps.Feasibility(catalog, zone)
	if err != nil {
		return nil, nil, err
	}
	lines := []string{fmt.Sprintf("feasibility zone: latency [%.1f, %.1f]ms x data >= %.1fGB/entity",
		zone.LatencyFloorMs, zone.LatencyCeilMs, zone.BandwidthFloorGB)}
	lines = append(lines, rep.Format()...)
	lines = append(lines, fmt.Sprintf("market in-zone=$%.0fB  out-zone=$%.0fB", rep.MarketInZone, rep.MarketOutZone))
	return rep, lines, nil
}

// Names lists the figure identifiers in order.
func Names() []string {
	out := []string{"1", "2", "3a", "3b", "4", "5", "6", "7", "8"}
	sort.Strings(out)
	return out
}
