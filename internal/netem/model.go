// Package netem is the wide-area network latency model that substitutes for
// the real Internet between RIPE-Atlas-style probes and cloud datacenters.
//
// An RTT sample decomposes, following the paper's own attribution (§4.3), as
//
//	RTT = propagation x path-stretch + transit + last-mile + bufferbloat
//
// with light-in-fiber propagation over the great circle, per-provider path
// stretch (private backbones are straighter than public transit), a transit
// penalty graded by the country's infrastructure tier, wired/wireless
// last-mile access distributions, a diurnal load cycle, minutes-long
// bufferbloat episodes on wireless paths, and packet loss. All draws are
// keyed by (seed, path, time): re-running a campaign reproduces its dataset
// exactly.
package netem

import (
	"fmt"
	"math"
	"time"

	"repro/internal/geo"
)

// Access classifies a probe's last-mile link, mirroring the RIPE Atlas user
// tags the paper filters on (§4.3: ethernet/broadband vs lte/wifi/wlan).
type Access uint8

// Access classes.
const (
	AccessUnknown  Access = iota
	AccessWired           // ethernet, broadband, fibre
	AccessWireless        // wifi, wlan, lte
	AccessCore            // datacenter/IXP-hosted: no residential last mile
)

// String names the access class.
func (a Access) String() string {
	switch a {
	case AccessWired:
		return "wired"
	case AccessWireless:
		return "wireless"
	case AccessCore:
		return "core"
	default:
		return "unknown"
	}
}

// Site is the probe-side endpoint of a path.
type Site struct {
	ID        string        // stable identifier, part of the path key
	Location  geo.Point     // probe coordinates
	Continent geo.Continent // for inter-continental detour detection
	Tier      geo.Tier      // country infrastructure tier
	Access    Access        // last-mile class
}

// Target is the datacenter-side endpoint of a path.
type Target struct {
	ID        string        // stable identifier, part of the path key
	Location  geo.Point     // datacenter coordinates
	Continent geo.Continent // for inter-continental detour detection
	Private   bool          // provider runs a private backbone
}

// Range is a [Lo, Hi) interval of milliseconds (or a unitless factor band).
type Range struct{ Lo, Hi float64 }

func (r Range) valid() bool { return r.Lo >= 0 && r.Hi >= r.Lo }

// Config holds the model's calibration knobs. DESIGN.md §5 records the
// published measurements each default is pinned to.
type Config struct {
	// FiberKmPerMs is the one-way distance light covers per millisecond in
	// fiber (~2/3 c = 200 km/ms).
	FiberKmPerMs float64
	// StretchPrivate and StretchPublic are the path-stretch factor bands for
	// private-backbone and public-transit providers.
	StretchPrivate, StretchPublic Range
	// InterContinentStretch is the extra stretch added when source and
	// destination are on different continents (submarine-cable detours).
	InterContinentStretch Range
	// TransitByTier is the per-sample transit penalty band (ms) indexed by
	// country tier 1..4.
	TransitByTier [5]Range
	// LastMileWired and LastMileWireless are the access-link RTT
	// contribution bands (ms). Core sites have none.
	LastMileWired, LastMileWireless Range
	// BloatProb is the probability that a 10-minute window is a bufferbloat
	// episode on a wireless path; BloatWiredProb the (much smaller) wired
	// equivalent; BloatMeanMs the mean episode magnitude.
	BloatProb, BloatWiredProb, BloatMeanMs float64
	// DiurnalAmpByTier scales the evening-peak load term per tier (fraction
	// of transit added at peak).
	DiurnalAmpByTier [5]float64
	// LossWired and LossWireless are base packet-loss probabilities;
	// LossTierStep adds per tier above 1.
	LossWired, LossWireless, LossTierStep float64
	// ProcessingMs is the fixed endpoint processing floor added to every
	// sample.
	ProcessingMs float64
	// UplinkMbpsWired, UplinkMbpsWireless and UplinkMbpsCore are the
	// access-link upstream capacities used for serialization delay of
	// payload-carrying packets.
	UplinkMbpsWired, UplinkMbpsWireless, UplinkMbpsCore float64
	// JitterFloor clamps the multiplicative queueing-noise factor from
	// below, bounding how far a lucky sample can dip under the typical
	// path cost. Without it, a nine-month campaign's per-path minimum
	// washes out the transit penalty entirely.
	JitterFloor float64
}

// DefaultConfig returns the calibration used throughout the reproduction.
func DefaultConfig() Config {
	return Config{
		FiberKmPerMs:          200,
		StretchPrivate:        Range{1.15, 1.55},
		StretchPublic:         Range{1.35, 2.30},
		InterContinentStretch: Range{0.10, 0.35},
		TransitByTier: [5]Range{
			{},         // unused index 0
			{0.5, 3.5}, // tier 1: dense peering
			{2.0, 9.0}, // tier 2
			{12, 45},   // tier 3
			{55, 140},  // tier 4: severely under-served
		},
		LastMileWired:      Range{1.5, 8},
		LastMileWireless:   Range{11, 38},
		BloatProb:          0.06,
		BloatWiredProb:     0.004,
		BloatMeanMs:        140,
		DiurnalAmpByTier:   [5]float64{0, 0.15, 0.25, 0.45, 0.70},
		LossWired:          0.004,
		LossWireless:       0.02,
		LossTierStep:       0.006,
		ProcessingMs:       0.3,
		JitterFloor:        0.8,
		UplinkMbpsWired:    50,
		UplinkMbpsWireless: 20,
		UplinkMbpsCore:     1000,
	}
}

// Validate checks the configuration for internal consistency.
func (c Config) Validate() error {
	if c.FiberKmPerMs <= 0 {
		return fmt.Errorf("netem: FiberKmPerMs must be positive, got %v", c.FiberKmPerMs)
	}
	for name, r := range map[string]Range{
		"StretchPrivate":        c.StretchPrivate,
		"StretchPublic":         c.StretchPublic,
		"InterContinentStretch": c.InterContinentStretch,
		"LastMileWired":         c.LastMileWired,
		"LastMileWireless":      c.LastMileWireless,
	} {
		if !r.valid() {
			return fmt.Errorf("netem: invalid range %s=%+v", name, r)
		}
	}
	if c.StretchPrivate.Lo < 1 || c.StretchPublic.Lo < 1 {
		return fmt.Errorf("netem: path stretch below 1 violates physics")
	}
	for t := 1; t <= 4; t++ {
		if !c.TransitByTier[t].valid() {
			return fmt.Errorf("netem: invalid TransitByTier[%d]=%+v", t, c.TransitByTier[t])
		}
	}
	for _, p := range []float64{c.BloatProb, c.BloatWiredProb, c.LossWired, c.LossWireless, c.LossTierStep} {
		if p < 0 || p > 1 {
			return fmt.Errorf("netem: probability %v out of [0,1]", p)
		}
	}
	if c.BloatMeanMs < 0 || c.ProcessingMs < 0 {
		return fmt.Errorf("netem: negative magnitude")
	}
	if c.JitterFloor < 0 || c.JitterFloor > 1 {
		return fmt.Errorf("netem: jitter floor %v out of [0,1]", c.JitterFloor)
	}
	if c.UplinkMbpsWired <= 0 || c.UplinkMbpsWireless <= 0 || c.UplinkMbpsCore <= 0 {
		return fmt.Errorf("netem: uplink capacities must be positive")
	}
	return nil
}

// Model derives deterministic per-path parameters and samples RTTs.
type Model struct {
	cfg  Config
	seed uint64
}

// NewModel validates cfg and builds a model. Two models with the same cfg
// and seed produce identical samples.
func NewModel(cfg Config, seed uint64) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Model{cfg: cfg, seed: seed}, nil
}

// Path captures the fixed characteristics of one probe-to-datacenter route.
type Path struct {
	cfg        *Config
	key        uint64
	src        Site
	dst        Target
	propMs     float64 // propagation RTT including stretch
	transit    Range   // per-sample transit band
	lmBase     float64 // last-mile base (path constant)
	lmJit      float64 // last-mile per-sample jitter span
	bloatP     float64
	lossP      float64
	diurnal    float64
	uplinkMbps float64
}

// Path derives the route between src and dst. The derivation is
// deterministic in (model seed, src.ID, dst.ID).
func (m *Model) Path(src Site, dst Target) (*Path, error) {
	if src.ID == "" || dst.ID == "" {
		return nil, fmt.Errorf("netem: path endpoints need IDs")
	}
	if !src.Location.Valid() || !dst.Location.Valid() {
		return nil, fmt.Errorf("netem: invalid endpoint location")
	}
	if src.Tier < geo.Tier1 || src.Tier > geo.Tier4 {
		return nil, fmt.Errorf("netem: site %s has invalid tier %d", src.ID, src.Tier)
	}
	key := newRNG(m.seed, hash64(src.ID), hash64(dst.ID)).next()
	r := newRNG(m.seed, key, 1)

	band := m.cfg.StretchPublic
	if dst.Private {
		band = m.cfg.StretchPrivate
	}
	stretch := r.inRange(band.Lo, band.Hi)
	if src.Continent != dst.Continent {
		stretch += r.inRange(m.cfg.InterContinentStretch.Lo, m.cfg.InterContinentStretch.Hi)
	}
	distKm := geo.DistanceKm(src.Location, dst.Location)
	propMs := 2 * distKm / m.cfg.FiberKmPerMs * stretch

	p := &Path{
		cfg:     &m.cfg,
		key:     key,
		src:     src,
		dst:     dst,
		propMs:  propMs,
		transit: m.cfg.TransitByTier[src.Tier],
		diurnal: m.cfg.DiurnalAmpByTier[src.Tier],
	}

	switch src.Access {
	case AccessWireless:
		lm := m.cfg.LastMileWireless
		p.lmBase = r.inRange(lm.Lo, (lm.Lo+lm.Hi)/2)
		p.lmJit = lm.Hi - p.lmBase
		p.bloatP = m.cfg.BloatProb
		p.lossP = m.cfg.LossWireless
	case AccessCore:
		p.lmBase, p.lmJit = 0, 0
		p.bloatP = 0
		p.lossP = m.cfg.LossWired / 2
	default: // wired and unknown default to wired behaviour
		lm := m.cfg.LastMileWired
		p.lmBase = r.inRange(lm.Lo, (lm.Lo+lm.Hi)/2)
		p.lmJit = lm.Hi - p.lmBase
		p.bloatP = m.cfg.BloatWiredProb
		p.lossP = m.cfg.LossWired
	}
	switch src.Access {
	case AccessWireless:
		p.uplinkMbps = m.cfg.UplinkMbpsWireless
	case AccessCore:
		p.uplinkMbps = m.cfg.UplinkMbpsCore
	default:
		p.uplinkMbps = m.cfg.UplinkMbpsWired
	}
	p.lossP += float64(src.Tier-1) * m.cfg.LossTierStep
	if p.lossP > 0.5 {
		p.lossP = 0.5
	}
	return p, nil
}

// SerializationMs returns the time to push a payload of the given size
// through the probe's access uplink — the size-dependent share of a
// packet's delay.
func (p *Path) SerializationMs(payloadBytes int) float64 {
	if payloadBytes <= 0 {
		return 0
	}
	return float64(payloadBytes) * 8 / (p.uplinkMbps * 1000)
}

// DistanceKm returns the great-circle endpoint distance.
func (p *Path) DistanceKm() float64 {
	return geo.DistanceKm(p.src.Location, p.dst.Location)
}

// FloorMs returns the physics floor of the path: stretched propagation plus
// endpoint processing. No sample can fall below it.
func (p *Path) FloorMs() float64 {
	return p.propMs + p.cfg.ProcessingMs
}

// bloatWindow is the wall-clock granularity of bufferbloat episodes; the
// paper cites queue build-ups "lasting several seconds" to minutes (§5).
const bloatWindow = 10 * time.Minute

// Breakdown decomposes one RTT sample into the components the paper's
// §4.3 ("Where is the Delay?") attributes latency to. Jitter is already
// applied to the queueing components; TotalMs is their sum.
type Breakdown struct {
	PropagationMs float64 // stretched light-in-fiber propagation
	TransitMs     float64 // tier-graded transit/peering penalty (with diurnal load)
	LastMileMs    float64 // access-link contribution
	BloatMs       float64 // bufferbloat episode share, if any
	ProcessingMs  float64 // endpoint processing floor
	TotalMs       float64
	Lost          bool
}

// RTT samples the path at time t. It returns the round-trip time and
// whether the packet was lost. Deterministic in (path, t).
func (p *Path) RTT(t time.Time) (ms float64, lost bool) {
	b := p.Sample(t)
	return b.TotalMs, b.Lost
}

// Sample draws the full component breakdown at time t. RTT(t) is its
// TotalMs; both are deterministic in (path, t).
func (p *Path) Sample(t time.Time) Breakdown {
	r := newRNG(p.key, uint64(t.Unix()), 2)
	if r.float64() < p.lossP {
		return Breakdown{Lost: true}
	}
	transit := r.inRange(p.transit.Lo, p.transit.Hi)
	// Evening congestion peak in the probe's local time, scaled by tier.
	localHour := math.Mod(float64(t.Unix())/3600+p.src.Location.Lon/15+48, 24)
	peak := math.Max(0, math.Sin((localHour-8)/12*math.Pi)) // peaks at 14-20h local
	transit *= 1 + p.diurnal*peak*r.float64()

	lastMile := p.lmBase
	if p.lmJit > 0 {
		lastMile += p.lmJit * r.float64() * r.float64() // skew toward base
	}

	// Bufferbloat episodes are keyed by coarse time window so consecutive
	// samples inside an episode share the spike.
	bloat := 0.0
	win := uint64(t.Unix() / int64(bloatWindow/time.Second))
	wr := newRNG(p.key, win, 3)
	if p.bloatP > 0 && wr.float64() < p.bloatP {
		bloat = wr.expMs(p.cfg.BloatMeanMs) * (0.5 + 0.5*r.float64())
	}

	// Multiplicative noise applies to the queueing components only;
	// propagation is a hard floor, and the jitter floor bounds how far a
	// lucky draw can undercut the path's typical cost.
	jitter := r.lognormal(0, 0.15)
	if jitter < p.cfg.JitterFloor {
		jitter = p.cfg.JitterFloor
	}
	b := Breakdown{
		PropagationMs: p.propMs,
		TransitMs:     transit * jitter,
		LastMileMs:    lastMile * jitter,
		BloatMs:       bloat * jitter,
		ProcessingMs:  p.cfg.ProcessingMs,
	}
	b.TotalMs = b.PropagationMs + b.TransitMs + b.LastMileMs + b.BloatMs + b.ProcessingMs
	return b
}
