package netem

import "math"

// rng is a small splitmix64-based deterministic generator. Every latency
// sample is keyed by (seed, path, time) so that re-running a campaign with
// the same seed reproduces the dataset bit-for-bit, which the paper's
// several-month methodology needs for regression testing.
type rng struct{ state uint64 }

// newRNG derives a generator from a sequence of key words.
func newRNG(keys ...uint64) *rng {
	r := &rng{state: 0x9e3779b97f4a7c15}
	for _, k := range keys {
		r.state ^= k
		r.next()
	}
	return r
}

// hash64 mixes a string into a 64-bit key (FNV-1a).
func hash64(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float64 returns a uniform sample in [0, 1).
func (r *rng) float64() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// inRange returns a uniform sample in [lo, hi).
func (r *rng) inRange(lo, hi float64) float64 {
	return lo + (hi-lo)*r.float64()
}

// expMs returns an exponentially distributed sample with the given mean.
func (r *rng) expMs(mean float64) float64 {
	u := r.float64()
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	return -mean * math.Log(1-u)
}

// lognormal returns exp(N(mu, sigma)).
func (r *rng) lognormal(mu, sigma float64) float64 {
	// Box-Muller.
	u1 := r.float64()
	u2 := r.float64()
	if u1 <= 0 {
		u1 = math.SmallestNonzeroFloat64
	}
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return math.Exp(mu + sigma*z)
}
