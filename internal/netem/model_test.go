package netem

import (
	"math"
	"testing"
	"time"

	"repro/internal/geo"
)

func testModel(t *testing.T) *Model {
	t.Helper()
	m, err := NewModel(DefaultConfig(), 42)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func wiredSite(id string, loc geo.Point, tier geo.Tier, ct geo.Continent) Site {
	return Site{ID: id, Location: loc, Continent: ct, Tier: tier, Access: AccessWired}
}

var (
	helsinki  = geo.Point{Lat: 60.17, Lon: 24.94}
	stockholm = geo.Point{Lat: 59.33, Lon: 18.07}
	lagos     = geo.Point{Lat: 6.52, Lon: 3.38}
	frankfurt = geo.Point{Lat: 50.11, Lon: 8.68}
)

func TestConfigValidation(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	mutations := []struct {
		name string
		fn   func(*Config)
	}{
		{"zero fiber speed", func(c *Config) { c.FiberKmPerMs = 0 }},
		{"stretch below 1", func(c *Config) { c.StretchPrivate.Lo = 0.5 }},
		{"inverted range", func(c *Config) { c.LastMileWired = Range{10, 2} }},
		{"bad tier band", func(c *Config) { c.TransitByTier[2] = Range{5, 1} }},
		{"loss above 1", func(c *Config) { c.LossWireless = 1.5 }},
		{"negative bloat", func(c *Config) { c.BloatMeanMs = -1 }},
	}
	for _, m := range mutations {
		t.Run(m.name, func(t *testing.T) {
			c := DefaultConfig()
			m.fn(&c)
			if err := c.Validate(); err == nil {
				t.Error("invalid config accepted")
			}
			if _, err := NewModel(c, 1); err == nil {
				t.Error("NewModel accepted invalid config")
			}
		})
	}
}

func TestPathValidation(t *testing.T) {
	m := testModel(t)
	src := wiredSite("p1", helsinki, geo.Tier1, geo.Europe)
	dst := Target{ID: "d1", Location: stockholm, Continent: geo.Europe, Private: true}
	if _, err := m.Path(src, dst); err != nil {
		t.Errorf("valid path rejected: %v", err)
	}
	bad := src
	bad.ID = ""
	if _, err := m.Path(bad, dst); err == nil {
		t.Error("empty site ID accepted")
	}
	bad = src
	bad.Tier = 0
	if _, err := m.Path(bad, dst); err == nil {
		t.Error("invalid tier accepted")
	}
	bad = src
	bad.Location = geo.Point{Lat: 200, Lon: 0}
	if _, err := m.Path(bad, dst); err == nil {
		t.Error("invalid location accepted")
	}
	badDst := dst
	badDst.ID = ""
	if _, err := m.Path(src, badDst); err == nil {
		t.Error("empty target ID accepted")
	}
}

func TestDeterminism(t *testing.T) {
	mk := func(seed uint64) (float64, bool) {
		m, err := NewModel(DefaultConfig(), seed)
		if err != nil {
			t.Fatal(err)
		}
		p, err := m.Path(wiredSite("p1", helsinki, geo.Tier1, geo.Europe),
			Target{ID: "d1", Location: stockholm, Continent: geo.Europe, Private: true})
		if err != nil {
			t.Fatal(err)
		}
		return p.RTT(time.Unix(1567296000, 0))
	}
	r1, l1 := mk(42)
	r2, l2 := mk(42)
	if r1 != r2 || l1 != l2 {
		t.Errorf("same seed gave different samples: %v,%v vs %v,%v", r1, l1, r2, l2)
	}
	r3, _ := mk(43)
	if r1 == r3 {
		t.Error("different seeds gave identical samples (suspicious)")
	}
}

func samplePath(t *testing.T, p *Path, n int) []float64 {
	t.Helper()
	base := time.Date(2019, 9, 1, 0, 0, 0, 0, time.UTC)
	out := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		ms, lost := p.RTT(base.Add(time.Duration(i) * 3 * time.Hour))
		if !lost {
			if ms <= 0 {
				t.Fatalf("non-positive RTT %v", ms)
			}
			out = append(out, ms)
		}
	}
	return out
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	cp := append([]float64(nil), xs...)
	for i := range cp {
		for j := i + 1; j < len(cp); j++ {
			if cp[j] < cp[i] {
				cp[i], cp[j] = cp[j], cp[i]
			}
		}
	}
	return cp[len(cp)/2]
}

func TestRegionalCalibration(t *testing.T) {
	m := testModel(t)
	// Tier-1 wired probe near a private-backbone DC: single-digit to
	// low-teens ms (Fig. 4: local-DC countries < 10 ms best case).
	near, err := m.Path(wiredSite("fi-probe", helsinki, geo.Tier1, geo.Europe),
		Target{ID: "gcp-hamina", Location: geo.Point{Lat: 60.57, Lon: 27.19}, Continent: geo.Europe, Private: true})
	if err != nil {
		t.Fatal(err)
	}
	nearMed := median(samplePath(t, near, 500))
	if nearMed < 2 || nearMed > 20 {
		t.Errorf("near-DC median = %.1f ms, want 2-20", nearMed)
	}

	// Tier-3/4 African probe to Europe: the paper reports 150-200 ms
	// typical, and >100 ms nearly always (§4.3, §5).
	far, err := m.Path(wiredSite("ng-probe", lagos, geo.Tier3, geo.Africa),
		Target{ID: "aws-fra", Location: frankfurt, Continent: geo.Europe, Private: true})
	if err != nil {
		t.Fatal(err)
	}
	farMed := median(samplePath(t, far, 500))
	if farMed < 50 || farMed > 250 {
		t.Errorf("Lagos-Frankfurt median = %.1f ms, want 50-250", farMed)
	}
	if farMed < nearMed*3 {
		t.Errorf("under-served path (%.1f) should be far slower than local (%.1f)", farMed, nearMed)
	}
}

func TestWirelessPenalty(t *testing.T) {
	// §4.3: wireless probes take ~2.5x longer to the nearest region, an
	// added 10-40 ms.
	m := testModel(t)
	dst := Target{ID: "dc", Location: stockholm, Continent: geo.Europe, Private: true}
	var wiredMeds, wirelessMeds []float64
	for i := 0; i < 20; i++ {
		w := wiredSite("w"+string(rune('a'+i)), helsinki, geo.Tier1, geo.Europe)
		pw, err := m.Path(w, dst)
		if err != nil {
			t.Fatal(err)
		}
		wiredMeds = append(wiredMeds, median(samplePath(t, pw, 200)))

		wl := w
		wl.ID = "wl" + string(rune('a'+i))
		wl.Access = AccessWireless
		pwl, err := m.Path(wl, dst)
		if err != nil {
			t.Fatal(err)
		}
		wirelessMeds = append(wirelessMeds, median(samplePath(t, pwl, 200)))
	}
	wired := median(wiredMeds)
	wireless := median(wirelessMeds)
	ratio := wireless / wired
	if ratio < 1.8 || ratio > 4.0 {
		t.Errorf("wireless/wired = %.2f (%.1f/%.1f ms), want ~2.5x (1.8-4.0)", ratio, wireless, wired)
	}
	added := wireless - wired
	if added < 8 || added > 45 {
		t.Errorf("wireless adds %.1f ms, want ~10-40", added)
	}
}

func TestPrivateVsPublicBackbone(t *testing.T) {
	// Over a long path, public-transit providers should be slower on
	// average than private backbones (§4.1).
	m := testModel(t)
	src := wiredSite("us-probe", geo.Point{Lat: 40.71, Lon: -74.01}, geo.Tier1, geo.NorthAmerica)
	var priv, pub []float64
	for i := 0; i < 30; i++ {
		id := string(rune('a' + i))
		pp, err := m.Path(src, Target{ID: "priv" + id, Location: geo.Point{Lat: 37.77, Lon: -122.42}, Continent: geo.NorthAmerica, Private: true})
		if err != nil {
			t.Fatal(err)
		}
		priv = append(priv, median(samplePath(t, pp, 100)))
		pb, err := m.Path(src, Target{ID: "pub" + id, Location: geo.Point{Lat: 37.77, Lon: -122.42}, Continent: geo.NorthAmerica, Private: false})
		if err != nil {
			t.Fatal(err)
		}
		pub = append(pub, median(samplePath(t, pb, 100)))
	}
	if median(pub) <= median(priv) {
		t.Errorf("public transit (%.1f ms) not slower than private backbone (%.1f ms)", median(pub), median(priv))
	}
}

func TestFloorIsRespected(t *testing.T) {
	m := testModel(t)
	p, err := m.Path(wiredSite("p", helsinki, geo.Tier2, geo.Europe),
		Target{ID: "d", Location: frankfurt, Continent: geo.Europe, Private: false})
	if err != nil {
		t.Fatal(err)
	}
	floor := p.FloorMs()
	if floor <= 0 {
		t.Fatalf("floor = %v", floor)
	}
	base := time.Date(2019, 9, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 2000; i++ {
		ms, lost := p.RTT(base.Add(time.Duration(i) * time.Hour))
		if lost {
			continue
		}
		if ms < floor {
			t.Fatalf("sample %v below physics floor %v", ms, floor)
		}
	}
}

func TestLossRates(t *testing.T) {
	m := testModel(t)
	count := func(access Access, tier geo.Tier) float64 {
		s := Site{ID: "p-" + access.String() + tier.String(), Location: helsinki, Continent: geo.Europe, Tier: tier, Access: access}
		p, err := m.Path(s, Target{ID: "d", Location: stockholm, Continent: geo.Europe, Private: true})
		if err != nil {
			t.Fatal(err)
		}
		lost := 0
		base := time.Date(2019, 9, 1, 0, 0, 0, 0, time.UTC)
		const n = 20000
		for i := 0; i < n; i++ {
			if _, l := p.RTT(base.Add(time.Duration(i) * time.Minute)); l {
				lost++
			}
		}
		return float64(lost) / n
	}
	wired := count(AccessWired, geo.Tier1)
	wireless := count(AccessWireless, geo.Tier1)
	tier4 := count(AccessWired, geo.Tier4)
	if wired >= wireless {
		t.Errorf("wired loss %.4f >= wireless loss %.4f", wired, wireless)
	}
	if wired >= tier4 {
		t.Errorf("tier1 loss %.4f >= tier4 loss %.4f", wired, tier4)
	}
	if wired > 0.02 {
		t.Errorf("tier-1 wired loss %.4f implausibly high", wired)
	}
}

func TestDistanceKm(t *testing.T) {
	m := testModel(t)
	p, err := m.Path(wiredSite("p", helsinki, geo.Tier1, geo.Europe),
		Target{ID: "d", Location: stockholm, Continent: geo.Europe, Private: true})
	if err != nil {
		t.Fatal(err)
	}
	d := p.DistanceKm()
	if d < 350 || d > 450 {
		t.Errorf("Helsinki-Stockholm = %.0f km, want ~400", d)
	}
}

func TestAccessString(t *testing.T) {
	cases := map[Access]string{
		AccessWired: "wired", AccessWireless: "wireless",
		AccessCore: "core", AccessUnknown: "unknown",
	}
	for a, want := range cases {
		if a.String() != want {
			t.Errorf("%d.String() = %q, want %q", a, a.String(), want)
		}
	}
}
