package netem

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/geo"
)

// TestFloorMonotoneInDistance: along a meridian, farther targets have
// higher physics floors (propagation dominates the floor).
func TestFloorMonotoneInDistance(t *testing.T) {
	m := testModel(t)
	src := wiredSite("p", geo.Point{Lat: 0, Lon: 0}, geo.Tier1, geo.Europe)
	prev := -1.0
	for d := 1; d <= 80; d += 5 {
		dst := Target{
			ID:        "d", // same ID: identical per-path draws, distance is the only change
			Location:  geo.Point{Lat: float64(d), Lon: 0},
			Continent: geo.Europe,
			Private:   true,
		}
		p, err := m.Path(src, dst)
		if err != nil {
			t.Fatal(err)
		}
		floor := p.FloorMs()
		if floor <= prev {
			t.Fatalf("floor not monotone at %d deg: %.2f <= %.2f", d, floor, prev)
		}
		prev = floor
	}
}

// TestSampleComponentsProperty: for random times, the breakdown components
// are non-negative and sum to the total, and RTT agrees with Sample.
func TestSampleComponentsProperty(t *testing.T) {
	m := testModel(t)
	p, err := m.Path(wiredSite("p", helsinki, geo.Tier2, geo.Europe),
		Target{ID: "d", Location: frankfurt, Continent: geo.Europe, Private: false})
	if err != nil {
		t.Fatal(err)
	}
	base := time.Date(2019, 9, 1, 0, 0, 0, 0, time.UTC)
	prop := func(offset uint32) bool {
		at := base.Add(time.Duration(offset) * time.Second)
		b := p.Sample(at)
		rtt, lost := p.RTT(at)
		if b.Lost != lost {
			return false
		}
		if lost {
			return true
		}
		if b.PropagationMs < 0 || b.TransitMs < 0 || b.LastMileMs < 0 || b.BloatMs < 0 || b.ProcessingMs < 0 {
			return false
		}
		sum := b.PropagationMs + b.TransitMs + b.LastMileMs + b.BloatMs + b.ProcessingMs
		return math.Abs(sum-b.TotalMs) < 1e-9 && math.Abs(rtt-b.TotalMs) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestStretchWithinBand: the derived propagation never exceeds the
// configured stretch band over the pure great-circle time.
func TestStretchWithinBand(t *testing.T) {
	cfg := DefaultConfig()
	m, err := NewModel(cfg, 9)
	if err != nil {
		t.Fatal(err)
	}
	pure := func(a, b geo.Point) float64 {
		return 2 * geo.DistanceKm(a, b) / cfg.FiberKmPerMs
	}
	cases := []struct {
		name    string
		dst     Target
		maxFrac float64
	}{
		{"private same-continent", Target{ID: "d1", Location: frankfurt, Continent: geo.Europe, Private: true}, cfg.StretchPrivate.Hi},
		{"public same-continent", Target{ID: "d2", Location: frankfurt, Continent: geo.Europe, Private: false}, cfg.StretchPublic.Hi},
		{"public inter-continent", Target{ID: "d3", Location: geo.Point{Lat: 40.71, Lon: -74.01}, Continent: geo.NorthAmerica, Private: false}, cfg.StretchPublic.Hi + cfg.InterContinentStretch.Hi},
	}
	src := wiredSite("p", helsinki, geo.Tier1, geo.Europe)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p, err := m.Path(src, tc.dst)
			if err != nil {
				t.Fatal(err)
			}
			floor := p.FloorMs() - cfg.ProcessingMs
			base := pure(src.Location, tc.dst.Location)
			if floor < base || floor > base*tc.maxFrac+1e-9 {
				t.Errorf("stretched propagation %.2f outside [%.2f, %.2f]", floor, base, base*tc.maxFrac)
			}
		})
	}
}

// TestSameConfigDifferentModelInstances: two models with identical seed and
// config are interchangeable.
func TestSameConfigDifferentModelInstances(t *testing.T) {
	m1, err := NewModel(DefaultConfig(), 77)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := NewModel(DefaultConfig(), 77)
	if err != nil {
		t.Fatal(err)
	}
	src := wiredSite("p", lagos, geo.Tier3, geo.Africa)
	dst := Target{ID: "d", Location: frankfurt, Continent: geo.Europe, Private: true}
	p1, err := m1.Path(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := m2.Path(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	base := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 100; i++ {
		at := base.Add(time.Duration(i) * 7 * time.Minute)
		r1, l1 := p1.RTT(at)
		r2, l2 := p2.RTT(at)
		if r1 != r2 || l1 != l2 {
			t.Fatalf("models diverge at %v: %v/%v vs %v/%v", at, r1, l1, r2, l2)
		}
	}
}
