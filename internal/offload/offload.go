// Package offload models the computation-offloading decision behind the
// paper's §5 "Computing power" consideration: even with an edge deployed,
// the cloud's faster processors and accelerators can beat the edge's
// network-latency advantage. Given a task, a device, and candidate venues
// (on-device, edge, cloud) with their compute speeds and network costs,
// the model predicts completion times and locates the crossover where the
// edge actually wins — reproducing the argument of Cartas et al. [12] that
// edge inference gains are minimal.
package offload

import (
	"errors"
	"fmt"
	"sort"
)

// Venue is a place a task can execute.
type Venue struct {
	Name string
	// GFLOPS is the venue's effective compute throughput for the task.
	GFLOPS float64
	// RTTms is the network round trip to reach the venue (0 on-device).
	RTTms float64
	// UplinkMbps bounds how fast the task input ships to the venue
	// (ignored on-device).
	UplinkMbps float64
}

// Validate checks the venue parameters.
func (v Venue) Validate() error {
	if v.Name == "" {
		return errors.New("offload: unnamed venue")
	}
	if v.GFLOPS <= 0 {
		return fmt.Errorf("offload: venue %s has non-positive compute %v", v.Name, v.GFLOPS)
	}
	if v.RTTms < 0 {
		return fmt.Errorf("offload: venue %s has negative RTT", v.Name)
	}
	if v.RTTms > 0 && v.UplinkMbps <= 0 {
		return fmt.Errorf("offload: remote venue %s needs uplink bandwidth", v.Name)
	}
	return nil
}

// Remote reports whether reaching the venue crosses the network.
func (v Venue) Remote() bool { return v.RTTms > 0 }

// Task is one unit of offloadable work.
type Task struct {
	Name string
	// InputMB is the data shipped to a remote venue per invocation.
	InputMB float64
	// GFLOP is the compute demand per invocation.
	GFLOP float64
	// DeadlineMs is the completion budget (0 = no deadline).
	DeadlineMs float64
}

// Validate checks the task parameters.
func (t Task) Validate() error {
	if t.Name == "" {
		return errors.New("offload: unnamed task")
	}
	if t.InputMB < 0 || t.GFLOP <= 0 || t.DeadlineMs < 0 {
		return fmt.Errorf("offload: task %s has invalid parameters", t.Name)
	}
	return nil
}

// CompletionMs predicts the task's completion time at the venue:
// network round trip + input transfer + compute.
func CompletionMs(t Task, v Venue) (float64, error) {
	if err := t.Validate(); err != nil {
		return 0, err
	}
	if err := v.Validate(); err != nil {
		return 0, err
	}
	total := t.GFLOP / v.GFLOPS * 1000 // compute, ms
	if v.Remote() {
		total += v.RTTms
		total += t.InputMB * 8 / v.UplinkMbps * 1000 // transfer, ms
	}
	return total, nil
}

// Choice is one venue's predicted outcome for a task.
type Choice struct {
	Venue         Venue   `json:"venue"`
	CompletionMs  float64 `json:"completion_ms"`
	MeetsDeadline bool    `json:"meets_deadline"`
}

// Decide ranks the venues for a task, fastest first.
func Decide(t Task, venues []Venue) ([]Choice, error) {
	if len(venues) == 0 {
		return nil, errors.New("offload: no venues")
	}
	out := make([]Choice, 0, len(venues))
	for _, v := range venues {
		ms, err := CompletionMs(t, v)
		if err != nil {
			return nil, err
		}
		out = append(out, Choice{
			Venue:         v,
			CompletionMs:  ms,
			MeetsDeadline: t.DeadlineMs == 0 || ms <= t.DeadlineMs,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].CompletionMs != out[j].CompletionMs {
			return out[i].CompletionMs < out[j].CompletionMs
		}
		return out[i].Venue.Name < out[j].Venue.Name
	})
	return out, nil
}

// Reference venues for the §5 discussion: a 2019-class phone, a modest
// edge server one wireless hop away, and a GPU-backed cloud region at the
// measured RTT.
func ReferenceVenues(edgeRTTms, cloudRTTms, uplinkMbps float64) []Venue {
	return []Venue{
		{Name: "device", GFLOPS: 20},
		{Name: "edge", GFLOPS: 150, RTTms: edgeRTTms, UplinkMbps: uplinkMbps},
		{Name: "cloud", GFLOPS: 2000, RTTms: cloudRTTms, UplinkMbps: uplinkMbps},
	}
}

// CrossoverGFLOP returns the compute demand above which venue b completes
// faster than venue a for a task with the given input size — the §5
// crossover: beyond it, the cloud's processing advantage outweighs its
// extra network latency. Returns an error when no finite crossover exists
// (the faster-compute venue must also be b).
func CrossoverGFLOP(inputMB float64, a, b Venue) (float64, error) {
	if err := a.Validate(); err != nil {
		return 0, err
	}
	if err := b.Validate(); err != nil {
		return 0, err
	}
	if inputMB < 0 {
		return 0, errors.New("offload: negative input size")
	}
	fixed := func(v Venue) float64 {
		if !v.Remote() {
			return 0
		}
		return v.RTTms + inputMB*8/v.UplinkMbps*1000
	}
	// completion(v) = fixed(v) + g/GFLOPS(v)*1000; solve for g where equal.
	perG := 1000/a.GFLOPS - 1000/b.GFLOPS
	if perG <= 0 {
		return 0, fmt.Errorf("offload: %s is not compute-faster than %s", b.Name, a.Name)
	}
	diff := fixed(b) - fixed(a)
	if diff <= 0 {
		return 0, nil // b wins for any demand
	}
	return diff / perG, nil
}
