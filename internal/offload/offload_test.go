package offload

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValidation(t *testing.T) {
	badVenues := []Venue{
		{},
		{Name: "x", GFLOPS: 0},
		{Name: "x", GFLOPS: 10, RTTms: -1},
		{Name: "x", GFLOPS: 10, RTTms: 5, UplinkMbps: 0},
	}
	for i, v := range badVenues {
		if err := v.Validate(); err == nil {
			t.Errorf("venue case %d accepted", i)
		}
	}
	badTasks := []Task{
		{},
		{Name: "t", InputMB: -1, GFLOP: 1},
		{Name: "t", InputMB: 1, GFLOP: 0},
		{Name: "t", InputMB: 1, GFLOP: 1, DeadlineMs: -1},
	}
	for i, task := range badTasks {
		if err := task.Validate(); err == nil {
			t.Errorf("task case %d accepted", i)
		}
	}
	if _, err := Decide(Task{Name: "t", GFLOP: 1}, nil); err == nil {
		t.Error("no venues accepted")
	}
}

func TestCompletionArithmetic(t *testing.T) {
	task := Task{Name: "infer", InputMB: 10, GFLOP: 50}
	device := Venue{Name: "device", GFLOPS: 20}
	// On-device: 50/20*1000 = 2500 ms, no network.
	ms, err := CompletionMs(task, device)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ms-2500) > 0.01 {
		t.Errorf("device = %v, want 2500", ms)
	}
	// Cloud: 30ms RTT + 10MB over 50Mbps = 1600ms + 50/2000*1000 = 25ms.
	cloud := Venue{Name: "cloud", GFLOPS: 2000, RTTms: 30, UplinkMbps: 50}
	ms, err = CompletionMs(task, cloud)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ms-(30+1600+25)) > 0.01 {
		t.Errorf("cloud = %v, want 1655", ms)
	}
}

func TestDecideRanksAndDeadlines(t *testing.T) {
	venues := ReferenceVenues(15, 35, 50)
	// A heavy vision task: the cloud's GPUs win despite the extra RTT —
	// the §5 "Computing power" argument.
	heavy := Task{Name: "vision", InputMB: 2, GFLOP: 200, DeadlineMs: 500}
	choices, err := Decide(heavy, venues)
	if err != nil {
		t.Fatal(err)
	}
	if choices[0].Venue.Name != "cloud" {
		t.Errorf("heavy task best venue = %s, want cloud", choices[0].Venue.Name)
	}
	// A tiny interactive task: shipping it anywhere costs more than
	// computing locally.
	tiny := Task{Name: "keypress", InputMB: 0.001, GFLOP: 0.01, DeadlineMs: 20}
	choices, err = Decide(tiny, venues)
	if err != nil {
		t.Fatal(err)
	}
	if choices[0].Venue.Name != "device" {
		t.Errorf("tiny task best venue = %s, want device", choices[0].Venue.Name)
	}
	if !choices[0].MeetsDeadline {
		t.Error("tiny task misses its deadline on-device")
	}
	// Ranking is ascending.
	for i := 1; i < len(choices); i++ {
		if choices[i-1].CompletionMs > choices[i].CompletionMs {
			t.Fatal("choices not sorted")
		}
	}
}

func TestEdgeWinsOnlyInTheMiddle(t *testing.T) {
	// The paper's niche: the edge wins for tasks too heavy for the device
	// but too bandwidth-heavy for the cloud — the edge's advantage is the
	// fat, uncongested local uplink (§5: "benefits from the edge are
	// greatest close to the users"), not its compute.
	venues := []Venue{
		{Name: "device", GFLOPS: 20},
		{Name: "edge", GFLOPS: 150, RTTms: 12, UplinkMbps: 100},
		{Name: "cloud", GFLOPS: 2000, RTTms: 60, UplinkMbps: 20},
	}
	mid := Task{Name: "ar-frame", InputMB: 0.8, GFLOP: 8, DeadlineMs: 200}
	choices, err := Decide(mid, venues)
	if err != nil {
		t.Fatal(err)
	}
	if choices[0].Venue.Name != "edge" {
		t.Errorf("mid task best venue = %s (%.1fms), want edge", choices[0].Venue.Name, choices[0].CompletionMs)
	}
	if !choices[0].MeetsDeadline {
		t.Error("edge misses the AR deadline")
	}
}

func TestCrossover(t *testing.T) {
	edge := Venue{Name: "edge", GFLOPS: 150, RTTms: 12, UplinkMbps: 50}
	cloud := Venue{Name: "cloud", GFLOPS: 2000, RTTms: 40, UplinkMbps: 50}
	g, err := CrossoverGFLOP(1, edge, cloud)
	if err != nil {
		t.Fatal(err)
	}
	if g <= 0 {
		t.Fatalf("crossover = %v", g)
	}
	// At the crossover the completion times match.
	task := Task{Name: "x", InputMB: 1, GFLOP: g}
	e, err := CompletionMs(task, edge)
	if err != nil {
		t.Fatal(err)
	}
	c, err := CompletionMs(task, cloud)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e-c) > 1e-6 {
		t.Errorf("at crossover: edge %.4f vs cloud %.4f", e, c)
	}
	// Below it the edge wins, above it the cloud wins.
	below := Task{Name: "b", InputMB: 1, GFLOP: g * 0.5}
	eb, _ := CompletionMs(below, edge)
	cb, _ := CompletionMs(below, cloud)
	if eb >= cb {
		t.Error("edge should win below the crossover")
	}
	above := Task{Name: "a", InputMB: 1, GFLOP: g * 2}
	ea, _ := CompletionMs(above, edge)
	ca, _ := CompletionMs(above, cloud)
	if ca >= ea {
		t.Error("cloud should win above the crossover")
	}
	// The slower-compute direction has no crossover.
	if _, err := CrossoverGFLOP(1, cloud, edge); err == nil {
		t.Error("inverted crossover accepted")
	}
	// Equal fixed costs: b wins immediately.
	g, err = CrossoverGFLOP(0, Venue{Name: "a", GFLOPS: 10}, Venue{Name: "b", GFLOPS: 20})
	if err != nil || g != 0 {
		t.Errorf("free win crossover = %v, %v", g, err)
	}
}

func TestCrossoverProperty(t *testing.T) {
	// For any valid venue pair where b is compute-faster and network-
	// slower, completion curves cross exactly once at the returned demand.
	prop := func(rttRaw, inputRaw uint8) bool {
		edge := Venue{Name: "e", GFLOPS: 100, RTTms: float64(rttRaw%40) + 1, UplinkMbps: 50}
		cloud := Venue{Name: "c", GFLOPS: 1000, RTTms: float64(rttRaw%40) + 20, UplinkMbps: 50}
		input := float64(inputRaw) / 50
		g, err := CrossoverGFLOP(input, edge, cloud)
		if err != nil {
			return false
		}
		if g == 0 {
			return true
		}
		task := Task{Name: "t", InputMB: input, GFLOP: g}
		e, err1 := CompletionMs(task, edge)
		c, err2 := CompletionMs(task, cloud)
		return err1 == nil && err2 == nil && math.Abs(e-c) < 1e-6
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
