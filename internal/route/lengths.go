package route

import (
	"errors"
	"time"

	"repro/internal/atlas"
	"repro/internal/geo"
	"repro/internal/stats"
)

// LengthReport is the hop-count distribution of nearest-region paths,
// grouped by continent — the path-length view of the §4.3 infrastructure
// story: under-served regions traverse more intermediate networks.
type LengthReport struct {
	byContinent map[geo.Continent]*stats.Dist
}

// Lengths expands every public probe's path to its geographically nearest
// region at time t and tallies hop counts per continent.
func Lengths(p *atlas.Platform, at time.Time) (*LengthReport, error) {
	if p == nil {
		return nil, errors.New("route: nil platform")
	}
	rep := &LengthReport{byContinent: make(map[geo.Continent]*stats.Dist)}
	for _, pr := range p.Population.Public() {
		region := p.Catalog.Nearest(pr.Location)
		if region == nil {
			return nil, errors.New("route: empty catalog")
		}
		path, err := p.Path(pr, region)
		if err != nil {
			return nil, err
		}
		tr, err := Expand(path, pr.Site(), region.Addr(), at)
		if err != nil {
			return nil, err
		}
		if tr.Lost {
			continue
		}
		d := rep.byContinent[pr.Continent]
		if d == nil {
			d = &stats.Dist{}
			rep.byContinent[pr.Continent] = d
		}
		if err := d.Add(float64(len(tr.Hops))); err != nil {
			return nil, err
		}
	}
	if len(rep.byContinent) == 0 {
		return nil, errors.New("route: no traces")
	}
	return rep, nil
}

// MedianHops returns the median path length for a continent.
func (r *LengthReport) MedianHops(ct geo.Continent) (float64, error) {
	d, ok := r.byContinent[ct]
	if !ok {
		return 0, errors.New("route: no data for continent")
	}
	return d.Median()
}

// Continents lists the continents with data, in canonical order.
func (r *LengthReport) Continents() []geo.Continent {
	var out []geo.Continent
	for _, ct := range geo.Continents() {
		if d, ok := r.byContinent[ct]; ok && d.N() > 0 {
			out = append(out, ct)
		}
	}
	return out
}
