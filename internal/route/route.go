// Package route synthesizes hop-level forwarding paths from the latency
// model and implements a traceroute-style prober over them. The paper's
// methodology family leans on tcptraceroute [41] to locate delay along the
// path; this package reproduces that tooling: every probe-to-region path
// expands into access, transit, and backbone hops whose cumulative delays
// are consistent with the end-to-end RTT the campaign measured.
package route

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/netem"
)

// HopKind classifies a hop by network segment.
type HopKind uint8

// Hop kinds, in on-path order.
const (
	HopAccess   HopKind = iota + 1 // probe-side access/aggregation
	HopTransit                     // national/regional transit and peering
	HopBackbone                    // long-haul provider backbone
	HopEdge                        // datacenter edge router
	HopTarget                      // the measured VM itself
)

// String names the hop kind.
func (k HopKind) String() string {
	switch k {
	case HopAccess:
		return "access"
	case HopTransit:
		return "transit"
	case HopBackbone:
		return "backbone"
	case HopEdge:
		return "dc-edge"
	case HopTarget:
		return "target"
	default:
		return "unknown"
	}
}

// Hop is one traceroute line: a router with its cumulative round-trip
// delay from the probe.
type Hop struct {
	TTL          int     `json:"ttl"`
	Name         string  `json:"name"`
	Kind         HopKind `json:"kind"`
	CumulativeMs float64 `json:"cumulative_ms"`
}

// Trace is a full hop list for one path at one point in time.
type Trace struct {
	Src, Dst string
	At       time.Time
	Hops     []Hop
	Lost     bool // the probe burst was lost end to end
}

// Expand synthesizes the hop-level route for a path sampled at time t.
// The hop structure is deterministic per path; the delays move with the
// sampled components:
//
//   - the access segment carries the last-mile (and bufferbloat) share,
//   - transit hops (1 per tier step) carry the transit penalty,
//   - backbone hops (1 per ~1500 km) divide the propagation delay,
//   - the datacenter edge and target terminate the path.
func Expand(p *netem.Path, src netem.Site, dstID string, t time.Time) (*Trace, error) {
	if p == nil {
		return nil, errors.New("route: nil path")
	}
	if dstID == "" {
		return nil, errors.New("route: empty destination")
	}
	b := p.Sample(t)
	tr := &Trace{Src: src.ID, Dst: dstID, At: t}
	if b.Lost {
		tr.Lost = true
		return tr, nil
	}

	cum := 0.0
	ttl := 0
	add := func(name string, kind HopKind, deltaMs float64) {
		ttl++
		cum += deltaMs
		tr.Hops = append(tr.Hops, Hop{
			TTL:          ttl,
			Name:         name,
			Kind:         kind,
			CumulativeMs: cum,
		})
	}

	// Access segment: gateway plus aggregation router split the last-mile
	// (+ bufferbloat) delay.
	accessMs := b.LastMileMs + b.BloatMs
	if src.Access == netem.AccessCore {
		add(fmt.Sprintf("core-gw.%s", src.ID), HopAccess, accessMs)
	} else {
		add(fmt.Sprintf("gw.%s", src.ID), HopAccess, accessMs*0.7)
		add(fmt.Sprintf("agg1.%s.isp", src.ID), HopAccess, accessMs*0.3)
	}

	// Transit hops: one per tier step — under-served countries traverse
	// more (and slower) intermediate networks (§4.3).
	nTransit := int(src.Tier)
	for i := 0; i < nTransit; i++ {
		add(fmt.Sprintf("transit%d.%s.net", i+1, src.ID), HopTransit, b.TransitMs/float64(nTransit))
	}

	// Backbone hops: roughly one router per 1500 km of great-circle
	// distance, sharing the propagation delay.
	nBackbone := 1 + int(p.DistanceKm()/1500)
	for i := 0; i < nBackbone; i++ {
		add(fmt.Sprintf("bb%d.%s", i+1, dstID), HopBackbone, b.PropagationMs/float64(nBackbone))
	}

	// Datacenter edge and the target VM (endpoint processing).
	add(fmt.Sprintf("edge.%s", dstID), HopEdge, 0)
	add(dstID, HopTarget, b.ProcessingMs)
	return tr, nil
}

// RTTms returns the end-to-end round trip of the trace (the last hop's
// cumulative delay).
func (tr *Trace) RTTms() (float64, error) {
	if tr.Lost {
		return 0, errors.New("route: trace lost")
	}
	if len(tr.Hops) == 0 {
		return 0, errors.New("route: empty trace")
	}
	return tr.Hops[len(tr.Hops)-1].CumulativeMs, nil
}

// SegmentMs sums the per-hop deltas of one kind.
func (tr *Trace) SegmentMs(kind HopKind) float64 {
	total := 0.0
	prev := 0.0
	for _, h := range tr.Hops {
		delta := h.CumulativeMs - prev
		prev = h.CumulativeMs
		if h.Kind == kind {
			total += delta
		}
	}
	return total
}

// Format renders the trace like a traceroute transcript.
func (tr *Trace) Format() []string {
	if tr.Lost {
		return []string{fmt.Sprintf("traceroute to %s: * * * (lost)", tr.Dst)}
	}
	lines := []string{fmt.Sprintf("traceroute to %s from %s", tr.Dst, tr.Src)}
	for _, h := range tr.Hops {
		lines = append(lines, fmt.Sprintf("%2d  %-28s %9.2f ms  (%s)", h.TTL, h.Name, h.CumulativeMs, h.Kind))
	}
	return lines
}
