package route

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/netem"
	"repro/internal/world"
)

var t0 = time.Date(2019, 9, 1, 0, 0, 0, 0, time.UTC)

func testPath(t *testing.T, access netem.Access, tier geo.Tier) (*netem.Path, netem.Site) {
	t.Helper()
	m, err := netem.NewModel(netem.DefaultConfig(), 3)
	if err != nil {
		t.Fatal(err)
	}
	src := netem.Site{
		ID:        "probe/1",
		Location:  geo.Point{Lat: 60.17, Lon: 24.94},
		Continent: geo.Europe,
		Tier:      tier,
		Access:    access,
	}
	p, err := m.Path(src, netem.Target{
		ID:        "Amazon/eu-central-1",
		Location:  geo.Point{Lat: 50.11, Lon: 8.68},
		Continent: geo.Europe,
		Private:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p, src
}

func TestExpandConsistentWithRTT(t *testing.T) {
	p, src := testPath(t, netem.AccessWired, geo.Tier1)
	for i := 0; i < 50; i++ {
		at := t0.Add(time.Duration(i) * 3 * time.Hour)
		tr, err := Expand(p, src, "Amazon/eu-central-1", at)
		if err != nil {
			t.Fatal(err)
		}
		rtt, lost := p.RTT(at)
		if tr.Lost != lost {
			t.Fatalf("trace lost=%v, RTT lost=%v", tr.Lost, lost)
		}
		if lost {
			continue
		}
		got, err := tr.RTTms()
		if err != nil {
			t.Fatal(err)
		}
		// The hop cumulative total reconstructs the end-to-end RTT exactly.
		if math.Abs(got-rtt) > 1e-9 {
			t.Fatalf("trace total %.4f != RTT %.4f", got, rtt)
		}
		// Cumulative delays are monotone non-decreasing.
		prev := 0.0
		for _, h := range tr.Hops {
			if h.CumulativeMs < prev-1e-12 {
				t.Fatalf("hop %d decreases: %.4f < %.4f", h.TTL, h.CumulativeMs, prev)
			}
			prev = h.CumulativeMs
		}
		// TTLs are sequential from 1.
		for i, h := range tr.Hops {
			if h.TTL != i+1 {
				t.Fatalf("hop %d has TTL %d", i, h.TTL)
			}
		}
		// The path terminates at the target.
		if last := tr.Hops[len(tr.Hops)-1]; last.Kind != HopTarget || last.Name != "Amazon/eu-central-1" {
			t.Fatalf("last hop = %+v", last)
		}
	}
}

func TestSegmentDecomposition(t *testing.T) {
	p, src := testPath(t, netem.AccessWireless, geo.Tier3)
	tr, err := Expand(p, src, "dst", t0.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Lost {
		t.Skip("sample lost")
	}
	b := p.Sample(t0.Add(time.Hour))
	if math.Abs(tr.SegmentMs(HopAccess)-(b.LastMileMs+b.BloatMs)) > 1e-9 {
		t.Errorf("access segment %.3f != last mile %.3f", tr.SegmentMs(HopAccess), b.LastMileMs+b.BloatMs)
	}
	if math.Abs(tr.SegmentMs(HopTransit)-b.TransitMs) > 1e-9 {
		t.Errorf("transit segment %.3f != transit %.3f", tr.SegmentMs(HopTransit), b.TransitMs)
	}
	if math.Abs(tr.SegmentMs(HopBackbone)-b.PropagationMs) > 1e-9 {
		t.Errorf("backbone segment %.3f != propagation %.3f", tr.SegmentMs(HopBackbone), b.PropagationMs)
	}
}

func TestTierAddsTransitHops(t *testing.T) {
	count := func(tier geo.Tier) int {
		p, src := testPath(t, netem.AccessWired, tier)
		tr, err := Expand(p, src, "dst", t0)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for _, h := range tr.Hops {
			if h.Kind == HopTransit {
				n++
			}
		}
		return n
	}
	if count(geo.Tier1) >= count(geo.Tier4) {
		t.Errorf("tier-1 transit hops %d >= tier-4 %d", count(geo.Tier1), count(geo.Tier4))
	}
}

func TestCoreSiteSkipsResidentialAccess(t *testing.T) {
	p, src := testPath(t, netem.AccessCore, geo.Tier1)
	tr, err := Expand(p, src, "dst", t0)
	if err != nil {
		t.Fatal(err)
	}
	access := 0
	for _, h := range tr.Hops {
		if h.Kind == HopAccess {
			access++
		}
	}
	if access != 1 {
		t.Errorf("core site has %d access hops, want 1", access)
	}
}

func TestExpandValidation(t *testing.T) {
	p, src := testPath(t, netem.AccessWired, geo.Tier1)
	if _, err := Expand(nil, src, "dst", t0); err == nil {
		t.Error("nil path accepted")
	}
	if _, err := Expand(p, src, "", t0); err == nil {
		t.Error("empty destination accepted")
	}
}

func TestTraceFormat(t *testing.T) {
	p, src := testPath(t, netem.AccessWired, geo.Tier1)
	tr, err := Expand(p, src, "dst", t0)
	if err != nil {
		t.Fatal(err)
	}
	lines := tr.Format()
	if len(lines) != len(tr.Hops)+1 {
		t.Errorf("Format lines = %d", len(lines))
	}
	if !strings.Contains(lines[0], "traceroute to dst") {
		t.Errorf("header = %q", lines[0])
	}
	lost := &Trace{Dst: "dst", Lost: true}
	if lines := lost.Format(); len(lines) != 1 || !strings.Contains(lines[0], "lost") {
		t.Errorf("lost format = %v", lines)
	}
	if _, err := lost.RTTms(); err == nil {
		t.Error("lost trace RTT accepted")
	}
	if _, err := (&Trace{}).RTTms(); err == nil {
		t.Error("empty trace RTT accepted")
	}
}

func TestLengthsByContinent(t *testing.T) {
	w, err := world.Build(world.Config{Seed: 2, Probes: 400})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Lengths(w.Platform, t0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Continents()) != 6 {
		t.Fatalf("lengths cover %d continents", len(rep.Continents()))
	}
	// §4.3: under-served regions traverse more networks: Africa's median
	// path is longer than Europe's.
	af, err := rep.MedianHops(geo.Africa)
	if err != nil {
		t.Fatal(err)
	}
	eu, err := rep.MedianHops(geo.Europe)
	if err != nil {
		t.Fatal(err)
	}
	if af <= eu {
		t.Errorf("Africa median hops %.1f <= Europe %.1f", af, eu)
	}
	if _, err := rep.MedianHops(geo.ContinentUnknown); err == nil {
		t.Error("unknown continent accepted")
	}
	if _, err := Lengths(nil, t0); err == nil {
		t.Error("nil platform accepted")
	}
}
