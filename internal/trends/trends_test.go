package trends

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func scholarFixture(t *testing.T) (*Corpus, *Crawler) {
	t.Helper()
	corpus := GenerateCorpus(1)
	srv, err := NewScholarServer(corpus)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	c, err := NewCrawler(ts.URL, ts.Client())
	if err != nil {
		t.Fatal(err)
	}
	return corpus, c
}

func TestCorpusShape(t *testing.T) {
	c := GenerateCorpus(1)
	// Cloud dwarfs edge through the whole window; both grow over time.
	for _, y := range Years() {
		cloud, err := c.Count(CloudComputing, y)
		if err != nil {
			t.Fatal(err)
		}
		edge, err := c.Count(EdgeComputing, y)
		if err != nil {
			t.Fatal(err)
		}
		if cloud < edge {
			t.Errorf("%d: cloud pubs %d < edge pubs %d", y, cloud, edge)
		}
	}
	// The cloud boom: 2019 publications far exceed 2006.
	c06, _ := c.Count(CloudComputing, 2006)
	c19, _ := c.Count(CloudComputing, 2019)
	if c19 < c06*20 {
		t.Errorf("cloud boom missing: %d -> %d", c06, c19)
	}
	// The edge surge: 2019 far exceeds 2014.
	e14, _ := c.Count(EdgeComputing, 2014)
	e19, _ := c.Count(EdgeComputing, 2019)
	if e19 < e14*10 {
		t.Errorf("edge surge missing: %d -> %d", e14, e19)
	}
	// Determinism and seed sensitivity.
	if n1, _ := GenerateCorpus(5).Count(EdgeComputing, 2018); n1 != mustCount(t, GenerateCorpus(5), EdgeComputing, 2018) {
		t.Error("corpus not deterministic")
	}
	// Errors.
	if _, err := c.Count(Term("quantum computing"), 2018); err == nil {
		t.Error("unknown term accepted")
	}
	if _, err := c.Count(EdgeComputing, 1999); err == nil {
		t.Error("out-of-window year accepted")
	}
}

func mustCount(t *testing.T, c *Corpus, term Term, year int) int {
	t.Helper()
	n, err := c.Count(term, year)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestSearchPopularityShape(t *testing.T) {
	// Cloud search peaks around 2011 and declines after; edge rises late.
	peak, _ := SearchPopularity(CloudComputing, 2011)
	late, _ := SearchPopularity(CloudComputing, 2019)
	early, _ := SearchPopularity(CloudComputing, 2005)
	if !(peak > late && peak > early) {
		t.Errorf("cloud search not peaked: 2005=%.0f 2011=%.0f 2019=%.0f", early, peak, late)
	}
	e15, _ := SearchPopularity(EdgeComputing, 2015)
	e19, _ := SearchPopularity(EdgeComputing, 2019)
	if e19 < e15*3 {
		t.Errorf("edge search surge missing: 2015=%.1f 2019=%.1f", e15, e19)
	}
	for _, y := range Years() {
		for _, term := range []Term{EdgeComputing, CloudComputing} {
			v, err := SearchPopularity(term, y)
			if err != nil {
				t.Fatal(err)
			}
			if v < 0 || v > 100 {
				t.Errorf("%s %d popularity %v out of [0,100]", term, y, v)
			}
		}
	}
	if _, err := SearchPopularity(EdgeComputing, 2050); err == nil {
		t.Error("future year accepted")
	}
	if _, err := SearchPopularity(Term("x"), 2010); err == nil {
		t.Error("unknown term accepted")
	}
}

func TestCrawlerCountsMatchCorpus(t *testing.T) {
	corpus, crawler := scholarFixture(t)
	ctx := context.Background()
	for _, y := range []int{2004, 2011, 2019} {
		for _, term := range []Term{EdgeComputing, CloudComputing} {
			want := mustCountT(t, corpus, term, y)
			got, err := crawler.Count(ctx, term, y)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("%s %d: crawled %d, corpus has %d", term, y, got, want)
			}
		}
	}
}

func mustCountT(t *testing.T, c *Corpus, term Term, year int) int {
	t.Helper()
	n, err := c.Count(term, year)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestCrawlerPagination(t *testing.T) {
	_, crawler := scholarFixture(t)
	titles, err := crawler.Titles(context.Background(), EdgeComputing, 2005, 25)
	if err != nil {
		t.Fatal(err)
	}
	// 2005 edge-computing corpus is small (CDN-era noise, ~30 papers) but
	// larger than two pages.
	if len(titles) < 20 {
		t.Fatalf("paginated %d titles", len(titles))
	}
	seen := map[string]bool{}
	for _, title := range titles {
		if !strings.Contains(title, "edge computing") {
			t.Errorf("title %q lacks the term", title)
		}
		if seen[title] {
			t.Errorf("duplicate title %q across pages", title)
		}
		seen[title] = true
	}
	if _, err := crawler.Titles(context.Background(), EdgeComputing, 2005, 0); err == nil {
		t.Error("zero limit accepted")
	}
}

func TestCrawlerErrors(t *testing.T) {
	_, crawler := scholarFixture(t)
	ctx := context.Background()
	if _, err := crawler.Count(ctx, Term("nope"), 2010); err == nil {
		t.Error("unknown term crawl succeeded")
	}
	if _, err := crawler.Count(ctx, EdgeComputing, 1900); err == nil {
		t.Error("out-of-window crawl succeeded")
	}
	if _, err := NewCrawler("", nil); err == nil {
		t.Error("empty base accepted")
	}
	// Unreachable server exhausts retries.
	dead, err := NewCrawler("http://127.0.0.1:1", &http.Client{}, WithRetries(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dead.Count(ctx, EdgeComputing, 2010); err == nil {
		t.Error("dead server crawl succeeded")
	}
}

func TestServerBadRequests(t *testing.T) {
	corpus := GenerateCorpus(1)
	srv, err := NewScholarServer(corpus)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	for _, tc := range []struct {
		path string
		want int
	}{
		{"/scholar?q=edge+computing&as_ylo=abc&as_yhi=2010", http.StatusBadRequest},
		{"/scholar?q=edge+computing&as_ylo=2010&as_yhi=2011", http.StatusBadRequest},
		{"/scholar?q=edge+computing&as_ylo=2010&as_yhi=2010&start=-1", http.StatusBadRequest},
		{"/other", http.StatusNotFound},
	} {
		resp, err := http.Get(ts.URL + tc.path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("GET %s = %d, want %d", tc.path, resp.StatusCode, tc.want)
		}
	}
	if _, err := NewScholarServer(nil); err == nil {
		t.Error("nil corpus accepted")
	}
}

func trendsFixture(t *testing.T) *TrendsClient {
	t.Helper()
	ts := httptest.NewServer(NewTrendsServer())
	t.Cleanup(ts.Close)
	tc, err := NewTrendsClient(ts.URL, ts.Client())
	if err != nil {
		t.Fatal(err)
	}
	return tc
}

func TestTrendsAPI(t *testing.T) {
	tc := trendsFixture(t)
	ctx := context.Background()
	for _, term := range []Term{EdgeComputing, CloudComputing} {
		got, err := tc.Popularity(ctx, term)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != LastYear-FirstYear+1 {
			t.Fatalf("%s series has %d years", term, len(got))
		}
		for _, y := range Years() {
			want, err := SearchPopularity(term, y)
			if err != nil {
				t.Fatal(err)
			}
			if got[y] != want {
				t.Errorf("%s %d: API %v != model %v", term, y, got[y], want)
			}
		}
	}
	// Unknown terms are a 404.
	if _, err := tc.Popularity(ctx, Term("quantum")); err == nil {
		t.Error("unknown term accepted")
	}
	// Unknown paths are a 404.
	ts := httptest.NewServer(NewTrendsServer())
	t.Cleanup(ts.Close)
	resp, err := http.Get(ts.URL + "/other")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET /other = %d", resp.StatusCode)
	}
	if _, err := NewTrendsClient("", nil); err == nil {
		t.Error("empty base accepted")
	}
}

func TestBuildSeriesFigure1(t *testing.T) {
	_, crawler := scholarFixture(t)
	s, err := BuildSeries(context.Background(), crawler, trendsFixture(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != LastYear-FirstYear+1 {
		t.Fatalf("series has %d points", len(s.Points))
	}
	// Three eras appear in order.
	eras := s.Eras()
	if eras[2004] != EraCDN {
		t.Errorf("2004 era = %s, want CDN", eras[2004])
	}
	if eras[2012] != EraCloud {
		t.Errorf("2012 era = %s, want Cloud", eras[2012])
	}
	if eras[2019] != EraEdge {
		t.Errorf("2019 era = %s, want Edge", eras[2019])
	}
	// Era transitions are monotone: CDN* Cloud* Edge*.
	order := map[Era]int{EraCDN: 0, EraCloud: 1, EraEdge: 2}
	prev := 0
	for _, y := range Years() {
		cur := order[eras[y]]
		if cur < prev {
			t.Fatalf("era regressed at %d: %s", y, eras[y])
		}
		prev = cur
	}
	if _, err := s.EraOf(1999); err == nil {
		t.Error("out-of-series year accepted")
	}
	if _, err := BuildSeries(context.Background(), nil, trendsFixture(t)); err == nil {
		t.Error("nil crawler accepted")
	}
	if _, err := BuildSeries(context.Background(), crawler, nil); err == nil {
		t.Error("nil trends client accepted")
	}
}
