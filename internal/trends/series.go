package trends

import (
	"context"
	"errors"
	"fmt"
)

// Point is one Figure 1 x-position: a year with its four series values.
type Point struct {
	Year        int     `json:"year"`
	EdgePubs    int     `json:"edge_pubs"`
	CloudPubs   int     `json:"cloud_pubs"`
	EdgeSearch  float64 `json:"edge_search"`  // 0-100
	CloudSearch float64 `json:"cloud_search"` // 0-100
}

// Era labels the three periods Figure 1 distinguishes.
type Era string

// The three eras.
const (
	EraCDN   Era = "CDN"
	EraCloud Era = "Cloud"
	EraEdge  Era = "Edge"
)

// Series is the complete Figure 1 dataset.
type Series struct {
	Points []Point `json:"points"` // ascending years
}

// BuildSeries assembles Figure 1 from its two sources the way the paper
// did: publication counts crawled from the scholar server, search interest
// fetched from the trends API.
func BuildSeries(ctx context.Context, c *Crawler, tc *TrendsClient) (*Series, error) {
	if c == nil {
		return nil, errors.New("trends: nil crawler")
	}
	if tc == nil {
		return nil, errors.New("trends: nil trends client")
	}
	edge, err := c.YearlyCounts(ctx, EdgeComputing)
	if err != nil {
		return nil, err
	}
	cloud, err := c.YearlyCounts(ctx, CloudComputing)
	if err != nil {
		return nil, err
	}
	edgeSearch, err := tc.Popularity(ctx, EdgeComputing)
	if err != nil {
		return nil, err
	}
	cloudSearch, err := tc.Popularity(ctx, CloudComputing)
	if err != nil {
		return nil, err
	}
	s := &Series{}
	for _, y := range Years() {
		s.Points = append(s.Points, Point{
			Year:        y,
			EdgePubs:    edge[y],
			CloudPubs:   cloud[y],
			EdgeSearch:  edgeSearch[y],
			CloudSearch: cloudSearch[y],
		})
	}
	return s, nil
}

// EraOf classifies one year: the CDN era before cloud interest takes off,
// the cloud era until edge interest becomes significant, the edge era
// after.
func (s *Series) EraOf(year int) (Era, error) {
	for _, p := range s.Points {
		if p.Year != year {
			continue
		}
		switch {
		case p.CloudSearch < 20 && p.EdgeSearch < 10:
			return EraCDN, nil
		case p.EdgeSearch < 15:
			return EraCloud, nil
		default:
			return EraEdge, nil
		}
	}
	return "", fmt.Errorf("trends: year %d not in series", year)
}

// Eras maps every year to its era.
func (s *Series) Eras() map[int]Era {
	out := make(map[int]Era, len(s.Points))
	for _, p := range s.Points {
		era, err := s.EraOf(p.Year)
		if err == nil {
			out[p.Year] = era
		}
	}
	return out
}
