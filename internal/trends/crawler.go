package trends

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"regexp"
	"strconv"
	"strings"
	"time"
)

// Crawler scrapes yearly result counts from a scholar-like server, with
// polite pacing and bounded retries — the operational concerns the paper's
// custom crawler [38] had to handle.
type Crawler struct {
	base    string
	hc      *http.Client
	delay   time.Duration
	retries int
}

// CrawlerOption configures a Crawler.
type CrawlerOption func(*Crawler)

// WithDelay sets the inter-request pause (politeness; default none).
func WithDelay(d time.Duration) CrawlerOption {
	return func(c *Crawler) {
		if d >= 0 {
			c.delay = d
		}
	}
}

// WithRetries sets how many times a failed fetch is retried (default 2).
func WithRetries(n int) CrawlerOption {
	return func(c *Crawler) {
		if n >= 0 {
			c.retries = n
		}
	}
}

// NewCrawler targets a server base URL.
func NewCrawler(base string, hc *http.Client, opts ...CrawlerOption) (*Crawler, error) {
	if base == "" {
		return nil, errors.New("trends: empty base URL")
	}
	if hc == nil {
		hc = http.DefaultClient
	}
	c := &Crawler{base: base, hc: hc, retries: 2}
	for _, o := range opts {
		o(c)
	}
	return c, nil
}

var aboutRe = regexp.MustCompile(`About (\d+) results`)

// fetch grabs one result page.
func (c *Crawler) fetch(ctx context.Context, term Term, year, start int) (string, error) {
	q := url.Values{}
	q.Set("q", string(term))
	q.Set("as_ylo", strconv.Itoa(year))
	q.Set("as_yhi", strconv.Itoa(year))
	if start > 0 {
		q.Set("start", strconv.Itoa(start))
	}
	u := c.base + "/scholar?" + q.Encode()
	var lastErr error
	for attempt := 0; attempt <= c.retries; attempt++ {
		if attempt > 0 || c.delay > 0 {
			select {
			case <-ctx.Done():
				return "", ctx.Err()
			case <-time.After(c.delay):
			}
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
		if err != nil {
			return "", err
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			lastErr = err
			continue
		}
		body, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
		resp.Body.Close()
		if err != nil {
			lastErr = err
			continue
		}
		if resp.StatusCode != http.StatusOK {
			lastErr = fmt.Errorf("trends: %s: %s", u, resp.Status)
			continue
		}
		return string(body), nil
	}
	return "", fmt.Errorf("trends: giving up on %s: %w", u, lastErr)
}

// Count scrapes the "About N results" header for (term, year).
func (c *Crawler) Count(ctx context.Context, term Term, year int) (int, error) {
	page, err := c.fetch(ctx, term, year, 0)
	if err != nil {
		return 0, err
	}
	m := aboutRe.FindStringSubmatch(page)
	if m == nil {
		return 0, fmt.Errorf("trends: no result count on page for %q %d", term, year)
	}
	return strconv.Atoi(m[1])
}

// Titles paginates through result pages collecting titles, up to limit.
// It exercises the pagination path the count header shortcut avoids.
func (c *Crawler) Titles(ctx context.Context, term Term, year, limit int) ([]string, error) {
	if limit <= 0 {
		return nil, fmt.Errorf("trends: non-positive limit %d", limit)
	}
	var out []string
	for start := 0; len(out) < limit; start += PageSize {
		page, err := c.fetch(ctx, term, year, start)
		if err != nil {
			return nil, err
		}
		titles := extractTitles(page)
		if len(titles) == 0 {
			break // past the last page
		}
		out = append(out, titles...)
	}
	if len(out) > limit {
		out = out[:limit]
	}
	return out, nil
}

// extractTitles pulls <h3>...</h3> contents out of a result page.
func extractTitles(page string) []string {
	var out []string
	rest := page
	for {
		i := strings.Index(rest, "<h3>")
		if i < 0 {
			return out
		}
		rest = rest[i+len("<h3>"):]
		j := strings.Index(rest, "</h3>")
		if j < 0 {
			return out
		}
		out = append(out, htmlUnescape(rest[:j]))
		rest = rest[j+len("</h3>"):]
	}
}

// htmlUnescape reverses the entities html.EscapeString produces.
func htmlUnescape(s string) string {
	r := strings.NewReplacer("&lt;", "<", "&gt;", ">", "&quot;", `"`, "&#39;", "'", "&amp;", "&")
	return r.Replace(s)
}

// YearlyCounts scrapes the full Figure 1 publication series for a term.
func (c *Crawler) YearlyCounts(ctx context.Context, term Term) (map[int]int, error) {
	out := make(map[int]int, LastYear-FirstYear+1)
	for _, y := range Years() {
		n, err := c.Count(ctx, term, y)
		if err != nil {
			return nil, err
		}
		out[y] = n
	}
	return out, nil
}
