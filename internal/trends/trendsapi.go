package trends

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
)

// TrendsServer serves the web-search-interest series over a JSON API
// shaped like the widget endpoint the real trends service exposes — the
// second data source of Figure 1 (the paper cites trends.google.com).
//
//	GET /api/widget?q=<term>  ->  {"term": "...", "points": [{"year": 2010, "value": 80.2}, ...]}
type TrendsServer struct{}

// NewTrendsServer creates the handler.
func NewTrendsServer() *TrendsServer { return &TrendsServer{} }

// widgetResponse is the wire format.
type widgetResponse struct {
	Term   string        `json:"term"`
	Points []widgetPoint `json:"points"`
}

type widgetPoint struct {
	Year  int     `json:"year"`
	Value float64 `json:"value"`
}

// ServeHTTP implements http.Handler.
func (s *TrendsServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/api/widget" {
		http.NotFound(w, r)
		return
	}
	term := Term(r.URL.Query().Get("q"))
	resp := widgetResponse{Term: string(term)}
	for _, y := range Years() {
		v, err := SearchPopularity(term, y)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		resp.Points = append(resp.Points, widgetPoint{Year: y, Value: v})
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(resp)
}

// TrendsClient fetches search-interest series from a TrendsServer.
type TrendsClient struct {
	base string
	hc   *http.Client
}

// NewTrendsClient targets a server base URL.
func NewTrendsClient(base string, hc *http.Client) (*TrendsClient, error) {
	if base == "" {
		return nil, errors.New("trends: empty base URL")
	}
	if hc == nil {
		hc = http.DefaultClient
	}
	return &TrendsClient{base: base, hc: hc}, nil
}

// Popularity fetches the yearly interest series for a term.
func (c *TrendsClient) Popularity(ctx context.Context, term Term) (map[int]float64, error) {
	u := c.base + "/api/widget?q=" + url.QueryEscape(string(term))
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("trends: %s: %s", u, resp.Status)
	}
	var wr widgetResponse
	if err := json.Unmarshal(body, &wr); err != nil {
		return nil, fmt.Errorf("trends: bad widget payload: %w", err)
	}
	if wr.Term != string(term) {
		return nil, fmt.Errorf("trends: server answered for %q, asked %q", wr.Term, term)
	}
	out := make(map[int]float64, len(wr.Points))
	for _, p := range wr.Points {
		if p.Value < 0 || p.Value > 100 {
			return nil, fmt.Errorf("trends: value %v out of [0,100] for %d", p.Value, p.Year)
		}
		out[p.Year] = p.Value
	}
	return out, nil
}
