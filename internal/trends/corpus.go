// Package trends reproduces the Figure 1 tooling: the publication corpus
// and web-search popularity series for "edge computing" vs "cloud
// computing" (2004-2019), the scholar-like result server, and the crawler
// (the paper used a custom Google Scholar crawler [38]) that scrapes yearly
// counts back out of HTML.
package trends

import (
	"fmt"
	"math"
)

// Term is a tracked search phrase.
type Term string

// The two phrases Figure 1 compares.
const (
	EdgeComputing  Term = "edge computing"
	CloudComputing Term = "cloud computing"
)

// Years covered by Figure 1.
const (
	FirstYear = 2004
	LastYear  = 2019
)

// Years returns the Figure 1 x-axis.
func Years() []int {
	out := make([]int, 0, LastYear-FirstYear+1)
	for y := FirstYear; y <= LastYear; y++ {
		out = append(out, y)
	}
	return out
}

// Corpus is a synthetic publication database with deterministic per-year
// counts following the three-era shape: a CDN-era trickle, the cloud boom
// from ~2008, and the edge surge from ~2015.
type Corpus struct {
	seed   uint64
	counts map[Term]map[int]int
}

// GenerateCorpus builds the corpus. The same seed reproduces the same
// counts.
func GenerateCorpus(seed uint64) *Corpus {
	c := &Corpus{seed: seed, counts: make(map[Term]map[int]int)}
	for _, term := range []Term{EdgeComputing, CloudComputing} {
		byYear := make(map[int]int)
		for _, y := range Years() {
			byYear[y] = c.modelCount(term, y)
		}
		c.counts[term] = byYear
	}
	return c
}

// modelCount is a logistic publication-growth model with seeded jitter.
func (c *Corpus) modelCount(term Term, year int) int {
	var base float64
	switch term {
	case CloudComputing:
		// Cloud publications take off around 2008 and saturate ~2016.
		base = 42000 / (1 + math.Exp(-0.85*float64(year-2011)))
	case EdgeComputing:
		// Edge publications stay at CDN-era noise until the 2015 surge.
		base = 30 + 14000/(1+math.Exp(-1.1*float64(year-2017)))
	default:
		return 0
	}
	// ±5% deterministic jitter so the series looks measured, not drawn.
	h := c.seed*0x9e3779b97f4a7c15 + uint64(year)*1099511628211 + hashTerm(term)
	h ^= h >> 29
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 32
	jitter := 0.95 + 0.10*float64(h%1000)/1000
	return int(base * jitter)
}

func hashTerm(t Term) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(t); i++ {
		h ^= uint64(t[i])
		h *= 1099511628211
	}
	return h
}

// Count returns the number of publications mentioning term in year.
func (c *Corpus) Count(term Term, year int) (int, error) {
	byYear, ok := c.counts[term]
	if !ok {
		return 0, fmt.Errorf("trends: unknown term %q", term)
	}
	n, ok := byYear[year]
	if !ok {
		return 0, fmt.Errorf("trends: year %d outside corpus", year)
	}
	return n, nil
}

// Title synthesizes the i-th paper title for (term, year); the scholar
// server renders these into result pages.
func (c *Corpus) Title(term Term, year, i int) string {
	return fmt.Sprintf("On %s: study %d (%d)", term, i+1, year)
}

// SearchPopularity models the Google-Trends-style web-search interest for
// term in year, normalized to 0-100 across both series. Cloud interest
// peaks mid-decade and declines; edge interest surges after 2015.
func SearchPopularity(term Term, year int) (float64, error) {
	if year < FirstYear || year > LastYear {
		return 0, fmt.Errorf("trends: year %d outside window", year)
	}
	switch term {
	case CloudComputing:
		// Rise from 2007, peak ~2011 at 100, slow decline after.
		rise := 1 / (1 + math.Exp(-1.4*float64(year-2009)))
		decay := math.Exp(-0.12 * math.Max(0, float64(year-2011)))
		return 100 * rise * decay, nil
	case EdgeComputing:
		// Negligible until ~2015, then a steady climb to ~45 by 2019.
		return 45 / (1 + math.Exp(-1.2*float64(year-2017))), nil
	default:
		return 0, fmt.Errorf("trends: unknown term %q", term)
	}
}
