package trends

import (
	"errors"
	"fmt"
	"html"
	"net/http"
	"strconv"
)

// PageSize is the number of results per scholar page.
const PageSize = 10

// maxRendered caps how many results a query will paginate through; beyond
// it, only the "About N results" header is authoritative — exactly like the
// real service.
const maxRendered = 200

// ScholarServer serves scholar-like HTML result pages over the synthetic
// corpus. The crawler scrapes it the way the paper's crawler scraped Google
// Scholar.
//
// Query interface (a subset of the real one):
//
//	GET /scholar?q=<term>&as_ylo=<year>&as_yhi=<year>&start=<offset>
type ScholarServer struct {
	corpus *Corpus
}

// NewScholarServer wraps a corpus.
func NewScholarServer(corpus *Corpus) (*ScholarServer, error) {
	if corpus == nil {
		return nil, errors.New("trends: nil corpus")
	}
	return &ScholarServer{corpus: corpus}, nil
}

// ServeHTTP implements http.Handler.
func (s *ScholarServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/scholar" {
		http.NotFound(w, r)
		return
	}
	q := r.URL.Query()
	term := Term(q.Get("q"))
	ylo, err := strconv.Atoi(q.Get("as_ylo"))
	if err != nil {
		http.Error(w, "bad as_ylo", http.StatusBadRequest)
		return
	}
	yhi, err := strconv.Atoi(q.Get("as_yhi"))
	if err != nil {
		http.Error(w, "bad as_yhi", http.StatusBadRequest)
		return
	}
	if ylo != yhi {
		http.Error(w, "only single-year windows supported", http.StatusBadRequest)
		return
	}
	start := 0
	if v := q.Get("start"); v != "" {
		if start, err = strconv.Atoi(v); err != nil || start < 0 {
			http.Error(w, "bad start", http.StatusBadRequest)
			return
		}
	}
	total, err := s.corpus.Count(term, ylo)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprintf(w, "<html><body>\n<div id=\"gs_ab_md\">About %d results</div>\n", total)
	rendered := total
	if rendered > maxRendered {
		rendered = maxRendered
	}
	for i := start; i < rendered && i < start+PageSize; i++ {
		fmt.Fprintf(w, "<div class=\"gs_r\"><h3>%s</h3></div>\n",
			html.EscapeString(s.corpus.Title(term, ylo, i)))
	}
	fmt.Fprint(w, "</body></html>\n")
}
