package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDistanceKnownPairs(t *testing.T) {
	cases := []struct {
		name   string
		a, b   Point
		wantKm float64
		tolKm  float64
	}{
		{"London-Paris", Point{51.51, -0.13}, Point{48.86, 2.35}, 344, 15},
		{"NewYork-LosAngeles", Point{40.71, -74.01}, Point{34.05, -118.24}, 3936, 50},
		{"Sydney-Auckland", Point{-33.87, 151.21}, Point{-36.85, 174.76}, 2156, 50},
		{"Helsinki-Singapore", Point{60.17, 24.94}, Point{1.35, 103.82}, 9280, 150},
		{"same-point", Point{10, 10}, Point{10, 10}, 0, 0.001},
		{"antipodal", Point{0, 0}, Point{0, 180}, math.Pi * EarthRadiusKm, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := DistanceKm(tc.a, tc.b)
			if math.Abs(got-tc.wantKm) > tc.tolKm {
				t.Errorf("DistanceKm(%v,%v) = %.1f km, want %.1f±%.1f", tc.a, tc.b, got, tc.wantKm, tc.tolKm)
			}
		})
	}
}

func TestDistanceProperties(t *testing.T) {
	clamp := func(p Point) Point {
		return Point{
			Lat: math.Mod(math.Abs(p.Lat), 90) * sign(p.Lat),
			Lon: math.Mod(math.Abs(p.Lon), 180) * sign(p.Lon),
		}
	}
	symmetric := func(a, b Point) bool {
		a, b = clamp(a), clamp(b)
		d1, d2 := DistanceKm(a, b), DistanceKm(b, a)
		return math.Abs(d1-d2) < 1e-9
	}
	if err := quick.Check(symmetric, nil); err != nil {
		t.Errorf("distance not symmetric: %v", err)
	}
	nonNegativeBounded := func(a, b Point) bool {
		a, b = clamp(a), clamp(b)
		d := DistanceKm(a, b)
		return d >= 0 && d <= math.Pi*EarthRadiusKm+1e-6
	}
	if err := quick.Check(nonNegativeBounded, nil); err != nil {
		t.Errorf("distance out of bounds: %v", err)
	}
	identity := func(a Point) bool {
		a = clamp(a)
		return DistanceKm(a, a) < 1e-9
	}
	if err := quick.Check(identity, nil); err != nil {
		t.Errorf("distance identity violated: %v", err)
	}
}

func sign(f float64) float64 {
	if f < 0 {
		return -1
	}
	return 1
}

func TestMidpoint(t *testing.T) {
	a := Point{0, 0}
	b := Point{0, 90}
	m := Midpoint(a, b)
	if math.Abs(m.Lat) > 0.01 || math.Abs(m.Lon-45) > 0.01 {
		t.Errorf("Midpoint(%v,%v) = %v, want 0,45", a, b, m)
	}
	// Midpoint is equidistant from both ends.
	da, db := DistanceKm(a, m), DistanceKm(b, m)
	if math.Abs(da-db) > 1 {
		t.Errorf("midpoint not equidistant: %.2f vs %.2f", da, db)
	}
}

func TestPointValid(t *testing.T) {
	valid := []Point{{0, 0}, {90, 180}, {-90, -180}, {45.5, -120.3}}
	for _, p := range valid {
		if !p.Valid() {
			t.Errorf("Valid(%v) = false, want true", p)
		}
	}
	invalid := []Point{{91, 0}, {-91, 0}, {0, 181}, {0, -181}, {math.NaN(), 0}, {0, math.NaN()}}
	for _, p := range invalid {
		if p.Valid() {
			t.Errorf("Valid(%v) = true, want false", p)
		}
	}
}

func TestContinentRoundTrip(t *testing.T) {
	for _, c := range Continents() {
		got, err := ParseContinent(c.Code())
		if err != nil {
			t.Fatalf("ParseContinent(%q): %v", c.Code(), err)
		}
		if got != c {
			t.Errorf("ParseContinent(%q) = %v, want %v", c.Code(), got, c)
		}
		got, err = ParseContinent(c.String())
		if err != nil {
			t.Fatalf("ParseContinent(%q): %v", c.String(), err)
		}
		if got != c {
			t.Errorf("ParseContinent(%q) = %v, want %v", c.String(), got, c)
		}
	}
	if _, err := ParseContinent("Atlantis"); err == nil {
		t.Error("ParseContinent(Atlantis) succeeded, want error")
	}
}

func TestMeasurementTargets(t *testing.T) {
	// Paper §4.1: Africa also measures to Europe, South America to North
	// America; everyone else stays within-continent.
	cases := map[Continent][]Continent{
		Africa:       {Africa, Europe},
		SouthAmerica: {SouthAmerica, NorthAmerica},
		Europe:       {Europe},
		Asia:         {Asia},
		NorthAmerica: {NorthAmerica},
		Oceania:      {Oceania},
	}
	for c, want := range cases {
		got := c.MeasurementTargets()
		if len(got) != len(want) {
			t.Errorf("%v targets = %v, want %v", c, got, want)
			continue
		}
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("%v targets = %v, want %v", c, got, want)
			}
		}
	}
	if got := ContinentUnknown.MeasurementTargets(); got != nil {
		t.Errorf("unknown continent targets = %v, want nil", got)
	}
}

func TestWorldDB(t *testing.T) {
	db := World()
	if db.Len() < 166 {
		t.Errorf("world has %d countries, paper needs at least 166", db.Len())
	}
	// Every continent must be represented.
	counts := db.CountByContinent()
	for _, c := range Continents() {
		if counts[c] == 0 {
			t.Errorf("continent %v has no countries", c)
		}
	}
	// Spot-check a few entries.
	us, ok := db.Lookup("US")
	if !ok || us.Continent != NorthAmerica || us.Tier != Tier1 {
		t.Errorf("US lookup = %+v, ok=%v", us, ok)
	}
	if _, ok := db.Lookup("ZZ"); ok {
		t.Error("Lookup(ZZ) succeeded, want miss")
	}
	// All sorted by ISO2.
	all := db.All()
	for i := 1; i < len(all); i++ {
		if all[i-1].ISO2 >= all[i].ISO2 {
			t.Fatalf("All() not sorted at %d: %s >= %s", i, all[i-1].ISO2, all[i].ISO2)
		}
	}
	// ByContinent returns only that continent.
	for _, c := range db.ByContinent(Africa) {
		if c.Continent != Africa {
			t.Errorf("ByContinent(Africa) returned %s in %v", c.ISO2, c.Continent)
		}
	}
}

func TestNewDBValidation(t *testing.T) {
	base := Country{ISO2: "AA", Name: "A", Continent: Europe, Centroid: Point{1, 1}, Tier: Tier1}
	cases := []struct {
		name   string
		mutate func(Country) Country
	}{
		{"bad iso", func(c Country) Country { c.ISO2 = "ABC"; return c }},
		{"bad centroid", func(c Country) Country { c.Centroid = Point{999, 0}; return c }},
		{"no continent", func(c Country) Country { c.Continent = ContinentUnknown; return c }},
		{"bad tier low", func(c Country) Country { c.Tier = 0; return c }},
		{"bad tier high", func(c Country) Country { c.Tier = 9; return c }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewDB([]Country{tc.mutate(base)}); err == nil {
				t.Error("NewDB accepted invalid country")
			}
		})
	}
	if _, err := NewDB([]Country{base, base}); err == nil {
		t.Error("NewDB accepted duplicate ISO2")
	}
}

func TestTierString(t *testing.T) {
	if got := Tier3.String(); got != "tier-3" {
		t.Errorf("Tier3.String() = %q", got)
	}
}
