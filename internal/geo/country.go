package geo

import (
	"fmt"
	"sort"
)

// Tier grades a country's Internet infrastructure development. It drives the
// transit-latency penalty in the network model: tier-1 countries have dense
// peering and IXPs, tier-4 countries (much of Africa, per §4.3) are severely
// under-served, seeing 150-200 ms typical cloud RTTs.
type Tier uint8

// Infrastructure tiers, best (1) to worst (4).
const (
	Tier1 Tier = 1 + iota
	Tier2
	Tier3
	Tier4
)

// String returns "tier-N".
func (t Tier) String() string { return fmt.Sprintf("tier-%d", uint8(t)) }

// Country describes one ISO-3166 country as the study's per-country unit of
// aggregation (Figure 4).
type Country struct {
	ISO2      string    // two-letter ISO-3166-1 code
	Name      string    // English short name
	Continent Continent // continental assignment used for grouping
	Centroid  Point     // approximate population-weighted centroid
	Tier      Tier      // Internet infrastructure development tier
}

// DB is an immutable set of countries indexed by ISO2 code.
type DB struct {
	byISO map[string]*Country
	all   []*Country
}

// NewDB builds a database from the supplied countries. Duplicate ISO codes
// or invalid centroids are an error.
func NewDB(countries []Country) (*DB, error) {
	db := &DB{byISO: make(map[string]*Country, len(countries))}
	for i := range countries {
		c := countries[i]
		if len(c.ISO2) != 2 {
			return nil, fmt.Errorf("geo: bad ISO2 code %q", c.ISO2)
		}
		if !c.Centroid.Valid() {
			return nil, fmt.Errorf("geo: country %s has invalid centroid %v", c.ISO2, c.Centroid)
		}
		if c.Continent == ContinentUnknown {
			return nil, fmt.Errorf("geo: country %s has no continent", c.ISO2)
		}
		if c.Tier < Tier1 || c.Tier > Tier4 {
			return nil, fmt.Errorf("geo: country %s has invalid tier %d", c.ISO2, c.Tier)
		}
		if _, dup := db.byISO[c.ISO2]; dup {
			return nil, fmt.Errorf("geo: duplicate country %s", c.ISO2)
		}
		cc := c
		db.byISO[c.ISO2] = &cc
		db.all = append(db.all, &cc)
	}
	sort.Slice(db.all, func(i, j int) bool { return db.all[i].ISO2 < db.all[j].ISO2 })
	return db, nil
}

// World returns the built-in database covering the 166 probe-hosting
// countries of the study. It panics only on a programming error in the
// embedded table, which is covered by tests.
func World() *DB {
	db, err := NewDB(worldCountries)
	if err != nil {
		panic(err)
	}
	return db
}

// Lookup returns the country for an ISO2 code.
func (db *DB) Lookup(iso2 string) (*Country, bool) {
	c, ok := db.byISO[iso2]
	return c, ok
}

// All returns every country, sorted by ISO2 code. The returned slice must
// not be modified.
func (db *DB) All() []*Country { return db.all }

// Len returns the number of countries.
func (db *DB) Len() int { return len(db.all) }

// ByContinent returns the countries of one continent, sorted by ISO2 code.
func (db *DB) ByContinent(ct Continent) []*Country {
	var out []*Country
	for _, c := range db.all {
		if c.Continent == ct {
			out = append(out, c)
		}
	}
	return out
}

// CountByContinent tallies countries per continent.
func (db *DB) CountByContinent() map[Continent]int {
	out := make(map[Continent]int)
	for _, c := range db.all {
		out[c.Continent]++
	}
	return out
}
