package geo

import "fmt"

// Continent identifies one of the six populated continents used in the
// paper's per-continent groupings (Figures 5 and 6).
type Continent uint8

// Continents in the order the paper's figures list them.
const (
	ContinentUnknown Continent = iota
	Africa
	Asia
	Europe
	NorthAmerica
	Oceania
	SouthAmerica
)

// Continents lists all known continents in display order.
func Continents() []Continent {
	return []Continent{Africa, Asia, Europe, NorthAmerica, Oceania, SouthAmerica}
}

// String returns the full continent name as used in figure legends.
func (c Continent) String() string {
	switch c {
	case Africa:
		return "Africa"
	case Asia:
		return "Asia"
	case Europe:
		return "Europe"
	case NorthAmerica:
		return "North America"
	case Oceania:
		return "Oceania"
	case SouthAmerica:
		return "South America"
	default:
		return "Unknown"
	}
}

// Code returns the two-letter continent code (AF, AS, EU, NA, OC, SA).
func (c Continent) Code() string {
	switch c {
	case Africa:
		return "AF"
	case Asia:
		return "AS"
	case Europe:
		return "EU"
	case NorthAmerica:
		return "NA"
	case Oceania:
		return "OC"
	case SouthAmerica:
		return "SA"
	default:
		return "??"
	}
}

// ParseContinent converts a two-letter code or full name into a Continent.
func ParseContinent(s string) (Continent, error) {
	switch s {
	case "AF", "Africa":
		return Africa, nil
	case "AS", "Asia":
		return Asia, nil
	case "EU", "Europe":
		return Europe, nil
	case "NA", "North America":
		return NorthAmerica, nil
	case "OC", "Oceania":
		return Oceania, nil
	case "SA", "South America", "Latin America":
		return SouthAmerica, nil
	}
	return ContinentUnknown, fmt.Errorf("geo: unknown continent %q", s)
}

// MeasurementTargets returns the continents whose datacenters probes on
// continent c measure to. Per the paper's methodology (§4.1), probes measure
// within their own continent; probes in continents with low datacenter
// density (Africa and South America) additionally measure to Europe and
// North America respectively.
func (c Continent) MeasurementTargets() []Continent {
	switch c {
	case Africa:
		return []Continent{Africa, Europe}
	case SouthAmerica:
		return []Continent{SouthAmerica, NorthAmerica}
	case ContinentUnknown:
		return nil
	default:
		return []Continent{c}
	}
}
