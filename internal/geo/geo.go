// Package geo provides the geographic substrate for the measurement study:
// coordinates, great-circle distances, a country database with centroids,
// continents, and the continent-adjacency rules used by the paper's
// measurement methodology (probes measure to datacenters within the same
// continent, plus adjacent continents for under-served regions).
package geo

import (
	"fmt"
	"math"
)

// EarthRadiusKm is the mean Earth radius used for great-circle distances.
const EarthRadiusKm = 6371.0

// Point is a geographic coordinate in decimal degrees.
type Point struct {
	Lat float64 // latitude, [-90, 90]
	Lon float64 // longitude, [-180, 180]
}

// Valid reports whether the point lies within geographic bounds.
func (p Point) Valid() bool {
	return p.Lat >= -90 && p.Lat <= 90 && p.Lon >= -180 && p.Lon <= 180 &&
		!math.IsNaN(p.Lat) && !math.IsNaN(p.Lon)
}

// String formats the point as "lat,lon" with 4 decimal places.
func (p Point) String() string {
	return fmt.Sprintf("%.4f,%.4f", p.Lat, p.Lon)
}

// DistanceKm returns the great-circle distance between a and b in
// kilometers, computed with the haversine formula.
func DistanceKm(a, b Point) float64 {
	const degToRad = math.Pi / 180
	lat1 := a.Lat * degToRad
	lat2 := b.Lat * degToRad
	dLat := (b.Lat - a.Lat) * degToRad
	dLon := (b.Lon - a.Lon) * degToRad

	sinLat := math.Sin(dLat / 2)
	sinLon := math.Sin(dLon / 2)
	h := sinLat*sinLat + math.Cos(lat1)*math.Cos(lat2)*sinLon*sinLon
	if h > 1 {
		h = 1
	}
	return 2 * EarthRadiusKm * math.Asin(math.Sqrt(h))
}

// Midpoint returns the great-circle midpoint between a and b. It is used by
// the latency model to route inter-continental paths through submarine-cable
// hubs.
func Midpoint(a, b Point) Point {
	const degToRad = math.Pi / 180
	const radToDeg = 180 / math.Pi
	lat1, lon1 := a.Lat*degToRad, a.Lon*degToRad
	lat2 := b.Lat * degToRad
	dLon := (b.Lon - a.Lon) * degToRad

	bx := math.Cos(lat2) * math.Cos(dLon)
	by := math.Cos(lat2) * math.Sin(dLon)
	lat := math.Atan2(math.Sin(lat1)+math.Sin(lat2),
		math.Sqrt((math.Cos(lat1)+bx)*(math.Cos(lat1)+bx)+by*by))
	lon := lon1 + math.Atan2(by, math.Cos(lat1)+bx)
	return Point{Lat: lat * radToDeg, Lon: normalizeLon(lon * radToDeg)}
}

func normalizeLon(lon float64) float64 {
	for lon > 180 {
		lon -= 360
	}
	for lon < -180 {
		lon += 360
	}
	return lon
}
