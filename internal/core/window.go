package core

import (
	"repro/internal/colf"
	"repro/internal/geo"
	"repro/internal/results"
	"repro/internal/stats"
)

// WindowCDFPass accumulates the per-continent distribution of every
// delivered RTT the scan admits. It carries no window logic of its own:
// the caller expresses the window as a scan predicate, so zone-map
// pushdown skips blocks wholly outside it and this pass only ever sees
// matching rows — the serving layer's /cdf endpoint runs exactly this
// pass under a Since/Until predicate.
type WindowCDFPass struct {
	idx         *Index
	byContinent map[geo.Continent]*stats.Dist
}

// NewWindowCDFPass builds the pass.
func NewWindowCDFPass(idx *Index) *WindowCDFPass {
	return &WindowCDFPass{idx: idx, byContinent: make(map[geo.Continent]*stats.Dist)}
}

func (p *WindowCDFPass) observe(probeID int, rtt float64) error {
	ct, ok := p.idx.Continent(probeID)
	if !ok {
		return nil
	}
	d := p.byContinent[ct]
	if d == nil {
		d = &stats.Dist{}
		p.byContinent[ct] = d
	}
	return d.Add(rtt)
}

// Observe implements Pass.
func (p *WindowCDFPass) Observe(s results.Sample) error {
	if s.Lost || !p.idx.Known(s.ProbeID) {
		return nil
	}
	return p.observe(s.ProbeID, s.RTTms)
}

// Merge implements Pass. Continent distributions back rank-based
// queries only, so append-order differences between workers cannot
// change a quantile or CDF value.
func (p *WindowCDFPass) Merge(other Pass) error {
	o, ok := other.(*WindowCDFPass)
	if !ok {
		return mergeTypeError("WindowCDFPass", other)
	}
	for ct, od := range o.byContinent {
		d := p.byContinent[ct]
		if d == nil {
			d = &stats.Dist{}
			p.byContinent[ct] = d
		}
		if err := d.Merge(od); err != nil {
			return err
		}
	}
	return nil
}

// Columns implements scan.BlockPass: probe, RTT and loss are always
// decoded, so no optional columns are needed.
func (p *WindowCDFPass) Columns() colf.ColumnSet { return 0 }

// ObserveBlock implements scan.BlockPass. The continent and its
// destination distribution resolve once per probe run instead of once
// per row.
func (p *WindowCDFPass) ObserveBlock(blk *colf.Block) error {
	lastProbe := 0
	var d *stats.Dist
	for i, probe := range blk.Probe {
		if blk.Lost[i] {
			continue
		}
		if probe != lastProbe {
			lastProbe = probe
			d = nil
			if p.idx.Known(probe) {
				if ct, ok := p.idx.Continent(probe); ok {
					if d = p.byContinent[ct]; d == nil {
						d = &stats.Dist{}
						p.byContinent[ct] = d
					}
				}
			}
		}
		if d == nil {
			continue
		}
		if err := d.Add(blk.RTT[i]); err != nil {
			return err
		}
	}
	return nil
}

// Report wraps the accumulated distributions. An empty window is a
// legitimate result (no matching samples), not an error — the report
// simply lists no continents.
func (p *WindowCDFPass) Report() (*CDFReport, error) {
	return &CDFReport{byContinent: p.byContinent}, nil
}
