package core_test

import (
	"context"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"repro/internal/atlas"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/results"
	"repro/internal/snap"
	"repro/internal/world"
)

// BenchmarkAllFiguresLegacy measures the pre-fusion cost of a full figure
// regeneration: one sequential scan of the stored dataset per analysis
// (seven scans total, decoding through encoding/json each time).
func BenchmarkAllFiguresLegacy(b *testing.B) {
	store, w, cfg := fileDataset(b)
	info, err := os.Stat(store.SamplesPath())
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(7 * info.Size())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Proximity(store, w.Index); err != nil {
			b.Fatal(err)
		}
		if _, err := core.MinRTTByProbe(store, w.Index); err != nil {
			b.Fatal(err)
		}
		if _, err := core.FullDistribution(store, w.Index); err != nil {
			b.Fatal(err)
		}
		if _, err := core.LastMile(store, w.Index, cfg.Start, 7*24*time.Hour); err != nil {
			b.Fatal(err)
		}
		if _, err := core.LastMileSignificance(store, w.Index); err != nil {
			b.Fatal(err)
		}
		if _, err := core.Diurnal(store, w.Index); err != nil {
			b.Fatal(err)
		}
		if _, err := core.ProviderComparison(store, w.Index); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIncrementalAppend measures re-analysis after one 3-hour round
// is appended to the stored 30-day binary campaign: a cold full rescan
// versus a snapshot-resumed scan that decodes only the appended blocks.
// The resumed path must stay a strict delta scan — the benchmark fails
// if it decodes more than a tenth of the store's blocks.
func BenchmarkIncrementalAppend(b *testing.B) {
	src, w, cfg := fileDatasetBinary(b)
	ctx := context.Background()

	// Work on a copy: appending must not pollute the shared fixture.
	dir := b.TempDir()
	for _, name := range []string{"meta.json", "samples.bin"} {
		data, err := os.ReadFile(filepath.Join(filepath.Dir(src.SamplesPath()), name))
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			b.Fatal(err)
		}
	}
	store, err := results.Open(dir)
	if err != nil {
		b.Fatal(err)
	}
	snapPath := store.SnapshotPath()

	// Snapshot the 30-day prefix, then append one more round past the
	// campaign window.
	sm := snap.NewMetrics(obs.NewRegistry())
	_, seedSt, err := core.ScanStoreSnap(ctx, store, w.Index, cfg.Start, 7*24*time.Hour, 0, nil,
		core.SnapshotOptions{Path: snapPath, Metrics: sm})
	if err != nil {
		b.Fatal(err)
	}
	pristine, err := os.ReadFile(snapPath)
	if err != nil {
		b.Fatal(err)
	}
	extraCfg := cfg
	extraCfg.Start, extraCfg.End = cfg.End, cfg.End.Add(cfg.Interval)
	var extra []results.Sample
	if _, err := w.Platform.RunCampaign(ctx, extraCfg, func(s results.Sample) error {
		extra = append(extra, s)
		return nil
	}); err != nil {
		b.Fatal(err)
	}
	appendSamples(b, store, extra)
	total := seedSt.Samples + uint64(len(extra))

	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_, st, err := core.ScanStore(ctx, store, w.Index, cfg.Start, 7*24*time.Hour, 0, nil)
			if err != nil {
				b.Fatal(err)
			}
			if st.Samples != total {
				b.Fatalf("cold scan saw %d samples, want %d", st.Samples, total)
			}
		}
		b.ReportMetric(float64(total)*float64(b.N)/b.Elapsed().Seconds(), "samples/s")
	})

	b.Run("snapshot", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			if err := os.WriteFile(snapPath, pristine, 0o644); err != nil {
				b.Fatal(err)
			}
			sm := snap.NewMetrics(obs.NewRegistry())
			b.StartTimer()
			_, st, err := core.ScanStoreSnap(ctx, store, w.Index, cfg.Start, 7*24*time.Hour, 0, nil,
				core.SnapshotOptions{Path: snapPath, Metrics: sm, RefreshFactor: core.DefaultRefreshFactor})
			b.StopTimer()
			if err != nil {
				b.Fatal(err)
			}
			if sm.Hits.Value() != 1 || sm.Invalidations.Value() != 0 {
				b.Fatalf("resumed scan counters: hit=%d invalid=%d", sm.Hits.Value(), sm.Invalidations.Value())
			}
			// One appended round sits far below the refresh gate, so the
			// snapshot rewrite is deferred to a later, larger delta.
			if sm.Writes.Value() != 0 {
				b.Fatalf("resumed scan rewrote the snapshot below the refresh gate")
			}
			if st.BlocksRead != st.BlocksTotal-st.PrefixBlocks {
				b.Fatalf("resumed scan decoded %d blocks, delta is %d", st.BlocksRead, st.BlocksTotal-st.PrefixBlocks)
			}
			if 10*st.BlocksRead > st.BlocksTotal {
				b.Fatalf("resumed scan decoded %d of %d blocks; not a delta scan", st.BlocksRead, st.BlocksTotal)
			}
			b.StartTimer()
		}
		b.ReportMetric(float64(total)*float64(b.N)/b.Elapsed().Seconds(), "samples/s")
	})
}

// BenchmarkAllFiguresFused measures the same workload as one fused
// parallel scan: every pass fed from a single pass over the file, decoded
// by the fast-path decoder across GOMAXPROCS workers.
func BenchmarkAllFiguresFused(b *testing.B) {
	benchAllFiguresFused(b, fileDataset)
}

// BenchmarkAllFiguresFusedBinary is the same fused scan over the
// binary twin of the store — the configuration the batch kernels
// target: column arrays feed ObserveBlock directly, with no per-row
// Sample materialization.
func BenchmarkAllFiguresFusedBinary(b *testing.B) {
	benchAllFiguresFused(b, fileDatasetBinary)
}

func benchAllFiguresFused(b *testing.B, dataset func(testing.TB) (*results.Store, *world.World, atlas.CampaignConfig)) {
	store, w, cfg := dataset(b)
	info, err := os.Stat(store.SamplesPath())
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(info.Size())
	b.ReportAllocs()
	b.ResetTimer()
	var samples uint64
	for i := 0; i < b.N; i++ {
		_, st, err := core.ScanStore(context.Background(), store, w.Index,
			cfg.Start, 7*24*time.Hour, runtime.GOMAXPROCS(0), nil)
		if err != nil {
			b.Fatal(err)
		}
		samples = st.Samples
	}
	b.StopTimer()
	b.ReportMetric(float64(samples)*float64(b.N)/b.Elapsed().Seconds(), "samples/s")
}
