package core_test

import (
	"context"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
)

// BenchmarkAllFiguresLegacy measures the pre-fusion cost of a full figure
// regeneration: one sequential scan of the stored dataset per analysis
// (seven scans total, decoding through encoding/json each time).
func BenchmarkAllFiguresLegacy(b *testing.B) {
	store, w, cfg := fileDataset(b)
	info, err := os.Stat(store.SamplesPath())
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(7 * info.Size())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Proximity(store, w.Index); err != nil {
			b.Fatal(err)
		}
		if _, err := core.MinRTTByProbe(store, w.Index); err != nil {
			b.Fatal(err)
		}
		if _, err := core.FullDistribution(store, w.Index); err != nil {
			b.Fatal(err)
		}
		if _, err := core.LastMile(store, w.Index, cfg.Start, 7*24*time.Hour); err != nil {
			b.Fatal(err)
		}
		if _, err := core.LastMileSignificance(store, w.Index); err != nil {
			b.Fatal(err)
		}
		if _, err := core.Diurnal(store, w.Index); err != nil {
			b.Fatal(err)
		}
		if _, err := core.ProviderComparison(store, w.Index); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAllFiguresFused measures the same workload as one fused
// parallel scan: every pass fed from a single pass over the file, decoded
// by the fast-path decoder across GOMAXPROCS workers.
func BenchmarkAllFiguresFused(b *testing.B) {
	store, w, cfg := fileDataset(b)
	info, err := os.Stat(store.SamplesPath())
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(info.Size())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.ScanStore(context.Background(), store, w.Index,
			cfg.Start, 7*24*time.Hour, runtime.GOMAXPROCS(0), nil); err != nil {
			b.Fatal(err)
		}
	}
}
