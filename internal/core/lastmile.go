package core

import (
	"errors"
	"time"

	"repro/internal/results"
	"repro/internal/stats"
)

// LastMileReport is Figure 7: wired vs wireless RTT over the measurement
// period, from tag-filtered probe sets (§4.3).
type LastMileReport struct {
	Wired    []stats.SeriesPoint `json:"wired"`
	Wireless []stats.SeriesPoint `json:"wireless"`
}

// LastMile bins the delivered nearest-region samples of wired- and
// wireless-tagged probes into windows of the given width and reports
// per-bin medians/quartiles. Following the paper's methodology, only probes
// "deployed in similar regions in both sets" enter the comparison: we keep
// tier-1/tier-2 countries, where the access link rather than the transit
// path dominates the difference.
// It is a single-pass wrapper over LastMilePass, which fuses the former
// separate nearest-region scan into the same pass.
func LastMile(src results.Source, idx *Index, start time.Time, binWidth time.Duration) (*LastMileReport, error) {
	if src == nil || idx == nil {
		return nil, errors.New("analysis: nil source or index")
	}
	p, err := NewLastMilePass(idx, start, binWidth)
	if err != nil {
		return nil, err
	}
	if err := RunPasses(src, p); err != nil {
		return nil, err
	}
	return p.Report()
}

// MedianRatio returns the campaign-wide wireless/wired ratio of the median
// bin medians — the paper's "~2.5x longer" headline number.
func (r *LastMileReport) MedianRatio() (float64, error) {
	wired, err := medianOfMedians(r.Wired)
	if err != nil {
		return 0, err
	}
	wireless, err := medianOfMedians(r.Wireless)
	if err != nil {
		return 0, err
	}
	if wired <= 0 {
		return 0, errors.New("analysis: non-positive wired median")
	}
	return wireless / wired, nil
}

// AddedLatencyMs returns the absolute extra latency of wireless access —
// the paper cites 10-40 ms of added last-mile delay.
func (r *LastMileReport) AddedLatencyMs() (float64, error) {
	wired, err := medianOfMedians(r.Wired)
	if err != nil {
		return 0, err
	}
	wireless, err := medianOfMedians(r.Wireless)
	if err != nil {
		return 0, err
	}
	return wireless - wired, nil
}

func medianOfMedians(points []stats.SeriesPoint) (float64, error) {
	var d stats.Dist
	for _, p := range points {
		if err := d.Add(p.Median); err != nil {
			return 0, err
		}
	}
	return d.Median()
}

// LastMileSignificance runs a two-sample Kolmogorov-Smirnov test on the
// wired and wireless nearest-region RTT populations (same filtering as
// Figure 7), confirming the gap is a distributional difference and not a
// binning artifact.
func LastMileSignificance(src results.Source, idx *Index) (stats.KSResult, error) {
	if src == nil || idx == nil {
		return stats.KSResult{}, errors.New("core: nil source or index")
	}
	p := newLastMileAccum(idx)
	if err := RunPasses(src, p); err != nil {
		return stats.KSResult{}, err
	}
	return p.Significance()
}
