package core

import (
	"context"
	"testing"
	"time"

	"repro/internal/atlas"
	"repro/internal/cloud"
	"repro/internal/geo"
	"repro/internal/netem"
	"repro/internal/probe"
	"repro/internal/results"
)

// fixture bundles a generated campaign dataset with its index.
type fixture struct {
	pop *probe.Population
	idx *Index
	mem *results.Memory
	cfg atlas.CampaignConfig
}

var cached *fixture

// dataset builds (once) a month-long campaign over ~600 probes.
func dataset(t testing.TB) *fixture {
	t.Helper()
	if cached != nil {
		return cached
	}
	db := geo.World()
	cat, err := cloud.Deployment(db)
	if err != nil {
		t.Fatal(err)
	}
	gen := probe.DefaultGenConfig()
	gen.Count = 1500
	pop, err := probe.Generate(db, gen)
	if err != nil {
		t.Fatal(err)
	}
	model, err := netem.NewModel(netem.DefaultConfig(), 11)
	if err != nil {
		t.Fatal(err)
	}
	platform, err := atlas.NewPlatform(pop, cat, model)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := NewIndex(pop, db)
	if err != nil {
		t.Fatal(err)
	}
	var mem results.Memory
	cfg := atlas.TestCampaign()
	if _, err := platform.RunCampaign(context.Background(), cfg, mem.Add); err != nil {
		t.Fatal(err)
	}
	cached = &fixture{pop: pop, idx: idx, mem: &mem, cfg: cfg}
	return cached
}

func TestIndexValidation(t *testing.T) {
	f := dataset(t)
	if _, err := NewIndex(nil, geo.World()); err == nil {
		t.Error("nil population accepted")
	}
	if _, err := NewIndex(f.pop, nil); err == nil {
		t.Error("nil db accepted")
	}
	// Privileged probes are not indexed.
	for _, p := range f.pop.All() {
		if p.Privileged() && f.idx.Known(p.ID) {
			t.Fatalf("privileged probe %d indexed", p.ID)
		}
		if !p.Privileged() && !f.idx.Known(p.ID) {
			t.Fatalf("public probe %d missing from index", p.ID)
		}
	}
	if f.idx.CountryName("DE") != "Germany" {
		t.Errorf("CountryName(DE) = %q", f.idx.CountryName("DE"))
	}
	if f.idx.CountryName("ZZ") != "ZZ" {
		t.Errorf("unknown country name = %q", f.idx.CountryName("ZZ"))
	}
}

func TestThresholds(t *testing.T) {
	ths := Thresholds()
	if len(ths) != 3 || ths[0].Ms != MTPms || ths[1].Ms != PLms || ths[2].Ms != HRTms {
		t.Errorf("Thresholds() = %v", ths)
	}
	if got := Supports(5); len(got) != 3 {
		t.Errorf("5ms supports %v", got)
	}
	if got := Supports(50); len(got) != 2 || got[0].Name != "PL" {
		t.Errorf("50ms supports %v", got)
	}
	if got := Supports(300); len(got) != 0 {
		t.Errorf("300ms supports %v", got)
	}
}

func TestBandOf(t *testing.T) {
	cases := map[float64]Band{
		5: BandSub10, 9.99: BandSub10, 10: Band10to20, 19.9: Band10to20,
		20: Band20to100, 99: Band20to100, 100: BandOver100, 500: BandOver100,
	}
	for ms, want := range cases {
		if got := BandOf(ms); got != want {
			t.Errorf("BandOf(%v) = %v, want %v", ms, got, want)
		}
	}
	if BandUnknown.String() != "no-data" || BandSub10.String() != "<10ms" {
		t.Error("Band.String mismatch")
	}
}

func TestProximityFigure4(t *testing.T) {
	f := dataset(t)
	rep, err := Proximity(f.mem, f.idx)
	if err != nil {
		t.Fatal(err)
	}
	nCountries := len(rep.Rows)
	if nCountries < 150 {
		t.Fatalf("proximity covers %d countries, want most of the world", nCountries)
	}
	// Figure 4 shape: a solid block of countries under 10 ms (paper: 32),
	// another tranche in 10-20 (paper: 21), and only a small set (mostly
	// Africa; paper: 16) beyond PL.
	bands := rep.CountByBand()
	if bands[BandSub10] < 10 {
		t.Errorf("only %d countries < 10ms", bands[BandSub10])
	}
	if bands[Band10to20] < 5 {
		t.Errorf("only %d countries in 10-20ms", bands[Band10to20])
	}
	over := bands[BandOver100]
	if over == 0 || over > nCountries/3 {
		t.Errorf("%d countries >= 100ms, want a small non-zero tail", over)
	}
	// DC-hosting countries must be in the best band.
	for _, iso := range []string{"DE", "US", "JP", "SG"} {
		row, ok := rep.Lookup(iso)
		if !ok {
			t.Fatalf("no proximity row for %s", iso)
		}
		if row.Band != BandSub10 {
			t.Errorf("%s min=%.1f band=%s, want <10ms (hosts datacenters)", iso, row.MinRTTms, row.Band)
		}
	}
	// The >=100ms tail is dominated by Africa.
	afOver := 0
	for _, row := range rep.Rows {
		if row.Band == BandOver100 && row.Continent == geo.Africa {
			afOver++
		}
	}
	if afOver*2 < over {
		t.Errorf("only %d/%d over-100ms countries are African", afOver, over)
	}
	// Rows are sorted ascending.
	for i := 1; i < len(rep.Rows); i++ {
		if rep.Rows[i-1].MinRTTms > rep.Rows[i].MinRTTms {
			t.Fatal("rows not sorted")
		}
	}
	if lines := rep.Format(); len(lines) != nCountries {
		t.Errorf("Format produced %d lines", len(lines))
	}
	if got := rep.CountWithin(100); got != nCountries-over {
		t.Errorf("CountWithin(100) = %d, want %d", got, nCountries-over)
	}
}

func TestMinRTTFigure5(t *testing.T) {
	f := dataset(t)
	rep, err := MinRTTByProbe(f.mem, f.idx)
	if err != nil {
		t.Fatal(err)
	}
	// All six continents appear.
	if got := len(rep.Continents()); got != 6 {
		t.Fatalf("CDF covers %d continents", got)
	}
	// Figure 5 shape: most EU and NA probes reach a cloud within MTP-ish
	// latency; Oceania within 50 ms; Africa/Latin America mostly within PL.
	eu, err := rep.FractionWithin(geo.Europe, MTPms)
	if err != nil {
		t.Fatal(err)
	}
	na, err := rep.FractionWithin(geo.NorthAmerica, MTPms)
	if err != nil {
		t.Fatal(err)
	}
	if eu < 0.55 {
		t.Errorf("EU within MTP = %.2f, paper reports ~0.8", eu)
	}
	// NA lands lower than the paper's ~0.8 because the census floor keeps
	// Caribbean/Central-American probes over-represented relative to the
	// real Atlas; the shape (NA far ahead of Africa/South America) holds.
	if na < 0.45 {
		t.Errorf("NA within MTP = %.2f, paper reports ~0.8", na)
	}
	oc, err := rep.FractionWithin(geo.Oceania, 50)
	if err != nil {
		t.Fatal(err)
	}
	if oc < 0.7 {
		t.Errorf("Oceania within 50ms = %.2f, paper reports ~1.0", oc)
	}
	af, err := rep.FractionWithin(geo.Africa, PLms)
	if err != nil {
		t.Fatal(err)
	}
	sa, err := rep.FractionWithin(geo.SouthAmerica, PLms)
	if err != nil {
		t.Fatal(err)
	}
	if af < 0.5 || af > 0.98 {
		t.Errorf("Africa within PL = %.2f, paper reports ~0.75", af)
	}
	if sa < 0.6 {
		t.Errorf("South America within PL = %.2f, paper reports ~0.75+", sa)
	}
	// Ordering: Africa is the worst-connected continent.
	afMed, err := rep.Quantile(geo.Africa, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	euMed, err := rep.Quantile(geo.Europe, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if afMed < euMed*2 {
		t.Errorf("Africa median %.1f not clearly worse than Europe %.1f", afMed, euMed)
	}
	// Curve output matches FractionWithin.
	curve, err := rep.Curve(geo.Europe, []float64{MTPms})
	if err != nil || len(curve) != 1 || curve[0].P != eu {
		t.Errorf("Curve = %v, %v", curve, err)
	}
}

func TestFullDistributionFigure6(t *testing.T) {
	f := dataset(t)
	rep, err := FullDistribution(f.mem, f.idx)
	if err != nil {
		t.Fatal(err)
	}
	// Figure 6 shape: >75% of NA/EU/OC samples below PL; the NA/EU top
	// quartile supports MTP.
	for _, ct := range []geo.Continent{geo.NorthAmerica, geo.Europe, geo.Oceania} {
		frac, err := rep.FractionWithin(ct, PLms)
		if err != nil {
			t.Fatal(err)
		}
		if frac < 0.75 {
			t.Errorf("%v samples within PL = %.2f, paper reports > 0.75", ct, frac)
		}
	}
	for _, ct := range []geo.Continent{geo.NorthAmerica, geo.Europe} {
		p25, err := rep.Quantile(ct, 0.25)
		if err != nil {
			t.Fatal(err)
		}
		if p25 > MTPms*1.5 {
			t.Errorf("%v p25 = %.1f ms, paper reports top quartile within MTP", ct, p25)
		}
	}
	// Africa is the worst; only a fraction of samples satisfy PL.
	af, err := rep.FractionWithin(geo.Africa, PLms)
	if err != nil {
		t.Fatal(err)
	}
	eu, err := rep.FractionWithin(geo.Europe, PLms)
	if err != nil {
		t.Fatal(err)
	}
	if af >= eu {
		t.Errorf("Africa (%.2f) not worse than Europe (%.2f)", af, eu)
	}
	// Full distribution sits at or above the per-probe minimum curve.
	minRep, err := MinRTTByProbe(f.mem, f.idx)
	if err != nil {
		t.Fatal(err)
	}
	for _, ct := range rep.Continents() {
		fullMed, err := rep.Quantile(ct, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		minMed, err := minRep.Quantile(ct, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		if fullMed < minMed {
			t.Errorf("%v: full median %.1f below min-RTT median %.1f", ct, fullMed, minMed)
		}
	}
}

func TestLastMileFigure7(t *testing.T) {
	f := dataset(t)
	rep, err := LastMile(f.mem, f.idx, f.cfg.Start, 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Wired) < 25 || len(rep.Wireless) < 25 {
		t.Fatalf("series too short: wired=%d wireless=%d", len(rep.Wired), len(rep.Wireless))
	}
	ratio, err := rep.MedianRatio()
	if err != nil {
		t.Fatal(err)
	}
	// §4.3: wireless takes ~2.5x longer.
	if ratio < 1.5 || ratio > 4.5 {
		t.Errorf("wireless/wired ratio = %.2f, paper reports ~2.5", ratio)
	}
	added, err := rep.AddedLatencyMs()
	if err != nil {
		t.Fatal(err)
	}
	// §4.3: 10-40 ms added latency over wireless last miles.
	if added < 8 || added > 60 {
		t.Errorf("wireless adds %.1f ms, paper reports 10-40", added)
	}
	// Wireless is consistently worse day by day, not just on average.
	worse := 0
	nDays := len(rep.Wired)
	if len(rep.Wireless) < nDays {
		nDays = len(rep.Wireless)
	}
	for i := 0; i < nDays; i++ {
		if rep.Wireless[i].Median > rep.Wired[i].Median {
			worse++
		}
	}
	if float64(worse)/float64(nDays) < 0.9 {
		t.Errorf("wireless worse on only %d/%d days", worse, nDays)
	}
}

func TestAnalysisInputValidation(t *testing.T) {
	f := dataset(t)
	if _, err := Proximity(nil, f.idx); err == nil {
		t.Error("nil source accepted")
	}
	if _, err := MinRTTByProbe(f.mem, nil); err == nil {
		t.Error("nil index accepted")
	}
	if _, err := FullDistribution(nil, nil); err == nil {
		t.Error("nil everything accepted")
	}
	if _, err := LastMile(f.mem, f.idx, f.cfg.Start, 0); err == nil {
		t.Error("zero bin width accepted")
	}
	var empty results.Memory
	if _, err := Proximity(&empty, f.idx); err == nil {
		t.Error("empty dataset accepted")
	}
	if _, err := MinRTTByProbe(&empty, f.idx); err == nil {
		t.Error("empty dataset accepted")
	}
	if _, err := FullDistribution(&empty, f.idx); err == nil {
		t.Error("empty dataset accepted")
	}
}

func TestAccessClassString(t *testing.T) {
	if AccessWired.String() != "wired" || AccessWireless.String() != "wireless" || AccessOther.String() != "other" {
		t.Error("AccessClass.String mismatch")
	}
}

func TestLastMileSignificance(t *testing.T) {
	f := dataset(t)
	res, err := LastMileSignificance(f.mem, f.idx)
	if err != nil {
		t.Fatal(err)
	}
	// The wired/wireless gap is a real distributional difference.
	if !res.Different(0.001) {
		t.Errorf("wired vs wireless not significant: D=%.3f p=%.4f", res.D, res.P)
	}
	if res.D < 0.3 {
		t.Errorf("KS statistic %.3f implausibly small for a 2.5x gap", res.D)
	}
	if _, err := LastMileSignificance(nil, f.idx); err == nil {
		t.Error("nil source accepted")
	}
	if _, err := LastMileSignificance(f.mem, nil); err == nil {
		t.Error("nil index accepted")
	}
}

func TestDiurnalProfile(t *testing.T) {
	f := dataset(t)
	rep, err := Diurnal(f.mem, f.idx)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for h := 0; h < 24; h++ {
		total += rep.Counts[h]
	}
	if total == 0 {
		t.Fatal("no samples binned")
	}
	// The model's evening congestion peak (§4.3): the peak hour falls in
	// the local afternoon/evening, the trough overnight/morning, and the
	// swing is visible.
	peakHour, peak := rep.Peak()
	troughHour, trough := rep.Trough()
	if peakHour < 10 || peakHour > 22 {
		t.Errorf("peak at %dh (%.1fms), want afternoon/evening", peakHour, peak)
	}
	if troughHour >= 10 && troughHour <= 22 {
		t.Errorf("trough at %dh (%.1fms), want overnight", troughHour, trough)
	}
	if amp := rep.Amplitude(); amp < 1.02 {
		t.Errorf("diurnal amplitude = %.3f, want a visible swing", amp)
	}
	if lines := rep.Format(); len(lines) < 20 {
		t.Errorf("Format lines = %d", len(lines))
	}
	if _, err := Diurnal(nil, f.idx); err == nil {
		t.Error("nil source accepted")
	}
	var empty results.Memory
	if _, err := Diurnal(&empty, f.idx); err == nil {
		t.Error("empty dataset accepted")
	}
}
