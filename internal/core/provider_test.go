package core

import (
	"testing"

	"repro/internal/results"
)

func TestProviderComparison(t *testing.T) {
	f := dataset(t)
	rep, err := ProviderComparison(f.mem, f.idx)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 7 {
		t.Fatalf("compared %d providers, want 7", len(rep.Rows))
	}
	// Rows are sorted by median.
	for i := 1; i < len(rep.Rows); i++ {
		if rep.Rows[i-1].Summary.Median > rep.Rows[i].Summary.Median {
			t.Fatal("rows not sorted by median")
		}
	}
	for _, row := range rep.Rows {
		if row.Summary.N == 0 {
			t.Errorf("%s has no samples", row.Provider)
		}
		if row.LossRate < 0 || row.LossRate > 0.2 {
			t.Errorf("%s loss rate %.3f implausible", row.Provider, row.LossRate)
		}
	}
	// §4.1 shape: on comparable geography (both with broad EU/NA/Asia
	// coverage), the private backbones of Amazon and Google beat the
	// public-transit Vultr and Linode. Compare the best private median
	// against the worst public median rather than every pair, since
	// footprint geometry also moves the medians.
	amazon, ok := rep.Lookup("Amazon")
	if !ok {
		t.Fatal("Amazon missing")
	}
	google, _ := rep.Lookup("Google")
	vultr, ok := rep.Lookup("Vultr")
	if !ok {
		t.Fatal("Vultr missing")
	}
	linode, _ := rep.Lookup("Linode")
	bestPrivate := amazon.Summary.Median
	if google.Summary.Median < bestPrivate {
		bestPrivate = google.Summary.Median
	}
	worstPublic := vultr.Summary.Median
	if linode.Summary.Median > worstPublic {
		worstPublic = linode.Summary.Median
	}
	if bestPrivate >= worstPublic {
		t.Errorf("best private median %.1f >= worst public median %.1f",
			bestPrivate, worstPublic)
	}
}

func TestProviderComparisonValidation(t *testing.T) {
	f := dataset(t)
	if _, err := ProviderComparison(nil, f.idx); err == nil {
		t.Error("nil source accepted")
	}
	if _, err := ProviderComparison(f.mem, nil); err == nil {
		t.Error("nil index accepted")
	}
	var empty results.Memory
	if _, err := ProviderComparison(&empty, f.idx); err == nil {
		t.Error("empty dataset accepted")
	}
	rep, err := ProviderComparison(f.mem, f.idx)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := rep.Lookup("Nebula"); ok {
		t.Error("unknown provider found")
	}
}
