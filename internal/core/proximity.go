package core

import (
	"errors"
	"fmt"

	"repro/internal/geo"
	"repro/internal/results"
)

// Band is the Figure 4 latency coloring of a country.
type Band uint8

// Figure 4 bands.
const (
	BandUnknown Band = iota
	BandSub10        // < 10 ms: country hosts (or nearly hosts) a datacenter
	Band10to20       // 10-20 ms: borders or direct fiber to a DC country
	Band20to100      // 20-100 ms: within perceivable latency of the cloud
	BandOver100      // >= 100 ms: beyond the PL threshold
)

// String formats the band the way the figure legend does.
func (b Band) String() string {
	switch b {
	case BandSub10:
		return "<10ms"
	case Band10to20:
		return "10-20ms"
	case Band20to100:
		return "20-100ms"
	case BandOver100:
		return ">=100ms"
	default:
		return "no-data"
	}
}

// BandOf assigns an RTT to its Figure 4 band.
func BandOf(rttMs float64) Band {
	switch {
	case rttMs < 10:
		return BandSub10
	case rttMs < 20:
		return Band10to20
	case rttMs < 100:
		return Band20to100
	default:
		return BandOver100
	}
}

// ProximityRow is one country of Figure 4: the minimum RTT observed by the
// best-performing probe in the country to any datacenter.
type ProximityRow struct {
	Country   string        `json:"country"` // ISO2
	Name      string        `json:"name"`
	Continent geo.Continent `json:"continent"`
	MinRTTms  float64       `json:"min_rtt_ms"`
	Band      Band          `json:"band"`
	Samples   int           `json:"samples"` // delivered samples behind the minimum
}

// ProximityReport is the Figure 4 dataset: per-country minimum cloud
// latency.
type ProximityReport struct {
	Rows []ProximityRow `json:"rows"` // sorted by ascending minimum RTT
}

// Proximity streams the dataset once and extracts the per-country minimum
// RTT to any datacenter (Fig. 4, §4.2). It is a single-pass wrapper over
// ProximityPass; fused multi-figure scans run the pass directly.
func Proximity(src results.Source, idx *Index) (*ProximityReport, error) {
	if src == nil || idx == nil {
		return nil, errors.New("analysis: nil source or index")
	}
	p := NewProximityPass(idx)
	if err := RunPasses(src, p); err != nil {
		return nil, err
	}
	return p.Report()
}

// CountByBand tallies countries per Figure 4 band.
func (r *ProximityReport) CountByBand() map[Band]int {
	out := make(map[Band]int)
	for _, row := range r.Rows {
		out[row.Band]++
	}
	return out
}

// CountWithin returns how many countries reach the cloud under the given
// RTT.
func (r *ProximityReport) CountWithin(ms float64) int {
	n := 0
	for _, row := range r.Rows {
		if row.MinRTTms < ms {
			n++
		}
	}
	return n
}

// Lookup returns the row for a country.
func (r *ProximityReport) Lookup(iso2 string) (ProximityRow, bool) {
	for _, row := range r.Rows {
		if row.Country == iso2 {
			return row, true
		}
	}
	return ProximityRow{}, false
}

// Format renders the rows as figure-ready text lines.
func (r *ProximityReport) Format() []string {
	out := make([]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		out = append(out, fmt.Sprintf("%s (%s)  min=%.1fms  band=%s", row.Country, row.Name, row.MinRTTms, row.Band))
	}
	return out
}
