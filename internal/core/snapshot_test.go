package core_test

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/atlas"
	"repro/internal/colf"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/results"
	"repro/internal/snap"
	"repro/internal/world"
)

// The snapshot tests drive a small appendable campaign: a store is
// created with a 24-round prefix and then grown one round at a time,
// checking after every append that a snapshot-resumed scan renders the
// same bytes as a cold scan for every worker count.

const (
	snapSeed     = 11
	snapBinWidth = 7 * 24 * time.Hour
)

// snapWorld is the shared world of the snapshot tests: built once, at
// the minimum size that still covers every country.
var (
	snapWorldOnce sync.Once
	snapWorldVal  *world.World
	snapWorldErr  error
)

func snapWorldGet(t *testing.T) *world.World {
	t.Helper()
	snapWorldOnce.Do(func() {
		snapWorldVal, snapWorldErr = world.Build(world.Config{Seed: snapSeed, Probes: 200})
	})
	if snapWorldErr != nil {
		t.Fatal(snapWorldErr)
	}
	return snapWorldVal
}

// snapConfig is the snapshot test campaign truncated to `rounds` rounds.
func snapConfig(rounds int) atlas.CampaignConfig {
	start := time.Date(2019, 9, 1, 0, 0, 0, 0, time.UTC)
	return atlas.CampaignConfig{
		Start:           start,
		End:             start.Add(time.Duration(rounds) * 3 * time.Hour),
		Interval:        3 * time.Hour,
		TargetsPerRound: 2,
		Participation:   1,
		PingsPerTarget:  1,
	}
}

// campaignPrefix synthesizes the first `rounds` rounds of the snapshot
// test campaign. Round synthesis depends only on the round index and
// timestamp, so a shorter window is an exact prefix of a longer one
// (asserted by the callers below).
func campaignPrefix(t *testing.T, w *world.World, rounds int) []results.Sample {
	t.Helper()
	var all []results.Sample
	_, err := w.Platform.RunCampaign(context.Background(), snapConfig(rounds), func(s results.Sample) error {
		all = append(all, s)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return all
}

// storeDataEnd returns the append boundary of the store's samples file:
// the end of the last block (binary, excluding the trailing index) or
// the file size (JSONL).
func storeDataEnd(t testing.TB, store *results.Store) int64 {
	t.Helper()
	if store.Format() != results.FormatBinary {
		fi, err := os.Stat(store.SamplesPath())
		if err != nil {
			t.Fatal(err)
		}
		return fi.Size()
	}
	r, closer, err := colf.Open(store.SamplesPath())
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close()
	blocks := r.Blocks()
	if len(blocks) == 0 {
		return colf.HeaderSize
	}
	last := blocks[len(blocks)-1]
	return last.Off + last.Len
}

// appendSamples grows the store in place, exactly like a checkpoint
// resume would: reopen at the data end, append, close (which rewrites
// the binary index).
func appendSamples(t testing.TB, store *results.Store, smps []results.Sample) {
	t.Helper()
	sink, err := store.Resume(storeDataEnd(t, store))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range smps {
		if err := sink.Write(s); err != nil {
			sink.Close()
			t.Fatal(err)
		}
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
}

// buildStore writes samples into a fresh store under dir.
func buildStore(t testing.TB, dir string, meta results.Meta, format results.Format, smps []results.Sample) *results.Store {
	t.Helper()
	store, sink, err := results.Create(dir, meta, format)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range smps {
		if err := sink.Write(s); err != nil {
			sink.Close()
			t.Fatal(err)
		}
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	return store
}

// coldRender renders the reference figures with a snapshot-free scan.
func coldRender(t *testing.T, store *results.Store, w *world.World, start time.Time) []byte {
	t.Helper()
	rep, _, err := core.ScanStore(context.Background(), store, w.Index, start, snapBinWidth, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	return renderSuite(t, rep)
}

// TestSnapshotEquivalenceOverAppends is the tentpole's acceptance check:
// starting from a 24-round store, three successive one-round appends
// each render byte-identical figure lines and CSVs whether scanned cold
// or resumed from the pre-append snapshot, for workers 1, 2, 4 and 7 —
// and the resumed binary scans decode only the appended blocks.
func TestSnapshotEquivalenceOverAppends(t *testing.T) {
	w := snapWorldGet(t)
	full := campaignPrefix(t, w, 27)
	cuts := make([]int, 0, 3)
	for _, rounds := range []int{24, 25, 26} {
		prefix := campaignPrefix(t, w, rounds)
		if !reflect.DeepEqual(full[:len(prefix)], prefix) {
			t.Fatalf("%d-round campaign is not a prefix of the 27-round one", rounds)
		}
		cuts = append(cuts, len(prefix))
	}
	cfg := snapConfig(27)
	meta := cfg.Meta(snapSeed, w.Probes.Len(), w.Catalog.Len())
	ctx := context.Background()

	for _, format := range []results.Format{results.FormatBinary, results.FormatJSONL} {
		name := "binary"
		if format == results.FormatJSONL {
			name = "jsonl"
		}
		t.Run(name, func(t *testing.T) {
			store := buildStore(t, filepath.Join(t.TempDir(), "ds"), meta, format, full[:cuts[0]])
			snapPath := store.SnapshotPath()
			opts := func(sm *snap.Metrics) core.SnapshotOptions {
				return core.SnapshotOptions{Path: snapPath, Metrics: sm}
			}

			// First snapshot-enabled scan: no file yet, so a counted miss,
			// a cold scan, and a write — rendering the cold bytes.
			sm := snap.NewMetrics(obs.NewRegistry())
			rep, _, err := core.ScanStoreSnap(ctx, store, w.Index, cfg.Start, snapBinWidth, 3, nil, opts(sm))
			if err != nil {
				t.Fatal(err)
			}
			if sm.Misses.Value() != 1 || sm.Writes.Value() != 1 || sm.Hits.Value() != 0 || sm.Invalidations.Value() != 0 {
				t.Fatalf("seed scan counters: miss=%d write=%d hit=%d invalid=%d",
					sm.Misses.Value(), sm.Writes.Value(), sm.Hits.Value(), sm.Invalidations.Value())
			}
			if got, want := renderSuite(t, rep), coldRender(t, store, w, cfg.Start); !bytes.Equal(got, want) {
				t.Fatal("seed snapshot scan diverges from cold scan")
			}

			// Pure hit: nothing appended, so nothing is decoded and the
			// snapshot is not rewritten.
			sm = snap.NewMetrics(obs.NewRegistry())
			rep, st, err := core.ScanStoreSnap(ctx, store, w.Index, cfg.Start, snapBinWidth, 3, nil, opts(sm))
			if err != nil {
				t.Fatal(err)
			}
			if sm.Hits.Value() != 1 || sm.Writes.Value() != 0 || sm.Invalidations.Value() != 0 {
				t.Fatalf("pure-hit counters: hit=%d write=%d invalid=%d",
					sm.Hits.Value(), sm.Writes.Value(), sm.Invalidations.Value())
			}
			if st.Samples != 0 || st.BlocksRead != 0 {
				t.Fatalf("pure hit decoded %d samples, %d blocks", st.Samples, st.BlocksRead)
			}
			if got, want := renderSuite(t, rep), coldRender(t, store, w, cfg.Start); !bytes.Equal(got, want) {
				t.Fatal("pure-hit scan diverges from cold scan")
			}

			prev := cuts[0]
			for ai, cut := range []int{cuts[1], cuts[2], len(full)} {
				appendSamples(t, store, full[prev:cut])
				prev = cut
				// The snapshot on disk covers the pre-append prefix; replay
				// every worker count from that same starting point.
				preSnap, err := os.ReadFile(snapPath)
				if err != nil {
					t.Fatal(err)
				}
				want := coldRender(t, store, w, cfg.Start)
				for _, workers := range []int{1, 2, 4, 7} {
					if err := os.WriteFile(snapPath, preSnap, 0o644); err != nil {
						t.Fatal(err)
					}
					sm := snap.NewMetrics(obs.NewRegistry())
					rep, st, err := core.ScanStoreSnap(ctx, store, w.Index, cfg.Start, snapBinWidth, workers, nil, opts(sm))
					if err != nil {
						t.Fatalf("append %d workers=%d: %v", ai+1, workers, err)
					}
					if !bytes.Equal(renderSuite(t, rep), want) {
						t.Errorf("append %d workers=%d: rendered figures diverge from cold scan", ai+1, workers)
					}
					if sm.Hits.Value() != 1 || sm.Misses.Value() != 0 || sm.Invalidations.Value() != 0 || sm.Writes.Value() != 1 {
						t.Errorf("append %d workers=%d counters: hit=%d miss=%d invalid=%d write=%d",
							ai+1, workers, sm.Hits.Value(), sm.Misses.Value(), sm.Invalidations.Value(), sm.Writes.Value())
					}
					if st.PrefixBytes == 0 {
						t.Errorf("append %d workers=%d: scan reports no resumed prefix", ai+1, workers)
					}
					if format == results.FormatBinary {
						if !st.Binary {
							t.Fatalf("append %d: binary store scanned as JSONL", ai+1)
						}
						if st.PrefixBlocks == 0 || st.BlocksRead != st.BlocksTotal-st.PrefixBlocks {
							t.Errorf("append %d workers=%d: decoded %d of %d blocks with %d-block prefix; want delta only",
								ai+1, workers, st.BlocksRead, st.BlocksTotal, st.PrefixBlocks)
						}
						if sm.BlocksSkipped.Value() != uint64(st.PrefixBlocks) {
							t.Errorf("append %d workers=%d: snap_blocks_skipped_total=%d, prefix holds %d blocks",
								ai+1, workers, sm.BlocksSkipped.Value(), st.PrefixBlocks)
						}
					}
				}
			}
		})
	}
}

// TestSnapshotInvalidation covers every discard path: a snapshot that
// does not exactly match the store (or analysis configuration) in front
// of it must be dropped — counted in snap_invalidations_total — and the
// scan must fall back cold and still render correct figures.
func TestSnapshotInvalidation(t *testing.T) {
	w := snapWorldGet(t)
	const rounds = 8
	full := campaignPrefix(t, w, rounds)
	cfg := snapConfig(rounds)
	meta := cfg.Meta(snapSeed, w.Probes.Len(), w.Catalog.Len())
	ctx := context.Background()

	// seedSnap gives an existing store a fresh valid snapshot.
	seedSnap := func(t *testing.T, store *results.Store) {
		t.Helper()
		sm := snap.NewMetrics(obs.NewRegistry())
		if _, _, err := core.ScanStoreSnap(ctx, store, w.Index, cfg.Start, snapBinWidth, 2, nil,
			core.SnapshotOptions{Path: store.SnapshotPath(), Metrics: sm}); err != nil {
			t.Fatal(err)
		}
		if sm.Writes.Value() != 1 {
			t.Fatalf("seeding wrote %d snapshots", sm.Writes.Value())
		}
	}

	// seed builds a store in the given format with a fresh valid snapshot.
	seed := func(t *testing.T, format results.Format) *results.Store {
		t.Helper()
		store := buildStore(t, filepath.Join(t.TempDir(), "ds"), meta, format, full)
		seedSnap(t, store)
		return store
	}

	// rescan runs one snapshot-enabled scan and asserts it invalidated the
	// snapshot, fell back cold, rendered the cold reference bytes, and
	// left a fresh snapshot behind that the next scan hits.
	rescan := func(t *testing.T, store *results.Store, binWidth time.Duration) {
		t.Helper()
		sm := snap.NewMetrics(obs.NewRegistry())
		so := core.SnapshotOptions{Path: store.SnapshotPath(), Metrics: sm}
		rep, st, err := core.ScanStoreSnap(ctx, store, w.Index, cfg.Start, binWidth, 3, nil, so)
		if err != nil {
			t.Fatal(err)
		}
		if sm.Invalidations.Value() != 1 || sm.Hits.Value() != 0 {
			t.Fatalf("counters after stale snapshot: invalid=%d hit=%d", sm.Invalidations.Value(), sm.Hits.Value())
		}
		if st.PrefixBytes != 0 {
			t.Fatalf("invalidated scan still resumed at byte %d", st.PrefixBytes)
		}
		coldRep, _, err := core.ScanStore(ctx, store, w.Index, cfg.Start, binWidth, 1, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(renderSuite(t, rep), renderSuite(t, coldRep)) {
			t.Error("cold fallback diverges from snapshot-free scan")
		}
		if sm.Writes.Value() != 1 {
			t.Errorf("cold fallback wrote %d snapshots, want a fresh one", sm.Writes.Value())
		}
		sm2 := snap.NewMetrics(obs.NewRegistry())
		so.Metrics = sm2
		if _, _, err := core.ScanStoreSnap(ctx, store, w.Index, cfg.Start, binWidth, 3, nil, so); err != nil {
			t.Fatal(err)
		}
		if sm2.Hits.Value() != 1 || sm2.Invalidations.Value() != 0 {
			t.Errorf("fresh snapshot not hit: hit=%d invalid=%d", sm2.Hits.Value(), sm2.Invalidations.Value())
		}
	}

	// tamperHeader rewrites the snapshot with a mutated header, keeping
	// the envelope internally consistent (CRC included) so only the
	// binding check can reject it.
	tamperHeader := func(t *testing.T, path string, mutate func(*snap.Header)) {
		t.Helper()
		h, payload, err := snap.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		mutate(&h)
		if err := snap.WriteFile(path, h, payload); err != nil {
			t.Fatal(err)
		}
	}

	t.Run("pass set change", func(t *testing.T) {
		// Analyzing with a different Figure 7 bin width is a different
		// pass set; the old snapshot's state must not leak into it.
		store := seed(t, results.FormatBinary)
		rescan(t, store, 24*time.Hour)
	})

	t.Run("index fingerprint mismatch", func(t *testing.T) {
		store := seed(t, results.FormatBinary)
		tamperHeader(t, store.SnapshotPath(), func(h *snap.Header) { h.Index = "0000000000000000" })
		rescan(t, store, snapBinWidth)
	})

	t.Run("meta fingerprint mismatch", func(t *testing.T) {
		store := seed(t, results.FormatJSONL)
		tamperHeader(t, store.SnapshotPath(), func(h *snap.Header) { h.Meta = "0000000000000000" })
		rescan(t, store, snapBinWidth)
	})

	t.Run("boundary not a block boundary", func(t *testing.T) {
		// A covered boundary that passes every header check but is not a
		// block boundary fails at scan time; the scan must then drop the
		// snapshot and retry cold instead of surfacing the error.
		store := seed(t, results.FormatBinary)
		f, err := os.Open(store.SamplesPath())
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		tamperHeader(t, store.SnapshotPath(), func(h *snap.Header) {
			h.CoveredBytes--
			head, tail, err := snap.WindowCRCs(f, h.CoveredBytes)
			if err != nil {
				t.Fatal(err)
			}
			h.HeadCRC, h.TailCRC = head, tail
		})
		rescan(t, store, snapBinWidth)
	})

	t.Run("corrupt snapshot file", func(t *testing.T) {
		store := seed(t, results.FormatBinary)
		data, err := os.ReadFile(store.SnapshotPath())
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)/2] ^= 0x40
		if err := os.WriteFile(store.SnapshotPath(), data, 0o644); err != nil {
			t.Fatal(err)
		}
		rescan(t, store, snapBinWidth)
	})

	t.Run("truncated store", func(t *testing.T) {
		// A checkpoint-resume rollback shrinks the samples file below the
		// snapshot's covered boundary; the snapshot no longer prefixes the
		// store and must go.
		// Build the store in two sink sessions so it holds two blocks and
		// a mid-file block boundary exists to truncate at.
		store := buildStore(t, filepath.Join(t.TempDir(), "ds"), meta, results.FormatBinary, full[:len(full)/2])
		appendSamples(t, store, full[len(full)/2:])
		seedSnap(t, store)
		r, closer, err := colf.Open(store.SamplesPath())
		if err != nil {
			t.Fatal(err)
		}
		blocks := r.Blocks()
		closer.Close()
		if len(blocks) < 2 {
			t.Fatalf("store has only %d blocks; test needs a mid-file boundary", len(blocks))
		}
		cut := blocks[len(blocks)/2].Off
		if err := os.Truncate(store.SamplesPath(), cut); err != nil {
			t.Fatal(err)
		}
		rescan(t, store, snapBinWidth)
	})

	t.Run("modified store content", func(t *testing.T) {
		// Same length, different bytes: the head window CRC catches an
		// in-place rewrite of covered data.
		store := seed(t, results.FormatJSONL)
		data, err := os.ReadFile(store.SamplesPath())
		if err != nil {
			t.Fatal(err)
		}
		i := bytes.Index(data, []byte(`"rtt_ms":`))
		if i < 0 {
			t.Fatal("no rtt field in first line")
		}
		i += len(`"rtt_ms":`)
		for data[i] < '0' || data[i] > '9' {
			i++
		}
		if data[i] == '1' {
			data[i] = '3'
		} else {
			data[i] = '1'
		}
		if err := os.WriteFile(store.SamplesPath(), data, 0o644); err != nil {
			t.Fatal(err)
		}
		rescan(t, store, snapBinWidth)
	})
}

// TestScanStoreEmpty pins the empty-store sentinel for both formats,
// with and without snapshots enabled; an empty store must never leave a
// snapshot file behind.
func TestScanStoreEmpty(t *testing.T) {
	w := snapWorldGet(t)
	cfg := snapConfig(4)
	meta := cfg.Meta(snapSeed, w.Probes.Len(), w.Catalog.Len())
	for _, format := range []results.Format{results.FormatBinary, results.FormatJSONL} {
		store := buildStore(t, filepath.Join(t.TempDir(), "ds"), meta, format, nil)
		if _, _, err := core.ScanStore(context.Background(), store, w.Index, cfg.Start, snapBinWidth, 2, nil); !errors.Is(err, core.ErrEmptyStore) {
			t.Errorf("format %v: cold scan of empty store: err=%v, want ErrEmptyStore", format, err)
		}
		sm := snap.NewMetrics(obs.NewRegistry())
		_, _, err := core.ScanStoreSnap(context.Background(), store, w.Index, cfg.Start, snapBinWidth, 2, nil,
			core.SnapshotOptions{Path: store.SnapshotPath(), Metrics: sm})
		if !errors.Is(err, core.ErrEmptyStore) {
			t.Errorf("format %v: snapshot scan of empty store: err=%v, want ErrEmptyStore", format, err)
		}
		if _, err := os.Stat(store.SnapshotPath()); !errors.Is(err, os.ErrNotExist) {
			t.Errorf("format %v: empty store grew a snapshot file", format)
		}
		// UpdateSnapshot treats empty as a no-op, not an error: the engine
		// calls it from checkpoint hooks before any samples may exist.
		if _, err := core.UpdateSnapshot(context.Background(), store, w.Index, cfg.Start, snapBinWidth, 2, nil,
			core.SnapshotOptions{Path: store.SnapshotPath(), Metrics: sm}); err != nil {
			t.Errorf("format %v: UpdateSnapshot on empty store: %v", format, err)
		}
	}
}

// TestSnapshotRefreshGate exercises the amortized-rewrite policy: a
// resumed scan whose delta sits below RefreshFactor of the covered
// prefix serves correct figures but defers the snapshot rewrite, so the
// next scan resumes from the same boundary; once the factor is crossed
// (or zeroed), the rewrite happens and later scans are pure hits.
func TestSnapshotRefreshGate(t *testing.T) {
	w := snapWorldGet(t)
	full := campaignPrefix(t, w, 27)
	prefix := campaignPrefix(t, w, 26)
	if !reflect.DeepEqual(full[:len(prefix)], prefix) {
		t.Fatal("26-round campaign is not a prefix of the 27-round one")
	}
	cfg := snapConfig(27)
	meta := cfg.Meta(snapSeed, w.Probes.Len(), w.Catalog.Len())
	ctx := context.Background()

	store := buildStore(t, filepath.Join(t.TempDir(), "ds"), meta, results.FormatBinary, prefix)
	snapPath := store.SnapshotPath()

	// Seed write: the gate never blocks the first snapshot of a store.
	sm := snap.NewMetrics(obs.NewRegistry())
	_, _, err := core.ScanStoreSnap(ctx, store, w.Index, cfg.Start, snapBinWidth, 3, nil,
		core.SnapshotOptions{Path: snapPath, Metrics: sm, RefreshFactor: core.DefaultRefreshFactor})
	if err != nil {
		t.Fatal(err)
	}
	if sm.Writes.Value() != 1 {
		t.Fatalf("seed scan wrote %d snapshots, want 1", sm.Writes.Value())
	}
	appendSamples(t, store, full[len(prefix):])
	want := coldRender(t, store, w, cfg.Start)

	// One appended round is far below the default gate: figures are
	// served, but the rewrite is deferred — twice in a row, resuming
	// from the same boundary each time.
	for pass := 0; pass < 2; pass++ {
		sm = snap.NewMetrics(obs.NewRegistry())
		rep, st, err := core.ScanStoreSnap(ctx, store, w.Index, cfg.Start, snapBinWidth, 3, nil,
			core.SnapshotOptions{Path: snapPath, Metrics: sm, RefreshFactor: core.DefaultRefreshFactor})
		if err != nil {
			t.Fatal(err)
		}
		if sm.Hits.Value() != 1 || sm.Writes.Value() != 0 || sm.Invalidations.Value() != 0 {
			t.Fatalf("pass %d counters: hit=%d write=%d invalid=%d",
				pass, sm.Hits.Value(), sm.Writes.Value(), sm.Invalidations.Value())
		}
		if st.BlocksRead == 0 || st.BlocksRead != st.BlocksTotal-st.PrefixBlocks {
			t.Fatalf("pass %d decoded %d blocks, delta is %d",
				pass, st.BlocksRead, st.BlocksTotal-st.PrefixBlocks)
		}
		if !bytes.Equal(renderSuite(t, rep), want) {
			t.Fatalf("pass %d: below-gate resumed scan diverges from cold scan", pass)
		}
	}

	// A factor small enough that the delta crosses it forces the rewrite.
	sm = snap.NewMetrics(obs.NewRegistry())
	if _, _, err = core.ScanStoreSnap(ctx, store, w.Index, cfg.Start, snapBinWidth, 3, nil,
		core.SnapshotOptions{Path: snapPath, Metrics: sm, RefreshFactor: 1e-9}); err != nil {
		t.Fatal(err)
	}
	if sm.Hits.Value() != 1 || sm.Writes.Value() != 1 {
		t.Fatalf("crossed-gate counters: hit=%d write=%d", sm.Hits.Value(), sm.Writes.Value())
	}

	// The refreshed snapshot covers the whole store: pure hit, nothing
	// decoded, same figures.
	sm = snap.NewMetrics(obs.NewRegistry())
	rep, st, err := core.ScanStoreSnap(ctx, store, w.Index, cfg.Start, snapBinWidth, 3, nil,
		core.SnapshotOptions{Path: snapPath, Metrics: sm, RefreshFactor: core.DefaultRefreshFactor})
	if err != nil {
		t.Fatal(err)
	}
	if sm.Hits.Value() != 1 || sm.Writes.Value() != 0 || st.BlocksRead != 0 {
		t.Fatalf("pure-hit counters: hit=%d write=%d blocksRead=%d",
			sm.Hits.Value(), sm.Writes.Value(), st.BlocksRead)
	}
	if !bytes.Equal(renderSuite(t, rep), want) {
		t.Fatal("post-refresh pure hit diverges from cold scan")
	}
}
