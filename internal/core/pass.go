package core

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"repro/internal/geo"
	"repro/internal/results"
	"repro/internal/scan"
	"repro/internal/stats"
)

// Pass is the streaming-aggregate contract shared with the parallel
// scanner: Observe every sample, Merge a later shard's partial state,
// and (per concrete type) Report the finished analysis. Every figure's
// analysis is a Pass, so one scan of the dataset can feed all of them
// at once — sequentially via RunPasses, or sharded via scan.File.
type Pass = scan.Pass

// RunPasses streams src once, feeding every sample to each pass in
// order. It is the sequential single-scan driver; the legacy per-figure
// functions are thin wrappers over it.
func RunPasses(src results.Source, passes ...Pass) error {
	if src == nil {
		return errors.New("analysis: nil source")
	}
	return src.ForEach(func(s results.Sample) error {
		for _, p := range passes {
			if err := p.Observe(s); err != nil {
				return err
			}
		}
		return nil
	})
}

// nearestBest tracks one probe's lowest-RTT region. Strict < with
// first-wins ties matches the sequential fold: observing shards in file
// order and merging earlier-shard-wins reproduces it exactly.
type nearestBest struct {
	region string
	rtt    float64
}

type nearestTracker map[int]nearestBest

func (n nearestTracker) observe(s results.Sample) {
	if b, ok := n[s.ProbeID]; !ok || s.RTTms < b.rtt {
		n[s.ProbeID] = nearestBest{region: s.Region, rtt: s.RTTms}
	}
}

// merge folds a later shard's tracker in; the receiver (earlier shard)
// wins ties, mirroring file-order first-wins.
func (n nearestTracker) merge(other nearestTracker) {
	for id, ob := range other {
		if b, ok := n[id]; !ok || ob.rtt < b.rtt {
			n[id] = ob
		}
	}
}

// sortedProbeIDs returns the tracker's keys ascending, for deterministic
// report-time iteration.
func sortedProbeIDs[V any](m map[int]V) []int {
	ids := make([]int, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// unionProbeIDs returns the ascending union of a pass's live and
// pending-raw probe IDs — a snapshot-seeded pass holds a probe in
// either map (or both once partially materialized).
func unionProbeIDs[A, B any](live map[int]A, raw map[int]B) []int {
	ids := make([]int, 0, len(live)+len(raw))
	for id := range live {
		ids = append(ids, id)
	}
	for id := range raw {
		if _, ok := live[id]; !ok {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	return ids
}

// mergeTypeError is the uniform complaint for a Merge called with a
// different pass type.
func mergeTypeError(want string, got Pass) error {
	return fmt.Errorf("analysis: cannot merge %T into %s", got, want)
}

// ProximityPass accumulates Figure 4: per-country minimum RTT.
type ProximityPass struct {
	idx       *Index
	byCountry map[string]*proximityAcc
}

type proximityAcc struct {
	min     float64
	samples int
}

// NewProximityPass builds the pass.
func NewProximityPass(idx *Index) *ProximityPass {
	return &ProximityPass{idx: idx, byCountry: make(map[string]*proximityAcc)}
}

// Observe implements Pass.
func (p *ProximityPass) Observe(s results.Sample) error {
	if s.Lost {
		return nil
	}
	country, ok := p.idx.Country(s.ProbeID)
	if !ok {
		return nil // privileged or unknown probe: filtered
	}
	a := p.byCountry[country]
	if a == nil {
		a = &proximityAcc{min: s.RTTms}
		p.byCountry[country] = a
	} else if s.RTTms < a.min {
		a.min = s.RTTms
	}
	a.samples++
	return nil
}

// Merge implements Pass. Minima and counts merge exactly, so the result
// is independent of the sharding.
func (p *ProximityPass) Merge(other Pass) error {
	o, ok := other.(*ProximityPass)
	if !ok {
		return mergeTypeError("ProximityPass", other)
	}
	for country, oa := range o.byCountry {
		a := p.byCountry[country]
		if a == nil {
			p.byCountry[country] = oa
			continue
		}
		if oa.min < a.min {
			a.min = oa.min
		}
		a.samples += oa.samples
	}
	return nil
}

// Report finishes the analysis.
func (p *ProximityPass) Report() (*ProximityReport, error) {
	if len(p.byCountry) == 0 {
		return nil, errors.New("analysis: no delivered samples")
	}
	rep := &ProximityReport{Rows: make([]ProximityRow, 0, len(p.byCountry))}
	for iso, a := range p.byCountry {
		row := ProximityRow{
			Country:  iso,
			Name:     p.idx.CountryName(iso),
			MinRTTms: a.min,
			Band:     BandOf(a.min),
			Samples:  a.samples,
		}
		if c, ok := p.idx.Countries().Lookup(iso); ok {
			row.Continent = c.Continent
		}
		rep.Rows = append(rep.Rows, row)
	}
	sort.Slice(rep.Rows, func(i, j int) bool {
		if rep.Rows[i].MinRTTms != rep.Rows[j].MinRTTms {
			return rep.Rows[i].MinRTTms < rep.Rows[j].MinRTTms
		}
		return rep.Rows[i].Country < rep.Rows[j].Country
	})
	return rep, nil
}

// MinRTTPass accumulates Figure 5: each probe's minimum observed RTT.
type MinRTTPass struct {
	idx  *Index
	mins map[int]float64
}

// NewMinRTTPass builds the pass.
func NewMinRTTPass(idx *Index) *MinRTTPass {
	return &MinRTTPass{idx: idx, mins: make(map[int]float64)}
}

// Observe implements Pass.
func (p *MinRTTPass) Observe(s results.Sample) error {
	if s.Lost || !p.idx.Known(s.ProbeID) {
		return nil
	}
	if cur, ok := p.mins[s.ProbeID]; !ok || s.RTTms < cur {
		p.mins[s.ProbeID] = s.RTTms
	}
	return nil
}

// Merge implements Pass; min-of-mins is exact.
func (p *MinRTTPass) Merge(other Pass) error {
	o, ok := other.(*MinRTTPass)
	if !ok {
		return mergeTypeError("MinRTTPass", other)
	}
	for id, min := range o.mins {
		if cur, ok := p.mins[id]; !ok || min < cur {
			p.mins[id] = min
		}
	}
	return nil
}

// Report finishes the analysis, grouping per-probe minima by continent
// in ascending probe order so the report is deterministic.
func (p *MinRTTPass) Report() (*CDFReport, error) {
	if len(p.mins) == 0 {
		return nil, errors.New("analysis: no delivered samples")
	}
	rep := &CDFReport{byContinent: make(map[geo.Continent]*stats.Dist)}
	for _, probeID := range sortedProbeIDs(p.mins) {
		ct, ok := p.idx.Continent(probeID)
		if !ok {
			continue
		}
		d := rep.byContinent[ct]
		if d == nil {
			d = &stats.Dist{}
			rep.byContinent[ct] = d
		}
		if err := d.Add(p.mins[probeID]); err != nil {
			return nil, err
		}
	}
	return rep, nil
}

// nearestPass backs NearestRegion as a single pass.
type nearestPass struct {
	idx   *Index
	bests nearestTracker
}

func (p *nearestPass) Observe(s results.Sample) error {
	if s.Lost || !p.idx.Known(s.ProbeID) {
		return nil
	}
	p.bests.observe(s)
	return nil
}

func (p *nearestPass) Merge(other Pass) error {
	o, ok := other.(*nearestPass)
	if !ok {
		return mergeTypeError("nearestPass", other)
	}
	p.bests.merge(o.bests)
	return nil
}

func (p *nearestPass) report() (map[int]string, error) {
	if len(p.bests) == 0 {
		return nil, errors.New("analysis: no delivered samples")
	}
	out := make(map[int]string, len(p.bests))
	for id, b := range p.bests {
		out[id] = b.region
	}
	return out, nil
}

// FullDistPass accumulates Figure 6 in a single pass: it tracks each
// probe's nearest region while buffering every delivered (probe, region)
// RTT stream, then keeps only the nearest region's stream at report
// time. This replaces FullDistribution's two passes (NearestRegion, then
// a re-scan) with one, at the cost of holding the delivered samples in
// memory — about one float per delivered sample, which at the paper's
// 3.2M-sample scale is a few tens of MB.
type FullDistPass struct {
	idx     *Index
	nearest nearestTracker
	byProbe map[int]map[string]*stats.Dist
	// raw holds per-probe encoded distribution spans from a snapshot,
	// region-sorted, decoded lazily on first touch (see materializeDist).
	// A resumed scan touches only the delta's (probe, region) entries and
	// each probe's nearest region at report time; everything else is
	// spliced back into the next snapshot as raw bytes, so reload and
	// rewrite cost scales with the delta, not with history.
	raw map[int][]rawDist
}

// rawDist is one pending (region, encoded stats.Dist state) span; span
// is nilled once the entry is decoded into byProbe.
type rawDist struct {
	region string
	span   []byte
}

// NewFullDistPass builds the pass.
func NewFullDistPass(idx *Index) *FullDistPass {
	return &FullDistPass{
		idx:     idx,
		nearest: make(nearestTracker),
		byProbe: make(map[int]map[string]*stats.Dist),
	}
}

// liveRegions returns the probe's materialized region map, creating it
// if needed.
func (p *FullDistPass) liveRegions(id int) map[string]*stats.Dist {
	regions := p.byProbe[id]
	if regions == nil {
		regions = make(map[string]*stats.Dist)
		p.byProbe[id] = regions
	}
	return regions
}

// materializeDist returns the live distribution for (id, region),
// decoding a pending snapshot span on first touch. A nil result with a
// nil error means the entry does not exist.
func (p *FullDistPass) materializeDist(id int, region string) (*stats.Dist, error) {
	if live := p.byProbe[id]; live != nil {
		if d := live[region]; d != nil {
			return d, nil
		}
	}
	// Raw lists are decoded in ascending region order (the decoder
	// enforces it), so the pending span is found by binary search.
	list := p.raw[id]
	i := sort.Search(len(list), func(k int) bool { return list[k].region >= region })
	if i < len(list) && list[i].region == region && list[i].span != nil {
		r := &list[i]
		d, err := decodeDistSpan(r.span)
		if err != nil {
			return nil, err
		}
		r.span = nil
		p.liveRegions(id)[region] = d
		return d, nil
	}
	return nil, nil
}

// materializeAll decodes every pending span, leaving the pass fully
// live — used when the pass is the source side of a merge.
func (p *FullDistPass) materializeAll() error {
	for id, spans := range p.raw {
		live := p.liveRegions(id)
		for i := range spans {
			r := &spans[i]
			if r.span == nil {
				continue
			}
			d, err := decodeDistSpan(r.span)
			if err != nil {
				return err
			}
			r.span = nil
			live[r.region] = d
		}
	}
	p.raw = nil
	return nil
}

// Observe implements Pass.
func (p *FullDistPass) Observe(s results.Sample) error {
	if s.Lost || !p.idx.Known(s.ProbeID) {
		return nil
	}
	p.nearest.observe(s)
	d, err := p.materializeDist(s.ProbeID, s.Region)
	if err != nil {
		return err
	}
	if d == nil {
		d = &stats.Dist{}
		p.liveRegions(s.ProbeID)[s.Region] = d
	}
	return d.Add(s.RTTms)
}

// Merge implements Pass. Buffered streams merge by replay (Dist.Merge),
// so each (probe, region) stream stays in file order for any sharding.
// Only the receiver entries the source actually touches are
// materialized; the rest stay pending raw spans.
func (p *FullDistPass) Merge(other Pass) error {
	o, ok := other.(*FullDistPass)
	if !ok {
		return mergeTypeError("FullDistPass", other)
	}
	p.nearest.merge(o.nearest)
	if err := o.materializeAll(); err != nil {
		return err
	}
	for id, oRegions := range o.byProbe {
		if p.byProbe[id] == nil && len(p.raw[id]) == 0 {
			p.byProbe[id] = oRegions
			continue
		}
		for region, od := range oRegions {
			d, err := p.materializeDist(id, region)
			if err != nil {
				return err
			}
			if d == nil {
				p.liveRegions(id)[region] = od
				continue
			}
			if err := d.Merge(od); err != nil {
				return err
			}
		}
	}
	return nil
}

// Report selects each probe's nearest-region stream and groups by
// continent, iterating probes in ascending order for determinism.
func (p *FullDistPass) Report() (*CDFReport, error) {
	if len(p.nearest) == 0 {
		return nil, errors.New("analysis: no delivered samples")
	}
	rep := &CDFReport{byContinent: make(map[geo.Continent]*stats.Dist)}
	for _, probeID := range sortedProbeIDs(p.nearest) {
		ct, ok := p.idx.Continent(probeID)
		if !ok {
			continue
		}
		// Only each probe's nearest-region stream is reported, so only
		// those entries are decoded from a snapshot-seeded pass.
		src, err := p.materializeDist(probeID, p.nearest[probeID].region)
		if err != nil {
			return nil, err
		}
		if src == nil {
			continue
		}
		d := rep.byContinent[ct]
		if d == nil {
			d = &stats.Dist{}
			rep.byContinent[ct] = d
		}
		if err := d.Merge(src); err != nil {
			return nil, err
		}
	}
	if len(rep.byContinent) == 0 {
		return nil, errors.New("analysis: no delivered samples")
	}
	return rep, nil
}

// timedRTT is one buffered nearest-region candidate sample: a
// timestamped RTT, shaped so whole streams feed stats.TimeSeries.AddBulk.
type timedRTT = stats.TimedSample

// LastMilePass accumulates Figure 7 and its significance test in a
// single pass: the nearest-region tracker runs over all known probes,
// while per-(probe, region) sample streams are buffered only for the
// tier-1/tier-2 wired- or wireless-tagged probes that enter the
// comparison. Report time picks each probe's nearest-region stream.
type LastMilePass struct {
	idx     *Index
	start   time.Time
	width   time.Duration
	nearest nearestTracker
	byProbe map[int]map[string][]timedRTT
	// raw holds per-probe encoded sample-stream spans from a snapshot,
	// region-sorted, decoded lazily exactly like FullDistPass.raw.
	raw map[int][]rawStream
}

// rawStream is one pending (region, encoded timedRTT stream) span; span
// is nilled once the stream is decoded into byProbe.
type rawStream struct {
	region string
	span   []byte
}

// NewLastMilePass builds the pass; the bin geometry is validated up
// front so a bad width fails before any scanning.
func NewLastMilePass(idx *Index, start time.Time, binWidth time.Duration) (*LastMilePass, error) {
	if _, err := stats.NewTimeSeries(start, binWidth); err != nil {
		return nil, err
	}
	p := newLastMileAccum(idx)
	p.start, p.width = start, binWidth
	return p, nil
}

// newLastMileAccum builds the accumulator without bin geometry — enough
// for Significance, which does not bin.
func newLastMileAccum(idx *Index) *LastMilePass {
	return &LastMilePass{
		idx:     idx,
		width:   time.Hour, // placeholder; Report validates real geometry
		nearest: make(nearestTracker),
		byProbe: make(map[int]map[string][]timedRTT),
	}
}

// Observe implements Pass.
func (p *LastMilePass) Observe(s results.Sample) error {
	if s.Lost || !p.idx.Known(s.ProbeID) {
		return nil
	}
	p.nearest.observe(s)
	if tier, ok := p.idx.Tier(s.ProbeID); !ok || tier > geo.Tier2 {
		return nil
	}
	switch access, _ := p.idx.Access(s.ProbeID); access {
	case AccessWired, AccessWireless:
	default:
		return nil // untagged probes are excluded from Fig. 7
	}
	if err := p.materializeStream(s.ProbeID, s.Region); err != nil {
		return err
	}
	regions := p.liveStreams(s.ProbeID)
	regions[s.Region] = append(regions[s.Region], timedRTT{T: s.Time, V: s.RTTms})
	return nil
}

// liveStreams returns the probe's materialized stream map, creating it
// if needed.
func (p *LastMilePass) liveStreams(id int) map[string][]timedRTT {
	regions := p.byProbe[id]
	if regions == nil {
		regions = make(map[string][]timedRTT)
		p.byProbe[id] = regions
	}
	return regions
}

// materializeStream decodes the pending snapshot span for (id, region),
// if one exists, into byProbe, so appends and reads see the buffered
// history.
func (p *LastMilePass) materializeStream(id int, region string) error {
	list := p.raw[id]
	i := sort.Search(len(list), func(k int) bool { return list[k].region >= region })
	if i < len(list) && list[i].region == region && list[i].span != nil {
		r := &list[i]
		samples, err := decodeStreamSpan(r.span)
		if err != nil {
			return err
		}
		r.span = nil
		p.liveStreams(id)[region] = samples
	}
	return nil
}

// materializeAll decodes every pending span, leaving the pass fully
// live — used when the pass is the source side of a merge.
func (p *LastMilePass) materializeAll() error {
	for id, spans := range p.raw {
		live := p.liveStreams(id)
		for i := range spans {
			r := &spans[i]
			if r.span == nil {
				continue
			}
			samples, err := decodeStreamSpan(r.span)
			if err != nil {
				return err
			}
			r.span = nil
			live[r.region] = samples
		}
	}
	p.raw = nil
	return nil
}

// Merge implements Pass; buffered streams concatenate in shard order,
// reconstructing file order. Receiver streams the source does not touch
// stay pending raw spans.
func (p *LastMilePass) Merge(other Pass) error {
	o, ok := other.(*LastMilePass)
	if !ok {
		return mergeTypeError("LastMilePass", other)
	}
	p.nearest.merge(o.nearest)
	if err := o.materializeAll(); err != nil {
		return err
	}
	for id, oRegions := range o.byProbe {
		if p.byProbe[id] == nil && len(p.raw[id]) == 0 {
			p.byProbe[id] = oRegions
			continue
		}
		for region, os := range oRegions {
			if err := p.materializeStream(id, region); err != nil {
				return err
			}
			regions := p.liveStreams(id)
			regions[region] = append(regions[region], os...)
		}
	}
	return nil
}

// forEachKept walks the nearest-region streams of the qualifying
// probes in ascending probe order, one whole stream per call (the
// samples of a stream share their probe's access class, so callers can
// bulk-fold them). Only each probe's nearest-region stream is read, so
// only those streams are decoded from a snapshot-seeded pass.
func (p *LastMilePass) forEachKept(fn func(access AccessClass, samples []timedRTT) error) error {
	if len(p.nearest) == 0 {
		return errors.New("analysis: no delivered samples")
	}
	for _, probeID := range unionProbeIDs(p.byProbe, p.raw) {
		access, _ := p.idx.Access(probeID)
		region := p.nearest[probeID].region
		if err := p.materializeStream(probeID, region); err != nil {
			return err
		}
		if err := fn(access, p.byProbe[probeID][region]); err != nil {
			return err
		}
	}
	return nil
}

// Report finishes Figure 7.
func (p *LastMilePass) Report() (*LastMileReport, error) {
	wired, err := stats.NewTimeSeries(p.start, p.width)
	if err != nil {
		return nil, err
	}
	wireless, err := stats.NewTimeSeries(p.start, p.width)
	if err != nil {
		return nil, err
	}
	err = p.forEachKept(func(access AccessClass, samples []timedRTT) error {
		if access == AccessWired {
			return wired.AddBulk(samples)
		}
		return wireless.AddBulk(samples)
	})
	if err != nil {
		return nil, err
	}
	rep := &LastMileReport{}
	if rep.Wired, err = wired.Points(); err != nil {
		return nil, err
	}
	if rep.Wireless, err = wireless.Points(); err != nil {
		return nil, err
	}
	if len(rep.Wired) == 0 || len(rep.Wireless) == 0 {
		return nil, errors.New("analysis: a last-mile class has no samples")
	}
	return rep, nil
}

// Significance runs the wired-vs-wireless Kolmogorov-Smirnov test over
// the same population Report uses.
func (p *LastMilePass) Significance() (stats.KSResult, error) {
	var wired, wireless stats.Dist
	err := p.forEachKept(func(access AccessClass, samples []timedRTT) error {
		d := &wireless
		if access == AccessWired {
			d = &wired
		}
		for _, s := range samples {
			if err := d.Add(s.V); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return stats.KSResult{}, err
	}
	return stats.KolmogorovSmirnov(&wired, &wireless)
}

// localHour maps a UTC timestamp to the probe's approximate local hour
// (15 degrees of longitude per hour).
func localHour(t time.Time, lon float64) int {
	return localHourHM(t.Hour(), t.Minute(), lon)
}

// localHourHM is the shared arithmetic of localHour and its raw-nanos
// twin localHourNanos; both must fold the same float expression so the
// batch and row paths bin identically.
func localHourHM(hour, minute int, lon float64) int {
	utc := float64(hour) + float64(minute)/60
	return int(math.Mod(utc+lon/15+48, 24)) % 24
}

// localHourNanos is localHour over a raw unix-nanosecond timestamp,
// skipping the time.Time round trip: bit-identical to
// localHour(time.Unix(0, n).UTC(), lon) for every int64 n.
func localHourNanos(n int64, lon float64) int {
	sec := n / 1e9
	if n%1e9 < 0 {
		sec-- // floor, as time.Unix normalizes negative nanos
	}
	sod := sec % 86400
	if sod < 0 {
		sod += 86400 // Euclidean: Hour() works on absolute (unsigned) time
	}
	return localHourHM(int(sod/3600), int(sod%3600/60), lon)
}

// providerOf extracts the operator prefix of a "provider/id" region
// address.
func providerOf(region string) (string, bool) {
	provider, _, ok := strings.Cut(region, "/")
	return provider, ok
}

// DiurnalPass accumulates the local-hour congestion profile.
type DiurnalPass struct {
	idx  *Index
	bins [24]stats.Dist
}

// NewDiurnalPass builds the pass.
func NewDiurnalPass(idx *Index) *DiurnalPass {
	return &DiurnalPass{idx: idx}
}

// Observe implements Pass.
func (p *DiurnalPass) Observe(s results.Sample) error {
	if s.Lost {
		return nil
	}
	lon, ok := p.idx.Longitude(s.ProbeID)
	if !ok {
		return nil
	}
	return p.bins[localHour(s.Time, lon)].Add(s.RTTms)
}

// Merge implements Pass; per-bin replay keeps each hour's stream in
// file order.
func (p *DiurnalPass) Merge(other Pass) error {
	o, ok := other.(*DiurnalPass)
	if !ok {
		return mergeTypeError("DiurnalPass", other)
	}
	for h := range p.bins {
		if err := p.bins[h].Merge(&o.bins[h]); err != nil {
			return err
		}
	}
	return nil
}

// Report finishes the profile.
func (p *DiurnalPass) Report() (*DiurnalReport, error) {
	rep := &DiurnalReport{}
	nonEmpty := 0
	for h := range p.bins {
		rep.Counts[h] = p.bins[h].N()
		if p.bins[h].N() == 0 {
			continue
		}
		med, err := p.bins[h].Median()
		if err != nil {
			return nil, err
		}
		rep.Medians[h] = med
		nonEmpty++
	}
	if nonEmpty == 0 {
		return nil, errors.New("core: no delivered samples")
	}
	return rep, nil
}

// ProviderPass accumulates the per-provider latency comparison.
type ProviderPass struct {
	idx        *Index
	byProvider map[string]*providerAcc
	// Per-block scratch for ObserveBlock, reused across blocks: the
	// provider prefix of each dictionary code and the lazily resolved
	// accumulator per code. Never serialized.
	provs  []string
	provOK []bool
	accs   []*providerAcc
}

type providerAcc struct {
	dist *stats.Dist
	lost int
}

// NewProviderPass builds the pass.
func NewProviderPass(idx *Index) *ProviderPass {
	return &ProviderPass{idx: idx, byProvider: make(map[string]*providerAcc)}
}

// Observe implements Pass.
func (p *ProviderPass) Observe(s results.Sample) error {
	if !p.idx.Known(s.ProbeID) {
		return nil
	}
	provider, ok := providerOf(s.Region)
	if !ok {
		return nil
	}
	a := p.byProvider[provider]
	if a == nil {
		a = &providerAcc{dist: &stats.Dist{}}
		p.byProvider[provider] = a
	}
	if s.Lost {
		a.lost++
		return nil
	}
	return a.dist.Add(s.RTTms)
}

// Merge implements Pass. Per-provider streams merge by replay, so the
// mean/stddev folds in the summary match a sequential run bitwise.
func (p *ProviderPass) Merge(other Pass) error {
	o, ok := other.(*ProviderPass)
	if !ok {
		return mergeTypeError("ProviderPass", other)
	}
	for provider, oa := range o.byProvider {
		a := p.byProvider[provider]
		if a == nil {
			p.byProvider[provider] = oa
			continue
		}
		if err := a.dist.Merge(oa.dist); err != nil {
			return err
		}
		a.lost += oa.lost
	}
	return nil
}

// Report finishes the comparison.
func (p *ProviderPass) Report() (*ProviderReport, error) {
	if len(p.byProvider) == 0 {
		return nil, errors.New("core: no samples")
	}
	rep := &ProviderReport{}
	for provider, a := range p.byProvider {
		if a.dist.N() == 0 {
			continue
		}
		sum, err := a.dist.Summarize()
		if err != nil {
			return nil, err
		}
		total := a.dist.N() + a.lost
		rep.Rows = append(rep.Rows, ProviderRow{
			Provider: provider,
			Summary:  sum,
			Lost:     a.lost,
			LossRate: float64(a.lost) / float64(total),
		})
	}
	sort.Slice(rep.Rows, func(i, j int) bool {
		if rep.Rows[i].Summary.Median != rep.Rows[j].Summary.Median {
			return rep.Rows[i].Summary.Median < rep.Rows[j].Summary.Median
		}
		return rep.Rows[i].Provider < rep.Rows[j].Provider
	})
	return rep, nil
}
