package core

import (
	"errors"
	"sort"
	"strings"

	"repro/internal/results"
	"repro/internal/stats"
)

// ProviderRow summarizes one cloud operator's reachability over the
// campaign: the per-sample latency distribution of all delivered pings
// toward that provider's regions.
type ProviderRow struct {
	Provider string        `json:"provider"`
	Summary  stats.Summary `json:"summary"`
	Lost     int           `json:"lost"`
	LossRate float64       `json:"loss_rate"`
}

// ProviderReport extends the paper's §4.1 observation — private-backbone
// operators ride straighter paths than public-transit ones — into a
// per-provider latency comparison.
type ProviderReport struct {
	Rows []ProviderRow `json:"rows"` // sorted by median RTT
}

// ProviderComparison streams the dataset once and aggregates per provider.
// The provider is the prefix of the region address ("Amazon/eu-west-1").
func ProviderComparison(src results.Source, idx *Index) (*ProviderReport, error) {
	if src == nil || idx == nil {
		return nil, errors.New("core: nil source or index")
	}
	type acc struct {
		dist *stats.Dist
		lost int
	}
	byProvider := make(map[string]*acc)
	err := src.ForEach(func(s results.Sample) error {
		if !idx.Known(s.ProbeID) {
			return nil
		}
		provider, _, ok := strings.Cut(s.Region, "/")
		if !ok {
			return nil
		}
		a := byProvider[provider]
		if a == nil {
			a = &acc{dist: &stats.Dist{}}
			byProvider[provider] = a
		}
		if s.Lost {
			a.lost++
			return nil
		}
		return a.dist.Add(s.RTTms)
	})
	if err != nil {
		return nil, err
	}
	if len(byProvider) == 0 {
		return nil, errors.New("core: no samples")
	}
	rep := &ProviderReport{}
	for provider, a := range byProvider {
		if a.dist.N() == 0 {
			continue
		}
		sum, err := a.dist.Summarize()
		if err != nil {
			return nil, err
		}
		total := a.dist.N() + a.lost
		rep.Rows = append(rep.Rows, ProviderRow{
			Provider: provider,
			Summary:  sum,
			Lost:     a.lost,
			LossRate: float64(a.lost) / float64(total),
		})
	}
	sort.Slice(rep.Rows, func(i, j int) bool {
		if rep.Rows[i].Summary.Median != rep.Rows[j].Summary.Median {
			return rep.Rows[i].Summary.Median < rep.Rows[j].Summary.Median
		}
		return rep.Rows[i].Provider < rep.Rows[j].Provider
	})
	return rep, nil
}

// Lookup returns one provider's row.
func (r *ProviderReport) Lookup(provider string) (ProviderRow, bool) {
	for _, row := range r.Rows {
		if row.Provider == provider {
			return row, true
		}
	}
	return ProviderRow{}, false
}
