package core

import (
	"errors"

	"repro/internal/results"
	"repro/internal/stats"
)

// ProviderRow summarizes one cloud operator's reachability over the
// campaign: the per-sample latency distribution of all delivered pings
// toward that provider's regions.
type ProviderRow struct {
	Provider string        `json:"provider"`
	Summary  stats.Summary `json:"summary"`
	Lost     int           `json:"lost"`
	LossRate float64       `json:"loss_rate"`
}

// ProviderReport extends the paper's §4.1 observation — private-backbone
// operators ride straighter paths than public-transit ones — into a
// per-provider latency comparison.
type ProviderReport struct {
	Rows []ProviderRow `json:"rows"` // sorted by median RTT
}

// ProviderComparison streams the dataset once and aggregates per provider.
// The provider is the prefix of the region address ("Amazon/eu-west-1").
// It is a single-pass wrapper over ProviderPass.
func ProviderComparison(src results.Source, idx *Index) (*ProviderReport, error) {
	if src == nil || idx == nil {
		return nil, errors.New("core: nil source or index")
	}
	p := NewProviderPass(idx)
	if err := RunPasses(src, p); err != nil {
		return nil, err
	}
	return p.Report()
}

// Lookup returns one provider's row.
func (r *ProviderReport) Lookup(provider string) (ProviderRow, bool) {
	for _, row := range r.Rows {
		if row.Provider == provider {
			return row, true
		}
	}
	return ProviderRow{}, false
}
