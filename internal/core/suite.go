package core

import (
	"context"
	"errors"
	"time"

	"repro/internal/results"
	"repro/internal/scan"
	"repro/internal/stats"
)

// Suite bundles one instance of every per-figure analysis pass so a single
// scan of the dataset can feed all of them. Each worker of a parallel scan
// owns its own Suite; after the scan the merged state lives in the first
// worker's passes.
type Suite struct {
	Proximity *ProximityPass
	MinRTT    *MinRTTPass
	FullDist  *FullDistPass
	LastMile  *LastMilePass
	Diurnal   *DiurnalPass
	Provider  *ProviderPass
}

// NewSuite builds a fresh pass set. start and binWidth parameterize the
// Figure 7 time series exactly as LastMile does.
func NewSuite(idx *Index, start time.Time, binWidth time.Duration) (*Suite, error) {
	if idx == nil {
		return nil, errors.New("analysis: nil index")
	}
	lm, err := NewLastMilePass(idx, start, binWidth)
	if err != nil {
		return nil, err
	}
	return &Suite{
		Proximity: NewProximityPass(idx),
		MinRTT:    NewMinRTTPass(idx),
		FullDist:  NewFullDistPass(idx),
		LastMile:  lm,
		Diurnal:   NewDiurnalPass(idx),
		Provider:  NewProviderPass(idx),
	}, nil
}

// Passes returns the suite's passes in a fixed order, matching across
// workers so the scanner can merge them pairwise.
func (s *Suite) Passes() []Pass {
	return []Pass{s.Proximity, s.MinRTT, s.FullDist, s.LastMile, s.Diurnal, s.Provider}
}

// SuiteReport holds every figure's report, produced from one scan.
type SuiteReport struct {
	Proximity    *ProximityReport
	MinRTT       *CDFReport
	FullDist     *CDFReport
	LastMile     *LastMileReport
	Significance stats.KSResult
	Diurnal      *DiurnalReport
	Provider     *ProviderReport
}

// Report finalizes all passes. The Figure 7 pass serves double duty: its
// buffered populations back both the time series and the KS significance
// test, so neither costs an extra scan.
func (s *Suite) Report() (*SuiteReport, error) {
	rep := &SuiteReport{}
	var err error
	if rep.Proximity, err = s.Proximity.Report(); err != nil {
		return nil, err
	}
	if rep.MinRTT, err = s.MinRTT.Report(); err != nil {
		return nil, err
	}
	if rep.FullDist, err = s.FullDist.Report(); err != nil {
		return nil, err
	}
	if rep.LastMile, err = s.LastMile.Report(); err != nil {
		return nil, err
	}
	if rep.Significance, err = s.LastMile.Significance(); err != nil {
		return nil, err
	}
	if rep.Diurnal, err = s.Diurnal.Report(); err != nil {
		return nil, err
	}
	if rep.Provider, err = s.Provider.Report(); err != nil {
		return nil, err
	}
	return rep, nil
}

// RunSuite computes every figure report in one sequential pass over src.
func RunSuite(src results.Source, idx *Index, start time.Time, binWidth time.Duration) (*SuiteReport, error) {
	if src == nil || idx == nil {
		return nil, errors.New("analysis: nil source or index")
	}
	s, err := NewSuite(idx, start, binWidth)
	if err != nil {
		return nil, err
	}
	if err := RunPasses(src, s.Passes()...); err != nil {
		return nil, err
	}
	return s.Report()
}

// ScanStore computes every figure report with one parallel scan over the
// store's samples file. workers <= 0 means one worker per CPU; m may be nil.
// The report is byte-for-byte identical to RunSuite's for any worker count.
// A store with no samples returns ErrEmptyStore.
func ScanStore(ctx context.Context, store *results.Store, idx *Index, start time.Time, binWidth time.Duration, workers int, m *scan.Metrics) (*SuiteReport, scan.Stats, error) {
	return ScanStoreSnap(ctx, store, idx, start, binWidth, workers, m, SnapshotOptions{})
}
