// Package analysis is the paper's core contribution: the pipeline that
// turns the raw campaign dataset into the evaluation's figures — per-country
// proximity to the cloud (Fig. 4), per-probe minimum-RTT CDFs by continent
// (Fig. 5), full-distribution CDFs (Fig. 6), the wired-vs-wireless last-mile
// comparison (Fig. 7) — and the human-perception latency thresholds those
// figures are read against (§3).
package core

import (
	"errors"

	"repro/internal/geo"
	"repro/internal/probe"
)

// AccessClass buckets probes the way the paper's Figure 7 filter does,
// using user tags only.
type AccessClass uint8

// Access classes for the last-mile comparison.
const (
	AccessOther AccessClass = iota
	AccessWired
	AccessWireless
)

// String names the class.
func (a AccessClass) String() string {
	switch a {
	case AccessWired:
		return "wired"
	case AccessWireless:
		return "wireless"
	default:
		return "other"
	}
}

// Index resolves probe IDs to the geographic and access attributes the
// analyses group by. It is built once from the population and then shared
// by every figure pass.
type Index struct {
	db      *geo.DB
	byProbe map[int]probeInfo
}

type probeInfo struct {
	country   string
	continent geo.Continent
	access    AccessClass
	tier      geo.Tier
	lon       float64 // longitude, for local-time analyses
}

// NewIndex builds the lookup table from the public (non-privileged) probes;
// samples from privileged or unknown probes are skipped by the analyses,
// mirroring the paper's filtering.
func NewIndex(pop *probe.Population, db *geo.DB) (*Index, error) {
	if pop == nil || db == nil {
		return nil, errors.New("analysis: nil population or database")
	}
	idx := &Index{db: db, byProbe: make(map[int]probeInfo, pop.Len())}
	for _, p := range pop.Public() {
		info := probeInfo{country: p.Country, continent: p.Continent, access: AccessOther, tier: p.Tier, lon: p.Location.Lon}
		switch {
		case p.HasAnyTag(probe.WirelessTags):
			info.access = AccessWireless
		case p.HasAnyTag(probe.WiredTags):
			info.access = AccessWired
		}
		idx.byProbe[p.ID] = info
	}
	return idx, nil
}

// Known reports whether the probe is part of the analysis set.
func (idx *Index) Known(probeID int) bool {
	_, ok := idx.byProbe[probeID]
	return ok
}

// Country returns the probe's ISO2 country.
func (idx *Index) Country(probeID int) (string, bool) {
	info, ok := idx.byProbe[probeID]
	return info.country, ok
}

// Continent returns the probe's continent.
func (idx *Index) Continent(probeID int) (geo.Continent, bool) {
	info, ok := idx.byProbe[probeID]
	return info.continent, ok
}

// Access returns the probe's tag-derived access class.
func (idx *Index) Access(probeID int) (AccessClass, bool) {
	info, ok := idx.byProbe[probeID]
	return info.access, ok
}

// Tier returns the probe's country infrastructure tier.
func (idx *Index) Tier(probeID int) (geo.Tier, bool) {
	info, ok := idx.byProbe[probeID]
	return info.tier, ok
}

// Longitude returns the probe's longitude (for local-time binning).
func (idx *Index) Longitude(probeID int) (float64, bool) {
	info, ok := idx.byProbe[probeID]
	return info.lon, ok
}

// CountryName resolves an ISO2 code to the display name.
func (idx *Index) CountryName(iso2 string) string {
	if c, ok := idx.db.Lookup(iso2); ok {
		return c.Name
	}
	return iso2
}

// Countries returns the country database underlying the index.
func (idx *Index) Countries() *geo.DB { return idx.db }
