package core_test

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/atlas"
	"repro/internal/core"
	"repro/internal/figures"
	"repro/internal/results"
	"repro/internal/world"
)

// The equivalence test and the benchmarks share one file-backed campaign
// dataset, built on first use and removed by TestMain.
var (
	fileOnce  sync.Once
	fileDir   string
	fileErr   error
	fileWorld *world.World
	fileCfg   atlas.CampaignConfig
)

func TestMain(m *testing.M) {
	code := m.Run()
	if fileDir != "" {
		os.RemoveAll(fileDir)
	}
	os.Exit(code)
}

// fileDataset returns a stored month-long test campaign (~400 probes)
// in JSONL form. A binary twin of the same campaign lives next to it;
// fileDatasetBinary opens that one.
func fileDataset(tb testing.TB) (*results.Store, *world.World, atlas.CampaignConfig) {
	tb.Helper()
	fileOnce.Do(func() {
		fileDir, fileErr = os.MkdirTemp("", "core-suite-*")
		if fileErr != nil {
			return
		}
		fileWorld, fileErr = world.Build(world.Config{Seed: 7, Probes: 400})
		if fileErr != nil {
			return
		}
		fileCfg = atlas.TestCampaign()
		meta := fileCfg.Meta(7, fileWorld.Probes.Len(), fileWorld.Catalog.Len())
		var sink *results.Sink
		_, sink, fileErr = results.Create(filepath.Join(fileDir, "ds"), meta, results.FormatJSONL)
		if fileErr != nil {
			return
		}
		if _, fileErr = fileWorld.Platform.RunCampaign(context.Background(), fileCfg, sink.Write); fileErr != nil {
			sink.Close()
			return
		}
		if fileErr = sink.Close(); fileErr != nil {
			return
		}
		// Binary twin: the same samples re-encoded into a colf store.
		var src *results.Store
		src, fileErr = results.Open(filepath.Join(fileDir, "ds"))
		if fileErr != nil {
			return
		}
		var bsink *results.Sink
		_, bsink, fileErr = results.Create(filepath.Join(fileDir, "ds-bin"), meta, results.FormatBinary)
		if fileErr != nil {
			return
		}
		if fileErr = src.ForEach(bsink.Write); fileErr != nil {
			bsink.Close()
			return
		}
		fileErr = bsink.Close()
	})
	if fileErr != nil {
		tb.Fatal(fileErr)
	}
	store, err := results.Open(filepath.Join(fileDir, "ds"))
	if err != nil {
		tb.Fatal(err)
	}
	return store, fileWorld, fileCfg
}

// fileDatasetBinary returns the binary twin of fileDataset's campaign.
func fileDatasetBinary(tb testing.TB) (*results.Store, *world.World, atlas.CampaignConfig) {
	tb.Helper()
	fileDataset(tb) // ensure both stores exist
	store, err := results.Open(filepath.Join(fileDir, "ds-bin"))
	if err != nil {
		tb.Fatal(err)
	}
	if store.Format() != results.FormatBinary {
		tb.Fatalf("ds-bin detected as %v", store.Format())
	}
	return store, fileWorld, fileCfg
}

// TestScanStoreMatchesLegacy is the fused pipeline's acceptance check: for
// any worker count, the parallel single-scan suite renders byte-identical
// figure lines and CSVs to the legacy one-analysis-per-scan path, and its
// non-rendered reports are deeply equal.
func TestScanStoreMatchesLegacy(t *testing.T) {
	store, w, cfg := fileDataset(t)

	_, lines4, err := figures.Figure4(store, w.Index)
	if err != nil {
		t.Fatal(err)
	}
	_, lines5, err := figures.Figure5(store, w.Index)
	if err != nil {
		t.Fatal(err)
	}
	_, lines6, err := figures.Figure6(store, w.Index)
	if err != nil {
		t.Fatal(err)
	}
	rep7, lines7, err := figures.Figure7(store, w.Index, cfg.Start)
	if err != nil {
		t.Fatal(err)
	}
	provider, err := core.ProviderComparison(store, w.Index)
	if err != nil {
		t.Fatal(err)
	}
	diurnal, err := core.Diurnal(store, w.Index)
	if err != nil {
		t.Fatal(err)
	}
	ks, err := core.LastMileSignificance(store, w.Index)
	if err != nil {
		t.Fatal(err)
	}
	legacyCSV := map[string][]byte{}
	{
		rep4, _, err := figures.Figure4(store, w.Index)
		if err != nil {
			t.Fatal(err)
		}
		rep5, _, err := figures.Figure5(store, w.Index)
		if err != nil {
			t.Fatal(err)
		}
		rep6, _, err := figures.Figure6(store, w.Index)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := figures.Figure4CSV(&buf, rep4); err != nil {
			t.Fatal(err)
		}
		legacyCSV["4"] = append([]byte(nil), buf.Bytes()...)
		buf.Reset()
		if err := figures.CDFCSV(&buf, rep5); err != nil {
			t.Fatal(err)
		}
		legacyCSV["5"] = append([]byte(nil), buf.Bytes()...)
		buf.Reset()
		if err := figures.CDFCSV(&buf, rep6); err != nil {
			t.Fatal(err)
		}
		legacyCSV["6"] = append([]byte(nil), buf.Bytes()...)
		buf.Reset()
		if err := figures.Figure7CSV(&buf, rep7); err != nil {
			t.Fatal(err)
		}
		legacyCSV["7"] = append([]byte(nil), buf.Bytes()...)
	}

	for _, workers := range []int{1, 2, 4, 7} {
		rep, st, err := core.ScanStore(context.Background(), store, w.Index, cfg.Start, 7*24*time.Hour, workers, nil)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if st.Workers != workers {
			t.Errorf("workers=%d: scan used %d workers", workers, st.Workers)
		}
		check := func(name string, legacy, fused []string) {
			if strings.Join(legacy, "\n") != strings.Join(fused, "\n") {
				t.Errorf("workers=%d: figure %s lines differ from legacy", workers, name)
			}
		}
		check("4", lines4, figures.Figure4Lines(rep.Proximity))
		f5, err := figures.CDFLines(rep.MinRTT)
		if err != nil {
			t.Fatal(err)
		}
		check("5", lines5, f5)
		f6, err := figures.CDFLines(rep.FullDist)
		if err != nil {
			t.Fatal(err)
		}
		check("6", lines6, f6)
		f7, err := figures.Figure7Lines(rep.LastMile)
		if err != nil {
			t.Fatal(err)
		}
		check("7", lines7, f7)

		var buf bytes.Buffer
		if err := figures.Figure4CSV(&buf, rep.Proximity); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), legacyCSV["4"]) {
			t.Errorf("workers=%d: figure 4 CSV differs from legacy", workers)
		}
		buf.Reset()
		if err := figures.CDFCSV(&buf, rep.MinRTT); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), legacyCSV["5"]) {
			t.Errorf("workers=%d: figure 5 CSV differs from legacy", workers)
		}
		buf.Reset()
		if err := figures.CDFCSV(&buf, rep.FullDist); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), legacyCSV["6"]) {
			t.Errorf("workers=%d: figure 6 CSV differs from legacy", workers)
		}
		buf.Reset()
		if err := figures.Figure7CSV(&buf, rep.LastMile); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), legacyCSV["7"]) {
			t.Errorf("workers=%d: figure 7 CSV differs from legacy", workers)
		}

		if !reflect.DeepEqual(rep.Provider, provider) {
			t.Errorf("workers=%d: provider report differs from legacy", workers)
		}
		if !reflect.DeepEqual(rep.Diurnal, diurnal) {
			t.Errorf("workers=%d: diurnal report differs from legacy", workers)
		}
		if rep.Significance != ks {
			t.Errorf("workers=%d: KS result differs: %+v vs %+v", workers, rep.Significance, ks)
		}
	}
}

// renderSuite renders a fused scan report to its user-visible bytes:
// every figure's lines and CSVs, concatenated deterministically.
func renderSuite(tb testing.TB, rep *core.SuiteReport) []byte {
	tb.Helper()
	var buf bytes.Buffer
	write := func(lines []string, err error) {
		if err != nil {
			tb.Fatal(err)
		}
		buf.WriteString(strings.Join(lines, "\n"))
		buf.WriteString("\n--\n")
	}
	write(figures.Figure4Lines(rep.Proximity), nil)
	write(figures.CDFLines(rep.MinRTT))
	write(figures.CDFLines(rep.FullDist))
	write(figures.Figure7Lines(rep.LastMile))
	if err := figures.Figure4CSV(&buf, rep.Proximity); err != nil {
		tb.Fatal(err)
	}
	if err := figures.CDFCSV(&buf, rep.MinRTT); err != nil {
		tb.Fatal(err)
	}
	if err := figures.CDFCSV(&buf, rep.FullDist); err != nil {
		tb.Fatal(err)
	}
	if err := figures.Figure7CSV(&buf, rep.LastMile); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// TestScanStoreFormatEquivalence is the storage tentpole's acceptance
// check: the fused suite renders byte-identical figure lines and CSVs
// from the JSONL store and its binary twin, for every worker count.
func TestScanStoreFormatEquivalence(t *testing.T) {
	jstore, w, cfg := fileDataset(t)
	bstore, _, _ := fileDatasetBinary(t)

	var reference []byte
	for _, tc := range []struct {
		name  string
		store *results.Store
	}{{"jsonl", jstore}, {"binary", bstore}} {
		for _, workers := range []int{1, 2, 4, 7} {
			rep, st, err := core.ScanStore(context.Background(), tc.store, w.Index, cfg.Start, 7*24*time.Hour, workers, nil)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", tc.name, workers, err)
			}
			if tc.name == "binary" {
				if !st.Binary {
					t.Fatalf("binary store scanned as %d-worker JSONL", st.Workers)
				}
				if st.BlocksRead != st.BlocksTotal || st.BlocksSkipped != 0 {
					t.Errorf("unfiltered binary scan read %d/%d blocks, skipped %d",
						st.BlocksRead, st.BlocksTotal, st.BlocksSkipped)
				}
			}
			got := renderSuite(t, rep)
			if reference == nil {
				reference = got
				continue
			}
			if !bytes.Equal(got, reference) {
				t.Errorf("%s workers=%d: rendered figures diverge from jsonl workers=1", tc.name, workers)
			}
		}
	}
}

// TestScanStoreRowScanEquivalence is the batch tentpole's acceptance
// check: on the same binary store, the columnar batch kernels and the
// forced per-row path render byte-identical figures AND write
// byte-identical analysis snapshots, for every worker count.
func TestScanStoreRowScanEquivalence(t *testing.T) {
	store, w, cfg := fileDatasetBinary(t)
	ctx := context.Background()

	var refRender, refSnap []byte
	for _, rowScan := range []bool{false, true} {
		for _, workers := range []int{1, 2, 4, 7} {
			snapPath := filepath.Join(t.TempDir(), "samples.snap")
			rep, _, err := core.ScanStoreSnap(ctx, store, w.Index, cfg.Start, 7*24*time.Hour, workers, nil,
				core.SnapshotOptions{Path: snapPath, RowScan: rowScan})
			if err != nil {
				t.Fatalf("rowscan=%v workers=%d: %v", rowScan, workers, err)
			}
			render := renderSuite(t, rep)
			snapBytes, err := os.ReadFile(snapPath)
			if err != nil {
				t.Fatalf("rowscan=%v workers=%d: %v", rowScan, workers, err)
			}
			if refRender == nil {
				refRender, refSnap = render, snapBytes
				continue
			}
			if !bytes.Equal(render, refRender) {
				t.Errorf("rowscan=%v workers=%d: rendered figures diverge from batch workers=1", rowScan, workers)
			}
			if !bytes.Equal(snapBytes, refSnap) {
				t.Errorf("rowscan=%v workers=%d: samples.snap diverges from batch workers=1", rowScan, workers)
			}
		}
	}
}

// TestRunSuiteMatchesScanStore pins the sequential fused path to the
// parallel one.
func TestRunSuiteMatchesScanStore(t *testing.T) {
	store, w, cfg := fileDataset(t)
	seq, err := core.RunSuite(store, w.Index, cfg.Start, 7*24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	par, _, err := core.ScanStore(context.Background(), store, w.Index, cfg.Start, 7*24*time.Hour, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq.Provider, par.Provider) || !reflect.DeepEqual(seq.Diurnal, par.Diurnal) ||
		seq.Significance != par.Significance {
		t.Error("RunSuite and ScanStore disagree")
	}
}
