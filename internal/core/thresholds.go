package core

// Human-perception latency thresholds the paper reads its measurements
// against (§3). Values are round-trip milliseconds.
const (
	// MTPms is the motion-to-photon threshold: input-to-display sync must
	// stay below ~20 ms for immersive applications (AR/VR); of that, ~13 ms
	// goes to the display pipeline, leaving ~7 ms for compute + RTT.
	MTPms = 20.0
	// MTPComputeBudgetMs is the compute-and-RTT share of MTP after the
	// display pipeline.
	MTPComputeBudgetMs = 7.0
	// PLms is the perceivable-latency threshold: delays beyond ~100 ms are
	// visible to the human eye (video stutter, input lag).
	PLms = 100.0
	// HRTms is the human reaction time: ~250 ms between stimulus and motor
	// response; active-engagement applications (teleoperation) must fit it.
	HRTms = 250.0
)

// Threshold pairs a named perception limit with its RTT budget.
type Threshold struct {
	Name string  `json:"name"`
	Ms   float64 `json:"ms"`
}

// Thresholds returns the three §3 limits in ascending order.
func Thresholds() []Threshold {
	return []Threshold{
		{Name: "MTP", Ms: MTPms},
		{Name: "PL", Ms: PLms},
		{Name: "HRT", Ms: HRTms},
	}
}

// Supports reports which perception classes an RTT satisfies: an RTT below
// MTP supports everything; one above HRT supports nothing interactive.
func Supports(rttMs float64) []Threshold {
	var out []Threshold
	for _, th := range Thresholds() {
		if rttMs <= th.Ms {
			out = append(out, th)
		}
	}
	return out
}
