package core

import (
	"errors"
	"fmt"
	"slices"

	"repro/internal/geo"
	"repro/internal/results"
	"repro/internal/stats"
)

// ContinentCDF holds one continent's empirical RTT distribution.
type ContinentCDF struct {
	Continent geo.Continent
	Dist      *stats.Dist
}

// CDFReport groups distributions by continent; it backs both Figure 5
// (per-probe minimum RTT) and Figure 6 (every sample).
type CDFReport struct {
	byContinent map[geo.Continent]*stats.Dist

	// Precomputed curves, when the report was assembled from temporal
	// index pre-aggregates: Curve answers from these when asked for
	// exactly curveGrid, skipping the sweep over the sample buffers.
	curveGrid []float64
	curves    map[geo.Continent][]stats.CDFPoint
}

// SetCurves attaches precomputed CDF curves sampled on grid. They must
// have been computed from the same sample multisets the report's
// distributions hold — the temporal index's build discipline — so a
// Curve call for that grid returns bit-identical points to a sweep,
// without the per-sample cost. Any other grid, and any continent
// missing from curves, falls through to the distributions.
func (r *CDFReport) SetCurves(grid []float64, curves map[geo.Continent][]stats.CDFPoint) {
	r.curveGrid, r.curves = grid, curves
}

// Continents returns the continents with data, in canonical order.
func (r *CDFReport) Continents() []geo.Continent {
	var out []geo.Continent
	for _, ct := range geo.Continents() {
		if d, ok := r.byContinent[ct]; ok && d.N() > 0 {
			out = append(out, ct)
		}
	}
	return out
}

// Dist returns one continent's distribution.
func (r *CDFReport) Dist(ct geo.Continent) (*stats.Dist, bool) {
	d, ok := r.byContinent[ct]
	return d, ok
}

// FractionWithin returns the empirical P(RTT <= ms) for a continent.
func (r *CDFReport) FractionWithin(ct geo.Continent, ms float64) (float64, error) {
	d, ok := r.byContinent[ct]
	if !ok {
		return 0, fmt.Errorf("analysis: no data for %v", ct)
	}
	return d.CDF(ms)
}

// Quantile returns a continent's q-quantile RTT.
func (r *CDFReport) Quantile(ct geo.Continent, q float64) (float64, error) {
	d, ok := r.byContinent[ct]
	if !ok {
		return 0, fmt.Errorf("analysis: no data for %v", ct)
	}
	return d.Quantile(q)
}

// CDFReportFromDists wraps per-continent distributions assembled
// outside a scan pass — the temporal aggregate index composes a window
// by merging pre-aggregated segment-node state and hands the result
// here. Every CDFReport query is rank-based, so a report built from any
// merge order of the same sample multiset answers identically to one
// accumulated row by row; the serving layer leans on that for its
// byte-identity guarantee between index-composed and cold-scanned
// windows. The map is adopted, not copied.
func CDFReportFromDists(byContinent map[geo.Continent]*stats.Dist) *CDFReport {
	if byContinent == nil {
		byContinent = make(map[geo.Continent]*stats.Dist)
	}
	return &CDFReport{byContinent: byContinent}
}

// Clone returns a deep copy sharing no distribution state with the
// receiver. Reports handed out by a long-lived suite alias its
// accumulators — which the next merge mutates — so a caller that
// publishes a report past the suite's next advance must clone it.
func (r *CDFReport) Clone() *CDFReport {
	out := &CDFReport{byContinent: make(map[geo.Continent]*stats.Dist, len(r.byContinent))}
	for ct, d := range r.byContinent {
		out.byContinent[ct] = d.Clone()
	}
	out.curveGrid = slices.Clone(r.curveGrid)
	if r.curves != nil {
		out.curves = make(map[geo.Continent][]stats.CDFPoint, len(r.curves))
		for ct, c := range r.curves {
			out.curves[ct] = slices.Clone(c)
		}
	}
	return out
}

// Curve samples a continent's CDF at the given grid — the series a figure
// plots. A precomputed curve (SetCurves) for exactly this grid is
// returned as-is.
func (r *CDFReport) Curve(ct geo.Continent, grid []float64) ([]stats.CDFPoint, error) {
	if c, ok := r.curves[ct]; ok && slices.Equal(grid, r.curveGrid) {
		return c, nil
	}
	d, ok := r.byContinent[ct]
	if !ok {
		return nil, fmt.Errorf("analysis: no data for %v", ct)
	}
	return d.Curve(grid)
}

// DefaultGrid is the x-axis used by the figure output: 1..400 ms.
func DefaultGrid() []float64 {
	grid := make([]float64, 0, 400)
	for x := 1.0; x <= 400; x++ {
		grid = append(grid, x)
	}
	return grid
}

// MinRTTByProbe builds Figure 5: the CDF, per continent, of each probe's
// minimum observed RTT to any datacenter over the whole campaign (§4.2).
// It is a single-pass wrapper over MinRTTPass.
func MinRTTByProbe(src results.Source, idx *Index) (*CDFReport, error) {
	if src == nil || idx == nil {
		return nil, errors.New("analysis: nil source or index")
	}
	p := NewMinRTTPass(idx)
	if err := RunPasses(src, p); err != nil {
		return nil, err
	}
	return p.Report()
}

// NearestRegion determines, per probe, the datacenter with the lowest
// observed RTT over the campaign — the probe's "closest datacenter" in the
// figure captions. It needs one pass over the dataset.
func NearestRegion(src results.Source, idx *Index) (map[int]string, error) {
	if src == nil || idx == nil {
		return nil, errors.New("analysis: nil source or index")
	}
	p := &nearestPass{idx: idx, bests: make(nearestTracker)}
	if err := RunPasses(src, p); err != nil {
		return nil, err
	}
	return p.report()
}

// FullDistribution builds Figure 6: the CDF, per continent, of all ping
// measurements from every probe to its closest datacenter (§4.3). It is a
// single-pass wrapper over FullDistPass, which folds nearest-region
// tracking into the same scan that buffers the samples — the former
// two-pass implementation (NearestRegion, then a re-scan) is gone.
func FullDistribution(src results.Source, idx *Index) (*CDFReport, error) {
	if src == nil || idx == nil {
		return nil, errors.New("analysis: nil source or index")
	}
	p := NewFullDistPass(idx)
	if err := RunPasses(src, p); err != nil {
		return nil, err
	}
	return p.Report()
}
