package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/colf"
	"repro/internal/results"
	"repro/internal/scan"
)

// HotSuite is the suite held resident for query serving: the merged
// pass state over the store prefix scanned so far, advanced
// incrementally as the campaign appends. Unlike ScanStoreSnap — which
// reopens the store, replays the snapshot, and rescans the suffix on
// every call — a HotSuite pays the seed cost once and each Advance
// folds only the blocks written since the previous one, so steady-state
// refresh cost tracks the append rate, not the store size.
//
// A HotSuite is not safe for concurrent use; the serving layer advances
// it from a single refresher goroutine and publishes immutable reports.
type HotSuite struct {
	idx      *Index
	start    time.Time
	binWidth time.Duration

	suite         *Suite
	samples       uint64
	coveredBytes  int64
	coveredBlocks int
}

// NewHotSuite builds the resident suite for a binary store, seeded from
// the snapshot named by so.Path when it validates (the same
// prefix-proof rules as ScanStoreSnap; any mismatch just seeds empty —
// never wrong state). The store must be colf: live serving leans on
// block boundaries to advance past a torn tail, which JSONL cannot
// offer.
func NewHotSuite(store *results.Store, idx *Index, start time.Time, binWidth time.Duration, so SnapshotOptions) (*HotSuite, error) {
	if store == nil || idx == nil {
		return nil, errors.New("core: nil store or index")
	}
	if store.Format() != results.FormatBinary {
		return nil, fmt.Errorf("core: hot serving needs a binary store, not %v", store.Format())
	}
	h := &HotSuite{idx: idx, start: start, binWidth: binWidth, coveredBytes: colf.HeaderSize}
	if so.Path != "" {
		prefix, samples, resume := loadSnapshot(so.Path, store, idx, start, binWidth, so)
		if prefix != nil {
			h.suite, h.samples = prefix, samples
			h.coveredBytes, h.coveredBlocks = resume.Bytes, resume.Blocks
			so.Metrics.Hit(resume.Blocks, resume.Bytes)
		}
	}
	if h.suite == nil {
		s, err := NewSuite(idx, start, binWidth)
		if err != nil {
			return nil, err
		}
		h.suite = s
	}
	return h, nil
}

// Advance folds blocks — the complete blocks appended since the
// covered boundary, located by the caller (colf.DeltaBlocksAvailable)
// against its long-lived data source r — into the resident state.
// stableEnd is the boundary the blocks reach; a torn tail past it waits
// for the next Advance. On error the resident state is unchanged and
// still serviceable: a failed Advance loses freshness, never
// correctness.
func (h *HotSuite) Advance(ctx context.Context, r io.ReaderAt, size int64, blocks []colf.BlockInfo, stableEnd int64, cfg scan.Config) (scan.Stats, error) {
	if len(blocks) == 0 {
		return scan.Stats{}, nil
	}
	if blocks[0].Off != h.coveredBytes {
		return scan.Stats{}, fmt.Errorf("core: delta starts at offset %d, covered boundary is %d", blocks[0].Off, h.coveredBytes)
	}
	var suites []*Suite
	cfg.NewPasses = func(worker int) ([]scan.Pass, error) {
		s, err := NewSuite(h.idx, h.start, h.binWidth)
		if err != nil {
			return nil, err
		}
		suites = append(suites, s)
		return s.Passes(), nil
	}
	st, err := scan.Blocks(ctx, cfg, r, size, blocks, h.coveredBlocks, h.coveredBytes)
	if err != nil {
		return st, err
	}
	// Receiver-first: the resident suite covers the earlier bytes.
	if err := h.suite.Merge(suites[0]); err != nil {
		return st, err
	}
	h.samples += st.Samples
	h.coveredBytes = stableEnd
	h.coveredBlocks += len(blocks)
	return st, nil
}

// Report finalizes the resident state into a fresh figure report.
// Calling it between Advances is safe: report-time queries sort
// distribution buffers in place, and every later merge re-establishes
// the sequential file-order fold, so the bytes match a cold scan at the
// same covered boundary. An empty suite returns ErrEmptyStore.
func (h *HotSuite) Report() (*SuiteReport, error) {
	if h.samples == 0 {
		return nil, ErrEmptyStore
	}
	return h.suite.Report()
}

// Covered reports the store prefix the resident state summarizes.
func (h *HotSuite) Covered() (bytes int64, blocks int) {
	return h.coveredBytes, h.coveredBlocks
}

// Samples reports the number of samples folded into the state.
func (h *HotSuite) Samples() uint64 { return h.samples }
