package core

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"slices"
	"sort"
	"time"

	"repro/internal/obs"
	"repro/internal/results"
	"repro/internal/scan"
	"repro/internal/snap"
	"repro/internal/stats"
)

// Analysis snapshots: the suite's merged pass state, persisted next to
// the samples file so re-analyzing an append-only store costs O(delta).
// A snapshot binds to (pass-set version + figure geometry, probe index,
// campaign meta, store format, covered byte/block boundary, content
// window CRCs); any mismatch discards it and the scan runs cold, so a
// stale or corrupt snapshot can never change a figure — the worst case
// is a cache miss. State is serialized with exact IEEE-754 bits and in
// insertion order, which keeps figures byte-identical whether computed
// cold, from any intermediate snapshot, or across any worker count.

// suiteStateVersion versions the suite's serialized state layout. Bump
// it whenever a pass's accumulator or codec changes; old snapshots then
// invalidate instead of deserializing garbage.
const suiteStateVersion = 1

// ErrEmptyStore reports a store with no samples — analyses have nothing
// to compute, which callers should surface distinctly rather than as a
// generic analysis failure.
var ErrEmptyStore = errors.New("core: store holds no samples")

// SnapshotOptions configures snapshot use for one scan. A zero value
// (empty Path) disables snapshots entirely.
type SnapshotOptions struct {
	// Path is the snapshot file, normally store.SnapshotPath().
	Path string
	// Metrics, when set, receives snap_* instruments.
	Metrics *snap.Metrics
	// RefreshFactor gates the snapshot rewrite after a resumed scan: the
	// file is rewritten only once the newly scanned suffix exceeds
	// RefreshFactor × the covered prefix size (cold scans always write).
	// Zero rewrites on any new data. Deferring a rewrite is never a
	// correctness risk — the next scan simply re-reads the same small
	// suffix — it amortizes the O(total-state) encode and multi-megabyte
	// file write against a delta that grew enough to pay for them.
	RefreshFactor float64
	// Log, when set, receives snapshot lifecycle events (hit, miss,
	// invalidation, write) for the run's flight recorder.
	Log *obs.Logger
	// RowScan forces the scanner's legacy per-row path, disabling the
	// batch kernels — an escape hatch for equivalence checks.
	RowScan bool
}

// DefaultRefreshFactor is the refresh gate the CLIs use: the snapshot
// is rewritten once the unscanned suffix passes 1/16 of the covered
// prefix, keeping any later resumed scan within ~6% of a cold scan's
// decode volume while snapshot rewrites stay logarithmic in store
// growth.
const DefaultRefreshFactor = 1.0 / 16

// Fingerprint hashes the index's analysis-relevant attributes: probe
// set, geography, access class, tier, longitude. Two indexes with equal
// fingerprints classify every sample identically.
func (idx *Index) Fingerprint() string {
	h := fnv.New64a()
	for _, id := range sortedProbeIDs(idx.byProbe) {
		info := idx.byProbe[id]
		fmt.Fprintf(h, "%d|%s|%d|%d|%d|%x;", id, info.country, info.continent, info.access, info.tier, math.Float64bits(info.lon))
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// MetaFingerprint hashes the campaign identity a snapshot binds to. End
// is deliberately excluded: extending an append-only campaign's window
// must not orphan its snapshot — the covered boundary and content
// windows already pin the data prefix. The temporal aggregate index
// (internal/tix) binds its sidecar with the same fingerprint, so both
// derived files invalidate under exactly the same store identities.
func MetaFingerprint(m results.Meta) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%d|%x|%d|%d", m.Seed, m.Start.UnixNano(), math.Float64bits(m.IntervalHours), m.Probes, m.Regions)
	return fmt.Sprintf("%016x", h.Sum64())
}

// passSetID names the analysis configuration: state version plus the
// Figure 7 geometry the LastMile pass is parameterized by.
func passSetID(start time.Time, binWidth time.Duration) string {
	return fmt.Sprintf("suite-v%d|start=%d|width=%d", suiteStateVersion, start.UTC().UnixNano(), int64(binWidth))
}

func snapFormat(f results.Format) snap.Format {
	if f == results.FormatBinary {
		return snap.FormatBinary
	}
	return snap.FormatJSONL
}

// Merge folds other — the suite accumulated over the samples after the
// receiver's — into s, pass by pass. Receiver-first ordering matters:
// merges are earlier-shard-wins, so the receiver must cover the earlier
// bytes.
func (s *Suite) Merge(other *Suite) error {
	op := other.Passes()
	for i, p := range s.Passes() {
		if err := p.Merge(op[i]); err != nil {
			return err
		}
	}
	return nil
}

// EncodeState serializes the suite's full accumulator state, passes in
// the fixed Passes() order. Call it before Report: report-time queries
// sort distributions in place, and the snapshot must capture the
// insertion-order state a future merge replays from.
func (s *Suite) EncodeState() []byte {
	b := make([]byte, 0, s.stateSizeHint())
	b = appendProximityState(b, s.Proximity)
	b = appendMinRTTState(b, s.MinRTT)
	b = appendFullDistState(b, s.FullDist)
	b = appendLastMileState(b, s.LastMile)
	b = appendDiurnalState(b, s.Diurnal)
	b = appendProviderState(b, s.Provider)
	return b
}

// stateSizeHint estimates the encoded state size from sample counts and
// pending span lengths, so EncodeState allocates its buffer once
// instead of repeatedly copying a multi-megabyte slice while growing.
func (s *Suite) stateSizeHint() int {
	n := 4096 + 64*(len(s.FullDist.nearest)+len(s.MinRTT.mins)+len(s.Proximity.byCountry)+len(s.Provider.byProvider))
	for _, regions := range s.FullDist.byProbe {
		for _, d := range regions {
			n += 8*d.N() + 48
		}
	}
	for _, list := range s.FullDist.raw {
		for i := range list {
			n += len(list[i].span) + 32
		}
	}
	for _, regions := range s.LastMile.byProbe {
		for _, samples := range regions {
			n += streamRecordBytes*len(samples) + 48
		}
	}
	for _, list := range s.LastMile.raw {
		for i := range list {
			n += len(list[i].span) + 32
		}
	}
	for h := range s.Diurnal.bins {
		n += 8*s.Diurnal.bins[h].N() + 32
	}
	for _, a := range s.Provider.byProvider {
		n += 8 * a.dist.N()
	}
	return n
}

// NewSuiteFromState builds a suite seeded with previously serialized
// state. The caller must pass the same idx/start/binWidth the state was
// accumulated under (enforced upstream via the snapshot header).
func NewSuiteFromState(idx *Index, start time.Time, binWidth time.Duration, state []byte) (*Suite, error) {
	s, err := NewSuite(idx, start, binWidth)
	if err != nil {
		return nil, err
	}
	c := snap.NewCursor(state)
	if err := decodeProximityState(c, s.Proximity); err != nil {
		return nil, err
	}
	if err := decodeMinRTTState(c, s.MinRTT); err != nil {
		return nil, err
	}
	if err := decodeFullDistState(c, s.FullDist); err != nil {
		return nil, err
	}
	if err := decodeLastMileState(c, s.LastMile); err != nil {
		return nil, err
	}
	if err := decodeDiurnalState(c, s.Diurnal); err != nil {
		return nil, err
	}
	if err := decodeProviderState(c, s.Provider); err != nil {
		return nil, err
	}
	if c.Remaining() != 0 {
		return nil, fmt.Errorf("core: %d trailing bytes in suite state", c.Remaining())
	}
	return s, nil
}

// sortState pre-sorts every distribution buffer exactly as report-time
// queries would. Run before EncodeState: the sorted buffers serialize
// with their sorted flag set, so a snapshot-seeded report pays only a
// nearly-sorted re-sort of the appended tail instead of full O(n log n)
// sorts of the whole history. Sorting commutes with every figure — sums
// are carried as exact bits and quantiles see the same multiset.
func (s *Suite) sortState() {
	for _, regions := range s.FullDist.byProbe {
		for _, d := range regions {
			d.Sort()
		}
	}
	for h := range s.Diurnal.bins {
		s.Diurnal.bins[h].Sort()
	}
	for _, a := range s.Provider.byProvider {
		a.dist.Sort()
	}
}

// sortedStrings returns m's keys ascending, for deterministic encoding.
func sortedStrings[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func appendNearestState(b []byte, n nearestTracker) []byte {
	b = snap.AppendUvarint(b, uint64(len(n)))
	for _, id := range sortedProbeIDs(n) {
		best := n[id]
		b = snap.AppendVarint(b, int64(id))
		b = snap.AppendString(b, best.region)
		b = snap.AppendFloat(b, best.rtt)
	}
	return b
}

func decodeNearestState(c *snap.Cursor, n nearestTracker) error {
	count, err := c.Uvarint()
	if err != nil {
		return err
	}
	for i := uint64(0); i < count; i++ {
		id, err := c.Varint()
		if err != nil {
			return err
		}
		region, err := c.String()
		if err != nil {
			return err
		}
		rtt, err := c.Float()
		if err != nil {
			return err
		}
		if _, dup := n[int(id)]; dup {
			return fmt.Errorf("core: duplicate probe %d in nearest state", id)
		}
		n[int(id)] = nearestBest{region: region, rtt: rtt}
	}
	return nil
}

func appendProximityState(b []byte, p *ProximityPass) []byte {
	b = snap.AppendUvarint(b, uint64(len(p.byCountry)))
	for _, country := range sortedStrings(p.byCountry) {
		a := p.byCountry[country]
		b = snap.AppendString(b, country)
		b = snap.AppendFloat(b, a.min)
		b = snap.AppendUvarint(b, uint64(a.samples))
	}
	return b
}

func decodeProximityState(c *snap.Cursor, p *ProximityPass) error {
	count, err := c.Uvarint()
	if err != nil {
		return err
	}
	for i := uint64(0); i < count; i++ {
		country, err := c.String()
		if err != nil {
			return err
		}
		min, err := c.Float()
		if err != nil {
			return err
		}
		samples, err := c.Uvarint()
		if err != nil {
			return err
		}
		if _, dup := p.byCountry[country]; dup {
			return fmt.Errorf("core: duplicate country %q in proximity state", country)
		}
		p.byCountry[country] = &proximityAcc{min: min, samples: int(samples)}
	}
	return nil
}

func appendMinRTTState(b []byte, p *MinRTTPass) []byte {
	b = snap.AppendUvarint(b, uint64(len(p.mins)))
	for _, id := range sortedProbeIDs(p.mins) {
		b = snap.AppendVarint(b, int64(id))
		b = snap.AppendFloat(b, p.mins[id])
	}
	return b
}

func decodeMinRTTState(c *snap.Cursor, p *MinRTTPass) error {
	count, err := c.Uvarint()
	if err != nil {
		return err
	}
	for i := uint64(0); i < count; i++ {
		id, err := c.Varint()
		if err != nil {
			return err
		}
		min, err := c.Float()
		if err != nil {
			return err
		}
		p.mins[int(id)] = min
	}
	return nil
}

// interner deduplicates decoded strings: a snapshot repeats each region
// name once per probe, so interning turns tens of thousands of small
// string allocations into map hits against a few dozen uniques.
type interner map[string]string

func (in interner) decode(c *snap.Cursor) (string, error) {
	n, err := c.Uvarint()
	if err != nil {
		return "", err
	}
	raw, err := c.Bytes(int(n))
	if err != nil {
		return "", err
	}
	if s, ok := in[string(raw)]; ok {
		return s, nil
	}
	s := string(raw)
	in[s] = s
	return s, nil
}

// decodeDistSpan materializes one pending distribution span captured by
// distSpan, insisting the whole span is consumed.
func decodeDistSpan(span []byte) (*stats.Dist, error) {
	c := snap.NewCursor(span)
	d, err := stats.DecodeDistState(c)
	if err != nil {
		return nil, err
	}
	if c.Remaining() != 0 {
		return nil, fmt.Errorf("core: %d trailing bytes in dist span", c.Remaining())
	}
	return d, nil
}

// distSpan skips one encoded stats.Dist state (sample count, sample
// slab, sums, sorted flag) and returns its raw bytes without decoding
// the floats — O(1) regardless of sample count.
func distSpan(c *snap.Cursor) ([]byte, error) {
	start := c.Pos()
	n, err := c.Uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(c.Remaining())/8 {
		return nil, fmt.Errorf("core: dist span claims %d samples, %d bytes remain", n, c.Remaining())
	}
	if _, err := c.Bytes(int(n)*8 + 17); err != nil {
		return nil, err
	}
	return c.Since(start), nil
}

// A last-mile stream serializes as a sample count followed by a slab of
// fixed-width records: unix seconds (8 bytes), nanoseconds (4 bytes),
// RTT bits (8 bytes). Fixed records make skipping O(1) and
// encode/decode a tight copy loop.
const streamRecordBytes = 20

func appendStreamState(b []byte, samples []timedRTT) []byte {
	b = snap.AppendUvarint(b, uint64(len(samples)))
	b = slices.Grow(b, streamRecordBytes*len(samples))
	off := len(b)
	b = b[:off+streamRecordBytes*len(samples)]
	for i, s := range samples {
		rec := b[off+streamRecordBytes*i:]
		binary.LittleEndian.PutUint64(rec, uint64(s.T.Unix()))
		binary.LittleEndian.PutUint32(rec[8:], uint32(s.T.Nanosecond()))
		binary.LittleEndian.PutUint64(rec[12:], math.Float64bits(s.V))
	}
	return b
}

// streamSpan skips one encoded last-mile stream and returns its raw
// bytes, O(1) regardless of length.
func streamSpan(c *snap.Cursor) ([]byte, error) {
	start := c.Pos()
	n, err := c.Uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(c.Remaining())/streamRecordBytes {
		return nil, fmt.Errorf("core: last-mile stream claims %d samples, %d bytes remain", n, c.Remaining())
	}
	if _, err := c.Bytes(int(n) * streamRecordBytes); err != nil {
		return nil, err
	}
	return c.Since(start), nil
}

// decodeStreamSpan materializes one pending stream span.
func decodeStreamSpan(span []byte) ([]timedRTT, error) {
	c := snap.NewCursor(span)
	n, err := c.Uvarint()
	if err != nil {
		return nil, err
	}
	raw, err := c.Bytes(int(n) * streamRecordBytes)
	if err != nil {
		return nil, err
	}
	if c.Remaining() != 0 {
		return nil, fmt.Errorf("core: %d trailing bytes in stream span", c.Remaining())
	}
	samples := make([]timedRTT, n)
	for i := range samples {
		rec := raw[streamRecordBytes*i:]
		sec := int64(binary.LittleEndian.Uint64(rec))
		ns := binary.LittleEndian.Uint32(rec[8:])
		if ns >= 1e9 {
			return nil, fmt.Errorf("core: stream nanoseconds %d out of range", ns)
		}
		rtt := math.Float64frombits(binary.LittleEndian.Uint64(rec[12:]))
		if math.IsNaN(rtt) || math.IsInf(rtt, 0) {
			return nil, fmt.Errorf("core: invalid stream RTT %v in state", rtt)
		}
		samples[i] = timedRTT{T: time.Unix(sec, int64(ns)).UTC(), V: rtt}
	}
	return samples, nil
}

// liveOnlyKeys returns the sorted live map keys that have no pending or
// materialized raw entry — i.e. entries created after the snapshot was
// taken. rawHas reports membership in the raw list.
func liveOnlyKeys[V any](live map[string]V, rawHas func(string) bool) []string {
	if len(live) == 0 {
		return nil
	}
	keys := make([]string, 0, len(live))
	for k := range live {
		if !rawHas(k) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

// appendFullDistState writes the pass per probe, regions ascending.
// Entries still pending from the loaded snapshot are spliced back as
// raw bytes; only materialized (touched or new) entries are re-encoded,
// so the write cost of an append-only rescan tracks the delta.
func appendFullDistState(b []byte, p *FullDistPass) []byte {
	b = appendNearestState(b, p.nearest)
	ids := unionProbeIDs(p.byProbe, p.raw)
	b = snap.AppendUvarint(b, uint64(len(ids)))
	for _, id := range ids {
		rawList := p.raw[id]
		live := p.byProbe[id]
		rawHas := func(k string) bool {
			for i := range rawList {
				if rawList[i].region == k {
					return true
				}
			}
			return false
		}
		fresh := liveOnlyKeys(live, rawHas)
		b = snap.AppendVarint(b, int64(id))
		b = snap.AppendUvarint(b, uint64(len(rawList)+len(fresh)))
		i, j := 0, 0
		for i < len(rawList) || j < len(fresh) {
			if j >= len(fresh) || (i < len(rawList) && rawList[i].region < fresh[j]) {
				r := rawList[i]
				i++
				b = snap.AppendString(b, r.region)
				if r.span != nil {
					b = append(b, r.span...)
				} else {
					b = live[r.region].AppendState(b)
				}
			} else {
				k := fresh[j]
				j++
				b = snap.AppendString(b, k)
				b = live[k].AppendState(b)
			}
		}
	}
	return b
}

// decodeFullDistState captures every (probe, region) distribution as a
// pending raw span instead of decoding it — materialization happens
// lazily on first touch (delta merge or report).
func decodeFullDistState(c *snap.Cursor, p *FullDistPass) error {
	if err := decodeNearestState(c, p.nearest); err != nil {
		return err
	}
	count, err := c.Uvarint()
	if err != nil {
		return err
	}
	if p.raw == nil {
		p.raw = make(map[int][]rawDist, count)
	}
	intern := make(interner, 64)
	for i := uint64(0); i < count; i++ {
		id, err := c.Varint()
		if err != nil {
			return err
		}
		nRegions, err := c.Uvarint()
		if err != nil {
			return err
		}
		if nRegions > uint64(c.Remaining()) {
			return fmt.Errorf("core: probe %d claims %d regions, %d bytes remain", id, nRegions, c.Remaining())
		}
		list := make([]rawDist, 0, nRegions)
		for j := uint64(0); j < nRegions; j++ {
			region, err := intern.decode(c)
			if err != nil {
				return err
			}
			span, err := distSpan(c)
			if err != nil {
				return err
			}
			// Writers emit regions in ascending order; enforcing it here
			// lets lazy lookups binary-search the pending list.
			if len(list) > 0 && region <= list[len(list)-1].region {
				return fmt.Errorf("core: probe %d regions out of order in full-dist state", id)
			}
			list = append(list, rawDist{region: region, span: span})
		}
		if _, dup := p.raw[int(id)]; dup {
			return fmt.Errorf("core: duplicate probe %d in full-dist state", id)
		}
		p.raw[int(id)] = list
	}
	return nil
}

// appendLastMileState mirrors appendFullDistState for the buffered
// last-mile streams.
func appendLastMileState(b []byte, p *LastMilePass) []byte {
	b = appendNearestState(b, p.nearest)
	ids := unionProbeIDs(p.byProbe, p.raw)
	b = snap.AppendUvarint(b, uint64(len(ids)))
	for _, id := range ids {
		rawList := p.raw[id]
		live := p.byProbe[id]
		rawHas := func(k string) bool {
			for i := range rawList {
				if rawList[i].region == k {
					return true
				}
			}
			return false
		}
		fresh := liveOnlyKeys(live, rawHas)
		b = snap.AppendVarint(b, int64(id))
		b = snap.AppendUvarint(b, uint64(len(rawList)+len(fresh)))
		i, j := 0, 0
		for i < len(rawList) || j < len(fresh) {
			if j >= len(fresh) || (i < len(rawList) && rawList[i].region < fresh[j]) {
				r := rawList[i]
				i++
				b = snap.AppendString(b, r.region)
				if r.span != nil {
					b = append(b, r.span...)
				} else {
					b = appendStreamState(b, live[r.region])
				}
			} else {
				k := fresh[j]
				j++
				b = snap.AppendString(b, k)
				b = appendStreamState(b, live[k])
			}
		}
	}
	return b
}

// decodeLastMileState captures every stream as a pending raw span, like
// decodeFullDistState.
func decodeLastMileState(c *snap.Cursor, p *LastMilePass) error {
	if err := decodeNearestState(c, p.nearest); err != nil {
		return err
	}
	count, err := c.Uvarint()
	if err != nil {
		return err
	}
	if p.raw == nil {
		p.raw = make(map[int][]rawStream, count)
	}
	intern := make(interner, 64)
	for i := uint64(0); i < count; i++ {
		id, err := c.Varint()
		if err != nil {
			return err
		}
		nRegions, err := c.Uvarint()
		if err != nil {
			return err
		}
		if nRegions > uint64(c.Remaining()) {
			return fmt.Errorf("core: probe %d claims %d streams, %d bytes remain", id, nRegions, c.Remaining())
		}
		list := make([]rawStream, 0, nRegions)
		for j := uint64(0); j < nRegions; j++ {
			region, err := intern.decode(c)
			if err != nil {
				return err
			}
			span, err := streamSpan(c)
			if err != nil {
				return err
			}
			if len(list) > 0 && region <= list[len(list)-1].region {
				return fmt.Errorf("core: probe %d streams out of order in last-mile state", id)
			}
			list = append(list, rawStream{region: region, span: span})
		}
		if _, dup := p.raw[int(id)]; dup {
			return fmt.Errorf("core: duplicate probe %d in last-mile state", id)
		}
		p.raw[int(id)] = list
	}
	return nil
}

func appendDiurnalState(b []byte, p *DiurnalPass) []byte {
	for h := range p.bins {
		b = p.bins[h].AppendState(b)
	}
	return b
}

func decodeDiurnalState(c *snap.Cursor, p *DiurnalPass) error {
	for h := range p.bins {
		d, err := stats.DecodeDistState(c)
		if err != nil {
			return err
		}
		p.bins[h] = *d
	}
	return nil
}

func appendProviderState(b []byte, p *ProviderPass) []byte {
	b = snap.AppendUvarint(b, uint64(len(p.byProvider)))
	for _, provider := range sortedStrings(p.byProvider) {
		a := p.byProvider[provider]
		b = snap.AppendString(b, provider)
		b = a.dist.AppendState(b)
		b = snap.AppendUvarint(b, uint64(a.lost))
	}
	return b
}

func decodeProviderState(c *snap.Cursor, p *ProviderPass) error {
	count, err := c.Uvarint()
	if err != nil {
		return err
	}
	for i := uint64(0); i < count; i++ {
		provider, err := c.String()
		if err != nil {
			return err
		}
		d, err := stats.DecodeDistState(c)
		if err != nil {
			return err
		}
		lost, err := c.Uvarint()
		if err != nil {
			return err
		}
		p.byProvider[provider] = &providerAcc{dist: d, lost: int(lost)}
	}
	return nil
}

// loadSnapshot reads, validates, and deserializes the snapshot at path.
// Any failure returns nils after counting a miss (no file) or an
// invalidation (anything else) — the caller then scans cold.
func loadSnapshot(path string, store *results.Store, idx *Index, start time.Time, binWidth time.Duration, so SnapshotOptions) (*Suite, uint64, *scan.Resume) {
	sm := so.Metrics
	invalidate := func(reason string) {
		sm.Invalidate()
		so.Log.Info("snapshot invalidated", "path", path, "reason", reason)
	}
	h, payload, err := snap.ReadFile(path)
	if err != nil {
		if errors.Is(err, snap.ErrNoSnapshot) {
			sm.Miss()
			so.Log.Debug("snapshot miss", "path", path)
		} else {
			invalidate("unreadable: " + err.Error())
		}
		return nil, 0, nil
	}
	if h.PassSet != passSetID(start, binWidth) ||
		h.Index != idx.Fingerprint() ||
		h.Meta != MetaFingerprint(store.Meta()) ||
		h.Format != snapFormat(store.Format()) ||
		h.CoveredBytes <= 0 {
		invalidate("header mismatch")
		return nil, 0, nil
	}
	f, err := os.Open(store.SamplesPath())
	if err != nil {
		invalidate("store unreadable")
		return nil, 0, nil
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil || h.CoveredBytes > fi.Size() {
		// Covered data no longer exists: the store was truncated (e.g. a
		// checkpoint resume rolled back a partial round).
		invalidate("store truncated below covered boundary")
		return nil, 0, nil
	}
	head, tail, err := snap.WindowCRCs(f, h.CoveredBytes)
	if err != nil || head != h.HeadCRC || tail != h.TailCRC {
		invalidate("content window CRC mismatch")
		return nil, 0, nil
	}
	suite, err := NewSuiteFromState(idx, start, binWidth, payload)
	if err != nil {
		invalidate("state decode: " + err.Error())
		return nil, 0, nil
	}
	return suite, h.Samples, &scan.Resume{Bytes: h.CoveredBytes, Blocks: h.CoveredBlocks}
}

// writeSnapshot atomically persists merged's state as covering the
// store prefix the scan just consumed.
func writeSnapshot(path string, store *results.Store, idx *Index, start time.Time, binWidth time.Duration, merged *Suite, samples uint64, st scan.Stats, so SnapshotOptions) error {
	f, err := os.Open(store.SamplesPath())
	if err != nil {
		return err
	}
	defer f.Close()
	head, tail, err := snap.WindowCRCs(f, st.DataEnd)
	if err != nil {
		return err
	}
	h := snap.Header{
		PassSet:      passSetID(start, binWidth),
		Index:        idx.Fingerprint(),
		Meta:         MetaFingerprint(store.Meta()),
		Format:       snapFormat(store.Format()),
		CoveredBytes: st.DataEnd,
		Samples:      samples,
		HeadCRC:      head,
		TailCRC:      tail,
	}
	if st.Binary {
		h.CoveredBlocks = st.BlocksTotal
	}
	if err := snap.WriteFile(path, h, merged.EncodeState()); err != nil {
		return err
	}
	so.Metrics.Wrote()
	so.Log.Info("snapshot written", "path", path,
		"covered_bytes", h.CoveredBytes, "covered_blocks", h.CoveredBlocks, "samples", samples)
	return nil
}

// scanStoreMerged runs the scan — snapshot-seeded when so.Path names a
// valid snapshot, cold otherwise — and returns the merged suite before
// any report runs, plus the total samples folded into it.
func scanStoreMerged(ctx context.Context, store *results.Store, idx *Index, start time.Time, binWidth time.Duration, workers int, m *scan.Metrics, so SnapshotOptions) (*Suite, uint64, scan.Stats, error) {
	if store == nil || idx == nil {
		return nil, 0, scan.Stats{}, errors.New("analysis: nil store or index")
	}
	var prefix *Suite
	var prefixSamples uint64
	var resume *scan.Resume
	if so.Path != "" {
		prefix, prefixSamples, resume = loadSnapshot(so.Path, store, idx, start, binWidth, so)
	}
	scanOnce := func(r *scan.Resume) ([]*Suite, scan.Stats, error) {
		var suites []*Suite
		st, err := scan.File(ctx, scan.Config{
			Path:    store.SamplesPath(),
			Workers: workers,
			Metrics: m,
			Log:     so.Log,
			RowScan: so.RowScan,
			Resume:  r,
			NewPasses: func(worker int) ([]scan.Pass, error) {
				s, err := NewSuite(idx, start, binWidth)
				if err != nil {
					return nil, err
				}
				suites = append(suites, s)
				return s.Passes(), nil
			},
		})
		return suites, st, err
	}
	suites, st, err := scanOnce(resume)
	if err != nil && resume != nil {
		// The covered boundary no longer holds (the store changed in a way
		// the window CRCs could not see): drop the snapshot, scan cold.
		so.Metrics.Invalidate()
		so.Log.Warn("snapshot invalidated", "path", so.Path,
			"reason", "resumed scan failed past covered boundary", "error", err)
		prefix, prefixSamples, resume = nil, 0, nil
		suites, st, err = scanOnce(nil)
	}
	if err != nil {
		return nil, 0, st, err
	}
	merged := suites[0]
	if prefix != nil {
		if err := prefix.Merge(merged); err != nil {
			return nil, 0, st, err
		}
		merged = prefix
		so.Metrics.Hit(resume.Blocks, resume.Bytes)
		so.Log.Info("snapshot hit", "path", so.Path,
			"covered_bytes", resume.Bytes, "covered_blocks", resume.Blocks,
			"delta_bytes", st.DataEnd-resume.Bytes)
	}
	total := prefixSamples + st.Samples
	if total == 0 {
		return nil, 0, st, ErrEmptyStore
	}
	// Rewrite the snapshot unless this scan was a pure hit with no new
	// data — then the file on disk already holds exactly this state — or
	// the delta is still below the refresh gate (see RefreshFactor).
	refresh := so.Path != "" && (resume == nil || st.DataEnd != resume.Bytes)
	if refresh && resume != nil && so.RefreshFactor > 0 &&
		float64(st.DataEnd-resume.Bytes) < so.RefreshFactor*float64(resume.Bytes) {
		refresh = false
	}
	if refresh {
		merged.sortState()
		if err := writeSnapshot(so.Path, store, idx, start, binWidth, merged, total, st, so); err != nil {
			return nil, 0, st, fmt.Errorf("core: writing snapshot: %w", err)
		}
	}
	return merged, total, st, nil
}

// ScanStoreSnap is ScanStore with snapshot support: it seeds the passes
// from a valid snapshot and scans only the store suffix past its
// covered boundary, falling back to a cold full scan whenever the
// snapshot is missing, corrupt, or does not exactly prefix the store.
// Reports are byte-identical to a cold ScanStore for any worker count.
func ScanStoreSnap(ctx context.Context, store *results.Store, idx *Index, start time.Time, binWidth time.Duration, workers int, m *scan.Metrics, so SnapshotOptions) (*SuiteReport, scan.Stats, error) {
	merged, _, st, err := scanStoreMerged(ctx, store, idx, start, binWidth, workers, m, so)
	if err != nil {
		return nil, st, err
	}
	// Report only after the snapshot is on disk: report-time queries sort
	// accumulated samples in place, and the snapshot must hold the
	// insertion-order state.
	rep, err := merged.Report()
	return rep, st, err
}

// UpdateSnapshot refreshes the store's snapshot without producing a
// report — the engine calls it at each checkpoint so a later figure run
// starts from the freshest covered boundary. An empty store is a no-op.
func UpdateSnapshot(ctx context.Context, store *results.Store, idx *Index, start time.Time, binWidth time.Duration, workers int, m *scan.Metrics, so SnapshotOptions) (scan.Stats, error) {
	if so.Path == "" {
		return scan.Stats{}, errors.New("core: UpdateSnapshot needs a snapshot path")
	}
	_, _, st, err := scanStoreMerged(ctx, store, idx, start, binWidth, workers, m, so)
	if errors.Is(err, ErrEmptyStore) {
		return st, nil
	}
	return st, err
}
