package core

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/results"
)

// DiurnalReport bins delivered samples by the probe's local hour of day,
// exposing the evening congestion peak that §4.3's bufferbloat citations
// describe. Local time is approximated from the probe's longitude
// (15 degrees per hour), the standard trick when probes report no
// timezone.
type DiurnalReport struct {
	// Medians holds the per-local-hour median RTT (ms); Counts the sample
	// volume behind each bin.
	Medians [24]float64
	Counts  [24]int
}

// Diurnal computes the local-hour profile over every delivered sample.
// It is a single-pass wrapper over DiurnalPass.
func Diurnal(src results.Source, idx *Index) (*DiurnalReport, error) {
	if src == nil || idx == nil {
		return nil, errors.New("core: nil source or index")
	}
	p := NewDiurnalPass(idx)
	if err := RunPasses(src, p); err != nil {
		return nil, err
	}
	return p.Report()
}

// Peak returns the local hour with the highest median RTT and its value.
func (r *DiurnalReport) Peak() (hour int, medianMs float64) {
	for h := range r.Medians {
		if r.Counts[h] > 0 && r.Medians[h] > medianMs {
			hour, medianMs = h, r.Medians[h]
		}
	}
	return hour, medianMs
}

// Trough returns the local hour with the lowest median RTT and its value.
func (r *DiurnalReport) Trough() (hour int, medianMs float64) {
	medianMs = math.Inf(1)
	for h := range r.Medians {
		if r.Counts[h] > 0 && r.Medians[h] < medianMs {
			hour, medianMs = h, r.Medians[h]
		}
	}
	return hour, medianMs
}

// Amplitude returns peak/trough, the relative size of the daily swing.
func (r *DiurnalReport) Amplitude() float64 {
	_, peak := r.Peak()
	_, trough := r.Trough()
	if trough <= 0 {
		return 0
	}
	return peak / trough
}

// Format renders the profile as text lines.
func (r *DiurnalReport) Format() []string {
	lines := []string{"local-hour  median-rtt  samples"}
	for h := 0; h < 24; h++ {
		if r.Counts[h] == 0 {
			continue
		}
		lines = append(lines, fmt.Sprintf("%9dh  %8.1fms  %7d", h, r.Medians[h], r.Counts[h]))
	}
	return lines
}
