package core

import (
	"time"

	"repro/internal/colf"
	"repro/internal/geo"
	"repro/internal/stats"
)

// Batch kernels: every suite pass implements scan.BlockPass, so the
// scanner's batch path feeds whole column arrays instead of assembling
// a results.Sample per row. Each ObserveBlock folds exactly the state
// its row-order Observe would — same accumulators, same insertion
// order, same lazy creation — so figures, snapshots, and merge results
// stay byte-identical between the two paths.
//
// The kernels assume every row already passes results.Sample.Validate,
// which the scanner proves from the CRC-verified footer zone before
// dispatching here (see scan.blockRowsValid). Probe IDs are therefore
// > 0, making 0 a safe "no previous probe" sentinel for the run caches
// below: blocks group consecutive rows by probe, so per-probe index
// lookups (country, tier, longitude, ...) resolve once per run instead
// of once per row.

// Columns implements scan.BlockPass; probe, RTT, loss, and region
// codes always decode.
func (p *ProximityPass) Columns() colf.ColumnSet { return 0 }

// ObserveBlock implements scan.BlockPass.
func (p *ProximityPass) ObserveBlock(blk *colf.Block) error {
	lastProbe := 0
	known := false
	var country string
	var a *proximityAcc
	for i, probe := range blk.Probe {
		if blk.Lost[i] {
			continue
		}
		if probe != lastProbe {
			lastProbe = probe
			country, known = p.idx.Country(probe)
			a = nil
		}
		if !known {
			continue
		}
		if a == nil {
			a = p.byCountry[country]
		}
		rtt := blk.RTT[i]
		if a == nil {
			a = &proximityAcc{min: rtt}
			p.byCountry[country] = a
		} else if rtt < a.min {
			a.min = rtt
		}
		a.samples++
	}
	return nil
}

// Columns implements scan.BlockPass.
func (p *MinRTTPass) Columns() colf.ColumnSet { return 0 }

// ObserveBlock implements scan.BlockPass. The per-probe minimum runs
// locally over each probe's row run and is written back once, turning
// a map update per row into one per run.
func (p *MinRTTPass) ObserveBlock(blk *colf.Block) error {
	lastProbe := 0
	known, have, dirty := false, false, false
	var cur float64
	for i, probe := range blk.Probe {
		if blk.Lost[i] {
			continue
		}
		if probe != lastProbe {
			if dirty {
				p.mins[lastProbe] = cur
			}
			lastProbe = probe
			known = p.idx.Known(probe)
			dirty = false
			if known {
				cur, have = p.mins[probe]
			}
		}
		if !known {
			continue
		}
		if rtt := blk.RTT[i]; !have || rtt < cur {
			cur, have, dirty = rtt, true, true
		}
	}
	if dirty {
		p.mins[lastProbe] = cur
	}
	return nil
}

// Columns implements scan.BlockPass. Region strings come from the
// block dictionary, so only the codes are needed, not the per-row
// string column.
func (p *FullDistPass) Columns() colf.ColumnSet { return colf.ColRegionIDs }

// ObserveBlock implements scan.BlockPass. The nearest-region best runs
// locally per probe run; the destination distribution is re-resolved
// only when the dictionary code changes, so the (probe, region) map
// walk happens once per run of equal codes instead of once per row.
func (p *FullDistPass) ObserveBlock(blk *colf.Block) error {
	dict := blk.Dict
	lastProbe := 0
	known, haveBest, dirty := false, false, false
	var best nearestBest
	var curDist *stats.Dist
	lastCode := ^uint32(0)
	for i, probe := range blk.Probe {
		if blk.Lost[i] {
			continue
		}
		if probe != lastProbe {
			if dirty {
				p.nearest[lastProbe] = best
			}
			lastProbe = probe
			known = p.idx.Known(probe)
			dirty = false
			curDist, lastCode = nil, ^uint32(0)
			if known {
				best, haveBest = p.nearest[probe]
			}
		}
		if !known {
			continue
		}
		rtt := blk.RTT[i]
		code := blk.RegionID[i]
		if !haveBest || rtt < best.rtt {
			best = nearestBest{region: dict[code], rtt: rtt}
			haveBest, dirty = true, true
		}
		if code != lastCode {
			region := dict[code]
			d, err := p.materializeDist(probe, region)
			if err != nil {
				if dirty {
					p.nearest[probe] = best
				}
				return err
			}
			if d == nil {
				d = &stats.Dist{}
				p.liveRegions(probe)[region] = d
			}
			curDist, lastCode = d, code
		}
		if err := curDist.Add(rtt); err != nil {
			if dirty {
				p.nearest[probe] = best
			}
			return err
		}
	}
	if dirty {
		p.nearest[lastProbe] = best
	}
	return nil
}

// Columns implements scan.BlockPass; the buffered streams carry
// timestamps, so the time column must decode.
func (p *LastMilePass) Columns() colf.ColumnSet { return colf.ColTime | colf.ColRegionIDs }

// ObserveBlock implements scan.BlockPass. Tier and access tags are
// per-probe constants resolved once per run; time.Time values are
// built only for the rows that survive the tier/access filter.
func (p *LastMilePass) ObserveBlock(blk *colf.Block) error {
	dict := blk.Dict
	lastProbe := 0
	known, kept, haveBest, dirty := false, false, false, false
	var best nearestBest
	var regions map[string][]timedRTT
	var cur []timedRTT
	var curRegion string
	lastCode := ^uint32(0)
	flush := func(probe int) {
		if dirty {
			p.nearest[probe] = best
		}
		if lastCode != ^uint32(0) {
			regions[curRegion] = cur
		}
	}
	for i, probe := range blk.Probe {
		if blk.Lost[i] {
			continue
		}
		if probe != lastProbe {
			if lastProbe != 0 {
				flush(lastProbe)
			}
			lastProbe = probe
			known = p.idx.Known(probe)
			dirty, kept = false, false
			regions, cur, lastCode = nil, nil, ^uint32(0)
			if known {
				best, haveBest = p.nearest[probe]
				if tier, ok := p.idx.Tier(probe); ok && tier <= geo.Tier2 {
					switch access, _ := p.idx.Access(probe); access {
					case AccessWired, AccessWireless:
						kept = true
					}
				}
			}
		}
		if !known {
			continue
		}
		rtt := blk.RTT[i]
		code := blk.RegionID[i]
		if !haveBest || rtt < best.rtt {
			best = nearestBest{region: dict[code], rtt: rtt}
			haveBest, dirty = true, true
		}
		if !kept {
			continue
		}
		if code != lastCode {
			if lastCode != ^uint32(0) {
				regions[curRegion] = cur
			}
			region := dict[code]
			if err := p.materializeStream(probe, region); err != nil {
				if dirty {
					p.nearest[probe] = best
				}
				return err
			}
			if regions == nil {
				regions = p.liveStreams(probe)
			}
			curRegion, cur = region, regions[region]
			lastCode = code
		}
		cur = append(cur, timedRTT{T: time.Unix(0, blk.TimeNano[i]).UTC(), V: rtt})
	}
	if lastProbe != 0 {
		flush(lastProbe)
	}
	return nil
}

// Columns implements scan.BlockPass; local-hour binning needs the
// timestamp column.
func (p *DiurnalPass) Columns() colf.ColumnSet { return colf.ColTime }

// ObserveBlock implements scan.BlockPass, binning by arithmetic on the
// raw nanosecond column (see localHourNanos).
func (p *DiurnalPass) ObserveBlock(blk *colf.Block) error {
	lastProbe := 0
	ok := false
	var lon float64
	for i, probe := range blk.Probe {
		if blk.Lost[i] {
			continue
		}
		if probe != lastProbe {
			lastProbe = probe
			lon, ok = p.idx.Longitude(probe)
		}
		if !ok {
			continue
		}
		if err := p.bins[localHourNanos(blk.TimeNano[i], lon)].Add(blk.RTT[i]); err != nil {
			return err
		}
	}
	return nil
}

// Columns implements scan.BlockPass. Providers resolve from the block
// dictionary and per-row codes.
func (p *ProviderPass) Columns() colf.ColumnSet { return colf.ColRegionIDs }

// ObserveBlock implements scan.BlockPass. The provider prefix is
// carved off each dictionary entry once per block; accumulators
// resolve lazily per code — only when a known probe's row actually
// lands in one, exactly as Observe creates them, since an eagerly
// created empty accumulator would change the encoded snapshot state.
func (p *ProviderPass) ObserveBlock(blk *colf.Block) error {
	p.provs, p.provOK, p.accs = p.provs[:0], p.provOK[:0], p.accs[:0]
	for _, region := range blk.Dict {
		prov, ok := providerOf(region)
		p.provs = append(p.provs, prov)
		p.provOK = append(p.provOK, ok)
		p.accs = append(p.accs, nil)
	}
	lastProbe := 0
	known := false
	for i, probe := range blk.Probe {
		if probe != lastProbe {
			lastProbe = probe
			known = p.idx.Known(probe)
		}
		if !known {
			continue
		}
		code := blk.RegionID[i]
		a := p.accs[code]
		if a == nil {
			if !p.provOK[code] {
				continue
			}
			a = p.byProvider[p.provs[code]]
			if a == nil {
				a = &providerAcc{dist: &stats.Dist{}}
				p.byProvider[p.provs[code]] = a
			}
			p.accs[code] = a
		}
		if blk.Lost[i] {
			a.lost++
			continue
		}
		if err := a.dist.Add(blk.RTT[i]); err != nil {
			return err
		}
	}
	return nil
}
